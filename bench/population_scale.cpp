// Population scale-out report (Fig. 10 flavor): federated runs at worker
// populations far past the paper's N=100, on the lazy pooled worker state
// + shared dataset shards + calendar event queue. Each grid point reports
// rounds completed, virtual time, wall time, peak RSS (Linux VmHWM), and
// the run's metrics digest — the digest is the cross-check that the lazy
// machinery changed *nothing* observable (tests/population_test.cpp
// asserts digest equality against eager state at N=1e5).
//
// The workload is the population_scaling_study scenario shape: a small
// MNIST-like set split into 200 shards, worker i -> shard i % 200, a
// 32-worker sampled cohort per round, softmax model. Memory therefore
// stays bounded by the pool (O(cohort + lanes) replicas), not by N.
//
// Note: VmHWM is a process-wide high-water mark, so each row reports the
// peak over all grid points so far; the grid ascends in N so the largest
// N dominates its own row.
//
// Usage: population_scale [--json=<path>] [--max-workers=<n>]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "scenario/json.hpp"
#include "scenario/spec.hpp"
#include "util/table.hpp"

namespace {

using namespace airfedga;

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak resident set size in MiB from /proc/self/status (VmHWM), or -1
/// where that interface does not exist.
double peak_rss_mib() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
#endif
  return -1.0;
}

/// The population_scaling_study shape at population `n`.
scenario::ScenarioSpec make_spec(std::size_t n) {
  scenario::ScenarioSpec spec;
  spec.name = "population_scale";
  spec.dataset.kind = "mnist_like";
  spec.dataset.train_samples = 6000;
  spec.dataset.test_samples = 1000;
  spec.model.kind = "softmax";
  spec.model.input_dim = 784;
  spec.model.num_classes = 10;
  spec.partition.kind = "label_skew";
  spec.partition.workers = n;
  spec.partition.shards = 200;  // worker i -> shard i % 200 (30 samples each)
  spec.batch_size = 16;         // < shard size, so every step draws from the RNG
  spec.local_steps = 2;
  spec.learning_rate = 0.05;
  spec.cohort_size = 32;
  spec.worker_state = "lazy";
  spec.event_queue = "calendar";
  spec.time_budget = 1e9;  // rounds-capped, not time-capped
  spec.max_rounds = 20;
  spec.eval_every = 10;
  spec.eval_samples = 256;
  spec.mechanisms.resize(2);
  spec.mechanisms[0].kind = "fedavg";
  spec.mechanisms[1].kind = "airfedavg";
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FlagParser flags(
      "Population scale-out: lazy worker state + calendar event queue at N up to 1e6 workers; "
      "reports rounds, virtual/wall time, peak RSS and the metrics digest per grid point.");
  flags.add("json", "append one JSONL record per run to this file");
  flags.add("max-workers", "largest population in the grid (default 100000)");
  if (auto ec = flags.parse(argc, argv)) return *ec;

  std::size_t max_workers = 100000;
  if (const std::string* v = flags.get("max-workers"))
    max_workers = std::strtoull(v->c_str(), nullptr, 10);
  if (max_workers < 1000) {
    std::fprintf(stderr, "invalid --max-workers (>= 1000)\n");
    return 2;
  }

  std::vector<std::size_t> grid = {1000, 10000};
  for (std::size_t n : {std::size_t{100000}, std::size_t{1000000}, max_workers})
    if (n <= max_workers && n > grid.back()) grid.push_back(n);

  std::vector<scenario::Json> records;
  util::Table t({"N", "mechanism", "rounds", "virtual(s)", "wall(s)", "peak RSS(MiB)", "digest"});
  for (std::size_t n : grid) {
    scenario::ScenarioSpec spec = make_spec(n);
    spec.validate();
    auto built = scenario::build(spec);
    for (std::size_t i = 0; i < built.mechanisms.size(); ++i) {
      const double t0 = now_seconds();
      const fl::Metrics m = built.mechanisms[i]->run(built.cfg);
      const double wall = now_seconds() - t0;
      const double rss = peak_rss_mib();
      t.add_row({util::Table::fmt_int(static_cast<long long>(n)), built.mechanism_names[i],
                 util::Table::fmt_int(static_cast<long long>(m.total_rounds())),
                 util::Table::fmt(m.total_time(), 0), util::Table::fmt(wall, 2),
                 rss < 0 ? "-" : util::Table::fmt(rss, 1), m.digest()});
      scenario::Json rec = scenario::Json::object();
      rec.set("kind", "population_scale");
      rec.set("workers", n);
      rec.set("mechanism", built.mechanism_names[i]);
      rec.set("rounds", m.total_rounds());
      rec.set("virtual_seconds", m.total_time());
      rec.set("wall_seconds", wall);
      if (rss >= 0) rec.set("peak_rss_mib", rss);
      rec.set("digest", m.digest());
      records.push_back(std::move(rec));
    }
  }

  std::printf("=== Population scale-out: lazy pooled workers, calendar queue ===\n");
  t.print(std::cout);

  if (const std::string* path = flags.get("json")) {
    std::ofstream out(*path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path->c_str());
      return 1;
    }
    for (const auto& rec : records) out << rec.dump() << "\n";
    std::printf("\nwrote %zu records to %s\n", records.size(), path->c_str());
  }
  return 0;
}
