// Fig. 3 reproduction: Loss/Accuracy vs. time for the paper's "LR" model
// (a 2-hidden-layer MLP) on the MNIST-like dataset, comparing the three
// AirComp mechanisms: Dynamic [31], Air-FedAvg [18] and Air-FedGA.
//
// Scale-down vs. paper: hidden width 128 instead of 512 and 10k synthetic
// training samples instead of 60k MNIST images (2-core CPU budget); all
// wireless and heterogeneity parameters are the paper's (§VI-A2).

#include "common.hpp"

int main() {
  using namespace airfedga;
  const double horizon = 5000.0;

  bench::Experiment exp(data::make_mnist_like(10000, 2000, 1), /*workers=*/100,
                        [] { return ml::make_mlp(784, 10, 128); });
  exp.cfg.learning_rate = 1.0f;
  exp.cfg.batch_size = 0;  // full local gradient (Eq. 4)
  exp.cfg.time_budget = horizon;
  exp.cfg.eval_every = 5;
  exp.cfg.eval_samples = 1000;

  fl::DynamicAirComp dynamic;
  fl::AirFedAvg airfedavg;
  fl::AirFedGA airfedga;

  std::vector<std::string> names = {"Dynamic", "Air-FedAvg", "Air-FedGA"};
  std::vector<fl::Metrics> runs;
  runs.push_back(dynamic.run(exp.cfg));
  runs.push_back(airfedavg.run(exp.cfg));
  runs.push_back(airfedga.run(exp.cfg));

  bench::print_curves("Fig. 3: LR (MLP) on MNIST-like, loss/accuracy vs time", names, runs,
                      /*step=*/250.0, horizon);
  std::printf("\n--- time to stable accuracy (cf. §VI-B1 headline) ---\n");
  bench::print_time_to_accuracy(names, runs, {0.80, 0.85, 0.90});
  bench::dump_csv("fig03", names, runs);
  return 0;
}
