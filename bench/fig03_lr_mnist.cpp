// Fig. 3 reproduction: Loss/Accuracy vs. time for the paper's "LR" model
// (a 2-hidden-layer MLP) on the MNIST-like dataset, comparing the three
// AirComp mechanisms: Dynamic [31], Air-FedAvg [18] and Air-FedGA.
//
// The experiment setup lives in the `fig03_lr_mnist` scenario preset
// (src/scenario/presets.cpp). Scale-down vs. paper: hidden width 128
// instead of 512 and 10k synthetic training samples instead of 60k MNIST
// images (2-core CPU budget); all wireless and heterogeneity parameters
// are the paper's (§VI-A2).

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace airfedga;
  bench::FlagParser flags("Fig. 3: LR (MLP) on MNIST-like, Dynamic vs Air-FedAvg vs Air-FedGA");
  if (auto ec = flags.parse(argc, argv)) return *ec;

  const scenario::ScenarioSpec& spec = scenario::preset("fig03_lr_mnist");
  const double horizon = spec.time_budget;
  auto built = scenario::build(spec);
  const std::vector<fl::Metrics> runs = bench::run_all(built);
  const std::vector<std::string>& names = built.mechanism_names;

  bench::print_curves("Fig. 3: LR (MLP) on MNIST-like, loss/accuracy vs time", names, runs,
                      /*step=*/250.0, horizon);
  std::printf("\n--- time to stable accuracy (cf. §VI-B1 headline) ---\n");
  bench::print_time_to_accuracy(names, runs, {0.80, 0.85, 0.90});
  bench::dump_csv("fig03", names, runs);
  bench::print_digests(names, runs);
  bench::print_engine_summary(names, runs);
  return 0;
}
