// Google-benchmark microbenchmarks of the substrates: over-the-air
// aggregation, power control, the grouping algorithm, the ML kernels and
// the event queue. These quantify the cost of the simulator itself (the
// figure benches above measure *virtual* time; these measure wall time).

#include <benchmark/benchmark.h>

#include "channel/aircomp.hpp"
#include "channel/fading.hpp"
#include "core/grouping.hpp"
#include "core/power_control.hpp"
#include "data/partition.hpp"
#include "ml/zoo.hpp"
#include "sim/cluster.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace airfedga;

void BM_AirCompAggregate(benchmark::State& state) {
  const auto q = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  channel::AirCompChannel ch({.sigma0_sq = 1.0, .seed = 1});
  util::Rng rng(2);
  std::vector<std::vector<float>> models(m);
  for (auto& w : models) {
    w.resize(q);
    for (auto& v : w) v = static_cast<float>(rng.normal());
  }
  std::vector<float> w_prev(q, 0.1f);
  channel::AirCompChannel::Input in;
  in.w_prev = w_prev;
  for (auto& w : models) in.local_models.push_back(w);
  in.data_sizes.assign(m, 100.0);
  in.gains.assign(m, 1.0);
  in.sigma = 1e-3;
  in.eta = 1e-6;
  in.total_data = 10000.0;
  for (auto _ : state) {
    auto out = ch.aggregate(in);
    benchmark::DoNotOptimize(out.w_next.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(q * m));
}
BENCHMARK(BM_AirCompAggregate)->Args({10000, 10})->Args({100000, 10})->Args({100000, 30});

void BM_PowerControl(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  core::PowerControlInput in;
  in.model_bound_sq = 600.0;
  in.sigma0_sq = 1.0;
  in.group_data = 100.0 * static_cast<double>(m);
  for (std::size_t i = 0; i < m; ++i) {
    in.gains.push_back(rng.rayleigh(0.8) + 0.1);
    in.data_sizes.push_back(100.0);
    in.energy_caps.push_back(10.0);
  }
  for (auto _ : state) {
    auto res = core::optimize_power(in);
    benchmark::DoNotOptimize(res.sigma);
  }
}
BENCHMARK(BM_PowerControl)->Arg(10)->Arg(100);

void BM_GroupingAlgorithm(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  auto ds = data::make_synthetic_flat(8, {workers * 20, 10, 1.0, 0.3, 4});
  util::Rng rng(4);
  auto part = data::partition_label_skew(ds, workers, rng);
  data::DataStats stats(ds, part);
  sim::ClusterModel cluster(workers, {});
  const auto lt = cluster.local_times();
  core::GroupingConfig cfg;
  cfg.aircomp_upload_seconds = 0.01;
  for (auto _ : state) {
    auto res = core::airfedga_grouping(stats, lt, cfg);
    benchmark::DoNotOptimize(res.objective);
  }
}
BENCHMARK(BM_GroupingAlgorithm)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_MlpTrainStep(benchmark::State& state) {
  auto model = ml::make_mlp(784, 10, static_cast<std::size_t>(state.range(0)));
  util::Rng rng(5);
  model.init(rng);
  ml::Tensor x = ml::Tensor::randn({32, 784}, rng);
  std::vector<int> y(32);
  for (std::size_t i = 0; i < 32; ++i) y[i] = static_cast<int>(i % 10);
  for (auto _ : state) benchmark::DoNotOptimize(model.train_step(x, y, 0.01f));
}
BENCHMARK(BM_MlpTrainStep)->Arg(64)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_CnnTrainStep(benchmark::State& state) {
  auto model = ml::make_cnn_mnist(static_cast<double>(state.range(0)) / 100.0, 28);
  util::Rng rng(6);
  model.init(rng);
  ml::Tensor x = ml::Tensor::randn({16, 1, 28, 28}, rng);
  std::vector<int> y(16);
  for (std::size_t i = 0; i < 16; ++i) y[i] = static_cast<int>(i % 10);
  for (auto _ : state) benchmark::DoNotOptimize(model.train_step(x, y, 0.01f));
}
BENCHMARK(BM_CnnTrainStep)->Arg(15)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_FadingGains(benchmark::State& state) {
  channel::FadingChannel ch(static_cast<std::size_t>(state.range(0)), {});
  std::size_t round = 0;
  for (auto _ : state) {
    auto g = ch.gains(round++);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_FadingGains)->Arg(100);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < 1000; ++i)
      q.schedule(static_cast<double>((i * 7919) % 1000), 0, i);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().actor);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueue);

}  // namespace
