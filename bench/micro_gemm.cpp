// Kernel-layer microbenchmark: GFLOP/s of the blocked GEMM vs the seed's
// naive loops on the figure models' layer shapes, plus wall time and heap
// traffic per *training step* for each figure preset's model. The blocked
// numbers are the "after", the reference numbers the "before" of the
// kernel-layer PR; CI stores the JSONL output as an artifact so perf is
// tracked across commits (docs/BENCHMARKS.md).
//
// Usage: micro_gemm [--json=<path>] [--repeat-ms=<ms-per-measurement>]

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "common.hpp"
#include "ml/gemm.hpp"
#include "ml/workspace.hpp"
#include "scenario/json.hpp"
#include "util/table.hpp"

// Allocation hook (shared with tests/gemm_test.cpp): counts every
// operator-new in this binary so the per-train-step heap traffic can be
// reported (steady state must be zero; gemm_test enforces that, this
// bench *reports* it).
#include "../tests/support/alloc_hook.hpp"

namespace {

using namespace airfedga;

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One GEMM workload: the batched lowering of a figure-model layer.
/// `samples` > 1 additionally times the seed's *per-sample* decomposition
/// (the pre-kernel-layer Conv2D did one naive GEMM per sample).
struct GemmShape {
  const char* figure;
  const char* layer;
  std::size_t m, n, k;
  std::size_t samples;
};

// Layer lowerings at the preset scales (scenario/presets.cpp):
//   fig03  MLP-128, full-shard batch ~100 rows
//   fig04  CNN width 0.15 on 28x28 (c1=4, c2=8, fc=75), batch 16
//   fig05  CNN width 0.2 on 16x16 (c1=6, c2=13, fc=102), batch 16
//   fig06  1-hidden MLP-128 on 768 inputs, 100 classes, batch 16
// Conv forward lowers to (cout, cin*k*k) x (cin*k*k, batch*oh*ow).
const GemmShape kShapes[] = {
    {"fig03", "dense1", 100, 128, 784, 1},
    {"fig03", "dense2", 100, 128, 128, 1},
    {"fig04", "conv1", 4, 12544, 25, 16},
    {"fig04", "conv2", 8, 3136, 100, 16},
    {"fig04", "fc", 16, 75, 392, 1},
    {"fig05", "conv1", 6, 4096, 75, 16},
    {"fig05", "conv2", 13, 1024, 150, 16},
    {"fig05", "conv2-dW", 13, 150, 1024, 1},
    {"fig05", "fc", 16, 102, 208, 1},
    {"fig06", "dense1", 16, 128, 768, 1},
    {"fig06", "head", 16, 100, 128, 1},
};

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// Calls fn repeatedly until ~budget_ms of wall time accumulated; returns
/// seconds per call.
template <typename F>
double time_per_call(double budget_ms, F&& fn) {
  fn();  // warm caches / workspace
  int iters = 1;
  for (;;) {
    const double t0 = now_seconds();
    for (int i = 0; i < iters; ++i) fn();
    const double dt = now_seconds() - t0;
    if (dt * 1000.0 >= budget_ms || iters >= (1 << 22)) return dt / iters;
    iters = dt <= 0 ? iters * 8 : std::max(iters * 2, static_cast<int>(iters * budget_ms / (dt * 1000.0)));
  }
}

struct ShapeResult {
  GemmShape shape;
  double blocked_gflops = 0;
  double naive_gflops = 0;
  double per_sample_gflops = 0;  // 0 when samples == 1
};

ShapeResult bench_shape(const GemmShape& s, double budget_ms) {
  const auto a = random_floats(s.m * s.k, 1);
  const auto b = random_floats(s.k * s.n, 2);
  std::vector<float> c(s.m * s.n, 0.0f);
  const double flops = 2.0 * static_cast<double>(s.m) * s.n * s.k;

  ShapeResult r{s, 0, 0, 0};
  r.blocked_gflops =
      flops / time_per_call(budget_ms, [&] {
        ml::sgemm(ml::Trans::N, ml::Trans::N, s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, 0.0f,
                  c.data(), s.n);
      }) / 1e9;
  r.naive_gflops =
      flops / time_per_call(budget_ms, [&] {
        ml::sgemm_reference(ml::Trans::N, ml::Trans::N, s.m, s.n, s.k, a.data(), s.k, b.data(),
                            s.n, 0.0f, c.data(), s.n);
      }) / 1e9;
  if (s.samples > 1) {
    // The seed path: one naive GEMM per sample over an n/samples slice.
    const std::size_t n_per = s.n / s.samples;
    r.per_sample_gflops =
        flops / time_per_call(budget_ms, [&] {
          for (std::size_t i = 0; i < s.samples; ++i)
            ml::sgemm_reference(ml::Trans::N, ml::Trans::N, s.m, n_per, s.k, a.data(), s.k,
                                b.data() + i * n_per, s.n, 0.0f, c.data() + i * n_per, s.n);
        }) / 1e9;
  }
  return r;
}

struct StepResult {
  std::string preset;
  std::string model;
  std::size_t batch = 0;
  double ms_per_step = 0;
  double gflops = 0;  ///< analytic forward GEMM flops / step time (lower bound)
  std::size_t allocs_per_step = 0;
  std::size_t bytes_per_step = 0;
};

/// Builds the preset's model on a shrunken copy of its dataset and times a
/// steady-state train_step, reporting heap traffic per step.
StepResult bench_train_step(const std::string& preset_name, double budget_ms) {
  scenario::ScenarioSpec spec = scenario::preset(preset_name);
  spec.dataset.train_samples = 256;
  spec.dataset.test_samples = 64;
  spec.eval_samples = 64;
  auto built = scenario::build(spec);

  ml::Model model = built.cfg.model_factory();
  util::Rng rng(spec.seed);
  model.init(rng);

  const std::size_t batch = spec.batch_size == 0 ? 100 : spec.batch_size;
  std::vector<std::size_t> idx(batch);
  for (std::size_t i = 0; i < batch; ++i) idx[i] = i;
  const ml::Tensor x = ml::gather_rows(built.data->train.xs, idx);
  std::vector<int> y(batch);
  for (std::size_t i = 0; i < batch; ++i) y[i] = built.data->train.ys[i];

  for (int warm = 0; warm < 3; ++warm) model.train_step(x, y, 0.01f);

  const std::size_t count0 = alloc_hook::count.load();
  const std::size_t bytes0 = alloc_hook::bytes.load();
  constexpr int kCountedSteps = 5;
  for (int s = 0; s < kCountedSteps; ++s) model.train_step(x, y, 0.01f);
  const std::size_t count1 = alloc_hook::count.load();
  const std::size_t bytes1 = alloc_hook::bytes.load();

  StepResult r;
  r.preset = preset_name;
  r.model = spec.model.kind;
  r.batch = batch;
  r.ms_per_step = 1000.0 * time_per_call(budget_ms, [&] { model.train_step(x, y, 0.01f); });
  r.allocs_per_step = (count1 - count0) / kCountedSteps;
  r.bytes_per_step = (bytes1 - bytes0) / kCountedSteps;

  // Analytic GEMM flops of one step (forward + both backward GEMMs ~ 3x
  // forward) for a rough GFLOP/s figure; exact per-layer flops are what
  // the shape table above measures.
  double fwd_flops = 0;
  for (const auto& s : kShapes)
    if (preset_name.rfind(s.figure, 0) == 0)
      fwd_flops += 2.0 * static_cast<double>(s.m) * s.n * s.k;
  r.gflops = 3.0 * fwd_flops / (r.ms_per_step / 1000.0) / 1e9;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FlagParser flags(
      "Kernel-layer microbenchmark: blocked vs naive GEMM GFLOP/s on the figure models' layer "
      "shapes, and wall time + heap allocations per training step per figure preset.");
  flags.add("json", "append one JSONL record per measurement to this file");
  flags.add("repeat-ms", "wall-time budget per measurement in ms (default 200)");
  if (auto ec = flags.parse(argc, argv)) return *ec;

  double budget_ms = 200.0;
  if (const std::string* v = flags.get("repeat-ms")) budget_ms = std::atof(v->c_str());
  if (budget_ms <= 0) {
    std::fprintf(stderr, "invalid --repeat-ms\n");
    return 2;
  }

  std::vector<scenario::Json> records;

  std::printf("=== Blocked GEMM vs seed kernels (single thread) ===\n");
  util::Table t({"figure", "layer", "m", "n", "k", "blocked GF/s", "naive GF/s", "per-sample GF/s",
                 "speedup"});
  {
    util::ThreadPool::SerialRegion serial;  // single-thread kernel numbers
    for (const auto& s : kShapes) {
      const auto r = bench_shape(s, budget_ms);
      const double baseline = r.per_sample_gflops > 0 ? r.per_sample_gflops : r.naive_gflops;
      t.add_row({s.figure, s.layer, util::Table::fmt_int(static_cast<long long>(s.m)),
                 util::Table::fmt_int(static_cast<long long>(s.n)),
                 util::Table::fmt_int(static_cast<long long>(s.k)),
                 util::Table::fmt(r.blocked_gflops, 2), util::Table::fmt(r.naive_gflops, 2),
                 r.per_sample_gflops > 0 ? util::Table::fmt(r.per_sample_gflops, 2) : "-",
                 util::Table::fmt(r.blocked_gflops / baseline, 2) + "x"});
      scenario::Json rec = scenario::Json::object();
      rec.set("kind", "gemm_shape");
      rec.set("figure", s.figure);
      rec.set("layer", s.layer);
      rec.set("m", s.m);
      rec.set("n", s.n);
      rec.set("k", s.k);
      rec.set("blocked_gflops", r.blocked_gflops);
      rec.set("naive_gflops", r.naive_gflops);
      if (r.per_sample_gflops > 0) rec.set("per_sample_gflops", r.per_sample_gflops);
      rec.set("speedup", r.blocked_gflops / baseline);
      records.push_back(std::move(rec));
    }
  }
  t.print(std::cout);

  std::printf("\n=== Training step: wall time and heap traffic (steady state) ===\n");
  util::Table ts({"preset", "model", "batch", "ms/step", "~GF/s", "allocs/step", "bytes/step"});
  for (const char* preset :
       {"fig03_lr_mnist", "fig04_cnn_mnist", "fig05_cnn_cifar", "fig06_vgg_imagenet"}) {
    const auto r = bench_train_step(preset, budget_ms);
    ts.add_row({r.preset, r.model, util::Table::fmt_int(static_cast<long long>(r.batch)),
                util::Table::fmt(r.ms_per_step, 3), util::Table::fmt(r.gflops, 2),
                util::Table::fmt_int(static_cast<long long>(r.allocs_per_step)),
                util::Table::fmt_int(static_cast<long long>(r.bytes_per_step))});
    scenario::Json rec = scenario::Json::object();
    rec.set("kind", "train_step");
    rec.set("preset", r.preset);
    rec.set("model", r.model);
    rec.set("batch", r.batch);
    rec.set("ms_per_step", r.ms_per_step);
    rec.set("allocs_per_step", r.allocs_per_step);
    rec.set("bytes_per_step", r.bytes_per_step);
    records.push_back(std::move(rec));
  }
  ts.print(std::cout);
  std::printf("(allocs/step and bytes/step must be 0 in steady state — gemm_test enforces it)\n");

  if (const std::string* path = flags.get("json")) {
    std::ofstream out(*path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path->c_str());
      return 1;
    }
    for (const auto& rec : records) out << rec.dump() << "\n";
    std::printf("\nwrote %zu records to %s\n", records.size(), path->c_str());
  }
  return 0;
}
