// Fig. 7 reproduction: box plot of per-group local-training times for 100
// workers grouped by Alg. 3 at xi = 0.3. The paper shows that workers with
// comparable training time land in the same group (their instance: overall
// range 8.1s-61.6s, e.g. group 7 spanning 49.1s-61.6s).

#include <algorithm>

#include "common.hpp"
#include "core/grouping.hpp"
#include "sim/cluster.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace airfedga;
  bench::FlagParser flags("Fig. 7: box plot of per-group local-training times (Alg. 3, xi=0.3)");
  if (auto ec = flags.parse(argc, argv)) return *ec;

  auto tt = data::make_mnist_like(2000, 100, 1);
  util::Rng rng(42);
  auto partition = data::partition_label_skew(tt.train, 100, rng);
  data::DataStats stats(tt.train, partition);

  sim::ClusterModel::Config ccfg;
  ccfg.base_seconds = 6.0;
  ccfg.seed = 43;
  sim::ClusterModel cluster(100, ccfg);
  const auto lt = cluster.local_times();

  core::GroupingConfig gcfg;
  gcfg.xi = 0.3;
  gcfg.aircomp_upload_seconds = 0.01;
  gcfg.convergence.model_bound_sq = 50.0;  // planning bound for a small model
  const auto res = core::airfedga_grouping(stats, lt, gcfg);

  const auto [mn, mx] = std::minmax_element(lt.begin(), lt.end());
  std::printf("=== Fig. 7: grouping of 100 workers by local training time (xi = 0.3) ===\n");
  std::printf("local training times span %.1fs .. %.1fs, %zu groups\n\n", *mn, *mx,
              res.groups.size());

  // Sort groups by median time for a paper-like left-to-right box plot.
  std::vector<std::size_t> order(res.groups.size());
  for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
  std::vector<util::BoxplotSummary> boxes(res.groups.size());
  for (std::size_t j = 0; j < res.groups.size(); ++j) {
    std::vector<double> times;
    for (auto w : res.groups[j]) times.push_back(lt[w]);
    boxes[j] = util::boxplot(times);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return boxes[a].median < boxes[b].median; });

  util::Table t({"group", "size", "min(s)", "q1(s)", "median(s)", "q3(s)", "max(s)", "EMD"});
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const auto j = order[rank];
    t.add_row({util::Table::fmt_int(static_cast<long long>(rank + 1)),
               util::Table::fmt_int(static_cast<long long>(res.groups[j].size())),
               util::Table::fmt(boxes[j].min, 1), util::Table::fmt(boxes[j].q1, 1),
               util::Table::fmt(boxes[j].median, 1), util::Table::fmt(boxes[j].q3, 1),
               util::Table::fmt(boxes[j].max, 1),
               util::Table::fmt(stats.emd(res.groups[j]), 3)});
  }
  t.print(std::cout);
  t.write_csv(bench::results_dir() + "/fig07_boxplot.csv");

  std::printf("\nconstraint check: xi * Delta_l = %.1fs; max intra-group spread = ", 0.3 * (*mx - *mn));
  double worst = 0.0;
  for (const auto& b : boxes) worst = std::max(worst, b.max - b.min);
  std::printf("%.1fs\n", worst);
  return 0;
}
