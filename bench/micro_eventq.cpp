// Event-queue microbenchmark: schedule/pop throughput of the binary-heap
// vs calendar EventQueue backends at up to >= 1e5 pending events, under
// the two access patterns the scheduling loop produces:
//
//   drain  bulk-schedule N events, then pop all of them (seed_queue at a
//          huge population, then the run's tail);
//   hold   steady state: every pop schedules a successor near the new
//          clock (the classic hold model; what a long run looks like).
//
// Every measured workload also records its pop sequence on both backends
// and the bench exits 1 if they differ in any (time, seq, kind, actor)
// field — the throughput numbers are only meaningful if the backends are
// observably identical. Tie coverage is built in: event times are
// quantized so many events share a timestamp and seq must break the tie.
//
// Usage: micro_eventq [--json=<path>] [--max-events=<n>] [--hold-factor=<k>]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/metrics.hpp"
#include "scenario/json.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace airfedga;

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* backend_name(sim::QueueBackend b) {
  return b == sim::QueueBackend::kBinaryHeap ? "heap" : "calendar";
}

/// One popped event, recorded for the cross-backend identity check.
struct PopRec {
  double time;
  std::uint64_t seq;
  int kind;
  std::size_t actor;
  bool operator==(const PopRec&) const = default;
};

struct WorkloadResult {
  double schedule_ops_per_s = 0;  ///< bulk schedules (drain) or 0 (hold)
  double pop_ops_per_s = 0;       ///< bulk pops (drain) or pop+schedule pairs (hold)
  std::vector<PopRec> trace;
  /// Pending-depth distribution observed at each pop (same shape as the
  /// scheduling loop's `eventq.pending` histogram in results.jsonl).
  obs::MetricsSnapshot::HistogramData pending;
};

/// Bucket bounds for the pending-depth histogram: power-of-4 steps up to
/// 1M pending events (the population scale-out target), overflow above.
std::vector<double> pending_bounds() {
  std::vector<double> b;
  for (double x = 1.0; x <= (1u << 20); x *= 4.0) b.push_back(x);
  return b;
}

obs::MetricsSnapshot::HistogramData snapshot_histogram(const char* name,
                                                       const obs::Histogram& h) {
  return {name, h.bounds(), h.counts(), h.count(), h.sum()};
}

scenario::Json histogram_json(const obs::MetricsSnapshot::HistogramData& h) {
  scenario::Json bounds = scenario::Json::array();
  for (double b : h.bounds) bounds.push_back(scenario::Json(b));
  scenario::Json counts = scenario::Json::array();
  for (std::uint64_t c : h.counts) counts.push_back(scenario::Json(c));
  scenario::Json j = scenario::Json::object();
  j.set("bounds", std::move(bounds));
  j.set("counts", std::move(counts));
  j.set("count", h.count);
  j.set("sum", h.sum);
  return j;
}

/// Quantizes `x` onto a grid of `cell` so distinct draws collide into
/// timestamp ties (seq must break them; the identity check covers it).
double quantize(double x, double cell) { return std::floor(x / cell) * cell; }

/// drain: schedule `n` tie-heavy events over a span of n/8 virtual
/// seconds, then pop the queue empty. Times are pre-generated so the RNG
/// is outside both timed sections.
WorkloadResult run_drain(sim::QueueBackend be, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  const double span = static_cast<double>(n) / 8.0;
  const double cell = span / (static_cast<double>(n) / 4.0);  // ~4 events per timestamp
  std::vector<double> times(n);
  for (auto& t : times) t = quantize(rng.uniform(0.0, span), cell);

  sim::EventQueue q(be);
  WorkloadResult r;
  double t0 = now_seconds();
  for (std::size_t i = 0; i < n; ++i) q.schedule(times[i], static_cast<int>(i & 3), i);
  r.schedule_ops_per_s = static_cast<double>(n) / (now_seconds() - t0);

  r.trace.reserve(n);
  t0 = now_seconds();
  while (!q.empty()) {
    const sim::Event e = q.pop();
    r.trace.push_back({e.time, e.seq, e.kind, e.actor});
  }
  r.pop_ops_per_s = static_cast<double>(n) / (now_seconds() - t0);

  // Pending depth after the i-th pop of a pure drain is exactly n-1-i, so
  // the histogram fills outside the timed loop — the measured pops stay
  // unperturbed and the distribution is still the one a sampler would see.
  obs::Histogram depth(pending_bounds());
  for (std::size_t i = 0; i < n; ++i) depth.record(static_cast<double>(n - 1 - i));
  r.pending = snapshot_histogram("eventq.pending", depth);
  return r;
}

/// hold: prefill `n` events, then `ops` pop+schedule pairs where each
/// successor lands near the advancing clock (zero increments allowed, so
/// schedule-at-now ties are exercised too).
WorkloadResult run_hold(sim::QueueBackend be, std::size_t n, std::size_t ops,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  const double span = static_cast<double>(n) / 8.0;
  const double cell = span / (static_cast<double>(n) / 4.0);
  const double gap = 2.0 * span / static_cast<double>(n);  // keeps density steady

  sim::EventQueue q(be);
  for (std::size_t i = 0; i < n; ++i)
    q.schedule(quantize(rng.uniform(0.0, span), cell), static_cast<int>(i & 3), i);

  // Pre-generate the increments: the RNG stream must not depend on popped
  // state, and its cost must stay outside the timed loop.
  std::vector<double> inc(ops);
  for (auto& d : inc) d = quantize(rng.uniform(0.0, gap), cell);

  WorkloadResult r;
  r.trace.reserve(ops);
  const double t0 = now_seconds();
  for (std::size_t k = 0; k < ops; ++k) {
    const sim::Event e = q.pop();
    r.trace.push_back({e.time, e.seq, e.kind, e.actor});
    q.schedule(e.time + inc[k], e.kind, e.actor);
  }
  r.pop_ops_per_s = static_cast<double>(ops) / (now_seconds() - t0);

  // Hold keeps the population constant: every pop observes n-1 pending
  // (the successor is scheduled right after), so fill outside the timing.
  obs::Histogram depth(pending_bounds());
  for (std::size_t k = 0; k < ops; ++k) depth.record(static_cast<double>(n - 1));
  r.pending = snapshot_histogram("eventq.pending", depth);
  return r;
}

/// Index of the first divergence between two traces, or npos when equal.
std::size_t first_mismatch(const std::vector<PopRec>& a, const std::vector<PopRec>& b) {
  if (a.size() != b.size()) return std::min(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i] == b[i])) return i;
  return static_cast<std::size_t>(-1);
}

}  // namespace

int main(int argc, char** argv) {
  bench::FlagParser flags(
      "Event-queue microbenchmark: binary heap vs calendar queue schedule/pop throughput under "
      "drain and hold workloads, with a cross-backend pop-sequence identity check (exit 1 on any "
      "divergence).");
  flags.add("json", "append one JSONL record per measurement to this file");
  flags.add("max-events", "largest pending-event count in the size grid (default 100000)");
  flags.add("hold-factor", "hold workload runs size*factor pop+schedule pairs (default 2)");
  if (auto ec = flags.parse(argc, argv)) return *ec;

  std::size_t max_events = 100000;
  if (const std::string* v = flags.get("max-events")) max_events = std::strtoull(v->c_str(), nullptr, 10);
  std::size_t hold_factor = 2;
  if (const std::string* v = flags.get("hold-factor")) hold_factor = std::strtoull(v->c_str(), nullptr, 10);
  if (max_events < 1000 || hold_factor == 0) {
    std::fprintf(stderr, "invalid --max-events (>= 1000) or --hold-factor (>= 1)\n");
    return 2;
  }

  std::vector<std::size_t> sizes = {1000, 10000};
  for (std::size_t s : {std::size_t{100000}, max_events})
    if (s <= max_events && s > sizes.back()) sizes.push_back(s);

  constexpr std::uint64_t kSeed = 42;
  constexpr sim::QueueBackend kBackends[] = {sim::QueueBackend::kBinaryHeap,
                                             sim::QueueBackend::kCalendar};

  std::vector<scenario::Json> records;
  bool identical = true;

  util::Table t({"workload", "pending", "backend", "sched Mops/s", "pop Mops/s", "identical"});
  for (std::size_t n : sizes) {
    WorkloadResult drain[2];
    WorkloadResult hold[2];
    for (int b = 0; b < 2; ++b) {
      drain[b] = run_drain(kBackends[b], n, kSeed + n);
      hold[b] = run_hold(kBackends[b], n, n * hold_factor, kSeed + n + 1);
    }
    struct Row {
      const char* workload;
      const WorkloadResult* res;
    };
    const Row rows[] = {{"drain", drain}, {"hold", hold}};
    for (const auto& [workload, res] : rows) {
      const std::size_t bad = first_mismatch(res[0].trace, res[1].trace);
      const bool ok = bad == static_cast<std::size_t>(-1);
      identical = identical && ok;
      if (!ok)
        std::fprintf(stderr, "FAIL: %s n=%zu pop sequences diverge at index %zu\n", workload, n,
                     bad);
      for (int b = 0; b < 2; ++b) {
        t.add_row({workload, util::Table::fmt_int(static_cast<long long>(n)),
                   backend_name(kBackends[b]),
                   res[b].schedule_ops_per_s > 0
                       ? util::Table::fmt(res[b].schedule_ops_per_s / 1e6, 2)
                       : "-",
                   util::Table::fmt(res[b].pop_ops_per_s / 1e6, 2), ok ? "yes" : "NO"});
        scenario::Json rec = scenario::Json::object();
        rec.set("kind", "eventq");
        rec.set("workload", workload);
        rec.set("pending", n);
        rec.set("backend", backend_name(kBackends[b]));
        if (res[b].schedule_ops_per_s > 0)
          rec.set("schedule_ops_per_s", res[b].schedule_ops_per_s);
        rec.set("pop_ops_per_s", res[b].pop_ops_per_s);
        rec.set("identical", scenario::Json(ok));
        rec.set("pending_depth", histogram_json(res[b].pending));
        records.push_back(std::move(rec));
      }
    }
  }

  std::printf("=== EventQueue backends: heap vs calendar ===\n");
  t.print(std::cout);
  std::printf("(hold pop Mops/s counts pop+schedule pairs; identical = both backends popped the "
              "same (time, seq, kind, actor) sequence)\n");

  if (const std::string* path = flags.get("json")) {
    std::ofstream out(*path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path->c_str());
      return 1;
    }
    for (const auto& rec : records) out << rec.dump() << "\n";
    std::printf("\nwrote %zu records to %s\n", records.size(), path->c_str());
  }
  return identical ? 0 : 1;
}
