// Ablation (beyond the paper's tables; motivated by §V-C): what does each
// ingredient of the grouping policy buy? Air-FedGA is run with four
// different groupings on the same workload:
//   Alg. 3           — the full objective (time + EMD + aggregation error)
//   TiFL tiers       — time-only quantile tiers
//   random           — data-balanced but time-oblivious groups
//   single group     — no grouping (synchronous corner, Corollary 2)

#include "common.hpp"
#include "core/grouping.hpp"
#include "sim/cluster.hpp"

int main(int argc, char** argv) {
  using namespace airfedga;
  bench::FlagParser flags("Ablation: grouping policy under Air-FedGA aggregation");
  if (auto ec = flags.parse(argc, argv)) return *ec;
  const std::size_t workers = 60;

  bench::Experiment base(data::make_mnist_like(3000, 800, 9), workers,
                         [] { return ml::make_mlp(784, 10, 64); });
  base.cfg.learning_rate = 1.0f;
  base.cfg.batch_size = 0;
  base.cfg.time_budget = 9000.0;
  base.cfg.eval_every = 10;
  base.cfg.eval_samples = 500;

  sim::ClusterModel cluster(workers, base.cfg.cluster);
  const auto lt = cluster.local_times();
  data::DataStats stats(base.train, base.cfg.partition);

  // Reference Alg. 3 run fixes the group count for the ablations.
  fl::AirFedGA reference;
  const fl::Metrics ref_run = reference.run(base.cfg);
  const std::size_t m = reference.groups().size();

  util::Rng rng(99);
  struct Variant {
    std::string name;
    std::optional<data::WorkerGroups> groups;
  };
  std::vector<Variant> variants;
  variants.push_back({"Alg.3 (full)", std::nullopt});
  variants.push_back({"TiFL tiers", core::tifl_grouping(lt, m)});
  variants.push_back({"random", core::random_grouping(workers, m, rng)});
  data::WorkerGroups one(1);
  for (std::size_t w = 0; w < workers; ++w) one[0].push_back(w);
  variants.push_back({"single group", one});

  util::Table t({"grouping", "groups", "mean EMD", "avg round(s)", "t@80%(s)", "t@85%(s)",
                 "final acc"});
  for (auto& v : variants) {
    fl::Metrics res;
    data::WorkerGroups groups;
    if (v.groups) {
      fl::MechanismConfig opts;
      opts.groups_override = *v.groups;
      fl::AirFedGA m2(opts);
      res = m2.run(base.cfg);
      groups = *v.groups;
    } else {
      res = ref_run;
      groups = reference.groups();
    }
    auto cell = [&](double target) {
      const double tt = res.time_to_accuracy(target);
      return tt < 0 ? std::string("-") : util::Table::fmt(tt, 0);
    };
    t.add_row({v.name, util::Table::fmt_int(static_cast<long long>(groups.size())),
               util::Table::fmt(stats.mean_emd(groups), 3),
               util::Table::fmt(res.average_round_time(), 2), cell(0.80), cell(0.85),
               util::Table::fmt(res.final_accuracy(), 4)});
  }

  std::printf("=== Ablation: grouping policy under Air-FedGA aggregation ===\n");
  t.print(std::cout);
  t.write_csv(bench::results_dir() + "/ablation_grouping.csv");
  return 0;
}
