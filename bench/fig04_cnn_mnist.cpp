// Fig. 4 reproduction: Loss/Accuracy vs. time, CNN on MNIST-like images,
// Dynamic vs Air-FedAvg vs Air-FedGA.
//
// Scale-down vs. paper: the CNN keeps the paper's topology (two 5x5 conv
// blocks + two dense layers) at width_scale 0.15 (~31k parameters), and
// mini-batch local steps replace the full local gradient to fit the CPU
// budget. Wireless/heterogeneity parameters are the paper's.

#include "common.hpp"

int main() {
  using namespace airfedga;
  const double horizon = 5000.0;

  bench::Experiment exp(data::make_mnist_image_like(6000, 1000, 2), /*workers=*/100,
                        [] { return ml::make_cnn_mnist(0.15, 28); });
  exp.cfg.learning_rate = 0.03f;
  exp.cfg.batch_size = 16;
  exp.cfg.local_steps = 3;
  exp.cfg.time_budget = horizon;
  exp.cfg.eval_every = 10;
  exp.cfg.eval_samples = 500;

  fl::DynamicAirComp dynamic;
  fl::AirFedAvg airfedavg;
  fl::AirFedGA airfedga;

  std::vector<std::string> names = {"Dynamic", "Air-FedAvg", "Air-FedGA"};
  std::vector<fl::Metrics> runs;
  runs.push_back(dynamic.run(exp.cfg));
  runs.push_back(airfedavg.run(exp.cfg));
  runs.push_back(airfedga.run(exp.cfg));

  bench::print_curves("Fig. 4: CNN on MNIST-like, loss/accuracy vs time", names, runs,
                      /*step=*/250.0, horizon);
  // Targets scaled to the CPU-budget trajectory (the paper's GPU runs put
  // 80/85/90% inside 5000 s; our from-scratch CNN reaches the low 60s).
  std::printf("\n--- time to stable accuracy ---\n");
  bench::print_time_to_accuracy(names, runs, {0.40, 0.50, 0.60});
  bench::dump_csv("fig04", names, runs);
  return 0;
}
