// Fig. 4 reproduction: Loss/Accuracy vs. time, CNN on MNIST-like images,
// Dynamic vs Air-FedAvg vs Air-FedGA.
//
// The experiment setup lives in the `fig04_cnn_mnist` scenario preset
// (src/scenario/presets.cpp) — `airfedga_cli run fig04_cnn_mnist`
// reproduces this binary's metrics digests exactly. Scale-down vs. paper:
// the CNN keeps the paper's topology (two 5x5 conv blocks + two dense
// layers) at width_scale 0.15 (~31k parameters), and mini-batch local
// steps replace the full local gradient to fit the CPU budget.
// Wireless/heterogeneity parameters are the paper's.

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace airfedga;
  bench::FlagParser flags("Fig. 4: CNN on MNIST-like, Dynamic vs Air-FedAvg vs Air-FedGA");
  if (auto ec = flags.parse(argc, argv)) return *ec;

  const scenario::ScenarioSpec& spec = scenario::preset("fig04_cnn_mnist");
  const double horizon = spec.time_budget;
  auto built = scenario::build(spec);
  const std::vector<fl::Metrics> runs = bench::run_all(built);
  const std::vector<std::string>& names = built.mechanism_names;

  bench::print_curves("Fig. 4: CNN on MNIST-like, loss/accuracy vs time", names, runs,
                      /*step=*/250.0, horizon);
  // Targets scaled to the CPU-budget trajectory (the paper's GPU runs put
  // 80/85/90% inside 5000 s; our from-scratch CNN reaches the low 60s).
  std::printf("\n--- time to stable accuracy ---\n");
  bench::print_time_to_accuracy(names, runs, {0.40, 0.50, 0.60});
  bench::dump_csv("fig04", names, runs);
  bench::print_digests(names, runs);
  bench::print_engine_summary(names, runs);
  return 0;
}
