// Fig. 5 reproduction: Loss/Accuracy vs. time, CNN on CIFAR-10-like data,
// Dynamic vs Air-FedAvg vs Air-FedGA. The paper's curves plateau around
// 60% accuracy; the synthetic preset is tuned for the same plateau.
//
// Scale-down vs. paper: 3x16x16 inputs instead of 3x32x32, width_scale
// 0.25 (~38k parameters), mini-batch local steps.

#include "common.hpp"

int main() {
  using namespace airfedga;
  // Horizon trimmed to half the paper's 5000 s so the three CNN runs fit
  // the CPU budget; the mechanism ordering is established well before.
  const double horizon = 2500.0;

  bench::Experiment exp(data::make_cifar10_like(6000, 1000, 3), /*workers=*/100,
                        [] { return ml::make_cnn_cifar(0.2, 16); });
  exp.cfg.learning_rate = 0.3f;
  exp.cfg.batch_size = 16;
  exp.cfg.local_steps = 2;
  exp.cfg.time_budget = horizon;
  exp.cfg.eval_every = 10;
  exp.cfg.eval_samples = 400;

  fl::DynamicAirComp dynamic;
  fl::AirFedAvg airfedavg;
  fl::AirFedGA airfedga;

  std::vector<std::string> names = {"Dynamic", "Air-FedAvg", "Air-FedGA"};
  std::vector<fl::Metrics> runs;
  runs.push_back(dynamic.run(exp.cfg));
  runs.push_back(airfedavg.run(exp.cfg));
  runs.push_back(airfedga.run(exp.cfg));

  bench::print_curves("Fig. 5: CNN on CIFAR-10-like, loss/accuracy vs time", names, runs,
                      /*step=*/125.0, horizon);
  // Targets scaled to the CPU-budget trajectory, like Fig. 4.
  std::printf("\n--- time to stable accuracy ---\n");
  bench::print_time_to_accuracy(names, runs, {0.20, 0.25, 0.30});
  bench::dump_csv("fig05", names, runs);
  return 0;
}
