// Fig. 5 reproduction: Loss/Accuracy vs. time, CNN on CIFAR-10-like data,
// Dynamic vs Air-FedAvg vs Air-FedGA. The paper's curves plateau around
// 60% accuracy; the synthetic preset is tuned for the same plateau.
//
// The experiment setup lives in the `fig05_cnn_cifar` scenario preset
// (src/scenario/presets.cpp). Scale-down vs. paper: 3x16x16 inputs
// instead of 3x32x32, width_scale 0.2, mini-batch local steps, and a
// horizon trimmed to half the paper's 5000 s so the three CNN runs fit
// the CPU budget; the mechanism ordering is established well before.

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace airfedga;
  bench::FlagParser flags("Fig. 5: CNN on CIFAR-10-like, Dynamic vs Air-FedAvg vs Air-FedGA");
  if (auto ec = flags.parse(argc, argv)) return *ec;

  const scenario::ScenarioSpec& spec = scenario::preset("fig05_cnn_cifar");
  const double horizon = spec.time_budget;
  auto built = scenario::build(spec);
  const std::vector<fl::Metrics> runs = bench::run_all(built);
  const std::vector<std::string>& names = built.mechanism_names;

  bench::print_curves("Fig. 5: CNN on CIFAR-10-like, loss/accuracy vs time", names, runs,
                      /*step=*/125.0, horizon);
  // Targets scaled to the CPU-budget trajectory, like Fig. 4.
  std::printf("\n--- time to stable accuracy ---\n");
  bench::print_time_to_accuracy(names, runs, {0.20, 0.25, 0.30});
  bench::dump_csv("fig05", names, runs);
  bench::print_digests(names, runs);
  bench::print_engine_summary(names, runs);
  return 0;
}
