#pragma once

// Shared harness for the figure/table reproduction binaries.
//
// Every bench builds the paper's system setup (§VI-A): N workers (default
// 100) with kappa ~ U[1,10] compute heterogeneity, label-skew partition,
// sigma0^2 = 1 W noise, E_i = 10 J per-round energy budget, B = 1 MHz OMA
// uplink, R = 1024 sub-channels for AirComp — then runs the requested
// mechanisms and prints the series/rows the corresponding paper figure
// reports. Model sizes are scaled down from the paper's so the whole grid
// runs on a 2-core CPU box; the scaling is documented per bench and in
// docs/BENCHMARKS.md.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "fl/mechanisms.hpp"
#include "ml/zoo.hpp"
#include "scenario/presets.hpp"
#include "scenario/spec.hpp"
#include "util/table.hpp"

namespace airfedga::bench {

/// Shared `--flag=value` parser for every bench binary: consistent
/// `--help` output (exit 0) and unknown-argument errors (exit 2) instead
/// of each main re-parsing argv by hand.
///
///   bench::FlagParser flags("Fig. 10 reproduction: ...");
///   flags.add("threads", "lane counts for the engine sweep, e.g. 1,2,4");
///   if (auto ec = flags.parse(argc, argv)) return *ec;
///   if (const std::string* v = flags.get("threads")) ...
class FlagParser {
 public:
  explicit FlagParser(std::string description) : description_(std::move(description)) {}

  /// Registers `--name=<value>` with a help line.
  void add(std::string name, std::string help) {
    flags_.push_back({std::move(name), std::move(help), std::nullopt});
  }

  /// Parses argv. Returns the exit code main should return (0 for
  /// `--help`, 2 for an unknown/malformed argument, with a message on the
  /// right stream), or nullopt when the program should continue.
  std::optional<int> parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        print_help(stdout, argv[0]);
        return 0;
      }
      bool matched = false;
      for (auto& f : flags_) {
        const std::string prefix = "--" + f.name + "=";
        if (arg.rfind(prefix, 0) == 0) {
          f.value = arg.substr(prefix.size());
          matched = true;
          break;
        }
      }
      if (!matched) {
        std::fprintf(stderr, "unknown argument: %s\n\n", arg.c_str());
        print_help(stderr, argv[0]);
        return 2;
      }
    }
    return std::nullopt;
  }

  /// The value of `--name=...`, or nullptr when the flag was not given.
  [[nodiscard]] const std::string* get(const std::string& name) const {
    for (const auto& f : flags_)
      if (f.name == name && f.value) return &*f.value;
    return nullptr;
  }

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::optional<std::string> value;
  };

  void print_help(std::FILE* out, const char* argv0) const {
    std::fprintf(out, "%s\n\nusage: %s [--help]", description_.c_str(), argv0);
    for (const auto& f : flags_) std::fprintf(out, " [--%s=<value>]", f.name.c_str());
    std::fprintf(out, "\n");
    for (const auto& f : flags_)
      std::fprintf(out, "  --%-12s %s\n", (f.name + "=").c_str(), f.help.c_str());
  }

  std::string description_;
  std::vector<Flag> flags_;
};

/// Runs every mechanism of a built scenario serially and returns the
/// metric series in mechanism order (the registry is the single source of
/// truth for the setup; the bench only presents the results).
inline std::vector<fl::Metrics> run_all(scenario::BuiltScenario& built) {
  std::vector<fl::Metrics> runs;
  runs.reserve(built.mechanisms.size());
  for (auto& m : built.mechanisms) runs.push_back(m->run(built.cfg));
  return runs;
}

/// Prints each run's bit-identical metrics digest. `airfedga_cli run
/// <preset>` reports the same digests at equal seeds/threads, which is the
/// cross-binary reproducibility check the CI regression leg relies on.
inline void print_digests(const std::vector<std::string>& names,
                          const std::vector<fl::Metrics>& runs) {
  std::printf("\n--- metrics digests (cross-check: airfedga_cli run <preset>) ---\n");
  for (std::size_t i = 0; i < runs.size(); ++i)
    std::printf("%-12s %s\n", names[i].c_str(), runs[i].digest().c_str());
}

/// Prints the one-line engine summary every figure bench shares: the
/// EngineStats wall clocks plus the observability counters (lane-pool
/// activity, warm/cold worker reuse) from the run's metrics snapshot —
/// the same values `airfedga_cli` serializes into results.jsonl.
inline void print_engine_summary(const std::vector<std::string>& names,
                                 const std::vector<fl::Metrics>& runs) {
  std::printf("\n--- engine summary (wall-clock; run-to-run variable) ---\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const fl::EngineStats& es = runs[i].engine_stats();
    std::uint64_t tasks = 0, warm = 0, cold = 0;
    for (const auto& [name, value] : runs[i].obs_snapshot().counters) {
      if (name == "pool.tasks") tasks = value;
      if (name == "pool.warm_hits") warm = value;
      if (name == "pool.cold_replays") cold = value;
    }
    std::printf("%-12s barriers=%zu barrier_s=%.2f evals=%zu eval_s=%.2f coop_gemms=%zu "
                "helper_tiles=%zu pool_tasks=%llu warm_hits=%llu cold_replays=%llu\n",
                names[i].c_str(), es.barriers, es.barrier_seconds, es.evals, es.eval_seconds,
                es.coop_gemms, es.coop_helper_tiles, static_cast<unsigned long long>(tasks),
                static_cast<unsigned long long>(warm), static_cast<unsigned long long>(cold));
  }
}

/// Canonical experiment configuration builder.
struct Experiment {
  data::Dataset train;
  data::Dataset test;
  fl::FLConfig cfg;

  Experiment(data::TrainTest&& tt, std::size_t workers, ml::ModelFactory factory,
             std::uint64_t seed = 42) {
    train = std::move(tt.train);
    test = std::move(tt.test);
    util::Rng rng(seed);
    cfg.train = &train;
    cfg.test = &test;
    cfg.partition = data::partition_label_skew(train, workers, rng);
    cfg.model_factory = std::move(factory);
    cfg.cluster.base_seconds = 6.0;
    cfg.cluster.seed = seed + 1;
    cfg.fading.seed = seed + 2;
    cfg.seed = seed;
  }
};

/// Samples a recorded series onto a fixed virtual-time grid (last point at
/// or before each grid time), mirroring the paper's loss/accuracy curves.
struct GridPoint {
  double time;
  double loss;
  double accuracy;
};

inline std::vector<GridPoint> sample_grid(const fl::Metrics& m, double step, double horizon) {
  std::vector<GridPoint> out;
  const auto& pts = m.points();
  std::size_t i = 0;
  double last_loss = pts.empty() ? 0.0 : pts.front().loss;
  double last_acc = pts.empty() ? 0.0 : pts.front().accuracy;
  for (double t = step; t <= horizon + 1e-9; t += step) {
    while (i < pts.size() && pts[i].time <= t) {
      last_loss = pts[i].loss;
      last_acc = pts[i].accuracy;
      ++i;
    }
    out.push_back({t, last_loss, last_acc});
  }
  return out;
}

/// Prints the Fig. 3-6 style two-panel series for several mechanisms.
inline void print_curves(const std::string& title,
                         const std::vector<std::string>& names,
                         const std::vector<fl::Metrics>& runs, double step, double horizon) {
  std::printf("\n=== %s ===\n", title.c_str());
  util::Table loss_table([&] {
    std::vector<std::string> h = {"time(s)"};
    for (const auto& n : names) h.push_back(n + " loss");
    for (const auto& n : names) h.push_back(n + " acc");
    return h;
  }());
  std::vector<std::vector<GridPoint>> grids;
  grids.reserve(runs.size());
  for (const auto& r : runs) grids.push_back(sample_grid(r, step, horizon));
  for (std::size_t row = 0; row < grids.front().size(); ++row) {
    std::vector<std::string> cells = {util::Table::fmt(grids[0][row].time, 0)};
    for (const auto& g : grids) cells.push_back(util::Table::fmt(g[row].loss, 4));
    for (const auto& g : grids) cells.push_back(util::Table::fmt(g[row].accuracy, 4));
    loss_table.add_row(std::move(cells));
  }
  loss_table.print(std::cout);
}

/// Prints the §VI-B1-style summary: time to each accuracy target plus the
/// headline speedups of the last mechanism (Air-FedGA by convention) over
/// the others.
inline void print_time_to_accuracy(const std::vector<std::string>& names,
                                   const std::vector<fl::Metrics>& runs,
                                   const std::vector<double>& targets) {
  util::Table t([&] {
    std::vector<std::string> h = {"mechanism"};
    for (double target : targets) h.push_back("t@" + util::Table::fmt(100 * target, 0) + "%(s)");
    h.push_back("final acc");
    return h;
  }());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::vector<std::string> cells = {names[i]};
    for (double target : targets) {
      const double tt = runs[i].time_to_accuracy(target);
      cells.push_back(tt < 0 ? "-" : util::Table::fmt(tt, 0));
    }
    cells.push_back(util::Table::fmt(runs[i].final_accuracy(), 4));
    t.add_row(std::move(cells));
  }
  t.print(std::cout);

  if (runs.size() >= 2 && !targets.empty()) {
    const double target = targets.front();
    const double ours = runs.back().time_to_accuracy(target);
    if (ours > 0) {
      for (std::size_t i = 0; i + 1 < runs.size(); ++i) {
        const double other = runs[i].time_to_accuracy(target);
        if (other > 0)
          std::printf("%s reaches %.0f%% %.1f%% faster than %s (%.0fs vs %.0fs)\n",
                      names.back().c_str(), 100 * target, 100.0 * (other - ours) / other,
                      names[i].c_str(), ours, other);
      }
    }
  }
}

/// CSV dump directory for post-processing/plotting.
inline std::string results_dir() {
  std::filesystem::create_directories("bench_results");
  return "bench_results";
}

inline void dump_csv(const std::string& stem, const std::vector<std::string>& names,
                     const std::vector<fl::Metrics>& runs) {
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::string name = names[i];
    for (auto& c : name)
      if (c == ' ' || c == '/') c = '_';
    runs[i].write_csv(results_dir() + "/" + stem + "_" + name + ".csv");
  }
}

}  // namespace airfedga::bench
