// Fig. 8 reproduction: training time to reach 80%/85%/90% accuracy as a
// function of xi (the intra-group time-similarity budget of constraint
// 36d), xi in {0, 0.1, ..., 1.0}.
//
// The paper's shape: a sharp blow-up as xi -> 0 (every worker alone, no
// over-the-air gain, huge staleness), a minimum around xi ~ 0.3, and a
// slow rise toward xi = 1 (one giant group = synchronous straggler drag).
//
// Scale-down vs. paper: MLP-64 on the flat MNIST-like dataset instead of
// the CNN (the figure is about the grouping geometry, not the model), 60
// workers, capped horizon. Unreached targets print as "-".

#include "common.hpp"

int main() {
  using namespace airfedga;
  const double horizon = 12000.0;
  const std::size_t workers = 60;

  util::Table t({"xi", "groups", "t@80%(s)", "t@85%(s)", "t@90%(s)", "mean EMD"});

  for (int xi10 = 0; xi10 <= 10; ++xi10) {
    const double xi = xi10 / 10.0;

    bench::Experiment exp(data::make_mnist_like(3000, 800, 5), workers,
                          [] { return ml::make_mlp(784, 10, 64); });
    exp.cfg.learning_rate = 1.0f;
    exp.cfg.batch_size = 0;
    exp.cfg.time_budget = horizon;
    exp.cfg.max_rounds = 20000;
    exp.cfg.eval_every = 10;
    exp.cfg.eval_samples = 500;
    exp.cfg.stop_at_accuracy = 0.905;

    fl::AirFedGA::Options opts;
    opts.grouping.xi = xi;
    fl::AirFedGA ga(opts);
    const fl::Metrics res = ga.run(exp.cfg);

    data::DataStats stats(exp.train, exp.cfg.partition);
    auto cell = [&](double target) {
      const double tt = res.time_to_accuracy(target);
      return tt < 0 ? std::string("-") : util::Table::fmt(tt, 0);
    };
    t.add_row({util::Table::fmt(xi, 1),
               util::Table::fmt_int(static_cast<long long>(ga.groups().size())), cell(0.80),
               cell(0.85), cell(0.90), util::Table::fmt(stats.mean_emd(ga.groups()), 3)});
  }

  std::printf("=== Fig. 8: training time vs xi (Air-FedGA, MLP-64 on MNIST-like) ===\n");
  t.print(std::cout);
  t.write_csv(bench::results_dir() + "/fig08_xi_sweep.csv");
  return 0;
}
