// Fig. 8 reproduction: training time to reach 80%/85%/90% accuracy as a
// function of xi (the intra-group time-similarity budget of constraint
// 36d), xi in {0, 0.1, ..., 1.0}.
//
// The paper's shape: a sharp blow-up as xi -> 0 (every worker alone, no
// over-the-air gain, huge staleness), a minimum around xi ~ 0.3, and a
// slow rise toward xi = 1 (one giant group = synchronous straggler drag).
//
// The base setup lives in the `fig08_xi_sweep` scenario preset
// (src/scenario/presets.cpp); this bench sweeps the preset's
// mechanisms[0].xi knob — `airfedga_cli run fig08_xi_sweep --sweep
// mechanisms.0.xi=0,0.1,...` runs the identical grid declaratively.
// Scale-down vs. paper: MLP-64 on the flat MNIST-like dataset instead of
// the CNN (the figure is about the grouping geometry, not the model), 60
// workers, capped horizon. Unreached targets print as "-".

#include "common.hpp"
#include "data/data_stats.hpp"

int main(int argc, char** argv) {
  using namespace airfedga;
  bench::FlagParser flags("Fig. 8: Air-FedGA training time vs xi (constraint 36d sweep)");
  if (auto ec = flags.parse(argc, argv)) return *ec;

  util::Table t({"xi", "groups", "t@80%(s)", "t@85%(s)", "t@90%(s)", "mean EMD"});
  std::vector<std::string> run_names;
  std::vector<fl::Metrics> runs;

  for (int xi10 = 0; xi10 <= 10; ++xi10) {
    const double xi = xi10 / 10.0;

    scenario::ScenarioSpec spec = scenario::preset("fig08_xi_sweep");
    spec.mechanisms.at(0).xi = xi;
    auto built = scenario::build(spec);
    const fl::Metrics res = built.mechanisms.at(0)->run(built.cfg);
    const auto* ga = dynamic_cast<const fl::AirFedGA*>(built.mechanisms.at(0).get());

    data::DataStats stats(built.data->train, built.cfg.partition);
    auto cell = [&](double target) {
      const double tt = res.time_to_accuracy(target);
      return tt < 0 ? std::string("-") : util::Table::fmt(tt, 0);
    };
    t.add_row({util::Table::fmt(xi, 1),
               util::Table::fmt_int(static_cast<long long>(ga->groups().size())), cell(0.80),
               cell(0.85), cell(0.90), util::Table::fmt(stats.mean_emd(ga->groups()), 3)});
    run_names.push_back("xi=" + util::Table::fmt(xi, 1));
    runs.push_back(res);
  }

  std::printf("=== Fig. 8: training time vs xi (Air-FedGA, MLP-64 on MNIST-like) ===\n");
  t.print(std::cout);
  bench::print_engine_summary(run_names, runs);
  t.write_csv(bench::results_dir() + "/fig08_xi_sweep.csv");
  return 0;
}
