// Fig. 9 reproduction: cumulative over-the-air aggregation energy (Eq. 7)
// consumed before reaching each accuracy target, for the three AirComp
// mechanisms, on the MNIST-like (left panel) and CIFAR-10-like (right
// panel) workloads.
//
// Paper shape: Air-FedAvg cheapest (fewest aggregations per worker),
// Air-FedGA slightly above it (asynchronous groups aggregate more often),
// Dynamic clearly worst (its data-agnostic subsets need many more rounds).
//
// The two panels live in the `fig09_energy_mnist` / `fig09_energy_cifar`
// scenario presets (src/scenario/presets.cpp); the CNN panel is trimmed
// (horizon + targets) to fit the CPU budget — the ordering is established
// long before the paper's 55% plateau.

#include "common.hpp"

namespace {

using namespace airfedga;

void panel(const char* title, const std::string& preset_name,
           const std::vector<double>& targets, const std::string& stem) {
  scenario::ScenarioSpec spec = scenario::preset(preset_name);
  // Keep the early-stop threshold coupled to the highest reported target
  // (this re-derives the preset's stored value; changing `targets` here
  // moves the stop rule with it instead of silently truncating a column).
  spec.stop_at_accuracy = targets.back() + 0.015;
  auto built = scenario::build(spec);
  const std::vector<fl::Metrics> runs = bench::run_all(built);
  const std::vector<std::string>& names = built.mechanism_names;

  std::printf("\n=== Fig. 9 (%s): aggregation energy to reach accuracy ===\n", title);
  util::Table t([&] {
    std::vector<std::string> h = {"mechanism"};
    for (double target : targets) h.push_back("E@" + util::Table::fmt(100 * target, 0) + "% (J)");
    h.push_back("total (J)");
    return h;
  }());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::vector<std::string> cells = {names[i]};
    for (double target : targets) {
      const double e = runs[i].energy_to_accuracy(target);
      cells.push_back(e < 0 ? "-" : util::Table::fmt(e, 0));
    }
    // Whole-run energy from the obs metrics registry (the
    // "substrate.energy_j" histogram the driver fills per transmission),
    // not re-derived from the point series.
    cells.push_back(util::Table::fmt(runs[i].obs_total_energy(), 0));
    t.add_row(std::move(cells));
  }
  t.print(std::cout);
  t.write_csv(bench::results_dir() + "/" + stem + ".csv");
  bench::print_digests(names, runs);
  bench::print_engine_summary(names, runs);
}

}  // namespace

int main(int argc, char** argv) {
  bench::FlagParser flags("Fig. 9: aggregation energy to reach accuracy, both panels");
  if (auto ec = flags.parse(argc, argv)) return *ec;

  panel("MLP on MNIST-like", "fig09_energy_mnist", {0.80, 0.85, 0.88}, "fig09_mnist");
  panel("CNN on CIFAR-10-like", "fig09_energy_cifar", {0.25, 0.30, 0.35}, "fig09_cifar");
  return 0;
}
