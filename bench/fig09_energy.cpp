// Fig. 9 reproduction: cumulative over-the-air aggregation energy (Eq. 7)
// consumed before reaching each accuracy target, for the three AirComp
// mechanisms, on the MNIST-like (left panel) and CIFAR-10-like (right
// panel) workloads.
//
// Paper shape: Air-FedAvg cheapest (fewest aggregations per worker),
// Air-FedGA slightly above it (asynchronous groups aggregate more often),
// Dynamic clearly worst (its data-agnostic subsets need many more rounds).

#include "common.hpp"

namespace {

using namespace airfedga;

void panel(const char* title, bench::Experiment& exp, const std::vector<double>& targets,
           const std::string& stem) {
  exp.cfg.stop_at_accuracy = targets.back() + 0.015;

  fl::AirFedAvg airfedavg;
  fl::AirFedGA airfedga;
  fl::DynamicAirComp dynamic;
  std::vector<std::string> names = {"Air-FedAvg", "Air-FedGA", "Dynamic"};
  std::vector<fl::Metrics> runs;
  runs.push_back(airfedavg.run(exp.cfg));
  runs.push_back(airfedga.run(exp.cfg));
  runs.push_back(dynamic.run(exp.cfg));

  std::printf("\n=== Fig. 9 (%s): aggregation energy to reach accuracy ===\n", title);
  util::Table t([&] {
    std::vector<std::string> h = {"mechanism"};
    for (double target : targets) h.push_back("E@" + util::Table::fmt(100 * target, 0) + "% (J)");
    return h;
  }());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::vector<std::string> cells = {names[i]};
    for (double target : targets) {
      const double e = runs[i].energy_to_accuracy(target);
      cells.push_back(e < 0 ? "-" : util::Table::fmt(e, 0));
    }
    t.add_row(std::move(cells));
  }
  t.print(std::cout);
  t.write_csv(bench::results_dir() + "/" + stem + ".csv");
}

}  // namespace

int main() {
  {
    bench::Experiment exp(data::make_mnist_like(5000, 800, 6), /*workers=*/100,
                          [] { return ml::make_mlp(784, 10, 64); });
    exp.cfg.learning_rate = 1.0f;
    exp.cfg.batch_size = 0;
    exp.cfg.time_budget = 10000.0;
    exp.cfg.eval_every = 5;
    exp.cfg.eval_samples = 500;
    panel("MLP on MNIST-like", exp, {0.80, 0.85, 0.88}, "fig09_mnist");
  }
  {
    // CNN panel trimmed (horizon + targets) to fit the CPU budget; the
    // ordering is established long before the paper's 55% plateau.
    bench::Experiment exp(data::make_cifar10_like(5000, 800, 7), /*workers=*/100,
                          [] { return ml::make_cnn_cifar(0.2, 16); });
    exp.cfg.learning_rate = 0.03f;
    exp.cfg.batch_size = 16;
    exp.cfg.local_steps = 2;
    exp.cfg.time_budget = 3000.0;
    exp.cfg.eval_every = 10;
    exp.cfg.eval_samples = 400;
    panel("CNN on CIFAR-10-like", exp, {0.25, 0.30, 0.35}, "fig09_cifar");
  }
  return 0;
}
