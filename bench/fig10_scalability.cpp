// Fig. 10 reproduction: scalability in the number of workers N for all
// five mechanisms. Left panel: average single-round time (log scale in the
// paper). Right panel: total training time to a stable 80% accuracy.
//
// Paper shape: FedAvg's round time grows linearly with N (serialized OMA
// uploads); Air-FedAvg/Dynamic stay flat (AirComp); TiFL and Air-FedGA
// *shrink* with N (more groups -> more frequent asynchronous updates).
// Total time: OMA mechanisms degrade with N, AirComp-async mechanisms
// improve, and the gap widens with N.
//
// Scale-down vs. paper: MLP-64 on the MNIST-like dataset. The MLP's 55k
// parameters keep the OMA-vs-AirComp upload asymmetry realistic
// (1.76s/worker OMA vs 3.9ms AirComp).
//
// Engine mode: `--threads=<list>` (e.g. --threads=4 or --threads=1,2,4)
// switches to the execution-engine sweep instead: it runs a fixed workload
// at each training-lane count (a 1-lane baseline is always included),
// reports wall-clock speedup plus per-mechanism barrier-stall and
// evaluation wall time (the two serial fractions the deadline scheduler
// and sharded evaluate attack), and verifies that the recorded metrics
// are bit-identical across lane counts.

#include <chrono>
#include <string>

#include "common.hpp"
#include "util/stats.hpp"

namespace {

using namespace airfedga;

/// One engine-sweep measurement: every mechanism once, at `threads` lanes.
/// `names[i]` is `runs[i]`'s mechanism name — carried together so labels
/// can never drift from the run list.
struct SweepRun {
  double wall = 0.0;
  std::vector<std::string> names;
  std::vector<fl::Metrics> runs;
};

SweepRun run_workload(std::size_t threads) {
  const std::size_t workers = 40;
  bench::Experiment exp(data::make_mnist_like(3000, 800, 8), workers,
                        [] { return ml::make_mlp(784, 10, 64); });
  exp.cfg.learning_rate = 1.0f;
  exp.cfg.batch_size = 0;
  exp.cfg.time_budget = 8000.0;
  exp.cfg.eval_every = 5;
  exp.cfg.eval_samples = 500;
  exp.cfg.max_rounds = 60;
  exp.cfg.threads = threads;

  fl::FedAvg fedavg;
  fl::TiFL tifl(4);
  fl::AirFedGA airfedga;

  SweepRun out;
  const auto t0 = std::chrono::steady_clock::now();
  for (fl::Mechanism* mech : {static_cast<fl::Mechanism*>(&fedavg),
                              static_cast<fl::Mechanism*>(&tifl),
                              static_cast<fl::Mechanism*>(&airfedga)}) {
    out.names.push_back(mech->name());
    out.runs.push_back(mech->run(exp.cfg));
  }
  out.wall = util::wall_seconds_since(t0);
  return out;
}

/// Parses "4" / "1,2,4" into lane counts. Returns false (with a message on
/// stderr) on anything that isn't a comma-separated list of integers >= 1.
bool parse_thread_list(const std::string& list, std::vector<std::size_t>& counts) {
  if (list.empty()) {
    std::fprintf(stderr, "--threads: expected a comma-separated list of lane counts >= 1\n");
    return false;
  }
  for (std::size_t pos = 0; pos <= list.size();) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    const std::string tok = list.substr(pos, comma - pos);
    if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos ||
        tok.size() > 4 || std::stoul(tok) == 0) {
      std::fprintf(stderr, "--threads: bad lane count '%s' (want an integer in [1, 9999])\n",
                   tok.c_str());
      return false;
    }
    const std::size_t v = std::stoul(tok);
    if (std::find(counts.begin(), counts.end(), v) == counts.end()) counts.push_back(v);
    pos = comma + 1;
  }
  return true;
}

int run_thread_sweep(const std::string& list) {
  std::vector<std::size_t> counts = {1};  // the serial baseline anchors speedup
  if (!parse_thread_list(list, counts)) return 2;

  util::Table t({"threads", "wall(s)", "speedup vs 1", "bit-identical"});
  // Per-(threads, mechanism) engine instrumentation: wall time the
  // simulation thread spent blocked at training barriers and inside
  // evaluation. Deadline scheduling shrinks the former; sharded evaluation
  // the latter.
  util::Table engine_t({"threads", "mechanism", "barrier-stall(s)", "eval(s)"});
  SweepRun baseline;
  bool all_identical = true;
  for (std::size_t threads : counts) {
    SweepRun r = run_workload(threads);
    for (std::size_t i = 0; i < r.runs.size(); ++i) {
      const auto& es = r.runs[i].engine_stats();
      engine_t.add_row({util::Table::fmt_int(static_cast<long long>(threads)),
                        r.names[i], util::Table::fmt(es.barrier_seconds, 3),
                        util::Table::fmt(es.eval_seconds, 3)});
    }
    bool identical = true;
    if (threads == counts.front()) {
      baseline = std::move(r);
      t.add_row({util::Table::fmt_int(static_cast<long long>(threads)),
                 util::Table::fmt(baseline.wall, 2), "1.00", "baseline"});
      continue;
    }
    for (std::size_t i = 0; i < r.runs.size(); ++i)
      identical = identical && baseline.runs[i].bit_identical(r.runs[i]);
    all_identical = all_identical && identical;
    t.add_row({util::Table::fmt_int(static_cast<long long>(threads)),
               util::Table::fmt(r.wall, 2), util::Table::fmt(baseline.wall / r.wall, 2),
               identical ? "yes" : "NO"});
  }

  std::printf("=== Execution-engine sweep: FedAvg + TiFL + Air-FedGA, N=40, MLP-64 ===\n");
  t.print(std::cout);
  t.write_csv(bench::results_dir() + "/fig10_thread_sweep.csv");
  std::printf("\n=== Engine stats: simulation-thread barrier stalls and eval wall time ===\n");
  engine_t.print(std::cout);
  engine_t.write_csv(bench::results_dir() + "/fig10_engine_stats.csv");
  if (!all_identical) {
    std::printf("ERROR: metrics diverged across lane counts (determinism violation)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace airfedga;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) return run_thread_sweep(arg.substr(10));
    std::fprintf(stderr, "unknown argument: %s (supported: --threads=<list>)\n", arg.c_str());
    return 2;
  }

  const double target = 0.80;

  util::Table round_table(
      {"N", "FedAvg", "Air-FedAvg", "Dynamic", "TiFL", "Air-FedGA"});
  util::Table total_table(
      {"N", "FedAvg", "Air-FedAvg", "Dynamic", "TiFL", "Air-FedGA"});

  for (std::size_t workers : {20UL, 40UL, 60UL, 80UL, 100UL}) {
    bench::Experiment exp(data::make_mnist_like(std::max<std::size_t>(3000, workers * 50), 800, 8),
                          workers, [] { return ml::make_mlp(784, 10, 64); });
    exp.cfg.learning_rate = 1.0f;
    exp.cfg.batch_size = 0;
    exp.cfg.time_budget = 25000.0;
    exp.cfg.eval_every = 5;
    exp.cfg.eval_samples = 500;
    exp.cfg.stop_at_accuracy = target + 0.01;

    fl::FedAvg fedavg;
    fl::AirFedAvg airfedavg;
    fl::DynamicAirComp dynamic;
    fl::TiFL tifl(std::max<std::size_t>(2, workers / 15));
    fl::AirFedGA airfedga;

    std::vector<fl::Metrics> runs;
    runs.push_back(fedavg.run(exp.cfg));
    runs.push_back(airfedavg.run(exp.cfg));
    runs.push_back(dynamic.run(exp.cfg));
    runs.push_back(tifl.run(exp.cfg));
    runs.push_back(airfedga.run(exp.cfg));

    std::vector<std::string> round_cells = {util::Table::fmt_int(static_cast<long long>(workers))};
    std::vector<std::string> total_cells = round_cells;
    for (const auto& r : runs) {
      round_cells.push_back(util::Table::fmt(r.average_round_time(), 2));
      const double tt = r.time_to_accuracy(target);
      total_cells.push_back(tt < 0 ? "-" : util::Table::fmt(tt, 0));
    }
    round_table.add_row(std::move(round_cells));
    total_table.add_row(std::move(total_cells));
  }

  std::printf("=== Fig. 10 (left): average single-round time (s) vs N ===\n");
  round_table.print(std::cout);
  round_table.write_csv(bench::results_dir() + "/fig10_round_time.csv");
  std::printf("\n=== Fig. 10 (right): total training time (s) to %.0f%% accuracy vs N ===\n",
              100 * target);
  total_table.print(std::cout);
  total_table.write_csv(bench::results_dir() + "/fig10_total_time.csv");
  return 0;
}
