// Fig. 10 reproduction: scalability in the number of workers N for all
// five mechanisms. Left panel: average single-round time (log scale in the
// paper). Right panel: total training time to a stable 80% accuracy.
//
// Paper shape: FedAvg's round time grows linearly with N (serialized OMA
// uploads); Air-FedAvg/Dynamic stay flat (AirComp); TiFL and Air-FedGA
// *shrink* with N (more groups -> more frequent asynchronous updates).
// Total time: OMA mechanisms degrade with N, AirComp-async mechanisms
// improve, and the gap widens with N.
//
// Scale-down vs. paper: MLP-64 on the MNIST-like dataset. The MLP's 55k
// parameters keep the OMA-vs-AirComp upload asymmetry realistic
// (1.76s/worker OMA vs 3.9ms AirComp).

#include "common.hpp"

int main() {
  using namespace airfedga;
  const double target = 0.80;

  util::Table round_table(
      {"N", "FedAvg", "Air-FedAvg", "Dynamic", "TiFL", "Air-FedGA"});
  util::Table total_table(
      {"N", "FedAvg", "Air-FedAvg", "Dynamic", "TiFL", "Air-FedGA"});

  for (std::size_t workers : {20UL, 40UL, 60UL, 80UL, 100UL}) {
    bench::Experiment exp(data::make_mnist_like(std::max<std::size_t>(3000, workers * 50), 800, 8),
                          workers, [] { return ml::make_mlp(784, 10, 64); });
    exp.cfg.learning_rate = 1.0f;
    exp.cfg.batch_size = 0;
    exp.cfg.time_budget = 25000.0;
    exp.cfg.eval_every = 5;
    exp.cfg.eval_samples = 500;
    exp.cfg.stop_at_accuracy = target + 0.01;

    fl::FedAvg fedavg;
    fl::AirFedAvg airfedavg;
    fl::DynamicAirComp dynamic;
    fl::TiFL tifl(std::max<std::size_t>(2, workers / 15));
    fl::AirFedGA airfedga;

    std::vector<fl::Metrics> runs;
    runs.push_back(fedavg.run(exp.cfg));
    runs.push_back(airfedavg.run(exp.cfg));
    runs.push_back(dynamic.run(exp.cfg));
    runs.push_back(tifl.run(exp.cfg));
    runs.push_back(airfedga.run(exp.cfg));

    std::vector<std::string> round_cells = {util::Table::fmt_int(static_cast<long long>(workers))};
    std::vector<std::string> total_cells = round_cells;
    for (const auto& r : runs) {
      round_cells.push_back(util::Table::fmt(r.average_round_time(), 2));
      const double tt = r.time_to_accuracy(target);
      total_cells.push_back(tt < 0 ? "-" : util::Table::fmt(tt, 0));
    }
    round_table.add_row(std::move(round_cells));
    total_table.add_row(std::move(total_cells));
  }

  std::printf("=== Fig. 10 (left): average single-round time (s) vs N ===\n");
  round_table.print(std::cout);
  round_table.write_csv(bench::results_dir() + "/fig10_round_time.csv");
  std::printf("\n=== Fig. 10 (right): total training time (s) to %.0f%% accuracy vs N ===\n",
              100 * target);
  total_table.print(std::cout);
  total_table.write_csv(bench::results_dir() + "/fig10_total_time.csv");
  return 0;
}
