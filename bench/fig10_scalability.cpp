// Fig. 10 reproduction: scalability in the number of workers N for all
// five mechanisms. Left panel: average single-round time (log scale in the
// paper). Right panel: total training time to a stable 80% accuracy.
//
// Paper shape: FedAvg's round time grows linearly with N (serialized OMA
// uploads); Air-FedAvg/Dynamic stay flat (AirComp); TiFL and Air-FedGA
// *shrink* with N (more groups -> more frequent asynchronous updates).
// Total time: OMA mechanisms degrade with N, AirComp-async mechanisms
// improve, and the gap widens with N.
//
// The workloads live in the `fig10_nsweep` (N sweep, this default mode)
// and `fig10_scalability` (engine thread sweep) scenario presets
// (src/scenario/presets.cpp); this bench rescales the nsweep preset's
// workers/train_samples/tiers per N. Scale-down vs. paper: MLP-64 on the
// MNIST-like dataset. The MLP's 55k parameters keep the OMA-vs-AirComp
// upload asymmetry realistic (1.76s/worker OMA vs 3.9ms AirComp).
//
// Engine mode: `--threads=<list>` (e.g. --threads=4 or --threads=1,2,4)
// switches to the execution-engine sweep instead: it runs the
// `fig10_scalability` preset at each training-lane count (a 1-lane
// baseline is always included), reports wall-clock speedup plus
// per-mechanism barrier-stall and evaluation wall time (the two serial
// fractions the deadline scheduler and sharded evaluate attack), and
// verifies that the recorded metrics are bit-identical across lane
// counts. `airfedga_cli run fig10_scalability --threads=<list>` is the
// declarative equivalent (same digests, JSONL output).

#include <algorithm>
#include <string>

#include "common.hpp"
#include "scenario/runner.hpp"

namespace {

using namespace airfedga;

/// Parses "4" / "1,2,4" into lane counts. Returns false (with a message on
/// stderr) on anything that isn't a comma-separated list of integers >= 1.
bool parse_thread_list(const std::string& list, std::vector<std::size_t>& counts) {
  if (list.empty()) {
    std::fprintf(stderr, "--threads: expected a comma-separated list of lane counts >= 1\n");
    return false;
  }
  for (std::size_t pos = 0; pos <= list.size();) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    const std::string tok = list.substr(pos, comma - pos);
    if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos ||
        tok.size() > 4 || std::stoul(tok) == 0) {
      std::fprintf(stderr, "--threads: bad lane count '%s' (want an integer in [1, 9999])\n",
                   tok.c_str());
      return false;
    }
    const std::size_t v = std::stoul(tok);
    if (std::find(counts.begin(), counts.end(), v) == counts.end()) counts.push_back(v);
    pos = comma + 1;
  }
  return true;
}

int run_thread_sweep(const std::string& list) {
  std::vector<std::size_t> counts = {1};  // the serial baseline anchors speedup
  if (!parse_thread_list(list, counts)) return 2;

  const scenario::ScenarioSpec& spec = scenario::preset("fig10_scalability");
  const auto sweep = scenario::run_thread_sweep(spec, counts);

  util::Table t({"threads", "wall(s)", "speedup vs 1", "bit-identical"});
  // Per-(threads, mechanism) engine instrumentation: wall time the
  // simulation thread spent blocked at training barriers and inside
  // evaluation. Deadline scheduling shrinks the former; sharded evaluation
  // the latter.
  // The coop columns report cooperative-GEMM activity: GEMMs that
  // recruited idle lanes and the tiles those helpers computed (wall-time
  // diagnostics — excluded from the bit-identical comparison).
  util::Table engine_t(
      {"threads", "mechanism", "barrier-stall(s)", "eval(s)", "coop-gemms", "coop-tiles"});
  double baseline_wall = 0.0;
  for (std::size_t k = 0; k < sweep.by_threads.size(); ++k) {
    const auto& result = sweep.by_threads[k];
    double wall = 0.0;
    bool identical = true;
    for (const auto& run : result.runs) {
      wall += run.wall_seconds;
      identical = identical && run.bit_identical.value_or(true);
      const auto& es = run.metrics.engine_stats();
      engine_t.add_row({util::Table::fmt_int(static_cast<long long>(result.spec.threads)),
                        run.mechanism, util::Table::fmt(es.barrier_seconds, 3),
                        util::Table::fmt(es.eval_seconds, 3),
                        util::Table::fmt_int(static_cast<long long>(es.coop_gemms)),
                        util::Table::fmt_int(static_cast<long long>(es.coop_helper_tiles))});
    }
    if (k == 0) {
      baseline_wall = wall;
      t.add_row({util::Table::fmt_int(static_cast<long long>(result.spec.threads)),
                 util::Table::fmt(wall, 2), "1.00", "baseline"});
    } else {
      t.add_row({util::Table::fmt_int(static_cast<long long>(result.spec.threads)),
                 util::Table::fmt(wall, 2), util::Table::fmt(baseline_wall / wall, 2),
                 identical ? "yes" : "NO"});
    }
  }

  std::printf("=== Execution-engine sweep: FedAvg + TiFL + Air-FedGA, N=40, MLP-64 ===\n");
  t.print(std::cout);
  t.write_csv(bench::results_dir() + "/fig10_thread_sweep.csv");
  std::printf("\n=== Engine stats: simulation-thread barrier stalls and eval wall time ===\n");
  engine_t.print(std::cout);
  engine_t.write_csv(bench::results_dir() + "/fig10_engine_stats.csv");
  if (!sweep.all_identical) {
    std::printf("ERROR: metrics diverged across lane counts (determinism violation)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace airfedga;

  bench::FlagParser flags("Fig. 10: scalability in N (default) or engine thread sweep");
  flags.add("threads", "lane counts for the engine sweep, e.g. 4 or 1,2,4");
  if (auto ec = flags.parse(argc, argv)) return *ec;
  if (const std::string* list = flags.get("threads")) return run_thread_sweep(*list);

  const double target = 0.80;

  util::Table round_table(
      {"N", "FedAvg", "Air-FedAvg", "Dynamic", "TiFL", "Air-FedGA"});
  util::Table total_table(
      {"N", "FedAvg", "Air-FedAvg", "Dynamic", "TiFL", "Air-FedGA"});

  for (std::size_t workers : {20UL, 40UL, 60UL, 80UL, 100UL}) {
    scenario::ScenarioSpec spec = scenario::preset("fig10_nsweep");
    spec.partition.workers = workers;
    spec.dataset.train_samples = std::max<std::size_t>(3000, workers * 50);
    // Early stop tracks the reported target (re-derives the preset value).
    spec.stop_at_accuracy = target + 0.01;
    for (auto& m : spec.mechanisms)
      if (m.kind == "tifl") m.tiers = std::max<std::size_t>(2, workers / 15);

    auto built = scenario::build(spec);
    const std::vector<fl::Metrics> runs = bench::run_all(built);

    std::vector<std::string> round_cells = {util::Table::fmt_int(static_cast<long long>(workers))};
    std::vector<std::string> total_cells = round_cells;
    for (const auto& r : runs) {
      round_cells.push_back(util::Table::fmt(r.average_round_time(), 2));
      const double tt = r.time_to_accuracy(target);
      total_cells.push_back(tt < 0 ? "-" : util::Table::fmt(tt, 0));
    }
    round_table.add_row(std::move(round_cells));
    total_table.add_row(std::move(total_cells));
  }

  std::printf("=== Fig. 10 (left): average single-round time (s) vs N ===\n");
  round_table.print(std::cout);
  round_table.write_csv(bench::results_dir() + "/fig10_round_time.csv");
  std::printf("\n=== Fig. 10 (right): total training time (s) to %.0f%% accuracy vs N ===\n",
              100 * target);
  total_table.print(std::cout);
  total_table.write_csv(bench::results_dir() + "/fig10_total_time.csv");
  return 0;
}
