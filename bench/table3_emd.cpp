// Table III reproduction: mean earth-mover distance between each group's
// label distribution and the global one, for three grouping policies on
// the paper's setup (100 workers, 10-class label skew):
//   Original  — every worker alone (one class each): EMD = 1.8 exactly.
//   TiFL      — response-time tiers, data-agnostic.
//   Air-FedGA — Alg. 3 grouping (time-constrained, EMD-aware).

#include "common.hpp"
#include "core/grouping.hpp"
#include "sim/cluster.hpp"

int main(int argc, char** argv) {
  using namespace airfedga;
  bench::FlagParser flags("Table III: impact of the grouping method on mean EMD");
  if (auto ec = flags.parse(argc, argv)) return *ec;

  auto tt = data::make_mnist_like(5000, 100, 1);
  util::Rng rng(42);
  auto partition = data::partition_label_skew(tt.train, 100, rng);
  data::DataStats stats(tt.train, partition);

  sim::ClusterModel::Config ccfg;
  ccfg.base_seconds = 6.0;
  ccfg.seed = 43;
  sim::ClusterModel cluster(100, ccfg);
  const auto lt = cluster.local_times();

  // Original: singleton groups.
  data::WorkerGroups singletons;
  for (std::size_t w = 0; w < 100; ++w) singletons.push_back({w});
  const double emd_original = stats.mean_emd(singletons);

  // Air-FedGA grouping at the paper's xi = 0.3.
  core::GroupingConfig gcfg;
  gcfg.xi = 0.3;
  gcfg.aircomp_upload_seconds = 0.01;
  gcfg.convergence.model_bound_sq = 50.0;
  const auto ours = core::airfedga_grouping(stats, lt, gcfg);

  // TiFL: same tier count for an apples-to-apples comparison.
  const auto tifl = core::tifl_grouping(lt, ours.groups.size());
  const double emd_tifl = stats.mean_emd(tifl);

  std::printf("=== Table III: impact of grouping method on mean EMD ===\n");
  util::Table t({"method", "groups", "mean EMD", "paper"});
  t.add_row({"Original (one worker per group)", "100", util::Table::fmt(emd_original, 2), "1.80"});
  t.add_row({"TiFL", util::Table::fmt_int(static_cast<long long>(tifl.size())),
             util::Table::fmt(emd_tifl, 2), "0.69"});
  t.add_row({"Air-FedGA", util::Table::fmt_int(static_cast<long long>(ours.groups.size())),
             util::Table::fmt(ours.mean_emd, 2), "0.21"});
  t.print(std::cout);
  t.write_csv(bench::results_dir() + "/table3_emd.csv");

  std::printf("\nordering check (paper: Original > TiFL > Air-FedGA): %s\n",
              (emd_original > emd_tifl && emd_tifl > ours.mean_emd) ? "PASS" : "FAIL");
  return 0;
}
