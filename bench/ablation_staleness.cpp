// Ablation (extension beyond the paper): FedAsync-style staleness damping
// applied to Air-FedGA's group updates, w_t = w_{t-1} + (w_air - w_{t-1})
// / (1+tau)^a for a in {0, 0.3, 0.7, 1.0}. The paper handles staleness
// purely through grouping; this measures whether additional damping helps
// once groups are already time-homogeneous (expected: little to gain, and
// strong damping slows convergence — staleness is small by construction).

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace airfedga;
  bench::FlagParser flags("Ablation: FedAsync-style staleness damping on Air-FedGA");
  if (auto ec = flags.parse(argc, argv)) return *ec;

  util::Table t({"damping a", "t@80%(s)", "t@85%(s)", "max staleness", "final acc"});
  for (double a : {0.0, 0.3, 0.7, 1.0}) {
    bench::Experiment exp(data::make_mnist_like(3000, 800, 10), /*workers=*/60,
                          [] { return ml::make_mlp(784, 10, 64); });
    exp.cfg.learning_rate = 1.0f;
    exp.cfg.batch_size = 0;
    exp.cfg.time_budget = 9000.0;
    exp.cfg.eval_every = 10;
    exp.cfg.eval_samples = 500;

    fl::MechanismConfig opts;
    opts.staleness_damping = a;
    fl::AirFedGA ga(opts);
    const fl::Metrics res = ga.run(exp.cfg);

    auto cell = [&](double target) {
      const double tt = res.time_to_accuracy(target);
      return tt < 0 ? std::string("-") : util::Table::fmt(tt, 0);
    };
    t.add_row({util::Table::fmt(a, 1), cell(0.80), cell(0.85),
               util::Table::fmt(res.max_staleness(), 1),
               util::Table::fmt(res.final_accuracy(), 4)});
  }

  std::printf("=== Ablation: staleness damping on Air-FedGA ===\n");
  t.print(std::cout);
  t.write_csv(bench::results_dir() + "/ablation_staleness.csv");
  return 0;
}
