// Fig. 6 reproduction: Loss/Accuracy vs. time on the ImageNet-100-like
// dataset (100 classes), Dynamic vs Air-FedAvg vs Air-FedGA.
//
// The experiment setup lives in the `fig06_vgg_imagenet` scenario preset
// (src/scenario/presets.cpp). Scale-down vs. paper (documented in
// docs/BENCHMARKS.md): VGG-16 training from scratch on a 100-class task needs
// orders of magnitude more optimization steps than the FL round budget
// provides on a 2-core CPU — no architecture reaches the paper's 55-60%
// within ~100 aggregations. The preset therefore uses the `mlp1` model
// (flatten + one wide dense hidden layer, ~111k parameters, the same
// order as the latency model cares about) and reports the mechanism
// ordering at proportionally lower absolute accuracy. The VGG-style conv
// stack itself is implemented and unit-tested (ml::make_vgg_style); set
// model.kind to "vgg_style" in a dumped scenario to use it if you have
// the compute budget.

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace airfedga;
  bench::FlagParser flags(
      "Fig. 6: 100-class ImageNet-100-like, Dynamic vs Air-FedAvg vs Air-FedGA");
  if (auto ec = flags.parse(argc, argv)) return *ec;

  const scenario::ScenarioSpec& spec = scenario::preset("fig06_vgg_imagenet");
  const double horizon = spec.time_budget;
  auto built = scenario::build(spec);
  const std::vector<fl::Metrics> runs = bench::run_all(built);
  const std::vector<std::string>& names = built.mechanism_names;

  bench::print_curves("Fig. 6: 100-class ImageNet-100-like, loss/accuracy vs time", names, runs,
                      /*step=*/250.0, horizon);
  std::printf("\n--- time to stable accuracy ---\n");
  bench::print_time_to_accuracy(names, runs, {0.08, 0.12, 0.16});
  bench::dump_csv("fig06", names, runs);
  bench::print_digests(names, runs);
  bench::print_engine_summary(names, runs);
  return 0;
}
