// Fig. 6 reproduction: Loss/Accuracy vs. time on the ImageNet-100-like
// dataset (100 classes), Dynamic vs Air-FedAvg vs Air-FedGA.
//
// Scale-down vs. paper (documented in EXPERIMENTS.md): VGG-16 training
// from scratch on a 100-class task needs orders of magnitude more
// optimization steps than the FL round budget provides on a 2-core CPU —
// no architecture reaches the paper's 55-60% within ~100 aggregations.
// We therefore substitute a wide dense classifier on flattened 3x16x16
// images (~111k parameters, the same order as the latency model cares
// about) and report the mechanism ordering at proportionally lower
// absolute accuracy. The VGG-style conv stack itself is implemented and
// unit-tested (ml::make_vgg_style); swap the factory below to use it if
// you have the compute budget.

#include <memory>

#include "common.hpp"
#include "ml/activation.hpp"
#include "ml/dense.hpp"

int main() {
  using namespace airfedga;
  const double horizon = 5000.0;

  auto factory = [] {
    ml::Model m;
    m.add(std::make_unique<ml::Flatten>());
    m.add(std::make_unique<ml::Dense>(3 * 16 * 16, 128));
    m.add(std::make_unique<ml::ReLU>());
    m.add(std::make_unique<ml::Dense>(128, 100));
    return m;
  };

  bench::Experiment exp(data::make_imagenet100_like(8000, 1500, 4), /*workers=*/100, factory);
  exp.cfg.learning_rate = 1.0f;
  exp.cfg.batch_size = 16;
  exp.cfg.local_steps = 3;
  exp.cfg.time_budget = horizon;
  exp.cfg.eval_every = 10;
  exp.cfg.eval_samples = 750;

  fl::DynamicAirComp dynamic;
  fl::AirFedAvg airfedavg;
  fl::AirFedGA airfedga;

  std::vector<std::string> names = {"Dynamic", "Air-FedAvg", "Air-FedGA"};
  std::vector<fl::Metrics> runs;
  runs.push_back(dynamic.run(exp.cfg));
  runs.push_back(airfedavg.run(exp.cfg));
  runs.push_back(airfedga.run(exp.cfg));

  bench::print_curves("Fig. 6: 100-class ImageNet-100-like, loss/accuracy vs time", names, runs,
                      /*step=*/250.0, horizon);
  std::printf("\n--- time to stable accuracy ---\n");
  bench::print_time_to_accuracy(names, runs, {0.08, 0.12, 0.16});
  bench::dump_csv("fig06", names, runs);
  return 0;
}
