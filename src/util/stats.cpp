#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace airfedga::util {

void RunningStat::push(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return n_ > 0 ? mean_ : 0.0; }

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }
double RunningStat::min() const { return min_; }
double RunningStat::max() const { return max_; }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  RunningStat st;
  for (double x : xs) st.push(x);
  return st.stddev();
}

BoxplotSummary boxplot(std::span<const double> xs) {
  BoxplotSummary s;
  s.min = quantile(xs, 0.0);
  s.q1 = quantile(xs, 0.25);
  s.median = quantile(xs, 0.5);
  s.q3 = quantile(xs, 0.75);
  s.max = quantile(xs, 1.0);
  return s;
}

std::vector<double> moving_average(std::span<const double> xs, std::size_t window) {
  if (window == 0) throw std::invalid_argument("moving_average: window must be >= 1");
  std::vector<double> out(xs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i];
    if (i >= window) acc -= xs[i - window];
    const std::size_t n = std::min(i + 1, window);
    out[i] = acc / static_cast<double>(n);
  }
  return out;
}

}  // namespace airfedga::util
