#pragma once

#include <chrono>
#include <cstddef>
#include <span>
#include <vector>

namespace airfedga::util {

/// Wall-clock seconds elapsed since `t0` (shared by the engine's
/// instrumentation and the benches, so both always measure with the same
/// clock).
inline double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void push(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1 denominator)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolation quantile of an unsorted sample (q in [0,1]).
double quantile(std::span<const double> xs, double q);

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);

/// Five-number summary used for box plots (Fig. 7 of the paper).
struct BoxplotSummary {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
};
BoxplotSummary boxplot(std::span<const double> xs);

/// Simple moving average smoothing with a centered-left window; used when
/// deciding "time to stable accuracy" on a noisy accuracy-vs-time series.
std::vector<double> moving_average(std::span<const double> xs, std::size_t window);

}  // namespace airfedga::util
