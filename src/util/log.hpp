#pragma once

#include <sstream>
#include <string>

namespace airfedga::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one formatted line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& ss, T&& v, Rest&&... rest) {
  ss << std::forward<T>(v);
  append_all(ss, std::forward<Rest>(rest)...);
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() > LogLevel::kDebug) return;
  std::ostringstream ss;
  detail::append_all(ss, std::forward<Args>(args)...);
  log_line(LogLevel::kDebug, ss.str());
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() > LogLevel::kInfo) return;
  std::ostringstream ss;
  detail::append_all(ss, std::forward<Args>(args)...);
  log_line(LogLevel::kInfo, ss.str());
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() > LogLevel::kWarn) return;
  std::ostringstream ss;
  detail::append_all(ss, std::forward<Args>(args)...);
  log_line(LogLevel::kWarn, ss.str());
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() > LogLevel::kError) return;
  std::ostringstream ss;
  detail::append_all(ss, std::forward<Args>(args)...);
  log_line(LogLevel::kError, ss.str());
}

}  // namespace airfedga::util
