#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>

namespace airfedga::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

/// Monotonic seconds since the first log call — a stable, ordering-safe
/// stamp (wall clocks can step backwards under NTP).
double seconds_since_start() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch).count();
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  // Assemble the whole record first and emit it as one write under the
  // lock: per-token stream insertions let concurrent lanes interleave
  // fragments of different records on stderr.
  char prefix[48];
  std::snprintf(prefix, sizeof prefix, "[%s %12.6f] ", level_name(level),
                seconds_since_start());
  std::string line;
  line.reserve(sizeof prefix + msg.size() + 1);
  line += prefix;
  line += msg;
  line += '\n';
  std::scoped_lock lock(g_mutex);
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
}

}  // namespace airfedga::util
