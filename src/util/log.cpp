#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace airfedga::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::scoped_lock lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace airfedga::util
