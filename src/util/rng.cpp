#include "util/rng.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace airfedga::util {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(splitmix64(seed)) {}

Rng Rng::fork(std::uint64_t tag) const {
  return Rng(splitmix64(seed_ ^ splitmix64(tag + 0x517cc1b727220a95ull)));
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::rayleigh(double scale) {
  // Inverse-CDF sampling: F(x) = 1 - exp(-x^2 / (2 scale^2)).
  const double u = uniform(std::numeric_limits<double>::min(), 1.0);
  return scale * std::sqrt(-2.0 * std::log(u));
}

std::int64_t Rng::randint(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::coin(double p_true) { return uniform() < p_true; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  shuffle(p);
  return p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  std::vector<std::size_t> p;
  sample_without_replacement(n, k, p);
  return p;
}

void Rng::sample_without_replacement(std::size_t n, std::size_t k, std::vector<std::size_t>& out) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  out.resize(n);
  std::iota(out.begin(), out.end(), std::size_t{0});
  shuffle(out);
  out.resize(k);
}

}  // namespace airfedga::util
