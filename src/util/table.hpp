#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace airfedga::util {

/// Fixed-width console table used by the benchmark harness to print
/// paper-style result rows, plus a CSV writer for post-processing.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_int(long long v);

  /// Renders with aligned columns and a header rule.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (no quoting of embedded separators needed for
  /// our numeric tables, but commas in cells are escaped defensively).
  /// With `append`, rows accumulate onto an existing file and the header is
  /// only written when the file is new or empty — the caller must keep the
  /// column set stable across appending calls.
  void write_csv(const std::string& path, bool append = false) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace airfedga::util
