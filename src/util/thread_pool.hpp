#pragma once

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

/// \namespace airfedga::util
/// Concurrency and utility substrate: the training-lane thread pool,
/// forkable RNG streams, statistics helpers, and table output.

namespace airfedga::util {

/// \brief A small fixed-size worker pool with three entry points.
///
///  * `parallel_for` — OpenMP-style blocking data-parallel loop, used by the
///    ML library's GEMM and by batched evaluation;
///  * `submit` — fire-and-forget task submission returning a `std::future`,
///    used by the federated driver to run whole worker/group local-training
///    jobs concurrently between aggregation barriers;
///  * `submit_prioritized` — like `submit`, but tagged with a scheduling
///    key: pending tasks run in ascending key order (FIFO among equal
///    keys). The driver uses a group's next *virtual-time* aggregation
///    deadline as the key, so earliest-deadline groups get lanes first and
///    barrier stalls shrink (deadline-aware lane scheduling).
///
/// Scheduling changes only the *order* in which pending tasks start, never
/// their results: every task is self-contained (per-worker RNG streams,
/// leased scratch models) and all reductions happen in fixed order on the
/// submitting thread, so prioritization preserves bit-determinism.
///
/// Nesting rule: a task already running on *any* pool's worker thread that
/// calls `parallel_for` gets the serial fallback instead of fanning out
/// again. This prevents the classic deadlock (every worker blocked inside a
/// nested loop waiting for chunks no free thread can run) and the
/// oversubscription thrash of parallelizing inside already-parallel worker
/// training. Results are unaffected: all chunked kernels write disjoint
/// output ranges, so chunking never changes floating-point results.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers; 0 workers means every
  /// submitted task runs inline on the calling thread.
  explicit ThreadPool(std::size_t num_threads);

  /// Drains remaining tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;             ///< non-copyable (owns threads)
  ThreadPool& operator=(const ThreadPool&) = delete;  ///< non-copyable (owns threads)

  /// Number of worker threads (0 for an inline pool).
  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Scheduling key for tasks with no deadline: they run after every
  /// deadline-tagged task already waiting in the queue.
  static constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

  /// Scheduling key for latency-critical tasks (e.g. evaluation shards the
  /// simulation thread is blocked on): they jump ahead of every pending
  /// training job. Running tasks are never preempted.
  static constexpr double kUrgent = -std::numeric_limits<double>::infinity();

  /// Runs fn(begin, end) over [0, n) split into contiguous chunks, one per
  /// worker (plus the calling thread). Blocks until all chunks complete.
  /// Falls back to a serial call when n is small, the pool has 0 workers,
  /// or the caller is itself a pool worker thread (see nesting rule above).
  /// Chunks are enqueued at `kUrgent` priority: the caller is blocked, so
  /// they must not queue behind long-running submitted jobs.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1024);

  /// Schedules `f` with scheduling key `deadline` (lower runs first, FIFO
  /// among equal keys) and returns a future for its result. On a pool with
  /// 0 workers the task runs inline on the calling thread (the future is
  /// ready on return), so serial configurations need no special casing at
  /// call sites. Exceptions propagate through `future::get()`. NaN keys
  /// are rejected on every pool size (they would corrupt the heap's strict
  /// weak ordering), so a bad key cannot hide behind a serial config.
  template <typename F>
  auto submit_prioritized(double deadline, F&& f)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    if (std::isnan(deadline)) throw std::invalid_argument("ThreadPool: NaN scheduling key");
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    if (threads_.empty()) {
      (*task)();
    } else {
      enqueue(deadline, [task] { (*task)(); });
    }
    return fut;
  }

  /// `submit_prioritized` with no deadline: pending deadline-tagged tasks
  /// run first; plain submissions keep FIFO order among themselves.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    return submit_prioritized(kNoDeadline, std::forward<F>(f));
  }

  /// True iff the calling thread is a worker thread of *some* ThreadPool.
  [[nodiscard]] static bool on_worker_thread();

  /// \brief Cooperative kernel region: idle lanes donate themselves.
  ///
  /// Runs `fn(t)` for every tile `t` in [0, n) using the calling thread
  /// plus up to `idle_workers()` helpers recruited from this pool, then
  /// blocks until every claimed tile finished. Helper tasks are enqueued at
  /// the *calling task's* scheduling key (deadline-aware: helping an
  /// earliest-deadline group ranks like training that group), so they never
  /// overtake pending work with an earlier deadline; a helper that only
  /// gets a lane after the tile list drained exits immediately. The caller
  /// claims tiles itself throughout, so the region completes even when no
  /// helper ever becomes free — no lane can deadlock waiting for another.
  ///
  /// Determinism contract: `fn` must write disjoint state per tile and
  /// produce tile results independent of the claim order (the blocked GEMM
  /// tiles satisfy both), in which case helper participation can only
  /// change wall time, never results. Exceptions thrown by `fn` stop
  /// further claims and rethrow on the calling thread after in-flight
  /// tiles complete. With no workers (or none idle) the loop runs inline.
  void cooperate(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Pool installed as the current thread's cooperation target by an
  /// enclosing CooperationScope, or nullptr when kernels must not recruit
  /// helpers (the default everywhere outside Driver training tasks).
  [[nodiscard]] static ThreadPool* cooperation_pool();

  /// Workers currently blocked waiting for a task. Approximate (relaxed
  /// counter) — used only to size helper recruitment, never for
  /// correctness.
  [[nodiscard]] std::size_t idle_workers() const {
    return idle_.load(std::memory_order_relaxed);
  }

  /// Cumulative cooperation activity of this pool (wall-time diagnostics:
  /// like EngineStats wall clocks, these depend on scheduling timing and
  /// are excluded from determinism comparisons).
  struct CoopCounters {
    std::uint64_t regions = 0;       ///< cooperate() calls that recruited helpers
    std::uint64_t helper_tiles = 0;  ///< tiles executed by recruited helpers
  };

  /// Snapshot of the cooperation counters.
  [[nodiscard]] CoopCounters coop_counters() const {
    return {coop_regions_.load(std::memory_order_relaxed),
            coop_helper_tiles_.load(std::memory_order_relaxed)};
  }

  /// Tasks executed by pool workers since construction (parallel_for
  /// chunks, submitted jobs, cooperation helpers). Always counted.
  [[nodiscard]] std::uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }

  /// Cumulative wall time workers spent inside task bodies, in
  /// nanoseconds. Collected only while obs tracing is enabled (the
  /// disabled path must not pay two clock reads per task); 0 otherwise.
  [[nodiscard]] std::uint64_t busy_ns() const {
    return busy_ns_.load(std::memory_order_relaxed);
  }

  /// RAII guard installing `pool` as the calling thread's cooperation
  /// target: ML kernels underneath the scope may call `pool.cooperate` to
  /// recruit idle lanes. Installed by Driver around worker local training
  /// (never around evaluation shards, which already occupy every lane).
  class CooperationScope {
   public:
    explicit CooperationScope(ThreadPool& pool);  ///< installs `pool` for this thread
    ~CooperationScope();                          ///< restores the previous target
    CooperationScope(const CooperationScope&) = delete;             ///< scope guard: non-copyable
    CooperationScope& operator=(const CooperationScope&) = delete;  ///< scope guard: non-copyable

   private:
    ThreadPool* prev_;
  };

  /// RAII guard that marks the current thread as "inside parallel work" so
  /// nested `parallel_for` calls take the serial fallback. Use it to pin a
  /// region of caller-supplied work to the serial kernel schedule (e.g. a
  /// serial timing baseline). This is a wall-time choice only — chunked
  /// kernels write disjoint output ranges, so fanning out or not never
  /// changes floating-point results.
  class SerialRegion {
   public:
    SerialRegion();   ///< marks the current thread as inside parallel work
    ~SerialRegion();  ///< restores the previous marking
    SerialRegion(const SerialRegion&) = delete;             ///< scope guard: non-copyable
    SerialRegion& operator=(const SerialRegion&) = delete;  ///< scope guard: non-copyable

   private:
    bool prev_;
  };

 private:
  /// One pending task: `key` orders the ready queue (ascending), `seq`
  /// breaks ties FIFO so equal-deadline submissions keep insertion order.
  struct PendingTask {
    double key = kNoDeadline;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };

  void worker_loop();
  void enqueue(double key, std::function<void()> task);
  PendingTask pop_task_locked();

  std::vector<std::thread> threads_;
  std::vector<PendingTask> tasks_;  ///< min-heap on (key, seq) via std::*_heap
  std::uint64_t next_seq_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::size_t> idle_{0};                ///< workers blocked in the task wait
  std::atomic<std::uint64_t> coop_regions_{0};      ///< cooperate() calls with helpers
  std::atomic<std::uint64_t> coop_helper_tiles_{0}; ///< tiles run by helpers
  std::atomic<std::uint64_t> tasks_run_{0};         ///< tasks executed by workers
  std::atomic<std::uint64_t> busy_ns_{0};           ///< wall ns inside task bodies (traced runs)
};

/// Process-wide pool sized to the hardware concurrency (minus one for the
/// calling thread). Thread-safe to call from anywhere after static init.
ThreadPool& global_pool();

/// \brief Lane-budget rule for running several independent drivers at once.
///
/// When `jobs` independent runs execute concurrently (the scenario runner's
/// `--jobs` mode), each run owns a private training-lane pool. Sizing every
/// pool to the full machine would oversubscribe it `jobs`-fold, so each run
/// gets an equal share of a global lane budget instead:
///
///   share = max(1, budget / jobs), clamped to `requested` when the run
///   asked for fewer lanes than its share.
///
/// `budget` 0 means the hardware concurrency; `requested` 0 means "as many
/// as allowed" (the FLConfig::threads convention). Every job always gets at
/// least one lane, so callers should cap `jobs` at the budget rather than
/// rely on this function to serialize excess jobs. Because the execution
/// engine is bit-deterministic for every lane count, clamping a run's lanes
/// never changes its results — only its wall time.
std::size_t lane_budget_share(std::size_t requested, std::size_t jobs, std::size_t budget = 0);

/// Convenience wrapper over global_pool().parallel_for.
void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain = 1024);

}  // namespace airfedga::util
