#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace airfedga::util {

/// A small fixed-size worker pool for data-parallel loops (OpenMP-style
/// `parallel for` without the OpenMP dependency). Used by the ML library's
/// GEMM and by batched evaluation.
///
/// The pool is shared process-wide via `global_pool()`; the ML kernels
/// split their loops into one chunk per thread, which is the right shape
/// for the flat loops used here (contiguous float arithmetic).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Runs fn(begin, end) over [0, n) split into contiguous chunks, one per
  /// worker (plus the calling thread). Blocks until all chunks complete.
  /// Falls back to a serial call when n is small or the pool has 0 workers.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1024);

 private:
  void worker_loop();
  void submit(std::function<void()> task);

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool sized to the hardware concurrency (minus one for the
/// calling thread). Thread-safe to call from anywhere after static init.
ThreadPool& global_pool();

/// Convenience wrapper over global_pool().parallel_for.
void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain = 1024);

}  // namespace airfedga::util
