#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace airfedga::util {

/// A small fixed-size worker pool with two entry points:
///
///  * `parallel_for` — OpenMP-style blocking data-parallel loop, used by the
///    ML library's GEMM and by batched evaluation;
///  * `submit` — fire-and-forget task submission returning a `std::future`,
///    used by the federated driver to run whole worker/group local-training
///    jobs concurrently between aggregation barriers.
///
/// Nesting rule: a task already running on *any* pool's worker thread that
/// calls `parallel_for` gets the serial fallback instead of fanning out
/// again. This prevents the classic deadlock (every worker blocked inside a
/// nested loop waiting for chunks no free thread can run) and the
/// oversubscription thrash of parallelizing inside already-parallel worker
/// training. Results are unaffected: all chunked kernels write disjoint
/// output ranges, so chunking never changes floating-point results.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Runs fn(begin, end) over [0, n) split into contiguous chunks, one per
  /// worker (plus the calling thread). Blocks until all chunks complete.
  /// Falls back to a serial call when n is small, the pool has 0 workers,
  /// or the caller is itself a pool worker thread (see nesting rule above).
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1024);

  /// Schedules `f` on the pool and returns a future for its result. On a
  /// pool with 0 workers the task runs inline on the calling thread (the
  /// future is ready on return), so serial configurations need no special
  /// casing at call sites. Exceptions propagate through `future::get()`.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    if (threads_.empty()) {
      (*task)();
    } else {
      enqueue([task] { (*task)(); });
    }
    return fut;
  }

  /// True iff the calling thread is a worker thread of *some* ThreadPool.
  [[nodiscard]] static bool on_worker_thread();

  /// RAII guard that marks the current thread as "inside parallel work" so
  /// nested `parallel_for` calls take the serial fallback. The driver wraps
  /// inline (0-worker) training in this so a serial run executes the exact
  /// same kernel schedule as a pooled run.
  class SerialRegion {
   public:
    SerialRegion();
    ~SerialRegion();
    SerialRegion(const SerialRegion&) = delete;
    SerialRegion& operator=(const SerialRegion&) = delete;

   private:
    bool prev_;
  };

 private:
  void worker_loop();
  void enqueue(std::function<void()> task);

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool sized to the hardware concurrency (minus one for the
/// calling thread). Thread-safe to call from anywhere after static init.
ThreadPool& global_pool();

/// Convenience wrapper over global_pool().parallel_for.
void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain = 1024);

}  // namespace airfedga::util
