#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace airfedga::util {

/// Seeded pseudo-random number generator used everywhere in the library.
///
/// All stochastic components (channel fading, noise, data synthesis, weight
/// initialization, heterogeneity factors) draw from an explicit `Rng` so
/// that every experiment is reproducible from a single master seed.
/// Independent sub-streams are derived with `fork`, which uses SplitMix64
/// on the parent seed so forked streams are decorrelated from the parent
/// and from each other.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derives an independent child generator. Calling `fork(tag)` twice with
  /// the same tag on the same parent yields identical child streams.
  [[nodiscard]] Rng fork(std::uint64_t tag) const;

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal (optionally scaled/shifted).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Rayleigh-distributed magnitude with the given scale parameter.
  /// If X,Y ~ N(0, scale^2) then sqrt(X^2 + Y^2) ~ Rayleigh(scale).
  double rayleigh(double scale = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t randint(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial.
  bool coin(double p_true = 0.5);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(randint(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Samples `k` distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// `sample_without_replacement` into a reused vector (no allocation at
  /// steady capacity; identical draws to the allocating overload).
  void sample_without_replacement(std::size_t n, std::size_t k, std::vector<std::size_t>& out);

  /// Seed this generator was constructed with.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

/// SplitMix64 mixing step; used for seed derivation.
std::uint64_t splitmix64(std::uint64_t x);

}  // namespace airfedga::util
