#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/trace.hpp"

namespace airfedga::util {

namespace {
// Per-thread flag shared by all pools: set while the thread is executing
// pool work (or a SerialRegion), checked by parallel_for's nesting rule.
thread_local bool t_in_parallel_work = false;

// Scheduling key of the task the current pool thread is running; cooperate
// enqueues its helpers at this key so helping a group ranks exactly like
// training that group (deadline-aware donation).
thread_local double t_current_key = std::numeric_limits<double>::infinity();

// Cooperation target installed by the innermost CooperationScope.
thread_local ThreadPool* t_coop_pool = nullptr;

// Min-heap comparator: std::*_heap keep the *greatest* element on top, so
// "greater" here means "runs later" — larger key, then larger seq. The
// `auto` parameters let it order ThreadPool::PendingTask without naming
// the private nested type.
struct RunsLater {
  bool operator()(const auto& a, const auto& b) const {
    if (a.key != b.key) return a.key > b.key;
    return a.seq > b.seq;
  }
};
}  // namespace

bool ThreadPool::on_worker_thread() { return t_in_parallel_work; }

ThreadPool::SerialRegion::SerialRegion() : prev_(t_in_parallel_work) {
  t_in_parallel_work = true;
}

ThreadPool::SerialRegion::~SerialRegion() { t_in_parallel_work = prev_; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] {
      char name[32];
      std::snprintf(name, sizeof name, "lane-%zu", i);
      obs::name_this_thread(name);
      t_in_parallel_work = true;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

ThreadPool::PendingTask ThreadPool::pop_task_locked() {
  std::pop_heap(tasks_.begin(), tasks_.end(), RunsLater{});
  PendingTask task = std::move(tasks_.back());
  tasks_.pop_back();
  return task;
}

void ThreadPool::worker_loop() {
  for (;;) {
    PendingTask task;
    {
      std::unique_lock lock(mutex_);
      idle_.fetch_add(1, std::memory_order_relaxed);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      idle_.fetch_sub(1, std::memory_order_relaxed);
      if (stop_ && tasks_.empty()) return;
      task = pop_task_locked();
    }
    t_current_key = task.key;
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      obs::Span span("pool", "pool.task");
      const auto t0 = std::chrono::steady_clock::now();
      task.fn();
      busy_ns_.fetch_add(static_cast<std::uint64_t>(
                             std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count()),
                         std::memory_order_relaxed);
    } else {
      task.fn();
    }
    t_current_key = kNoDeadline;
  }
}

void ThreadPool::enqueue(double key, std::function<void()> task) {
  if (std::isnan(key)) throw std::invalid_argument("ThreadPool: NaN scheduling key");
  {
    std::scoped_lock lock(mutex_);
    tasks_.push_back(PendingTask{key, next_seq_++, std::move(task)});
    std::push_heap(tasks_.begin(), tasks_.end(), RunsLater{});
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              std::size_t grain) {
  const std::size_t workers = threads_.size();
  if (workers == 0 || n <= grain || t_in_parallel_work) {
    if (n > 0) fn(0, n);
    return;
  }
  const std::size_t parts = std::min(workers + 1, (n + grain - 1) / grain);
  const std::size_t chunk = (n + parts - 1) / parts;

  // Shared completion latch: workers hold a reference so the mutex/cv stay
  // alive even if the caller is already past its wait when the last worker
  // signals (stack-allocated state here is a use-after-return race).
  struct Latch {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = parts;

  for (std::size_t p = 1; p < parts; ++p) {
    const std::size_t begin = p * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    // kUrgent: the caller blocks until every chunk ran, so chunks must not
    // queue behind pending long-running submitted jobs.
    enqueue(kUrgent, [latch, &fn, begin, end] {
      fn(begin, end);
      std::scoped_lock lock(latch->mutex);
      if (--latch->remaining == 0) latch->cv.notify_one();
    });
  }
  // The calling thread takes the first chunk instead of sleeping.
  fn(0, std::min(n, chunk));
  {
    std::unique_lock lock(latch->mutex);
    --latch->remaining;
    latch->cv.wait(lock, [&] { return latch->remaining == 0; });
  }
}

ThreadPool* ThreadPool::cooperation_pool() { return t_coop_pool; }

ThreadPool::CooperationScope::CooperationScope(ThreadPool& pool) : prev_(t_coop_pool) {
  t_coop_pool = &pool;
}

ThreadPool::CooperationScope::~CooperationScope() { t_coop_pool = prev_; }

void ThreadPool::cooperate(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t helpers = std::min({idle_workers(), n - 1, threads_.size()});
  if (helpers == 0) {
    for (std::size_t t = 0; t < n; ++t) fn(t);
    return;
  }

  // Shared by the caller and every recruited helper. Holds a *copy* of fn:
  // a helper that wakes only after this call returned still dereferences
  // valid state (it finds next >= n and exits without touching fn's
  // captured pointers, which may be dead by then).
  struct CoopState {
    std::function<void(std::size_t)> fn;
    std::size_t n = 0;
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t next = 0;      ///< tiles claimed so far (guarded by mutex)
    std::size_t finished = 0;  ///< tiles completed (guarded by mutex)
    bool abort = false;        ///< stop claiming (first error wins)
    std::exception_ptr error;  ///< first failure (guarded by mutex)
  };
  auto state = std::make_shared<CoopState>();
  state->fn = fn;
  state->n = n;

  auto drain = [](CoopState& s) -> std::size_t {
    std::size_t done = 0;
    for (;;) {
      std::size_t t;
      {
        std::scoped_lock lock(s.mutex);
        if (s.abort || s.next >= s.n) return done;
        t = s.next++;
      }
      try {
        s.fn(t);
        ++done;
      } catch (...) {
        std::scoped_lock lock(s.mutex);
        if (!s.error) s.error = std::current_exception();
        s.abort = true;
      }
      std::scoped_lock lock(s.mutex);
      if (++s.finished == s.next && (s.abort || s.next >= s.n)) s.cv.notify_all();
    }
  };

  coop_regions_.fetch_add(1, std::memory_order_relaxed);
  const double key = t_current_key;  // inherit the donating task's deadline
  for (std::size_t h = 0; h < helpers; ++h) {
    enqueue(key, [this, state, drain] {
      obs::Span span("pool", "pool.coop_help");
      const std::size_t done = drain(*state);
      if (done > 0) coop_helper_tiles_.fetch_add(done, std::memory_order_relaxed);
    });
  }

  drain(*state);
  std::unique_lock lock(state->mutex);
  // Terminates: every claimed tile either finishes or records an error
  // (both increment `finished`), and claims stop once next reaches n or a
  // tile failed. Late helpers claim nothing and exit on their own.
  state->cv.wait(lock, [&] {
    return state->finished == state->next && (state->abort || state->next >= state->n);
  });
  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& global_pool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()) - 1);
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain) {
  global_pool().parallel_for(n, fn, grain);
}

std::size_t lane_budget_share(std::size_t requested, std::size_t jobs, std::size_t budget) {
  if (budget == 0) budget = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (jobs == 0) jobs = 1;
  const std::size_t share = std::max<std::size_t>(1, budget / jobs);
  return requested == 0 ? share : std::min(requested, share);
}

}  // namespace airfedga::util
