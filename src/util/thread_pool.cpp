#include "util/thread_pool.hpp"

#include <algorithm>

namespace airfedga::util {

namespace {
// Per-thread flag shared by all pools: set while the thread is executing
// pool work (or a SerialRegion), checked by parallel_for's nesting rule.
thread_local bool t_in_parallel_work = false;
}  // namespace

bool ThreadPool::on_worker_thread() { return t_in_parallel_work; }

ThreadPool::SerialRegion::SerialRegion() : prev_(t_in_parallel_work) {
  t_in_parallel_work = true;
}

ThreadPool::SerialRegion::~SerialRegion() { t_in_parallel_work = prev_; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] {
      t_in_parallel_work = true;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::scoped_lock lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              std::size_t grain) {
  const std::size_t workers = threads_.size();
  if (workers == 0 || n <= grain || t_in_parallel_work) {
    if (n > 0) fn(0, n);
    return;
  }
  const std::size_t parts = std::min(workers + 1, (n + grain - 1) / grain);
  const std::size_t chunk = (n + parts - 1) / parts;

  // Shared completion latch: workers hold a reference so the mutex/cv stay
  // alive even if the caller is already past its wait when the last worker
  // signals (stack-allocated state here is a use-after-return race).
  struct Latch {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = parts;

  for (std::size_t p = 1; p < parts; ++p) {
    const std::size_t begin = p * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    enqueue([latch, &fn, begin, end] {
      fn(begin, end);
      std::scoped_lock lock(latch->mutex);
      if (--latch->remaining == 0) latch->cv.notify_one();
    });
  }
  // The calling thread takes the first chunk instead of sleeping.
  fn(0, std::min(n, chunk));
  {
    std::unique_lock lock(latch->mutex);
    --latch->remaining;
    latch->cv.wait(lock, [&] { return latch->remaining == 0; });
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()) - 1);
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain) {
  global_pool().parallel_for(n, fn, grain);
}

}  // namespace airfedga::util
