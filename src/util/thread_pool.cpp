#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace airfedga::util {

namespace {
// Per-thread flag shared by all pools: set while the thread is executing
// pool work (or a SerialRegion), checked by parallel_for's nesting rule.
thread_local bool t_in_parallel_work = false;

// Min-heap comparator: std::*_heap keep the *greatest* element on top, so
// "greater" here means "runs later" — larger key, then larger seq. The
// `auto` parameters let it order ThreadPool::PendingTask without naming
// the private nested type.
struct RunsLater {
  bool operator()(const auto& a, const auto& b) const {
    if (a.key != b.key) return a.key > b.key;
    return a.seq > b.seq;
  }
};
}  // namespace

bool ThreadPool::on_worker_thread() { return t_in_parallel_work; }

ThreadPool::SerialRegion::SerialRegion() : prev_(t_in_parallel_work) {
  t_in_parallel_work = true;
}

ThreadPool::SerialRegion::~SerialRegion() { t_in_parallel_work = prev_; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] {
      t_in_parallel_work = true;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

ThreadPool::PendingTask ThreadPool::pop_task_locked() {
  std::pop_heap(tasks_.begin(), tasks_.end(), RunsLater{});
  PendingTask task = std::move(tasks_.back());
  tasks_.pop_back();
  return task;
}

void ThreadPool::worker_loop() {
  for (;;) {
    PendingTask task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = pop_task_locked();
    }
    task.fn();
  }
}

void ThreadPool::enqueue(double key, std::function<void()> task) {
  if (std::isnan(key)) throw std::invalid_argument("ThreadPool: NaN scheduling key");
  {
    std::scoped_lock lock(mutex_);
    tasks_.push_back(PendingTask{key, next_seq_++, std::move(task)});
    std::push_heap(tasks_.begin(), tasks_.end(), RunsLater{});
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              std::size_t grain) {
  const std::size_t workers = threads_.size();
  if (workers == 0 || n <= grain || t_in_parallel_work) {
    if (n > 0) fn(0, n);
    return;
  }
  const std::size_t parts = std::min(workers + 1, (n + grain - 1) / grain);
  const std::size_t chunk = (n + parts - 1) / parts;

  // Shared completion latch: workers hold a reference so the mutex/cv stay
  // alive even if the caller is already past its wait when the last worker
  // signals (stack-allocated state here is a use-after-return race).
  struct Latch {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = parts;

  for (std::size_t p = 1; p < parts; ++p) {
    const std::size_t begin = p * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    // kUrgent: the caller blocks until every chunk ran, so chunks must not
    // queue behind pending long-running submitted jobs.
    enqueue(kUrgent, [latch, &fn, begin, end] {
      fn(begin, end);
      std::scoped_lock lock(latch->mutex);
      if (--latch->remaining == 0) latch->cv.notify_one();
    });
  }
  // The calling thread takes the first chunk instead of sleeping.
  fn(0, std::min(n, chunk));
  {
    std::unique_lock lock(latch->mutex);
    --latch->remaining;
    latch->cv.wait(lock, [&] { return latch->remaining == 0; });
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()) - 1);
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain) {
  global_pool().parallel_for(n, fn, grain);
}

std::size_t lane_budget_share(std::size_t requested, std::size_t jobs, std::size_t budget) {
  if (budget == 0) budget = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (jobs == 0) jobs = 1;
  const std::size_t share = std::max<std::size_t>(1, budget / jobs);
  return requested == 0 ? share : std::min(requested, share);
}

}  // namespace airfedga::util
