#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace airfedga::util::fault {

/// Deterministic fault injection for crash-safety testing.
///
/// Code under test declares named *fault points* by calling `hit()`; the
/// test (or CI) *arms* one or more fault specs, and when an armed spec
/// matches a hit the configured action fires. Nothing is armed in normal
/// operation, so a hit is a single relaxed atomic load.
///
/// Spec grammar: `point[:arg][:action]`
///   - `point`  — the fault-point name passed to hit().
///   - `arg`    — for counted points (hit(point)): the 1-based hit ordinal
///                that fires, default 1 (`after_variant:3` fires on the
///                third completed variant). For detail points
///                (hit(point, detail)): the string the detail must equal
///                (`mid_write:results` fires inside the results writer; a
///                numeric arg also matches numeric details, e.g.
///                `variant_run:1` fires on variant index 1). A point name
///                only ever uses one hit style, so this is unambiguous.
///   - `action` — `kill` (default): terminate the process immediately via
///                std::_Exit(kKillExitCode) — no stream flush, no
///                destructors, simulating a crash mid-operation.
///                `throw`: throw InjectedFault on every match.
///                `throw_once`: throw InjectedFault on the first match,
///                then disarm (transient failures, e.g. retry tests).
///
/// Multiple specs may be armed (repeat --fault, or comma-separate them in
/// the AIRFEDGA_FAULT environment variable).

/// Exit code of the `kill` action; distinctive so tests and CI can assert
/// the crash was the injected one and not a real failure.
inline constexpr int kKillExitCode = 86;

/// Thrown by the `throw` / `throw_once` actions.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses and activates one fault spec; throws std::invalid_argument with
/// the offending spec in the message when it does not parse.
void arm(const std::string& spec);

/// Arms every comma-separated spec in the environment variable (default
/// AIRFEDGA_FAULT); a no-op when it is unset or empty.
void arm_from_env(const char* var = "AIRFEDGA_FAULT");

/// Deactivates every armed spec and resets hit counters (tests).
void disarm_all();

/// True when at least one spec is armed (one relaxed load — callers may
/// use it to gate extra work such as splitting a write in two so a
/// mid-write kill leaves a genuinely torn file).
[[nodiscard]] bool any_armed();

/// Counted fault point: the n-th call with a given `point` fires a spec
/// armed with ordinal n. No-op when nothing matching is armed.
void hit(const char* point);

/// Detail fault point: fires every time an armed spec's arg equals
/// `detail`. No-op when nothing matching is armed.
void hit(const char* point, std::string_view detail);

}  // namespace airfedga::util::fault
