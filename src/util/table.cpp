#include "util/table.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace airfedga::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t rule = 0;
  for (auto w : widths) rule += w + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(const std::string& path, bool append) const {
  const auto parent = std::filesystem::path(path).parent_path();
  std::error_code ec;
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  if (ec)
    throw std::runtime_error("Table::write_csv: cannot create directory " + parent.string() +
                             ": " + ec.message());
  const bool header = !append || !std::filesystem::exists(path) ||
                      std::filesystem::file_size(path, ec) == 0;
  std::ofstream f(path, append ? std::ios::app : std::ios::trunc);
  if (!f)
    throw std::runtime_error("Table::write_csv: cannot open " + path +
                             " for writing (check permissions and that the parent is a directory)");
  auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (char c : s) {
      quoted += c;
      if (c == '"') quoted += c;  // RFC 4180: embedded quotes double
    }
    quoted += '"';
    return quoted;
  };
  if (header)
    for (std::size_t c = 0; c < headers_.size(); ++c)
      f << esc(headers_[c]) << (c + 1 < headers_.size() ? "," : "\n");
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      f << esc(row[c]) << (c + 1 < row.size() ? "," : "\n");
}

}  // namespace airfedga::util
