#include "util/fault.hpp"

#include <atomic>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace airfedga::util::fault {

namespace {

enum class Action { kKill, kThrow, kThrowOnce };

struct Armed {
  std::string point;
  std::string detail;        ///< detail-match specs: the string to equal
  std::size_t ordinal = 0;   ///< counted specs: 1-based hit number that fires
  std::size_t hits = 0;      ///< counted specs: hits seen so far
  Action action = Action::kKill;
  bool spent = false;        ///< throw_once fired already
};

std::mutex g_mutex;
std::vector<Armed> g_armed;
std::atomic<bool> g_any{false};

[[noreturn]] void kill_now() {
  // std::_Exit skips atexit handlers, destructors, and stream flushes:
  // whatever user-space buffering the victim had in flight is lost, which
  // is exactly the torn state a real crash (OOM kill, power loss) leaves.
  std::_Exit(kKillExitCode);
}

void fire(Armed& a) {
  if (a.action == Action::kKill) kill_now();
  if (a.action == Action::kThrowOnce) a.spent = true;
  throw InjectedFault("injected fault at " + a.point +
                      (a.detail.empty() ? "" : ":" + a.detail));
}

bool parse_ordinal(const std::string& tok, std::size_t& out) {
  if (tok.empty() || tok.size() > 9) return false;
  for (char c : tok)
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  std::from_chars(tok.data(), tok.data() + tok.size(), out);
  return out > 0;
}

}  // namespace

void arm(const std::string& spec) {
  Armed a;
  std::string arg;
  const std::size_t c1 = spec.find(':');
  a.point = spec.substr(0, c1);
  if (c1 != std::string::npos) {
    const std::size_t c2 = spec.find(':', c1 + 1);
    arg = spec.substr(c1 + 1, c2 == std::string::npos ? c2 : c2 - c1 - 1);
    std::string action = c2 == std::string::npos ? "" : spec.substr(c2 + 1);
    // Both arg and action are optional: in the two-token form "point:x", a
    // reserved action name is the action ("before_variant:throw"), anything
    // else is the arg ("after_variant:3").
    if (action.empty() && (arg == "kill" || arg == "throw" || arg == "throw_once")) {
      action = arg;
      arg.clear();
    }
    if (action == "throw") {
      a.action = Action::kThrow;
    } else if (action == "throw_once") {
      a.action = Action::kThrowOnce;
    } else if (!action.empty() && action != "kill") {
      throw std::invalid_argument("fault spec \"" + spec +
                                  "\": unknown action (kill | throw | throw_once)");
    }
  }
  if (a.point.empty())
    throw std::invalid_argument("fault spec \"" + spec + "\": empty fault-point name");
  // A numeric arg doubles as a hit ordinal (counted points) *and* a detail
  // string (detail points like variant_run, whose details are indices) —
  // a given point name only ever uses one hit style, so this stays
  // unambiguous. An absent arg means "first hit" for counted points and
  // never matches a detail point.
  if (arg.empty()) {
    a.ordinal = 1;
  } else if (parse_ordinal(arg, a.ordinal)) {
    a.detail = arg;
  } else {
    a.ordinal = 0;
    a.detail = arg;
  }
  std::scoped_lock lock(g_mutex);
  g_armed.push_back(std::move(a));
  g_any.store(true, std::memory_order_relaxed);
}

void arm_from_env(const char* var) {
  const char* value = std::getenv(var);
  if (value == nullptr || *value == '\0') return;
  std::string specs(value);
  std::size_t pos = 0;
  while (pos <= specs.size()) {
    const std::size_t comma = std::min(specs.find(',', pos), specs.size());
    if (comma > pos) arm(specs.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

void disarm_all() {
  std::scoped_lock lock(g_mutex);
  g_armed.clear();
  g_any.store(false, std::memory_order_relaxed);
}

bool any_armed() { return g_any.load(std::memory_order_relaxed); }

void hit(const char* point) {
  if (!any_armed()) return;
  std::scoped_lock lock(g_mutex);
  for (auto& a : g_armed) {
    if (a.spent || a.ordinal == 0 || a.point != point) continue;
    if (++a.hits == a.ordinal) fire(a);
  }
}

void hit(const char* point, std::string_view detail) {
  if (!any_armed()) return;
  std::scoped_lock lock(g_mutex);
  for (auto& a : g_armed) {
    if (a.spent || a.point != point) continue;
    if (a.detail == detail) fire(a);
  }
}

}  // namespace airfedga::util::fault
