#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

namespace airfedga::obs {

namespace {

/// Events per thread. Each TraceEvent is 48 bytes, so a full ring is 3 MiB
/// per instrumented thread; on wraparound the oldest records are dropped
/// (the trace keeps each lane's most recent history, dropped_events()
/// reports how much was lost).
constexpr std::size_t kRingCapacity = 1 << 16;

/// One thread's preallocated event buffer. Only the owning thread writes
/// (head/total are plain fields); readers run under the flush quiescence
/// contract.
struct Ring {
  explicit Ring(int tid_, std::string name_) : tid(tid_), name(std::move(name_)) {
    events.resize(kRingCapacity);
  }
  std::vector<TraceEvent> events;
  std::size_t head = 0;      ///< next write slot
  std::uint64_t total = 0;   ///< events ever pushed (> capacity => wrapped)
  int tid;                   ///< track id, registration order
  std::string name;          ///< track name for the "M" metadata event
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<std::int64_t> g_epoch_ns{0};

thread_local Ring* t_ring = nullptr;
thread_local char t_name[48] = {0};

/// Registers the calling thread's ring (the one allocation a traced
/// thread ever performs; everything after is steady-state and alloc-free).
Ring& ring_slow() {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  const int tid = static_cast<int>(r.rings.size());
  std::string name = t_name[0] != '\0' ? std::string(t_name) : "thread-" + std::to_string(tid);
  r.rings.push_back(std::make_unique<Ring>(tid, std::move(name)));
  t_ring = r.rings.back().get();
  return *t_ring;
}

inline Ring& ring() { return t_ring != nullptr ? *t_ring : ring_slow(); }

inline void push(const TraceEvent& e) {
  Ring& r = ring();
  r.events[r.head] = e;
  r.head = (r.head + 1) % kRingCapacity;
  ++r.total;
}

/// Appends `s` JSON-escaped (quotes, backslashes, control chars).
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
}

/// The ring's buffered events in push order (oldest first).
std::vector<TraceEvent> ordered_events(const Ring& r) {
  std::vector<TraceEvent> out;
  const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(r.total, kRingCapacity));
  out.reserve(n);
  const std::size_t start = r.total > kRingCapacity ? r.head : 0;
  for (std::size_t i = 0; i < n; ++i) out.push_back(r.events[(start + i) % kRingCapacity]);
  return out;
}

/// Sums self time per span name for one thread. Spans are sorted by
/// (begin asc, end desc) so a parent precedes its children; a stack sweep
/// then subtracts each child's duration from its innermost enclosing span.
void accumulate_self(const std::vector<TraceEvent>& events,
                     std::map<std::string, SpanStat>& stats) {
  struct Open {
    std::uint64_t end_ns;
    std::string* name;  // key in `stats`, stable across the sweep
  };
  std::vector<const TraceEvent*> spans;
  for (const auto& e : events)
    if (e.is_span) spans.push_back(&e);
  std::sort(spans.begin(), spans.end(), [](const TraceEvent* a, const TraceEvent* b) {
    if (a->begin_ns != b->begin_ns) return a->begin_ns < b->begin_ns;
    return a->begin_ns + a->dur_ns > b->begin_ns + b->dur_ns;
  });

  std::vector<Open> stack;
  for (const TraceEvent* s : spans) {
    const std::uint64_t end = s->begin_ns + s->dur_ns;
    while (!stack.empty() && stack.back().end_ns <= s->begin_ns) stack.pop_back();
    auto it = stats.try_emplace(s->name).first;
    SpanStat& st = it->second;
    st.count += 1;
    st.total_ns += s->dur_ns;
    st.self_ns += s->dur_ns;
    if (!stack.empty()) stats[*stack.back().name].self_ns -= s->dur_ns;
    stack.push_back({end, const_cast<std::string*>(&it->first)});
  }
}

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{false};

std::uint64_t now_ns() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  const std::int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(t).count();
  return static_cast<std::uint64_t>(ns - g_epoch_ns.load(std::memory_order_relaxed));
}

void push_span(const char* cat, const char* name, std::uint64_t begin_ns) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.begin_ns = begin_ns;
  e.dur_ns = now_ns() - begin_ns;
  e.is_span = true;
  push(e);
}

void push_instant(const char* cat, const char* name, const char* arg_name, std::int64_t arg) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.arg_name = arg_name;
  e.begin_ns = now_ns();
  e.arg = arg;
  push(e);
}

}  // namespace detail

void enable() {
  std::int64_t expected = 0;
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  const std::int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(t).count();
  g_epoch_ns.compare_exchange_strong(expected, now, std::memory_order_relaxed);
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void set_enabled(bool on) {
  if (on) {
    enable();
  } else {
    detail::g_enabled.store(false, std::memory_order_relaxed);
  }
}

void reset_for_testing() {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  for (auto& ring : r.rings) {
    ring->head = 0;
    ring->total = 0;
  }
}

void name_this_thread(const char* name) {
  std::snprintf(t_name, sizeof t_name, "%s", name);
  if (t_ring != nullptr) t_ring->name = t_name;
}

std::uint64_t dropped_events() {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  std::uint64_t dropped = 0;
  for (const auto& ring : r.rings)
    if (ring->total > kRingCapacity) dropped += ring->total - kRingCapacity;
  return dropped;
}

void write_chrome_json(std::ostream& os) {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  os << "{\"traceEvents\":[";
  bool first = true;
  std::string line;
  char buf[160];
  for (const auto& ring : r.rings) {
    line.clear();
    line += first ? "\n" : ",\n";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"",
                  ring->tid);
    line += buf;
    append_escaped(line, ring->name.c_str());
    line += "\"}}";
    os << line;
    for (const TraceEvent& e : ordered_events(*ring)) {
      line = ",\n";
      if (e.is_span) {
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"cat\":\"",
                      ring->tid, static_cast<double>(e.begin_ns) / 1e3,
                      static_cast<double>(e.dur_ns) / 1e3);
      } else {
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"s\":\"t\",\"cat\":\"",
                      ring->tid, static_cast<double>(e.begin_ns) / 1e3);
      }
      line += buf;
      append_escaped(line, e.cat);
      line += "\",\"name\":\"";
      append_escaped(line, e.name);
      line += '"';
      if (!e.is_span && e.arg_name != nullptr) {
        line += ",\"args\":{\"";
        append_escaped(line, e.arg_name);
        std::snprintf(buf, sizeof buf, "\":%lld}", static_cast<long long>(e.arg));
        line += buf;
      }
      line += '}';
      os << line;
    }
  }
  os << "\n]}\n";
}

std::vector<SpanStat> aggregate_spans() {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  std::map<std::string, SpanStat> stats;
  for (const auto& ring : r.rings) accumulate_self(ordered_events(*ring), stats);
  std::vector<SpanStat> out;
  out.reserve(stats.size());
  for (auto& [name, st] : stats) {
    st.name = name;
    out.push_back(std::move(st));
  }
  std::sort(out.begin(), out.end(),
            [](const SpanStat& a, const SpanStat& b) { return a.self_ns > b.self_ns; });
  return out;
}

void print_report(std::ostream& os) {
  const std::vector<SpanStat> stats = aggregate_spans();
  char buf[160];
  os << "--- trace report: per-phase wall time (self excludes child spans) ---\n";
  std::snprintf(buf, sizeof buf, "%-24s %10s %12s %12s\n", "span", "count", "total(ms)",
                "self(ms)");
  os << buf;
  for (const SpanStat& s : stats) {
    std::snprintf(buf, sizeof buf, "%-24s %10llu %12.3f %12.3f\n", s.name.c_str(),
                  static_cast<unsigned long long>(s.count),
                  static_cast<double>(s.total_ns) / 1e6, static_cast<double>(s.self_ns) / 1e6);
    os << buf;
  }
  const std::uint64_t dropped = dropped_events();
  if (dropped > 0) {
    std::snprintf(buf, sizeof buf, "(%llu events dropped to ring wraparound)\n",
                  static_cast<unsigned long long>(dropped));
    os << buf;
  }
}

}  // namespace airfedga::obs
