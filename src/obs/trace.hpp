#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

/// \namespace airfedga::obs
/// Observability layer: execution tracing and a metrics registry. Sits at
/// the bottom of the layer map next to util (depends only on the standard
/// library) so every other layer may instrument itself.
///
/// Design contract (docs/OBSERVABILITY.md):
///  - zero-cost when disabled: every hot-path hook is a single relaxed
///    atomic load plus a predicted branch, and never allocates;
///  - zero steady-state allocations when enabled: events go into
///    fixed-capacity per-thread ring buffers preallocated at each
///    thread's first event (names/categories must be string literals);
///  - read-only: tracing observes wall clocks and thread-local memory
///    only — it never touches RNG streams or floating-point state, so
///    Metrics::digest() is bit-identical with tracing on or off.
namespace airfedga::obs {

/// One recorded occurrence: a complete span (is_span, dur_ns > 0 allowed
/// to be 0 for sub-tick spans) or an instant (dur_ns == 0, optional
/// integer argument). Spans are recorded whole at their *end*, which makes
/// ring-buffer wraparound safe: dropping whole records can never produce
/// an unbalanced begin/end pair in the flushed trace.
struct TraceEvent {
  const char* name = nullptr;      ///< static string, e.g. "pool.task"
  const char* cat = nullptr;       ///< static string, layer tag, e.g. "pool"
  const char* arg_name = nullptr;  ///< static string; nullptr = no argument
  std::uint64_t begin_ns = 0;      ///< start, ns since the trace epoch
  std::uint64_t dur_ns = 0;        ///< duration; 0 for instants
  std::int64_t arg = 0;            ///< argument value (when arg_name set)
  bool is_span = false;
};

namespace detail {
extern std::atomic<bool> g_enabled;
std::uint64_t now_ns();
void push_span(const char* cat, const char* name, std::uint64_t begin_ns);
void push_instant(const char* cat, const char* name, const char* arg_name, std::int64_t arg);
}  // namespace detail

/// True when tracing is collecting. Relaxed load — this is the one branch
/// every disabled hook pays.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Turns collection on (idempotent). The first call pins the trace epoch;
/// re-enabling after set_enabled(false) keeps the original epoch so a
/// process has one coherent timeline.
void enable();

/// Test hook: toggles collection without clearing buffers.
void set_enabled(bool on);

/// Test hook: drops every buffered event (thread registrations and ring
/// storage stay alive so cached thread-local pointers remain valid). Only
/// call while no instrumented thread is recording.
void reset_for_testing();

/// Names the calling thread's track in the flushed trace (copied into a
/// small thread-local buffer — no allocation, callable before enable()).
/// Unnamed threads appear as "thread-<n>" in registration order.
void name_this_thread(const char* name);

/// Records an instant event. No-op (one branch) when disabled.
inline void instant(const char* cat, const char* name) {
  if (enabled()) detail::push_instant(cat, name, nullptr, 0);
}

/// Records an instant event carrying one integer argument, e.g. the
/// pending-event depth at an eventq.pop.
inline void instant(const char* cat, const char* name, const char* arg_name, std::int64_t arg) {
  if (enabled()) detail::push_instant(cat, name, arg_name, arg);
}

/// RAII span: stamps the clock at construction when tracing is enabled and
/// records one complete TraceEvent at destruction. When disabled, both
/// ends cost one predictable branch and nothing else.
class Span {
 public:
  Span(const char* cat, const char* name) {
    if (enabled()) {
      cat_ = cat;
      name_ = name;
      begin_ns_ = detail::now_ns();
    }
  }
  /// Arms only when `cond` also holds — for thresholded spans (e.g. GEMMs
  /// above a FLOP floor) without an optional<Span> at the call site.
  Span(const char* cat, const char* name, bool cond) {
    if (cond && enabled()) {
      cat_ = cat;
      name_ = name;
      begin_ns_ = detail::now_ns();
    }
  }
  ~Span() {
    if (cat_ != nullptr) detail::push_span(cat_, name_, begin_ns_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* cat_ = nullptr;  ///< nullptr = disarmed (tracing was off)
  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
};

/// Events dropped to ring wraparound across all threads (each thread keeps
/// its most recent events; the count tells you how much history was lost).
std::uint64_t dropped_events();

/// Writes everything buffered so far as Chrome trace-event JSON ("X"
/// complete spans, "i" instants, "M" thread_name metadata; ts/dur in
/// microseconds), loadable in chrome://tracing and Perfetto.
///
/// Quiescence contract: the caller must ensure no instrumented thread is
/// concurrently recording (e.g. flush after every Driver has joined its
/// pool and global-pool lanes are idle). The scenario CLI flushes once,
/// after all runs complete.
void write_chrome_json(std::ostream& os);

/// Per-category aggregate for the terminal report. `self_ns` excludes time
/// spent in child spans on the same thread; `total_ns` is inclusive.
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

/// Aggregates all buffered spans per span name, sorted by self time
/// descending. Same quiescence contract as write_chrome_json().
std::vector<SpanStat> aggregate_spans();

/// Prints the per-phase wall-time breakdown (count / total / self per span
/// category) as a table — terminal attribution without leaving the shell.
void print_report(std::ostream& os);

}  // namespace airfedga::obs
