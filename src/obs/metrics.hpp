#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace airfedga::obs {

/// Monotonic event counter. add() is a relaxed atomic increment, safe from
/// any thread; hot sites cache the reference once (Registry::counter
/// allocates) so steady state is allocation-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Fixed-bucket histogram: counts[i] holds samples with x <= bounds[i]
/// (first matching bucket), plus one overflow bucket. Bucket layout is
/// fixed at construction so record() is a short scan over preallocated
/// atomics — no allocation, safe from any thread.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double x) {
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (x <= bounds_[i]) {
        bump(i, x);
        return;
      }
    }
    bump(bounds_.size(), x);  // overflow bucket
  }

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<std::uint64_t> counts() const;  ///< size bounds()+1
  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  void bump(std::size_t i, double x) {
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(x, std::memory_order_relaxed);
  }

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Plain-data copy of a Registry at one point in time; what the scenario
/// runner serializes into its JSONL records (timing-gated — see
/// docs/OBSERVABILITY.md) and what fl::Metrics carries to the benches.
/// Deliberately excluded from Metrics::digest()/bit_identical(): some
/// values are wall-clock- or thread-count-dependent.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< name-sorted
  std::vector<HistogramData> histograms;                        ///< name-sorted

  [[nodiscard]] bool empty() const { return counters.empty() && histograms.empty(); }
};

/// Named-metric registry. One per Driver (per run), so snapshots attribute
/// cleanly to a single mechanism execution. Lookup allocates under a
/// mutex; instruments themselves are address-stable, so hot paths resolve
/// their Counter/Histogram once and then update lock-free.
class Registry {
 public:
  Counter& counter(const std::string& name);

  /// Returns the histogram `name`, creating it with `bounds` on first use
  /// (later calls ignore `bounds`; a bucket layout is fixed for the run).
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide registry for instrumentation that outlives any single run
/// — the scenario farm's `farm.retries` / `farm.quarantined` /
/// `farm.resumed_skips` counters live here. Per-run metrics belong in the
/// owning Driver's registry instead, so they attribute to one mechanism
/// execution.
Registry& global_registry();

}  // namespace airfedga::obs
