#include "obs/metrics.hpp"

namespace airfedga::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds) {
  std::scoped_lock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::scoped_lock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData d;
    d.name = name;
    d.bounds = h->bounds();
    d.counts = h->counts();
    d.count = h->count();
    d.sum = h->sum();
    snap.histograms.push_back(std::move(d));
  }
  return snap;
}

Registry& global_registry() {
  static Registry registry;
  return registry;
}

}  // namespace airfedga::obs
