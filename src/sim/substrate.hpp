#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "channel/fading.hpp"
#include "channel/latency.hpp"

namespace airfedga::sim {

/// Configuration of the time-varying substrate layer: which realism
/// generators are active and their knobs. The three generators compose
/// freely (a run can have churn *and* energy budgets *and* CSI error); with
/// none enabled the substrate is the static adapter over the classic
/// fading/latency models and reproduces pre-substrate digests bit for bit.
struct SubstrateOptions {
  /// Diurnal availability generator: each worker follows a seeded on/off
  /// square wave (period `churn_period`, on for `churn_on_fraction` of it,
  /// random phase). Workers that go offline mid-round drop out of the
  /// aggregation; cohorts emptied at cycle start wait for an availability
  /// event instead of burning rounds.
  bool churn = false;
  double churn_period = 400.0;     ///< seconds per on/off cycle
  double churn_on_fraction = 0.7;  ///< fraction of the period a worker is on

  /// Energy-budget generator: each worker starts with `energy_budget`
  /// joules for the whole run. AirComp uploads charge the real Eq. (7)
  /// transmit energy; OMA uploads charge the flat `energy_oma_upload`.
  /// A depleted worker stops participating (extends the fig09 energy axis
  /// from accounting to an actual constraint).
  bool energy = false;
  double energy_budget = 50.0;     ///< J per worker for the whole run
  double energy_oma_upload = 1.0;  ///< flat J per OMA upload

  /// Imperfect-CSI generator: the parameter server's channel estimate is
  /// h_hat = h * (1 + eps), eps ~ N(0, csi_error_std) per (worker, round).
  /// Power control and pre-equalization use h_hat; the over-the-air
  /// superposition then carries the residual factor h / h_hat per worker
  /// (the multiplicative MAC mismatch of imperfect CSI).
  bool csi_error = false;
  double csi_error_std = 0.1;  ///< relative estimate-error std deviation

  /// True when any generator changes run-time scheduling state
  /// (availability or energy gating). CSI error alone leaves the event
  /// schedule untouched — it only perturbs the AirComp arithmetic.
  [[nodiscard]] bool time_varying() const { return churn || energy; }

  /// True when any generator is enabled at all.
  [[nodiscard]] bool any() const { return churn || energy || csi_error; }

  /// Throws std::invalid_argument naming the offending knob.
  void validate() const;
};

/// Parses a substrate kind string — "static" or a '+'-joined combination
/// of "churn", "energy", "csi_error" (e.g. "churn+energy") — into the
/// generator flags of `opts` (knob values are left untouched). Throws
/// std::invalid_argument on an unknown or duplicate token.
void set_substrate_kind(SubstrateOptions& opts, const std::string& kind);

/// Canonical kind string of the enabled generators ("static" when none);
/// the inverse of set_substrate_kind.
[[nodiscard]] std::string substrate_kind(const SubstrateOptions& opts);

/// Per-worker physical state of the run — channel gains, upload latency,
/// availability, remaining energy — queried at virtual-time points instead
/// of baked into the federated config at construction.
///
/// Contract for generator implementations:
///  - Every query is answered on the simulation thread, in event order;
///    queries with the same arguments between two mutations (charge) return
///    identical values. gains()/csi_scales() are pure functions of
///    (substrate seeds, round); available()/next_transition() are pure
///    functions of (substrate seeds, time). State therefore never depends
///    on lane count or event-queue backend.
///  - Determinism invariant #8 (docs/ARCHITECTURE.md): substrate queries
///    consume only substrate-owned RNG streams — the fading stream and the
///    churn/CSI streams forked from the run seed with substrate-reserved
///    tags. No query may touch the weight, partition, or worker streams.
class Substrate {
 public:
  virtual ~Substrate() = default;

  [[nodiscard]] virtual std::size_t num_workers() const = 0;

  // -- channel state ----------------------------------------------------
  /// Per-worker channel gains as the parameter server estimates them for
  /// `round` (h_hat); what power control and pre-equalization use. Cached
  /// per round; the reference is valid until the next gains() call.
  virtual const std::vector<double>& gains(std::size_t round) = 0;

  /// Per-worker multiplicative MAC factors h / h_hat for `round`; an empty
  /// span means perfect CSI (the AirComp channel then skips the mismatch
  /// term entirely). Valid until the next csi_scales() call.
  virtual std::span<const double> csi_scales(std::size_t round) = 0;

  // -- upload latency ---------------------------------------------------
  /// AirComp upload duration (Eq. 33) for a q-parameter model, queried at
  /// the event's virtual `time`.
  [[nodiscard]] virtual double aircomp_upload_seconds(std::size_t q, double time) const = 0;

  /// Serialized OMA upload duration for `uploaders` workers, queried at
  /// the event's virtual `time`.
  [[nodiscard]] virtual double oma_upload_seconds(std::size_t q, std::size_t uploaders,
                                                  double time) const = 0;

  // -- availability -----------------------------------------------------
  /// Whether `worker` is online at virtual `time`.
  [[nodiscard]] virtual bool available(std::size_t worker, double time) const = 0;

  /// Next availability transition of `worker` strictly after `time`, or a
  /// negative value when its availability never changes (no churn).
  [[nodiscard]] virtual double next_transition(std::size_t worker, double time) const = 0;

  // -- energy -----------------------------------------------------------
  /// Whether `worker` has exhausted its energy budget.
  [[nodiscard]] virtual bool depleted(std::size_t worker) const = 0;

  /// Deducts `joules` from the worker's budget (no-op without the energy
  /// generator). Called on the simulation thread at aggregation events.
  virtual void charge(std::size_t worker, double joules) = 0;

  /// Remaining budget of `worker` in joules (+inf without the generator).
  [[nodiscard]] virtual double remaining_joules(std::size_t worker) const = 0;

  /// Flat per-upload OMA charge (0 without the energy generator).
  [[nodiscard]] virtual double oma_upload_joules() const = 0;

  /// Number of workers that have crossed into depletion so far.
  [[nodiscard]] virtual std::size_t depleted_count() const = 0;

  // -- scheduling-loop guards -------------------------------------------
  /// True when the scheduling loop must filter membership and process
  /// availability events (any time-varying generator active). The static
  /// substrate returns false, keeping the loop on its classic path.
  [[nodiscard]] virtual bool time_varying() const = 0;

  /// Online and not depleted: may join a cohort cycle starting at `time`.
  [[nodiscard]] bool selectable(std::size_t worker, double time) const {
    return available(worker, time) && !depleted(worker);
  }
};

/// The static generator: an adapter over the classic per-run
/// FadingChannel + LatencyModel pair. Always available, infinite energy,
/// perfect CSI; gains(round) caches the latest round's Rayleigh draw
/// exactly like the pre-substrate driver did, so every digest is
/// bit-identical to pre-refactor goldens.
class StaticSubstrate : public Substrate {
 public:
  StaticSubstrate(std::size_t num_workers, const channel::FadingChannel::Config& fading,
                  const channel::LatencyConfig& latency);

  [[nodiscard]] std::size_t num_workers() const override { return n_; }
  const std::vector<double>& gains(std::size_t round) override { return true_gains(round); }
  std::span<const double> csi_scales(std::size_t /*round*/) override { return {}; }
  [[nodiscard]] double aircomp_upload_seconds(std::size_t q, double time) const override;
  [[nodiscard]] double oma_upload_seconds(std::size_t q, std::size_t uploaders,
                                          double time) const override;
  [[nodiscard]] bool available(std::size_t /*worker*/, double /*time*/) const override {
    return true;
  }
  [[nodiscard]] double next_transition(std::size_t /*worker*/,
                                       double /*time*/) const override {
    return -1.0;
  }
  [[nodiscard]] bool depleted(std::size_t /*worker*/) const override { return false; }
  void charge(std::size_t /*worker*/, double /*joules*/) override {}
  [[nodiscard]] double remaining_joules(std::size_t worker) const override;
  [[nodiscard]] double oma_upload_joules() const override { return 0.0; }
  [[nodiscard]] std::size_t depleted_count() const override { return 0; }
  [[nodiscard]] bool time_varying() const override { return false; }

  /// The inner fading model (tests and planning-time inspection).
  [[nodiscard]] const channel::FadingChannel& fading_model() const { return fading_; }

 protected:
  /// The true per-round gains h with the classic latest-round cache;
  /// realism generators layer estimate noise on top of this.
  const std::vector<double>& true_gains(std::size_t round);

 private:
  std::size_t n_;
  channel::FadingChannel fading_;
  channel::LatencyModel latency_;
  std::size_t gains_round_ = static_cast<std::size_t>(-1);
  std::vector<double> gains_cache_;
};

/// The realism generators — churn, energy, csi_error — layered over the
/// static adapter, each independently gated by its SubstrateOptions flag.
/// All randomness comes from two substrate-owned streams forked from the
/// run seed (churn phases; per-round CSI error), so every trajectory is a
/// deterministic function of (scenario, seed) regardless of lane count or
/// queue backend.
class RealismSubstrate : public StaticSubstrate {
 public:
  RealismSubstrate(std::size_t num_workers, const channel::FadingChannel::Config& fading,
                   const channel::LatencyConfig& latency, const SubstrateOptions& opts,
                   std::uint64_t run_seed);

  const std::vector<double>& gains(std::size_t round) override;
  std::span<const double> csi_scales(std::size_t round) override;
  [[nodiscard]] bool available(std::size_t worker, double time) const override;
  [[nodiscard]] double next_transition(std::size_t worker, double time) const override;
  [[nodiscard]] bool depleted(std::size_t worker) const override;
  void charge(std::size_t worker, double joules) override;
  [[nodiscard]] double remaining_joules(std::size_t worker) const override;
  [[nodiscard]] double oma_upload_joules() const override;
  [[nodiscard]] std::size_t depleted_count() const override { return depleted_count_; }
  [[nodiscard]] bool time_varying() const override { return opts_.time_varying(); }

  [[nodiscard]] const SubstrateOptions& options() const { return opts_; }

 private:
  void ensure_csi(std::size_t round);

  SubstrateOptions opts_;
  std::uint64_t csi_seed_ = 0;
  std::vector<double> phase_;      ///< [worker] churn wave phase offset (s)
  std::vector<double> remaining_;  ///< [worker] energy budget left (J)
  std::size_t depleted_count_ = 0;
  // Per-round CSI cache, refreshed together: the reported estimates
  // h_hat = h * (1 + eps) and the MAC factors h / h_hat.
  std::size_t csi_round_ = static_cast<std::size_t>(-1);
  std::vector<double> reported_;
  std::vector<double> scales_;
};

/// Builds the substrate for a run: the static adapter when no generator is
/// enabled, the realism substrate otherwise. `run_seed` is the run's root
/// seed; substrate streams fork from it with reserved tags (invariant #8).
std::unique_ptr<Substrate> make_substrate(std::size_t num_workers,
                                          const channel::FadingChannel::Config& fading,
                                          const channel::LatencyConfig& latency,
                                          const SubstrateOptions& opts, std::uint64_t run_seed);

}  // namespace airfedga::sim
