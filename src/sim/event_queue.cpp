#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

namespace airfedga::sim {

EventQueue::EventQueue(QueueBackend backend) : backend_(backend) {
  if (backend_ == QueueBackend::kCalendar) {
    buckets_.assign(8, {});
    cal_width_ = 1.0;
    cal_seek(0.0);
  }
}

void EventQueue::assert_owner() {
#ifndef NDEBUG
  // compare_exchange claims ownership exactly once even if two threads
  // race the first access; the loser sees the winner's id and throws.
  std::thread::id expected{};
  const std::thread::id me = std::this_thread::get_id();
  if (!owner_.compare_exchange_strong(expected, me) && expected != me) {
    throw std::logic_error("EventQueue: accessed from a second thread (single-owner contract)");
  }
#endif
}

double EventQueue::cal_cell(double time) const { return std::floor(time / cal_width_); }

std::size_t EventQueue::cal_bucket_of(double time) const {
  const double n = static_cast<double>(buckets_.size());
  double idx = std::fmod(cal_cell(time), n);
  if (idx < 0.0) idx += n;  // defensive: virtual time is non-negative by contract
  return static_cast<std::size_t>(idx);
}

void EventQueue::cal_seek(double time) const {
  cal_bucket_ = cal_bucket_of(time);
  cal_cell_ = cal_cell(time);
}

void EventQueue::cal_insert(const Event& e) {
  auto& bucket = buckets_[cal_bucket_of(e.time)];
  // Buckets stay sorted descending by (time, seq): Later is the "comes
  // first in this order" predicate, so lower_bound lands on the first
  // element not later than e and back() stays the bucket minimum.
  const auto pos = std::lower_bound(bucket.begin(), bucket.end(), e, Later{});
  bucket.insert(pos, e);
  // peek() may have walked the cursor ahead of now_ looking for the next
  // event; an insert earlier than the cursor's cell must rewind it or the
  // year scan would skip the new minimum. This keeps the invariant that
  // cal_cell_ <= cal_cell(e.time) for every pending event.
  if (cal_cell(e.time) < cal_cell_) cal_seek(e.time);
}

std::size_t EventQueue::cal_locate() const {
  const std::size_t n = buckets_.size();
  // Year scan: visit each bucket once starting at the cursor. Step i of
  // the scan is at grid cell cal_cell_ + i, whose events live in bucket
  // (cal_bucket_ + i) mod n. A bucket's minimum is due exactly when its
  // cell equals the scan cell; since inserts rewind the cursor below any
  // earlier event, no pending cell precedes cal_cell_, so `<=` is the
  // robust form of that equality and the first hit is the global
  // minimum. Crucially the test recomputes floor(time/width) — the very
  // mapping that placed the event — instead of comparing against a
  // `cell * width` window top, which can round to the other side of the
  // cell boundary and make a bucket reject its own minimum.
  std::size_t b = cal_bucket_;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& bucket = buckets_[b];
    if (!bucket.empty() && cal_cell(bucket.back().time) <= cal_cell_ + static_cast<double>(i)) {
      cal_bucket_ = b;
      cal_cell_ += static_cast<double>(i);
      return b;
    }
    b = (b + 1) % n;
  }
  // Sparse tail: nothing due within a full year of the cursor. Fall back
  // to an exact minimum search and snap the cursor to its cell.
  const Event* best = nullptr;
  std::size_t bestb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& bucket = buckets_[i];
    if (bucket.empty()) continue;
    if (best == nullptr || Later{}(*best, bucket.back())) {
      best = &bucket.back();
      bestb = i;
    }
  }
  cal_seek(best->time);
  cal_bucket_ = bestb;
  return bestb;
}

void EventQueue::cal_resize(std::size_t nbuckets) {
  std::vector<Event> all;
  all.reserve(size_);
  for (const auto& bucket : buckets_) all.insert(all.end(), bucket.begin(), bucket.end());
  buckets_.assign(nbuckets, {});
  if (all.empty()) {
    cal_width_ = 1.0;
    cal_seek(now_);
    return;
  }
  double lo = all.front().time;
  double hi = all.front().time;
  for (const Event& e : all) {
    lo = std::min(lo, e.time);
    hi = std::max(hi, e.time);
  }
  // Width targets ~1/3 of the pending events per year so the scan stays
  // O(1) amortized; degenerate spans keep the previous granularity.
  const double span = hi - lo;
  cal_width_ = span > 0.0 ? std::max(3.0 * span / static_cast<double>(all.size()), 1e-9) : 1.0;
  if (!std::isfinite(cal_width_) || cal_width_ <= 0.0) cal_width_ = 1.0;
  cal_seek(lo);
  for (const Event& e : all) cal_insert(e);
}

std::uint64_t EventQueue::schedule(double time, int kind, std::size_t actor) {
  assert_owner();
  if (!std::isfinite(time)) throw std::invalid_argument("EventQueue: non-finite time");
  if (time < now_) throw std::invalid_argument("EventQueue: scheduling into the past");
  const std::uint64_t seq = next_seq_++;
  const Event e{time, seq, kind, actor};
  if (backend_ == QueueBackend::kBinaryHeap) {
    heap_.push(e);
  } else {
    cal_insert(e);
  }
  ++size_;
  obs::instant("sim", "eventq.push", "pending", static_cast<std::int64_t>(size_));
  if (backend_ == QueueBackend::kCalendar && size_ > 2 * buckets_.size()) {
    cal_resize(buckets_.size() * 2);
  }
  return seq;
}

Event EventQueue::pop() {
  assert_owner();
  if (size_ == 0) throw std::logic_error("EventQueue::pop: empty queue");
  Event e;
  if (backend_ == QueueBackend::kBinaryHeap) {
    e = heap_.top();
    heap_.pop();
  } else {
    auto& bucket = buckets_[cal_locate()];
    e = bucket.back();
    bucket.pop_back();
  }
  --size_;
  now_ = e.time;
  obs::instant("sim", "eventq.pop", "pending", static_cast<std::int64_t>(size_));
  if (backend_ == QueueBackend::kCalendar && buckets_.size() > 8 && size_ < buckets_.size() / 2) {
    cal_resize(std::max<std::size_t>(8, buckets_.size() / 2));
  }
  return e;
}

const Event& EventQueue::peek() const {
  if (size_ == 0) throw std::logic_error("EventQueue::peek: empty queue");
  if (backend_ == QueueBackend::kBinaryHeap) return heap_.top();
  return buckets_[cal_locate()].back();
}

double EventQueue::peek_time() const { return peek().time; }

}  // namespace airfedga::sim
