#include "sim/event_queue.hpp"

#include <cmath>

namespace airfedga::sim {

std::uint64_t EventQueue::schedule(double time, int kind, std::size_t actor) {
  if (!std::isfinite(time)) throw std::invalid_argument("EventQueue: non-finite time");
  if (time < now_) throw std::invalid_argument("EventQueue: scheduling into the past");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Event{time, seq, kind, actor});
  return seq;
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty queue");
  Event e = heap_.top();
  heap_.pop();
  now_ = e.time;
  return e;
}

double EventQueue::peek_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::peek_time: empty queue");
  return heap_.top().time;
}

}  // namespace airfedga::sim
