#include "sim/event_queue.hpp"

#include <cmath>

namespace airfedga::sim {

void EventQueue::assert_owner() {
#ifndef NDEBUG
  // compare_exchange claims ownership exactly once even if two threads
  // race the first access; the loser sees the winner's id and throws.
  std::thread::id expected{};
  const std::thread::id me = std::this_thread::get_id();
  if (!owner_.compare_exchange_strong(expected, me) && expected != me) {
    throw std::logic_error("EventQueue: accessed from a second thread (single-owner contract)");
  }
#endif
}

std::uint64_t EventQueue::schedule(double time, int kind, std::size_t actor) {
  assert_owner();
  if (!std::isfinite(time)) throw std::invalid_argument("EventQueue: non-finite time");
  if (time < now_) throw std::invalid_argument("EventQueue: scheduling into the past");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Event{time, seq, kind, actor});
  return seq;
}

Event EventQueue::pop() {
  assert_owner();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty queue");
  Event e = heap_.top();
  heap_.pop();
  now_ = e.time;
  return e;
}

const Event& EventQueue::peek() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::peek: empty queue");
  return heap_.top();
}

double EventQueue::peek_time() const { return peek().time; }

}  // namespace airfedga::sim
