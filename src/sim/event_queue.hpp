#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

/// \namespace airfedga::sim
/// Discrete-event simulation layer: the virtual-time event queue and the
/// compute-heterogeneity cluster model.

namespace airfedga::sim {

/// One scheduled occurrence in virtual time. `kind`/`actor` are interpreted
/// by the mechanism that scheduled the event (e.g. actor = worker id for a
/// READY event in Alg. 1).
struct Event {
  double time = 0.0;      ///< virtual time at which the event fires
  std::uint64_t seq = 0;  ///< insertion order; breaks time ties deterministically
  int kind = 0;           ///< mechanism-defined event type
  std::size_t actor = 0;  ///< mechanism-defined subject (worker/group/tier id)
};

/// Storage backend of an EventQueue. Both backends implement the identical
/// strict (time, seq) pop order — the choice affects only the constant
/// factors of schedule/pop at large pending-event counts
/// (bench/micro_eventq.cpp measures both at >= 1e5 events).
enum class QueueBackend {
  /// std::priority_queue over a binary heap: O(log n) schedule/pop, the
  /// default and the reference implementation.
  kBinaryHeap,
  /// Brown's calendar queue (sorted buckets over fixed virtual-time
  /// windows, resized as the population grows/shrinks): amortized O(1)
  /// schedule/pop under the uniform event distributions the scheduling
  /// loop produces at massive worker populations.
  kCalendar,
};

/// Min-queue of events ordered by (time, seq).
///
/// The simulator advances a virtual clock: popping returns the earliest
/// event and moves the clock forward; scheduling in the past is rejected so
/// causality bugs in mechanisms surface immediately instead of silently
/// reordering history.
///
/// Threading contract: the queue is deliberately NOT thread-safe. Virtual
/// time is the simulation's single source of truth, and it stays
/// deterministic only if one thread owns the schedule/pop sequence. The
/// group-parallel execution engine respects this by keeping all event and
/// aggregation processing on the simulation thread and dispatching only
/// local-training compute to pool lanes. Debug builds assert the contract:
/// the first thread to touch the queue becomes its owner and any access
/// from another thread throws.
class EventQueue {
 public:
  /// Constructs an empty queue on the given backend. The binary heap is
  /// the default; both backends produce identical pop sequences
  /// (tests/event_queue_property_test.cpp proves it under fuzzing).
  explicit EventQueue(QueueBackend backend = QueueBackend::kBinaryHeap);

  /// The storage backend this queue was constructed with.
  [[nodiscard]] QueueBackend backend() const { return backend_; }

  /// Schedules an event; returns its sequence number.
  std::uint64_t schedule(double time, int kind, std::size_t actor);

  /// Pops the earliest event and advances the clock to its time.
  Event pop();

  /// True when no events are pending.
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Number of pending events.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Current virtual time (time of the last popped event; 0 initially).
  [[nodiscard]] double now() const { return now_; }

  /// Earliest pending event without popping it or advancing the clock
  /// (lookahead counterpart of peek_time for callers that need the full
  /// event, e.g. a future shared scheduling loop). Throws when empty.
  [[nodiscard]] const Event& peek() const;

  /// Time of the earliest pending event. Throws when empty.
  [[nodiscard]] double peek_time() const;

 private:
  void assert_owner();

  // Calendar backend (Brown's calendar queue). Buckets are sorted
  // descending by (time, seq) so back() is each bucket's minimum; the
  // cursor (cal_bucket_, cal_cell_) names the grid cell currently being
  // drained. Cells — floor(time/width) — are the single source of truth
  // for both bucket placement and the year scan's due-now test, so the
  // two can never disagree at a window boundary the way a recomputed
  // `cell * width` top can (division and multiplication round
  // differently). A full-year scan that finds nothing falls back to a
  // direct minimum search.
  [[nodiscard]] double cal_cell(double time) const;
  [[nodiscard]] std::size_t cal_bucket_of(double time) const;
  std::size_t cal_locate() const;  ///< bucket index whose back() is the global minimum
  void cal_insert(const Event& e);
  void cal_resize(std::size_t nbuckets);
  void cal_seek(double time) const;  ///< snap the cursor to `time`'s window

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  QueueBackend backend_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::vector<std::vector<Event>> buckets_;  ///< calendar: sorted descending, back() = min
  double cal_width_ = 1.0;                   ///< calendar: virtual-time window per bucket
  // The scan cursor advances during peek() too (peek is logically const and
  // repositioning it never changes the observable pop order), so it is
  // mutable.
  mutable std::size_t cal_bucket_ = 0;  ///< calendar: bucket under the cursor
  mutable double cal_cell_ = 0.0;       ///< calendar: integer-valued grid cell under the cursor
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
#ifndef NDEBUG
  // Atomic so the guard itself is race-free: two threads racing the first
  // access must not both claim ownership (and an unsynchronized check
  // could miss exactly the violation it exists to detect).
  std::atomic<std::thread::id> owner_{};  ///< set on first mutating access
#endif
};

}  // namespace airfedga::sim
