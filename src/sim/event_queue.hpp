#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <vector>

namespace airfedga::sim {

/// One scheduled occurrence in virtual time. `kind`/`actor` are interpreted
/// by the mechanism that scheduled the event (e.g. actor = worker id for a
/// READY event in Alg. 1).
struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< insertion order; breaks time ties deterministically
  int kind = 0;
  std::size_t actor = 0;
};

/// Min-heap of events ordered by (time, seq).
///
/// The simulator advances a virtual clock: popping returns the earliest
/// event and moves the clock forward; scheduling in the past is rejected so
/// causality bugs in mechanisms surface immediately instead of silently
/// reordering history.
class EventQueue {
 public:
  /// Schedules an event; returns its sequence number.
  std::uint64_t schedule(double time, int kind, std::size_t actor);

  /// Pops the earliest event and advances the clock to its time.
  Event pop();

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Current virtual time (time of the last popped event; 0 initially).
  [[nodiscard]] double now() const { return now_; }

  /// Time of the earliest pending event.
  [[nodiscard]] double peek_time() const;

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace airfedga::sim
