#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

/// \namespace airfedga::sim
/// Discrete-event simulation layer: the virtual-time event queue and the
/// compute-heterogeneity cluster model.

namespace airfedga::sim {

/// One scheduled occurrence in virtual time. `kind`/`actor` are interpreted
/// by the mechanism that scheduled the event (e.g. actor = worker id for a
/// READY event in Alg. 1).
struct Event {
  double time = 0.0;      ///< virtual time at which the event fires
  std::uint64_t seq = 0;  ///< insertion order; breaks time ties deterministically
  int kind = 0;           ///< mechanism-defined event type
  std::size_t actor = 0;  ///< mechanism-defined subject (worker/group/tier id)
};

/// Min-heap of events ordered by (time, seq).
///
/// The simulator advances a virtual clock: popping returns the earliest
/// event and moves the clock forward; scheduling in the past is rejected so
/// causality bugs in mechanisms surface immediately instead of silently
/// reordering history.
///
/// Threading contract: the queue is deliberately NOT thread-safe. Virtual
/// time is the simulation's single source of truth, and it stays
/// deterministic only if one thread owns the schedule/pop sequence. The
/// group-parallel execution engine respects this by keeping all event and
/// aggregation processing on the simulation thread and dispatching only
/// local-training compute to pool lanes. Debug builds assert the contract:
/// the first thread to touch the queue becomes its owner and any access
/// from another thread throws.
class EventQueue {
 public:
  /// Schedules an event; returns its sequence number.
  std::uint64_t schedule(double time, int kind, std::size_t actor);

  /// Pops the earliest event and advances the clock to its time.
  Event pop();

  /// True when no events are pending.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Number of pending events.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Current virtual time (time of the last popped event; 0 initially).
  [[nodiscard]] double now() const { return now_; }

  /// Earliest pending event without popping it or advancing the clock
  /// (lookahead counterpart of peek_time for callers that need the full
  /// event, e.g. a future shared scheduling loop). Throws when empty.
  [[nodiscard]] const Event& peek() const;

  /// Time of the earliest pending event. Throws when empty.
  [[nodiscard]] double peek_time() const;

 private:
  void assert_owner();

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
#ifndef NDEBUG
  // Atomic so the guard itself is race-free: two threads racing the first
  // access must not both claim ownership (and an unsynchronized check
  // could miss exactly the violation it exists to detect).
  std::atomic<std::thread::id> owner_{};  ///< set on first mutating access
#endif
};

}  // namespace airfedga::sim
