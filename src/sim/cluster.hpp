#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace airfedga::sim {

/// Edge-heterogeneity model (paper §VI-A2): every worker has local training
/// time l_i = kappa_i * base_seconds, with kappa_i drawn uniformly from
/// [kappa_min, kappa_max] (the paper uses [1, 10]).
class ClusterModel {
 public:
  struct Config {
    double base_seconds = 6.0;  ///< \hat{l}: homogeneous per-round compute time
    double kappa_min = 1.0;
    double kappa_max = 10.0;
    std::uint64_t seed = 17;
  };

  ClusterModel(std::size_t num_workers, Config cfg);

  [[nodiscard]] std::size_t num_workers() const { return kappa_.size(); }

  /// kappa_i, the heterogeneity factor of worker i.
  [[nodiscard]] double kappa(std::size_t worker) const { return kappa_.at(worker); }

  /// l_i = kappa_i * base (seconds of local training per round).
  [[nodiscard]] double local_time(std::size_t worker) const;

  /// All l_i in worker order.
  [[nodiscard]] std::vector<double> local_times() const;

  /// Delta_l = max_i l_i - min_i l_i (used in constraint 36d).
  [[nodiscard]] double spread() const;

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  std::vector<double> kappa_;
};

}  // namespace airfedga::sim
