#include "sim/substrate.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace airfedga::sim {

namespace {

// Tags reserved for substrate-owned RNG streams (determinism invariant #8):
// the root is forked from the run seed, then churn phases and per-round CSI
// error fork from the root. None of these collide with the worker
// (1000 + i), model (0x1717), fading, or cohort-sampling derivations.
constexpr std::uint64_t kSubstrateTag = 0x5B57247E;  // "SUBSTRATE"
constexpr std::uint64_t kChurnTag = 1;
constexpr std::uint64_t kCsiTag = 2;

}  // namespace

void SubstrateOptions::validate() const {
  auto bad = [](const std::string& what) { throw std::invalid_argument("substrate: " + what); };
  if (churn) {
    if (!(churn_period > 0.0)) bad("churn_period must be > 0");
    if (!(churn_on_fraction > 0.0) || churn_on_fraction > 1.0)
      bad("churn_on_fraction must be in (0, 1]");
  }
  if (energy) {
    if (!(energy_budget > 0.0)) bad("energy_budget must be > 0");
    if (energy_oma_upload < 0.0) bad("energy_oma_upload must be >= 0");
  }
  if (csi_error && csi_error_std < 0.0) bad("csi_error_std must be >= 0");
}

void set_substrate_kind(SubstrateOptions& opts, const std::string& kind) {
  opts.churn = opts.energy = opts.csi_error = false;
  if (kind == "static") return;
  // getline drops a trailing empty token, so "churn+" would otherwise
  // silently parse as "churn".
  if (!kind.empty() && kind.back() == '+')
    throw std::invalid_argument("substrate kind must not end in '+'");
  std::stringstream ss(kind);
  std::string token;
  bool saw_token = false;
  while (std::getline(ss, token, '+')) {
    saw_token = true;
    bool* flag = nullptr;
    if (token == "churn") flag = &opts.churn;
    else if (token == "energy") flag = &opts.energy;
    else if (token == "csi_error") flag = &opts.csi_error;
    else
      throw std::invalid_argument("unknown substrate kind token '" + token +
                                  "' (expected static, churn, energy, csi_error)");
    if (*flag) throw std::invalid_argument("duplicate substrate kind token '" + token + "'");
    *flag = true;
  }
  if (!saw_token) throw std::invalid_argument("substrate kind must not be empty");
}

std::string substrate_kind(const SubstrateOptions& opts) {
  std::string out;
  auto append = [&out](const char* token) {
    if (!out.empty()) out += '+';
    out += token;
  };
  if (opts.churn) append("churn");
  if (opts.energy) append("energy");
  if (opts.csi_error) append("csi_error");
  return out.empty() ? "static" : out;
}

// ---------------------------------------------------------------------------
// StaticSubstrate

StaticSubstrate::StaticSubstrate(std::size_t num_workers,
                                 const channel::FadingChannel::Config& fading,
                                 const channel::LatencyConfig& latency)
    : n_(num_workers), fading_(num_workers, fading), latency_(latency) {}

const std::vector<double>& StaticSubstrate::true_gains(std::size_t round) {
  if (gains_round_ != round || gains_cache_.empty()) {
    gains_cache_ = fading_.gains(round);
    gains_round_ = round;
  }
  return gains_cache_;
}

double StaticSubstrate::aircomp_upload_seconds(std::size_t q, double /*time*/) const {
  return latency_.aircomp_upload_seconds(q);
}

double StaticSubstrate::oma_upload_seconds(std::size_t q, std::size_t uploaders,
                                           double /*time*/) const {
  return latency_.oma_upload_seconds(q, uploaders);
}

double StaticSubstrate::remaining_joules(std::size_t /*worker*/) const {
  return std::numeric_limits<double>::infinity();
}

// ---------------------------------------------------------------------------
// RealismSubstrate

RealismSubstrate::RealismSubstrate(std::size_t num_workers,
                                   const channel::FadingChannel::Config& fading,
                                   const channel::LatencyConfig& latency,
                                   const SubstrateOptions& opts, std::uint64_t run_seed)
    : StaticSubstrate(num_workers, fading, latency), opts_(opts) {
  opts_.validate();
  const util::Rng root(util::splitmix64(run_seed ^ kSubstrateTag));
  if (opts_.churn) {
    util::Rng phases = root.fork(kChurnTag);
    phase_.resize(num_workers);
    for (double& p : phase_) p = phases.uniform(0.0, opts_.churn_period);
  }
  if (opts_.energy) remaining_.assign(num_workers, opts_.energy_budget);
  if (opts_.csi_error) csi_seed_ = root.fork(kCsiTag).seed();
}

void RealismSubstrate::ensure_csi(std::size_t round) {
  if (csi_round_ == round && !reported_.empty()) return;
  const std::vector<double>& truth = true_gains(round);
  reported_.resize(truth.size());
  scales_.resize(truth.size());
  // One substrate-owned stream per (csi seed, round); worker order fixed, so
  // the draw sequence is independent of which workers end up participating.
  util::Rng rng(util::splitmix64(csi_seed_ ^ (round * 0x9E3779B97F4A7C15ULL)));
  for (std::size_t i = 0; i < truth.size(); ++i) {
    // Clamp the relative error so a wild draw cannot flip the estimate's
    // sign or drive the pre-equalization divisor towards zero.
    double factor = 1.0 + rng.normal(0.0, opts_.csi_error_std);
    if (factor < 0.1) factor = 0.1;
    reported_[i] = truth[i] * factor;
    scales_[i] = truth[i] / reported_[i];
  }
  csi_round_ = round;
}

const std::vector<double>& RealismSubstrate::gains(std::size_t round) {
  if (!opts_.csi_error) return true_gains(round);
  ensure_csi(round);
  return reported_;
}

std::span<const double> RealismSubstrate::csi_scales(std::size_t round) {
  if (!opts_.csi_error) return {};
  ensure_csi(round);
  return scales_;
}

bool RealismSubstrate::available(std::size_t worker, double time) const {
  if (!opts_.churn) return true;
  // Availability is a pure function of time: an on/off square wave with a
  // per-worker random phase. No bookkeeping to drift out of sync with the
  // event queue, so replays and thread counts cannot change the trace.
  const double pos = std::fmod(time + phase_[worker], opts_.churn_period);
  return pos < opts_.churn_on_fraction * opts_.churn_period;
}

double RealismSubstrate::next_transition(std::size_t worker, double time) const {
  if (!opts_.churn || opts_.churn_on_fraction >= 1.0) return -1.0;
  const double period = opts_.churn_period;
  const double on_span = opts_.churn_on_fraction * period;
  const double pos = std::fmod(time + phase_[worker], period);
  const double cycle_start = time - pos;
  double next = cycle_start + (pos < on_span ? on_span : period);
  // fmod rounding can land `next` at or before `time` when `time` sits
  // exactly on a boundary; push to the following transition instead.
  while (!(next > time)) next += (next - cycle_start < on_span ? period - on_span : on_span);
  return next;
}

bool RealismSubstrate::depleted(std::size_t worker) const {
  return opts_.energy && remaining_[worker] <= 0.0;
}

void RealismSubstrate::charge(std::size_t worker, double joules) {
  if (!opts_.energy || joules <= 0.0) return;
  const bool was_depleted = remaining_[worker] <= 0.0;
  remaining_[worker] -= joules;
  if (!was_depleted && remaining_[worker] <= 0.0) ++depleted_count_;
}

double RealismSubstrate::remaining_joules(std::size_t worker) const {
  return opts_.energy ? remaining_[worker] : std::numeric_limits<double>::infinity();
}

double RealismSubstrate::oma_upload_joules() const {
  return opts_.energy ? opts_.energy_oma_upload : 0.0;
}

std::unique_ptr<Substrate> make_substrate(std::size_t num_workers,
                                          const channel::FadingChannel::Config& fading,
                                          const channel::LatencyConfig& latency,
                                          const SubstrateOptions& opts,
                                          std::uint64_t run_seed) {
  if (!opts.any()) return std::make_unique<StaticSubstrate>(num_workers, fading, latency);
  return std::make_unique<RealismSubstrate>(num_workers, fading, latency, opts, run_seed);
}

}  // namespace airfedga::sim
