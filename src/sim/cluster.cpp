#include "sim/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace airfedga::sim {

ClusterModel::ClusterModel(std::size_t num_workers, Config cfg) : cfg_(cfg) {
  if (num_workers == 0) throw std::invalid_argument("ClusterModel: zero workers");
  if (cfg.base_seconds <= 0.0) throw std::invalid_argument("ClusterModel: base time must be > 0");
  if (cfg.kappa_min <= 0.0 || cfg.kappa_max < cfg.kappa_min)
    throw std::invalid_argument("ClusterModel: bad kappa range");
  util::Rng rng(cfg.seed);
  kappa_.resize(num_workers);
  for (auto& k : kappa_) k = rng.uniform(cfg.kappa_min, cfg.kappa_max);
}

double ClusterModel::local_time(std::size_t worker) const {
  return kappa_.at(worker) * cfg_.base_seconds;
}

std::vector<double> ClusterModel::local_times() const {
  std::vector<double> l(kappa_.size());
  for (std::size_t i = 0; i < l.size(); ++i) l[i] = local_time(i);
  return l;
}

double ClusterModel::spread() const {
  const auto [mn, mx] = std::minmax_element(kappa_.begin(), kappa_.end());
  return (*mx - *mn) * cfg_.base_seconds;
}

}  // namespace airfedga::sim
