#include "core/convergence.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace airfedga::core {

void ConvergenceConfig::validate() const {
  if (mu <= 0.0 || smooth_l <= 0.0) throw std::invalid_argument("ConvergenceConfig: mu, L > 0");
  if (mu > smooth_l) throw std::invalid_argument("ConvergenceConfig: mu must be <= L");
  if (gamma <= 1.0 / (2.0 * smooth_l) || gamma >= 1.0 / smooth_l)
    throw std::invalid_argument("ConvergenceConfig: gamma must lie in (1/(2L), 1/L)");
  if (grad_bound_sq <= 0.0 || model_bound_sq <= 0.0)
    throw std::invalid_argument("ConvergenceConfig: bounds must be > 0");
  if (sigma0_sq < 0.0) throw std::invalid_argument("ConvergenceConfig: sigma0_sq >= 0");
  if (initial_gap <= 0.0 || epsilon <= 0.0)
    throw std::invalid_argument("ConvergenceConfig: gaps must be > 0");
}

double aggregation_error(double sigma, double eta, double model_bound_sq, double sigma0_sq,
                         double group_data) {
  if (sigma <= 0.0 || eta <= 0.0) throw std::invalid_argument("aggregation_error: sigma, eta > 0");
  if (group_data <= 0.0) throw std::invalid_argument("aggregation_error: group_data > 0");
  const double bias = sigma / std::sqrt(eta) - 1.0;
  return bias * bias * model_bound_sq + sigma0_sq / (group_data * group_data * eta);
}

std::vector<double> participation_frequencies(std::span<const double> group_times) {
  if (group_times.empty()) throw std::invalid_argument("participation_frequencies: no groups");
  std::vector<double> psi(group_times.size());
  double total = 0.0;
  for (std::size_t j = 0; j < group_times.size(); ++j) {
    if (group_times[j] <= 0.0)
      throw std::invalid_argument("participation_frequencies: non-positive round time");
    psi[j] = 1.0 / group_times[j];
    total += psi[j];
  }
  for (auto& p : psi) p /= total;
  return psi;
}

double average_round_time(std::span<const double> group_times) {
  if (group_times.empty()) throw std::invalid_argument("average_round_time: no groups");
  double inv_sum = 0.0;
  for (double lj : group_times) {
    if (lj <= 0.0) throw std::invalid_argument("average_round_time: non-positive round time");
    inv_sum += 1.0 / lj;
  }
  return 1.0 / inv_sum;
}

double estimated_max_staleness(std::span<const double> group_times) {
  if (group_times.empty()) throw std::invalid_argument("estimated_max_staleness: no groups");
  double inv_sum = 0.0;
  double lmax = 0.0;
  for (double lj : group_times) {
    if (lj <= 0.0) throw std::invalid_argument("estimated_max_staleness: non-positive round time");
    inv_sum += 1.0 / lj;
    lmax = std::max(lmax, lj);
  }
  return lmax * inv_sum;
}

double lemma1_rho(double x, double y, double tau_max) {
  if (x < 0.0 || y < 0.0 || x + y >= 1.0)
    throw std::invalid_argument("lemma1_rho: need x, y >= 0 and x + y < 1");
  if (tau_max < 0.0) throw std::invalid_argument("lemma1_rho: tau_max >= 0");
  return std::pow(x + y, 1.0 / (1.0 + tau_max));
}

double lemma1_delta(double x, double y, double z) {
  if (x < 0.0 || y < 0.0 || x + y >= 1.0 || z < 0.0)
    throw std::invalid_argument("lemma1_delta: need x, y, z >= 0 and x + y < 1");
  return z / (1.0 - x - y);
}

namespace {
double psi_beta_sum(std::span<const GroupPlan> groups) {
  std::vector<double> times(groups.size());
  for (std::size_t j = 0; j < groups.size(); ++j) times[j] = groups[j].round_time;
  const auto psi = participation_frequencies(times);
  double s = 0.0;
  for (std::size_t j = 0; j < groups.size(); ++j) s += psi[j] * groups[j].beta;
  return s;
}
}  // namespace

double contraction_base(const ConvergenceConfig& cfg, std::span<const GroupPlan> groups) {
  cfg.validate();
  if (groups.empty()) throw std::invalid_argument("contraction_base: no groups");
  const double coeff = 2.0 * cfg.mu * cfg.gamma - cfg.mu / cfg.smooth_l;
  return 1.0 - coeff * psi_beta_sum(groups);
}

double convergence_rho(const ConvergenceConfig& cfg, std::span<const GroupPlan> groups,
                       double tau_max) {
  const double b = contraction_base(cfg, groups);
  if (b <= 0.0 || b >= 1.0)
    throw std::domain_error("convergence_rho: contraction base outside (0,1)");
  return std::pow(b, 1.0 / (1.0 + tau_max));
}

double residual_delta(const ConvergenceConfig& cfg, std::span<const GroupPlan> groups,
                      double max_aggregation_error) {
  cfg.validate();
  if (groups.empty()) throw std::invalid_argument("residual_delta: no groups");
  std::vector<double> times(groups.size());
  for (std::size_t j = 0; j < groups.size(); ++j) times[j] = groups[j].round_time;
  const auto psi = participation_frequencies(times);

  double numer = 0.0;
  double denom_sum = 0.0;
  for (std::size_t j = 0; j < groups.size(); ++j) {
    const double lambda_sq = groups[j].emd * groups[j].emd;
    numer += psi[j] * groups[j].beta *
             (cfg.gamma * cfg.smooth_l * lambda_sq * cfg.grad_bound_sq +
              cfg.smooth_l * cfg.smooth_l * max_aggregation_error);
    denom_sum += psi[j] * groups[j].beta;
  }
  const double denom = (2.0 * cfg.mu * cfg.gamma * cfg.smooth_l - cfg.mu) * denom_sum;
  if (denom <= 0.0) throw std::domain_error("residual_delta: non-positive denominator");
  return numer / denom;
}

double rounds_to_converge(const ConvergenceConfig& cfg, std::span<const GroupPlan> groups,
                          double tau_max, double max_aggregation_error) {
  const double delta = residual_delta(cfg, groups, max_aggregation_error);
  if (delta >= cfg.epsilon) return std::numeric_limits<double>::infinity();
  double a = (cfg.epsilon - delta) / cfg.initial_gap;
  // A >= 1 means the bound is already satisfied at t=0; one round suffices.
  if (a >= 1.0) return 1.0;
  const double b = contraction_base(cfg, groups);
  if (b <= 0.0 || b >= 1.0)
    throw std::domain_error("rounds_to_converge: contraction base outside (0,1)");
  // log_B A with A, B in (0,1) is positive.
  return (1.0 + tau_max) * std::log(a) / std::log(b);
}

double training_time_objective(const ConvergenceConfig& cfg, std::span<const GroupPlan> groups,
                               double max_aggregation_error) {
  std::vector<double> times(groups.size());
  for (std::size_t j = 0; j < groups.size(); ++j) times[j] = groups[j].round_time;
  const double avg = average_round_time(times);
  const double tau_hat = estimated_max_staleness(times);
  // Eq. (40a) with T from Eq. (38); tau_hat replaces tau_max per Eq. (39).
  const double rounds = rounds_to_converge(cfg, groups, tau_hat, max_aggregation_error);
  if (!std::isfinite(rounds)) return std::numeric_limits<double>::infinity();
  return avg * rounds;
}

}  // namespace airfedga::core
