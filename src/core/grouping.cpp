#include "core/grouping.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/power_control.hpp"

namespace airfedga::core {

namespace {

/// Planning estimate of the aggregation error C_j for one group, using the
/// expected channel gain for every member (actual per-round gains are not
/// known at grouping time).
double planned_group_error(const std::vector<std::size_t>& group, const data::DataStats& stats,
                           const GroupingConfig& cfg) {
  PowerControlInput in;
  in.model_bound_sq = cfg.convergence.model_bound_sq;
  in.sigma0_sq = cfg.convergence.sigma0_sq;
  in.group_data = static_cast<double>(stats.group_size(group));
  for (auto w : group) {
    in.gains.push_back(cfg.planning_gain);
    in.data_sizes.push_back(static_cast<double>(stats.worker_size(w)));
    in.energy_caps.push_back(cfg.energy_cap);
  }
  return optimize_power(in).error;
}

double group_round_time(const std::vector<std::size_t>& group,
                        const std::vector<double>& local_times, double upload_seconds) {
  double lmax = 0.0;
  for (auto w : group) lmax = std::max(lmax, local_times.at(w));
  return lmax + upload_seconds;  // Eq. (34)
}

/// Constraint (36d): for every member, L_j - L_u - l_i <= xi * Delta_l,
/// which reduces to (intra-group time spread) <= xi * Delta_l.
bool satisfies_time_constraint(const std::vector<std::size_t>& group,
                               const std::vector<double>& local_times, double xi,
                               double global_spread) {
  double lmax = 0.0, lmin = std::numeric_limits<double>::infinity();
  for (auto w : group) {
    lmax = std::max(lmax, local_times.at(w));
    lmin = std::min(lmin, local_times.at(w));
  }
  return lmax - lmin <= xi * global_spread + 1e-12;
}

struct Candidate {
  double objective = std::numeric_limits<double>::infinity();
  double residual = std::numeric_limits<double>::infinity();
  double round_time = std::numeric_limits<double>::infinity();

  /// Lexicographic order: finite objective first, then residual, then time.
  [[nodiscard]] bool better_than(const Candidate& other) const {
    const bool fin_a = std::isfinite(objective);
    const bool fin_b = std::isfinite(other.objective);
    if (fin_a != fin_b) return fin_a;
    if (fin_a && objective != other.objective) return objective < other.objective;
    if (residual != other.residual) return residual < other.residual;
    return round_time < other.round_time;
  }
};

Candidate evaluate_candidate(const data::WorkerGroups& groups, const data::DataStats& stats,
                             const std::vector<double>& local_times, const GroupingConfig& cfg) {
  std::vector<GroupPlan> plans(groups.size());
  double max_error = 0.0;
  std::vector<double> times(groups.size());
  for (std::size_t j = 0; j < groups.size(); ++j) {
    plans[j].round_time = group_round_time(groups[j], local_times, cfg.aircomp_upload_seconds);
    plans[j].beta = stats.beta(groups[j]);
    plans[j].emd = stats.emd(groups[j]);
    times[j] = plans[j].round_time;
    max_error = std::max(max_error, planned_group_error(groups[j], stats, cfg));
  }
  Candidate c;
  c.objective = training_time_objective(cfg.convergence, plans, max_error);
  c.residual = residual_delta(cfg.convergence, plans, max_error);
  c.round_time = average_round_time(times);
  return c;
}

/// Local-search refinement shared by both starting points of Alg. 3:
/// (i) first-improvement relocation of single workers, (ii) dissolution
/// of whole groups, (iii) pairwise swaps. Every accepted change strictly
/// improves the lexicographic candidate order (objective, residual,
/// round time) while preserving constraint (36d).
void refine_groups(data::WorkerGroups& groups, const data::DataStats& stats,
                   const std::vector<double>& local_times, const GroupingConfig& cfg,
                   double spread) {
  for (std::size_t pass = 0; pass < cfg.refine_passes; ++pass) {
    bool improved = false;
    Candidate current = evaluate_candidate(groups, stats, local_times, cfg);
    for (std::size_t src = 0; src < groups.size(); ++src) {
      std::size_t wi = 0;
      while (wi < groups[src].size() && groups[src].size() > 1) {
        const std::size_t worker = groups[src][wi];
        bool moved_out = false;
        for (std::size_t dst = 0; dst < groups.size() && !moved_out; ++dst) {
          if (dst == src) continue;
          groups[src].erase(groups[src].begin() + static_cast<std::ptrdiff_t>(wi));
          groups[dst].push_back(worker);
          if (satisfies_time_constraint(groups[dst], local_times, cfg.xi, spread)) {
            const Candidate cand = evaluate_candidate(groups, stats, local_times, cfg);
            if (cand.better_than(current)) {
              current = cand;
              improved = true;
              moved_out = true;
              continue;  // keep the move; position wi now holds the next member
            }
          }
          // Undo the move.
          groups[dst].pop_back();
          groups[src].insert(groups[src].begin() + static_cast<std::ptrdiff_t>(wi), worker);
        }
        if (!moved_out) ++wi;
      }
    }

    // Dissolution pass: a stranded small group keeps maxC high (its D_j is
    // small, Eq. 30) and single-worker moves cannot empty it because each
    // departure makes it smaller and thus worse. Try redistributing an
    // entire group and keep the change when the plan improves.
    for (std::size_t victim = 0; victim < groups.size(); ++victim) {
      if (groups.size() <= 1) break;
      data::WorkerGroups trial;
      trial.reserve(groups.size() - 1);
      for (std::size_t j = 0; j < groups.size(); ++j)
        if (j != victim) trial.push_back(groups[j]);
      bool placed_all = true;
      for (auto worker : groups[victim]) {
        std::size_t best_dst = trial.size();
        Candidate best_cand;
        for (std::size_t dst = 0; dst < trial.size(); ++dst) {
          trial[dst].push_back(worker);
          if (satisfies_time_constraint(trial[dst], local_times, cfg.xi, spread)) {
            const Candidate cand = evaluate_candidate(trial, stats, local_times, cfg);
            if (best_dst == trial.size() || cand.better_than(best_cand)) {
              best_cand = cand;
              best_dst = dst;
            }
          }
          trial[dst].pop_back();
        }
        if (best_dst == trial.size()) {
          placed_all = false;
          break;
        }
        trial[best_dst].push_back(worker);
      }
      if (placed_all) {
        const Candidate cand = evaluate_candidate(trial, stats, local_times, cfg);
        if (cand.better_than(current)) {
          groups = std::move(trial);
          current = cand;
          improved = true;
          victim = static_cast<std::size_t>(-1);  // restart scan over new groups
        }
      }
    }

    // Swap pass: exchanging two workers rebalances classes across groups
    // in situations where no single relocation fits the time windows.
    for (std::size_t ga = 0; ga < groups.size(); ++ga) {
      for (std::size_t gb = ga + 1; gb < groups.size(); ++gb) {
        for (std::size_t ia = 0; ia < groups[ga].size(); ++ia) {
          for (std::size_t ib = 0; ib < groups[gb].size(); ++ib) {
            std::swap(groups[ga][ia], groups[gb][ib]);
            const bool ok =
                satisfies_time_constraint(groups[ga], local_times, cfg.xi, spread) &&
                satisfies_time_constraint(groups[gb], local_times, cfg.xi, spread);
            if (ok) {
              const Candidate cand = evaluate_candidate(groups, stats, local_times, cfg);
              if (cand.better_than(current)) {
                current = cand;
                improved = true;
                continue;  // keep the swap
              }
            }
            std::swap(groups[ga][ia], groups[gb][ib]);  // undo
          }
        }
      }
    }
    if (!improved) break;
  }
}

}  // namespace

GroupingResult evaluate_grouping(const data::WorkerGroups& groups, const data::DataStats& stats,
                                 const std::vector<double>& local_times,
                                 const GroupingConfig& cfg) {
  if (groups.empty()) throw std::invalid_argument("evaluate_grouping: no groups");
  const Candidate c = evaluate_candidate(groups, stats, local_times, cfg);
  GroupingResult res;
  res.groups = groups;
  res.group_times.resize(groups.size());
  for (std::size_t j = 0; j < groups.size(); ++j)
    res.group_times[j] = group_round_time(groups[j], local_times, cfg.aircomp_upload_seconds);
  res.objective = c.objective;
  res.residual = c.residual;
  res.mean_emd = stats.mean_emd(groups);
  return res;
}

GroupingResult airfedga_grouping(const data::DataStats& stats,
                                 const std::vector<double>& local_times,
                                 const GroupingConfig& cfg) {
  const std::size_t n = stats.num_workers();
  if (local_times.size() != n)
    throw std::invalid_argument("airfedga_grouping: local_times size mismatch");
  if (cfg.xi < 0.0) throw std::invalid_argument("airfedga_grouping: xi must be >= 0");
  cfg.convergence.validate();

  const double lmax = *std::max_element(local_times.begin(), local_times.end());
  const double lmin = *std::min_element(local_times.begin(), local_times.end());
  const double spread = lmax - lmin;  // Delta_l

  // Alg. 3 line 3: visit workers in descending data-size order. The sort
  // key leaves ties unordered, and under label skew all workers have equal
  // size — so we break ties by interleaving dominant classes (k-th worker
  // of class 0, k-th of class 1, ...). Greedy accretion then always has a
  // class-diverse pool of open groups to extend, which is what lets the
  // algorithm reach the paper's low inter-group EMD (Table III).
  std::vector<std::size_t> occurrence(n);
  {
    std::vector<std::size_t> seen_of_class(stats.num_classes(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t dominant = 0;
      for (std::size_t k = 1; k < stats.num_classes(); ++k)
        if (stats.worker_class_size(i, k) > stats.worker_class_size(i, dominant)) dominant = k;
      occurrence[i] = seen_of_class[dominant]++;
    }
  }
  std::vector<std::size_t> queue(n);
  std::iota(queue.begin(), queue.end(), std::size_t{0});
  std::stable_sort(queue.begin(), queue.end(), [&](std::size_t a, std::size_t b) {
    if (stats.worker_size(a) != stats.worker_size(b))
      return stats.worker_size(a) > stats.worker_size(b);
    return occurrence[a] < occurrence[b];
  });

  data::WorkerGroups groups;
  for (auto worker : queue) {
    Candidate best;
    std::size_t best_group = groups.size();  // index == groups.size() means "new group"
    bool found = false;

    // Try joining each existing group.
    for (std::size_t j = 0; j < groups.size(); ++j) {
      groups[j].push_back(worker);
      if (satisfies_time_constraint(groups[j], local_times, cfg.xi, spread)) {
        const Candidate c = evaluate_candidate(groups, stats, local_times, cfg);
        if (!found || c.better_than(best)) {
          best = c;
          best_group = j;
          found = true;
        }
      }
      groups[j].pop_back();
    }
    // Try opening a new group (always satisfies 36d for a singleton).
    groups.push_back({worker});
    const Candidate c = evaluate_candidate(groups, stats, local_times, cfg);
    groups.pop_back();
    if (!found || c.better_than(best)) {
      best = c;
      best_group = groups.size();
      found = true;
    }

    if (best_group == groups.size()) {
      groups.push_back({worker});
    } else {
      groups[best_group].push_back(worker);
    }
  }

  refine_groups(groups, stats, local_times, cfg, spread);

  // The greedy fixes the number of groups M organically; quantile tiers of
  // the same M are a second, size-balanced starting point (small groups
  // are penalized by the 1/D_j^2 term of Eq. 30, and the time windows that
  // satisfy (36d) naturally sit at population quantiles). Refine both and
  // keep whichever wins the planning order.
  if (groups.size() > 1 && groups.size() < n) {
    data::WorkerGroups tiered = tifl_grouping(local_times, groups.size());
    refine_groups(tiered, stats, local_times, cfg, spread);
    // Quantile tiers are only a valid alternative when every tier happens
    // to satisfy constraint (36d) — it is not guaranteed by construction.
    bool feasible = true;
    for (const auto& g : tiered)
      feasible = feasible && satisfies_time_constraint(g, local_times, cfg.xi, spread);
    if (feasible) {
      const Candidate greedy_cand = evaluate_candidate(groups, stats, local_times, cfg);
      const Candidate tiered_cand = evaluate_candidate(tiered, stats, local_times, cfg);
      if (tiered_cand.better_than(greedy_cand)) groups = std::move(tiered);
    }
  }

  data::validate_groups(groups, n);
  return evaluate_grouping(groups, stats, local_times, cfg);
}

data::WorkerGroups tifl_grouping(const std::vector<double>& local_times,
                                 std::size_t num_groups) {
  const std::size_t n = local_times.size();
  if (n == 0) throw std::invalid_argument("tifl_grouping: no workers");
  if (num_groups == 0 || num_groups > n)
    throw std::invalid_argument("tifl_grouping: bad group count");
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return local_times[a] < local_times[b]; });
  data::WorkerGroups groups(num_groups);
  // Near-equal contiguous tiers over the sorted response times.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t tier = i * num_groups / n;
    groups[tier].push_back(order[i]);
  }
  return groups;
}

data::WorkerGroups random_grouping(std::size_t num_workers, std::size_t num_groups,
                                   util::Rng& rng) {
  if (num_groups == 0 || num_groups > num_workers)
    throw std::invalid_argument("random_grouping: bad group count");
  auto perm = rng.permutation(num_workers);
  data::WorkerGroups groups(num_groups);
  for (std::size_t i = 0; i < num_workers; ++i) groups[i % num_groups].push_back(perm[i]);
  return groups;
}

}  // namespace airfedga::core
