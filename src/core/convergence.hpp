#pragma once

#include <span>
#include <vector>

namespace airfedga::core {

/// Constants of the convergence analysis (Assumptions 1-4 and Theorem 1).
///
/// These are *estimates* of problem-dependent quantities: the smoothness L
/// and strong convexity mu of the loss, the learning rate gamma (which must
/// lie in (1/(2L), 1/L) for Theorem 1), the gradient bound G^2, the model
/// norm bound W_t^2, the initial optimality gap F(w0) - F(w*), and the
/// target gap epsilon in constraint (36b). They enter the *planning*
/// objective (Eq. 40a) only through log_B A, so grouping decisions are
/// robust to moderate estimation error (tested in grouping_test.cpp).
struct ConvergenceConfig {
  double mu = 0.2;
  double smooth_l = 1.0;
  double gamma = 0.9;
  double grad_bound_sq = 1.0;    ///< G^2 (per-class gradient bound, normalized loss)
  double model_bound_sq = 600.0; ///< W_t^2
  double sigma0_sq = 1.0;
  double initial_gap = 2.0;      ///< F(w0) - F(w*) (ln 10 - plateau, for 10 classes)
  double epsilon = 0.5;

  /// Throws std::invalid_argument when gamma is outside (1/(2L), 1/L) or
  /// any constant is non-positive.
  void validate() const;
};

/// Aggregation-error proxy C_t (Eq. 30):
///   C = (sigma/sqrt(eta) - 1)^2 * W^2 + sigma0^2 / (D_j^2 * eta).
double aggregation_error(double sigma, double eta, double model_bound_sq, double sigma0_sq,
                         double group_data);

/// Relative participation frequencies psi_j proportional to 1/L_j
/// (a group re-enters aggregation as soon as it finishes a round, so its
/// update rate is its inverse round time). Normalized to sum to 1.
std::vector<double> participation_frequencies(std::span<const double> group_times);

/// Average duration of one asynchronous global round (Eq. 35):
///   L = 1 / sum_j (1/L_j).
double average_round_time(std::span<const double> group_times);

/// Staleness-bound estimate (Eq. 39): tau_hat = max_j L_j * sum_j 1/L_j.
double estimated_max_staleness(std::span<const double> group_times);

/// Lemma 1: given Q(t) <= x Q(t-1) + y Q(l_t) + z with x + y < 1 and
/// staleness at most tau_max, Q(t) <= rho^t Q(0) + delta with
/// rho = (x+y)^{1/(1+tau_max)} and delta = z / (1 - x - y).
double lemma1_rho(double x, double y, double tau_max);
double lemma1_delta(double x, double y, double z);

/// Theorem 1 quantities for a concrete grouping.
struct GroupPlan {
  double round_time = 0.0;  ///< L_j (Eq. 34)
  double beta = 0.0;        ///< beta_j
  double emd = 0.0;         ///< Lambda_j (Eq. 11)
};

/// B = 1 - (2 mu gamma - mu/L) * sum_j psi_j beta_j; the contraction base
/// of Theorem 1 before the staleness exponent.
double contraction_base(const ConvergenceConfig& cfg, std::span<const GroupPlan> groups);

/// rho = B^{1/(1+tau_max)} (Theorem 1).
double convergence_rho(const ConvergenceConfig& cfg, std::span<const GroupPlan> groups,
                       double tau_max);

/// Residual error delta of Theorem 1 given the worst-round aggregation
/// error max_t C_t.
double residual_delta(const ConvergenceConfig& cfg, std::span<const GroupPlan> groups,
                      double max_aggregation_error);

/// Lower bound on the number of rounds to reach the epsilon gap (Eq. 38):
///   T >= (1 + tau_max) * log_B A,  A = (eps - delta) / initial_gap.
/// Returns +inf when delta >= eps (the target gap is unreachable).
double rounds_to_converge(const ConvergenceConfig& cfg, std::span<const GroupPlan> groups,
                          double tau_max, double max_aggregation_error);

/// Full planning objective (Eq. 40a): average round time * rounds bound.
/// This is what Alg. 3 greedily minimizes.
double training_time_objective(const ConvergenceConfig& cfg, std::span<const GroupPlan> groups,
                               double max_aggregation_error);

}  // namespace airfedga::core
