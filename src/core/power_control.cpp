#include "core/power_control.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/convergence.hpp"

namespace airfedga::core {

namespace {
void check_input(const PowerControlInput& in) {
  if (in.model_bound_sq <= 0.0) throw std::invalid_argument("power control: W^2 must be > 0");
  if (in.sigma0_sq < 0.0) throw std::invalid_argument("power control: sigma0^2 must be >= 0");
  if (in.group_data <= 0.0) throw std::invalid_argument("power control: D_jt must be > 0");
  const std::size_t m = in.gains.size();
  if (m == 0) throw std::invalid_argument("power control: empty group");
  if (in.data_sizes.size() != m || in.energy_caps.size() != m)
    throw std::invalid_argument("power control: member array size mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    if (in.gains[i] <= 0.0) throw std::invalid_argument("power control: gains must be > 0");
    if (in.data_sizes[i] <= 0.0) throw std::invalid_argument("power control: d_i must be > 0");
    if (in.energy_caps[i] <= 0.0) throw std::invalid_argument("power control: E_i must be > 0");
  }
  if (in.tolerance <= 0.0) throw std::invalid_argument("power control: tolerance must be > 0");
  if (in.max_iterations < 1) throw std::invalid_argument("power control: max_iterations >= 1");
}

/// Eq. (44): optimal eta for fixed sigma.
double optimal_eta(double sigma, double w_sq, double sigma0_sq, double d_j) {
  const double numer = sigma * sigma * w_sq + sigma0_sq / (d_j * d_j);
  const double denom = sigma * w_sq;
  const double root = numer / denom;
  return root * root;
}
}  // namespace

double sigma_energy_bound(const PowerControlInput& in) {
  const double w = std::sqrt(in.model_bound_sq);
  double bound = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < in.gains.size(); ++i)
    bound = std::min(bound, in.gains[i] * std::sqrt(in.energy_caps[i]) / (in.data_sizes[i] * w));
  return bound;
}

PowerControlResult optimize_power(const PowerControlInput& in) {
  check_input(in);
  const double cap = sigma_energy_bound(in);

  PowerControlResult res;
  // Start from the energy bound: always feasible, and for a noiseless
  // channel already optimal.
  double sigma = cap;
  double eta = optimal_eta(sigma, in.model_bound_sq, in.sigma0_sq, in.group_data);

  for (int it = 1; it <= in.max_iterations; ++it) {
    const double prev_sigma = sigma;
    const double prev_eta = eta;

    // Alg. 2 line 3: eta update (closed form, Eq. 44).
    eta = optimal_eta(sigma, in.model_bound_sq, in.sigma0_sq, in.group_data);
    // Alg. 2 line 4: sigma update (Eq. 47).
    sigma = std::min(std::sqrt(eta), cap);

    res.iterations = it;
    const double ds = std::abs(sigma - prev_sigma) / std::max(prev_sigma, 1e-300);
    const double de = std::abs(eta - prev_eta) / std::max(prev_eta, 1e-300);
    if (ds <= in.tolerance && de <= in.tolerance) {
      res.converged = true;
      break;
    }
  }

  res.sigma = sigma;
  res.eta = eta;
  res.error = aggregation_error(sigma, eta, in.model_bound_sq, in.sigma0_sq, in.group_data);
  return res;
}

}  // namespace airfedga::core
