#pragma once

#include <vector>

namespace airfedga::core {

/// Inputs of the per-round power-control problem P3 (paper §V-B) for the
/// group V_jt that is about to aggregate.
struct PowerControlInput {
  double model_bound_sq = 1.0;  ///< W_t^2 (max squared norm over member models)
  double sigma0_sq = 1.0;       ///< AWGN energy
  double group_data = 1.0;      ///< D_jt
  std::vector<double> gains;       ///< h^i_t, per member
  std::vector<double> data_sizes;  ///< d_i, per member
  std::vector<double> energy_caps; ///< \hat{E}_i, per member
  double tolerance = 1e-9;      ///< theta in Alg. 2 (relative change)
  int max_iterations = 200;
};

struct PowerControlResult {
  double sigma = 0.0;  ///< power scaling factor sigma_t^*
  double eta = 0.0;    ///< denoising factor eta_t^*
  double error = 0.0;  ///< C_t at the optimum (Eq. 30)
  int iterations = 0;
  bool converged = false;
};

/// Alg. 2: alternating optimization of (sigma_t, eta_t).
///
/// Fixing sigma, the optimal denoising factor has the closed form (Eq. 44)
///   eta = ((sigma^2 W^2 + sigma0^2/D^2) / (sigma W^2))^2,
/// and fixing eta, C_t is minimized at sigma = sqrt(eta) clipped to the
/// per-worker energy feasibility bound sigma <= h_i sqrt(E_i) / (d_i W)
/// (Eqs. 46-47). Both subproblems are exact minimizers of a convex
/// function, so the alternation converges monotonically; in fact the
/// closed-form composition reaches the fixed point in a handful of
/// iterations (tested).
PowerControlResult optimize_power(const PowerControlInput& in);

/// The energy-feasibility upper bound on sigma (right-hand set of Eq. 47):
/// min_i h_i sqrt(E_i) / (d_i W).
double sigma_energy_bound(const PowerControlInput& in);

}  // namespace airfedga::core
