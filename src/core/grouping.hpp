#pragma once

#include <vector>

#include "core/convergence.hpp"
#include "data/data_stats.hpp"
#include "util/rng.hpp"

namespace airfedga::core {

/// Planning-time parameters of the worker grouping problem P4 (§V-C).
struct GroupingConfig {
  /// xi in constraint (36d): within a group, the spread of local training
  /// times may not exceed xi * (max_i l_i - min_i l_i). Paper default 0.3.
  double xi = 0.3;

  /// L_u, the AirComp upload time added to every group round (Eq. 34).
  double aircomp_upload_seconds = 0.01;

  /// Channel statistics used for planning the per-group aggregation error
  /// C_j before any round is run: the expected gain E[h] and the per-round
  /// energy budget (assumed common across workers, as in §VI-A2).
  double planning_gain = 1.0;
  double energy_cap = 10.0;

  /// Local-search passes run after the greedy (0 disables): single-worker
  /// moves between (36d)-compatible groups that improve the objective.
  /// The pure greedy bottoms out at the multinomial sampling noise of the
  /// per-window class mix; the refinement is what reaches the near-IID
  /// inter-group EMD the paper reports in Table III.
  std::size_t refine_passes = 3;

  ConvergenceConfig convergence;
};

/// A grouping decision plus the planning quantities behind it.
struct GroupingResult {
  data::WorkerGroups groups;
  std::vector<double> group_times;   ///< L_j (Eq. 34)
  double objective = 0.0;            ///< Eq. (40a); +inf if bound infeasible
  double residual = 0.0;             ///< delta at this grouping
  double mean_emd = 0.0;             ///< Table III metric
};

/// Evaluates the P4 objective for an explicit grouping. Exposed for tests
/// and for the grouping-ablation benchmark.
GroupingResult evaluate_grouping(const data::WorkerGroups& groups, const data::DataStats& stats,
                                 const std::vector<double>& local_times,
                                 const GroupingConfig& cfg);

/// Alg. 3: greedy worker grouping for Air-FedGA. Workers are visited in
/// descending data-size order; each is placed into the existing (or a new)
/// group that minimizes the objective subject to constraint (36d).
///
/// Tie-breaking beyond the paper: while few workers are assigned, every
/// candidate grouping can have delta >= epsilon (unreachable bound, i.e.
/// objective = +inf). Candidates are then compared by (delta, L) instead,
/// which preserves the algorithm's intent — drive the inter-group data
/// distribution towards IID first, round time second.
GroupingResult airfedga_grouping(const data::DataStats& stats,
                                 const std::vector<double>& local_times,
                                 const GroupingConfig& cfg);

/// TiFL-style baseline [26]: tiers are quantiles of the response time only;
/// data distribution is ignored. `num_groups` tiers of near-equal size.
data::WorkerGroups tifl_grouping(const std::vector<double>& local_times,
                                 std::size_t num_groups);

/// Uniformly random grouping baseline.
data::WorkerGroups random_grouping(std::size_t num_workers, std::size_t num_groups,
                                   util::Rng& rng);

}  // namespace airfedga::core
