#pragma once

#include <span>
#include <string>
#include <vector>

#include "ml/tensor.hpp"
#include "util/rng.hpp"

namespace airfedga::ml {

/// View over one learnable parameter block and its gradient accumulator.
struct ParamView {
  std::span<float> value;
  std::span<float> grad;
};

/// Base class for all layers.
///
/// Layers own their output and input-gradient buffers and return them by
/// reference from forward/backward: the buffers are resized in place
/// (capacity reused) every call, so steady-state training allocates
/// nothing. A layer instance therefore serves one in-flight (forward,
/// backward) pair at a time, which matches the sequential training loop
/// used by the federated workers (each mechanism keeps a single scratch
/// model and swaps worker weights in and out as flat vectors).
///
/// Train/eval mode: in training mode (the default) `forward` caches
/// whatever `backward` needs (inputs, masks, argmaxes); in eval mode those
/// caches are skipped entirely, so inference does no gradient bookkeeping
/// and `backward` throws until a training-mode forward runs.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output into an internal buffer and returns it. The
  /// reference is valid until the next forward call on this instance.
  virtual const Tensor& forward(const Tensor& x) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input) (internal buffer, valid until the next backward call).
  /// Must be called after a *training-mode* `forward`.
  virtual const Tensor& backward(const Tensor& grad_out) = 0;

  /// Learnable parameter blocks (empty for stateless layers).
  virtual std::vector<ParamView> params() { return {}; }

  /// Re-draws the initial weights.
  virtual void init(util::Rng&) {}

  /// Switches between training mode (backward caches kept) and eval mode
  /// (no gradient bookkeeping).
  void set_training(bool training) { training_ = training; }
  [[nodiscard]] bool training() const { return training_; }

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  bool training_ = true;
};

}  // namespace airfedga::ml
