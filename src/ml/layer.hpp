#pragma once

#include <span>
#include <string>
#include <vector>

#include "ml/tensor.hpp"
#include "util/rng.hpp"

namespace airfedga::ml {

/// View over one learnable parameter block and its gradient accumulator.
struct ParamView {
  std::span<float> value;
  std::span<float> grad;
};

/// Base class for all layers.
///
/// Layers cache whatever they need from `forward` to compute `backward`;
/// a layer instance therefore serves one in-flight (forward, backward)
/// pair at a time, which matches the sequential training loop used by the
/// federated workers (each mechanism keeps a single scratch model and
/// swaps worker weights in and out as flat vectors).
class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& x) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Must be called after `forward`.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Learnable parameter blocks (empty for stateless layers).
  virtual std::vector<ParamView> params() { return {}; }

  /// Re-draws the initial weights.
  virtual void init(util::Rng&) {}

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace airfedga::ml
