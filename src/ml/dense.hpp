#pragma once

#include "ml/layer.hpp"

namespace airfedga::ml {

/// Fully connected layer: y = x W^T + b with W of shape (out, in).
/// Initialized with He-normal weights (suits the ReLU nets in the paper).
class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::vector<ParamView> params() override;
  void init(util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "Dense"; }

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }

 private:
  std::size_t in_, out_;
  Tensor weight_;       // (out, in)
  Tensor bias_;         // (out)
  Tensor weight_grad_;  // (out, in)
  Tensor bias_grad_;    // (out)
  Tensor input_cache_;  // (batch, in), training mode only
  Tensor y_;            // (batch, out) forward output buffer
  Tensor dx_;           // (batch, in) backward output buffer
};

}  // namespace airfedga::ml
