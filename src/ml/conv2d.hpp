#pragma once

#include "ml/layer.hpp"

namespace airfedga::ml {

/// 2-D convolution over NCHW activations (stride 1, symmetric zero padding),
/// implemented with im2col + GEMM, the standard CPU lowering.
///
/// Kernel tensor shape: (out_channels, in_channels, k, k).
class Conv2D : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t padding = 0);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamView> params() override;
  void init(util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "Conv2D"; }

  [[nodiscard]] std::size_t out_height(std::size_t h) const { return h + 2 * pad_ - k_ + 1; }
  [[nodiscard]] std::size_t out_width(std::size_t w) const { return w + 2 * pad_ - k_ + 1; }

 private:
  /// Lowers one sample to a (C*k*k, OH*OW) patch matrix.
  Tensor im2col(const Tensor& x, std::size_t sample) const;
  /// Scatters a patch-matrix gradient back to input layout.
  void col2im(const Tensor& cols, Tensor& dx, std::size_t sample) const;

  std::size_t cin_, cout_, k_, pad_;
  Tensor weight_;       // (cout, cin*k*k) flattened kernel matrix
  Tensor bias_;         // (cout)
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor input_cache_;  // (N, C, H, W)
};

}  // namespace airfedga::ml
