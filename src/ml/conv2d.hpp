#pragma once

#include "ml/layer.hpp"

namespace airfedga::ml {

/// 2-D convolution over NCHW activations (stride 1, symmetric zero padding),
/// implemented as *batched* im2col + one GEMM per batch: the whole batch is
/// lowered into a single (C*k*k, N*OH*OW) patch matrix in the thread-local
/// workspace arena, so a forward/backward pass costs one large blocked GEMM
/// instead of N small ones and allocates nothing in steady state.
///
/// Kernel tensor shape: (out_channels, in_channels, k, k).
class Conv2D : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t padding = 0);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::vector<ParamView> params() override;
  void init(util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "Conv2D"; }

  [[nodiscard]] std::size_t out_height(std::size_t h) const { return h + 2 * pad_ - k_ + 1; }
  [[nodiscard]] std::size_t out_width(std::size_t w) const { return w + 2 * pad_ - k_ + 1; }

 private:
  /// Lowers samples [s0, s1) to a (C*k*k, (s1-s0)*OH*OW) patch matrix at
  /// `cols` (columns ordered sample-major, then row-major spatial).
  void im2col_batched(const Tensor& x, std::size_t s0, std::size_t s1, float* cols) const;
  /// Scatters a patch-matrix gradient for samples [s0, s1) back onto `dx`
  /// (+=).
  void col2im_batched(const float* cols, std::size_t s0, std::size_t s1, Tensor& dx) const;

  std::size_t cin_, cout_, k_, pad_;
  Tensor weight_;       // (cout, cin*k*k) flattened kernel matrix
  Tensor bias_;         // (cout)
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor input_cache_;  // (N, C, H, W), training mode only
  Tensor out_;          // (N, cout, OH, OW) forward output buffer
  Tensor dx_;           // (N, C, H, W) backward output buffer
};

}  // namespace airfedga::ml
