#include "ml/dense.hpp"

#include <cmath>
#include <stdexcept>

namespace airfedga::ml {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      weight_grad_({out_features, in_features}),
      bias_grad_({out_features}) {
  if (in_features == 0 || out_features == 0)
    throw std::invalid_argument("Dense: zero-sized layer");
}

void Dense::init(util::Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_));
  for (auto& v : weight_.data()) v = static_cast<float>(rng.normal(0.0, stddev));
  bias_.fill(0.0f);
}

const Tensor& Dense::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_)
    throw std::invalid_argument("Dense::forward: bad input shape " + x.shape_string());
  if (training_) input_cache_ = x;
  matmul_nt_into(y_, x, weight_);  // (B, out)
  const std::size_t batch = y_.dim(0);
  const float* pb = bias_.data().data();
  for (std::size_t i = 0; i < batch; ++i) {
    float* row = &y_.at2(i, 0);
    for (std::size_t j = 0; j < out_; ++j) row[j] += pb[j];
  }
  return y_;
}

const Tensor& Dense::backward(const Tensor& grad_out) {
  if (grad_out.rank() != 2 || grad_out.dim(1) != out_)
    throw std::invalid_argument("Dense::backward: bad gradient shape");
  if (!training_ || input_cache_.size() == 0 || input_cache_.dim(0) != grad_out.dim(0))
    throw std::logic_error("Dense::backward: requires a training-mode forward");
  // dW += dy^T x ; db += column sums of dy ; dx = dy W
  matmul_tn_into(weight_grad_, grad_out, input_cache_, /*accumulate=*/true);  // (out, in)
  const std::size_t batch = grad_out.dim(0);
  float* pbg = bias_grad_.data().data();
  for (std::size_t i = 0; i < batch; ++i)
    for (std::size_t j = 0; j < out_; ++j) pbg[j] += grad_out.at2(i, j);
  matmul_into(dx_, grad_out, weight_);  // (B, in)
  return dx_;
}

std::vector<ParamView> Dense::params() {
  return {{weight_.data(), weight_grad_.data()}, {bias_.data(), bias_grad_.data()}};
}

}  // namespace airfedga::ml
