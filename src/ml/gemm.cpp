#include "ml/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>

#include "ml/workspace.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace airfedga::ml {
namespace {

// BLIS-style blocking: an (mc x nc) output tile is produced per task; for
// each KC depth slice the operands are packed into contiguous panels and an
// MR x NR register tile accumulates over the slice. MC*KC floats of packed
// A (~64 KiB) target L2, the NR-wide B micro-panels stream through L1.
// MR=4 x NR=32 keeps the accumulator at 128 floats — 8 vector registers at
// 512-bit, 16 at 256-bit — which auto-vectorizes cleanly at every x86
// vector width (measured: narrower NR collapses under AVX-512 codegen).
constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 32;
constexpr std::size_t kMC = 64;
constexpr std::size_t kKC = 256;
constexpr std::size_t kNC = 256;

// Function multi-versioning for the hot kernel: the default clone matches
// the build's baseline ISA; the avx2/avx512f clones unlock FMA + wider
// vectors where the hardware has them, selected once at load time via
// ifunc. Per-element accumulation order is identical in every clone; only
// FMA rounding differs, so results are deterministic on a given machine
// (and lane-count-independent everywhere) but may differ across ISAs —
// same status as changing compilers (see docs/ARCHITECTURE.md).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define AIRFEDGA_NO_KERNEL_CLONES 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define AIRFEDGA_NO_KERNEL_CLONES 1
#endif
#endif
#if defined(__x86_64__) && defined(__linux__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(AIRFEDGA_NO_KERNEL_CLONES)
#define AIRFEDGA_KERNEL_CLONES __attribute__((target_clones("default", "avx2", "avx512f")))
#else
#define AIRFEDGA_KERNEL_CLONES
#endif

// Flop target per parallel_for chunk: dispatch costs microseconds, so a
// chunk must carry at least ~milliseconds of arithmetic to be worth it.
constexpr std::size_t kMinFlopsPerTask = std::size_t{1} << 21;

// A GEMM is worth a trace span only above this flop count (~1 Mflop, a
// few hundred microseconds on one lane); smaller calls stay invisible so
// the ring buffers hold the history that matters.
constexpr std::size_t kGemmTraceMinFlops = std::size_t{1} << 20;

std::atomic<std::size_t> g_coop_min_flops{std::size_t{1} << 23};

constexpr GemmBlocking kBlocking{kMC, kKC, kNC, kMR, kNR};

inline std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

inline float load_a(Trans ta, const float* a, std::size_t lda, std::size_t i, std::size_t p) {
  return ta == Trans::N ? a[i * lda + p] : a[p * lda + i];
}
inline float load_b(Trans tb, const float* b, std::size_t ldb, std::size_t p, std::size_t j) {
  return tb == Trans::N ? b[p * ldb + j] : b[j * ldb + p];
}

/// Packs A rows [i0, i0+mc) x depth [p0, p0+kc) into MR-row micro-panels:
/// panel `ir` holds kc groups of MR consecutive-row elements (zero-padded
/// past mc), so the micro-kernel reads A with stride 1.
void pack_a(Trans ta, const float* a, std::size_t lda, std::size_t i0, std::size_t mc,
            std::size_t p0, std::size_t kc, float* ap) {
  const std::size_t mp = ceil_div(mc, kMR);
  for (std::size_t ir = 0; ir < mp; ++ir) {
    float* panel = ap + ir * kc * kMR;
    const std::size_t rows = std::min(kMR, mc - ir * kMR);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t r = 0; r < rows; ++r)
        panel[p * kMR + r] = load_a(ta, a, lda, i0 + ir * kMR + r, p0 + p);
      for (std::size_t r = rows; r < kMR; ++r) panel[p * kMR + r] = 0.0f;
    }
  }
}

/// Packs B depth [p0, p0+kc) x columns [j0, j0+nc) into NR-column
/// micro-panels (zero-padded past nc), stride-1 for the micro-kernel.
void pack_b(Trans tb, const float* b, std::size_t ldb, std::size_t p0, std::size_t kc,
            std::size_t j0, std::size_t nc, float* bp) {
  const std::size_t np = ceil_div(nc, kNR);
  for (std::size_t jr = 0; jr < np; ++jr) {
    float* panel = bp + jr * kc * kNR;
    const std::size_t cols = std::min(kNR, nc - jr * kNR);
    if (tb == Trans::N && cols == kNR) {
      // Full-width panels from untransposed B copy contiguous row slices.
      const float* src = b + p0 * ldb + j0 + jr * kNR;
      for (std::size_t p = 0; p < kc; ++p)
        std::memcpy(panel + p * kNR, src + p * ldb, kNR * sizeof(float));
      continue;
    }
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t c = 0; c < cols; ++c)
        panel[p * kNR + c] = load_b(tb, b, ldb, p0 + p, j0 + jr * kNR + c);
      for (std::size_t c = cols; c < kNR; ++c) panel[p * kNR + c] = 0.0f;
    }
  }
}

/// MR x NR micro-kernel over one packed KC slice. Always computes the full
/// register tile (panels are zero-padded), then masks the store to the live
/// mr x nr corner. `overwrite` selects C = acc vs C += acc — the only beta
/// cases sgemm accepts.
AIRFEDGA_KERNEL_CLONES
void micro_kernel(std::size_t kc, const float* __restrict ap, const float* __restrict bp,
                  float* __restrict c, std::size_t ldc, std::size_t mr, std::size_t nr,
                  bool overwrite) {
  float acc[kMR * kNR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* b = bp + p * kNR;
    const float* a = ap + p * kMR;
    for (std::size_t i = 0; i < kMR; ++i) {
      const float ai = a[i];
      float* row = acc + i * kNR;
      for (std::size_t j = 0; j < kNR; ++j) row[j] += ai * b[j];
    }
  }
  if (mr == kMR && nr == kNR) {
    if (overwrite) {
      for (std::size_t i = 0; i < kMR; ++i)
        for (std::size_t j = 0; j < kNR; ++j) c[i * ldc + j] = acc[i * kNR + j];
    } else {
      for (std::size_t i = 0; i < kMR; ++i)
        for (std::size_t j = 0; j < kNR; ++j) c[i * ldc + j] += acc[i * kNR + j];
    }
    return;
  }
  for (std::size_t i = 0; i < mr; ++i)
    for (std::size_t j = 0; j < nr; ++j) {
      if (overwrite)
        c[i * ldc + j] = acc[i * kNR + j];
      else
        c[i * ldc + j] += acc[i * kNR + j];
    }
}

/// One (mc x nc) output tile: full ascending k loop in KC slices, packing
/// into the calling thread's workspace. Tiles touch disjoint C ranges and
/// each element's accumulation order depends only on k, so any assignment
/// of tiles to threads yields identical bits.
void gemm_tile(Trans ta, Trans tb, std::size_t k, const float* a, std::size_t lda, const float* b,
               std::size_t ldb, float beta, float* c, std::size_t ldc, std::size_t i0,
               std::size_t mc, std::size_t j0, std::size_t nc) {
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  const std::size_t mp = ceil_div(mc, kMR);
  const std::size_t np = ceil_div(nc, kNR);
  float* ap = ws.floats(mp * kMR * std::min(kKC, k));
  float* bp = ws.floats(np * kNR * std::min(kKC, k));
  for (std::size_t p0 = 0; p0 < k; p0 += kKC) {
    const std::size_t kc = std::min(kKC, k - p0);
    pack_b(tb, b, ldb, p0, kc, j0, nc, bp);
    pack_a(ta, a, lda, i0, mc, p0, kc, ap);
    const bool overwrite = p0 == 0 && beta == 0.0f;
    for (std::size_t jr = 0; jr < np; ++jr) {
      const std::size_t nr = std::min(kNR, nc - jr * kNR);
      for (std::size_t ir = 0; ir < mp; ++ir) {
        const std::size_t mr = std::min(kMR, mc - ir * kMR);
        micro_kernel(kc, ap + ir * kc * kMR, bp + jr * kc * kNR,
                     c + (i0 + ir * kMR) * ldc + j0 + jr * kNR, ldc, mr, nr, overwrite);
      }
    }
  }
}

}  // namespace

const GemmBlocking& gemm_blocking() { return kBlocking; }

std::size_t gemm_coop_min_flops() { return g_coop_min_flops.load(std::memory_order_relaxed); }
void set_gemm_coop_min_flops(std::size_t flops) {
  g_coop_min_flops.store(flops, std::memory_order_relaxed);
}

void sgemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k, const float* a,
           std::size_t lda, const float* b, std::size_t ldb, float beta, float* c,
           std::size_t ldc) {
  if (beta != 0.0f && beta != 1.0f)
    throw std::invalid_argument("sgemm: beta must be 0 (overwrite) or 1 (accumulate)");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (beta == 0.0f)
      for (std::size_t i = 0; i < m; ++i) std::memset(c + i * ldc, 0, n * sizeof(float));
    return;
  }
  const std::size_t nb = ceil_div(n, kNC);
  const std::size_t tiles = ceil_div(m, kMC) * nb;
  const std::size_t flops = 2 * m * n * k;
  // Span only above a FLOP floor: tiny GEMMs (bias-sized) would swamp the
  // ring buffers without adding attribution signal.
  obs::Span span("gemm", "gemm.sgemm", flops >= kGemmTraceMinFlops);
  auto run_tile = [=](std::size_t t) {
    const std::size_t i0 = (t / nb) * kMC;
    const std::size_t j0 = (t % nb) * kNC;
    gemm_tile(ta, tb, k, a, lda, b, ldb, beta, c, ldc, i0, std::min(kMC, m - i0), j0,
              std::min(kNC, n - j0));
  };
  if (tiles == 1) {
    run_tile(0);
    return;
  }
  if (auto* pool = util::ThreadPool::cooperation_pool();
      pool != nullptr && flops >= gemm_coop_min_flops()) {
    // Training lane with idle lanes possibly available: recruit them. The
    // tile -> C-range mapping is fixed, so helper participation can only
    // change wall time, never bits.
    pool->cooperate(tiles, run_tile);
    return;
  }
  // Top-level data parallelism (serial under the nesting rule): grain sized
  // so each chunk carries at least kMinFlopsPerTask of arithmetic — derived
  // from the blocked tile size instead of the raw element count.
  const std::size_t tile_flops =
      2 * std::min(kMC, m) * std::min(kNC, n) * k;
  const std::size_t grain =
      std::clamp<std::size_t>(kMinFlopsPerTask / std::max<std::size_t>(tile_flops, 1), 1, tiles);
  util::parallel_for(
      tiles,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) run_tile(t);
      },
      grain);
}

void sgemm_reference(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
                     const float* a, std::size_t lda, const float* b, std::size_t ldb, float beta,
                     float* c, std::size_t ldc) {
  if (beta != 0.0f && beta != 1.0f)
    throw std::invalid_argument("sgemm_reference: beta must be 0 or 1");
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) std::memset(crow, 0, n * sizeof(float));
    if (ta == Trans::N && tb == Trans::T) {
      // The seed's matmul_nt loop: dot products over contiguous rows.
      const float* arow = a + i * lda;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = b + j * ldb;
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += acc;
      }
      continue;
    }
    // The seed's matmul/matmul_tn loop: rank-1 updates over contiguous rows.
    for (std::size_t p = 0; p < k; ++p) {
      const float ai = load_a(ta, a, lda, i, p);
      if (tb == Trans::N) {
        const float* brow = b + p * ldb;
        for (std::size_t j = 0; j < n; ++j) crow[j] += ai * brow[j];
      } else {
        for (std::size_t j = 0; j < n; ++j) crow[j] += ai * b[j * ldb + p];
      }
    }
  }
}

}  // namespace airfedga::ml
