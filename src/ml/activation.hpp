#pragma once

#include "ml/layer.hpp"

namespace airfedga::ml {

/// Elementwise rectified linear unit.
class ReLU : public Layer {
 public:
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;  // 1 where input > 0 (training mode only)
  Tensor out_;
  Tensor dx_;
};

/// Shape adapter from NCHW activations to (batch, features) rows.
class Flatten : public Layer {
 public:
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> input_shape_;
  Tensor out_;
  Tensor dx_;
};

}  // namespace airfedga::ml
