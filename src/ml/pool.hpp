#pragma once

#include "ml/layer.hpp"

namespace airfedga::ml {

/// Max pooling over NCHW activations with square window and equal stride
/// (the paper's CNN/VGG models only use 2x2/2).
class MaxPool2D : public Layer {
 public:
  explicit MaxPool2D(std::size_t window = 2);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2D"; }

 private:
  std::size_t win_;
  std::vector<std::size_t> argmax_;       // flat input index of each output cell (training only)
  std::vector<std::size_t> input_shape_;
  Tensor out_;
  Tensor dx_;
};

}  // namespace airfedga::ml
