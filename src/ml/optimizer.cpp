#include "ml/optimizer.hpp"

namespace airfedga::ml {

void SgdOptimizer::step(Model& model) {
  std::size_t block = 0;
  for (std::size_t li = 0; li < model.num_layers(); ++li) {
    for (auto& p : model.layer(li).params()) {
      if (velocity_.size() <= block) velocity_.emplace_back(p.value.size(), 0.0f);
      auto& vel = velocity_[block];
      for (std::size_t i = 0; i < p.value.size(); ++i) {
        float g = p.grad[i] + cfg_.weight_decay * p.value[i];
        if (cfg_.momentum > 0.0f) {
          vel[i] = cfg_.momentum * vel[i] + g;
          g = vel[i];
        }
        p.value[i] -= cfg_.lr * g;
      }
      ++block;
    }
  }
}

}  // namespace airfedga::ml
