#include "ml/model.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace airfedga::ml {

void Model::add(std::unique_ptr<Layer> layer) {
  layer->set_training(training_);
  layers_.push_back(std::move(layer));
  views_.clear();  // rebuilt lazily on next access
  num_params_ = 0;
}

void Model::init(util::Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

const Tensor& Model::forward(const Tensor& x) {
  const Tensor* h = &x;
  for (auto& l : layers_) h = &l->forward(*h);
  return *h;
}

void Model::set_training(bool training) {
  training_ = training;
  for (auto& l : layers_) l->set_training(training);
}

const std::vector<ParamView>& Model::views() const {
  if (views_.empty()) {
    std::size_t n = 0;
    for (const auto& l : layers_)
      for (auto& p : const_cast<Layer&>(*l).params()) {
        n += p.value.size();
        views_.push_back(p);
      }
    num_params_ = n;
  }
  return views_;
}

std::size_t Model::num_parameters() const {
  views();
  return num_params_;
}

void Model::parameters_into(std::vector<float>& out) const {
  out.resize(num_parameters());
  std::size_t off = 0;
  for (const auto& p : views()) {
    std::copy(p.value.begin(), p.value.end(), out.begin() + static_cast<std::ptrdiff_t>(off));
    off += p.value.size();
  }
}

std::vector<float> Model::parameters() const {
  std::vector<float> flat;
  parameters_into(flat);
  return flat;
}

void Model::set_parameters(std::span<const float> flat) {
  std::size_t off = 0;
  for (const auto& p : views()) {
    if (off + p.value.size() > flat.size())
      throw std::invalid_argument("Model::set_parameters: vector too short");
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
              flat.begin() + static_cast<std::ptrdiff_t>(off + p.value.size()), p.value.begin());
    off += p.value.size();
  }
  if (off != flat.size())
    throw std::invalid_argument("Model::set_parameters: vector length mismatch");
}

void Model::gradients_into(std::vector<float>& out) const {
  out.resize(num_parameters());
  std::size_t off = 0;
  for (const auto& p : views()) {
    std::copy(p.grad.begin(), p.grad.end(), out.begin() + static_cast<std::ptrdiff_t>(off));
    off += p.grad.size();
  }
}

std::vector<float> Model::gradients() const {
  std::vector<float> flat;
  gradients_into(flat);
  return flat;
}

void Model::zero_grad() {
  for (const auto& p : views()) std::fill(p.grad.begin(), p.grad.end(), 0.0f);
}

double Model::compute_gradient(const Tensor& x, std::span<const int> y,
                               std::vector<float>& grad_out) {
  if (!training_) set_training(true);
  zero_grad();
  const Tensor& logits = forward(x);
  const double loss = loss_.forward(logits, y);
  const Tensor* grad = &loss_.backward();
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) grad = &(*it)->backward(*grad);
  gradients_into(grad_out);
  return loss;
}

double Model::train_step(const Tensor& x, std::span<const int> y, float lr) {
  if (!training_) set_training(true);
  zero_grad();
  const Tensor& logits = forward(x);
  const double loss = loss_.forward(logits, y);
  const Tensor* grad = &loss_.backward();
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) grad = &(*it)->backward(*grad);
  for (const auto& p : views())
    for (std::size_t i = 0; i < p.value.size(); ++i) p.value[i] -= lr * p.grad[i];
  return loss;
}

EvalResult Model::evaluate(const Tensor& xs, std::span<const int> ys, std::size_t batch_size) {
  const std::size_t n = xs.dim(0);
  if (ys.size() != n) throw std::invalid_argument("Model::evaluate: label count mismatch");
  if (n == 0) return {};
  double loss_sum = 0.0;
  double acc_sum = 0.0;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t end = std::min(n, start + batch_size);
    const EvalSums sums = evaluate_range(xs, ys, start, end);
    loss_sum += sums.loss_sum;
    acc_sum += sums.acc_sum;
  }
  return {loss_sum / static_cast<double>(n), acc_sum / static_cast<double>(n)};
}

EvalSums Model::evaluate_range(const Tensor& xs, std::span<const int> ys, std::size_t begin,
                               std::size_t end) {
  const std::size_t n = xs.dim(0);
  if (ys.size() != n) throw std::invalid_argument("Model::evaluate_range: label count mismatch");
  if (begin > end || end > n) throw std::invalid_argument("Model::evaluate_range: bad range");
  if (begin == end) return {};
  if (training_) set_training(false);
  // Contiguous row-range copy into the reused eval batch buffer.
  const std::size_t row = xs.size() / n;
  std::array<std::size_t, 4> shape{};
  for (std::size_t i = 0; i < xs.rank(); ++i) shape[i] = xs.dim(i);
  shape[0] = end - begin;
  eval_batch_.resize_uninitialized(std::span<const std::size_t>(shape.data(), xs.rank()));
  std::memcpy(eval_batch_.data().data(), xs.data().data() + begin * row,
              (end - begin) * row * sizeof(float));
  const Tensor& logits = forward(eval_batch_);
  std::span<const int> yb(ys.data() + begin, end - begin);
  const auto count = static_cast<double>(end - begin);
  return {loss_.forward(logits, yb) * count, accuracy(logits, yb) * count};
}

namespace {
constexpr std::uint32_t kCheckpointMagic = 0xA1FED6A0;
}  // namespace

void save_parameters(const std::string& path, std::span<const float> params) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_parameters: cannot open " + path);
  const std::uint32_t magic = kCheckpointMagic;
  const auto count = static_cast<std::uint64_t>(params.size());
  f.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  f.write(reinterpret_cast<const char*>(params.data()),
          static_cast<std::streamsize>(params.size_bytes()));
  if (!f) throw std::runtime_error("save_parameters: write failed for " + path);
}

std::vector<float> load_parameters(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_parameters: cannot open " + path);
  std::uint32_t magic = 0;
  std::uint64_t count = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!f || magic != kCheckpointMagic)
    throw std::runtime_error("load_parameters: not an airfedga checkpoint: " + path);
  // Check the header's claim against the actual file size before trusting
  // it: a truncated or corrupted count must fail with a clear error here,
  // not as an enormous allocation or a short read below.
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path, ec);
  const std::uint64_t header = sizeof(magic) + sizeof(count);
  if (ec || file_size < header || (file_size - header) / sizeof(float) != count ||
      (file_size - header) % sizeof(float) != 0)
    throw std::runtime_error("load_parameters: truncated or corrupt checkpoint (header claims " +
                             std::to_string(count) + " floats): " + path);
  std::vector<float> params(count);
  f.read(reinterpret_cast<char*>(params.data()),
         static_cast<std::streamsize>(count * sizeof(float)));
  if (!f || f.gcount() != static_cast<std::streamsize>(count * sizeof(float)))
    throw std::runtime_error("load_parameters: truncated checkpoint: " + path);
  return params;
}

void gather_rows_into(Tensor& out, const Tensor& xs, std::span<const std::size_t> indices) {
  const std::size_t row = xs.size() / xs.dim(0);
  std::array<std::size_t, 4> shape{};
  for (std::size_t i = 0; i < xs.rank(); ++i) shape[i] = xs.dim(i);
  shape[0] = indices.size();
  out.resize_uninitialized(std::span<const std::size_t>(shape.data(), xs.rank()));
  const float* src = xs.data().data();
  float* dst = out.data().data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= xs.dim(0)) throw std::out_of_range("gather_rows: index out of range");
    std::copy(src + indices[i] * row, src + (indices[i] + 1) * row, dst + i * row);
  }
}

Tensor gather_rows(const Tensor& xs, std::span<const std::size_t> indices) {
  Tensor out;
  gather_rows_into(out, xs, indices);
  return out;
}

}  // namespace airfedga::ml
