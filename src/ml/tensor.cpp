#include "ml/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "ml/gemm.hpp"

namespace airfedga::ml {

namespace {
std::size_t shape_product(std::span<const std::size_t> shape) {
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  return n;
}

void check_rank(std::span<const std::size_t> shape) {
  if (shape.empty() || shape.size() > 4)
    throw std::invalid_argument("Tensor: rank must be 1..4");
}
}  // namespace

void Tensor::set_shape_checked(std::span<const std::size_t> shape) {
  check_rank(shape);
  shape_.assign(shape.begin(), shape.end());
  size_ = shape_product(shape);
}

void Tensor::ensure_capacity(std::size_t n) {
  if (n <= capacity_) return;
  // Old contents are never preserved across growth (every resize path is
  // either uninitialized or immediately overwritten), so allocate fresh.
  data_.reset(new float[n]);
  capacity_ = n;
}

Tensor::Tensor(std::vector<std::size_t> shape) {
  set_shape_checked(shape);
  ensure_capacity(size_);
  std::fill_n(data_.get(), size_, 0.0f);
}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data) {
  set_shape_checked(shape);
  if (data.size() != size_)
    throw std::invalid_argument("Tensor: data size does not match shape");
  ensure_capacity(size_);
  std::copy(data.begin(), data.end(), data_.get());
}

Tensor::Tensor(const Tensor& other) {
  shape_ = other.shape_;
  size_ = other.size_;
  ensure_capacity(size_);
  if (size_ > 0) std::memcpy(data_.get(), other.data_.get(), size_ * sizeof(float));
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;  // reuses the shape vector's capacity
  size_ = other.size_;
  ensure_capacity(size_);
  if (size_ > 0) std::memcpy(data_.get(), other.data_.get(), size_ * sizeof(float));
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)),
      data_(std::move(other.data_)),
      size_(other.size_),
      capacity_(other.capacity_) {
  other.shape_.clear();
  other.size_ = 0;
  other.capacity_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  shape_ = std::move(other.shape_);
  data_ = std::move(other.data_);
  size_ = other.size_;
  capacity_ = other.capacity_;
  other.shape_.clear();
  other.size_ = 0;
  other.capacity_ = 0;
  return *this;
}

Tensor Tensor::zeros(std::vector<std::size_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::uninitialized(std::span<const std::size_t> shape) {
  Tensor t;
  t.set_shape_checked(shape);
  t.ensure_capacity(t.size_);
  return t;
}

Tensor Tensor::uninitialized(std::initializer_list<std::size_t> shape) {
  return uninitialized(std::span<const std::size_t>(shape.begin(), shape.size()));
}

Tensor Tensor::randn(std::vector<std::size_t> shape, util::Rng& rng, float stddev) {
  Tensor t = uninitialized(shape);
  for (auto& v : t.data()) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  check_rank(new_shape);
  if (shape_product(new_shape) != size())
    throw std::invalid_argument("Tensor::reshaped: size mismatch");
  Tensor t = uninitialized(new_shape);
  if (size_ > 0) std::memcpy(t.data_.get(), data_.get(), size_ * sizeof(float));
  return t;
}

void Tensor::resize_uninitialized(std::span<const std::size_t> shape) {
  set_shape_checked(shape);
  ensure_capacity(size_);
}

void Tensor::resize_uninitialized(std::initializer_list<std::size_t> shape) {
  resize_uninitialized(std::span<const std::size_t>(shape.begin(), shape.size()));
}

void Tensor::resize_zero(std::span<const std::size_t> shape) {
  resize_uninitialized(shape);
  std::fill_n(data_.get(), size_, 0.0f);
}

void Tensor::assign_reshaped(const Tensor& src, std::span<const std::size_t> shape) {
  if (shape_product(shape) != src.size())
    throw std::invalid_argument("Tensor::assign_reshaped: size mismatch");
  resize_uninitialized(shape);
  if (size_ > 0) std::memcpy(data_.get(), src.data_.get(), size_ * sizeof(float));
}

void Tensor::assign_reshaped(const Tensor& src, std::initializer_list<std::size_t> shape) {
  assign_reshaped(src, std::span<const std::size_t>(shape.begin(), shape.size()));
}

void Tensor::fill(float v) { std::fill_n(data_.get(), size_, v); }

double Tensor::norm() const { return std::sqrt(squared_norm(data())); }

std::string Tensor::shape_string() const {
  std::ostringstream ss;
  ss << '(';
  for (std::size_t i = 0; i < shape_.size(); ++i) ss << shape_[i] << (i + 1 < shape_.size() ? "," : "");
  ss << ')';
  return ss.str();
}

namespace {
void check_matrix(const Tensor& t, const char* who) {
  if (t.rank() != 2) throw std::invalid_argument(std::string(who) + ": expected rank-2 tensor");
}
}  // namespace

void matmul_into(Tensor& c, const Tensor& a, const Tensor& b, bool accumulate) {
  check_matrix(a, "matmul");
  check_matrix(b, "matmul");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dimensions differ");
  if (accumulate) {
    if (c.rank() != 2 || c.dim(0) != m || c.dim(1) != n)
      throw std::invalid_argument("matmul: accumulate target has wrong shape");
  } else {
    c.resize_uninitialized({m, n});
  }
  sgemm(Trans::N, Trans::N, m, n, k, a.data().data(), k, b.data().data(), n,
        accumulate ? 1.0f : 0.0f, c.data().data(), n);
}

void matmul_nt_into(Tensor& c, const Tensor& a, const Tensor& b, bool accumulate) {
  check_matrix(a, "matmul_nt");
  check_matrix(b, "matmul_nt");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt: inner dimensions differ");
  if (accumulate) {
    if (c.rank() != 2 || c.dim(0) != m || c.dim(1) != n)
      throw std::invalid_argument("matmul_nt: accumulate target has wrong shape");
  } else {
    c.resize_uninitialized({m, n});
  }
  sgemm(Trans::N, Trans::T, m, n, k, a.data().data(), k, b.data().data(), k,
        accumulate ? 1.0f : 0.0f, c.data().data(), n);
}

void matmul_tn_into(Tensor& c, const Tensor& a, const Tensor& b, bool accumulate) {
  check_matrix(a, "matmul_tn");
  check_matrix(b, "matmul_tn");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != m) throw std::invalid_argument("matmul_tn: outer dimensions differ");
  if (accumulate) {
    if (c.rank() != 2 || c.dim(0) != k || c.dim(1) != n)
      throw std::invalid_argument("matmul_tn: accumulate target has wrong shape");
  } else {
    c.resize_uninitialized({k, n});
  }
  sgemm(Trans::T, Trans::N, k, n, m, a.data().data(), k, b.data().data(), n,
        accumulate ? 1.0f : 0.0f, c.data().data(), n);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_into(c, a, b);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_nt_into(c, a, b);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_tn_into(c, a, b);
  return c;
}

void add_inplace(Tensor& y, const Tensor& x) {
  if (y.size() != x.size()) throw std::invalid_argument("add_inplace: size mismatch");
  float* py = y.data().data();
  const float* px = x.data().data();
  for (std::size_t i = 0; i < y.size(); ++i) py[i] += px[i];
}

void axpy(float a, std::span<const float> x, std::span<float> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

double dot(std::span<const float> x, std::span<const float> y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += static_cast<double>(x[i]) * y[i];
  return acc;
}

double squared_norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * v;
  return acc;
}

}  // namespace airfedga::ml
