#include "ml/tensor.hpp"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace airfedga::ml {

namespace {
std::size_t shape_product(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_product(shape_), 0.0f) {
  if (shape_.empty() || shape_.size() > 4)
    throw std::invalid_argument("Tensor: rank must be 1..4");
}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (shape_.empty() || shape_.size() > 4)
    throw std::invalid_argument("Tensor: rank must be 1..4");
  if (data_.size() != shape_product(shape_))
    throw std::invalid_argument("Tensor: data size does not match shape");
}

Tensor Tensor::zeros(std::vector<std::size_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::randn(std::vector<std::size_t> shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  if (shape_product(new_shape) != size())
    throw std::invalid_argument("Tensor::reshaped: size mismatch");
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

double Tensor::norm() const { return std::sqrt(squared_norm(data_)); }

std::string Tensor::shape_string() const {
  std::ostringstream ss;
  ss << '(';
  for (std::size_t i = 0; i < shape_.size(); ++i) ss << shape_[i] << (i + 1 < shape_.size() ? "," : "");
  ss << ')';
  return ss.str();
}

namespace {
void check_matrix(const Tensor& t, const char* who) {
  if (t.rank() != 2) throw std::invalid_argument(std::string(who) + ": expected rank-2 tensor");
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_matrix(a, "matmul");
  check_matrix(b, "matmul");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dimensions differ");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // (i,k,j) loop order: B rows are read contiguously, so the inner j-loop
  // auto-vectorizes. Parallel across output rows.
  util::parallel_for(
      m,
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          float* crow = pc + i * n;
          const float* arow = pa + i * k;
          for (std::size_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            const float* brow = pb + kk * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      /*grain=*/std::max<std::size_t>(1, 16384 / std::max<std::size_t>(1, k * n)));
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_matrix(a, "matmul_nt");
  check_matrix(b, "matmul_nt");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt: inner dimensions differ");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  util::parallel_for(
      m,
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float* arow = pa + i * k;
          float* crow = pc + i * n;
          for (std::size_t j = 0; j < n; ++j) {
            const float* brow = pb + j * k;
            float acc = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
            crow[j] = acc;
          }
        }
      },
      std::max<std::size_t>(1, 16384 / std::max<std::size_t>(1, k * n)));
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_matrix(a, "matmul_tn");
  check_matrix(b, "matmul_tn");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != m) throw std::invalid_argument("matmul_tn: outer dimensions differ");
  Tensor c({k, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // C[kk][j] = sum_i A[i][kk] * B[i][j]; parallelize over kk-chunks so each
  // worker owns disjoint output rows (no atomics needed).
  util::parallel_for(
      k,
      [&](std::size_t k0, std::size_t k1) {
        for (std::size_t i = 0; i < m; ++i) {
          const float* arow = pa + i * k;
          const float* brow = pb + i * n;
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const float av = arow[kk];
            float* crow = pc + kk * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      std::max<std::size_t>(1, 16384 / std::max<std::size_t>(1, m * n)));
  return c;
}

void add_inplace(Tensor& y, const Tensor& x) {
  if (y.size() != x.size()) throw std::invalid_argument("add_inplace: size mismatch");
  float* py = y.data().data();
  const float* px = x.data().data();
  for (std::size_t i = 0; i < y.size(); ++i) py[i] += px[i];
}

void axpy(float a, std::span<const float> x, std::span<float> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

double dot(std::span<const float> x, std::span<const float> y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += static_cast<double>(x[i]) * y[i];
  return acc;
}

double squared_norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * v;
  return acc;
}

}  // namespace airfedga::ml
