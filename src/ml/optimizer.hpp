#pragma once

#include "ml/model.hpp"

namespace airfedga::ml {

/// Plain SGD with optional momentum and L2 weight decay.
///
/// The paper's local update (Eq. 4) is momentum-free SGD; momentum and
/// weight decay are provided for the extension experiments and for making
/// the toy convex problems strongly convex in tests.
class SgdOptimizer {
 public:
  struct Config {
    float lr = 0.01f;
    float momentum = 0.0f;
    float weight_decay = 0.0f;
  };

  explicit SgdOptimizer(Config cfg) : cfg_(cfg) {}

  /// Applies one update using the gradients currently accumulated in the
  /// model's layers.
  void step(Model& model);

  [[nodiscard]] const Config& config() const { return cfg_; }
  void set_lr(float lr) { cfg_.lr = lr; }

 private:
  Config cfg_;
  std::vector<std::vector<float>> velocity_;  // lazily sized per param block
};

}  // namespace airfedga::ml
