#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace airfedga::ml {

/// Dense row-major float tensor with up to 4 dimensions.
///
/// The ML substrate is deliberately minimal: the federated-learning
/// mechanisms operate on *flattened parameter vectors*, so the tensor type
/// only needs the shapes that appear in the paper's models (2-D activations
/// for dense layers, 4-D NCHW activations for the CNN/VGG models).
///
/// Storage is an owned capacity-tracked buffer (not std::vector) so the
/// training hot path gets two things vectors cannot give it: an
/// *uninitialized* construction/resize path for outputs every kernel fully
/// overwrites (no redundant zero-fill), and shape changes that reuse
/// capacity so steady-state training performs zero heap allocations (layer
/// output/gradient buffers are resized to the same shapes step after step).
class Tensor {
 public:
  Tensor() = default;
  /// Zero-filled tensor of `shape` (rank 1..4).
  explicit Tensor(std::vector<std::size_t> shape);
  /// Tensor of `shape` holding a copy of `data` (sizes must match).
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  Tensor(const Tensor& other);
  /// Deep copy; reuses this tensor's existing capacity when it suffices.
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor() = default;

  static Tensor zeros(std::vector<std::size_t> shape);
  /// Tensor of `shape` with *unspecified* contents — for outputs the caller
  /// fully overwrites. Skips the zero-fill Tensor(shape) performs.
  static Tensor uninitialized(std::span<const std::size_t> shape);
  static Tensor uninitialized(std::initializer_list<std::size_t> shape);
  /// N(0, stddev) entries drawn from `rng`.
  static Tensor randn(std::vector<std::size_t> shape, util::Rng& rng, float stddev = 1.0f);

  [[nodiscard]] const std::vector<std::size_t>& shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t dim(std::size_t i) const { return shape_.at(i); }

  [[nodiscard]] std::span<float> data() { return {data_.get(), size_}; }
  [[nodiscard]] std::span<const float> data() const { return {data_.get(), size_}; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D accessor (row, col); bounds unchecked in release builds.
  float& at2(std::size_t r, std::size_t c) { return data_[r * shape_[1] + c]; }
  [[nodiscard]] float at2(std::size_t r, std::size_t c) const { return data_[r * shape_[1] + c]; }

  /// 4-D accessor (n, c, h, w) for NCHW activations.
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  [[nodiscard]] float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Returns a tensor sharing no storage with this one but holding the same
  /// data under a new shape (sizes must match).
  [[nodiscard]] Tensor reshaped(std::vector<std::size_t> new_shape) const;

  /// Reshapes in place to `shape` without preserving or initializing the
  /// contents (the fully-overwritten-output path). Existing capacity is
  /// reused, so repeated calls with steady shapes never allocate.
  void resize_uninitialized(std::span<const std::size_t> shape);
  void resize_uninitialized(std::initializer_list<std::size_t> shape);

  /// `resize_uninitialized` followed by a zero fill (for accumulators).
  void resize_zero(std::span<const std::size_t> shape);

  /// Copies `src`'s contents into this tensor under shape `shape` (sizes
  /// must match); capacity is reused. Used by shape-adapter layers.
  void assign_reshaped(const Tensor& src, std::span<const std::size_t> shape);
  void assign_reshaped(const Tensor& src, std::initializer_list<std::size_t> shape);

  void fill(float v);

  /// Frobenius norm of the entries.
  [[nodiscard]] double norm() const;

  [[nodiscard]] std::string shape_string() const;

 private:
  void set_shape_checked(std::span<const std::size_t> shape);
  void ensure_capacity(std::size_t n);

  std::vector<std::size_t> shape_;
  std::unique_ptr<float[]> data_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

/// C(M,N) = A(M,K) * B(K,N). Backed by the blocked kernel layer (gemm.hpp).
Tensor matmul(const Tensor& a, const Tensor& b);

/// C(M,N) = A(M,K) * B(N,K)^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C(K,N) = A(M,K)^T * B(M,N).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// In-place variants: resize `c` (reusing capacity) and overwrite it, or
/// accumulate into it when `accumulate` is true (c must already have the
/// result shape). `c` must not alias `a` or `b`.
void matmul_into(Tensor& c, const Tensor& a, const Tensor& b, bool accumulate = false);
void matmul_nt_into(Tensor& c, const Tensor& a, const Tensor& b, bool accumulate = false);
void matmul_tn_into(Tensor& c, const Tensor& a, const Tensor& b, bool accumulate = false);

/// y += x (elementwise; sizes must match).
void add_inplace(Tensor& y, const Tensor& x);

/// y = a*x + y (BLAS-style axpy over the flattened entries).
void axpy(float a, std::span<const float> x, std::span<float> y);

/// Euclidean inner product over flattened entries.
double dot(std::span<const float> x, std::span<const float> y);

/// Squared L2 norm of a flat vector (accumulated in double).
double squared_norm(std::span<const float> x);

}  // namespace airfedga::ml
