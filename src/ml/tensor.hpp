#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace airfedga::ml {

/// Dense row-major float tensor with up to 4 dimensions.
///
/// The ML substrate is deliberately minimal: the federated-learning
/// mechanisms operate on *flattened parameter vectors*, so the tensor type
/// only needs the shapes that appear in the paper's models (2-D activations
/// for dense layers, 4-D NCHW activations for the CNN/VGG models).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  static Tensor zeros(std::vector<std::size_t> shape);
  /// N(0, stddev) entries drawn from `rng`.
  static Tensor randn(std::vector<std::size_t> shape, util::Rng& rng, float stddev = 1.0f);

  [[nodiscard]] const std::vector<std::size_t>& shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const { return shape_.at(i); }

  [[nodiscard]] std::span<float> data() { return data_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D accessor (row, col); bounds unchecked in release builds.
  float& at2(std::size_t r, std::size_t c) { return data_[r * shape_[1] + c]; }
  [[nodiscard]] float at2(std::size_t r, std::size_t c) const { return data_[r * shape_[1] + c]; }

  /// 4-D accessor (n, c, h, w) for NCHW activations.
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  [[nodiscard]] float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Returns a tensor sharing no storage with this one but holding the same
  /// data under a new shape (sizes must match).
  [[nodiscard]] Tensor reshaped(std::vector<std::size_t> new_shape) const;

  void fill(float v);

  /// Frobenius norm of the entries.
  [[nodiscard]] double norm() const;

  [[nodiscard]] std::string shape_string() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// C(M,N) = A(M,K) * B(K,N). Parallelized over rows of A.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C(M,N) = A(M,K) * B(N,K)^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C(K,N) = A(M,K)^T * B(M,N).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// y += x (elementwise; sizes must match).
void add_inplace(Tensor& y, const Tensor& x);

/// y = a*x + y (BLAS-style axpy over the flattened entries).
void axpy(float a, std::span<const float> x, std::span<float> y);

/// Euclidean inner product over flattened entries.
double dot(std::span<const float> x, std::span<const float> y);

/// Squared L2 norm of a flat vector (accumulated in double).
double squared_norm(std::span<const float> x);

}  // namespace airfedga::ml
