#include "ml/conv2d.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "ml/gemm.hpp"
#include "ml/workspace.hpp"
#include "obs/trace.hpp"

namespace airfedga::ml {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t padding)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      pad_(padding),
      weight_({out_channels, in_channels * kernel * kernel}),
      bias_({out_channels}),
      weight_grad_({out_channels, in_channels * kernel * kernel}),
      bias_grad_({out_channels}) {
  if (kernel == 0 || in_channels == 0 || out_channels == 0)
    throw std::invalid_argument("Conv2D: zero-sized configuration");
}

void Conv2D::init(util::Rng& rng) {
  const float fan_in = static_cast<float>(cin_ * k_ * k_);
  const float stddev = std::sqrt(2.0f / fan_in);
  for (auto& v : weight_.data()) v = static_cast<float>(rng.normal(0.0, stddev));
  bias_.fill(0.0f);
}

void Conv2D::im2col_batched(const Tensor& x, std::size_t s0, std::size_t s1,
                            float* cols) const {
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t oh = out_height(h), ow = out_width(w);
  const std::size_t np = oh * ow;             // patches per sample
  const std::size_t ncols = (s1 - s0) * np;   // patch-matrix width
  const float* px = x.data().data();
  for (std::size_t c = 0; c < cin_; ++c) {
    for (std::size_t ki = 0; ki < k_; ++ki) {
      for (std::size_t kj = 0; kj < k_; ++kj) {
        const std::size_t row = (c * k_ + ki) * k_ + kj;
        // For fixed (ki, kj) the valid output columns map to a contiguous
        // input span, so each output row is a memcpy plus zeroed borders.
        const std::size_t oj_lo = pad_ > kj ? pad_ - kj : 0;
        const std::size_t oj_hi = std::min(ow, w + pad_ > kj ? w + pad_ - kj : 0);
        for (std::size_t n = s0; n < s1; ++n) {
          float* dst0 = cols + row * ncols + (n - s0) * np;
          const float* src_plane = px + (n * cin_ + c) * h * w;
          for (std::size_t oi = 0; oi < oh; ++oi) {
            float* dst = dst0 + oi * ow;
            const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(oi + ki) -
                                      static_cast<std::ptrdiff_t>(pad_);
            if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(h) || oj_lo >= oj_hi) {
              std::memset(dst, 0, ow * sizeof(float));
              continue;
            }
            if (oj_lo > 0) std::memset(dst, 0, oj_lo * sizeof(float));
            std::memcpy(dst + oj_lo,
                        src_plane + static_cast<std::size_t>(ii) * w + (oj_lo + kj - pad_),
                        (oj_hi - oj_lo) * sizeof(float));
            if (oj_hi < ow) std::memset(dst + oj_hi, 0, (ow - oj_hi) * sizeof(float));
          }
        }
      }
    }
  }
}

void Conv2D::col2im_batched(const float* cols, std::size_t s0, std::size_t s1,
                            Tensor& dx) const {
  const std::size_t h = dx.dim(2), w = dx.dim(3);
  const std::size_t oh = out_height(h), ow = out_width(w);
  const std::size_t np = oh * ow;
  const std::size_t ncols = (s1 - s0) * np;
  float* pdx = dx.data().data();
  for (std::size_t c = 0; c < cin_; ++c) {
    for (std::size_t ki = 0; ki < k_; ++ki) {
      for (std::size_t kj = 0; kj < k_; ++kj) {
        const std::size_t row = (c * k_ + ki) * k_ + kj;
        const std::size_t oj_lo = pad_ > kj ? pad_ - kj : 0;
        const std::size_t oj_hi = std::min(ow, w + pad_ > kj ? w + pad_ - kj : 0);
        if (oj_lo >= oj_hi) continue;
        for (std::size_t n = s0; n < s1; ++n) {
          const float* src0 = cols + row * ncols + (n - s0) * np;
          float* dst_plane = pdx + (n * cin_ + c) * h * w;
          for (std::size_t oi = 0; oi < oh; ++oi) {
            const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(oi + ki) -
                                      static_cast<std::ptrdiff_t>(pad_);
            if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(h)) continue;
            const float* src = src0 + oi * ow;
            float* dst = dst_plane + static_cast<std::size_t>(ii) * w + (oj_lo + kj - pad_);
            for (std::size_t oj = oj_lo; oj < oj_hi; ++oj) dst[oj - oj_lo] += src[oj];
          }
        }
      }
    }
  }
}

const Tensor& Conv2D::forward(const Tensor& x) {
  obs::Span span("conv", "conv.forward");
  if (x.rank() != 4 || x.dim(1) != cin_)
    throw std::invalid_argument("Conv2D::forward: bad input shape " + x.shape_string());
  if (training_) input_cache_ = x;
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = out_height(h), ow = out_width(w);
  const std::size_t np = oh * ow;
  const std::size_t rows = cin_ * k_ * k_;

  // Chunk the batch so the lowered patch matrix never exceeds a fixed
  // float budget: evaluation batches are an order of magnitude larger than
  // training batches, and the workspace arena retains its peak block set
  // for the thread's lifetime, so an uncapped eval forward would pin
  // eval-sized buffers on every lane forever. Chunk boundaries depend only
  // on the layer shape, and the GEMM's per-element k-order is unchanged,
  // so chunked and unchunked forwards are bit-identical.
  constexpr std::size_t kMaxLoweredFloats = std::size_t{1} << 22;  // 16 MiB
  const std::size_t per_sample = rows * np;
  const std::size_t chunk =
      std::max<std::size_t>(1, kMaxLoweredFloats / std::max<std::size_t>(per_sample, 1));

  out_.resize_uninitialized({batch, cout_, oh, ow});
  float* py = out_.data().data();
  const float* pb = bias_.data().data();
  Workspace& ws = Workspace::tls();
  for (std::size_t s0 = 0; s0 < batch; s0 += chunk) {
    const std::size_t s1 = std::min(batch, s0 + chunk);
    const std::size_t ncols = (s1 - s0) * np;
    Workspace::Scope scope(ws);
    float* cols = ws.floats(rows * ncols);
    im2col_batched(x, s0, s1, cols);
    float* gemm_out = ws.floats(cout_ * ncols);  // (cout, (s1-s0)*OH*OW)
    sgemm(Trans::N, Trans::N, cout_, ncols, rows, weight_.data().data(), rows, cols, ncols, 0.0f,
          gemm_out, ncols);

    // Scatter (cout, chunk, OH*OW) -> NCHW and add the bias.
    for (std::size_t n = s0; n < s1; ++n) {
      for (std::size_t c = 0; c < cout_; ++c) {
        const float* src = gemm_out + c * ncols + (n - s0) * np;
        float* dst = py + (n * cout_ + c) * np;
        const float b = pb[c];
        for (std::size_t i = 0; i < np; ++i) dst[i] = src[i] + b;
      }
    }
  }
  return out_;
}

const Tensor& Conv2D::backward(const Tensor& grad_out) {
  obs::Span span("conv", "conv.backward");
  if (!training_ || input_cache_.size() == 0)
    throw std::logic_error("Conv2D::backward: requires a training-mode forward");
  const Tensor& x = input_cache_;
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = out_height(h), ow = out_width(w);
  if (grad_out.rank() != 4 || grad_out.dim(0) != batch || grad_out.dim(1) != cout_ ||
      grad_out.dim(2) != oh || grad_out.dim(3) != ow)
    throw std::invalid_argument("Conv2D::backward: bad gradient shape");
  const std::size_t np = oh * ow;
  const std::size_t ncols = batch * np;
  const std::size_t rows = cin_ * k_ * k_;

  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);

  // Gather NCHW grad_out into the (cout, N*OH*OW) matrix the GEMMs want.
  float* gy = ws.floats(cout_ * ncols);
  const float* pg = grad_out.data().data();
  for (std::size_t n = 0; n < batch; ++n)
    for (std::size_t c = 0; c < cout_; ++c)
      std::memcpy(gy + c * ncols + n * np, pg + (n * cout_ + c) * np, np * sizeof(float));

  // Recompute the patch matrix (cheap next to the GEMMs; caching it across
  // forward/backward would cost rows*ncols floats per layer per lane).
  float* cols = ws.floats(rows * ncols);
  im2col_batched(x, 0, batch, cols);

  // dW += gy * cols^T over the whole batch in one accumulating GEMM.
  sgemm(Trans::N, Trans::T, cout_, rows, ncols, gy, ncols, cols, ncols, 1.0f,
        weight_grad_.data().data(), rows);

  float* pbg = bias_grad_.data().data();
  for (std::size_t c = 0; c < cout_; ++c) {
    const float* row = gy + c * ncols;
    float acc = 0.0f;
    for (std::size_t i = 0; i < ncols; ++i) acc += row[i];
    pbg[c] += acc;
  }

  // dcols = W^T gy, then scatter-add back to input layout.
  float* dcols = ws.floats(rows * ncols);
  sgemm(Trans::T, Trans::N, rows, ncols, cout_, weight_.data().data(), rows, gy, ncols, 0.0f,
        dcols, ncols);
  dx_.resize_zero(x.shape());
  col2im_batched(dcols, 0, batch, dx_);
  return dx_;
}

std::vector<ParamView> Conv2D::params() {
  return {{weight_.data(), weight_grad_.data()}, {bias_.data(), bias_grad_.data()}};
}

}  // namespace airfedga::ml
