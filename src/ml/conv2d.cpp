#include "ml/conv2d.hpp"

#include <cmath>
#include <stdexcept>

namespace airfedga::ml {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t padding)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      pad_(padding),
      weight_({out_channels, in_channels * kernel * kernel}),
      bias_({out_channels}),
      weight_grad_({out_channels, in_channels * kernel * kernel}),
      bias_grad_({out_channels}) {
  if (kernel == 0 || in_channels == 0 || out_channels == 0)
    throw std::invalid_argument("Conv2D: zero-sized configuration");
}

void Conv2D::init(util::Rng& rng) {
  const float fan_in = static_cast<float>(cin_ * k_ * k_);
  const float stddev = std::sqrt(2.0f / fan_in);
  for (auto& v : weight_.data()) v = static_cast<float>(rng.normal(0.0, stddev));
  bias_.fill(0.0f);
}

Tensor Conv2D::im2col(const Tensor& x, std::size_t sample) const {
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t oh = out_height(h), ow = out_width(w);
  Tensor cols({cin_ * k_ * k_, oh * ow});
  float* pc = cols.data().data();
  for (std::size_t c = 0; c < cin_; ++c) {
    for (std::size_t ki = 0; ki < k_; ++ki) {
      for (std::size_t kj = 0; kj < k_; ++kj) {
        const std::size_t row = (c * k_ + ki) * k_ + kj;
        float* dst = pc + row * (oh * ow);
        for (std::size_t oi = 0; oi < oh; ++oi) {
          const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(oi + ki) -
                                    static_cast<std::ptrdiff_t>(pad_);
          for (std::size_t oj = 0; oj < ow; ++oj) {
            const std::ptrdiff_t jj = static_cast<std::ptrdiff_t>(oj + kj) -
                                      static_cast<std::ptrdiff_t>(pad_);
            const bool in_bounds = ii >= 0 && jj >= 0 &&
                                   ii < static_cast<std::ptrdiff_t>(h) &&
                                   jj < static_cast<std::ptrdiff_t>(w);
            dst[oi * ow + oj] =
                in_bounds ? x.at4(sample, c, static_cast<std::size_t>(ii),
                                  static_cast<std::size_t>(jj))
                          : 0.0f;
          }
        }
      }
    }
  }
  return cols;
}

void Conv2D::col2im(const Tensor& cols, Tensor& dx, std::size_t sample) const {
  const std::size_t h = dx.dim(2), w = dx.dim(3);
  const std::size_t oh = out_height(h), ow = out_width(w);
  const float* pc = cols.data().data();
  for (std::size_t c = 0; c < cin_; ++c) {
    for (std::size_t ki = 0; ki < k_; ++ki) {
      for (std::size_t kj = 0; kj < k_; ++kj) {
        const std::size_t row = (c * k_ + ki) * k_ + kj;
        const float* src = pc + row * (oh * ow);
        for (std::size_t oi = 0; oi < oh; ++oi) {
          const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(oi + ki) -
                                    static_cast<std::ptrdiff_t>(pad_);
          if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(h)) continue;
          for (std::size_t oj = 0; oj < ow; ++oj) {
            const std::ptrdiff_t jj = static_cast<std::ptrdiff_t>(oj + kj) -
                                      static_cast<std::ptrdiff_t>(pad_);
            if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(w)) continue;
            dx.at4(sample, c, static_cast<std::size_t>(ii), static_cast<std::size_t>(jj)) +=
                src[oi * ow + oj];
          }
        }
      }
    }
  }
}

Tensor Conv2D::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != cin_)
    throw std::invalid_argument("Conv2D::forward: bad input shape " + x.shape_string());
  input_cache_ = x;
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = out_height(h), ow = out_width(w);
  Tensor y({batch, cout_, oh, ow});
  for (std::size_t n = 0; n < batch; ++n) {
    Tensor cols = im2col(x, n);                // (cin*k*k, oh*ow)
    Tensor out = matmul(weight_, cols);        // (cout, oh*ow)
    float* py = &y.at4(n, 0, 0, 0);
    const float* po = out.data().data();
    for (std::size_t c = 0; c < cout_; ++c) {
      const float b = bias_[c];
      for (std::size_t i = 0; i < oh * ow; ++i) py[c * oh * ow + i] = po[c * oh * ow + i] + b;
    }
  }
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  const Tensor& x = input_cache_;
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = out_height(h), ow = out_width(w);
  if (grad_out.rank() != 4 || grad_out.dim(1) != cout_ || grad_out.dim(2) != oh ||
      grad_out.dim(3) != ow)
    throw std::invalid_argument("Conv2D::backward: bad gradient shape");

  Tensor dx(x.shape());
  for (std::size_t n = 0; n < batch; ++n) {
    // View of this sample's output gradient as a (cout, oh*ow) matrix.
    Tensor gy({cout_, oh * ow});
    const float* pg = grad_out.data().data() + n * cout_ * oh * ow;
    std::copy(pg, pg + cout_ * oh * ow, gy.data().data());

    Tensor cols = im2col(x, n);
    Tensor dw = matmul_nt(gy, cols);  // (cout, cin*k*k)
    add_inplace(weight_grad_, dw);
    for (std::size_t c = 0; c < cout_; ++c) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < oh * ow; ++i) acc += gy.at2(c, i);
      bias_grad_[c] += acc;
    }
    Tensor dcols = matmul_tn(weight_, gy);  // (cin*k*k, oh*ow)
    col2im(dcols, dx, n);
  }
  return dx;
}

std::vector<ParamView> Conv2D::params() {
  return {{weight_.data(), weight_grad_.data()}, {bias_.data(), bias_grad_.data()}};
}

}  // namespace airfedga::ml
