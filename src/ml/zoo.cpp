#include "ml/zoo.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "ml/activation.hpp"
#include "ml/conv2d.hpp"
#include "ml/dense.hpp"
#include "ml/pool.hpp"

namespace airfedga::ml {

namespace {
std::size_t scaled(std::size_t base, double scale, std::size_t floor_value) {
  return std::max(floor_value,
                  static_cast<std::size_t>(std::llround(static_cast<double>(base) * scale)));
}
}  // namespace

Model make_mlp(std::size_t input_dim, std::size_t num_classes, std::size_t hidden) {
  Model m;
  m.add(std::make_unique<Dense>(input_dim, hidden));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(hidden, hidden));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(hidden, num_classes));
  return m;
}

Model make_softmax_regression(std::size_t input_dim, std::size_t num_classes) {
  Model m;
  m.add(std::make_unique<Dense>(input_dim, num_classes));
  return m;
}

Model make_cnn_mnist(double width_scale, std::size_t image) {
  if (image % 4 != 0) throw std::invalid_argument("make_cnn_mnist: image must be divisible by 4");
  const std::size_t c1 = scaled(20, width_scale, 4);
  const std::size_t c2 = scaled(50, width_scale, 4);
  const std::size_t fc = scaled(500, width_scale, 32);
  Model m;
  m.add(std::make_unique<Conv2D>(1, c1, 5, /*padding=*/2));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2D>(2));
  m.add(std::make_unique<Conv2D>(c1, c2, 5, /*padding=*/2));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2D>(2));
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Dense>(c2 * (image / 4) * (image / 4), fc));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(fc, 10));
  return m;
}

Model make_cnn_cifar(double width_scale, std::size_t image) {
  if (image % 4 != 0) throw std::invalid_argument("make_cnn_cifar: image must be divisible by 4");
  const std::size_t c1 = scaled(32, width_scale, 4);
  const std::size_t c2 = scaled(64, width_scale, 4);
  const std::size_t fc = scaled(512, width_scale, 32);
  Model m;
  m.add(std::make_unique<Conv2D>(3, c1, 5, /*padding=*/2));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2D>(2));
  m.add(std::make_unique<Conv2D>(c1, c2, 5, /*padding=*/2));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2D>(2));
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Dense>(c2 * (image / 4) * (image / 4), fc));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(fc, 10));
  return m;
}

Model make_vgg_style(std::size_t image, std::size_t num_classes, double width_scale) {
  if (image % 8 != 0) throw std::invalid_argument("make_vgg_style: image must be divisible by 8");
  const std::size_t c1 = scaled(16, width_scale, 4);
  const std::size_t c2 = scaled(32, width_scale, 4);
  const std::size_t c3 = scaled(64, width_scale, 4);
  const std::size_t fc = scaled(256, width_scale, 32);
  Model m;
  // Block 1
  m.add(std::make_unique<Conv2D>(3, c1, 3, 1));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Conv2D>(c1, c1, 3, 1));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2D>(2));
  // Block 2
  m.add(std::make_unique<Conv2D>(c1, c2, 3, 1));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Conv2D>(c2, c2, 3, 1));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2D>(2));
  // Block 3
  m.add(std::make_unique<Conv2D>(c2, c3, 3, 1));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Conv2D>(c3, c3, 3, 1));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2D>(2));
  // Dense head
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Dense>(c3 * (image / 8) * (image / 8), fc));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(fc, num_classes));
  return m;
}

std::size_t count_parameters(const ModelFactory& factory) {
  return factory().num_parameters();
}

}  // namespace airfedga::ml
