#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/layer.hpp"
#include "ml/loss.hpp"
#include "ml/tensor.hpp"

namespace airfedga::ml {

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
};

/// Unnormalized partial evaluation sums over a row range: loss and correct
/// predictions, each already weighted by the number of rows. Partial sums
/// from disjoint ranges are combined by plain addition in range order, so
/// a sharded evaluation reproduces the serial batch loop bit-for-bit.
struct EvalSums {
  double loss_sum = 0.0;
  double acc_sum = 0.0;
};

/// Sequential model with a softmax cross-entropy head.
///
/// The federated mechanisms treat a model as an opaque flat parameter
/// vector (that is exactly what is transmitted over the air, Eq. 9), so the
/// central API here is `parameters()` / `set_parameters()` round-tripping,
/// plus gradient evaluation at the currently-loaded parameters.
///
/// Allocation discipline: layers reuse their output/gradient buffers, the
/// flat-vector helpers have `_into` variants, and parameter views are
/// cached after the first walk — so once shapes reach steady state, a
/// train_step performs zero heap allocations (gemm_test pins this down).
class Model {
 public:
  Model() = default;

  // Move-only: layers own per-instance caches.
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  void add(std::unique_ptr<Layer> layer);

  /// Re-draws all layer weights from `rng`.
  void init(util::Rng& rng);

  /// Runs the layer stack; the returned reference points at the last
  /// layer's output buffer (valid until the next forward on this model).
  const Tensor& forward(const Tensor& x);

  /// Training mode caches backward state in the layers; eval mode skips all
  /// gradient bookkeeping (train_step/compute_gradient switch to training,
  /// evaluate/evaluate_range to eval, so explicit calls are rarely needed).
  void set_training(bool training);
  [[nodiscard]] bool is_training() const { return training_; }

  [[nodiscard]] std::size_t num_parameters() const;

  /// Flattened copy of all parameter blocks, in layer order.
  [[nodiscard]] std::vector<float> parameters() const;
  /// `parameters()` into a reused vector (no allocation at steady capacity).
  void parameters_into(std::vector<float>& out) const;
  void set_parameters(std::span<const float> flat);

  /// Flattened copy of the accumulated gradients.
  [[nodiscard]] std::vector<float> gradients() const;
  /// `gradients()` into a reused vector (no allocation at steady capacity).
  void gradients_into(std::vector<float>& out) const;
  void zero_grad();

  /// Computes mean loss on (x, y), leaves gradients accumulated in the
  /// layers, and writes the flattened gradient to `grad_out`.
  double compute_gradient(const Tensor& x, std::span<const int> y, std::vector<float>& grad_out);

  /// One plain SGD step (Eq. 4): w <- w - lr * grad(batch). Returns loss.
  double train_step(const Tensor& x, std::span<const int> y, float lr);

  /// Mean loss/accuracy over the full (xs, ys), processed in mini-batches.
  EvalResult evaluate(const Tensor& xs, std::span<const int> ys, std::size_t batch_size = 256);

  /// One evaluation shard: unnormalized loss/accuracy sums over rows
  /// [begin, end) of (xs, ys), computed as a single forward pass. This is
  /// the batch body of `evaluate`, exposed so the driver can spread shards
  /// across training lanes and reduce the sums in fixed shard order with
  /// results identical to the serial loop.
  EvalSums evaluate_range(const Tensor& xs, std::span<const int> ys, std::size_t begin,
                          std::size_t end);

  [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  /// Parameter views walked once and cached (layer buffers are stable).
  const std::vector<ParamView>& views() const;

  std::vector<std::unique_ptr<Layer>> layers_;
  SoftmaxCrossEntropy loss_;
  bool training_ = true;
  mutable std::vector<ParamView> views_;
  mutable std::size_t num_params_ = 0;
  Tensor eval_batch_;  ///< reused row-range buffer for evaluate_range
};

/// Builds fresh model instances; every FL mechanism owns one factory so all
/// workers share one architecture while exchanging flat weight vectors.
using ModelFactory = std::function<Model()>;

/// Extracts rows `indices` of `xs` along dimension 0 (works for 2-D and 4-D).
Tensor gather_rows(const Tensor& xs, std::span<const std::size_t> indices);

/// `gather_rows` into a reused tensor (no allocation at steady capacity).
void gather_rows_into(Tensor& out, const Tensor& xs, std::span<const std::size_t> indices);

/// Checkpointing: writes/reads a flat parameter vector in a small binary
/// format (magic + length + raw floats). `load_parameters` validates the
/// header and length so a truncated or foreign file fails loudly instead
/// of silently corrupting a model.
void save_parameters(const std::string& path, std::span<const float> params);
std::vector<float> load_parameters(const std::string& path);

}  // namespace airfedga::ml
