#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace airfedga::ml {

/// Thread-local bump arena for kernel temporaries (im2col patch matrices,
/// GEMM packing panels, gathered gradient views).
///
/// The training hot path runs the same layer shapes step after step, so the
/// arena only allocates while it grows toward the peak working set of the
/// model being trained; after that every `floats()` call is a pointer bump
/// into an already-owned block and steady-state training performs zero heap
/// allocations (the property gemm_test pins down with an allocation-counting
/// hook).
///
/// Ownership/lifetime rules:
///  * One arena per thread (`tls()`); kernels never share arena memory
///    across threads, so no synchronization is needed and cooperative GEMM
///    helpers pack into their own thread's arena.
///  * Allocations live until the innermost enclosing `Scope` closes; scopes
///    nest (Conv2D's scope inside a Model::forward is fine). Blocks are
///    retained across scopes — closing a scope only rewinds the bump
///    pointer, it never releases memory.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The calling thread's arena.
  static Workspace& tls();

  /// RAII region: on destruction, every allocation made since construction
  /// is rewound (memory stays owned by the arena for reuse).
  class Scope {
   public:
    explicit Scope(Workspace& ws)
        : ws_(ws), block_(ws.current_), used_(ws.current_used()) {}
    ~Scope() { ws_.rewind(block_, used_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace& ws_;
    std::size_t block_;
    std::size_t used_;
  };

  /// Uninitialized buffer of `n` floats, 64-byte-aligned relative to its
  /// block start, valid until the enclosing Scope closes.
  float* floats(std::size_t n);

  /// Total float capacity currently owned (diagnostics/benches).
  [[nodiscard]] std::size_t floats_reserved() const;

  /// Number of block allocations performed so far (diagnostics: stable
  /// once training reaches steady state).
  [[nodiscard]] std::size_t blocks_allocated() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<float[]> mem;
    std::size_t cap = 0;   ///< floats
    std::size_t used = 0;  ///< floats
  };

  [[nodiscard]] std::size_t current_used() const {
    return current_ < blocks_.size() ? blocks_[current_].used : 0;
  }
  void rewind(std::size_t block, std::size_t used);

  static constexpr std::size_t kMinBlockFloats = 1 << 16;  // 256 KiB

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  ///< block new allocations bump into
};

}  // namespace airfedga::ml
