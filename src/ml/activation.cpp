#include "ml/activation.hpp"

#include <stdexcept>

namespace airfedga::ml {

const Tensor& ReLU::forward(const Tensor& x) {
  out_.resize_uninitialized(x.shape());
  const float* px = x.data().data();
  float* py = out_.data().data();
  if (training_) {
    mask_.resize_uninitialized(x.shape());
    float* pm = mask_.data().data();
    for (std::size_t i = 0; i < x.size(); ++i) {
      const bool pos = px[i] > 0.0f;
      pm[i] = pos ? 1.0f : 0.0f;
      py[i] = pos ? px[i] : 0.0f;
    }
  } else {
    for (std::size_t i = 0; i < x.size(); ++i) py[i] = px[i] > 0.0f ? px[i] : 0.0f;
  }
  return out_;
}

const Tensor& ReLU::backward(const Tensor& grad_out) {
  if (!training_) throw std::logic_error("ReLU::backward: requires a training-mode forward");
  if (grad_out.size() != mask_.size())
    throw std::invalid_argument("ReLU::backward: shape mismatch with cached forward");
  dx_.resize_uninitialized(grad_out.shape());
  const float* pg = grad_out.data().data();
  const float* pm = mask_.data().data();
  float* pd = dx_.data().data();
  for (std::size_t i = 0; i < grad_out.size(); ++i) pd[i] = pg[i] * pm[i];
  return dx_;
}

const Tensor& Flatten::forward(const Tensor& x) {
  input_shape_.assign(x.shape().begin(), x.shape().end());
  const std::size_t batch = x.dim(0);
  out_.assign_reshaped(x, {batch, x.size() / batch});
  return out_;
}

const Tensor& Flatten::backward(const Tensor& grad_out) {
  if (input_shape_.empty())
    throw std::logic_error("Flatten::backward called before forward");
  dx_.assign_reshaped(grad_out, input_shape_);
  return dx_;
}

}  // namespace airfedga::ml
