#include "ml/activation.hpp"

#include <stdexcept>

namespace airfedga::ml {

Tensor ReLU::forward(const Tensor& x) {
  mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  const float* px = x.data().data();
  float* pm = mask_.data().data();
  float* py = y.data().data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool pos = px[i] > 0.0f;
    pm[i] = pos ? 1.0f : 0.0f;
    py[i] = pos ? px[i] : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (grad_out.size() != mask_.size())
    throw std::invalid_argument("ReLU::backward: shape mismatch with cached forward");
  Tensor dx(grad_out.shape());
  const float* pg = grad_out.data().data();
  const float* pm = mask_.data().data();
  float* pd = dx.data().data();
  for (std::size_t i = 0; i < grad_out.size(); ++i) pd[i] = pg[i] * pm[i];
  return dx;
}

Tensor Flatten::forward(const Tensor& x) {
  input_shape_ = x.shape();
  const std::size_t batch = x.dim(0);
  return x.reshaped({batch, x.size() / batch});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(input_shape_);
}

}  // namespace airfedga::ml
