#include "ml/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace airfedga::ml {

double SoftmaxCrossEntropy::forward(const Tensor& logits, std::span<const int> labels) {
  if (logits.rank() != 2) throw std::invalid_argument("SoftmaxCrossEntropy: logits must be 2-D");
  const std::size_t batch = logits.dim(0), k = logits.dim(1);
  if (labels.size() != batch)
    throw std::invalid_argument("SoftmaxCrossEntropy: label count != batch size");

  probs_.resize_uninitialized({batch, k});
  labels_.assign(labels.begin(), labels.end());
  double loss = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    const int y = labels[i];
    if (y < 0 || static_cast<std::size_t>(y) >= k)
      throw std::invalid_argument("SoftmaxCrossEntropy: label out of range");
    // Numerically stable log-sum-exp.
    float maxv = logits.at2(i, 0);
    for (std::size_t j = 1; j < k; ++j) maxv = std::max(maxv, logits.at2(i, j));
    double denom = 0.0;
    for (std::size_t j = 0; j < k; ++j) denom += std::exp(static_cast<double>(logits.at2(i, j) - maxv));
    const double log_denom = std::log(denom);
    for (std::size_t j = 0; j < k; ++j)
      probs_.at2(i, j) =
          static_cast<float>(std::exp(static_cast<double>(logits.at2(i, j) - maxv)) / denom);
    loss += -(static_cast<double>(logits.at2(i, static_cast<std::size_t>(y)) - maxv) - log_denom);
  }
  return loss / static_cast<double>(batch);
}

const Tensor& SoftmaxCrossEntropy::backward() {
  if (probs_.size() == 0)
    throw std::logic_error("SoftmaxCrossEntropy::backward called before forward");
  const std::size_t batch = probs_.dim(0), k = probs_.dim(1);
  grad_ = probs_;  // capacity reuse: no allocation in steady state
  const float inv_b = 1.0f / static_cast<float>(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    grad_.at2(i, static_cast<std::size_t>(labels_[i])) -= 1.0f;
    for (std::size_t j = 0; j < k; ++j) grad_.at2(i, j) *= inv_b;
  }
  return grad_;
}

double accuracy(const Tensor& logits, std::span<const int> labels) {
  if (logits.rank() != 2) throw std::invalid_argument("accuracy: logits must be 2-D");
  const std::size_t batch = logits.dim(0), k = logits.dim(1);
  if (labels.size() != batch) throw std::invalid_argument("accuracy: label count != batch");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < batch; ++i) {
    std::size_t arg = 0;
    for (std::size_t j = 1; j < k; ++j)
      if (logits.at2(i, j) > logits.at2(i, arg)) arg = j;
    if (static_cast<int>(arg) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace airfedga::ml
