#include "ml/workspace.hpp"

#include <algorithm>

namespace airfedga::ml {

Workspace& Workspace::tls() {
  thread_local Workspace ws;
  return ws;
}

float* Workspace::floats(std::size_t n) {
  // Round every allocation to 16 floats (64 bytes) so consecutive buffers
  // keep cache-line-relative alignment inside a block.
  n = (n + 15) & ~static_cast<std::size_t>(15);
  while (current_ < blocks_.size() && blocks_[current_].cap - blocks_[current_].used < n)
    ++current_;  // the skipped tail is reclaimed when the scope rewinds
  if (current_ == blocks_.size()) {
    std::size_t cap = std::max(kMinBlockFloats, n);
    if (!blocks_.empty()) cap = std::max(cap, blocks_.back().cap * 2);
    Block b;
    // new float[] (not make_unique) leaves the storage uninitialized: every
    // workspace buffer is fully overwritten by its kernel.
    b.mem.reset(new float[cap]);
    b.cap = cap;
    blocks_.push_back(std::move(b));
  }
  Block& b = blocks_[current_];
  float* p = b.mem.get() + b.used;
  b.used += n;
  return p;
}

std::size_t Workspace::floats_reserved() const {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.cap;
  return total;
}

void Workspace::rewind(std::size_t block, std::size_t used) {
  for (std::size_t i = block + 1; i < blocks_.size(); ++i) blocks_[i].used = 0;
  if (block < blocks_.size()) blocks_[block].used = used;
  current_ = block;
}

}  // namespace airfedga::ml
