#pragma once

#include <cstddef>

namespace airfedga::ml {

/// Operand orientation for `sgemm` (row-major storage throughout).
enum class Trans : unsigned char {
  N,  ///< operand used as stored
  T,  ///< operand used transposed
};

/// Blocking geometry of the packed kernels. Exported so callers can derive
/// parallel grain sizes from panel sizes (instead of guessing) and so tests
/// can aim edge shapes at the tile boundaries.
struct GemmBlocking {
  std::size_t mc;  ///< row-panel height (rows of C per tile)
  std::size_t kc;  ///< depth-panel length (k-extent packed per pass)
  std::size_t nc;  ///< column-panel width (columns of C per tile)
  std::size_t mr;  ///< micro-kernel register-tile rows
  std::size_t nr;  ///< micro-kernel register-tile columns
};

/// The compiled-in blocking constants.
[[nodiscard]] const GemmBlocking& gemm_blocking();

/// C(m,n) = opA(A) · opB(B) + beta·C, row-major, single precision.
///
/// opA(A) is A(m,k): stored (m,k) with row stride `lda` when `ta == N`,
/// stored (k,m) when `ta == T` (likewise for B against (k,n)). `beta` must
/// be 0 (overwrite C) or 1 (accumulate into C) — the only two cases the
/// training step needs. C must not alias A or B.
///
/// Implementation: cache-blocked and register-tiled — A and B are packed
/// into contiguous MCxKC / KCxNC panels per (MCxNC) output tile and an
/// MRxNR micro-kernel accumulates in registers over each KC slice. Every
/// output element's floating-point accumulation order is a fixed function
/// of (m, n, k) alone: the k loop always runs ascending in KC slices and
/// parallelism only ever splits the *output* into disjoint tiles, so any
/// thread count, tile assignment, or cooperative schedule produces
/// bit-identical results.
///
/// Execution policy: when a ThreadPool cooperation scope is installed on
/// the calling thread (Driver training lanes) and the GEMM is large enough
/// (`gemm_coop_min_flops`), idle lanes are recruited through
/// ThreadPool::cooperate; otherwise the tile loop goes through
/// util::parallel_for with a grain derived from the per-tile flop count
/// (which serializes under the nesting rule or on tiny problems).
void sgemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k, const float* a,
           std::size_t lda, const float* b, std::size_t ldb, float beta, float* c,
           std::size_t ldc);

/// Scalar triple-loop reference with the same contract as `sgemm` (the
/// seed's kernel). Used by gemm_test as ground truth and by micro_gemm as
/// the before/after baseline.
void sgemm_reference(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
                     const float* a, std::size_t lda, const float* b, std::size_t ldb, float beta,
                     float* c, std::size_t ldc);

/// Minimum flop count (2·m·n·k) for a GEMM to recruit idle lanes through a
/// cooperation scope. Settable so tests and benches can force cooperation
/// on small problems; the default keeps sub-millisecond GEMMs from paying
/// the enqueue/wakeup cost.
[[nodiscard]] std::size_t gemm_coop_min_flops();
void set_gemm_coop_min_flops(std::size_t flops);

}  // namespace airfedga::ml
