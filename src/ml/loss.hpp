#pragma once

#include <span>

#include "ml/tensor.hpp"

namespace airfedga::ml {

/// Softmax cross-entropy head (Eq. 1-2 of the paper use the same loss).
///
/// `forward` returns the mean negative log-likelihood over the batch;
/// `backward` returns d(mean loss)/d(logits) = (softmax - onehot)/B.
class SoftmaxCrossEntropy {
 public:
  /// logits: (B, K); labels: B class indices in [0, K).
  double forward(const Tensor& logits, std::span<const int> labels);

  /// Gradient w.r.t. the logits of the last `forward` call (internal
  /// buffer, valid until the next backward call).
  const Tensor& backward();

  /// Row-wise softmax probabilities of the last `forward` call.
  [[nodiscard]] const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  Tensor grad_;
  std::vector<int> labels_;
};

/// Fraction of rows whose argmax logit equals the label.
double accuracy(const Tensor& logits, std::span<const int> labels);

}  // namespace airfedga::ml
