#pragma once

#include <cstddef>

#include "ml/model.hpp"

namespace airfedga::ml {

/// Factories for the paper's model architectures (§VI-A1) plus scaled-down
/// variants used by the benchmark harness so the full experiment grid runs
/// on a CPU-only box. `width_scale`/`hidden` parameters are documented per
/// factory; the defaults reproduce the paper's configurations.

/// Paper "LR": fully connected net with two hidden layers of `hidden` units
/// (512 in the paper) on flattened inputs.
Model make_mlp(std::size_t input_dim, std::size_t num_classes, std::size_t hidden = 512);

/// Softmax regression (single dense layer). Convex loss; used by the
/// convergence-bound tests and the quickstart example.
Model make_softmax_regression(std::size_t input_dim, std::size_t num_classes);

/// Paper CNN for MNIST: conv5x5(20) - pool - conv5x5(50) - pool - fc(500) -
/// softmax, on 1x28x28 inputs. `width_scale` in (0,1] shrinks channel/unit
/// counts proportionally (minimum 4 channels / 32 units).
Model make_cnn_mnist(double width_scale = 1.0, std::size_t image = 28);

/// Paper CNN for CIFAR-10: conv5x5(32) - pool - conv5x5(64) - pool -
/// fc(512) - softmax, on 3x32x32 inputs.
Model make_cnn_cifar(double width_scale = 1.0, std::size_t image = 32);

/// VGG-style net for ImageNet-100: three conv3x3 blocks (each two convs +
/// pool) followed by two dense layers. The paper uses the full VGG-16 on
/// 224x224; this keeps the architecture family (stacked 3x3 blocks, deep,
/// dense head) at CPU-tractable size. Defaults: 3x32x32 inputs, 100 classes.
Model make_vgg_style(std::size_t image = 32, std::size_t num_classes = 100,
                     double width_scale = 1.0);

/// Number of parameters for a factory without building workers' replicas.
std::size_t count_parameters(const ModelFactory& factory);

}  // namespace airfedga::ml
