#include "ml/pool.hpp"

#include <limits>
#include <stdexcept>

namespace airfedga::ml {

MaxPool2D::MaxPool2D(std::size_t window) : win_(window) {
  if (window == 0) throw std::invalid_argument("MaxPool2D: window must be >= 1");
}

const Tensor& MaxPool2D::forward(const Tensor& x) {
  if (x.rank() != 4) throw std::invalid_argument("MaxPool2D::forward: expected NCHW input");
  const std::size_t batch = x.dim(0), ch = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (h % win_ != 0 || w % win_ != 0)
    throw std::invalid_argument("MaxPool2D::forward: spatial dims not divisible by window");
  const std::size_t oh = h / win_, ow = w / win_;
  out_.resize_uninitialized({batch, ch, oh, ow});
  if (training_) {
    input_shape_.assign(x.shape().begin(), x.shape().end());
    argmax_.resize(out_.size());
  }
  const float* px = x.data().data();
  float* py = out_.data().data();
  std::size_t out_idx = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const std::size_t base = (n * ch + c) * h * w;
      for (std::size_t oi = 0; oi < oh; ++oi) {
        for (std::size_t oj = 0; oj < ow; ++oj, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t di = 0; di < win_; ++di) {
            for (std::size_t dj = 0; dj < win_; ++dj) {
              const std::size_t idx = base + (oi * win_ + di) * w + (oj * win_ + dj);
              if (px[idx] > best) {
                best = px[idx];
                best_idx = idx;
              }
            }
          }
          py[out_idx] = best;
          if (training_) argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return out_;
}

const Tensor& MaxPool2D::backward(const Tensor& grad_out) {
  if (!training_) throw std::logic_error("MaxPool2D::backward: requires a training-mode forward");
  if (grad_out.size() != argmax_.size())
    throw std::invalid_argument("MaxPool2D::backward: shape mismatch with cached forward");
  dx_.resize_zero(input_shape_);
  float* pd = dx_.data().data();
  const float* pg = grad_out.data().data();
  for (std::size_t i = 0; i < grad_out.size(); ++i) pd[argmax_[i]] += pg[i];
  return dx_;
}

}  // namespace airfedga::ml
