#include "channel/aircomp.hpp"

#include <cmath>
#include <stdexcept>

#include "ml/tensor.hpp"

namespace airfedga::channel {

AirCompChannel::AirCompChannel(Config cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg.sigma0_sq < 0.0) throw std::invalid_argument("AirCompChannel: negative noise power");
}

double transmit_energy(double data_size, double sigma, double gain,
                       std::span<const float> model) {
  if (gain <= 0.0) throw std::invalid_argument("transmit_energy: gain must be > 0");
  const double p = data_size * sigma / gain;
  return p * p * ml::squared_norm(model);
}

AirCompChannel::Output AirCompChannel::aggregate(const Input& in) {
  const std::size_t q = in.w_prev.size();
  const std::size_t m = in.local_models.size();
  if (m == 0) throw std::invalid_argument("AirCompChannel::aggregate: empty group");
  if (in.data_sizes.size() != m || in.gains.size() != m)
    throw std::invalid_argument("AirCompChannel::aggregate: size/gain count mismatch");
  if (!in.csi_scale.empty() && in.csi_scale.size() != m)
    throw std::invalid_argument("AirCompChannel::aggregate: csi_scale count mismatch");
  if (in.sigma <= 0.0 || in.eta <= 0.0)
    throw std::invalid_argument("AirCompChannel::aggregate: sigma and eta must be > 0");
  if (in.total_data <= 0.0)
    throw std::invalid_argument("AirCompChannel::aggregate: total_data must be > 0");
  for (const auto& w : in.local_models)
    if (w.size() != q)
      throw std::invalid_argument("AirCompChannel::aggregate: model dimension mismatch");

  Output out;
  out.energies.resize(m);

  double group_data = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    group_data += in.data_sizes[i];
    out.energies[i] = transmit_energy(in.data_sizes[i], in.sigma, in.gains[i],
                                      in.local_models[i]);
  }
  out.beta = group_data / in.total_data;

  // Received superposition y_t = sum_i d_i sigma w_i + z (Eq. 9), followed
  // by the PS estimate (Eq. 10). Accumulate in double for q up to millions.
  std::vector<double> y(q, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    // Imperfect CSI leaves the residual h/h_hat on worker i's contribution
    // (pre-equalization divides by h_hat, the channel multiplies by h).
    // The empty-vector fast path keeps perfect-CSI arithmetic untouched.
    const double scale = in.csi_scale.empty()
                             ? in.data_sizes[i] * in.sigma
                             : in.data_sizes[i] * in.sigma * in.csi_scale[i];
    const float* w = in.local_models[i].data();
    for (std::size_t d = 0; d < q; ++d) y[d] += scale * w[d];
  }
  const double noise_std = q > 0 ? std::sqrt(cfg_.sigma0_sq / static_cast<double>(q)) : 0.0;
  double noise_energy = 0.0;
  if (noise_std > 0.0) {
    for (std::size_t d = 0; d < q; ++d) {
      const double z = rng_.normal(0.0, noise_std);
      noise_energy += z * z;
      y[d] += z;
    }
  }
  out.noise_energy = noise_energy;

  const double denom = in.total_data * std::sqrt(in.eta);
  const double keep = 1.0 - out.beta;
  out.w_next.resize(q);
  for (std::size_t d = 0; d < q; ++d)
    out.w_next[d] = static_cast<float>(keep * in.w_prev[d] + y[d] / denom);
  return out;
}

std::vector<float> AirCompChannel::ideal_aggregate(
    std::span<const float> w_prev, const std::vector<std::span<const float>>& local_models,
    const std::vector<double>& data_sizes, double total_data) {
  const std::size_t q = w_prev.size();
  const std::size_t m = local_models.size();
  if (data_sizes.size() != m)
    throw std::invalid_argument("ideal_aggregate: size count mismatch");
  double beta = 0.0;
  for (double d : data_sizes) beta += d / total_data;
  std::vector<double> acc(q, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double alpha = data_sizes[i] / total_data;
    const float* w = local_models[i].data();
    for (std::size_t d = 0; d < q; ++d) acc[d] += alpha * w[d];
  }
  std::vector<float> out(q);
  for (std::size_t d = 0; d < q; ++d)
    out[d] = static_cast<float>((1.0 - beta) * w_prev[d] + acc[d]);
  return out;
}

}  // namespace airfedga::channel
