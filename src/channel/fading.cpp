#include "channel/fading.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace airfedga::channel {

FadingChannel::FadingChannel(std::size_t num_workers, Config cfg) : n_(num_workers), cfg_(cfg) {
  if (num_workers == 0) throw std::invalid_argument("FadingChannel: zero workers");
  if (cfg.rayleigh_scale <= 0.0) throw std::invalid_argument("FadingChannel: scale must be > 0");
  if (cfg.min_gain < 0.0) throw std::invalid_argument("FadingChannel: min_gain must be >= 0");
  if (cfg.pathloss_exponent < 0.0)
    throw std::invalid_argument("FadingChannel: path-loss exponent must be >= 0");
  if (cfg.pathloss_exponent > 0.0 &&
      (cfg.distance_min <= 0.0 || cfg.distance_max < cfg.distance_min))
    throw std::invalid_argument("FadingChannel: bad distance range");

  large_scale_.assign(n_, 1.0);
  if (cfg.pathloss_exponent > 0.0) {
    util::Rng rng = util::Rng(cfg.seed).fork(0xD157);
    for (auto& s : large_scale_) {
      const double dist = rng.uniform(cfg.distance_min, cfg.distance_max);
      s = std::pow(dist, -cfg.pathloss_exponent / 2.0);
    }
  }
}

std::vector<double> FadingChannel::gains(std::size_t round) const {
  // One deterministic sub-stream per round keeps the block-fading property
  // (constant within a round) without storing any history.
  util::Rng rng = util::Rng(cfg_.seed).fork(0xC0FFEE + round);
  std::vector<double> h(n_);
  for (std::size_t i = 0; i < n_; ++i)
    h[i] = std::max(cfg_.min_gain, large_scale_[i] * rng.rayleigh(cfg_.rayleigh_scale));
  return h;
}

double FadingChannel::gain(std::size_t worker, std::size_t round) const {
  if (worker >= n_) throw std::out_of_range("FadingChannel::gain: worker out of range");
  return gains(round)[worker];
}

}  // namespace airfedga::channel
