#include "channel/latency.hpp"

#include <cmath>
#include <stdexcept>

namespace airfedga::channel {

LatencyModel::LatencyModel(LatencyConfig cfg) : cfg_(cfg) {
  if (cfg.sub_channels == 0) throw std::invalid_argument("LatencyModel: zero sub-channels");
  if (cfg.symbol_seconds <= 0.0) throw std::invalid_argument("LatencyModel: bad symbol time");
  if (cfg.oma_rate_bps <= 0.0) throw std::invalid_argument("LatencyModel: bad OMA rate");
  if (cfg.bits_per_param <= 0.0) throw std::invalid_argument("LatencyModel: bad bits/param");
}

double LatencyModel::aircomp_upload_seconds(std::size_t q) const {
  const double symbols = std::ceil(static_cast<double>(q) /
                                   static_cast<double>(cfg_.sub_channels));
  return symbols * cfg_.symbol_seconds;
}

double LatencyModel::oma_upload_seconds(std::size_t q, std::size_t uploaders) const {
  const double per_worker =
      static_cast<double>(q) * cfg_.bits_per_param / cfg_.oma_rate_bps;
  return per_worker * static_cast<double>(uploaders);
}

}  // namespace airfedga::channel
