#pragma once

#include <cstddef>

namespace airfedga::channel {

/// Uplink latency model for both access schemes (paper §V-A).
///
/// AirComp (analog NOMA): all group members transmit concurrently; the
/// aggregation takes L_u = ceil(q / R) * L_s seconds (Eq. 33) regardless of
/// how many workers participate — that is the whole point of AirComp.
///
/// OMA (TDMA): uploads are serialized; each worker needs
/// q * bits_per_param / rate seconds, and a round with n uploaders pays n
/// times that. This is the linear-in-N scaling the paper's Fig. 10 shows
/// for FedAvg/TiFL.
/// Note on OMA multiplexing: the paper cites both TDMA and OFDMA baselines
/// ([5]-[9]). With equal model payloads the two are duration-equivalent —
/// serializing n uploads at full rate takes exactly as long as n parallel
/// uploads at rate/n — so a single `oma_upload_seconds` covers both, and
/// the linear-in-n scaling (the property Fig. 10 probes) is inherent to
/// orthogonal access, not to the schedule.
struct LatencyConfig {
  std::size_t sub_channels = 1024;      ///< R
  double symbol_seconds = 71.4e-6;      ///< L_s (LTE OFDM symbol duration)
  double oma_rate_bps = 1.0e6;          ///< B * spectral efficiency (B = 1 MHz)
  double bits_per_param = 32.0;
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyConfig cfg = {});

  /// L_u for a model with q parameters (Eq. 33). Independent of group size.
  [[nodiscard]] double aircomp_upload_seconds(std::size_t q) const;

  /// Serialized OMA upload time for `uploaders` workers sending q params each.
  [[nodiscard]] double oma_upload_seconds(std::size_t q, std::size_t uploaders) const;

  [[nodiscard]] const LatencyConfig& config() const { return cfg_; }

 private:
  LatencyConfig cfg_;
};

}  // namespace airfedga::channel
