#pragma once

#include <span>
#include <vector>

#include "util/rng.hpp"

namespace airfedga::channel {

/// Over-the-air model aggregation over a noisy fading MAC (paper §III-B4).
///
/// Participating workers pre-equalize their transmissions with
/// p_i_t = d_i * sigma_t / h_i_t (Eq. 6), so the superimposed received
/// signal is y_t = sum_i d_i sigma_t w_i_t + z_t (Eq. 9). The PS estimate
/// of the global model is
///   w_t = (1 - beta_jt) w_{t-1} + y_t / (D sqrt(eta_t))     (Eq. 10).
///
/// Noise convention: the paper's error term C_t (Eq. 30) charges the noise
/// sigma0^2 / (D_jt^2 eta_t) once per aggregation, i.e. sigma0^2 is the
/// *total* AWGN energy of the vector z_t. We therefore draw z_t with
/// per-component variance sigma0^2 / q, making E||z_t||^2 = sigma0^2 for
/// any model dimension q.
class AirCompChannel {
 public:
  struct Config {
    double sigma0_sq = 1.0;  ///< total AWGN energy per aggregation (W)
    std::uint64_t seed = 11;
  };

  explicit AirCompChannel(Config cfg);

  struct Input {
    std::span<const float> w_prev;                   ///< w_{t-1}
    std::vector<std::span<const float>> local_models;  ///< w^i_t, group order
    std::vector<double> data_sizes;                  ///< d_i
    std::vector<double> gains;                       ///< h^i_t as estimated by the PS
    /// Per-worker CSI mismatch factors h / h_hat applied to the received
    /// superposition: the worker pre-equalizes against the PS estimate
    /// h_hat, but the physical channel applies the true h, leaving the
    /// residual factor on its contribution. Empty = perfect CSI (bit-exact
    /// classic path). Transmit energies are unaffected — the worker spends
    /// power according to its (mis)estimate.
    std::vector<double> csi_scale;
    double sigma = 1.0;                              ///< power scaling sigma_t
    double eta = 1.0;                                ///< denoising factor eta_t
    double total_data = 1.0;                         ///< D
  };

  struct Output {
    std::vector<float> w_next;       ///< PS estimate w_t (Eq. 10)
    std::vector<double> energies;    ///< per-worker E^i_t (Eq. 7)
    double noise_energy = 0.0;       ///< ||z_t||^2 actually drawn
    double beta = 0.0;               ///< beta_jt = D_jt / D
  };

  /// Performs one over-the-air aggregation round.
  Output aggregate(const Input& in);

  /// Error-free ideal aggregation (Eq. 8); used by the OMA mechanisms and
  /// by tests as ground truth.
  static std::vector<float> ideal_aggregate(std::span<const float> w_prev,
                                            const std::vector<std::span<const float>>& local_models,
                                            const std::vector<double>& data_sizes,
                                            double total_data);

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  util::Rng rng_;
};

/// Transmission energy of one worker for one aggregation (Eq. 7):
/// E = || p w ||^2 = (d * sigma / h)^2 * ||w||^2.
double transmit_energy(double data_size, double sigma, double gain,
                       std::span<const float> model);

}  // namespace airfedga::channel
