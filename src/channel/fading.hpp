#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace airfedga::channel {

/// Block-fading wireless channel between each worker and the parameter
/// server: the gain h_i_t is constant within a communication round and
/// redrawn independently across rounds (paper §III-B4).
///
/// Gains are Rayleigh-distributed magnitudes (the standard rich-scattering
/// model) truncated below at `min_gain`: a worker in a deep fade would
/// otherwise force the common power scaling factor sigma_t towards zero
/// (Eq. 47) and blow up the denoising error. The paper does not model
/// deep-fade exclusion, so we truncate — the same practical fix used in the
/// AirComp literature it builds on.
class FadingChannel {
 public:
  struct Config {
    double rayleigh_scale = 0.7979;  ///< E[h] = scale * sqrt(pi/2) ~= 1.0
    double min_gain = 0.15;
    std::uint64_t seed = 7;

    /// Optional large-scale path loss: when `pathloss_exponent > 0`,
    /// worker i sits at a distance drawn from U[distance_min, distance_max]
    /// (relative units, 1 = reference distance) and its fading scale is
    /// multiplied by distance^(-pathloss_exponent/2), i.e. its *average*
    /// gain decays with distance as in the standard log-distance model.
    /// Distances are fixed for the lifetime of the channel (devices do not
    /// move between rounds). Default 0 = the paper's homogeneous setting.
    double pathloss_exponent = 0.0;
    double distance_min = 0.5;
    double distance_max = 2.0;
  };

  FadingChannel(std::size_t num_workers, Config cfg);

  /// Per-worker average-gain multipliers from the path-loss model (all 1.0
  /// when path loss is disabled).
  [[nodiscard]] const std::vector<double>& large_scale() const { return large_scale_; }

  /// Gains for all workers at the given round. Deterministic per
  /// (seed, round): repeated calls return identical vectors.
  [[nodiscard]] std::vector<double> gains(std::size_t round) const;

  /// Gain of a single worker at a round.
  [[nodiscard]] double gain(std::size_t worker, std::size_t round) const;

  [[nodiscard]] std::size_t num_workers() const { return n_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  std::size_t n_;
  Config cfg_;
  std::vector<double> large_scale_;
};

}  // namespace airfedga::channel
