#include "scenario/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace airfedga::scenario {

Json::Json(double v) : type_(Type::Number), number_(v) {
  if (!std::isfinite(v))
    throw std::invalid_argument("Json: numbers must be finite (got NaN or infinity)");
}

const char* Json::type_name(Type t) {
  switch (t) {
    case Type::Null: return "null";
    case Type::Bool: return "bool";
    case Type::Number: return "number";
    case Type::String: return "string";
    case Type::Array: return "array";
    case Type::Object: return "object";
  }
  return "?";
}

namespace {
[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  throw std::runtime_error(std::string("Json: expected ") + wanted + ", value is " +
                           Json::type_name(got));
}
}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::Bool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) type_error("number", type_);
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::Array) type_error("array", type_);
  return array_;
}

Json::Array& Json::as_array() {
  if (type_ != Type::Array) type_error("array", type_);
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::Object) type_error("object", type_);
  return object_;
}

Json::Object& Json::as_object() {
  if (type_ != Type::Object) type_error("object", type_);
  return object_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

Json* Json::find(std::string_view key) {
  if (type_ != Type::Object) return nullptr;
  for (auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  if (type_ != Type::Object) type_error("object", type_);
  if (const Json* v = find(key)) return *v;
  throw std::runtime_error("Json: missing key \"" + std::string(key) + "\"");
}

void Json::set(std::string key, Json value) {
  if (type_ != Type::Object) type_error("object", type_);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  if (type_ != Type::Array) type_error("array", type_);
  array_.push_back(std::move(value));
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == other.bool_;
    case Type::Number: return number_ == other.number_;
    case Type::String: return string_ == other.string_;
    case Type::Array: return array_ == other.array_;
    case Type::Object: return object_ == other.object_;
  }
  return false;
}

// ------------------------------------------------------------------ parse --

namespace {

/// Recursive-descent parser over the whole document, tracking line/column
/// for error reporting. Depth is bounded to keep adversarial inputs from
/// overflowing the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("unexpected trailing content after JSON document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError(message, line_, column_);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_whitespace() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      advance();
    }
  }

  void expect(char c, const char* context) {
    skip_whitespace();
    if (eof()) fail(std::string("unexpected end of input, expected '") + c + "' " + context);
    if (peek() != c)
      fail(std::string("expected '") + c + "' " + context + ", got '" + peek() + "'");
    advance();
  }

  Json parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting deeper than 256 levels");
    skip_whitespace();
    if (eof()) fail("unexpected end of input, expected a JSON value");
    Json out;
    switch (peek()) {
      case '{': out = parse_object(); break;
      case '[': out = parse_array(); break;
      case '"': out = Json(parse_string("string")); break;
      case 't': parse_literal("true"); out = Json(true); break;
      case 'f': parse_literal("false"); out = Json(false); break;
      case 'n': parse_literal("null"); out = Json(nullptr); break;
      default: out = parse_number(); break;
    }
    --depth_;
    return out;
  }

  void parse_literal(std::string_view lit) {
    for (char c : lit) {
      if (eof() || peek() != c)
        fail("invalid literal, expected \"" + std::string(lit) + "\"");
      advance();
    }
  }

  Json parse_object() {
    advance();  // '{'
    Json::Object members;
    skip_whitespace();
    if (!eof() && peek() == '}') {
      advance();
      return Json(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (eof()) fail("unexpected end of input inside object");
      if (peek() != '"') fail("expected '\"' to start an object key");
      std::string key = parse_string("object key");
      for (const auto& [k, v] : members)
        if (k == key) fail("duplicate object key \"" + key + "\"");
      expect(':', "after object key");
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (eof()) fail("unexpected end of input inside object");
      const char c = advance();
      if (c == '}') break;
      if (c != ',') fail(std::string("expected ',' or '}' in object, got '") + c + "'");
    }
    return Json(std::move(members));
  }

  Json parse_array() {
    advance();  // '['
    Json::Array items;
    skip_whitespace();
    if (!eof() && peek() == ']') {
      advance();
      return Json(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      if (eof()) fail("unexpected end of input inside array");
      const char c = advance();
      if (c == ']') break;
      if (c != ',') fail(std::string("expected ',' or ']' in array, got '") + c + "'");
    }
    return Json(std::move(items));
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("unexpected end of input inside \\u escape");
      const char c = advance();
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail(std::string("invalid hex digit '") + c + "' in \\u escape");
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string(const char* what) {
    advance();  // opening quote
    std::string out;
    while (true) {
      if (eof()) fail(std::string("unterminated ") + what);
      const char c = advance();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20)
        fail(std::string("unescaped control character in ") + what);
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail(std::string("unterminated escape in ") + what);
      const char e = advance();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
            if (eof() || peek() != '\\') fail("high surrogate not followed by \\u escape");
            advance();
            if (eof() || peek() != 'u') fail("high surrogate not followed by \\u escape");
            advance();
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF)
              fail("invalid low surrogate in \\u escape pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate in \\u escape");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail(std::string("invalid escape character '\\") + e + "'");
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') advance();
    if (eof() || peek() < '0' || peek() > '9')
      fail("invalid character, expected a JSON value");
    if (peek() == '0') {
      advance();
      if (!eof() && peek() >= '0' && peek() <= '9')
        fail("numbers may not have leading zeros");
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!eof() && peek() == '.') {
      advance();
      if (eof() || peek() < '0' || peek() > '9') fail("expected digits after decimal point");
      while (!eof() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      advance();
      if (!eof() && (peek() == '+' || peek() == '-')) advance();
      if (eof() || peek() < '0' || peek() > '9') fail("expected digits in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') advance();
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc::result_out_of_range || !std::isfinite(value))
      fail("number out of double range: \"" + std::string(token) + "\"");
    if (ec != std::errc() || ptr != token.data() + token.size())
      fail("invalid number \"" + std::string(token) + "\"");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).run(); }

// ------------------------------------------------------------------- dump --

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double v) {
  // Integers up to 2^53 print without an exponent or trailing ".0" so that
  // seeds/counts look like integers in dumped scenarios; everything else
  // uses the shortest round-tripping form.
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 9.007199254740992e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: dump_number(out, number_); break;
    case Type::String: dump_string(out, string_); break;
    case Type::Array: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        first = false;
        newline_pad(depth + 1);
        dump_string(out, k);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace airfedga::scenario
