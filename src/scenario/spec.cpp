#include "scenario/spec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "data/partition.hpp"
#include "ml/activation.hpp"
#include "ml/dense.hpp"
#include "ml/zoo.hpp"
#include "sim/substrate.hpp"

namespace airfedga::scenario {

namespace {

// ------------------------------------------------------- mechanism tables --

const std::vector<std::string> kDatasetKinds = {"mnist_like", "mnist_image_like",
                                                "cifar10_like", "imagenet100_like"};
const std::vector<std::string> kModelKinds = {"mlp", "mlp1", "softmax", "cnn_mnist",
                                              "cnn_cifar", "vgg_style"};
const std::vector<std::string> kPartitionKinds = {"label_skew", "iid", "dirichlet"};

/// The mechanism registry: one row per kind, holding the display name and
/// a factory over the uniform fl::MechanismConfig. Adding a mechanism is
/// one row here (plus its validate() knob checks) — no per-call-site
/// constructor wiring.
template <typename M>
std::unique_ptr<fl::Mechanism> make_mechanism(const fl::MechanismConfig& mc) {
  return std::make_unique<M>(mc);
}

struct MechanismKindEntry {
  const char* kind;
  const char* display;
  std::unique_ptr<fl::Mechanism> (*factory)(const fl::MechanismConfig&);
};

constexpr MechanismKindEntry kMechanismTable[] = {
    {"fedavg", "FedAvg", &make_mechanism<fl::FedAvg>},
    {"airfedavg", "Air-FedAvg", &make_mechanism<fl::AirFedAvg>},
    {"dynamic", "Dynamic", &make_mechanism<fl::DynamicAirComp>},
    {"tifl", "TiFL", &make_mechanism<fl::TiFL>},
    {"fedasync", "FedAsync", &make_mechanism<fl::FedAsync>},
    {"semiasync", "Semi-Async", &make_mechanism<fl::SemiAsync>},
    {"airfedga", "Air-FedGA", &make_mechanism<fl::AirFedGA>},
};

const MechanismKindEntry* find_mechanism_kind(const std::string& kind) {
  for (const auto& entry : kMechanismTable)
    if (kind == entry.kind) return &entry;
  return nullptr;
}

const std::vector<std::string> kMechanismKinds = [] {
  std::vector<std::string> kinds;
  for (const auto& entry : kMechanismTable) kinds.emplace_back(entry.kind);
  return kinds;
}();

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) out += (i ? ", " : "") + v[i];
  return out;
}

bool known(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

/// Input shape and class count of each dataset generator, used to check
/// model/dataset pairing at validate() time instead of deep inside the ML
/// layer at run time.
struct DatasetShape {
  std::size_t flat_dim;  ///< C*H*W (or D for flat datasets)
  std::size_t image;     ///< H (= W) for image datasets, 0 for flat ones
  std::size_t classes;
};

DatasetShape dataset_shape(const std::string& kind) {
  if (kind == "mnist_like") return {784, 0, 10};
  if (kind == "mnist_image_like") return {1 * 28 * 28, 28, 10};
  if (kind == "cifar10_like") return {3 * 16 * 16, 16, 10};
  if (kind == "imagenet100_like") return {3 * 16 * 16, 16, 100};
  throw std::invalid_argument("dataset.kind: unknown kind \"" + kind + "\" (one of: " +
                              join(kDatasetKinds) + ")");
}

// -------------------------------------------------------------- json read --

/// Reads one JSON object strictly: typed field getters with path-prefixed
/// error messages, and a final check that every present key was consumed
/// (so a typoed knob fails loudly instead of silently keeping a default).
class Reader {
 public:
  Reader(const Json& j, std::string path) : path_(std::move(path)) {
    if (!j.is_object())
      throw std::invalid_argument(path_ + ": expected an object, got " +
                                  Json::type_name(j.type()));
    obj_ = &j.as_object();
    consumed_.assign(obj_->size(), false);
  }

  void number(const char* key, double& out) {
    if (const Json* v = take(key)) out = expect_number(key, *v);
  }

  void count(const char* key, std::size_t& out) {
    if (const Json* v = take(key)) out = expect_count(key, *v);
  }

  void u64(const char* key, std::uint64_t& out) {
    if (const Json* v = take(key)) out = static_cast<std::uint64_t>(expect_count(key, *v));
  }

  void boolean(const char* key, bool& out) {
    if (const Json* v = take(key)) {
      if (!v->is_bool())
        throw std::invalid_argument(field(key) + ": expected a boolean, got " +
                                    Json::type_name(v->type()));
      out = v->as_bool();
    }
  }

  void str(const char* key, std::string& out) {
    if (const Json* v = take(key)) {
      if (!v->is_string())
        throw std::invalid_argument(field(key) + ": expected a string, got " +
                                    Json::type_name(v->type()));
      out = v->as_string();
    }
  }

  /// The raw member, marking it consumed; nullptr when absent.
  const Json* take(const char* key) {
    for (std::size_t i = 0; i < obj_->size(); ++i) {
      if ((*obj_)[i].first == key) {
        consumed_[i] = true;
        return &(*obj_)[i].second;
      }
    }
    return nullptr;
  }

  /// Call last: rejects any key that was present but never taken.
  void finish() {
    for (std::size_t i = 0; i < obj_->size(); ++i)
      if (!consumed_[i])
        throw std::invalid_argument(field((*obj_)[i].first.c_str()) + ": unknown key");
  }

  [[nodiscard]] std::string field(const char* key) const {
    return path_.empty() ? std::string(key) : path_ + "." + key;
  }

 private:
  double expect_number(const char* key, const Json& v) const {
    if (!v.is_number())
      throw std::invalid_argument(field(key) + ": expected a number, got " +
                                  Json::type_name(v.type()));
    return v.as_number();
  }

  std::size_t expect_count(const char* key, const Json& v) const {
    const double d = expect_number(key, v);
    if (d < 0 || d != std::floor(d) || d > 9.007199254740992e15)
      throw std::invalid_argument(field(key) + ": expected a non-negative integer, got " +
                                  v.dump());
    return static_cast<std::size_t>(d);
  }

  const Json::Object* obj_;
  std::string path_;
  std::vector<bool> consumed_;
};

Reader sub(Reader& parent, const char* key) {
  const Json* v = parent.take(key);
  if (v == nullptr)
    throw std::invalid_argument(parent.field(key) + ": internal error, absent subobject");
  return Reader(*v, parent.field(key));
}

}  // namespace

// --------------------------------------------------------------- to_json --

Json ScenarioSpec::to_json() const {
  Json j = Json::object();
  j.set("name", name);
  j.set("description", description);

  Json ds = Json::object();
  ds.set("kind", dataset.kind);
  ds.set("train_samples", dataset.train_samples);
  ds.set("test_samples", dataset.test_samples);
  ds.set("seed", dataset.seed);
  j.set("dataset", std::move(ds));

  Json mo = Json::object();
  mo.set("kind", model.kind);
  if (model.kind == "mlp" || model.kind == "mlp1" || model.kind == "softmax") {
    mo.set("input_dim", model.input_dim);
    mo.set("num_classes", model.num_classes);
    if (model.kind != "softmax") mo.set("hidden", model.hidden);
  } else {
    mo.set("width_scale", model.width_scale);
    mo.set("image", model.image);
    if (model.kind == "vgg_style") mo.set("num_classes", model.num_classes);
  }
  j.set("model", std::move(mo));

  Json pa = Json::object();
  pa.set("kind", partition.kind);
  pa.set("workers", partition.workers);
  pa.set("shards", partition.shards);
  if (partition.kind == "dirichlet") pa.set("alpha", partition.alpha);
  j.set("partition", std::move(pa));

  Json tr = Json::object();
  tr.set("learning_rate", learning_rate);
  tr.set("local_steps", local_steps);
  tr.set("batch_size", batch_size);
  j.set("train", std::move(tr));

  Json cl = Json::object();
  cl.set("base_seconds", cluster.base_seconds);
  cl.set("kappa_min", cluster.kappa_min);
  cl.set("kappa_max", cluster.kappa_max);
  j.set("cluster", std::move(cl));

  Json la = Json::object();
  la.set("sub_channels", latency.sub_channels);
  la.set("symbol_seconds", latency.symbol_seconds);
  la.set("oma_rate_bps", latency.oma_rate_bps);
  la.set("bits_per_param", latency.bits_per_param);
  j.set("latency", std::move(la));

  Json fa = Json::object();
  fa.set("rayleigh_scale", fading.rayleigh_scale);
  fa.set("min_gain", fading.min_gain);
  fa.set("pathloss_exponent", fading.pathloss_exponent);
  fa.set("distance_min", fading.distance_min);
  fa.set("distance_max", fading.distance_max);
  j.set("fading", std::move(fa));

  Json ac = Json::object();
  ac.set("sigma0_sq", aircomp.sigma0_sq);
  j.set("aircomp", std::move(ac));

  {
    // Which knob pairs apply depends on the kind, mirroring ModelSpec. An
    // unparseable kind (validate() rejects it later) serializes every knob
    // so nothing is lost across a dump/reload of the bad spec.
    sim::SubstrateOptions opts;
    try {
      sim::set_substrate_kind(opts, substrate.kind);
    } catch (const std::invalid_argument&) {
      opts.churn = opts.energy = opts.csi_error = true;
    }
    Json su = Json::object();
    su.set("kind", substrate.kind);
    if (opts.churn) {
      su.set("churn_period", substrate.churn_period);
      su.set("churn_on_fraction", substrate.churn_on_fraction);
    }
    if (opts.energy) {
      su.set("energy_budget", substrate.energy_budget);
      su.set("energy_oma_upload", substrate.energy_oma_upload);
    }
    if (opts.csi_error) su.set("csi_error_std", substrate.csi_error_std);
    j.set("substrate", std::move(su));
  }

  j.set("energy_cap", energy_cap);

  Json ru = Json::object();
  ru.set("time_budget", time_budget);
  ru.set("max_rounds", max_rounds);
  ru.set("eval_every", eval_every);
  ru.set("eval_samples", eval_samples);
  ru.set("eval_batch", eval_batch);
  ru.set("stop_at_accuracy", stop_at_accuracy);
  ru.set("seed", seed);
  ru.set("threads", threads);
  ru.set("cooperative_gemm", cooperative_gemm);
  ru.set("worker_state", worker_state);
  ru.set("event_queue", event_queue);
  ru.set("cohort_size", cohort_size);
  ru.set("trace", trace);
  j.set("run", std::move(ru));

  Json mechs = Json::array();
  for (const auto& m : mechanisms) {
    Json mj = Json::object();
    mj.set("kind", m.kind);
    if (m.kind == "dynamic") mj.set("selection_quantile", m.selection_quantile);
    if (m.kind == "tifl") mj.set("tiers", m.tiers);
    if (m.kind == "fedasync") {
      mj.set("mixing", m.mixing);
      mj.set("damping", m.damping);
    }
    if (m.kind == "semiasync") {
      mj.set("mixing", m.mixing);
      mj.set("damping", m.damping);
      mj.set("aggregate_count", m.aggregate_count);
      mj.set("staleness_bound", m.staleness_bound);
      mj.set("damping_schedule", m.damping_schedule);
    }
    if (m.kind == "airfedga") {
      mj.set("xi", m.xi);
      mj.set("refine_passes", m.refine_passes);
      mj.set("staleness_damping", m.staleness_damping);
    }
    mechs.push_back(std::move(mj));
  }
  j.set("mechanisms", std::move(mechs));
  return j;
}

// ------------------------------------------------------------- from_json --

ScenarioSpec ScenarioSpec::from_json(const Json& j) {
  ScenarioSpec s;
  Reader r(j, "");
  r.str("name", s.name);
  r.str("description", s.description);

  if (j.contains("dataset")) {
    Reader d = sub(r, "dataset");
    d.str("kind", s.dataset.kind);
    d.count("train_samples", s.dataset.train_samples);
    d.count("test_samples", s.dataset.test_samples);
    d.u64("seed", s.dataset.seed);
    d.finish();
  }

  if (j.contains("model")) {
    Reader m = sub(r, "model");
    m.str("kind", s.model.kind);
    m.count("input_dim", s.model.input_dim);
    m.count("num_classes", s.model.num_classes);
    m.count("hidden", s.model.hidden);
    m.number("width_scale", s.model.width_scale);
    m.count("image", s.model.image);
    m.finish();
  }

  if (j.contains("partition")) {
    Reader p = sub(r, "partition");
    p.str("kind", s.partition.kind);
    p.count("workers", s.partition.workers);
    p.count("shards", s.partition.shards);
    p.number("alpha", s.partition.alpha);
    p.finish();
  }

  if (j.contains("train")) {
    Reader t = sub(r, "train");
    t.number("learning_rate", s.learning_rate);
    t.count("local_steps", s.local_steps);
    t.count("batch_size", s.batch_size);
    t.finish();
  }

  if (j.contains("cluster")) {
    Reader c = sub(r, "cluster");
    c.number("base_seconds", s.cluster.base_seconds);
    c.number("kappa_min", s.cluster.kappa_min);
    c.number("kappa_max", s.cluster.kappa_max);
    c.finish();
  }

  if (j.contains("latency")) {
    Reader l = sub(r, "latency");
    l.count("sub_channels", s.latency.sub_channels);
    l.number("symbol_seconds", s.latency.symbol_seconds);
    l.number("oma_rate_bps", s.latency.oma_rate_bps);
    l.number("bits_per_param", s.latency.bits_per_param);
    l.finish();
  }

  if (j.contains("fading")) {
    Reader f = sub(r, "fading");
    f.number("rayleigh_scale", s.fading.rayleigh_scale);
    f.number("min_gain", s.fading.min_gain);
    f.number("pathloss_exponent", s.fading.pathloss_exponent);
    f.number("distance_min", s.fading.distance_min);
    f.number("distance_max", s.fading.distance_max);
    f.finish();
  }

  if (j.contains("aircomp")) {
    Reader a = sub(r, "aircomp");
    a.number("sigma0_sq", s.aircomp.sigma0_sq);
    a.finish();
  }

  if (j.contains("substrate")) {
    Reader su = sub(r, "substrate");
    su.str("kind", s.substrate.kind);
    su.number("churn_period", s.substrate.churn_period);
    su.number("churn_on_fraction", s.substrate.churn_on_fraction);
    su.number("energy_budget", s.substrate.energy_budget);
    su.number("energy_oma_upload", s.substrate.energy_oma_upload);
    su.number("csi_error_std", s.substrate.csi_error_std);
    su.finish();
  }

  r.number("energy_cap", s.energy_cap);

  if (j.contains("run")) {
    Reader u = sub(r, "run");
    u.number("time_budget", s.time_budget);
    u.count("max_rounds", s.max_rounds);
    u.count("eval_every", s.eval_every);
    u.count("eval_samples", s.eval_samples);
    u.count("eval_batch", s.eval_batch);
    u.number("stop_at_accuracy", s.stop_at_accuracy);
    u.u64("seed", s.seed);
    u.count("threads", s.threads);
    u.boolean("cooperative_gemm", s.cooperative_gemm);
    u.str("worker_state", s.worker_state);
    u.str("event_queue", s.event_queue);
    u.count("cohort_size", s.cohort_size);
    u.boolean("trace", s.trace);
    u.finish();
  }

  if (const Json* mechs = r.take("mechanisms")) {
    if (!mechs->is_array())
      throw std::invalid_argument(std::string("mechanisms: expected an array, got ") +
                                  Json::type_name(mechs->type()));
    for (std::size_t i = 0; i < mechs->as_array().size(); ++i) {
      const std::string path = "mechanisms[" + std::to_string(i) + "]";
      Reader m((*mechs).as_array()[i], path);
      MechanismSpec ms;
      m.str("kind", ms.kind);
      m.number("selection_quantile", ms.selection_quantile);
      m.count("tiers", ms.tiers);
      m.number("mixing", ms.mixing);
      m.number("damping", ms.damping);
      m.count("aggregate_count", ms.aggregate_count);
      m.count("staleness_bound", ms.staleness_bound);
      m.str("damping_schedule", ms.damping_schedule);
      m.number("xi", ms.xi);
      m.count("refine_passes", ms.refine_passes);
      m.number("staleness_damping", ms.staleness_damping);
      m.finish();
      s.mechanisms.push_back(ms);
    }
  }

  r.finish();
  return s;
}

// -------------------------------------------------------------- validate --

void ScenarioSpec::validate() const {
  auto bad = [](const std::string& message) { throw std::invalid_argument(message); };

  if (name.empty()) bad("name: must not be empty");

  if (!known(kDatasetKinds, dataset.kind))
    bad("dataset.kind: unknown kind \"" + dataset.kind + "\" (one of: " + join(kDatasetKinds) +
        ")");
  if (dataset.train_samples == 0) bad("dataset.train_samples: must be >= 1");
  if (dataset.test_samples == 0) bad("dataset.test_samples: must be >= 1");

  const DatasetShape shape = dataset_shape(dataset.kind);
  if (!known(kModelKinds, model.kind))
    bad("model.kind: unknown kind \"" + model.kind + "\" (one of: " + join(kModelKinds) + ")");
  if (model.kind == "mlp" || model.kind == "mlp1" || model.kind == "softmax") {
    if (model.kind == "mlp" && shape.image != 0)
      bad(std::string("model.kind: \"mlp\" expects a flat dataset; use \"mlp1\" (which "
                      "flattens) or a conv model with dataset.kind \"") +
          dataset.kind + "\"");
    if (model.input_dim != shape.flat_dim)
      bad("model.input_dim: " + std::to_string(model.input_dim) + " does not match dataset \"" +
          dataset.kind + "\" (" + std::to_string(shape.flat_dim) + " features)");
    if (model.num_classes != shape.classes)
      bad("model.num_classes: " + std::to_string(model.num_classes) +
          " does not match dataset \"" + dataset.kind + "\" (" + std::to_string(shape.classes) +
          " classes)");
    if (model.kind != "softmax" && model.hidden == 0) bad("model.hidden: must be >= 1");
  } else {
    if (shape.image == 0)
      bad("model.kind: \"" + model.kind + "\" needs an image-shaped dataset, but \"" +
          dataset.kind + "\" is flat (use mnist_image_like / cifar10_like / imagenet100_like)");
    if (model.image != shape.image)
      bad("model.image: " + std::to_string(model.image) + " does not match dataset \"" +
          dataset.kind + "\" (" + std::to_string(shape.image) + "x" + std::to_string(shape.image) +
          " images)");
    if (model.width_scale <= 0.0) bad("model.width_scale: must be > 0");
    const std::size_t div = model.kind == "vgg_style" ? 8 : 4;
    if (model.image % div != 0)
      bad("model.image: must be divisible by " + std::to_string(div) + " for " + model.kind);
    if (model.kind == "cnn_mnist" && dataset.kind != "mnist_image_like")
      bad("model.kind: cnn_mnist expects 1-channel images (dataset.kind mnist_image_like), got \"" +
          dataset.kind + "\"");
    if (model.kind != "cnn_mnist" && dataset.kind == "mnist_image_like")
      bad("model.kind: " + model.kind + " expects 3-channel images, but \"" + dataset.kind +
          "\" has 1 channel");
    if (model.kind == "cnn_cifar" && shape.classes != 10)
      bad("model.kind: cnn_cifar has a 10-class head, but dataset \"" + dataset.kind + "\" has " +
          std::to_string(shape.classes) + " classes");
    if (model.kind == "vgg_style" && model.num_classes != shape.classes)
      bad("model.num_classes: " + std::to_string(model.num_classes) +
          " does not match dataset \"" + dataset.kind + "\" (" + std::to_string(shape.classes) +
          " classes)");
  }

  if (!known(kPartitionKinds, partition.kind))
    bad("partition.kind: unknown kind \"" + partition.kind + "\" (one of: " +
        join(kPartitionKinds) + ")");
  if (partition.workers == 0) bad("partition.workers: must be >= 1");
  if (partition.shards == 0 && partition.workers > dataset.train_samples)
    bad("partition.workers: " + std::to_string(partition.workers) + " workers need at least as "
        "many training samples (dataset.train_samples = " +
        std::to_string(dataset.train_samples) + "); set partition.shards to scale the "
        "population past the sample count");
  if (partition.shards > partition.workers)
    bad("partition.shards: " + std::to_string(partition.shards) +
        " must be <= partition.workers (" + std::to_string(partition.workers) + ")");
  if (partition.shards > dataset.train_samples)
    bad("partition.shards: " + std::to_string(partition.shards) + " shards need at least as "
        "many training samples (dataset.train_samples = " +
        std::to_string(dataset.train_samples) + ")");
  if (partition.kind == "dirichlet" && partition.alpha <= 0.0)
    bad("partition.alpha: dirichlet concentration must be > 0");

  if (learning_rate <= 0.0) bad("train.learning_rate: must be > 0");
  if (local_steps == 0) bad("train.local_steps: must be >= 1");

  if (cluster.base_seconds <= 0.0) bad("cluster.base_seconds: must be > 0");
  if (cluster.kappa_min <= 0.0) bad("cluster.kappa_min: must be > 0");
  if (cluster.kappa_max < cluster.kappa_min)
    bad("cluster.kappa_max: must be >= cluster.kappa_min");

  if (latency.sub_channels == 0) bad("latency.sub_channels: must be >= 1");
  if (latency.symbol_seconds <= 0.0) bad("latency.symbol_seconds: must be > 0");
  if (latency.oma_rate_bps <= 0.0) bad("latency.oma_rate_bps: must be > 0");
  if (latency.bits_per_param <= 0.0) bad("latency.bits_per_param: must be > 0");

  if (fading.rayleigh_scale <= 0.0) bad("fading.rayleigh_scale: must be > 0");
  if (fading.min_gain <= 0.0) bad("fading.min_gain: must be > 0");
  if (fading.pathloss_exponent < 0.0) bad("fading.pathloss_exponent: must be >= 0");
  if (fading.pathloss_exponent > 0.0 &&
      (fading.distance_min <= 0.0 || fading.distance_max < fading.distance_min))
    bad("fading.distance_min/distance_max: need 0 < distance_min <= distance_max");

  if (aircomp.sigma0_sq < 0.0) bad("aircomp.sigma0_sq: must be >= 0");

  {
    sim::SubstrateOptions opts;
    try {
      sim::set_substrate_kind(opts, substrate.kind);
    } catch (const std::invalid_argument& e) {
      bad(std::string("substrate.kind: ") + e.what());
    }
    if (opts.churn && substrate.churn_period <= 0.0) bad("substrate.churn_period: must be > 0");
    if (opts.churn && (substrate.churn_on_fraction <= 0.0 || substrate.churn_on_fraction > 1.0))
      bad("substrate.churn_on_fraction: must be in (0, 1]");
    if (opts.energy && substrate.energy_budget <= 0.0)
      bad("substrate.energy_budget: must be > 0");
    if (opts.energy && substrate.energy_oma_upload < 0.0)
      bad("substrate.energy_oma_upload: must be >= 0");
    if (opts.csi_error && substrate.csi_error_std < 0.0)
      bad("substrate.csi_error_std: must be >= 0");
  }

  if (energy_cap <= 0.0) bad("energy_cap: must be > 0");

  if (time_budget <= 0.0) bad("run.time_budget: must be > 0");
  if (max_rounds == 0) bad("run.max_rounds: must be >= 1");
  if (eval_every == 0) bad("run.eval_every: must be >= 1");
  if (eval_samples == 0) bad("run.eval_samples: must be >= 1");
  if (eval_batch == 0) bad("run.eval_batch: must be >= 1");
  if (stop_at_accuracy > 1.0) bad("run.stop_at_accuracy: must be <= 1 (a fraction, not percent)");
  if (worker_state != "eager" && worker_state != "lazy")
    bad("run.worker_state: must be \"eager\" or \"lazy\", got \"" + worker_state + "\"");
  if (event_queue != "heap" && event_queue != "calendar")
    bad("run.event_queue: must be \"heap\" or \"calendar\", got \"" + event_queue + "\"");
  if (cohort_size != 0)
    for (const auto& m : mechanisms)
      if (m.kind == "airfedga" || m.kind == "semiasync")
        bad("run.cohort_size: cohort sampling is incompatible with mechanism kind \"" + m.kind +
            "\" (group/buffer-triggered membership is the mechanism itself)");

  if (mechanisms.empty())
    bad("mechanisms: at least one mechanism is required (one of: " + join(kMechanismKinds) + ")");
  for (std::size_t i = 0; i < mechanisms.size(); ++i) {
    const auto& m = mechanisms[i];
    const std::string p = "mechanisms[" + std::to_string(i) + "].";
    if (!known(kMechanismKinds, m.kind))
      bad(p + "kind: unknown kind \"" + m.kind + "\" (one of: " + join(kMechanismKinds) + ")");
    if (m.kind == "dynamic" && (m.selection_quantile < 0.0 || m.selection_quantile >= 1.0))
      bad(p + "selection_quantile: must be in [0, 1)");
    if (m.kind == "tifl" && m.tiers == 0) bad(p + "tiers: must be >= 1");
    const bool damped = m.kind == "fedasync" || m.kind == "semiasync";
    if (damped && (m.mixing <= 0.0 || m.mixing > 1.0)) bad(p + "mixing: must be in (0, 1]");
    if (damped && m.damping < 0.0) bad(p + "damping: must be >= 0");
    if (m.kind == "semiasync" && m.aggregate_count == 0)
      bad(p + "aggregate_count: must be >= 1");
    if (m.kind == "semiasync" && m.damping_schedule != "poly" && m.damping_schedule != "exp")
      bad(p + "damping_schedule: must be \"poly\" or \"exp\"");
    if (m.kind == "airfedga" && (m.xi < 0.0 || m.xi > 1.0)) bad(p + "xi: must be in [0, 1]");
    if (m.kind == "airfedga" && m.staleness_damping < 0.0)
      bad(p + "staleness_damping: must be >= 0");
  }
}

// ----------------------------------------------------------------- build --

std::string MechanismSpec::display_name() const {
  if (const auto* entry = find_mechanism_kind(kind)) return entry->display;
  throw std::invalid_argument("mechanism kind: unknown kind \"" + kind + "\" (one of: " +
                              join(kMechanismKinds) + ")");
}

fl::MechanismConfig MechanismSpec::to_config() const {
  fl::MechanismConfig mc;
  mc.selection_quantile = selection_quantile;
  mc.tiers = tiers;
  mc.mixing = mixing;
  mc.damping = damping;
  mc.aggregate_count = aggregate_count;
  mc.staleness_bound = staleness_bound;
  mc.damping_schedule = damping_schedule;
  mc.grouping.xi = xi;
  mc.grouping.refine_passes = refine_passes;
  mc.staleness_damping = staleness_damping;
  return mc;
}

std::unique_ptr<fl::Mechanism> MechanismSpec::make() const {
  if (const auto* entry = find_mechanism_kind(kind)) return entry->factory(to_config());
  throw std::invalid_argument("mechanism kind: unknown kind \"" + kind + "\" (one of: " +
                              join(kMechanismKinds) + ")");
}

namespace {

data::TrainTest make_dataset(const DatasetSpec& d) {
  if (d.kind == "mnist_like") return data::make_mnist_like(d.train_samples, d.test_samples, d.seed);
  if (d.kind == "mnist_image_like")
    return data::make_mnist_image_like(d.train_samples, d.test_samples, d.seed);
  if (d.kind == "cifar10_like")
    return data::make_cifar10_like(d.train_samples, d.test_samples, d.seed);
  if (d.kind == "imagenet100_like")
    return data::make_imagenet100_like(d.train_samples, d.test_samples, d.seed);
  throw std::invalid_argument("dataset.kind: unknown kind \"" + d.kind + "\" (one of: " +
                              join(kDatasetKinds) + ")");
}

ml::ModelFactory make_model_factory(const ModelSpec& m) {
  if (m.kind == "mlp")
    return [m] { return ml::make_mlp(m.input_dim, m.num_classes, m.hidden); };
  if (m.kind == "mlp1") {
    return [m] {
      ml::Model net;
      net.add(std::make_unique<ml::Flatten>());
      net.add(std::make_unique<ml::Dense>(m.input_dim, m.hidden));
      net.add(std::make_unique<ml::ReLU>());
      net.add(std::make_unique<ml::Dense>(m.hidden, m.num_classes));
      return net;
    };
  }
  if (m.kind == "softmax")
    return [m] { return ml::make_softmax_regression(m.input_dim, m.num_classes); };
  if (m.kind == "cnn_mnist") return [m] { return ml::make_cnn_mnist(m.width_scale, m.image); };
  if (m.kind == "cnn_cifar") return [m] { return ml::make_cnn_cifar(m.width_scale, m.image); };
  if (m.kind == "vgg_style")
    return [m] { return ml::make_vgg_style(m.image, m.num_classes, m.width_scale); };
  throw std::invalid_argument("model.kind: unknown kind \"" + m.kind + "\" (one of: " +
                              join(kModelKinds) + ")");
}

data::Partition make_partition(const PartitionSpec& p, const data::Dataset& train,
                               util::Rng& rng) {
  if (p.kind == "label_skew") return data::partition_label_skew(train, p.workers, rng);
  if (p.kind == "iid") return data::partition_iid(train, p.workers, rng);
  if (p.kind == "dirichlet") return data::partition_dirichlet(train, p.workers, p.alpha, rng);
  throw std::invalid_argument("partition.kind: unknown kind \"" + p.kind + "\" (one of: " +
                              join(kPartitionKinds) + ")");
}

}  // namespace

BuiltScenario build(const ScenarioSpec& spec) {
  spec.validate();

  BuiltScenario out;
  out.data = std::make_unique<data::TrainTest>(make_dataset(spec.dataset));

  fl::FLConfig& cfg = out.cfg;
  cfg.train = &out.data->train;
  cfg.test = &out.data->test;
  util::Rng rng(spec.seed);
  // With shards set, the partitioner splits into that many shards and the
  // worker count becomes the (possibly much larger) population axis.
  PartitionSpec pspec = spec.partition;
  if (spec.partition.shards > 0) pspec.workers = spec.partition.shards;
  cfg.partition = make_partition(pspec, out.data->train, rng);
  if (spec.partition.shards > 0) cfg.population = spec.partition.workers;
  cfg.model_factory = make_model_factory(spec.model);

  cfg.learning_rate = static_cast<float>(spec.learning_rate);
  cfg.local_steps = spec.local_steps;
  cfg.batch_size = spec.batch_size;

  // Substrate seeds derive from the run seed exactly like bench::Experiment
  // always has, so presets reproduce their figure binaries bit for bit.
  cfg.cluster = spec.cluster;
  cfg.cluster.seed = spec.seed + 1;
  cfg.latency = spec.latency;
  cfg.fading = spec.fading;
  cfg.fading.seed = spec.seed + 2;
  cfg.aircomp = spec.aircomp;
  sim::set_substrate_kind(cfg.substrate, spec.substrate.kind);
  cfg.substrate.churn_period = spec.substrate.churn_period;
  cfg.substrate.churn_on_fraction = spec.substrate.churn_on_fraction;
  cfg.substrate.energy_budget = spec.substrate.energy_budget;
  cfg.substrate.energy_oma_upload = spec.substrate.energy_oma_upload;
  cfg.substrate.csi_error_std = spec.substrate.csi_error_std;
  cfg.energy_cap = spec.energy_cap;

  cfg.time_budget = spec.time_budget;
  cfg.max_rounds = spec.max_rounds;
  cfg.eval_every = spec.eval_every;
  cfg.eval_samples = spec.eval_samples;
  cfg.eval_batch = spec.eval_batch;
  cfg.stop_at_accuracy = spec.stop_at_accuracy;
  cfg.seed = spec.seed;
  cfg.threads = spec.threads;
  cfg.cooperative_gemm = spec.cooperative_gemm;
  cfg.lazy_workers = spec.worker_state == "lazy";
  cfg.event_queue =
      spec.event_queue == "calendar" ? sim::QueueBackend::kCalendar : sim::QueueBackend::kBinaryHeap;
  cfg.cohort_size = spec.cohort_size;
  cfg.trace = spec.trace;
  cfg.validate();

  for (const auto& m : spec.mechanisms) {
    out.mechanism_names.push_back(m.display_name());
    out.mechanisms.push_back(m.make());
  }
  return out;
}

std::string config_hash(const ScenarioSpec& spec) {
  const std::string canon = spec.to_json().dump();
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64
  for (unsigned char c : canon) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace airfedga::scenario
