#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "scenario/json.hpp"

namespace airfedga::scenario {

/// Version stamped on every manifest record (`"m"` key). Bump on any
/// field-layout change and document it in docs/SCENARIOS.md.
inline constexpr int kManifestVersion = 1;

/// One variant state transition in the farm's durable run manifest. A
/// variant is keyed by its index in the deterministic variant order plus
/// its config_hash, so a resumed session can tell a completed variant from
/// a stale record of an edited study.
struct ManifestRecord {
  std::size_t variant = 0;   ///< index in the deterministic variant order
  std::string config_hash;   ///< scenario::config_hash of the variant spec
  std::string name;          ///< variant display name (diagnostics only)
  std::string state;         ///< "running" | "done" | "failed"
  std::size_t attempt = 0;   ///< 1-based attempt number of this transition
  std::string error;         ///< failure reason ("failed" records only)

  [[nodiscard]] Json to_json() const;
  static ManifestRecord from_json(const Json& j);
};

/// Append-only, crash-safe journal of variant state transitions
/// (`manifest.jsonl` in the study's out-dir). Each append is one complete
/// JSON line written with a single write(2) on an O_APPEND descriptor and
/// fsync'd before the call returns, so a record either exists completely
/// or not at all — except for the one write a crash can tear, which the
/// recovery pass in open() detects and truncates off.
class Manifest {
 public:
  Manifest() = default;
  Manifest(Manifest&& other) noexcept;
  Manifest& operator=(Manifest&& other) noexcept;
  Manifest(const Manifest&) = delete;
  Manifest& operator=(const Manifest&) = delete;
  ~Manifest();

  /// Path of the manifest inside `out_dir`.
  static std::string path_in(const std::string& out_dir);

  /// Opens (creating `out_dir` and the file as needed) for appends after a
  /// recovery pass: every complete record is loaded into records(); a torn
  /// trailing write — an unterminated or unparseable *last* line — is
  /// truncated away (truncated_bytes() reports how much). A malformed line
  /// that is not the trailing one means real corruption, not a crash, and
  /// throws std::runtime_error.
  static Manifest open(const std::string& out_dir);

  /// Appends one record durably (atomic single write + fsync) and mirrors
  /// it into records().
  void append(const ManifestRecord& rec);

  /// Records recovered by open() plus those appended since, in file order.
  [[nodiscard]] const std::vector<ManifestRecord>& records() const { return records_; }

  /// Bytes the recovery pass cut from a torn trailing write (0 = clean).
  [[nodiscard]] std::size_t truncated_bytes() const { return truncated_bytes_; }

  /// Final recorded state of (variant, hash): the last matching record's
  /// state, or "" when the manifest never saw that variant — a `running`
  /// without a later `done`/`failed` reads as "running", i.e. crashed
  /// mid-variant, and the farm re-runs it.
  [[nodiscard]] std::string state_of(std::size_t variant, const std::string& hash) const;

 private:
  int fd_ = -1;
  std::string path_;
  std::vector<ManifestRecord> records_;
  std::size_t truncated_bytes_ = 0;
};

}  // namespace airfedga::scenario
