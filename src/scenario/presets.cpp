#include "scenario/presets.hpp"

#include <stdexcept>

namespace airfedga::scenario {

namespace {

MechanismSpec mech(const std::string& kind) {
  MechanismSpec m;
  m.kind = kind;
  return m;
}

/// The paper's §VI-A system setup shared by every figure preset: N workers
/// with kappa ~ U[1,10] compute heterogeneity, label-skew partition,
/// sigma0^2 = 1 W, E_i = 10 J, B = 1 MHz OMA uplink, R = 1024 AirComp
/// sub-channels, root seed 42 (these are the ScenarioSpec defaults).
ScenarioSpec base(const std::string& name, const std::string& description) {
  ScenarioSpec s;
  s.name = name;
  s.description = description;
  return s;
}

std::vector<ScenarioSpec> make_presets() {
  std::vector<ScenarioSpec> out;

  {
    ScenarioSpec s = base("fig03_lr_mnist",
                          "Fig. 3: LR (MLP-128) on MNIST-like, Dynamic vs Air-FedAvg vs "
                          "Air-FedGA, loss/accuracy vs time");
    s.dataset = {"mnist_like", 10000, 2000, 1};
    s.model = {.kind = "mlp", .input_dim = 784, .num_classes = 10, .hidden = 128};
    s.partition.workers = 100;
    s.learning_rate = 1.0;
    s.batch_size = 0;
    s.time_budget = 5000.0;
    s.eval_every = 5;
    s.eval_samples = 1000;
    s.mechanisms = {mech("dynamic"), mech("airfedavg"), mech("airfedga")};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("fig04_cnn_mnist",
                          "Fig. 4: CNN (width 0.15) on MNIST-image-like, Dynamic vs Air-FedAvg "
                          "vs Air-FedGA, loss/accuracy vs time");
    s.dataset = {"mnist_image_like", 6000, 1000, 2};
    s.model = {.kind = "cnn_mnist", .width_scale = 0.15, .image = 28};
    s.partition.workers = 100;
    s.learning_rate = 0.03;
    s.batch_size = 16;
    s.local_steps = 3;
    s.time_budget = 5000.0;
    s.eval_every = 10;
    s.eval_samples = 500;
    s.mechanisms = {mech("dynamic"), mech("airfedavg"), mech("airfedga")};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("fig05_cnn_cifar",
                          "Fig. 5: CNN (width 0.2) on CIFAR-10-like, Dynamic vs Air-FedAvg vs "
                          "Air-FedGA, loss/accuracy vs time");
    s.dataset = {"cifar10_like", 6000, 1000, 3};
    s.model = {.kind = "cnn_cifar", .width_scale = 0.2, .image = 16};
    s.partition.workers = 100;
    s.learning_rate = 0.3;
    s.batch_size = 16;
    s.local_steps = 2;
    s.time_budget = 2500.0;
    s.eval_every = 10;
    s.eval_samples = 400;
    s.mechanisms = {mech("dynamic"), mech("airfedavg"), mech("airfedga")};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("fig06_vgg_imagenet",
                          "Fig. 6: dense head on ImageNet-100-like (100 classes), Dynamic vs "
                          "Air-FedAvg vs Air-FedGA (docs/BENCHMARKS.md explains the VGG "
                          "scale-down)");
    s.dataset = {"imagenet100_like", 8000, 1500, 4};
    s.model = {.kind = "mlp1", .input_dim = 3 * 16 * 16, .num_classes = 100, .hidden = 128};
    s.partition.workers = 100;
    s.learning_rate = 1.0;
    s.batch_size = 16;
    s.local_steps = 3;
    s.time_budget = 5000.0;
    s.eval_every = 10;
    s.eval_samples = 750;
    s.mechanisms = {mech("dynamic"), mech("airfedavg"), mech("airfedga")};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("fig08_xi_sweep",
                          "Fig. 8 (one point): Air-FedGA at xi = 0.3 on MNIST-like, 60 workers; "
                          "sweep mechanisms[0].xi over 0..1 for the full figure");
    s.dataset = {"mnist_like", 3000, 800, 5};
    s.model = {.kind = "mlp", .input_dim = 784, .num_classes = 10, .hidden = 64};
    s.partition.workers = 60;
    s.learning_rate = 1.0;
    s.batch_size = 0;
    s.time_budget = 12000.0;
    s.max_rounds = 20000;
    s.eval_every = 10;
    s.eval_samples = 500;
    s.stop_at_accuracy = 0.905;
    s.mechanisms = {mech("airfedga")};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("fig09_energy_mnist",
                          "Fig. 9 (left): aggregation energy to reach accuracy, MLP-64 on "
                          "MNIST-like, Air-FedAvg vs Air-FedGA vs Dynamic");
    s.dataset = {"mnist_like", 5000, 800, 6};
    s.model = {.kind = "mlp", .input_dim = 784, .num_classes = 10, .hidden = 64};
    s.partition.workers = 100;
    s.learning_rate = 1.0;
    s.batch_size = 0;
    s.time_budget = 10000.0;
    s.eval_every = 5;
    s.eval_samples = 500;
    s.stop_at_accuracy = 0.895;
    s.mechanisms = {mech("airfedavg"), mech("airfedga"), mech("dynamic")};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("fig09_energy_cifar",
                          "Fig. 9 (right): aggregation energy to reach accuracy, CNN on "
                          "CIFAR-10-like, Air-FedAvg vs Air-FedGA vs Dynamic");
    s.dataset = {"cifar10_like", 5000, 800, 7};
    s.model = {.kind = "cnn_cifar", .width_scale = 0.2, .image = 16};
    s.partition.workers = 100;
    s.learning_rate = 0.03;
    s.batch_size = 16;
    s.local_steps = 2;
    s.time_budget = 3000.0;
    s.eval_every = 10;
    s.eval_samples = 400;
    s.stop_at_accuracy = 0.365;
    s.mechanisms = {mech("airfedavg"), mech("airfedga"), mech("dynamic")};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("fig10_scalability",
                          "Fig. 10 engine workload: FedAvg + TiFL(4) + Air-FedGA, 40 workers, "
                          "MLP-64, 60 rounds; run with --threads=1,2,4 for the determinism sweep");
    s.dataset = {"mnist_like", 3000, 800, 8};
    s.model = {.kind = "mlp", .input_dim = 784, .num_classes = 10, .hidden = 64};
    s.partition.workers = 40;
    s.learning_rate = 1.0;
    s.batch_size = 0;
    s.time_budget = 8000.0;
    s.max_rounds = 60;
    s.eval_every = 5;
    s.eval_samples = 500;
    MechanismSpec tifl = mech("tifl");
    tifl.tiers = 4;
    s.mechanisms = {mech("fedavg"), tifl, mech("airfedga")};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("fig10_nsweep",
                          "Fig. 10 N-sweep base (N = 20 point): all five mechanisms to a stable "
                          "80%; the bench rescales workers/train_samples/tiers per N");
    s.dataset = {"mnist_like", 3000, 800, 8};
    s.model = {.kind = "mlp", .input_dim = 784, .num_classes = 10, .hidden = 64};
    s.partition.workers = 20;
    s.learning_rate = 1.0;
    s.batch_size = 0;
    s.time_budget = 25000.0;
    s.eval_every = 5;
    s.eval_samples = 500;
    s.stop_at_accuracy = 0.81;
    MechanismSpec tifl = mech("tifl");
    tifl.tiers = 2;  // max(2, N / 15) at N = 20
    s.mechanisms = {mech("fedavg"), mech("airfedavg"), mech("dynamic"), tifl, mech("airfedga")};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("example_quickstart",
                          "Quickstart federation: Air-FedGA on 40 label-skewed workers, MLP-64 "
                          "on MNIST-like");
    s.dataset = {"mnist_like", 4000, 800, 7};
    s.model = {.kind = "mlp", .input_dim = 784, .num_classes = 10, .hidden = 64};
    s.partition.workers = 40;
    s.learning_rate = 1.0;
    s.batch_size = 0;
    s.time_budget = 4000.0;
    s.eval_every = 10;
    s.eval_samples = 800;
    s.seed = 7;
    s.mechanisms = {mech("airfedga")};
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base("example_heterogeneous_edge",
                          "Heterogeneous-edge study base: FedAvg vs Air-FedAvg vs Air-FedGA at "
                          "kappa_max = 10; sweep cluster.kappa_max for the straggler study");
    s.dataset = {"mnist_like", 3000, 600, 11};
    s.model = {.kind = "mlp", .input_dim = 784, .num_classes = 10, .hidden = 64};
    s.partition.workers = 60;
    s.learning_rate = 1.0;
    s.batch_size = 0;
    s.time_budget = 15000.0;
    s.eval_every = 10;
    s.eval_samples = 600;
    s.stop_at_accuracy = 0.82;
    s.seed = 11;
    s.mechanisms = {mech("fedavg"), mech("airfedavg"), mech("airfedga")};
    out.push_back(std::move(s));
  }

  for (const auto& s : out) s.validate();  // a broken preset fails fast at first use
  return out;
}

const std::vector<ScenarioSpec>& registry() {
  static const std::vector<ScenarioSpec> presets = make_presets();
  return presets;
}

}  // namespace

std::vector<std::string> preset_names() {
  std::vector<std::string> names;
  for (const auto& s : registry()) names.push_back(s.name);
  return names;
}

bool has_preset(const std::string& name) {
  for (const auto& s : registry())
    if (s.name == name) return true;
  return false;
}

const ScenarioSpec& preset(const std::string& name) {
  for (const auto& s : registry())
    if (s.name == name) return s;
  std::string names;
  for (const auto& n : preset_names()) names += "\n  " + n;
  throw std::invalid_argument("unknown preset \"" + name + "\"; registered presets:" + names);
}

}  // namespace airfedga::scenario
