#include "scenario/runner.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "fl/driver.hpp"
#include "obs/metrics.hpp"
#include "scenario/manifest.hpp"
#include "util/fault.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace airfedga::scenario {

// ------------------------------------------------------------ sweep paths --

void json_set_path(Json& root, const std::string& path, Json value) {
  if (path.empty()) throw std::invalid_argument("sweep path: must not be empty");
  Json* node = &root;
  std::size_t pos = 0;
  std::string walked;
  while (true) {
    const std::size_t dot = path.find('.', pos);
    const std::string seg = path.substr(pos, dot == std::string::npos ? dot : dot - pos);
    if (seg.empty())
      throw std::invalid_argument("sweep path \"" + path + "\": empty segment after \"" +
                                  walked + "\"");
    const bool is_index = std::all_of(seg.begin(), seg.end(),
                                      [](unsigned char c) { return std::isdigit(c); });
    Json* next = nullptr;
    if (is_index && node->is_array()) {
      if (seg.size() > 9)
        throw std::invalid_argument("sweep path \"" + path + "\": index " + seg +
                                    " out of range (array \"" + walked + "\" has " +
                                    std::to_string(node->as_array().size()) + " elements)");
      const std::size_t idx = std::stoul(seg);
      if (idx >= node->as_array().size())
        throw std::invalid_argument("sweep path \"" + path + "\": index " + seg +
                                    " out of range (array \"" + walked + "\" has " +
                                    std::to_string(node->as_array().size()) + " elements)");
      next = &node->as_array()[idx];
    } else if (node->is_object()) {
      next = node->find(seg);
      if (next == nullptr)
        throw std::invalid_argument("sweep path \"" + path + "\": no key \"" + seg + "\" under \"" +
                                    (walked.empty() ? "<root>" : walked) + "\"");
    } else {
      throw std::invalid_argument("sweep path \"" + path + "\": \"" + walked +
                                  "\" is a scalar, cannot descend into \"" + seg + "\"");
    }
    walked = walked.empty() ? seg : walked + "." + seg;
    if (dot == std::string::npos) {
      *next = std::move(value);
      return;
    }
    node = next;
    pos = dot + 1;
  }
}

std::vector<ScenarioSpec> expand_sweeps(const ScenarioSpec& base,
                                        const std::vector<SweepAxis>& axes) {
  for (const auto& axis : axes)
    if (axis.values.empty())
      throw std::invalid_argument("sweep axis \"" + axis.path + "\": needs at least one value");

  std::vector<ScenarioSpec> out;
  std::vector<std::size_t> idx(axes.size(), 0);
  while (true) {
    Json j = base.to_json();
    std::string suffix;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      json_set_path(j, axes[a].path, axes[a].values[idx[a]]);
      suffix += "@" + axes[a].path + "=" + axes[a].values[idx[a]].dump();
    }
    ScenarioSpec variant = ScenarioSpec::from_json(j);
    if (!suffix.empty()) variant.name += suffix;
    variant.validate();
    out.push_back(std::move(variant));

    std::size_t a = axes.size();
    while (a > 0) {
      --a;
      if (++idx[a] < axes[a].values.size()) break;
      idx[a] = 0;
      if (a == 0) return out;
    }
    if (axes.empty()) return out;
  }
}

// -------------------------------------------------------------------- run --

namespace {
ScenarioSpec apply_overrides(ScenarioSpec spec, const RunOverrides& ov) {
  if (ov.seed) spec.seed = *ov.seed;
  if (ov.threads) spec.threads = *ov.threads;
  if (ov.time_budget) spec.time_budget = *ov.time_budget;
  return spec;
}
}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec, const RunOverrides& ov,
                            std::size_t lane_override, const std::atomic<bool>* cancel) {
  ScenarioResult result;
  result.spec = apply_overrides(spec, ov);
  result.hash = config_hash(result.spec);

  BuiltScenario built = build(result.spec);
  // Execution-only lane cap (lane budget under --jobs). Results are
  // bit-identical for every lane count, so the recorded spec keeps the
  // configured value and only the driver pool shrinks.
  if (lane_override != 0) built.cfg.threads = lane_override;
  built.cfg.cancel = cancel;
  for (std::size_t i = 0; i < built.mechanisms.size(); ++i) {
    MechanismResult run;
    run.mechanism = built.mechanism_names[i];
    const auto t0 = std::chrono::steady_clock::now();
    run.metrics = built.mechanisms[i]->run(built.cfg);
    run.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    result.runs.push_back(std::move(run));
  }
  return result;
}

ThreadSweepResult run_thread_sweep(const ScenarioSpec& spec,
                                   const std::vector<std::size_t>& threads,
                                   const RunOverrides& ov, const std::atomic<bool>* cancel) {
  if (threads.empty())
    throw std::invalid_argument("thread sweep: need at least one lane count");

  ThreadSweepResult sweep;
  for (std::size_t t : threads) {
    RunOverrides o = ov;
    o.threads = t;
    ScenarioResult r = run_scenario(spec, o, 0, cancel);
    const bool is_baseline = sweep.by_threads.empty();
    for (std::size_t i = 0; i < r.runs.size(); ++i) {
      const bool same =
          is_baseline ||
          sweep.by_threads.front().runs[i].metrics.bit_identical(r.runs[i].metrics);
      r.runs[i].bit_identical = same;
      sweep.all_identical = sweep.all_identical && same;
    }
    sweep.by_threads.push_back(std::move(r));
  }
  return sweep;
}

BatchRunResult run_scenarios(const std::vector<ScenarioSpec>& variants, const RunOverrides& ov,
                             const BatchRunOptions& opt) {
  BatchRunResult out;
  const std::size_t n = variants.size();
  if (n == 0) return out;

  const bool sweep_mode = opt.threads.size() > 1;
  RunOverrides base_ov = ov;
  if (opt.threads.size() == 1) base_ov.threads = opt.threads.front();

  // More jobs than variants would just idle threads, and more jobs than
  // budgeted lanes would oversubscribe the machine (each in-flight variant
  // holds a dataset + scratch-model set and at least one busy lane).
  const std::size_t budget = opt.lane_budget != 0
                                 ? opt.lane_budget
                                 : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t jobs = std::min({std::max<std::size_t>(1, opt.jobs), n, budget});

  // Each variant fills its own slot; flattening afterwards restores the
  // deterministic variant order whatever the completion order was. A
  // determinism sweep yields one result per lane count, so slots are
  // vectors.
  std::vector<std::vector<ScenarioResult>> slots(n);
  std::vector<char> identical(n, 1);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto run_one = [&](std::size_t i) {
    if (sweep_mode) {
      // A determinism sweep verifies the engine *at* the requested lane
      // counts, so the lane budget deliberately does not clamp them.
      ThreadSweepResult sweep = run_thread_sweep(variants[i], opt.threads, base_ov);
      identical[i] = sweep.all_identical ? 1 : 0;
      slots[i] = std::move(sweep.by_threads);
    } else {
      const std::size_t requested = base_ov.threads ? *base_ov.threads : variants[i].threads;
      const std::size_t lanes =
          jobs > 1 ? util::lane_budget_share(requested, jobs, opt.lane_budget) : 0;
      slots[i].push_back(run_scenario(variants[i], base_ov, lanes));
    }
  };

  auto worker = [&] {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        run_one(i);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (jobs == 1) {
    worker();  // serial reference schedule: no extra thread at all
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  for (std::size_t i = 0; i < n; ++i) {
    out.all_identical = out.all_identical && identical[i] != 0;
    for (auto& r : slots[i]) out.results.push_back(std::move(r));
  }
  return out;
}

// ----------------------------------------------------------------- export --

std::string git_version() {
  FILE* pipe = ::popen("git describe --always --dirty --tags 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[128];
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  if (status != 0 || out.empty()) return "unknown";
  return out;
}

namespace {
// Filename-safe stem for a scenario/mechanism name. Sweep-suffixed variant
// names carry '@', '=', '.', and sweep string values may carry anything
// (including path separators), so only [A-Za-z0-9_-] passes through —
// everything else becomes '_'. Distinct names can collide after this
// ("a.b" and "a@b" both map to "a_b"); write_results disambiguates with a
// deterministic counter suffix.
std::string sanitize(std::string s) {
  for (char& c : s)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_') c = '_';
  return s;
}
}  // namespace

Json result_record(const ScenarioResult& scenario, const MechanismResult& run,
                   const std::string& git, const std::string& points_csv,
                   const WriteOptions& opts) {
  const fl::Metrics& m = run.metrics;
  const fl::EngineStats& es = m.engine_stats();

  Json rec = Json::object();
  rec.set("schema_version", kResultsSchemaVersion);
  rec.set("scenario", scenario.spec.name);
  rec.set("config_hash", scenario.hash);
  rec.set("git", git);
  rec.set("mechanism", run.mechanism);
  rec.set("seed", scenario.spec.seed);
  rec.set("threads", scenario.spec.threads);
  rec.set("digest", m.digest());
  if (run.bit_identical) rec.set("bit_identical", Json(*run.bit_identical));
  rec.set("rounds", m.total_rounds());
  rec.set("virtual_seconds", m.total_time());
  rec.set("final_accuracy", m.final_accuracy());
  rec.set("final_loss", m.final_loss());
  rec.set("total_energy_joules", m.obs_total_energy());
  rec.set("average_round_seconds", m.average_round_time());
  rec.set("max_staleness", m.max_staleness());
  if (opts.timing) rec.set("wall_seconds", run.wall_seconds);

  Json engine = Json::object();
  if (opts.timing) {
    engine.set("barrier_seconds", es.barrier_seconds);
    engine.set("eval_seconds", es.eval_seconds);
    // Cooperation counters depend on when lanes happened to be idle, so
    // they are wall-clock-like (run-to-run variable) and --no-timing must
    // omit them to keep result files byte-comparable.
    engine.set("coop_gemms", es.coop_gemms);
    engine.set("coop_helper_tiles", es.coop_helper_tiles);
  }
  engine.set("barriers", es.barriers);
  engine.set("evals", es.evals);
  rec.set("engine_stats", std::move(engine));

  // Observability snapshot (docs/OBSERVABILITY.md). Timing-gated as a
  // block: some values (pool.busy_ns, coop counts) are wall-clock- or
  // lane-scheduling-dependent and --no-timing output must stay
  // byte-comparable across --jobs/threads.
  if (opts.timing && !m.obs_snapshot().empty()) {
    const obs::MetricsSnapshot& snap = m.obs_snapshot();
    Json counters = Json::object();
    for (const auto& [name, value] : snap.counters) counters.set(name, value);
    Json hists = Json::object();
    for (const auto& h : snap.histograms) {
      Json hj = Json::object();
      Json bounds = Json::array();
      for (double b : h.bounds) bounds.push_back(Json(b));
      Json counts = Json::array();
      for (std::uint64_t c : h.counts) counts.push_back(Json(c));
      hj.set("bounds", std::move(bounds));
      hj.set("counts", std::move(counts));
      hj.set("count", h.count);
      hj.set("sum", h.sum);
      hists.set(h.name, std::move(hj));
    }
    Json metrics = Json::object();
    metrics.set("counters", std::move(counters));
    metrics.set("histograms", std::move(hists));
    rec.set("metrics", std::move(metrics));
  }

  rec.set("points_csv", points_csv);
  return rec;
}

namespace {

/// Points stems handed out per output directory over the whole process.
/// The per-call counter in write_results restarts at every invocation, so
/// without this registry a second --append call would re-derive the same
/// "_2" suffixes and clobber the first call's series even when the files
/// are gone from disk (deleted, or buffered but not yet visible).
std::mutex g_stems_mutex;
std::unordered_map<std::string, std::unordered_set<std::string>> g_claimed_stems;

}  // namespace

void write_results(const std::string& out_dir, const std::vector<ScenarioResult>& results,
                   const std::string& git, const WriteOptions& opts) {
  namespace fs = std::filesystem;
  std::error_code ec;
  // Fresh mode replaces the whole result set: stale points files from an
  // earlier invocation would otherwise survive the row-file truncation and
  // desynchronize anything that globs points/*.csv.
  if (!opts.append) fs::remove_all(fs::path(out_dir) / "points", ec);
  fs::create_directories(fs::path(out_dir) / "points", ec);
  if (ec)
    throw std::runtime_error("write_results: cannot create output directory " + out_dir + ": " +
                             ec.message());

  const std::string jsonl_path = out_dir + "/results.jsonl";
  std::ofstream jsonl(jsonl_path, opts.append ? std::ios::app : std::ios::trunc);
  if (!jsonl) throw std::runtime_error("write_results: cannot open " + jsonl_path);

  std::vector<std::string> columns = {"schema_version", "scenario",   "mechanism", "seed",
                                      "threads",        "config_hash", "git",      "digest",
                                      "bit_identical",  "rounds",      "virtual_s", "final_acc",
                                      "final_loss",     "energy_J"};
  if (opts.timing) columns.push_back("wall_s");
  util::Table summary(columns);

  // Sanitized points stems can collide across distinct run identities
  // (sanitize is lossy). Count identities per stem in deterministic result
  // order and suffix repeats, so every run keeps its own series file.
  std::unordered_map<std::string, std::size_t> stem_uses;

  // Key the session registry by the physical directory, so "./out" and
  // "out" share one claim set.
  const fs::path canon = fs::weakly_canonical(fs::path(out_dir), ec);
  const std::string dir_key = (ec || canon.empty()) ? out_dir : canon.string();
  std::scoped_lock stems_lock(g_stems_mutex);
  auto& claimed = g_claimed_stems[dir_key];
  // Fresh mode wiped points/ above; stems from earlier invocations are free
  // again.
  if (!opts.append) claimed.clear();

  for (const auto& scenario : results) {
    for (const auto& run : scenario.runs) {
      const std::string base = sanitize(scenario.spec.name) + "_" + sanitize(run.mechanism) +
                               "_t" + std::to_string(scenario.spec.threads);
      std::size_t uses = ++stem_uses[base];
      std::string stem = uses > 1 ? base + "_" + std::to_string(uses) : base;
      // Cross-invocation collisions: an earlier --append call in this
      // session (registry) or an earlier process (files on disk) may
      // already own this stem — the counter above only sees this call.
      // Keep bumping the deterministic suffix so appended runs never
      // clobber an existing points series, even one deleted from disk
      // after being claimed.
      while (claimed.count(stem) != 0 ||
             (opts.append && fs::exists(fs::path(out_dir) / "points" / (stem + ".csv")))) {
        uses = ++stem_uses[base];
        stem = base + "_" + std::to_string(uses);
      }
      claimed.insert(stem);
      // Recorded relative to out_dir, so result directories are relocatable
      // and the JSONL is byte-identical wherever --out points.
      const std::string points_csv = "points/" + stem + ".csv";
      run.metrics.write_csv(out_dir + "/" + points_csv);
      jsonl << result_record(scenario, run, git, points_csv, opts).dump() << '\n';

      std::vector<std::string> row = {std::to_string(kResultsSchemaVersion), scenario.spec.name,
                                      run.mechanism, std::to_string(scenario.spec.seed),
                                      std::to_string(scenario.spec.threads), scenario.hash, git,
                                      run.metrics.digest(),
                                      run.bit_identical ? (*run.bit_identical ? "true" : "false")
                                                        : "",
                                      std::to_string(run.metrics.total_rounds()),
                                      util::Table::fmt(run.metrics.total_time(), 0),
                                      util::Table::fmt(run.metrics.final_accuracy(), 4),
                                      util::Table::fmt(run.metrics.final_loss(), 4),
                                      util::Table::fmt(run.metrics.obs_total_energy(), 0)};
      if (opts.timing) row.push_back(util::Table::fmt(run.wall_seconds, 2));
      summary.add_row(std::move(row));
    }
  }
  if (!jsonl.flush())
    throw std::runtime_error("write_results: failed writing " + jsonl_path);
  summary.write_csv(out_dir + "/summary.csv", opts.append);
}

// ------------------------------------------------------------------- farm --

namespace {

namespace fs = std::filesystem;

std::atomic<bool> g_farm_stop{false};

std::string farm_dir(const std::string& out_dir) { return (fs::path(out_dir) / "farm").string(); }

std::string stash_path(const std::string& out_dir, std::size_t variant) {
  char name[32];
  std::snprintf(name, sizeof(name), "variant_%06zu.json", variant);
  return (fs::path(farm_dir(out_dir)) / name).string();
}

void fd_write_all(int fd, const char* data, std::size_t n, const std::string& path) {
  std::size_t off = 0;
  while (off < n) {
    const ::ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("farm: write failed for " + path + ": " +
                               std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(w);
  }
}

/// tmp + fsync + rename, so the destination is either the old file or the
/// complete new one — never a torn mix. `fault_detail` (when non-null and
/// the fault layer is armed) splits the data around a mid_write hit so a
/// kill there leaves a genuinely torn *tmp* file, which recovery ignores.
void write_file_durable(const std::string& path, const std::string& data,
                        const char* fault_detail) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0)
    throw std::runtime_error("farm: cannot open " + tmp + ": " +
                             std::string(std::strerror(errno)));
  try {
    std::size_t split = data.size();
    if (fault_detail != nullptr && util::fault::any_armed()) split = data.size() / 2;
    fd_write_all(fd, data.data(), split, tmp);
    if (split < data.size()) {
      ::fsync(fd);
      util::fault::hit("mid_write", fault_detail);
      fd_write_all(fd, data.data() + split, data.size() - split, tmp);
    }
    if (::fsync(fd) != 0)
      throw std::runtime_error("farm: fsync failed for " + tmp + ": " +
                               std::string(std::strerror(errno)));
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) throw std::runtime_error("farm: cannot rename " + tmp + ": " + ec.message());
  // Persist the rename itself: fsync the containing directory.
  const int dfd = ::open(fs::path(path).parent_path().c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

inline constexpr int kStashVersion = 1;

/// Serializes one finished variant's results into its durable stash: the
/// final JSONL record (git/points_csv left blank — patched at assembly) and
/// the exact points-CSV bytes per run, so a resumed session can re-emit
/// every output file without re-running the variant.
Json build_stash(std::size_t variant, const std::string& hash, const std::string& name,
                 const std::vector<ScenarioResult>& slot, bool identical,
                 const WriteOptions& wo) {
  Json stash = Json::object();
  stash.set("farm_stash", kStashVersion);
  stash.set("variant", variant);
  stash.set("hash", hash);
  stash.set("name", name);
  stash.set("timing", wo.timing);
  stash.set("identical", identical);
  Json runs = Json::array();
  for (const auto& scenario : slot)
    for (const auto& run : scenario.runs) {
      Json e = Json::object();
      e.set("stem", sanitize(scenario.spec.name) + "_" + sanitize(run.mechanism) + "_t" +
                        std::to_string(scenario.spec.threads));
      e.set("record", result_record(scenario, run, "", "", wo));
      e.set("points", run.metrics.csv_string());
      runs.push_back(std::move(e));
    }
  stash.set("runs", std::move(runs));
  return stash;
}

/// Loads and validates the stash of `variant`; nullopt when it is missing,
/// unreadable, torn, or describes a different variant/version — all of
/// which just mean "re-run the variant".
std::optional<Json> read_stash(const std::string& out_dir, std::size_t variant) {
  std::ifstream in(stash_path(out_dir, variant), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    Json stash = Json::parse(ss.str());
    if (static_cast<int>(stash.at("farm_stash").as_number()) != kStashVersion ||
        static_cast<std::size_t>(stash.at("variant").as_number()) != variant)
      return std::nullopt;
    (void)stash.at("hash").as_string();
    (void)stash.at("timing").as_bool();
    (void)stash.at("runs").as_array();
    return stash;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Assembles results.jsonl / summary.csv / points/ from stashes in variant
/// order — the single output path shared by uninterrupted runs, resumes,
/// and merges, which is what makes resumed output byte-identical. Mirrors
/// write_results' fresh mode (same columns, stems, dedup, formatting).
/// Returns the patched records in file order.
std::vector<Json> assemble_outputs(const std::string& out_dir, const std::vector<Json>& stashes,
                                   const std::string& git, const WriteOptions& wo) {
  std::error_code ec;
  fs::remove_all(fs::path(out_dir) / "points", ec);
  fs::create_directories(fs::path(out_dir) / "points", ec);
  if (ec)
    throw std::runtime_error("farm: cannot create output directory " + out_dir + ": " +
                             ec.message());

  const std::string jsonl_path = out_dir + "/results.jsonl";
  std::ofstream jsonl(jsonl_path, std::ios::trunc);
  if (!jsonl) throw std::runtime_error("farm: cannot open " + jsonl_path);

  std::vector<std::string> columns = {"schema_version", "scenario",   "mechanism", "seed",
                                      "threads",        "config_hash", "git",      "digest",
                                      "bit_identical",  "rounds",      "virtual_s", "final_acc",
                                      "final_loss",     "energy_J"};
  if (wo.timing) columns.push_back("wall_s");
  util::Table summary(columns);

  std::unordered_map<std::string, std::size_t> stem_uses;
  const fs::path canon = fs::weakly_canonical(fs::path(out_dir), ec);
  const std::string dir_key = (ec || canon.empty()) ? out_dir : canon.string();
  std::scoped_lock stems_lock(g_stems_mutex);
  auto& claimed = g_claimed_stems[dir_key];
  claimed.clear();

  std::vector<Json> records;
  bool first_line = true;
  for (const auto& stash : stashes) {
    for (const auto& entry : stash.at("runs").as_array()) {
      const std::string& base = entry.at("stem").as_string();
      std::size_t uses = ++stem_uses[base];
      std::string stem = uses > 1 ? base + "_" + std::to_string(uses) : base;
      while (claimed.count(stem) != 0) {
        uses = ++stem_uses[base];
        stem = base + "_" + std::to_string(uses);
      }
      claimed.insert(stem);
      const std::string points_csv = "points/" + stem + ".csv";

      std::ofstream pf(out_dir + "/" + points_csv, std::ios::binary | std::ios::trunc);
      if (!pf) throw std::runtime_error("farm: cannot open " + out_dir + "/" + points_csv);
      pf << entry.at("points").as_string();
      if (!pf.flush())
        throw std::runtime_error("farm: failed writing " + out_dir + "/" + points_csv);

      Json rec = entry.at("record");
      rec.set("git", git);
      rec.set("points_csv", points_csv);
      jsonl << rec.dump() << '\n';
      if (first_line) {
        first_line = false;
        if (util::fault::any_armed()) {
          jsonl.flush();
          util::fault::hit("mid_write", "results");
        }
      }

      const auto u64 = [&rec](const char* key) {
        return std::to_string(static_cast<std::uint64_t>(rec.at(key).as_number()));
      };
      const Json* bi = rec.find("bit_identical");
      std::vector<std::string> row = {u64("schema_version"),
                                      rec.at("scenario").as_string(),
                                      rec.at("mechanism").as_string(),
                                      u64("seed"),
                                      u64("threads"),
                                      rec.at("config_hash").as_string(),
                                      git,
                                      rec.at("digest").as_string(),
                                      bi != nullptr ? (bi->as_bool() ? "true" : "false") : "",
                                      u64("rounds"),
                                      util::Table::fmt(rec.at("virtual_seconds").as_number(), 0),
                                      util::Table::fmt(rec.at("final_accuracy").as_number(), 4),
                                      util::Table::fmt(rec.at("final_loss").as_number(), 4),
                                      util::Table::fmt(rec.at("total_energy_joules").as_number(), 0)};
      if (wo.timing) row.push_back(util::Table::fmt(rec.at("wall_seconds").as_number(), 2));
      summary.add_row(std::move(row));
      records.push_back(std::move(rec));
    }
  }
  if (!jsonl.flush()) throw std::runtime_error("farm: failed writing " + jsonl_path);
  summary.write_csv(out_dir + "/summary.csv", /*append=*/false);
  return records;
}

}  // namespace

void farm_request_stop() noexcept { g_farm_stop.store(true, std::memory_order_relaxed); }
bool farm_stop_requested() noexcept { return g_farm_stop.load(std::memory_order_relaxed); }
void farm_clear_stop() noexcept { g_farm_stop.store(false, std::memory_order_relaxed); }

FarmResult run_farm(const std::vector<ScenarioSpec>& variants, const std::string& out_dir,
                    const RunOverrides& ov, const FarmOptions& opt, const WriteOptions& wo) {
  if (wo.append)
    throw std::invalid_argument("run_farm: --append is not supported; the farm owns the whole "
                                "output directory (use the non-farm writer to accumulate)");
  if (opt.shard_count != 0 && (opt.shard_index < 1 || opt.shard_index > opt.shard_count))
    throw std::invalid_argument("run_farm: shard index must be in [1, shard count]");

  const std::size_t n = variants.size();
  FarmResult out;
  out.statuses.resize(n);

  const bool sweep_mode = opt.threads.size() > 1;
  RunOverrides base_ov = ov;
  if (opt.threads.size() == 1) base_ov.threads = opt.threads.front();

  // Variant keys: hash of the spec *after* overrides, so a resumed session
  // invoked with different --seed/--time-budget flags re-runs rather than
  // trusting stale results. In sweep mode the key is the variant-level hash
  // (no lane override applied); per-lane-count hashes live in the records.
  std::vector<std::string> hashes(n);
  for (std::size_t i = 0; i < n; ++i) {
    hashes[i] = config_hash(apply_overrides(variants[i], base_ov));
    out.statuses[i].variant = i;
    out.statuses[i].name = variants[i].name;
    out.statuses[i].hash = hashes[i];
  }

  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec)
    throw std::runtime_error("run_farm: cannot create output directory " + out_dir + ": " +
                             ec.message());
  if (!opt.resume) {
    fs::remove(Manifest::path_in(out_dir), ec);
    fs::remove_all(farm_dir(out_dir), ec);
  }
  fs::create_directories(farm_dir(out_dir), ec);
  if (ec)
    throw std::runtime_error("run_farm: cannot create " + farm_dir(out_dir) + ": " + ec.message());
  Manifest manifest = Manifest::open(out_dir);

  // Resume pass: a variant is satisfied by a prior session iff the manifest
  // journalled it done *and* its stash is intact and matches the key (and
  // this run's timing mode — a --no-timing resume of a timed run re-runs).
  for (std::size_t i = 0; i < n; ++i) {
    if (!opt.resume || manifest.state_of(i, hashes[i]) != "done") continue;
    const std::optional<Json> stash = read_stash(out_dir, i);
    if (!stash || stash->at("hash").as_string() != hashes[i] ||
        stash->at("timing").as_bool() != wo.timing)
      continue;
    out.statuses[i].state = VariantStatus::State::kSkippedResume;
    ++out.resumed_skips;
  }
  obs::global_registry().counter("farm.resumed_skips").add(out.resumed_skips);

  // Work list: owned by this shard and not already satisfied.
  std::vector<std::size_t> worklist;
  for (std::size_t i = 0; i < n; ++i) {
    if (opt.shard_count != 0 && i % opt.shard_count != opt.shard_index - 1) continue;
    if (out.statuses[i].state == VariantStatus::State::kSkippedResume) continue;
    worklist.push_back(i);
  }

  const std::size_t budget = opt.lane_budget != 0
                                 ? opt.lane_budget
                                 : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t jobs =
      std::min({std::max<std::size_t>(1, opt.jobs), std::max<std::size_t>(1, worklist.size()),
                budget});

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> settled{0};
  std::mutex manifest_mutex;  // Manifest::append is not thread-safe
  std::mutex status_mutex;    // serializes on_status + progress lines
  std::mutex error_mutex;
  std::exception_ptr first_error;  // environmental (stash/manifest I/O), not per-variant
  const auto farm_t0 = std::chrono::steady_clock::now();

  auto settle = [&](const VariantStatus& st) {
    const std::size_t done_count = settled.fetch_add(1, std::memory_order_relaxed) + 1;
    std::scoped_lock lock(status_mutex);
    if (opt.progress) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - farm_t0).count();
      const double eta = done_count > 0
                             ? elapsed / static_cast<double>(done_count) *
                                   static_cast<double>(worklist.size() - done_count)
                             : 0.0;
      const char* what = st.state == VariantStatus::State::kDone     ? "done"
                         : st.state == VariantStatus::State::kFailed ? "FAILED"
                                                                     : "stopped";
      std::fprintf(stderr, "[farm] %s %zu/%zu %s%s%s (eta %.0fs)\n", what, done_count,
                   worklist.size(), st.name.c_str(), st.error.empty() ? "" : ": ",
                   st.error.c_str(), eta);
    }
    if (opt.on_status) opt.on_status(st);
  };

  auto run_variant = [&](std::size_t i) {
    VariantStatus& st = out.statuses[i];
    util::fault::hit("before_variant");
    const std::size_t attempts_allowed = 1 + opt.retries;
    for (std::size_t attempt = 1; attempt <= attempts_allowed; ++attempt) {
      if (g_farm_stop.load(std::memory_order_relaxed)) return;
      {
        std::scoped_lock lock(manifest_mutex);
        manifest.append({i, hashes[i], variants[i].name, "running", attempt, ""});
      }
      if (opt.progress) {
        std::scoped_lock lock(status_mutex);
        std::fprintf(stderr, "[farm] start %s (variant %zu, attempt %zu)\n",
                     variants[i].name.c_str(), i, attempt);
      }

      // Watchdog: cancels the attempt cooperatively when the wall-clock
      // timeout passes or a global stop is requested. The engine throws
      // fl::RunCancelled at its next event.
      std::atomic<bool> cancel{false};
      bool timed_out = false;
      std::mutex wmu;
      std::condition_variable wcv;
      bool wdone = false;
      std::thread watchdog([&] {
        const auto t0 = std::chrono::steady_clock::now();
        std::unique_lock lk(wmu);
        while (!wdone) {
          wcv.wait_for(lk, std::chrono::milliseconds(20));
          if (wdone) return;
          if (g_farm_stop.load(std::memory_order_relaxed))
            cancel.store(true, std::memory_order_relaxed);
          if (opt.variant_timeout > 0.0 &&
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() >
                  opt.variant_timeout) {
            timed_out = true;
            cancel.store(true, std::memory_order_relaxed);
          }
        }
      });
      const auto stop_watchdog = [&] {
        {
          std::scoped_lock lk(wmu);
          wdone = true;
        }
        wcv.notify_all();
        watchdog.join();
      };

      std::string error;
      bool ok = false;
      bool stopping = false;
      try {
        util::fault::hit("variant_run", std::to_string(i));
        std::vector<ScenarioResult> slot;
        bool identical = true;
        if (sweep_mode) {
          ThreadSweepResult sweep = run_thread_sweep(variants[i], opt.threads, base_ov, &cancel);
          identical = sweep.all_identical;
          slot = std::move(sweep.by_threads);
        } else {
          const std::size_t requested =
              base_ov.threads ? *base_ov.threads : variants[i].threads;
          const std::size_t lanes =
              jobs > 1 ? util::lane_budget_share(requested, jobs, opt.lane_budget) : 0;
          slot.push_back(run_scenario(variants[i], base_ov, lanes, &cancel));
        }
        stop_watchdog();
        const Json stash = build_stash(i, hashes[i], variants[i].name, slot, identical, wo);
        write_file_durable(stash_path(out_dir, i), stash.dump() + "\n", "stash");
        {
          std::scoped_lock lock(manifest_mutex);
          manifest.append({i, hashes[i], variants[i].name, "done", attempt, ""});
        }
        util::fault::hit("after_variant");
        // all_identical is recomputed from the stash flags at assembly, so
        // no shared write is needed here.
        (void)identical;
        ok = true;
      } catch (const fl::RunCancelled&) {
        stop_watchdog();
        if (g_farm_stop.load(std::memory_order_relaxed) && !timed_out)
          stopping = true;  // interrupt, not a variant fault: leave "running"
        else
          error = "timeout: exceeded --variant-timeout=" + std::to_string(opt.variant_timeout) +
                  "s (wall clock)";
      } catch (const std::exception& e) {
        stop_watchdog();
        error = e.what();
      }

      if (ok) {
        st.state = VariantStatus::State::kDone;
        st.attempts = attempt;
        settle(st);
        return;
      }
      if (stopping) {
        st.attempts = attempt;
        return;  // stays kNotRun; manifest's dangling "running" re-runs it
      }
      st.attempts = attempt;
      st.error = error;
      if (attempt < attempts_allowed) {
        obs::global_registry().counter("farm.retries").add(1);
        {
          std::scoped_lock lock(status_mutex);
          ++out.retries;
        }
        // Bounded exponential backoff, sliced so a stop request interrupts
        // the wait.
        const double delay = std::min(
            opt.backoff_cap, opt.backoff_base * std::pow(2.0, static_cast<double>(attempt - 1)));
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::duration<double>(std::max(0.0, delay));
        while (std::chrono::steady_clock::now() < until &&
               !g_farm_stop.load(std::memory_order_relaxed))
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
      } else {
        {
          std::scoped_lock lock(manifest_mutex);
          manifest.append({i, hashes[i], variants[i].name, "failed", attempt, error});
        }
        obs::global_registry().counter("farm.quarantined").add(1);
        st.state = VariantStatus::State::kFailed;
        settle(st);
        return;
      }
    }
  };

  auto worker = [&] {
    while (!g_farm_stop.load(std::memory_order_relaxed)) {
      const std::size_t w = next.fetch_add(1, std::memory_order_relaxed);
      if (w >= worklist.size()) return;
      try {
        run_variant(worklist[w]);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        g_farm_stop.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (jobs == 1) {
    worker();  // serial reference schedule: no extra thread at all
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  // Tally and decide whether the batch was interrupted: any owned,
  // unsatisfied variant that never settled means a stop cut the run short —
  // output files would be misleadingly partial, so assembly is skipped and
  // the caller resumes instead.
  for (std::size_t i : worklist) {
    switch (out.statuses[i].state) {
      case VariantStatus::State::kDone: ++out.completed; break;
      case VariantStatus::State::kFailed: ++out.failed; break;
      default: out.interrupted = true; break;
    }
  }
  if (out.interrupted) return out;

  // Assemble the output files from the stashes, in variant order. Failed
  // (quarantined) variants are simply absent; non-owned shard variants too.
  std::vector<Json> stashes;
  for (std::size_t i = 0; i < n; ++i) {
    const VariantStatus::State s = out.statuses[i].state;
    if (s != VariantStatus::State::kDone && s != VariantStatus::State::kSkippedResume) continue;
    std::optional<Json> stash = read_stash(out_dir, i);
    if (!stash)
      throw std::runtime_error("run_farm: stash for completed variant " + std::to_string(i) +
                               " is missing or corrupt: " + stash_path(out_dir, i));
    if (!stash->at("identical").as_bool()) out.all_identical = false;
    stashes.push_back(std::move(*stash));
  }
  out.records = assemble_outputs(out_dir, stashes, git_version(), wo);
  return out;
}

FarmResult merge_results(const std::string& out_dir, const std::vector<std::string>& shard_dirs,
                         const WriteOptions& wo) {
  if (wo.append) throw std::invalid_argument("merge_results: --append is not supported");

  // Union the shards' stashes by variant index. The first shard to supply a
  // variant wins when a duplicate carries the same config hash; a
  // *different* hash for the same index means the shards came from
  // different studies (or different overrides) — refuse rather than emit a
  // silently inconsistent result set.
  std::map<std::size_t, Json> by_variant;
  for (const std::string& dir : shard_dirs) {
    const fs::path fdir = farm_dir(dir);
    std::error_code ec;
    if (!fs::is_directory(fdir, ec))
      throw std::runtime_error("merge_results: " + dir +
                               " is not a farm output directory (no farm/ subdirectory)");
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(fdir))
      if (entry.path().extension() == ".json") files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      std::ifstream in(file, std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      Json stash;
      try {
        stash = Json::parse(ss.str());
        if (static_cast<int>(stash.at("farm_stash").as_number()) != kStashVersion)
          throw std::runtime_error("unsupported stash version");
        (void)stash.at("hash").as_string();
        (void)stash.at("runs").as_array();
      } catch (const std::exception& e) {
        throw std::runtime_error("merge_results: corrupt stash " + file.string() + ": " +
                                 e.what());
      }
      if (stash.at("timing").as_bool() != wo.timing)
        throw std::runtime_error("merge_results: stash " + file.string() + " was written with " +
                                 (wo.timing ? "--no-timing" : "timing") +
                                 "; re-run the merge with matching timing mode");
      const auto idx = static_cast<std::size_t>(stash.at("variant").as_number());
      const std::string hash = stash.at("hash").as_string();
      const auto [it, inserted] = by_variant.emplace(idx, std::move(stash));
      if (!inserted && it->second.at("hash").as_string() != hash)
        throw std::runtime_error("merge_results: shards disagree on variant " +
                                 std::to_string(idx) + " (different config hashes — were the "
                                 "shards run from the same study and overrides?)");
    }
  }

  const std::size_t n = by_variant.empty() ? 0 : by_variant.rbegin()->first + 1;
  FarmResult out;
  out.statuses.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.statuses[i].variant = i;

  // Materialize the union as a normal farm directory (fresh manifest +
  // copied stashes), so the merged directory is itself resumable and a
  // later merge can treat it as a shard.
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec)
    throw std::runtime_error("merge_results: cannot create " + out_dir + ": " + ec.message());
  fs::remove(Manifest::path_in(out_dir), ec);
  fs::remove_all(farm_dir(out_dir), ec);
  fs::create_directories(farm_dir(out_dir), ec);
  if (ec)
    throw std::runtime_error("merge_results: cannot create " + farm_dir(out_dir) + ": " +
                             ec.message());
  Manifest manifest = Manifest::open(out_dir);

  std::vector<Json> stashes;
  for (auto& [idx, stash] : by_variant) {
    const std::string name = stash.at("name").as_string();
    const std::string hash = stash.at("hash").as_string();
    write_file_durable(stash_path(out_dir, idx), stash.dump() + "\n", nullptr);
    manifest.append({idx, hash, name, "done", 1, ""});
    VariantStatus& st = out.statuses[idx];
    st.name = name;
    st.hash = hash;
    st.state = VariantStatus::State::kDone;
    ++out.completed;
    if (!stash.at("identical").as_bool()) out.all_identical = false;
    stashes.push_back(std::move(stash));
  }
  out.records = assemble_outputs(out_dir, stashes, git_version(), wo);
  return out;
}

}  // namespace airfedga::scenario
