#include "scenario/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace airfedga::scenario {

// ------------------------------------------------------------ sweep paths --

void json_set_path(Json& root, const std::string& path, Json value) {
  if (path.empty()) throw std::invalid_argument("sweep path: must not be empty");
  Json* node = &root;
  std::size_t pos = 0;
  std::string walked;
  while (true) {
    const std::size_t dot = path.find('.', pos);
    const std::string seg = path.substr(pos, dot == std::string::npos ? dot : dot - pos);
    if (seg.empty())
      throw std::invalid_argument("sweep path \"" + path + "\": empty segment after \"" +
                                  walked + "\"");
    const bool is_index = std::all_of(seg.begin(), seg.end(),
                                      [](unsigned char c) { return std::isdigit(c); });
    Json* next = nullptr;
    if (is_index && node->is_array()) {
      if (seg.size() > 9)
        throw std::invalid_argument("sweep path \"" + path + "\": index " + seg +
                                    " out of range (array \"" + walked + "\" has " +
                                    std::to_string(node->as_array().size()) + " elements)");
      const std::size_t idx = std::stoul(seg);
      if (idx >= node->as_array().size())
        throw std::invalid_argument("sweep path \"" + path + "\": index " + seg +
                                    " out of range (array \"" + walked + "\" has " +
                                    std::to_string(node->as_array().size()) + " elements)");
      next = &node->as_array()[idx];
    } else if (node->is_object()) {
      next = node->find(seg);
      if (next == nullptr)
        throw std::invalid_argument("sweep path \"" + path + "\": no key \"" + seg + "\" under \"" +
                                    (walked.empty() ? "<root>" : walked) + "\"");
    } else {
      throw std::invalid_argument("sweep path \"" + path + "\": \"" + walked +
                                  "\" is a scalar, cannot descend into \"" + seg + "\"");
    }
    walked = walked.empty() ? seg : walked + "." + seg;
    if (dot == std::string::npos) {
      *next = std::move(value);
      return;
    }
    node = next;
    pos = dot + 1;
  }
}

std::vector<ScenarioSpec> expand_sweeps(const ScenarioSpec& base,
                                        const std::vector<SweepAxis>& axes) {
  for (const auto& axis : axes)
    if (axis.values.empty())
      throw std::invalid_argument("sweep axis \"" + axis.path + "\": needs at least one value");

  std::vector<ScenarioSpec> out;
  std::vector<std::size_t> idx(axes.size(), 0);
  while (true) {
    Json j = base.to_json();
    std::string suffix;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      json_set_path(j, axes[a].path, axes[a].values[idx[a]]);
      suffix += "@" + axes[a].path + "=" + axes[a].values[idx[a]].dump();
    }
    ScenarioSpec variant = ScenarioSpec::from_json(j);
    if (!suffix.empty()) variant.name += suffix;
    variant.validate();
    out.push_back(std::move(variant));

    std::size_t a = axes.size();
    while (a > 0) {
      --a;
      if (++idx[a] < axes[a].values.size()) break;
      idx[a] = 0;
      if (a == 0) return out;
    }
    if (axes.empty()) return out;
  }
}

// -------------------------------------------------------------------- run --

namespace {
ScenarioSpec apply_overrides(ScenarioSpec spec, const RunOverrides& ov) {
  if (ov.seed) spec.seed = *ov.seed;
  if (ov.threads) spec.threads = *ov.threads;
  if (ov.time_budget) spec.time_budget = *ov.time_budget;
  return spec;
}
}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec, const RunOverrides& ov,
                            std::size_t lane_override) {
  ScenarioResult result;
  result.spec = apply_overrides(spec, ov);
  result.hash = config_hash(result.spec);

  BuiltScenario built = build(result.spec);
  // Execution-only lane cap (lane budget under --jobs). Results are
  // bit-identical for every lane count, so the recorded spec keeps the
  // configured value and only the driver pool shrinks.
  if (lane_override != 0) built.cfg.threads = lane_override;
  for (std::size_t i = 0; i < built.mechanisms.size(); ++i) {
    MechanismResult run;
    run.mechanism = built.mechanism_names[i];
    const auto t0 = std::chrono::steady_clock::now();
    run.metrics = built.mechanisms[i]->run(built.cfg);
    run.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    result.runs.push_back(std::move(run));
  }
  return result;
}

ThreadSweepResult run_thread_sweep(const ScenarioSpec& spec,
                                   const std::vector<std::size_t>& threads,
                                   const RunOverrides& ov) {
  if (threads.empty())
    throw std::invalid_argument("thread sweep: need at least one lane count");

  ThreadSweepResult sweep;
  for (std::size_t t : threads) {
    RunOverrides o = ov;
    o.threads = t;
    ScenarioResult r = run_scenario(spec, o);
    const bool is_baseline = sweep.by_threads.empty();
    for (std::size_t i = 0; i < r.runs.size(); ++i) {
      const bool same =
          is_baseline ||
          sweep.by_threads.front().runs[i].metrics.bit_identical(r.runs[i].metrics);
      r.runs[i].bit_identical = same;
      sweep.all_identical = sweep.all_identical && same;
    }
    sweep.by_threads.push_back(std::move(r));
  }
  return sweep;
}

BatchRunResult run_scenarios(const std::vector<ScenarioSpec>& variants, const RunOverrides& ov,
                             const BatchRunOptions& opt) {
  BatchRunResult out;
  const std::size_t n = variants.size();
  if (n == 0) return out;

  const bool sweep_mode = opt.threads.size() > 1;
  RunOverrides base_ov = ov;
  if (opt.threads.size() == 1) base_ov.threads = opt.threads.front();

  // More jobs than variants would just idle threads, and more jobs than
  // budgeted lanes would oversubscribe the machine (each in-flight variant
  // holds a dataset + scratch-model set and at least one busy lane).
  const std::size_t budget = opt.lane_budget != 0
                                 ? opt.lane_budget
                                 : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t jobs = std::min({std::max<std::size_t>(1, opt.jobs), n, budget});

  // Each variant fills its own slot; flattening afterwards restores the
  // deterministic variant order whatever the completion order was. A
  // determinism sweep yields one result per lane count, so slots are
  // vectors.
  std::vector<std::vector<ScenarioResult>> slots(n);
  std::vector<char> identical(n, 1);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto run_one = [&](std::size_t i) {
    if (sweep_mode) {
      // A determinism sweep verifies the engine *at* the requested lane
      // counts, so the lane budget deliberately does not clamp them.
      ThreadSweepResult sweep = run_thread_sweep(variants[i], opt.threads, base_ov);
      identical[i] = sweep.all_identical ? 1 : 0;
      slots[i] = std::move(sweep.by_threads);
    } else {
      const std::size_t requested = base_ov.threads ? *base_ov.threads : variants[i].threads;
      const std::size_t lanes =
          jobs > 1 ? util::lane_budget_share(requested, jobs, opt.lane_budget) : 0;
      slots[i].push_back(run_scenario(variants[i], base_ov, lanes));
    }
  };

  auto worker = [&] {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        run_one(i);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (jobs == 1) {
    worker();  // serial reference schedule: no extra thread at all
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  for (std::size_t i = 0; i < n; ++i) {
    out.all_identical = out.all_identical && identical[i] != 0;
    for (auto& r : slots[i]) out.results.push_back(std::move(r));
  }
  return out;
}

// ----------------------------------------------------------------- export --

std::string git_version() {
  FILE* pipe = ::popen("git describe --always --dirty --tags 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[128];
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  if (status != 0 || out.empty()) return "unknown";
  return out;
}

namespace {
// Filename-safe stem for a scenario/mechanism name. Sweep-suffixed variant
// names carry '@', '=', '.', and sweep string values may carry anything
// (including path separators), so only [A-Za-z0-9_-] passes through —
// everything else becomes '_'. Distinct names can collide after this
// ("a.b" and "a@b" both map to "a_b"); write_results disambiguates with a
// deterministic counter suffix.
std::string sanitize(std::string s) {
  for (char& c : s)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_') c = '_';
  return s;
}
}  // namespace

Json result_record(const ScenarioResult& scenario, const MechanismResult& run,
                   const std::string& git, const std::string& points_csv,
                   const WriteOptions& opts) {
  const fl::Metrics& m = run.metrics;
  const fl::EngineStats& es = m.engine_stats();

  Json rec = Json::object();
  rec.set("schema_version", kResultsSchemaVersion);
  rec.set("scenario", scenario.spec.name);
  rec.set("config_hash", scenario.hash);
  rec.set("git", git);
  rec.set("mechanism", run.mechanism);
  rec.set("seed", scenario.spec.seed);
  rec.set("threads", scenario.spec.threads);
  rec.set("digest", m.digest());
  if (run.bit_identical) rec.set("bit_identical", Json(*run.bit_identical));
  rec.set("rounds", m.total_rounds());
  rec.set("virtual_seconds", m.total_time());
  rec.set("final_accuracy", m.final_accuracy());
  rec.set("final_loss", m.final_loss());
  rec.set("total_energy_joules", m.obs_total_energy());
  rec.set("average_round_seconds", m.average_round_time());
  rec.set("max_staleness", m.max_staleness());
  if (opts.timing) rec.set("wall_seconds", run.wall_seconds);

  Json engine = Json::object();
  if (opts.timing) {
    engine.set("barrier_seconds", es.barrier_seconds);
    engine.set("eval_seconds", es.eval_seconds);
    // Cooperation counters depend on when lanes happened to be idle, so
    // they are wall-clock-like (run-to-run variable) and --no-timing must
    // omit them to keep result files byte-comparable.
    engine.set("coop_gemms", es.coop_gemms);
    engine.set("coop_helper_tiles", es.coop_helper_tiles);
  }
  engine.set("barriers", es.barriers);
  engine.set("evals", es.evals);
  rec.set("engine_stats", std::move(engine));

  // Observability snapshot (docs/OBSERVABILITY.md). Timing-gated as a
  // block: some values (pool.busy_ns, coop counts) are wall-clock- or
  // lane-scheduling-dependent and --no-timing output must stay
  // byte-comparable across --jobs/threads.
  if (opts.timing && !m.obs_snapshot().empty()) {
    const obs::MetricsSnapshot& snap = m.obs_snapshot();
    Json counters = Json::object();
    for (const auto& [name, value] : snap.counters) counters.set(name, value);
    Json hists = Json::object();
    for (const auto& h : snap.histograms) {
      Json hj = Json::object();
      Json bounds = Json::array();
      for (double b : h.bounds) bounds.push_back(Json(b));
      Json counts = Json::array();
      for (std::uint64_t c : h.counts) counts.push_back(Json(c));
      hj.set("bounds", std::move(bounds));
      hj.set("counts", std::move(counts));
      hj.set("count", h.count);
      hj.set("sum", h.sum);
      hists.set(h.name, std::move(hj));
    }
    Json metrics = Json::object();
    metrics.set("counters", std::move(counters));
    metrics.set("histograms", std::move(hists));
    rec.set("metrics", std::move(metrics));
  }

  rec.set("points_csv", points_csv);
  return rec;
}

namespace {

/// Points stems handed out per output directory over the whole process.
/// The per-call counter in write_results restarts at every invocation, so
/// without this registry a second --append call would re-derive the same
/// "_2" suffixes and clobber the first call's series even when the files
/// are gone from disk (deleted, or buffered but not yet visible).
std::mutex g_stems_mutex;
std::unordered_map<std::string, std::unordered_set<std::string>> g_claimed_stems;

}  // namespace

void write_results(const std::string& out_dir, const std::vector<ScenarioResult>& results,
                   const std::string& git, const WriteOptions& opts) {
  namespace fs = std::filesystem;
  std::error_code ec;
  // Fresh mode replaces the whole result set: stale points files from an
  // earlier invocation would otherwise survive the row-file truncation and
  // desynchronize anything that globs points/*.csv.
  if (!opts.append) fs::remove_all(fs::path(out_dir) / "points", ec);
  fs::create_directories(fs::path(out_dir) / "points", ec);
  if (ec)
    throw std::runtime_error("write_results: cannot create output directory " + out_dir + ": " +
                             ec.message());

  const std::string jsonl_path = out_dir + "/results.jsonl";
  std::ofstream jsonl(jsonl_path, opts.append ? std::ios::app : std::ios::trunc);
  if (!jsonl) throw std::runtime_error("write_results: cannot open " + jsonl_path);

  std::vector<std::string> columns = {"schema_version", "scenario",   "mechanism", "seed",
                                      "threads",        "config_hash", "git",      "digest",
                                      "bit_identical",  "rounds",      "virtual_s", "final_acc",
                                      "final_loss",     "energy_J"};
  if (opts.timing) columns.push_back("wall_s");
  util::Table summary(columns);

  // Sanitized points stems can collide across distinct run identities
  // (sanitize is lossy). Count identities per stem in deterministic result
  // order and suffix repeats, so every run keeps its own series file.
  std::unordered_map<std::string, std::size_t> stem_uses;

  // Key the session registry by the physical directory, so "./out" and
  // "out" share one claim set.
  const fs::path canon = fs::weakly_canonical(fs::path(out_dir), ec);
  const std::string dir_key = (ec || canon.empty()) ? out_dir : canon.string();
  std::scoped_lock stems_lock(g_stems_mutex);
  auto& claimed = g_claimed_stems[dir_key];
  // Fresh mode wiped points/ above; stems from earlier invocations are free
  // again.
  if (!opts.append) claimed.clear();

  for (const auto& scenario : results) {
    for (const auto& run : scenario.runs) {
      const std::string base = sanitize(scenario.spec.name) + "_" + sanitize(run.mechanism) +
                               "_t" + std::to_string(scenario.spec.threads);
      std::size_t uses = ++stem_uses[base];
      std::string stem = uses > 1 ? base + "_" + std::to_string(uses) : base;
      // Cross-invocation collisions: an earlier --append call in this
      // session (registry) or an earlier process (files on disk) may
      // already own this stem — the counter above only sees this call.
      // Keep bumping the deterministic suffix so appended runs never
      // clobber an existing points series, even one deleted from disk
      // after being claimed.
      while (claimed.count(stem) != 0 ||
             (opts.append && fs::exists(fs::path(out_dir) / "points" / (stem + ".csv")))) {
        uses = ++stem_uses[base];
        stem = base + "_" + std::to_string(uses);
      }
      claimed.insert(stem);
      // Recorded relative to out_dir, so result directories are relocatable
      // and the JSONL is byte-identical wherever --out points.
      const std::string points_csv = "points/" + stem + ".csv";
      run.metrics.write_csv(out_dir + "/" + points_csv);
      jsonl << result_record(scenario, run, git, points_csv, opts).dump() << '\n';

      std::vector<std::string> row = {std::to_string(kResultsSchemaVersion), scenario.spec.name,
                                      run.mechanism, std::to_string(scenario.spec.seed),
                                      std::to_string(scenario.spec.threads), scenario.hash, git,
                                      run.metrics.digest(),
                                      run.bit_identical ? (*run.bit_identical ? "true" : "false")
                                                        : "",
                                      std::to_string(run.metrics.total_rounds()),
                                      util::Table::fmt(run.metrics.total_time(), 0),
                                      util::Table::fmt(run.metrics.final_accuracy(), 4),
                                      util::Table::fmt(run.metrics.final_loss(), 4),
                                      util::Table::fmt(run.metrics.obs_total_energy(), 0)};
      if (opts.timing) row.push_back(util::Table::fmt(run.wall_seconds, 2));
      summary.add_row(std::move(row));
    }
  }
  if (!jsonl.flush())
    throw std::runtime_error("write_results: failed writing " + jsonl_path);
  summary.write_csv(out_dir + "/summary.csv", opts.append);
}

}  // namespace airfedga::scenario
