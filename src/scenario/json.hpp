#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \namespace airfedga::scenario
/// Declarative scenario layer: a dependency-free JSON value type, the
/// ScenarioSpec that covers the full FLConfig surface, the preset registry
/// of paper figure/table setups, and the runner behind the airfedga CLI.

namespace airfedga::scenario {

/// Parse error with the 1-based line/column of the offending character and
/// a message that names what was expected.
class JsonError : public std::runtime_error {
 public:
  JsonError(std::string message, std::size_t line, std::size_t column)
      : std::runtime_error(message + " at line " + std::to_string(line) + ", column " +
                           std::to_string(column)),
        line_(line),
        column_(column) {}

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// A JSON value (null, bool, number, string, array, object). Objects keep
/// insertion order so dump -> parse -> dump is byte-stable, which the
/// scenario config hash relies on. Strict RFC 8259 parsing: no comments,
/// no trailing commas, no duplicate keys, full \u escape handling
/// (including surrogate pairs), and numbers must be finite.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double v);  // throws std::invalid_argument on NaN/inf
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(unsigned v) : Json(static_cast<double>(v)) {}
  Json(long v) : Json(static_cast<double>(v)) {}
  Json(unsigned long v) : Json(static_cast<double>(v)) {}
  Json(unsigned long long v) : Json(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::String), string_(s) {}
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Json(Array a) : type_(Type::Array), array_(std::move(a)) {}
  Json(Object o) : type_(Type::Object), object_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::Number; }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; throw std::runtime_error naming the actual type on
  /// mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object lookup: pointer to the member value, or nullptr when absent
  /// (or when this is not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;
  [[nodiscard]] Json* find(std::string_view key);
  [[nodiscard]] bool contains(std::string_view key) const { return find(key) != nullptr; }

  /// Object access that throws (with the key in the message) when missing.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Inserts or replaces an object member (keeps first-insertion order).
  void set(std::string key, Json value);

  /// Appends to an array value.
  void push_back(Json value);

  /// Human-readable name of a Type ("object", "number", ...).
  static const char* type_name(Type t);

  /// Parses a complete JSON document; trailing non-whitespace is an error.
  static Json parse(std::string_view text);

  /// Serializes. `indent` < 0 gives a compact single line; >= 0 pretty
  /// prints with that many spaces per level. Numbers use the shortest
  /// representation that round-trips (to_chars), so dump/parse is lossless.
  [[nodiscard]] std::string dump(int indent = -1) const;

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace airfedga::scenario
