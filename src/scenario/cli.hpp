#pragma once

#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace airfedga::scenario::cli {

/// Argument parsing and study loading for the airfedga_cli tool, kept in
/// the library so every piece is unit-testable (tools/airfedga_cli.cpp
/// stays a thin command dispatcher). All parsers throw
/// std::invalid_argument with the offending flag and token in the message.

/// Splits "a,b,c" into tokens (empty tokens are an error).
std::vector<std::string> split_list(const std::string& list, const std::string& what);

/// Parses a non-negative integer of at most 18 digits (covers every seed
/// the JSON schema itself can carry — numbers are doubles, exact to 2^53 —
/// without overflowing), rejecting signs, spaces, and trailing garbage.
std::size_t parse_count(const std::string& tok, const std::string& what);

/// Parses a strictly positive finite double with std::from_chars, which is
/// locale-independent — std::strtod honors LC_NUMERIC, so under e.g. a
/// de_DE locale it would reject "1.5" or silently truncate at the '.'.
/// Rejects empty tokens, trailing garbage ("1.5x"), hex ("0x10"),
/// inf/nan, and values <= 0.
double parse_positive_double(const std::string& tok, const std::string& what);

/// A sweep value is a JSON scalar: number/bool/null if it parses as one, a
/// string otherwise (so --sweep partition.kind=iid,dirichlet works).
Json parse_sweep_value(const std::string& tok);

/// Parses one "path=v1,v2,..." sweep assignment into an axis.
SweepAxis parse_sweep_axis(const std::string& assign, const std::string& what);

/// Everything the `run` and `run-dir` commands accept.
struct RunArgs {
  std::vector<std::string> sources;      ///< positional args (scenario / directory)
  RunOverrides overrides;                ///< --seed / --time-budget
  std::vector<std::size_t> threads;      ///< --threads (2+ entries = determinism sweep)
  std::vector<SweepAxis> sweeps;         ///< --sweep axes, in flag order
  std::size_t jobs = 1;                  ///< --jobs=N concurrent variants
  bool append = false;                   ///< --append: accumulate result files
  bool timing = true;                    ///< cleared by --no-timing (byte-stable output)
  std::string out_dir = "scenario_results";  ///< --out=DIR
  /// --trace[=PATH]: collect obs spans/metrics and write a Chrome trace
  /// JSON after the runs. Execution-only — the spec is not modified, so a
  /// traced run keeps the untraced run's config_hash and digests.
  bool trace = false;
  std::string trace_path;  ///< empty = <out_dir>/trace.json

  // Crash-safe farm flags (docs/SCENARIOS.md "Crash-safe farm").
  bool resume = false;            ///< --resume: skip durably-done variants
  std::size_t retries = 0;        ///< --retries=K extra attempts per variant
  double variant_timeout = 0.0;   ///< --variant-timeout=S wall seconds (0 = none)
  std::size_t shard_index = 0;    ///< --shard=i/N (1-based; 0/0 = unsharded)
  std::size_t shard_count = 0;
  bool progress = true;           ///< cleared by --no-progress
  std::vector<std::string> faults;  ///< --fault=SPEC (repeatable; armed by main)
};

/// Parses run/run-dir flags: --seed, --threads, --time-budget, --jobs,
/// --append, --no-timing, --out, --trace[=PATH], --sweep in both its
/// one-token (--sweep=path=v1,v2) and two-token (--sweep path=v1,v2) forms,
/// and the farm flags --resume, --retries=K, --variant-timeout=S,
/// --shard=i/N, --no-progress, --fault=SPEC. Positional arguments land in
/// `sources` (count is validated by the command, not here). Unknown --flags
/// are an error, as is --resume together with --append (the farm owns the
/// output directory; --append uses the accumulate-only legacy writer).
RunArgs parse_run_args(const std::vector<std::string>& args);

/// A study: one scenario spec plus the sweep axes checked in next to it.
/// Expanding the sweeps over the spec yields the study's variant grid.
struct Study {
  ScenarioSpec spec;
  std::vector<SweepAxis> sweeps;
};

/// Parses study JSON: a scenario spec document that may additionally carry
/// a top-level "sweeps" object mapping dotted spec paths to value arrays,
///   "sweeps": { "mechanisms.0.xi": [0.1, 0.3], "run.seed": [1, 2] }
/// Axis order is the key order in the file (object order is preserved).
/// The "sweeps" key is stripped before spec parsing, so plain spec
/// documents remain valid studies with no axes.
Study parse_study(const Json& j);

/// Loads a study from a preset name, a .json file path, or "-" (stdin).
Study load_study(const std::string& source);

/// The *.json files directly inside `dir`, sorted by filename so a
/// directory of studies always runs (and exports) in the same order.
/// Throws when `dir` is not a directory or contains no .json files.
std::vector<std::string> list_scenario_files(const std::string& dir);

}  // namespace airfedga::scenario::cli
