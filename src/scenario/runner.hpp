#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fl/metrics.hpp"
#include "scenario/json.hpp"
#include "scenario/spec.hpp"

namespace airfedga::scenario {

/// CLI-level overrides applied to a spec before running (seed, lane count,
/// virtual-time budget). Absent fields leave the spec untouched.
struct RunOverrides {
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> threads;
  std::optional<double> time_budget;
};

/// One sweep axis: a dotted path into the spec's JSON form plus the values
/// to grid over (e.g. {"mechanisms.0.xi", [0, 0.1, 0.3]}).
struct SweepAxis {
  std::string path;
  std::vector<Json> values;
};

/// Sets `value` at a dotted `path` inside `root` ("run.seed",
/// "mechanisms.0.xi"; integer segments index arrays). Throws
/// std::invalid_argument naming the failing segment when the path does not
/// resolve — creating new keys is deliberately not allowed, so a typo
/// cannot silently add an ignored knob (from_json would also reject it).
void json_set_path(Json& root, const std::string& path, Json value);

/// Cartesian product of `axes` applied to `base`: every combination yields
/// one variant spec (validated). With no axes, returns just `base`. The
/// returned specs carry a "name" suffixed with the swept assignments
/// (e.g. "fig08_xi_sweep@mechanisms.0.xi=0.1").
std::vector<ScenarioSpec> expand_sweeps(const ScenarioSpec& base,
                                        const std::vector<SweepAxis>& axes);

/// Result of running one mechanism of one scenario variant.
struct MechanismResult {
  std::string mechanism;     ///< display name ("Air-FedGA", ...)
  fl::Metrics metrics;       ///< full recorded series
  double wall_seconds = 0.0; ///< real time the run took
  /// True when a multi-lane-count check ran and this run matched the
  /// first lane count bit for bit; unset (empty) otherwise.
  std::optional<bool> bit_identical;
};

/// All mechanism runs of one scenario variant.
struct ScenarioResult {
  ScenarioSpec spec;
  std::string hash;  ///< config_hash(spec)
  std::vector<MechanismResult> runs;
};

/// Runs every mechanism of `spec` (after applying `ov`) serially on the
/// configured lane count and returns the per-mechanism results.
ScenarioResult run_scenario(const ScenarioSpec& spec, const RunOverrides& ov = {});

/// Determinism sweep: runs `spec` once per lane count in `threads` and
/// checks every mechanism's metrics are bit-identical across lane counts
/// (the execution engine's contract). Each returned ScenarioResult is one
/// lane count, with `bit_identical` set on every run (the first lane count
/// is the baseline and reports true). `all_identical` is the conjunction.
struct ThreadSweepResult {
  std::vector<ScenarioResult> by_threads;
  bool all_identical = true;
};
ThreadSweepResult run_thread_sweep(const ScenarioSpec& spec,
                                   const std::vector<std::size_t>& threads,
                                   const RunOverrides& ov = {});

/// `git describe --always --dirty --tags` of the working tree, or
/// "unknown" when git or the repository is unavailable.
std::string git_version();

/// Writes structured results under `out_dir` (created if missing):
///   results.jsonl  — one JSON object per (variant, mechanism) run:
///                    scenario, config_hash, git, mechanism, seed, threads,
///                    digest, bit_identical, summary metrics, EngineStats,
///                    and the path of the per-run points CSV
///   summary.csv    — the same summary rows as CSV
///   points/<scenario>_<mechanism>_t<threads>.csv — full metric series
/// `results.jsonl` is appended to (a sweep session accumulates), the
/// others are rewritten per call.
void write_results(const std::string& out_dir, const std::vector<ScenarioResult>& results,
                   const std::string& git);

/// The JSONL record for one run (exposed for tests and the CLI summary).
Json result_record(const ScenarioResult& scenario, const MechanismResult& run,
                   const std::string& git, const std::string& points_csv);

}  // namespace airfedga::scenario
