#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fl/metrics.hpp"
#include "scenario/json.hpp"
#include "scenario/spec.hpp"

namespace airfedga::scenario {

/// CLI-level overrides applied to a spec before running (seed, lane count,
/// virtual-time budget). Absent fields leave the spec untouched.
struct RunOverrides {
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> threads;
  std::optional<double> time_budget;
};

/// One sweep axis: a dotted path into the spec's JSON form plus the values
/// to grid over (e.g. {"mechanisms.0.xi", [0, 0.1, 0.3]}).
struct SweepAxis {
  std::string path;
  std::vector<Json> values;
};

/// Sets `value` at a dotted `path` inside `root` ("run.seed",
/// "mechanisms.0.xi"; integer segments index arrays). Throws
/// std::invalid_argument naming the failing segment when the path does not
/// resolve — creating new keys is deliberately not allowed, so a typo
/// cannot silently add an ignored knob (from_json would also reject it).
void json_set_path(Json& root, const std::string& path, Json value);

/// Cartesian product of `axes` applied to `base`: every combination yields
/// one variant spec (validated). With no axes, returns just `base`. The
/// returned specs carry a "name" suffixed with the swept assignments
/// (e.g. "fig08_xi_sweep@mechanisms.0.xi=0.1").
std::vector<ScenarioSpec> expand_sweeps(const ScenarioSpec& base,
                                        const std::vector<SweepAxis>& axes);

/// Result of running one mechanism of one scenario variant.
struct MechanismResult {
  std::string mechanism;     ///< display name ("Air-FedGA", ...)
  fl::Metrics metrics;       ///< full recorded series
  double wall_seconds = 0.0; ///< real time the run took
  /// True when a multi-lane-count check ran and this run matched the
  /// first lane count bit for bit; unset (empty) otherwise.
  std::optional<bool> bit_identical;
};

/// All mechanism runs of one scenario variant.
struct ScenarioResult {
  ScenarioSpec spec;
  std::string hash;  ///< config_hash(spec)
  std::vector<MechanismResult> runs;
};

/// Runs every mechanism of `spec` (after applying `ov`) serially on the
/// configured lane count and returns the per-mechanism results.
///
/// `lane_override` (when nonzero) caps the *execution* lane count without
/// touching the recorded spec: the batch runner uses it to apply the lane
/// budget under `--jobs` (util::lane_budget_share). Because the engine is
/// bit-deterministic for every lane count, the override never changes the
/// metrics — only wall time — so the recorded `spec.threads` stays the
/// configured value and result files stay byte-stable across job counts.
///
/// `cancel` (when non-null) is handed to the engine as FLConfig::cancel: a
/// set token makes the run throw fl::RunCancelled at the next event.
ScenarioResult run_scenario(const ScenarioSpec& spec, const RunOverrides& ov = {},
                            std::size_t lane_override = 0,
                            const std::atomic<bool>* cancel = nullptr);

/// Determinism sweep: runs `spec` once per lane count in `threads` and
/// checks every mechanism's metrics are bit-identical across lane counts
/// (the execution engine's contract). Each returned ScenarioResult is one
/// lane count, with `bit_identical` set on every run (the first lane count
/// is the baseline and reports true). `all_identical` is the conjunction.
struct ThreadSweepResult {
  std::vector<ScenarioResult> by_threads;
  bool all_identical = true;
};
ThreadSweepResult run_thread_sweep(const ScenarioSpec& spec,
                                   const std::vector<std::size_t>& threads,
                                   const RunOverrides& ov = {},
                                   const std::atomic<bool>* cancel = nullptr);

/// How a batch of independent variants executes (`--jobs`).
struct BatchRunOptions {
  /// Variants in flight at once. 1 (the default) runs the batch serially on
  /// the calling thread — the reference schedule. N > 1 runs up to N
  /// variants concurrently, each with its own driver (so memory holds one
  /// dataset + model-replica set per in-flight variant, not per variant).
  /// Clamped to the variant count and to the lane budget — every in-flight
  /// variant occupies at least one lane, so more jobs than budgeted lanes
  /// would oversubscribe the machine.
  std::size_t jobs = 1;
  /// Total training lanes across all in-flight variants; 0 = hardware
  /// concurrency. With jobs > 1 each variant's pool is clamped to
  /// util::lane_budget_share(requested, jobs, lane_budget). Ignored for
  /// determinism sweeps, which must run the exact lane counts under test.
  std::size_t lane_budget = 0;
  /// Lane counts: empty = the spec's own `threads`; one entry = override;
  /// more than one = per-variant determinism sweep (run_thread_sweep).
  std::vector<std::size_t> threads;
};

/// Results of a batch run, flattened in *variant order* (and, for
/// determinism sweeps, lane-count order within each variant) regardless of
/// completion order — so exporting them yields byte-stable files for every
/// `jobs` value.
struct BatchRunResult {
  std::vector<ScenarioResult> results;
  bool all_identical = true;  ///< conjunction over determinism sweeps (true otherwise)
};

/// Runs every variant (each expanded spec of a sweep grid, or every study
/// of a scenario directory) under `ov`, `opt.jobs` at a time. Work is
/// handed to jobs as whole variants; the first failing variant's exception
/// is rethrown after in-flight variants drain. Results come back in
/// deterministic variant order (see BatchRunResult).
BatchRunResult run_scenarios(const std::vector<ScenarioSpec>& variants,
                             const RunOverrides& ov = {}, const BatchRunOptions& opt = {});

/// `git describe --always --dirty --tags` of the working tree, or
/// "unknown" when git or the repository is unavailable.
std::string git_version();

/// Schema version stamped into every results.jsonl record. Bump whenever a
/// field is added, removed, or changes meaning, and document the change in
/// docs/SCENARIOS.md. Version 2 = first stamped schema (v1 records carry no
/// `schema_version` key).
inline constexpr int kResultsSchemaVersion = 2;

/// How write_results treats existing files and wall-clock fields.
struct WriteOptions {
  /// false (default): the directory describes exactly this call's results —
  /// the row files are replaced and the points directory is cleared, so no
  /// file can describe a run the row files don't. true: rows accumulate
  /// (summary's header is written once) and points files persist, for
  /// multi-invocation sessions.
  bool append = false;
  /// false: omit wall-clock fields (wall_seconds, engine_stats.*_seconds)
  /// so the output is byte-for-byte reproducible across machines and job
  /// counts; deterministic counters (engine_stats.barriers/evals) stay.
  bool timing = true;
};

/// Writes structured results under `out_dir` (created if missing):
///   results.jsonl  — one JSON object per (variant, mechanism) run:
///                    schema_version, scenario, config_hash, git, mechanism,
///                    seed, threads, digest, bit_identical, summary metrics,
///                    EngineStats, and the path of the per-run points CSV
///   summary.csv    — the same summary rows as CSV
///   points/<scenario>_<mechanism>_t<threads>.csv — full metric series
///     (scenario/mechanism sanitized to [A-Za-z0-9_-]; colliding sanitized
///     stems get a deterministic _2, _3, ... suffix; recorded in the JSONL
///     relative to out_dir so result directories are relocatable)
/// Both row files are fresh by default and appended with opts.append; the
/// points files are keyed by run and always rewritten. Serialized: one call
/// writes everything from the calling thread in result order, so the files
/// are byte-stable for any BatchRunOptions::jobs.
void write_results(const std::string& out_dir, const std::vector<ScenarioResult>& results,
                   const std::string& git, const WriteOptions& opts = {});

/// The JSONL record for one run (exposed for tests and the CLI summary).
Json result_record(const ScenarioResult& scenario, const MechanismResult& run,
                   const std::string& git, const std::string& points_csv,
                   const WriteOptions& opts = {});

// ---------------------------------------------------------------------------
// Crash-safe scenario farm (docs/SCENARIOS.md "Crash-safe farm").
//
// run_farm is the durable sibling of run_scenarios + write_results: every
// variant transition is journalled to out_dir/manifest.jsonl, every finished
// variant's results are stashed durably under out_dir/farm/, and the final
// results.jsonl / summary.csv / points/ are *assembled from the stashes* in
// variant order. Because uninterrupted and resumed runs share that single
// assembly path, a killed-and-resumed batch re-emits the output files
// byte-identically (with WriteOptions::timing false; wall clocks vary).
// ---------------------------------------------------------------------------

/// Fate of one variant after a farm run.
struct VariantStatus {
  std::size_t variant = 0;       ///< index in the variant list
  std::string name;              ///< spec name (after sweep expansion)
  std::string hash;              ///< config_hash of the variant
  enum class State {
    kDone,           ///< completed (this run, any attempt)
    kFailed,         ///< quarantined after 1 + retries attempts
    kSkippedResume,  ///< --resume found a durable done stash; not re-run
    kNotRun,         ///< never started, or abandoned on interrupt/shard
  };
  State state = State::kNotRun;
  std::size_t attempts = 0;  ///< run attempts this session (0 when skipped)
  std::string error;         ///< last error text for kFailed
};

/// Knobs of a farm run, superset of BatchRunOptions.
struct FarmOptions {
  std::size_t jobs = 1;         ///< variants in flight at once (see BatchRunOptions)
  std::size_t lane_budget = 0;  ///< total lanes across in-flight variants
  std::vector<std::size_t> threads;  ///< lane counts (see BatchRunOptions)
  /// Extra attempts after a variant's first failure before it is
  /// quarantined as failed (0 = fail fast on first error).
  std::size_t retries = 0;
  /// Wall-clock seconds a single attempt may run before the watchdog
  /// cancels it (counts as a failed attempt). 0 = no timeout.
  double variant_timeout = 0.0;
  /// Exponential backoff between attempts: base * 2^(attempt-1), capped.
  double backoff_base = 0.1;
  double backoff_cap = 2.0;
  /// Skip variants whose manifest state is done *and* whose stash is
  /// intact; re-run everything else. false starts the farm fresh.
  bool resume = false;
  /// Shard i of N (1-based index, 0/0 = no sharding): this invocation only
  /// runs variants with index % shard_count == shard_index - 1. The
  /// resulting partial directories merge with merge_results.
  std::size_t shard_index = 0;
  std::size_t shard_count = 0;
  /// Per-variant progress/ETA lines on stderr.
  bool progress = false;
  /// Invoked (serialized) after each variant settles — the CLI uses this
  /// for progress lines; tests use it to trigger interrupts mid-batch.
  std::function<void(const VariantStatus&)> on_status;
};

/// Outcome of run_farm.
struct FarmResult {
  std::vector<VariantStatus> statuses;  ///< one per variant, variant order
  /// Final (patched) results.jsonl records in variant order — what the
  /// assembled file contains, for the CLI summary table and tests.
  std::vector<Json> records;
  std::size_t completed = 0;      ///< done this session (excl. resume skips)
  std::size_t failed = 0;         ///< quarantined variants
  std::size_t resumed_skips = 0;  ///< variants satisfied by a prior session
  std::size_t retries = 0;        ///< extra attempts spent across variants
  bool all_identical = true;      ///< conjunction over determinism sweeps
  /// True when the farm stopped early (farm_request_stop, e.g. SIGINT):
  /// output files were NOT assembled; re-run with resume to finish.
  bool interrupted = false;
};

/// Runs `variants` as a crash-safe farm rooted at `out_dir` (see the block
/// comment above). Throws only on environmental errors (unwritable out_dir,
/// corrupt manifest interior); per-variant failures are quarantined into
/// FarmResult instead. `wo.append` is not supported (throws) — the farm owns
/// the whole directory.
FarmResult run_farm(const std::vector<ScenarioSpec>& variants, const std::string& out_dir,
                    const RunOverrides& ov = {}, const FarmOptions& opt = {},
                    const WriteOptions& wo = {});

/// Merges the farm stashes of `shard_dirs` (each a run_farm out_dir, e.g.
/// one per machine of a --shard=i/N sweep) into `out_dir`: stashes are
/// unioned by variant index (identical duplicates allowed; conflicting
/// hashes throw), a fresh manifest is journalled, and the output files are
/// assembled exactly as an unsharded run would have. Returns the union's
/// statuses/records; variants no shard completed stay kNotRun and make
/// the merge report them (`interrupted` stays false; check statuses).
FarmResult merge_results(const std::string& out_dir, const std::vector<std::string>& shard_dirs,
                         const WriteOptions& wo = {});

/// Async-signal-safe global stop flag for in-flight farms: request_stop
/// makes every running variant cancel (fl::RunCancelled) and the farm
/// return with `interrupted` set after journalling; safe to call from a
/// signal handler. clear resets it (tests / repeated CLI invocations).
void farm_request_stop() noexcept;
bool farm_stop_requested() noexcept;
void farm_clear_stop() noexcept;

}  // namespace airfedga::scenario
