#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fl/metrics.hpp"
#include "scenario/json.hpp"
#include "scenario/spec.hpp"

namespace airfedga::scenario {

/// CLI-level overrides applied to a spec before running (seed, lane count,
/// virtual-time budget). Absent fields leave the spec untouched.
struct RunOverrides {
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> threads;
  std::optional<double> time_budget;
};

/// One sweep axis: a dotted path into the spec's JSON form plus the values
/// to grid over (e.g. {"mechanisms.0.xi", [0, 0.1, 0.3]}).
struct SweepAxis {
  std::string path;
  std::vector<Json> values;
};

/// Sets `value` at a dotted `path` inside `root` ("run.seed",
/// "mechanisms.0.xi"; integer segments index arrays). Throws
/// std::invalid_argument naming the failing segment when the path does not
/// resolve — creating new keys is deliberately not allowed, so a typo
/// cannot silently add an ignored knob (from_json would also reject it).
void json_set_path(Json& root, const std::string& path, Json value);

/// Cartesian product of `axes` applied to `base`: every combination yields
/// one variant spec (validated). With no axes, returns just `base`. The
/// returned specs carry a "name" suffixed with the swept assignments
/// (e.g. "fig08_xi_sweep@mechanisms.0.xi=0.1").
std::vector<ScenarioSpec> expand_sweeps(const ScenarioSpec& base,
                                        const std::vector<SweepAxis>& axes);

/// Result of running one mechanism of one scenario variant.
struct MechanismResult {
  std::string mechanism;     ///< display name ("Air-FedGA", ...)
  fl::Metrics metrics;       ///< full recorded series
  double wall_seconds = 0.0; ///< real time the run took
  /// True when a multi-lane-count check ran and this run matched the
  /// first lane count bit for bit; unset (empty) otherwise.
  std::optional<bool> bit_identical;
};

/// All mechanism runs of one scenario variant.
struct ScenarioResult {
  ScenarioSpec spec;
  std::string hash;  ///< config_hash(spec)
  std::vector<MechanismResult> runs;
};

/// Runs every mechanism of `spec` (after applying `ov`) serially on the
/// configured lane count and returns the per-mechanism results.
///
/// `lane_override` (when nonzero) caps the *execution* lane count without
/// touching the recorded spec: the batch runner uses it to apply the lane
/// budget under `--jobs` (util::lane_budget_share). Because the engine is
/// bit-deterministic for every lane count, the override never changes the
/// metrics — only wall time — so the recorded `spec.threads` stays the
/// configured value and result files stay byte-stable across job counts.
ScenarioResult run_scenario(const ScenarioSpec& spec, const RunOverrides& ov = {},
                            std::size_t lane_override = 0);

/// Determinism sweep: runs `spec` once per lane count in `threads` and
/// checks every mechanism's metrics are bit-identical across lane counts
/// (the execution engine's contract). Each returned ScenarioResult is one
/// lane count, with `bit_identical` set on every run (the first lane count
/// is the baseline and reports true). `all_identical` is the conjunction.
struct ThreadSweepResult {
  std::vector<ScenarioResult> by_threads;
  bool all_identical = true;
};
ThreadSweepResult run_thread_sweep(const ScenarioSpec& spec,
                                   const std::vector<std::size_t>& threads,
                                   const RunOverrides& ov = {});

/// How a batch of independent variants executes (`--jobs`).
struct BatchRunOptions {
  /// Variants in flight at once. 1 (the default) runs the batch serially on
  /// the calling thread — the reference schedule. N > 1 runs up to N
  /// variants concurrently, each with its own driver (so memory holds one
  /// dataset + model-replica set per in-flight variant, not per variant).
  /// Clamped to the variant count and to the lane budget — every in-flight
  /// variant occupies at least one lane, so more jobs than budgeted lanes
  /// would oversubscribe the machine.
  std::size_t jobs = 1;
  /// Total training lanes across all in-flight variants; 0 = hardware
  /// concurrency. With jobs > 1 each variant's pool is clamped to
  /// util::lane_budget_share(requested, jobs, lane_budget). Ignored for
  /// determinism sweeps, which must run the exact lane counts under test.
  std::size_t lane_budget = 0;
  /// Lane counts: empty = the spec's own `threads`; one entry = override;
  /// more than one = per-variant determinism sweep (run_thread_sweep).
  std::vector<std::size_t> threads;
};

/// Results of a batch run, flattened in *variant order* (and, for
/// determinism sweeps, lane-count order within each variant) regardless of
/// completion order — so exporting them yields byte-stable files for every
/// `jobs` value.
struct BatchRunResult {
  std::vector<ScenarioResult> results;
  bool all_identical = true;  ///< conjunction over determinism sweeps (true otherwise)
};

/// Runs every variant (each expanded spec of a sweep grid, or every study
/// of a scenario directory) under `ov`, `opt.jobs` at a time. Work is
/// handed to jobs as whole variants; the first failing variant's exception
/// is rethrown after in-flight variants drain. Results come back in
/// deterministic variant order (see BatchRunResult).
BatchRunResult run_scenarios(const std::vector<ScenarioSpec>& variants,
                             const RunOverrides& ov = {}, const BatchRunOptions& opt = {});

/// `git describe --always --dirty --tags` of the working tree, or
/// "unknown" when git or the repository is unavailable.
std::string git_version();

/// Schema version stamped into every results.jsonl record. Bump whenever a
/// field is added, removed, or changes meaning, and document the change in
/// docs/SCENARIOS.md. Version 2 = first stamped schema (v1 records carry no
/// `schema_version` key).
inline constexpr int kResultsSchemaVersion = 2;

/// How write_results treats existing files and wall-clock fields.
struct WriteOptions {
  /// false (default): the directory describes exactly this call's results —
  /// the row files are replaced and the points directory is cleared, so no
  /// file can describe a run the row files don't. true: rows accumulate
  /// (summary's header is written once) and points files persist, for
  /// multi-invocation sessions.
  bool append = false;
  /// false: omit wall-clock fields (wall_seconds, engine_stats.*_seconds)
  /// so the output is byte-for-byte reproducible across machines and job
  /// counts; deterministic counters (engine_stats.barriers/evals) stay.
  bool timing = true;
};

/// Writes structured results under `out_dir` (created if missing):
///   results.jsonl  — one JSON object per (variant, mechanism) run:
///                    schema_version, scenario, config_hash, git, mechanism,
///                    seed, threads, digest, bit_identical, summary metrics,
///                    EngineStats, and the path of the per-run points CSV
///   summary.csv    — the same summary rows as CSV
///   points/<scenario>_<mechanism>_t<threads>.csv — full metric series
///     (scenario/mechanism sanitized to [A-Za-z0-9_-]; colliding sanitized
///     stems get a deterministic _2, _3, ... suffix; recorded in the JSONL
///     relative to out_dir so result directories are relocatable)
/// Both row files are fresh by default and appended with opts.append; the
/// points files are keyed by run and always rewritten. Serialized: one call
/// writes everything from the calling thread in result order, so the files
/// are byte-stable for any BatchRunOptions::jobs.
void write_results(const std::string& out_dir, const std::vector<ScenarioResult>& results,
                   const std::string& git, const WriteOptions& opts = {});

/// The JSONL record for one run (exposed for tests and the CLI summary).
Json result_record(const ScenarioResult& scenario, const MechanismResult& run,
                   const std::string& git, const std::string& points_csv,
                   const WriteOptions& opts = {});

}  // namespace airfedga::scenario
