#include "scenario/manifest.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/fault.hpp"

namespace airfedga::scenario {

namespace fs = std::filesystem;

Json ManifestRecord::to_json() const {
  Json j = Json::object();
  j.set("m", kManifestVersion);
  j.set("variant", variant);
  j.set("hash", config_hash);
  j.set("name", name);
  j.set("state", state);
  j.set("attempt", attempt);
  if (!error.empty()) j.set("error", error);
  return j;
}

ManifestRecord ManifestRecord::from_json(const Json& j) {
  const int version = static_cast<int>(j.at("m").as_number());
  if (version != kManifestVersion)
    throw std::runtime_error("manifest: unsupported record version " + std::to_string(version));
  ManifestRecord rec;
  rec.variant = static_cast<std::size_t>(j.at("variant").as_number());
  rec.config_hash = j.at("hash").as_string();
  rec.name = j.at("name").as_string();
  rec.state = j.at("state").as_string();
  rec.attempt = static_cast<std::size_t>(j.at("attempt").as_number());
  if (const Json* e = j.find("error")) rec.error = e->as_string();
  if (rec.state != "running" && rec.state != "done" && rec.state != "failed")
    throw std::runtime_error("manifest: unknown state \"" + rec.state + "\"");
  return rec;
}

Manifest::Manifest(Manifest&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      records_(std::move(other.records_)),
      truncated_bytes_(other.truncated_bytes_) {}

Manifest& Manifest::operator=(Manifest&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    records_ = std::move(other.records_);
    truncated_bytes_ = other.truncated_bytes_;
  }
  return *this;
}

Manifest::~Manifest() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Manifest::path_in(const std::string& out_dir) {
  return (fs::path(out_dir) / "manifest.jsonl").string();
}

Manifest Manifest::open(const std::string& out_dir) {
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec)
    throw std::runtime_error("manifest: cannot create directory " + out_dir + ": " +
                             ec.message());

  Manifest m;
  m.path_ = path_in(out_dir);

  // Recovery pass: load every complete record; a torn trailing write (the
  // one write a crash can interrupt) is cut off so the file ends at a
  // record boundary again.
  std::string text;
  {
    std::ifstream in(m.path_, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      text = ss.str();
    }
  }
  std::size_t good_end = 0;  // byte offset just past the last intact record
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // unterminated tail: torn
    const std::string line = text.substr(pos, nl - pos);
    ManifestRecord rec;
    bool ok = true;
    try {
      rec = ManifestRecord::from_json(Json::parse(line));
    } catch (const std::exception&) {
      ok = false;
    }
    if (!ok) {
      // Only the *last* line may be damaged by a crash; garbage in the
      // middle means the file was edited or the disk corrupted — refuse
      // to guess.
      if (text.find('\n', nl + 1) != std::string::npos || nl + 1 < text.size())
        throw std::runtime_error("manifest: corrupt non-trailing record in " + m.path_);
      break;
    }
    m.records_.push_back(std::move(rec));
    good_end = nl + 1;
    pos = nl + 1;
  }
  if (good_end < text.size()) {
    m.truncated_bytes_ = text.size() - good_end;
    fs::resize_file(m.path_, good_end, ec);
    if (ec)
      throw std::runtime_error("manifest: cannot truncate torn tail of " + m.path_ + ": " +
                               ec.message());
  }

  m.fd_ = ::open(m.path_.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (m.fd_ < 0)
    throw std::runtime_error("manifest: cannot open " + m.path_ + ": " +
                             std::string(std::strerror(errno)));
  return m;
}

namespace {
void write_all(int fd, const char* data, std::size_t n, const std::string& path) {
  std::size_t off = 0;
  while (off < n) {
    const ::ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("manifest: write failed for " + path + ": " +
                               std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(w);
  }
}
}  // namespace

void Manifest::append(const ManifestRecord& rec) {
  const std::string line = rec.to_json().dump() + "\n";
  // Normally one atomic write(2); with the fault layer armed the record is
  // split around the mid_write:manifest point so a kill there leaves a
  // genuinely torn trailing write for the recovery pass to find.
  std::size_t split = line.size();
  if (util::fault::any_armed()) split = line.size() / 2;
  write_all(fd_, line.data(), split, path_);
  if (split < line.size()) {
    ::fsync(fd_);
    util::fault::hit("mid_write", "manifest");
    write_all(fd_, line.data() + split, line.size() - split, path_);
  }
  if (::fsync(fd_) != 0)
    throw std::runtime_error("manifest: fsync failed for " + path_ + ": " +
                             std::string(std::strerror(errno)));
  records_.push_back(rec);
}

std::string Manifest::state_of(std::size_t variant, const std::string& hash) const {
  std::string state;
  for (const auto& rec : records_)
    if (rec.variant == variant && rec.config_hash == hash) state = rec.state;
  return state;
}

}  // namespace airfedga::scenario
