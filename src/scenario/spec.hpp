#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "channel/aircomp.hpp"
#include "channel/fading.hpp"
#include "channel/latency.hpp"
#include "data/dataset.hpp"
#include "fl/driver.hpp"
#include "fl/mechanisms.hpp"
#include "scenario/json.hpp"
#include "sim/cluster.hpp"

namespace airfedga::scenario {

/// Which synthetic workload to generate (data::make_* presets).
struct DatasetSpec {
  std::string kind = "mnist_like";  ///< mnist_like | mnist_image_like | cifar10_like | imagenet100_like
  std::size_t train_samples = 10000;
  std::size_t test_samples = 2000;
  std::uint64_t seed = 1;  ///< generator seed (independent of the run seed)
};

/// Which model-zoo architecture to train. Fields irrelevant to a kind are
/// ignored by build and omitted from to_json.
struct ModelSpec {
  std::string kind = "mlp";   ///< mlp | mlp1 | softmax | cnn_mnist | cnn_cifar | vgg_style
  std::size_t input_dim = 784;   ///< mlp / mlp1 / softmax
  std::size_t num_classes = 10;  ///< mlp / mlp1 / softmax / vgg_style
  std::size_t hidden = 64;       ///< mlp / mlp1
  double width_scale = 1.0;      ///< cnn_mnist / cnn_cifar / vgg_style
  std::size_t image = 28;        ///< cnn_mnist / cnn_cifar / vgg_style
};

/// How the training set is split across workers.
struct PartitionSpec {
  std::string kind = "label_skew";  ///< label_skew | iid | dirichlet
  std::size_t workers = 100;
  double alpha = 0.3;  ///< dirichlet concentration (dirichlet only)
  /// Number of distinct data shards. 0 (default) = one shard per worker,
  /// the legacy layout. A nonzero value partitions the training set into
  /// this many shards and maps worker i onto shard i % shards, so
  /// `workers` becomes a free population axis (10^5-10^6 workers over a
  /// bounded shard set). Must be <= workers.
  std::size_t shards = 0;
};

/// Which device-realism generators the run's sim::Substrate composes on
/// top of the static fading/latency substrate. Knob pairs irrelevant to
/// the kind are ignored by build and omitted from to_json.
struct SubstrateSpec {
  /// "static" or a '+'-joined combination of churn | energy | csi_error
  /// (e.g. "churn+energy+csi_error").
  std::string kind = "static";
  double churn_period = 400.0;     ///< churn: diurnal on/off cycle length (virtual s)
  double churn_on_fraction = 0.7;  ///< churn: fraction of each cycle a worker is online
  double energy_budget = 50.0;     ///< energy: per-worker transmit budget (J)
  double energy_oma_upload = 1.0;  ///< energy: flat J charged per OMA upload
  double csi_error_std = 0.1;      ///< csi_error: std of the multiplicative estimate noise
};

/// One mechanism to run, with its tuning knobs. Knobs irrelevant to a kind
/// are ignored by build and omitted from to_json. Construction is
/// table-driven: the spec lowers to one uniform fl::MechanismConfig and the
/// kind indexes the mechanism registry (no per-kind constructor wiring).
struct MechanismSpec {
  /// fedavg | airfedavg | dynamic | tifl | fedasync | semiasync | airfedga
  std::string kind = "airfedga";
  double selection_quantile = 0.5;  ///< dynamic: per-round gain cutoff
  std::size_t tiers = 5;            ///< tifl: response-time tier count
  double mixing = 0.6;              ///< fedasync/semiasync: base mixing weight alpha
  double damping = 0.5;             ///< fedasync/semiasync: staleness exponent/rate
  std::size_t aggregate_count = 4;  ///< semiasync: flush the buffer at K uploads
  std::size_t staleness_bound = 4;  ///< semiasync: forced flush at this staleness
  std::string damping_schedule = "poly";  ///< semiasync: "poly" | "exp" sigma(tau)
  double xi = 0.3;                  ///< airfedga: constraint (36d) budget
  std::size_t refine_passes = 3;    ///< airfedga: Alg. 3 local-search passes
  double staleness_damping = 0.0;   ///< airfedga: FedAsync-style damping extension

  /// Lowers the spec's knobs into the uniform mechanism configuration.
  [[nodiscard]] fl::MechanismConfig to_config() const;

  /// Constructs the mechanism object this spec describes (registry lookup
  /// by kind, then the kind's factory applied to to_config()).
  [[nodiscard]] std::unique_ptr<fl::Mechanism> make() const;

  /// Display name of the mechanism kind ("Air-FedGA", ...).
  [[nodiscard]] std::string display_name() const;
};

/// Declarative description of a complete experiment: everything the
/// FLConfig surface covers (dataset, model, partition, local training,
/// wireless substrate, run control) plus the mechanism list. Round-trips
/// through JSON losslessly (to_json / from_json) and validates with
/// messages that name the offending field.
///
/// Seed convention: `seed` is the root seed. The partition RNG uses it
/// directly and the substrate streams derive from it (cluster = seed + 1,
/// fading = seed + 2) — the same rule the benchmark harness has always
/// used, so a preset reproduces its figure binary bit for bit. The
/// dataset generator seed is separate (dataset.seed) because the paper
/// fixes the workload while sweeping run seeds.
struct ScenarioSpec {
  std::string name = "unnamed";
  std::string description;

  DatasetSpec dataset;
  ModelSpec model;
  PartitionSpec partition;

  // Local training (Eq. 4)
  double learning_rate = 0.05;
  std::size_t local_steps = 1;
  std::size_t batch_size = 32;  ///< 0 = full local shard

  // Heterogeneity and wireless substrate (§VI-A2). Seeds inside these
  // configs are not serialized; build() derives them from `seed`.
  sim::ClusterModel::Config cluster;
  channel::LatencyConfig latency;
  channel::FadingChannel::Config fading;
  channel::AirCompChannel::Config aircomp;
  SubstrateSpec substrate;
  double energy_cap = 10.0;

  // Run control
  double time_budget = 5000.0;
  std::size_t max_rounds = 1000000;
  std::size_t eval_every = 10;
  std::size_t eval_samples = 1000;
  std::size_t eval_batch = 256;
  double stop_at_accuracy = -1.0;
  std::uint64_t seed = 42;
  std::size_t threads = 0;       ///< training lanes (0 = hardware concurrency)
  bool cooperative_gemm = true;  ///< idle lanes donate themselves to large GEMMs
  std::string worker_state = "eager";  ///< "eager" | "lazy" (pooled, for huge populations)
  std::string event_queue = "heap";    ///< "heap" | "calendar" event-queue backend
  std::size_t cohort_size = 0;  ///< per-round training-cohort subsample (0 = all selected)
  bool trace = false;           ///< collect obs spans/metrics (read-only: digests unchanged)

  std::vector<MechanismSpec> mechanisms;

  /// Serializes every field (grouped into the schema documented in
  /// docs/SCENARIOS.md); dump -> parse -> from_json reproduces the spec
  /// exactly.
  [[nodiscard]] Json to_json() const;

  /// Parses a spec, rejecting unknown keys and wrong types with messages
  /// that carry the JSON path (e.g. "mechanisms[1].xi"). Absent fields
  /// keep their defaults. Does not validate() — call it separately.
  static ScenarioSpec from_json(const Json& j);

  /// Throws std::invalid_argument naming the field and the accepted values
  /// on any unusable configuration.
  void validate() const;
};

/// A materialized scenario: owned datasets, the FLConfig wired to them,
/// and the instantiated mechanism objects, ready to run.
struct BuiltScenario {
  std::unique_ptr<data::TrainTest> data;  ///< owns what cfg.train/test point to
  fl::FLConfig cfg;
  std::vector<std::string> mechanism_names;
  std::vector<std::unique_ptr<fl::Mechanism>> mechanisms;
};

/// Validates `spec`, generates the dataset, partitions it, and constructs
/// the mechanisms. The returned object is self-contained and movable.
BuiltScenario build(const ScenarioSpec& spec);

/// FNV-1a 64 hash of the spec's compact canonical JSON, as 16 hex chars.
/// Two specs hash equal iff their serialized configurations are identical.
std::string config_hash(const ScenarioSpec& spec);

}  // namespace airfedga::scenario
