#pragma once

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace airfedga::scenario {

/// Names of all registered presets, in registry order (figures first).
std::vector<std::string> preset_names();

/// True when `name` is a registered preset.
bool has_preset(const std::string& name);

/// The registered scenario for `name`; throws std::invalid_argument
/// listing the valid names when unknown. Every preset is the single source
/// of truth for the corresponding figure/table binary's experiment setup —
/// the bench builds its config through this registry, and
/// `airfedga_cli run <name>` reproduces the bench's metrics digest.
const ScenarioSpec& preset(const std::string& name);

}  // namespace airfedga::scenario
