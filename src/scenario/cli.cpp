#include "scenario/cli.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "scenario/presets.hpp"

namespace airfedga::scenario::cli {

std::vector<std::string> split_list(const std::string& list, const std::string& what) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    const std::string tok = list.substr(pos, comma - pos);
    if (tok.empty())
      throw std::invalid_argument(what + ": empty element in list \"" + list + "\"");
    out.push_back(tok);
    pos = comma + 1;
  }
  return out;
}

std::size_t parse_count(const std::string& tok, const std::string& what) {
  if (tok.empty() || tok.size() > 18 ||
      tok.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument(what + ": \"" + tok + "\" is not a non-negative integer");
  std::size_t value = 0;
  std::from_chars(tok.data(), tok.data() + tok.size(), value);  // cannot fail after the check
  return value;
}

double parse_positive_double(const std::string& tok, const std::string& what) {
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), value);
  if (tok.empty() || ec != std::errc() || ptr != tok.data() + tok.size() ||
      !std::isfinite(value) || value <= 0.0)
    throw std::invalid_argument(what + ": \"" + tok + "\" is not a positive number");
  return value;
}

Json parse_sweep_value(const std::string& tok) {
  try {
    return Json::parse(tok);
  } catch (const JsonError&) {
    return Json(tok);
  }
}

SweepAxis parse_sweep_axis(const std::string& assign, const std::string& what) {
  const std::size_t eq = assign.find('=');
  if (eq == std::string::npos || eq == 0)
    throw std::invalid_argument(what + ": expected path=v1,v2,..., got \"" + assign + "\"");
  SweepAxis axis;
  axis.path = assign.substr(0, eq);
  for (const auto& tok : split_list(assign.substr(eq + 1), what + " " + axis.path))
    axis.values.push_back(parse_sweep_value(tok));
  return axis;
}

RunArgs parse_run_args(const std::vector<std::string>& args) {
  RunArgs out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--seed=", 0) == 0) {
      out.overrides.seed = parse_count(arg.substr(7), "--seed");
    } else if (arg.rfind("--threads=", 0) == 0) {
      for (const auto& tok : split_list(arg.substr(10), "--threads")) {
        const std::size_t v = parse_count(tok, "--threads");
        if (v == 0) throw std::invalid_argument("--threads: lane counts must be >= 1");
        if (std::find(out.threads.begin(), out.threads.end(), v) == out.threads.end())
          out.threads.push_back(v);
      }
    } else if (arg.rfind("--time-budget=", 0) == 0) {
      out.overrides.time_budget = parse_positive_double(arg.substr(14), "--time-budget");
    } else if (arg.rfind("--jobs=", 0) == 0) {
      out.jobs = parse_count(arg.substr(7), "--jobs");
      if (out.jobs == 0) throw std::invalid_argument("--jobs: must be >= 1");
    } else if (arg == "--append") {
      out.append = true;
    } else if (arg == "--no-timing") {
      out.timing = false;
    } else if (arg == "--resume") {
      out.resume = true;
    } else if (arg.rfind("--retries=", 0) == 0) {
      out.retries = parse_count(arg.substr(10), "--retries");
    } else if (arg.rfind("--variant-timeout=", 0) == 0) {
      out.variant_timeout = parse_positive_double(arg.substr(18), "--variant-timeout");
    } else if (arg.rfind("--shard=", 0) == 0) {
      const std::string spec = arg.substr(8);
      const std::size_t slash = spec.find('/');
      if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size())
        throw std::invalid_argument("--shard: expected i/N (e.g. --shard=2/4), got \"" + spec +
                                    "\"");
      out.shard_index = parse_count(spec.substr(0, slash), "--shard index");
      out.shard_count = parse_count(spec.substr(slash + 1), "--shard count");
      if (out.shard_count == 0 || out.shard_index == 0 || out.shard_index > out.shard_count)
        throw std::invalid_argument("--shard: index must be in [1, N] with N >= 1, got \"" +
                                    spec + "\"");
    } else if (arg == "--no-progress") {
      out.progress = false;
    } else if (arg.rfind("--fault=", 0) == 0) {
      if (arg.size() == 8) throw std::invalid_argument("--fault: spec must not be empty");
      out.faults.push_back(arg.substr(8));
    } else if (arg.rfind("--out=", 0) == 0) {
      out.out_dir = arg.substr(6);
      if (out.out_dir.empty()) throw std::invalid_argument("--out: directory must not be empty");
    } else if (arg == "--trace") {
      out.trace = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      out.trace = true;
      out.trace_path = arg.substr(8);
      if (out.trace_path.empty()) throw std::invalid_argument("--trace: path must not be empty");
    } else if (arg == "--sweep" || arg.rfind("--sweep=", 0) == 0) {
      std::string assign;
      if (arg == "--sweep") {
        if (i + 1 >= args.size())
          throw std::invalid_argument("--sweep: expected path=v1,v2,... after it");
        assign = args[++i];
      } else {
        assign = arg.substr(8);
      }
      out.sweeps.push_back(parse_sweep_axis(assign, "--sweep"));
    } else if (arg.rfind("--", 0) == 0) {
      throw std::invalid_argument("unknown option \"" + arg + "\" (see airfedga_cli --help)");
    } else {
      out.sources.push_back(arg);
    }
  }
  if (out.resume && out.append)
    throw std::invalid_argument(
        "--resume cannot be combined with --append: the crash-safe farm owns the whole output "
        "directory, while --append accumulates onto files it does not track");
  return out;
}

Study parse_study(const Json& j) {
  Study study;
  const Json* sweeps = j.find("sweeps");
  if (sweeps == nullptr) {
    study.spec = ScenarioSpec::from_json(j);
    return study;
  }
  if (!sweeps->is_object())
    throw std::invalid_argument("study: \"sweeps\" must be an object of path -> value array");
  for (const auto& [path, values] : sweeps->as_object()) {
    if (!values.is_array() || values.as_array().empty())
      throw std::invalid_argument("study: sweeps[\"" + path +
                                  "\"] must be a non-empty array of values");
    SweepAxis axis;
    axis.path = path;
    axis.values = values.as_array();
    study.sweeps.push_back(std::move(axis));
  }
  // The spec parser rejects unknown keys, so strip "sweeps" before handing
  // the document over (order of the remaining keys is preserved).
  Json spec_json = Json::object();
  for (const auto& [key, value] : j.as_object())
    if (key != "sweeps") spec_json.set(key, value);
  study.spec = ScenarioSpec::from_json(spec_json);
  return study;
}

namespace {
std::string read_stream(std::istream& in) {
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}
}  // namespace

Study load_study(const std::string& source) {
  if (source == "-") {
    const std::string text = read_stream(std::cin);
    if (text.empty()) throw std::invalid_argument("stdin: no scenario JSON on standard input");
    return parse_study(Json::parse(text));
  }
  if (has_preset(source)) return Study{preset(source), {}};
  std::error_code ec;
  if (std::filesystem::is_directory(source, ec))
    throw std::invalid_argument("\"" + source +
                                "\" is a directory — use `airfedga_cli run-dir " + source + "`");
  std::ifstream f(source);
  if (!f) {
    if (source.find('.') == std::string::npos)  // looks like a preset name, not a path
      throw std::invalid_argument("no such preset or file \"" + source +
                                  "\"; `airfedga_cli list` shows the presets");
    throw std::invalid_argument("cannot open scenario file \"" + source + "\"");
  }
  return parse_study(Json::parse(read_stream(f)));
}

std::vector<std::string> list_scenario_files(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec))
    throw std::invalid_argument("run-dir: \"" + dir + "\" is not a directory");
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json")
      files.push_back(entry.path().string());
  }
  if (files.empty())
    throw std::invalid_argument("run-dir: no .json scenario files in \"" + dir + "\"");
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace airfedga::scenario::cli
