#include "data/data_stats.hpp"

#include <cmath>
#include <stdexcept>

namespace airfedga::data {

DataStats::DataStats(const Dataset& ds, const Partition& partition, std::size_t population) {
  const std::size_t shards = partition.size();
  const std::size_t k = ds.num_classes;
  if (k == 0) throw std::invalid_argument("DataStats: dataset has no classes");
  population_ = population == 0 ? shards : population;
  if (population_ < shards)
    throw std::invalid_argument("DataStats: population smaller than shard count");
  d_s_.assign(shards, 0);
  d_sk_.assign(shards, std::vector<std::size_t>(k, 0));
  for (std::size_t s = 0; s < shards; ++s) {
    for (auto idx : partition[s]) {
      const int label = ds.ys.at(idx);
      ++d_s_[s];
      ++d_sk_[s][static_cast<std::size_t>(label)];
    }
  }
  // Worker i holds shard i % shards, so shard s is replicated across
  // m_s = ceil-or-floor(population/shards) workers; totals weight by m_s
  // to stay integer-identical to the per-worker loop.
  std::vector<std::size_t> class_total(k, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t mult = population_ / shards + (s < population_ % shards ? 1 : 0);
    total_ += mult * d_s_[s];
    for (std::size_t c = 0; c < k; ++c) class_total[c] += mult * d_sk_[s][c];
  }
  if (total_ == 0) throw std::invalid_argument("DataStats: empty partition");
  lambda_.resize(k);
  for (std::size_t c = 0; c < k; ++c)
    lambda_[c] = static_cast<double>(class_total[c]) / static_cast<double>(total_);
}

std::size_t DataStats::shard_of(std::size_t i) const {
  if (i >= population_) throw std::out_of_range("DataStats: worker id out of range");
  return i % d_s_.size();
}

double DataStats::alpha(std::size_t i) const {
  return static_cast<double>(d_s_.at(shard_of(i))) / static_cast<double>(total_);
}

std::size_t DataStats::worker_class_size(std::size_t i, std::size_t k) const {
  return d_sk_.at(shard_of(i)).at(k);
}

double DataStats::alpha_class(std::size_t i, std::size_t k) const {
  const auto di = d_s_.at(shard_of(i));
  if (di == 0) return 0.0;
  return static_cast<double>(d_sk_.at(shard_of(i)).at(k)) / static_cast<double>(di);
}

std::size_t DataStats::group_size(const std::vector<std::size_t>& group) const {
  std::size_t s = 0;
  for (auto i : group) s += d_s_.at(shard_of(i));
  return s;
}

double DataStats::beta(const std::vector<std::size_t>& group) const {
  return static_cast<double>(group_size(group)) / static_cast<double>(total_);
}

double DataStats::beta_class(const std::vector<std::size_t>& group, std::size_t k) const {
  const std::size_t dj = group_size(group);
  if (dj == 0) return 0.0;
  std::size_t djk = 0;
  for (auto i : group) djk += d_sk_.at(shard_of(i)).at(k);
  return static_cast<double>(djk) / static_cast<double>(dj);
}

double DataStats::emd(const std::vector<std::size_t>& group) const {
  double acc = 0.0;
  for (std::size_t c = 0; c < num_classes(); ++c)
    acc += std::abs(lambda_[c] - beta_class(group, c));
  return acc;
}

double DataStats::mean_emd(const WorkerGroups& groups) const {
  if (groups.empty()) throw std::invalid_argument("mean_emd: no groups");
  double acc = 0.0;
  for (const auto& g : groups) acc += emd(g);
  return acc / static_cast<double>(groups.size());
}

double DataStats::worker_emd(std::size_t i) const { return emd({i}); }

void validate_groups(const WorkerGroups& groups, std::size_t num_workers) {
  std::vector<char> seen(num_workers, 0);
  std::size_t count = 0;
  for (const auto& g : groups) {
    if (g.empty()) throw std::invalid_argument("groups: empty group");
    for (auto w : g) {
      if (w >= num_workers) throw std::invalid_argument("groups: worker id out of range");
      if (seen[w]) throw std::invalid_argument("groups: worker appears twice");
      seen[w] = 1;
      ++count;
    }
  }
  if (count != num_workers) throw std::invalid_argument("groups: not all workers grouped");
}

}  // namespace airfedga::data
