#include "data/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace airfedga::data {

ShardIndex::ShardIndex(const Partition& partition) {
  offsets_.reserve(partition.size() + 1);
  offsets_.push_back(0);
  std::size_t total = 0;
  for (const auto& shard : partition) total += shard.size();
  arena_.reserve(total);
  for (const auto& shard : partition) {
    arena_.insert(arena_.end(), shard.begin(), shard.end());
    offsets_.push_back(arena_.size());
  }
}

std::span<const std::size_t> ShardIndex::shard(std::size_t s) const {
  if (s + 1 >= offsets_.size()) throw std::out_of_range("ShardIndex::shard: index out of range");
  return std::span<const std::size_t>(arena_.data() + offsets_[s], offsets_[s + 1] - offsets_[s]);
}

std::size_t ShardIndex::shard_size(std::size_t s) const {
  if (s + 1 >= offsets_.size())
    throw std::out_of_range("ShardIndex::shard_size: index out of range");
  return offsets_[s + 1] - offsets_[s];
}

Partition partition_iid(const Dataset& ds, std::size_t num_workers, util::Rng& rng) {
  if (num_workers == 0) throw std::invalid_argument("partition_iid: zero workers");
  auto perm = rng.permutation(ds.size());
  Partition p(num_workers);
  for (std::size_t i = 0; i < perm.size(); ++i) p[i % num_workers].push_back(perm[i]);
  return p;
}

Partition partition_label_skew(const Dataset& ds, std::size_t num_workers, util::Rng& rng) {
  if (num_workers == 0) throw std::invalid_argument("partition_label_skew: zero workers");
  const std::size_t k = ds.num_classes;
  if (k == 0) throw std::invalid_argument("partition_label_skew: dataset has no classes");

  Partition p(num_workers);
  if (num_workers >= k) {
    // Worker w serves class floor(w*K/N): contiguous near-equal blocks that
    // cover *every* worker (with N=100, K=10 this is exactly the paper's
    // "label k to workers 10k..10k+9"). Class samples go round-robin over
    // the class's block.
    std::vector<std::vector<std::size_t>> block(k);
    for (std::size_t w = 0; w < num_workers; ++w) block[w * k / num_workers].push_back(w);
    for (std::size_t c = 0; c < k; ++c) {
      auto idx = ds.indices_of_class(static_cast<int>(c));
      rng.shuffle(idx);
      for (std::size_t i = 0; i < idx.size(); ++i)
        p[block[c][i % block[c].size()]].push_back(idx[i]);
    }
  } else {
    // Fewer workers than classes: class c lands wholly on worker
    // floor(c*N/K), so each worker holds a contiguous set of classes.
    for (std::size_t c = 0; c < k; ++c) {
      auto idx = ds.indices_of_class(static_cast<int>(c));
      rng.shuffle(idx);
      auto& shard = p[c * num_workers / k];
      shard.insert(shard.end(), idx.begin(), idx.end());
    }
  }
  return p;
}

Partition partition_dirichlet(const Dataset& ds, std::size_t num_workers, double alpha,
                              util::Rng& rng) {
  if (num_workers == 0) throw std::invalid_argument("partition_dirichlet: zero workers");
  if (alpha <= 0.0) throw std::invalid_argument("partition_dirichlet: alpha must be > 0");
  Partition p(num_workers);
  std::gamma_distribution<double> gamma(alpha, 1.0);
  for (std::size_t c = 0; c < ds.num_classes; ++c) {
    auto idx = ds.indices_of_class(static_cast<int>(c));
    rng.shuffle(idx);
    // Draw worker shares from Dir(alpha) via normalized Gamma samples.
    std::vector<double> shares(num_workers);
    double total = 0.0;
    for (auto& s : shares) {
      s = std::max(1e-12, gamma(rng.engine()));
      total += s;
    }
    // Convert shares to cumulative sample counts.
    std::size_t assigned = 0;
    double cum = 0.0;
    for (std::size_t w = 0; w < num_workers; ++w) {
      cum += shares[w] / total;
      const auto upto = std::min(idx.size(),
                                 static_cast<std::size_t>(cum * static_cast<double>(idx.size()) + 0.5));
      for (; assigned < upto; ++assigned) p[w].push_back(idx[assigned]);
    }
    for (; assigned < idx.size(); ++assigned) p[num_workers - 1].push_back(idx[assigned]);
  }
  return p;
}

void validate_partition(const Partition& p, const Dataset& ds) {
  std::vector<char> seen(ds.size(), 0);
  std::size_t count = 0;
  for (const auto& shard : p) {
    for (auto idx : shard) {
      if (idx >= ds.size()) throw std::invalid_argument("partition: index out of range");
      if (seen[idx]) throw std::invalid_argument("partition: duplicate index");
      seen[idx] = 1;
      ++count;
    }
  }
  if (count != ds.size()) throw std::invalid_argument("partition: not all samples assigned");
}

}  // namespace airfedga::data
