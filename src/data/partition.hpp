#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace airfedga::data {

/// A partition assigns every training-sample index to exactly one worker.
using Partition = std::vector<std::vector<std::size_t>>;  // [worker] -> sample indices

/// Uniformly random split into `num_workers` near-equal shards.
Partition partition_iid(const Dataset& ds, std::size_t num_workers, util::Rng& rng);

/// The paper's label-skew split (§VI-A): samples with label k go to the
/// k-th block of workers (e.g. with K=10 labels and N=100 workers, label 0
/// goes to workers 0..9, label 1 to workers 10..19, ...). Each worker ends
/// up with data from a single class — the hardest Non-IID setting.
Partition partition_label_skew(const Dataset& ds, std::size_t num_workers, util::Rng& rng);

/// Dirichlet(alpha) label-distribution split (extension beyond the paper):
/// for each class, worker shares are drawn from Dir(alpha); alpha -> 0
/// approaches label skew, alpha -> inf approaches IID.
Partition partition_dirichlet(const Dataset& ds, std::size_t num_workers, double alpha,
                              util::Rng& rng);

/// Validates that `p` is a partition of [0, ds.size()): every index appears
/// exactly once. Throws std::invalid_argument otherwise.
void validate_partition(const Partition& p, const Dataset& ds);

}  // namespace airfedga::data
