#pragma once

#include <span>
#include <vector>

#include "data/dataset.hpp"

namespace airfedga::data {

/// A partition assigns every training-sample index to exactly one worker.
using Partition = std::vector<std::vector<std::size_t>>;  // [worker] -> sample indices

/// Immutable, flattened view of a Partition: all shard index lists packed
/// into one contiguous arena with per-shard offsets. Workers hold
/// `std::span`s into the arena instead of per-worker index copies, so a
/// population of 10^6 workers over S shards costs O(dataset + S) memory
/// for data views instead of O(population * shard). Shard s of worker i
/// is `shard(i % num_shards())` (population scale-out maps many workers
/// onto one shard).
class ShardIndex {
 public:
  /// Empty index (no shards); assignable later.
  ShardIndex() = default;

  /// Flattens `partition` (shard order and within-shard order preserved,
  /// so views are byte-identical to the source lists).
  explicit ShardIndex(const Partition& partition);

  /// Number of distinct shards.
  [[nodiscard]] std::size_t num_shards() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Read-only view of shard `s`'s sample indices. Stable for the life of
  /// the ShardIndex (the arena never reallocates after construction).
  [[nodiscard]] std::span<const std::size_t> shard(std::size_t s) const;

  /// Sample count of shard `s`.
  [[nodiscard]] std::size_t shard_size(std::size_t s) const;

 private:
  std::vector<std::size_t> arena_;    // all shards' indices, back to back
  std::vector<std::size_t> offsets_;  // [s, s+1) brackets shard s in arena_
};

/// Uniformly random split into `num_workers` near-equal shards.
Partition partition_iid(const Dataset& ds, std::size_t num_workers, util::Rng& rng);

/// The paper's label-skew split (§VI-A): samples with label k go to the
/// k-th block of workers (e.g. with K=10 labels and N=100 workers, label 0
/// goes to workers 0..9, label 1 to workers 10..19, ...). Each worker ends
/// up with data from a single class — the hardest Non-IID setting.
Partition partition_label_skew(const Dataset& ds, std::size_t num_workers, util::Rng& rng);

/// Dirichlet(alpha) label-distribution split (extension beyond the paper):
/// for each class, worker shares are drawn from Dir(alpha); alpha -> 0
/// approaches label skew, alpha -> inf approaches IID.
Partition partition_dirichlet(const Dataset& ds, std::size_t num_workers, double alpha,
                              util::Rng& rng);

/// Validates that `p` is a partition of [0, ds.size()): every index appears
/// exactly once. Throws std::invalid_argument otherwise.
void validate_partition(const Partition& p, const Dataset& ds);

}  // namespace airfedga::data
