#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/model.hpp"

namespace airfedga::data {

std::vector<std::size_t> Dataset::indices_of_class(int label) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ys.size(); ++i)
    if (ys[i] == label) out.push_back(i);
  return out;
}

namespace {

/// Unit-norm random direction scaled by `margin`.
std::vector<float> random_prototype_flat(std::size_t dim, double margin, util::Rng& rng) {
  std::vector<float> p(dim);
  double norm2 = 0.0;
  for (auto& v : p) {
    v = static_cast<float>(rng.normal());
    norm2 += static_cast<double>(v) * v;
  }
  const double scale = margin / std::max(1e-12, std::sqrt(norm2));
  for (auto& v : p) v = static_cast<float>(v * scale);
  return p;
}

/// Smooth spatial pattern: a coarse random grid bilinearly upsampled, so
/// neighbouring pixels are correlated and convolutions have structure to
/// exploit. Normalized to `margin` like the flat prototypes.
std::vector<float> random_prototype_image(std::size_t channels, std::size_t height,
                                          std::size_t width, double margin, util::Rng& rng) {
  const std::size_t gh = std::max<std::size_t>(2, height / 4);
  const std::size_t gw = std::max<std::size_t>(2, width / 4);
  std::vector<float> grid(channels * gh * gw);
  for (auto& v : grid) v = static_cast<float>(rng.normal());

  std::vector<float> img(channels * height * width);
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t i = 0; i < height; ++i) {
      const double gi = static_cast<double>(i) * static_cast<double>(gh - 1) /
                        static_cast<double>(height - 1);
      const auto i0 = static_cast<std::size_t>(gi);
      const auto i1 = std::min(i0 + 1, gh - 1);
      const double fi = gi - static_cast<double>(i0);
      for (std::size_t j = 0; j < width; ++j) {
        const double gj = static_cast<double>(j) * static_cast<double>(gw - 1) /
                          static_cast<double>(width - 1);
        const auto j0 = static_cast<std::size_t>(gj);
        const auto j1 = std::min(j0 + 1, gw - 1);
        const double fj = gj - static_cast<double>(j0);
        const double v00 = grid[(c * gh + i0) * gw + j0];
        const double v01 = grid[(c * gh + i0) * gw + j1];
        const double v10 = grid[(c * gh + i1) * gw + j0];
        const double v11 = grid[(c * gh + i1) * gw + j1];
        img[(c * height + i) * width + j] = static_cast<float>(
            (1 - fi) * ((1 - fj) * v00 + fj * v01) + fi * ((1 - fj) * v10 + fj * v11));
      }
    }
  }
  double norm2 = 0.0;
  for (float v : img) norm2 += static_cast<double>(v) * v;
  const double scale = margin / std::max(1e-12, std::sqrt(norm2));
  for (auto& v : img) v = static_cast<float>(v * scale);
  return img;
}

Dataset fill_dataset(std::vector<std::size_t> shape, std::size_t num_samples,
                     const std::vector<std::vector<float>>& prototypes, double noise,
                     util::Rng& rng) {
  const std::size_t num_classes = prototypes.size();
  const std::size_t dim = prototypes[0].size();
  shape[0] = num_samples;
  Dataset ds;
  ds.num_classes = num_classes;
  ds.xs = ml::Tensor(shape);
  ds.ys.resize(num_samples);

  // Round-robin class order, then a label-preserving shuffle of positions,
  // so class sizes differ by at most 1 and ordering carries no signal.
  std::vector<int> labels(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i)
    labels[i] = static_cast<int>(i % num_classes);
  rng.shuffle(labels);

  // `noise` is the per-dimension standard deviation. What controls the
  // Bayes error is the noise projected onto a discriminant direction,
  // which for isotropic noise equals the per-dimension sigma: the optimal
  // (nearest-prototype) error rate between two classes is
  // Q(margin * sqrt(2) / (2 * noise)), independent of the dimension.
  const double sigma = noise;
  float* px = ds.xs.data().data();
  for (std::size_t i = 0; i < num_samples; ++i) {
    const auto& proto = prototypes[static_cast<std::size_t>(labels[i])];
    for (std::size_t d = 0; d < dim; ++d)
      px[i * dim + d] = proto[d] + static_cast<float>(rng.normal(0.0, sigma));
    ds.ys[i] = labels[i];
  }
  return ds;
}

}  // namespace

Dataset make_synthetic_flat(std::size_t dim, const SyntheticConfig& cfg) {
  if (dim == 0 || cfg.num_classes == 0 || cfg.num_samples == 0)
    throw std::invalid_argument("make_synthetic_flat: empty configuration");
  util::Rng rng(cfg.seed);
  util::Rng proto_rng = rng.fork(0xA1);
  util::Rng sample_rng = rng.fork(0xB2);
  std::vector<std::vector<float>> prototypes;
  prototypes.reserve(cfg.num_classes);
  for (std::size_t k = 0; k < cfg.num_classes; ++k)
    prototypes.push_back(random_prototype_flat(dim, cfg.margin, proto_rng));
  return fill_dataset({0, dim}, cfg.num_samples, prototypes, cfg.noise, sample_rng);
}

Dataset make_synthetic_image(std::size_t channels, std::size_t height, std::size_t width,
                             const SyntheticConfig& cfg) {
  if (channels == 0 || height < 2 || width < 2 || cfg.num_classes == 0 || cfg.num_samples == 0)
    throw std::invalid_argument("make_synthetic_image: empty configuration");
  util::Rng rng(cfg.seed);
  util::Rng proto_rng = rng.fork(0xA1);
  util::Rng sample_rng = rng.fork(0xB2);
  std::vector<std::vector<float>> prototypes;
  prototypes.reserve(cfg.num_classes);
  for (std::size_t k = 0; k < cfg.num_classes; ++k)
    prototypes.push_back(random_prototype_image(channels, height, width, cfg.margin, proto_rng));
  Dataset ds = fill_dataset({0, channels, height, width}, cfg.num_samples, prototypes,
                            cfg.noise, sample_rng);
  // Standardize to unit per-pixel variance (a global scale), mirroring the
  // input normalization of real image pipelines. Without it the per-pixel
  // magnitudes are ~noise (<0.3) and deep ReLU stacks start with vanishing
  // activations. A global scale leaves the Bayes geometry untouched.
  double sq = 0.0;
  for (float v : ds.xs.data()) sq += static_cast<double>(v) * v;
  const double std_all = std::sqrt(sq / static_cast<double>(ds.xs.size()));
  if (std_all > 1e-12) {
    const auto inv = static_cast<float>(1.0 / std_all);
    for (auto& v : ds.xs.data()) v *= inv;
  }
  return ds;
}

namespace {
/// Generates train+test from one stream (same prototypes) and splits.
TrainTest split_pair(std::size_t dim_or_zero, std::size_t channels, std::size_t height,
                     std::size_t width, std::size_t train_samples, std::size_t test_samples,
                     std::size_t num_classes, double margin, double noise, std::uint64_t seed) {
  const SyntheticConfig cfg{train_samples + test_samples, num_classes, margin, noise, seed};
  Dataset all = dim_or_zero > 0 ? make_synthetic_flat(dim_or_zero, cfg)
                                : make_synthetic_image(channels, height, width, cfg);
  std::vector<std::size_t> train_idx(train_samples), test_idx(test_samples);
  for (std::size_t i = 0; i < train_samples; ++i) train_idx[i] = i;
  for (std::size_t i = 0; i < test_samples; ++i) test_idx[i] = train_samples + i;

  TrainTest tt;
  tt.train.xs = ml::gather_rows(all.xs, train_idx);
  tt.train.ys.assign(all.ys.begin(), all.ys.begin() + static_cast<std::ptrdiff_t>(train_samples));
  tt.train.num_classes = num_classes;
  tt.test.xs = ml::gather_rows(all.xs, test_idx);
  tt.test.ys.assign(all.ys.begin() + static_cast<std::ptrdiff_t>(train_samples), all.ys.end());
  tt.test.num_classes = num_classes;
  return tt;
}
}  // namespace

TrainTest make_mnist_like(std::size_t train_samples, std::size_t test_samples,
                          std::uint64_t seed) {
  // Bayes accuracy ~92%: 9 * Q(0.707/0.30) ~ 8% error — models top out in
  // the low 90s, like LR/CNN on MNIST in the paper.
  return split_pair(784, 0, 0, 0, train_samples, test_samples, 10, 1.0, 0.30, seed);
}

TrainTest make_mnist_image_like(std::size_t train_samples, std::size_t test_samples,
                                std::uint64_t seed) {
  return split_pair(0, 1, 28, 28, train_samples, test_samples, 10, 1.0, 0.30, seed);
}

TrainTest make_cifar10_like(std::size_t train_samples, std::size_t test_samples,
                            std::uint64_t seed) {
  // Harder mixture (Bayes ~65%): CNN curves plateau around 60%, echoing
  // the paper's CIFAR-10 results.
  return split_pair(0, 3, 16, 16, train_samples, test_samples, 10, 1.0, 0.42, seed);
}

TrainTest make_imagenet100_like(std::size_t train_samples, std::size_t test_samples,
                                std::uint64_t seed) {
  // 100 classes; plateau near 55-60% like the paper's VGG-16 curves.
  return split_pair(0, 3, 16, 16, train_samples, test_samples, 100, 1.0, 0.27, seed);
}

}  // namespace airfedga::data
