#pragma once

#include <vector>

#include "data/partition.hpp"

namespace airfedga::data {

/// Worker grouping: groups[j] lists the worker ids in group V_j.
/// Groups must be disjoint and cover all workers (Alg. 1 precondition).
using WorkerGroups = std::vector<std::vector<std::size_t>>;

/// Per-worker / per-class mass statistics from Table II of the paper:
/// d_i, d_i^k, alpha_i = d_i/D, lambda_k, alpha_i^k — all derived from a
/// dataset plus its partition, and the group-level beta_j / beta_j^k for
/// any candidate grouping.
class DataStats {
 public:
  /// Statistics for `population` workers over `partition.size()` shards
  /// (worker i holds shard i % shards; population 0 means one worker per
  /// shard, the legacy eager layout). Totals weight each shard by its
  /// worker multiplicity, so with population == shards every quantity is
  /// integer-identical to the per-worker construction.
  DataStats(const Dataset& ds, const Partition& partition, std::size_t population = 0);

  [[nodiscard]] std::size_t num_workers() const { return population_; }
  [[nodiscard]] std::size_t num_classes() const { return lambda_.size(); }
  /// Number of distinct data shards backing the population.
  [[nodiscard]] std::size_t num_shards() const { return d_s_.size(); }
  /// The shard worker i draws its data from (i % num_shards()).
  [[nodiscard]] std::size_t shard_of(std::size_t i) const;

  /// d_i: sample count on worker i.
  [[nodiscard]] std::size_t worker_size(std::size_t i) const { return d_s_.at(shard_of(i)); }
  /// D: total sample count.
  [[nodiscard]] std::size_t total_size() const { return total_; }
  /// alpha_i = d_i / D.
  [[nodiscard]] double alpha(std::size_t i) const;
  /// lambda_k: global fraction of class k.
  [[nodiscard]] double lambda(std::size_t k) const { return lambda_.at(k); }
  /// d_i^k: samples of class k on worker i.
  [[nodiscard]] std::size_t worker_class_size(std::size_t i, std::size_t k) const;
  /// alpha_i^k = d_i^k / d_i.
  [[nodiscard]] double alpha_class(std::size_t i, std::size_t k) const;

  /// D_j for a worker set.
  [[nodiscard]] std::size_t group_size(const std::vector<std::size_t>& group) const;
  /// beta_j = D_j / D.
  [[nodiscard]] double beta(const std::vector<std::size_t>& group) const;
  /// beta_j^k = D_j^k / D_j.
  [[nodiscard]] double beta_class(const std::vector<std::size_t>& group, std::size_t k) const;

  /// Earth mover distance between group j's label distribution and the
  /// global one (Eq. 11): Lambda_j = sum_k |lambda_k - beta_j^k|.
  [[nodiscard]] double emd(const std::vector<std::size_t>& group) const;

  /// Mean EMD over all groups (Table III's metric).
  [[nodiscard]] double mean_emd(const WorkerGroups& groups) const;

  /// EMD of a single worker treated as its own group.
  [[nodiscard]] double worker_emd(std::size_t i) const;

 private:
  std::vector<std::size_t> d_s_;                // [shard] sample count
  std::vector<std::vector<std::size_t>> d_sk_;  // [shard][class]
  std::vector<double> lambda_;
  std::size_t population_ = 0;
  std::size_t total_ = 0;  // multiplicity-weighted: sum_i d_{shard_of(i)}
};

/// Checks disjointness + coverage of a grouping over `num_workers` workers.
void validate_groups(const WorkerGroups& groups, std::size_t num_workers);

}  // namespace airfedga::data
