#pragma once

#include <vector>

#include "data/partition.hpp"

namespace airfedga::data {

/// Worker grouping: groups[j] lists the worker ids in group V_j.
/// Groups must be disjoint and cover all workers (Alg. 1 precondition).
using WorkerGroups = std::vector<std::vector<std::size_t>>;

/// Per-worker / per-class mass statistics from Table II of the paper:
/// d_i, d_i^k, alpha_i = d_i/D, lambda_k, alpha_i^k — all derived from a
/// dataset plus its partition, and the group-level beta_j / beta_j^k for
/// any candidate grouping.
class DataStats {
 public:
  DataStats(const Dataset& ds, const Partition& partition);

  [[nodiscard]] std::size_t num_workers() const { return d_i_.size(); }
  [[nodiscard]] std::size_t num_classes() const { return lambda_.size(); }

  /// d_i: sample count on worker i.
  [[nodiscard]] std::size_t worker_size(std::size_t i) const { return d_i_.at(i); }
  /// D: total sample count.
  [[nodiscard]] std::size_t total_size() const { return total_; }
  /// alpha_i = d_i / D.
  [[nodiscard]] double alpha(std::size_t i) const;
  /// lambda_k: global fraction of class k.
  [[nodiscard]] double lambda(std::size_t k) const { return lambda_.at(k); }
  /// d_i^k: samples of class k on worker i.
  [[nodiscard]] std::size_t worker_class_size(std::size_t i, std::size_t k) const;
  /// alpha_i^k = d_i^k / d_i.
  [[nodiscard]] double alpha_class(std::size_t i, std::size_t k) const;

  /// D_j for a worker set.
  [[nodiscard]] std::size_t group_size(const std::vector<std::size_t>& group) const;
  /// beta_j = D_j / D.
  [[nodiscard]] double beta(const std::vector<std::size_t>& group) const;
  /// beta_j^k = D_j^k / D_j.
  [[nodiscard]] double beta_class(const std::vector<std::size_t>& group, std::size_t k) const;

  /// Earth mover distance between group j's label distribution and the
  /// global one (Eq. 11): Lambda_j = sum_k |lambda_k - beta_j^k|.
  [[nodiscard]] double emd(const std::vector<std::size_t>& group) const;

  /// Mean EMD over all groups (Table III's metric).
  [[nodiscard]] double mean_emd(const WorkerGroups& groups) const;

  /// EMD of a single worker treated as its own group.
  [[nodiscard]] double worker_emd(std::size_t i) const;

 private:
  std::vector<std::size_t> d_i_;
  std::vector<std::vector<std::size_t>> d_ik_;  // [worker][class]
  std::vector<double> lambda_;
  std::size_t total_ = 0;
};

/// Checks disjointness + coverage of a grouping over `num_workers` workers.
void validate_groups(const WorkerGroups& groups, std::size_t num_workers);

}  // namespace airfedga::data
