#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ml/tensor.hpp"
#include "util/rng.hpp"

namespace airfedga::data {

/// In-memory labelled dataset. `xs` is (N, D) for flat inputs or
/// (N, C, H, W) for image-shaped inputs; `ys` holds class indices.
struct Dataset {
  ml::Tensor xs;
  std::vector<int> ys;
  std::size_t num_classes = 0;

  [[nodiscard]] std::size_t size() const { return ys.size(); }

  /// Indices of all samples with the given label.
  [[nodiscard]] std::vector<std::size_t> indices_of_class(int label) const;
};

/// Configuration for the synthetic class-conditional generator.
///
/// Each class k gets a prototype vector mu_k (unit-norm random direction
/// scaled by `margin`); a sample is mu_k + noise, passed through a fixed
/// random rotation so no single input coordinate is class-revealing.
/// `margin`/`noise` control Bayes error, i.e. how long a model needs to
/// train before reaching the paper's accuracy targets.
struct SyntheticConfig {
  std::size_t num_samples = 10000;
  std::size_t num_classes = 10;
  double margin = 1.0;
  double noise = 1.0;
  std::uint64_t seed = 1;
};

/// Flat-feature dataset of dimension `dim` (MNIST-like when dim=784, K=10).
Dataset make_synthetic_flat(std::size_t dim, const SyntheticConfig& cfg);

/// Image-shaped dataset (C, H, W); prototypes are per-class spatial
/// patterns so convolutional models have local structure to exploit.
Dataset make_synthetic_image(std::size_t channels, std::size_t height, std::size_t width,
                             const SyntheticConfig& cfg);

/// Named dataset presets mirroring the paper's three benchmarks at
/// CPU-tractable size. `train_samples`/`test_samples` default to values
/// that keep the full figure grid runnable; pass larger values to approach
/// the original dataset sizes.
struct TrainTest {
  Dataset train;
  Dataset test;
};
TrainTest make_mnist_like(std::size_t train_samples = 10000, std::size_t test_samples = 2000,
                          std::uint64_t seed = 1);
/// 1x28x28 image-shaped variant of the MNIST-like preset (for CNN models).
TrainTest make_mnist_image_like(std::size_t train_samples = 10000,
                                std::size_t test_samples = 2000, std::uint64_t seed = 1);
TrainTest make_cifar10_like(std::size_t train_samples = 10000, std::size_t test_samples = 2000,
                            std::uint64_t seed = 2);
TrainTest make_imagenet100_like(std::size_t train_samples = 10000, std::size_t test_samples = 2000,
                                std::uint64_t seed = 3);

}  // namespace airfedga::data
