#include "fl/server.hpp"

#include <stdexcept>

namespace airfedga::fl {

ParameterServer::ParameterServer(std::vector<float> initial_model, std::size_t num_groups)
    : model_(std::move(initial_model)), ready_(num_groups, 0), base_(num_groups, 0) {
  if (model_.empty()) throw std::invalid_argument("ParameterServer: empty initial model");
  if (num_groups == 0) throw std::invalid_argument("ParameterServer: zero groups");
}

bool ParameterServer::ready(std::size_t group, std::size_t group_size) {
  if (group >= ready_.size()) throw std::out_of_range("ParameterServer::ready: bad group");
  if (group_size == 0) throw std::invalid_argument("ParameterServer::ready: empty group");
  ++ready_[group];
  if (ready_[group] > group_size)
    throw std::logic_error("ParameterServer::ready: more READY messages than members");
  return ready_[group] == group_size;
}

void ParameterServer::reset_ready(std::size_t group) {
  if (group >= ready_.size()) throw std::out_of_range("ParameterServer::reset_ready: bad group");
  ready_[group] = 0;
}

std::size_t ParameterServer::staleness(std::size_t group) const {
  const std::size_t base = base_.at(group);
  // This aggregation becomes round t = round_ + 1; tau = (t-1) - base.
  return round_ - base;
}

void ParameterServer::complete_round(std::size_t group, std::vector<float> new_model) {
  if (group >= ready_.size())
    throw std::out_of_range("ParameterServer::complete_round: bad group");
  if (new_model.size() != model_.size())
    throw std::invalid_argument("ParameterServer::complete_round: model size changed");
  model_ = std::move(new_model);
  ++round_;
  ready_[group] = 0;
  base_[group] = round_;
}

void ParameterServer::complete_round(const std::vector<std::size_t>& groups,
                                     std::vector<float> new_model) {
  if (groups.empty())
    throw std::invalid_argument("ParameterServer::complete_round: no groups in commit");
  for (auto g : groups)
    if (g >= ready_.size()) throw std::out_of_range("ParameterServer::complete_round: bad group");
  if (new_model.size() != model_.size())
    throw std::invalid_argument("ParameterServer::complete_round: model size changed");
  model_ = std::move(new_model);
  ++round_;
  for (auto g : groups) {
    ready_[g] = 0;
    base_[g] = round_;
  }
}

}  // namespace airfedga::fl
