#include "fl/metrics.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/stats.hpp"

namespace airfedga::fl {

void Metrics::record(MetricPoint p) {
  if (!points_.empty() && p.time < points_.back().time)
    throw std::invalid_argument("Metrics::record: time went backwards");
  points_.push_back(p);
}

bool Metrics::bit_identical(const Metrics& other) const {
  const auto& pa = points_;
  const auto& pb = other.points_;
  if (pa.size() != pb.size()) return false;
  // Bitwise comparison is deliberate: determinism means the same bits, not
  // the same values up to a tolerance — and not `==` either, which would
  // flag identical NaN losses as divergent and accept -0.0 vs 0.0. memcmp
  // over the whole struct would compare padding, so go field by field.
  const auto same_bits = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  };
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (!same_bits(pa[i].time, pb[i].time) || pa[i].round != pb[i].round ||
        !same_bits(pa[i].loss, pb[i].loss) || !same_bits(pa[i].accuracy, pb[i].accuracy) ||
        !same_bits(pa[i].energy, pb[i].energy) || !same_bits(pa[i].staleness, pb[i].staleness))
      return false;
  }
  if (final_model_.size() != other.final_model_.size()) return false;
  return std::equal(final_model_.begin(), final_model_.end(), other.final_model_.begin(),
                    [](float a, float b) {
                      return std::memcmp(&a, &b, sizeof(float)) == 0;  // NaN/-0.0 safe
                    });
}

namespace {
std::size_t first_index_reaching(const std::vector<MetricPoint>& pts, double target,
                                 std::size_t window) {
  std::vector<double> acc(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) acc[i] = pts[i].accuracy;
  const auto smooth = util::moving_average(acc, std::max<std::size_t>(1, window));
  for (std::size_t i = 0; i < smooth.size(); ++i)
    if (smooth[i] >= target) return i;
  return pts.size();
}
}  // namespace

double Metrics::time_to_accuracy(double target, std::size_t window) const {
  const auto i = first_index_reaching(points_, target, window);
  return i < points_.size() ? points_[i].time : -1.0;
}

double Metrics::energy_to_accuracy(double target, std::size_t window) const {
  const auto i = first_index_reaching(points_, target, window);
  return i < points_.size() ? points_[i].energy : -1.0;
}

double Metrics::final_accuracy() const { return points_.empty() ? 0.0 : points_.back().accuracy; }
double Metrics::final_loss() const { return points_.empty() ? 0.0 : points_.back().loss; }
double Metrics::total_time() const { return points_.empty() ? 0.0 : points_.back().time; }
double Metrics::total_energy() const { return points_.empty() ? 0.0 : points_.back().energy; }

double Metrics::obs_total_energy() const {
  for (const auto& h : obs_snapshot_.histograms)
    if (h.name == "substrate.energy_j") return h.sum;
  return total_energy();
}
std::size_t Metrics::total_rounds() const { return points_.empty() ? 0 : points_.back().round; }

double Metrics::average_round_time() const {
  if (points_.empty() || points_.back().round == 0) return 0.0;
  return points_.back().time / static_cast<double>(points_.back().round);
}

double Metrics::max_staleness() const {
  double m = 0.0;
  for (const auto& p : points_) m = std::max(m, p.staleness);
  return m;
}

std::string Metrics::digest() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  const auto mix = [&h](const void* data, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  };
  const auto mix_u64 = [&](std::uint64_t v) { mix(&v, sizeof(v)); };
  const auto mix_d = [&](double v) { mix(&v, sizeof(v)); };

  mix_u64(points_.size());
  for (const auto& p : points_) {
    mix_d(p.time);
    mix_u64(p.round);
    mix_d(p.loss);
    mix_d(p.accuracy);
    mix_d(p.energy);
    mix_d(p.staleness);
  }
  mix_u64(final_model_.size());
  if (!final_model_.empty())
    mix(final_model_.data(), final_model_.size() * sizeof(float));

  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

void Metrics::write_csv(const std::string& path) const {
  // Create a missing output directory instead of silently producing
  // nothing; a path that still cannot be opened fails with the reason.
  const auto parent = std::filesystem::path(path).parent_path();
  std::error_code ec;
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  if (ec)
    throw std::runtime_error("Metrics::write_csv: cannot create directory " + parent.string() +
                             ": " + ec.message());
  std::ofstream f(path);
  if (!f)
    throw std::runtime_error("Metrics::write_csv: cannot open " + path +
                             " for writing (check permissions and that the parent is a directory)");
  f << csv_string();
  if (!f.flush()) throw std::runtime_error("Metrics::write_csv: write failed for " + path);
}

std::string Metrics::csv_string() const {
  std::ostringstream f;
  f << "time,round,loss,accuracy,energy,staleness\n";
  for (const auto& p : points_)
    f << p.time << ',' << p.round << ',' << p.loss << ',' << p.accuracy << ',' << p.energy
      << ',' << p.staleness << '\n';
  return f.str();
}

}  // namespace airfedga::fl
