#include <cmath>
#include <stdexcept>

#include "fl/mechanisms.hpp"

namespace airfedga::fl {

void FedAsync::check(const FLConfig&) const {
  if (mixing_ <= 0.0 || mixing_ > 1.0)
    throw std::invalid_argument("FedAsync: mixing must be in (0, 1]");
  if (damping_ < 0.0) throw std::invalid_argument("FedAsync: damping must be >= 0");
}

data::WorkerGroups FedAsync::make_cohorts(SchedulingLoop& loop) {
  // Every worker is its own "group": the ParameterServer's per-group
  // staleness bookkeeping applies verbatim with singleton cohorts.
  data::WorkerGroups singletons(loop.driver().num_workers());
  for (std::size_t i = 0; i < singletons.size(); ++i) singletons[i] = {i};
  return singletons;
}

double FedAsync::upload_seconds(const SchedulingLoop& loop,
                                const std::vector<std::size_t>& members, double now) const {
  return loop.driver().substrate().oma_upload_seconds(loop.driver().model_dim(), members.size(),
                                                      now);
}

double FedAsync::aggregate_time(const SchedulingLoop& loop, std::size_t /*cohort*/,
                                const std::vector<std::size_t>& members, double start) const {
  // Left-to-right association (start + l_i) + upload, matching the
  // original event arithmetic bit for bit.
  return start + loop.local_times()[members.front()] + upload_seconds(loop, members, start);
}

std::vector<float> FedAsync::aggregate(SchedulingLoop& loop,
                                       const std::vector<std::size_t>& members,
                                       std::span<const float> /*w_prev*/, std::size_t /*round*/) {
  // The candidate update is the worker's own model; reweight() blends it.
  const auto wi = loop.driver().worker(members.front()).local_model();
  return std::vector<float>(wi.begin(), wi.end());
}

void FedAsync::reweight(const SchedulingLoop& /*loop*/, std::span<const float> w_prev,
                        std::vector<float>& w_next, double tau) const {
  const double alpha = mixing_ / std::pow(1.0 + tau, damping_);
  for (std::size_t d = 0; d < w_next.size(); ++d)
    w_next[d] = static_cast<float>((1.0 - alpha) * w_prev[d] + alpha * w_next[d]);
}

}  // namespace airfedga::fl
