#include <cmath>
#include <stdexcept>

#include "fl/mechanisms.hpp"
#include "fl/server.hpp"
#include "sim/event_queue.hpp"

namespace airfedga::fl {

Metrics FedAsync::run(const FLConfig& cfg) {
  if (mixing_ <= 0.0 || mixing_ > 1.0)
    throw std::invalid_argument("FedAsync: mixing must be in (0, 1]");
  if (damping_ < 0.0) throw std::invalid_argument("FedAsync: damping must be >= 0");

  Driver driver(cfg);
  Metrics metrics;

  const auto local_times = driver.cluster().local_times();
  // Every worker is its own "group": the ParameterServer's per-group
  // staleness bookkeeping applies verbatim with singleton groups.
  ParameterServer server(driver.initial_model(), driver.num_workers());
  const double upload_time = driver.latency().oma_upload_seconds(driver.model_dim(), 1);

  // Fully asynchronous: every worker's local training is an independent
  // in-flight job on the driver's lanes, collected when its (virtual-time)
  // upload event is processed.
  sim::EventQueue queue;
  for (std::size_t i = 0; i < driver.num_workers(); ++i) {
    // Each worker's upload-complete event is its deadline tag: fast
    // workers' jobs get lanes first, matching virtual-time urgency.
    driver.begin_training({i}, server.global_model(),
                          /*deadline=*/local_times[i] + upload_time);
    queue.schedule(local_times[i] + upload_time, /*kind=*/0, i);
  }

  while (!queue.empty()) {
    const auto ev = queue.pop();
    if (ev.time > cfg.time_budget) break;
    const std::size_t i = ev.actor;

    driver.finish_training({i});
    const auto tau = static_cast<double>(server.staleness(i));
    const double alpha = mixing_ / std::pow(1.0 + tau, damping_);
    const auto w_prev = server.global_model();
    const auto wi = driver.worker(i).local_model();
    std::vector<float> w_next(w_prev.size());
    for (std::size_t d = 0; d < w_next.size(); ++d)
      w_next[d] = static_cast<float>((1.0 - alpha) * w_prev[d] + alpha * wi[d]);

    server.complete_round(i, std::move(w_next));
    driver.maybe_record(metrics, server.round(), ev.time, /*energy=*/0.0, tau,
                        server.global_model());
    if (server.round() >= cfg.max_rounds || driver.should_stop(metrics)) break;

    driver.begin_training({i}, server.global_model(),
                          /*deadline=*/ev.time + local_times[i] + upload_time);
    queue.schedule(ev.time + local_times[i] + upload_time, /*kind=*/0, i);
  }
  metrics.set_final_model(server.model_vector());
  metrics.set_engine_stats(driver.engine_stats());
  return metrics;
}

}  // namespace airfedga::fl
