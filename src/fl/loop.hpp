#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/data_stats.hpp"
#include "fl/driver.hpp"
#include "fl/metrics.hpp"
#include "fl/server.hpp"
#include "sim/event_queue.hpp"

namespace airfedga::fl {

class SchedulingLoop;

/// When (and for whom) a mechanism's aggregation event fires. Every
/// mechanism of Table I — and every variant from the related work — falls
/// into one of these four families, which is what lets a single scheduling
/// loop replace the six hand-rolled per-mechanism loops.
enum class TriggerKind {
  /// One synchronous cohort; the round barrier is scheduled up front and
  /// the time budget is checked *before* a round starts (FedAvg,
  /// Air-FedAvg, Dynamic).
  kRoundBarrier,
  /// Mutually asynchronous cohorts, each aggregating on its own timer:
  /// cycle start + slowest member + upload (TiFL tiers, FedAsync's
  /// singleton "groups").
  kCohortTimer,
  /// Cohort members report READY individually; the cohort aggregates one
  /// upload after the last member arrives (Air-FedGA's intra-group
  /// alignment, Alg. 1 lines 17-23).
  kGroupReady,
  /// READY reports feed a server-side buffer; the policy decides per
  /// arrival whether to flush the buffer as one aggregation (semi-async,
  /// Kou et al.).
  kReadyBuffer,
};

/// A federated mechanism as a policy object. The event-driven engine
/// (SchedulingLoop) owns the run: it seeds the queue, advances virtual
/// time, tags every training batch with its aggregation deadline, collects
/// in-flight jobs at barriers, records metrics, and applies the shared
/// stop rules. Subclasses only answer the three policy questions:
///
///  1. *Selection* — `check` / `make_cohorts` / `select`: which workers
///     form which cohorts, and who joins a cohort's next cycle.
///  2. *Aggregation trigger* — `trigger` / `upload_seconds` /
///     `aggregate_time` / `should_flush`: when a cohort's aggregation
///     event fires.
///  3. *Staleness weighting* — `aggregate` / `reweight`: how a cohort's
///     models fold into the global model, and how staleness damps the
///     update (identity, FedAsync damping, bounded-staleness blending).
///
/// The hooks are public on purpose: they are the mechanism API, and the
/// unit tests exercise them in isolation against a prepared loop.
class Mechanism {
 public:
  virtual ~Mechanism() = default;  ///< mechanisms are held by base pointer

  /// Display name used in tables, curves, and CSV stems.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Executes one full federated training run under `cfg` on the unified
  /// scheduling loop and returns its recorded metric series (with engine
  /// stats attached). Non-virtual: the loop is shared, only policy varies.
  Metrics run(const FLConfig& cfg);

  // -- selection hooks ------------------------------------------------
  /// Validates mechanism knobs against `cfg`; throws std::invalid_argument
  /// before any run state is built. Default: accept.
  virtual void check(const FLConfig& cfg) const;

  /// Partitions the workers into the mechanism's cohorts (one cohort =
  /// synchronous round barrier; tiers; singletons; Alg. 3 groups). Called
  /// once per run, after the loop computed local_times().
  virtual data::WorkerGroups make_cohorts(SchedulingLoop& loop) = 0;

  /// Members of `cohort` participating in the cycle that aggregates as
  /// global round `round`. Default: the full cohort. Returning an empty
  /// vector skips the cycle (kRoundBarrier advances to the next round
  /// without consuming virtual time, mirroring Dynamic's defensive skip).
  virtual std::vector<std::size_t> select(SchedulingLoop& loop, std::size_t cohort,
                                          std::size_t round);

  // -- aggregation-trigger hooks --------------------------------------
  /// Which trigger family drives this mechanism's aggregation events.
  [[nodiscard]] virtual TriggerKind trigger() const = 0;

  /// Upload duration for one aggregation over `members` (serialized OMA
  /// transfers or one concurrent AirComp transmission), queried from the
  /// substrate at the virtual time `now` the upload starts.
  [[nodiscard]] virtual double upload_seconds(const SchedulingLoop& loop,
                                              const std::vector<std::size_t>& members,
                                              double now) const = 0;

  /// Virtual time at which a cycle of `cohort` starting at `start` will
  /// aggregate; doubles as the deadline tag handed to the lane scheduler
  /// with the cycle's training batch. Default: start + (compute + upload)
  /// with compute = the slowest member's local time. Override only to
  /// reproduce a different floating-point association (FedAsync).
  [[nodiscard]] virtual double aggregate_time(const SchedulingLoop& loop, std::size_t cohort,
                                              const std::vector<std::size_t>& members,
                                              double start) const;

  /// kReadyBuffer only: called when a READY arrives with the buffer
  /// contents (arrival order); true flushes the buffer as one aggregation.
  /// Default: flush on every upload (degenerates to FedAsync timing).
  virtual bool should_flush(SchedulingLoop& loop, const std::vector<std::size_t>& buffered);

  // -- staleness-weighting hooks --------------------------------------
  /// Folds the members' trained models into a candidate global model for
  /// round `round` (their in-flight jobs are already collected). AirComp
  /// mechanisms accumulate transmit energy via loop.energy_joules().
  virtual std::vector<float> aggregate(SchedulingLoop& loop,
                                       const std::vector<std::size_t>& members,
                                       std::span<const float> w_prev, std::size_t round) = 0;

  /// Staleness weighting applied in place to the candidate `w_next`
  /// against the still-installed `w_prev` (tau = cohort staleness at this
  /// aggregation). Default: identity (synchronous mechanisms and plain
  /// Air-FedGA).
  virtual void reweight(const SchedulingLoop& loop, std::span<const float> w_prev,
                        std::vector<float>& w_next, double tau) const;
};

/// The unified event-driven engine: one loop over sim::EventQueue drives
/// every mechanism. Construction prepares the run state a policy's hooks
/// can query (local times, cohorts, parameter server); run() seeds the
/// queue per the policy's TriggerKind and drains it.
///
/// Determinism contract: the loop replays each mechanism's original
/// schedule()/pop() sequence exactly — event seq numbers break time ties,
/// so insertion order is part of the observable behaviour — and every
/// floating-point reduction it performs is association-identical to the
/// pre-refactor per-mechanism loops. Metrics::digest() is therefore
/// bit-identical to the seed implementation for every FLConfig::threads.
class SchedulingLoop {
 public:
  /// Prepares the run state: local times, the policy's cohorts (validated
  /// non-empty), the cohort index, and the parameter server holding w_0.
  /// The event queue is built on FLConfig::event_queue; a nonzero
  /// FLConfig::cohort_size is rejected for group- and buffer-triggered
  /// mechanisms (their membership is the mechanism, not a sampling knob).
  SchedulingLoop(Driver& driver, Mechanism& policy);

  /// Seeds the event queue for the policy's trigger kind, then drains it:
  /// READY events feed cohort alignment or the flush buffer, aggregation
  /// events run collect -> aggregate -> reweight -> commit -> record, and
  /// the loop stops at the time budget (peeked, so the clock never passes
  /// it), the round cap, or the shared early-stop rule.
  Metrics run();

  // -- state exposed to policy hooks ----------------------------------
  [[nodiscard]] Driver& driver() const { return driver_; }
  [[nodiscard]] const FLConfig& config() const { return driver_.config(); }
  /// Per-worker local training durations (sim::ClusterModel, fixed per run).
  [[nodiscard]] const std::vector<double>& local_times() const { return local_times_; }
  /// The policy's cohorts as returned by make_cohorts.
  [[nodiscard]] const data::WorkerGroups& cohorts() const { return cohorts_; }
  /// Cohort index of worker `i`.
  [[nodiscard]] std::size_t cohort_of(std::size_t worker) const { return cohort_of_.at(worker); }
  /// Parameter-server state (global model, round counter, staleness).
  [[nodiscard]] ParameterServer& server() { return *server_; }
  [[nodiscard]] const ParameterServer& server() const { return *server_; }
  /// Accumulated transmit energy (J); AirComp aggregation adds into this.
  [[nodiscard]] double& energy_joules() { return energy_; }

 private:
  static constexpr int kEvReady = 0;      ///< a worker finished local training
  static constexpr int kEvAggregate = 1;  ///< an aggregation upload completes
  static constexpr int kEvSubstrate = 2;  ///< a worker's availability toggles

  void seed_queue();
  // Deterministic per-(round, cohort) subsampling down to
  // FLConfig::cohort_size; identity when the knob is 0 or the selection is
  // already small enough. The draw's RNG stream depends only on (seed,
  // round, cohort), never on engine state, so it is thread- and
  // backend-invariant.
  std::vector<std::size_t> sample_cohort(std::vector<std::size_t> members, std::size_t round,
                                         std::size_t cohort) const;
  void start_sync_cycle();
  void start_timer_cycle(std::size_t cohort, double start);
  void start_ready_cycle(std::size_t cohort, double start);
  void start_buffer_cycle(const std::vector<std::size_t>& members, double start);
  void on_ready(const sim::Event& ev);
  bool on_aggregate(const sim::Event& ev);  ///< false = stop the run
  void on_substrate(const sim::Event& ev);
  // Members of `candidates` that are online and not energy-depleted at
  // virtual `time`; returns `candidates` untouched on a static substrate.
  std::vector<std::size_t> filter_selectable(std::vector<std::size_t> candidates,
                                             double time) const;

  Driver& driver_;
  Mechanism& policy_;
  TriggerKind trigger_;
  Metrics metrics_;
  sim::EventQueue queue_;
  std::vector<double> local_times_;
  data::WorkerGroups cohorts_;
  std::vector<std::size_t> cohort_of_;
  std::optional<ParameterServer> server_;
  /// Members training toward each cohort's pending aggregation event.
  std::vector<std::vector<std::size_t>> active_;
  /// kRoundBarrier: synchronous round counter (selection skips advance it
  /// past the server's committed-round count, like the original loops).
  std::size_t cycle_ = 0;
  /// kReadyBuffer: workers whose uploads await a flush, in arrival order.
  std::vector<std::size_t> buffer_;
  /// kReadyBuffer: flushed buffers by in-flight aggregation event actor.
  std::vector<std::vector<std::size_t>> flights_;
  double energy_ = 0.0;
  /// The run's substrate and whether it varies over time. With a static
  /// substrate every realism branch below is dead and the loop replays the
  /// classic event sequence exactly.
  sim::Substrate* substrate_ = nullptr;
  bool realism_ = false;
  /// Cohorts whose last cycle start found no selectable member: they wait
  /// for a kEvSubstrate availability event instead of spinning or retiring
  /// (kRoundBarrier uses slot 0; kReadyBuffer's cohorts are singletons).
  std::vector<char> idle_;
  /// Observability instruments, resolved once from the driver's registry
  /// (updates are then lock-free). Both record *virtual*-time quantities,
  /// so their contents are deterministic for a given scenario.
  obs::Histogram* pending_hist_ = nullptr;  ///< eventq.pending depth at each pop
  obs::Histogram* latency_hist_ = nullptr;  ///< per-TriggerKind aggregation latency
  obs::Counter* dropouts_ = nullptr;        ///< substrate.dropouts (mid-round losses)
};

}  // namespace airfedga::fl
