#include <numeric>

#include "fl/mechanisms.hpp"

namespace airfedga::fl {

data::WorkerGroups FedAvg::make_cohorts(SchedulingLoop& loop) {
  // Full participation behind one round barrier.
  std::vector<std::size_t> everyone(loop.driver().num_workers());
  std::iota(everyone.begin(), everyone.end(), std::size_t{0});
  return {std::move(everyone)};
}

double FedAvg::upload_seconds(const SchedulingLoop& loop,
                              const std::vector<std::size_t>& members, double now) const {
  // N serialized OMA uploads — the linear-in-N term of Fig. 10.
  return loop.driver().substrate().oma_upload_seconds(loop.driver().model_dim(), members.size(),
                                                      now);
}

std::vector<float> FedAvg::aggregate(SchedulingLoop& loop, const std::vector<std::size_t>& members,
                                     std::span<const float> w_prev, std::size_t /*round*/) {
  // The PS forms the exact weighted average (OMA is reliable).
  return loop.driver().oma_aggregate(members, w_prev);
}

}  // namespace airfedga::fl
