#include <algorithm>
#include <numeric>

#include "fl/mechanisms.hpp"

namespace airfedga::fl {

Metrics FedAvg::run(const FLConfig& cfg) {
  Driver driver(cfg);
  Metrics metrics;

  std::vector<float> w = driver.initial_model();
  std::vector<std::size_t> everyone(driver.num_workers());
  std::iota(everyone.begin(), everyone.end(), std::size_t{0});

  const auto local_times = driver.cluster().local_times();
  const double compute_time = *std::max_element(local_times.begin(), local_times.end());
  const double upload_time =
      driver.latency().oma_upload_seconds(driver.model_dim(), driver.num_workers());
  const double round_time = compute_time + upload_time;

  double now = 0.0;
  for (std::size_t t = 1; t <= cfg.max_rounds; ++t) {
    if (now + round_time > cfg.time_budget) break;
    // Synchronous round: every worker trains from w_{t-1} (Eq. 4), spread
    // across the driver's training lanes up to the round barrier. The
    // round's (virtual) barrier time is the whole cohort's deadline tag.
    driver.train_workers(everyone, w, now + round_time);
    now += round_time;
    // ... and the PS forms the exact weighted average (OMA is reliable).
    w = driver.oma_aggregate(everyone, w);

    driver.maybe_record(metrics, t, now, /*energy=*/0.0, /*staleness=*/0.0, w);
    if (driver.should_stop(metrics)) break;
  }
  metrics.set_final_model(std::move(w));
  metrics.set_engine_stats(driver.engine_stats());
  return metrics;
}

}  // namespace airfedga::fl
