#include <algorithm>
#include <stdexcept>

#include "fl/mechanisms.hpp"
#include "util/stats.hpp"

namespace airfedga::fl {

Metrics DynamicAirComp::run(const FLConfig& cfg) {
  if (selection_quantile_ < 0.0 || selection_quantile_ >= 1.0)
    throw std::invalid_argument("DynamicAirComp: selection quantile must be in [0,1)");
  Driver driver(cfg);
  Metrics metrics;

  std::vector<float> w = driver.initial_model();
  const auto local_times = driver.cluster().local_times();
  const double upload_time = driver.latency().aircomp_upload_seconds(driver.model_dim());

  double now = 0.0;
  double energy = 0.0;
  for (std::size_t t = 1; t <= cfg.max_rounds; ++t) {
    // Channel-aware scheduling: admit workers whose gain this round clears
    // the configured quantile. Strong channels need the least transmit
    // power for the common sigma_t (Eq. 6), so this is the energy-friendly
    // subset; it is re-drawn every round with the fading, which is what
    // makes the participating data distribution wander under label skew.
    const auto gains = driver.fading().gains(t);
    const double cutoff = util::quantile(gains, selection_quantile_);
    std::vector<std::size_t> selected;
    for (std::size_t i = 0; i < gains.size(); ++i)
      if (gains[i] >= cutoff) selected.push_back(i);
    if (selected.empty()) continue;  // cannot happen with quantile < 1; defensive

    double compute_time = 0.0;
    for (auto i : selected) compute_time = std::max(compute_time, local_times[i]);
    const double round_time = compute_time + upload_time;
    if (now + round_time > cfg.time_budget) break;

    // Admitted subset trains concurrently on the driver's lanes (barrier);
    // the round's virtual barrier time is the subset's deadline tag.
    driver.train_workers(selected, w, now + round_time);
    now += round_time;
    w = driver.aircomp_aggregate(selected, w, t, energy);

    driver.maybe_record(metrics, t, now, energy, /*staleness=*/0.0, w);
    if (driver.should_stop(metrics)) break;
  }
  metrics.set_final_model(std::move(w));
  metrics.set_engine_stats(driver.engine_stats());
  return metrics;
}

}  // namespace airfedga::fl
