#include <numeric>
#include <stdexcept>

#include "fl/mechanisms.hpp"
#include "util/stats.hpp"

namespace airfedga::fl {

void DynamicAirComp::check(const FLConfig&) const {
  if (selection_quantile_ < 0.0 || selection_quantile_ >= 1.0)
    throw std::invalid_argument("DynamicAirComp: selection quantile must be in [0,1)");
}

data::WorkerGroups DynamicAirComp::make_cohorts(SchedulingLoop& loop) {
  std::vector<std::size_t> everyone(loop.driver().num_workers());
  std::iota(everyone.begin(), everyone.end(), std::size_t{0});
  return {std::move(everyone)};
}

std::vector<std::size_t> DynamicAirComp::select(SchedulingLoop& loop, std::size_t /*cohort*/,
                                                std::size_t round) {
  // Channel-aware scheduling: admit workers whose gain this round clears
  // the configured quantile. Strong channels need the least transmit
  // power for the common sigma_t (Eq. 6), so this is the energy-friendly
  // subset; it is re-drawn every round with the fading, which is what
  // makes the participating data distribution wander under label skew.
  const auto& gains = loop.driver().substrate().gains(round);
  const double cutoff = util::quantile(gains, selection_quantile_);
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < gains.size(); ++i)
    if (gains[i] >= cutoff) selected.push_back(i);
  return selected;  // empty cannot happen with quantile < 1; the loop skips it
}

double DynamicAirComp::upload_seconds(const SchedulingLoop& loop,
                                      const std::vector<std::size_t>& /*members*/,
                                      double now) const {
  return loop.driver().substrate().aircomp_upload_seconds(loop.driver().model_dim(), now);
}

std::vector<float> DynamicAirComp::aggregate(SchedulingLoop& loop,
                                             const std::vector<std::size_t>& members,
                                             std::span<const float> w_prev, std::size_t round) {
  return loop.driver().aircomp_aggregate(members, w_prev, round, loop.energy_joules());
}

}  // namespace airfedga::fl
