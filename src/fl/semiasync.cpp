#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fl/mechanisms.hpp"

namespace airfedga::fl {

void SemiAsync::check(const FLConfig&) const {
  if (mixing_ <= 0.0 || mixing_ > 1.0)
    throw std::invalid_argument("SemiAsync: mixing must be in (0, 1]");
  if (damping_ < 0.0) throw std::invalid_argument("SemiAsync: damping must be >= 0");
  if (aggregate_count_ == 0)
    throw std::invalid_argument("SemiAsync: aggregate_count must be >= 1");
  if (schedule_ != "poly" && schedule_ != "exp")
    throw std::invalid_argument("SemiAsync: damping schedule must be 'poly' or 'exp'");
}

data::WorkerGroups SemiAsync::make_cohorts(SchedulingLoop& loop) {
  // Like FedAsync, every worker is its own cohort — staleness is tracked
  // per worker — but uploads meet in the server's flush buffer.
  data::WorkerGroups singletons(loop.driver().num_workers());
  for (std::size_t i = 0; i < singletons.size(); ++i) singletons[i] = {i};
  return singletons;
}

double SemiAsync::upload_seconds(const SchedulingLoop& loop,
                                 const std::vector<std::size_t>& /*members*/,
                                 double now) const {
  // The buffered cohort transmits concurrently over the air (one L_u per
  // flush, regardless of how many uploads it carries).
  return loop.driver().substrate().aircomp_upload_seconds(loop.driver().model_dim(), now);
}

bool SemiAsync::should_flush(SchedulingLoop& loop, const std::vector<std::size_t>& buffered) {
  // Flush at K buffered uploads — clamped so a K above the worker count
  // cannot starve the buffer — or as soon as any buffered upload reaches
  // the staleness bound (bounded waiting; 0 degenerates to fully async).
  const std::size_t target = std::min(aggregate_count_, loop.driver().num_workers());
  if (buffered.size() >= target) return true;
  for (auto m : buffered)
    if (loop.server().staleness(loop.cohort_of(m)) >= staleness_bound_) return true;
  return false;
}

std::vector<float> SemiAsync::aggregate(SchedulingLoop& loop,
                                        const std::vector<std::size_t>& members,
                                        std::span<const float> w_prev, std::size_t round) {
  return loop.driver().aircomp_aggregate(members, w_prev, round, loop.energy_joules());
}

void SemiAsync::reweight(const SchedulingLoop& /*loop*/, std::span<const float> w_prev,
                         std::vector<float>& w_next, double tau) const {
  // Staleness schedule sigma(tau) shrinks the whole flushed update toward
  // the installed model; tau is the worst staleness in the buffer.
  const double sigma =
      exponential_ ? mixing_ * std::exp(-damping_ * tau) : mixing_ / std::pow(1.0 + tau, damping_);
  for (std::size_t d = 0; d < w_next.size(); ++d)
    w_next[d] = static_cast<float>(w_prev[d] + sigma * (w_next[d] - w_prev[d]));
}

}  // namespace airfedga::fl
