#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace airfedga::fl {

/// One evaluation snapshot of a training run, in *virtual* (simulated)
/// seconds — the clock the paper's x-axes use.
struct MetricPoint {
  double time = 0.0;        ///< virtual seconds since training start
  std::size_t round = 0;    ///< global aggregation count so far
  double loss = 0.0;        ///< test loss of the global model
  double accuracy = 0.0;    ///< test accuracy of the global model
  double energy = 0.0;      ///< cumulative aggregation energy (J, Eq. 7)
  double staleness = 0.0;   ///< tau_t of the round that produced this model
};

/// Wall-clock instrumentation of the execution engine for one mechanism
/// run, filled in by the Driver. These are *real* seconds (not virtual
/// simulation time) and therefore vary run to run; `Metrics::bit_identical`
/// deliberately ignores them — only simulated results must be reproducible.
struct EngineStats {
  double barrier_seconds = 0.0;  ///< wall time the simulation thread spent blocked in training barriers
  double eval_seconds = 0.0;     ///< wall time spent inside Driver::evaluate
  std::size_t barriers = 0;      ///< number of finish_training barriers
  std::size_t evals = 0;         ///< number of evaluate calls
  /// Cooperative-GEMM activity: kernels that recruited idle lanes and the
  /// tile count those helpers executed. Like the wall clocks these depend
  /// on scheduling timing (how often lanes happened to be idle), so they
  /// are run-to-run variable and excluded from `Metrics::bit_identical`.
  std::size_t coop_gemms = 0;         ///< GEMMs that recruited at least one helper
  std::size_t coop_helper_tiles = 0;  ///< output tiles computed by recruited helpers
};

/// Time series recorded by every mechanism run; provides the queries the
/// paper's evaluation section needs (time/energy to reach an accuracy,
/// final metrics, average round duration).
class Metrics {
 public:
  void record(MetricPoint p);

  [[nodiscard]] const std::vector<MetricPoint>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// First virtual time at which the `window`-point moving average of
  /// accuracy reaches `target` ("attains a stable X%" in §VI-B1).
  /// Returns a negative value when the target is never reached.
  [[nodiscard]] double time_to_accuracy(double target, std::size_t window = 3) const;

  /// Cumulative aggregation energy when the accuracy target is first
  /// reached (Fig. 9). Negative when never reached.
  [[nodiscard]] double energy_to_accuracy(double target, std::size_t window = 3) const;

  [[nodiscard]] double final_accuracy() const;
  [[nodiscard]] double final_loss() const;
  [[nodiscard]] double total_time() const;
  [[nodiscard]] double total_energy() const;
  [[nodiscard]] std::size_t total_rounds() const;

  /// Total transmit energy as the run's obs registry recorded it: the sum
  /// of the "substrate.energy_j" histogram (one sample per Eq. 7 per-worker
  /// transmit energy, accumulated on the simulation thread in event order,
  /// so it equals total_energy() bit for bit). Falls back to the metric
  /// series when the snapshot lacks the instrument (hand-built Metrics).
  [[nodiscard]] double obs_total_energy() const;

  /// Mean virtual time between consecutive recorded rounds (Fig. 10 left).
  [[nodiscard]] double average_round_time() const;

  /// Maximum staleness observed across the run.
  [[nodiscard]] double max_staleness() const;

  void write_csv(const std::string& path) const;

  /// The exact bytes write_csv would produce, as a string — the scenario
  /// farm stores this in its durable per-variant stash so a resumed
  /// session re-emits identical points files without re-running.
  [[nodiscard]] std::string csv_string() const;

  /// True iff every recorded point and the final model match `other`
  /// bit-for-bit (no tolerance). This is the execution engine's determinism
  /// contract — used by the thread-sweep bench and the determinism tests.
  [[nodiscard]] bool bit_identical(const Metrics& other) const;

  /// 16-hex-char FNV-1a 64 digest over the bit patterns of every recorded
  /// point and the final model — a compact fingerprint of everything
  /// `bit_identical` compares, so two runs digest equal iff they are
  /// bit-identical. Written into the scenario runner's JSONL/CSV results
  /// and printed by the figure benches for cross-binary comparison.
  [[nodiscard]] std::string digest() const;

  /// The trained global model w_T (flat parameter vector); set by every
  /// mechanism before returning (Alg. 1 line 32 "return global model").
  [[nodiscard]] const std::vector<float>& final_model() const { return final_model_; }
  void set_final_model(std::vector<float> model) { final_model_ = std::move(model); }

  /// Execution-engine wall-clock stats of the run that produced this
  /// series (excluded from `bit_identical`; see EngineStats).
  [[nodiscard]] const EngineStats& engine_stats() const { return engine_stats_; }
  void set_engine_stats(const EngineStats& stats) { engine_stats_ = stats; }

  /// Observability counters/histograms of the run (docs/OBSERVABILITY.md).
  /// Like EngineStats, excluded from `bit_identical`/`digest`: some values
  /// are wall-clock- or lane-count-dependent.
  [[nodiscard]] const obs::MetricsSnapshot& obs_snapshot() const { return obs_snapshot_; }
  void set_obs_snapshot(obs::MetricsSnapshot snap) { obs_snapshot_ = std::move(snap); }

 private:
  std::vector<MetricPoint> points_;
  std::vector<float> final_model_;
  EngineStats engine_stats_;
  obs::MetricsSnapshot obs_snapshot_;
};

}  // namespace airfedga::fl
