#include <algorithm>

#include "fl/mechanisms.hpp"
#include "fl/server.hpp"
#include "sim/event_queue.hpp"

namespace airfedga::fl {

Metrics TiFL::run(const FLConfig& cfg) {
  Driver driver(cfg);
  Metrics metrics;

  const auto local_times = driver.cluster().local_times();
  const std::size_t tiers = std::max<std::size_t>(1, std::min(num_tiers_, driver.num_workers()));
  tiers_ = core::tifl_grouping(local_times, tiers);

  ParameterServer server(driver.initial_model(), tiers_.size());

  // Tier round duration: slowest member plus the tier's serialized OMA
  // uploads (Eq. 34 with the OMA upload term instead of L_u).
  std::vector<double> tier_time(tiers_.size());
  for (std::size_t j = 0; j < tiers_.size(); ++j) {
    double compute = 0.0;
    for (auto m : tiers_[j]) compute = std::max(compute, local_times[m]);
    tier_time[j] =
        compute + driver.latency().oma_upload_seconds(driver.model_dim(), tiers_[j].size());
  }

  // Tiers are mutually asynchronous, so each tier's local training runs as
  // in-flight jobs on the driver's lanes; the barrier is per tier, at the
  // moment its (virtual-time) upload event is processed.
  sim::EventQueue queue;
  for (std::size_t j = 0; j < tiers_.size(); ++j) {
    // Every tier starts from w_0; its aggregation event time is the
    // deadline tag, so fast tiers' workers get lanes first.
    driver.begin_training(tiers_[j], server.global_model(), /*deadline=*/tier_time[j]);
    queue.schedule(tier_time[j], /*kind=*/0, j);
  }

  while (!queue.empty()) {
    const auto ev = queue.pop();
    if (ev.time > cfg.time_budget) break;
    const std::size_t j = ev.actor;

    driver.finish_training(tiers_[j]);
    const auto tau = static_cast<double>(server.staleness(j));
    auto w_new = driver.oma_aggregate(tiers_[j], server.global_model());
    server.complete_round(j, std::move(w_new));

    driver.maybe_record(metrics, server.round(), ev.time, /*energy=*/0.0, tau,
                        server.global_model());
    if (server.round() >= cfg.max_rounds || driver.should_stop(metrics)) break;

    // Tier received w_t; its next local round starts immediately and
    // overlaps with the other tiers' in-flight training. Its upcoming
    // aggregation event is the batch's deadline tag.
    driver.begin_training(tiers_[j], server.global_model(),
                          /*deadline=*/ev.time + tier_time[j]);
    queue.schedule(ev.time + tier_time[j], /*kind=*/0, j);
  }
  metrics.set_final_model(server.model_vector());
  metrics.set_engine_stats(driver.engine_stats());
  return metrics;
}

}  // namespace airfedga::fl
