#include <algorithm>

#include "fl/mechanisms.hpp"

namespace airfedga::fl {

data::WorkerGroups TiFL::make_cohorts(SchedulingLoop& loop) {
  // Tiers are built from response times only (no data-distribution
  // awareness); each tier runs its own aggregation timer.
  const std::size_t tiers =
      std::max<std::size_t>(1, std::min(num_tiers_, loop.driver().num_workers()));
  tiers_ = core::tifl_grouping(loop.local_times(), tiers);
  return tiers_;
}

double TiFL::upload_seconds(const SchedulingLoop& loop,
                            const std::vector<std::size_t>& members, double now) const {
  // The tier's serialized OMA uploads (Eq. 34 with the OMA upload term
  // instead of L_u).
  return loop.driver().substrate().oma_upload_seconds(loop.driver().model_dim(), members.size(),
                                                      now);
}

std::vector<float> TiFL::aggregate(SchedulingLoop& loop, const std::vector<std::size_t>& members,
                                   std::span<const float> w_prev, std::size_t /*round*/) {
  return loop.driver().oma_aggregate(members, w_prev);
}

}  // namespace airfedga::fl
