#include "fl/worker.hpp"

#include <stdexcept>

#include "ml/tensor.hpp"

namespace airfedga::fl {

namespace {
void check_shard(std::span<const std::size_t> shard, const data::Dataset& train) {
  if (shard.empty()) throw std::invalid_argument("Worker: empty data shard");
  for (auto idx : shard)
    if (idx >= train.size()) throw std::invalid_argument("Worker: shard index out of range");
}
}  // namespace

Worker::Worker(std::size_t id, const data::Dataset& train, std::span<const std::size_t> shard,
               util::Rng rng)
    : id_(id), train_(&train), shard_(shard), rng_(rng) {
  check_shard(shard_, train);
}

Worker::Worker(std::size_t id, const data::Dataset& train, std::vector<std::size_t> shard,
               util::Rng rng)
    : id_(id), train_(&train), owned_shard_(std::move(shard)), shard_(owned_shard_), rng_(rng) {
  check_shard(shard_, train);
}

void Worker::rebind(std::size_t id, std::span<const std::size_t> shard, util::Rng rng) {
  check_shard(shard, *train_);
  id_ = id;
  owned_shard_.clear();
  shard_ = shard;
  rng_ = rng;
  local_model_.clear();
}

void Worker::replay_rng(std::size_t draws, std::size_t batch_size) {
  if (batch_size == 0 || batch_size >= shard_.size()) return;  // sampling consumed no randomness
  for (std::size_t i = 0; i < draws; ++i)
    rng_.sample_without_replacement(shard_.size(), batch_size, pick_);
}

std::span<const std::size_t> Worker::sample_batch(std::size_t batch_size) {
  if (batch_size == 0 || batch_size >= shard_.size()) return shard_;
  rng_.sample_without_replacement(shard_.size(), batch_size, pick_);
  batch_.resize(pick_.size());
  for (std::size_t i = 0; i < pick_.size(); ++i) batch_[i] = shard_[pick_[i]];
  return batch_;
}

double Worker::local_update(ml::Model& scratch, std::span<const float> global_model, float lr,
                            std::size_t steps, std::size_t batch_size) {
  if (steps == 0) throw std::invalid_argument("Worker::local_update: steps must be >= 1");
  scratch.set_parameters(global_model);
  double loss_sum = 0.0;
  for (std::size_t s = 0; s < steps; ++s) {
    const auto batch = sample_batch(batch_size);
    ml::gather_rows_into(xb_, train_->xs, batch);
    yb_.resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) yb_[i] = train_->ys[batch[i]];
    loss_sum += scratch.train_step(xb_, yb_, lr);
  }
  scratch.parameters_into(local_model_);
  return loss_sum / static_cast<double>(steps);
}

double Worker::model_norm_sq() const { return ml::squared_norm(local_model_); }

}  // namespace airfedga::fl
