#include <numeric>

#include "fl/mechanisms.hpp"

namespace airfedga::fl {

data::WorkerGroups AirFedAvg::make_cohorts(SchedulingLoop& loop) {
  // Full participation behind one round barrier.
  std::vector<std::size_t> everyone(loop.driver().num_workers());
  std::iota(everyone.begin(), everyone.end(), std::size_t{0});
  return {std::move(everyone)};
}

double AirFedAvg::upload_seconds(const SchedulingLoop& loop,
                                 const std::vector<std::size_t>& /*members*/,
                                 double now) const {
  // One concurrent over-the-air transmission, independent of N.
  return loop.driver().substrate().aircomp_upload_seconds(loop.driver().model_dim(), now);
}

std::vector<float> AirFedAvg::aggregate(SchedulingLoop& loop,
                                        const std::vector<std::size_t>& members,
                                        std::span<const float> w_prev, std::size_t round) {
  // All workers transmit concurrently; power control per Alg. 2.
  return loop.driver().aircomp_aggregate(members, w_prev, round, loop.energy_joules());
}

}  // namespace airfedga::fl
