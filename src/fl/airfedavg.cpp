#include <algorithm>
#include <numeric>

#include "fl/mechanisms.hpp"

namespace airfedga::fl {

Metrics AirFedAvg::run(const FLConfig& cfg) {
  Driver driver(cfg);
  Metrics metrics;

  std::vector<float> w = driver.initial_model();
  std::vector<std::size_t> everyone(driver.num_workers());
  std::iota(everyone.begin(), everyone.end(), std::size_t{0});

  const auto local_times = driver.cluster().local_times();
  const double compute_time = *std::max_element(local_times.begin(), local_times.end());
  const double upload_time = driver.latency().aircomp_upload_seconds(driver.model_dim());
  const double round_time = compute_time + upload_time;

  double now = 0.0;
  double energy = 0.0;
  for (std::size_t t = 1; t <= cfg.max_rounds; ++t) {
    if (now + round_time > cfg.time_budget) break;
    // Synchronous round on the driver's training lanes (barrier at the
    // end); the round's virtual barrier time is the cohort's deadline tag.
    driver.train_workers(everyone, w, now + round_time);
    now += round_time;
    // All workers transmit concurrently; power control per Alg. 2.
    w = driver.aircomp_aggregate(everyone, w, t, energy);

    driver.maybe_record(metrics, t, now, energy, /*staleness=*/0.0, w);
    if (driver.should_stop(metrics)) break;
  }
  metrics.set_final_model(std::move(w));
  metrics.set_engine_stats(driver.engine_stats());
  return metrics;
}

}  // namespace airfedga::fl
