#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fl/mechanisms.hpp"
#include "fl/server.hpp"
#include "sim/event_queue.hpp"

namespace airfedga::fl {

namespace {
constexpr int kReady = 0;      ///< a worker finished local training (Alg. 1 line 8)
constexpr int kAggregate = 1;  ///< a complete group finishes its over-the-air upload
}  // namespace

Metrics AirFedGA::run(const FLConfig& cfg) {
  Driver driver(cfg);
  Metrics metrics;

  const auto local_times = driver.cluster().local_times();
  core::GroupingConfig gcfg = opts_.grouping;
  gcfg.aircomp_upload_seconds = driver.latency().aircomp_upload_seconds(driver.model_dim());
  gcfg.energy_cap = cfg.energy_cap;
  gcfg.convergence.sigma0_sq = cfg.aircomp.sigma0_sq;
  if (opts_.auto_calibrate_model_bound) {
    // Assumption 4's W^2 for planning: the initial model norm with 2x
    // headroom (norms drift slowly under small-step SGD).
    const double w_sq = ml::squared_norm(driver.initial_model());
    gcfg.convergence.model_bound_sq = std::max(1e-9, 2.0 * w_sq);
  }

  if (opts_.groups_override) {
    groups_ = *opts_.groups_override;
  } else {
    groups_ = core::airfedga_grouping(driver.stats(), local_times, gcfg).groups;
  }
  data::validate_groups(groups_, driver.num_workers());

  std::vector<std::size_t> group_of(driver.num_workers());
  for (std::size_t j = 0; j < groups_.size(); ++j)
    for (auto m : groups_[j]) group_of[m] = j;

  ParameterServer server(driver.initial_model(), groups_.size());
  const double upload_time = gcfg.aircomp_upload_seconds;

  // A group's compute phase lasts until its slowest member reports READY;
  // starting at virtual time t, its aggregation event lands at
  // t + group_compute[j] + L_u. That is the deadline tag handed to the lane
  // scheduler with every training batch.
  std::vector<double> group_compute(groups_.size(), 0.0);
  for (std::size_t j = 0; j < groups_.size(); ++j)
    for (auto m : groups_[j]) group_compute[j] = std::max(group_compute[j], local_times[m]);

  sim::EventQueue queue;
  // Round 0: every worker holds w_0, trains, and reports READY (Alg. 1
  // lines 5-8). Training is submitted to the driver's lanes one group at a
  // time so each batch carries its own aggregation deadline; completion
  // time is virtual, and the models are collected at the group's
  // aggregation barrier below.
  for (std::size_t j = 0; j < groups_.size(); ++j)
    driver.begin_training(groups_[j], server.global_model(),
                          /*deadline=*/group_compute[j] + upload_time);
  for (std::size_t i = 0; i < driver.num_workers(); ++i)
    queue.schedule(local_times[i], kReady, i);

  double energy = 0.0;
  while (!queue.empty()) {
    const auto ev = queue.pop();
    if (ev.time > cfg.time_budget) break;

    if (ev.kind == kReady) {
      const std::size_t j = group_of[ev.actor];
      // Intra-group alignment (Alg. 1 lines 17-23): the EXECUTE message
      // goes out when the last member reports READY; the concurrent
      // transmission then occupies the channel for L_u seconds.
      if (server.ready(j, groups_[j].size())) queue.schedule(ev.time + upload_time, kAggregate, j);
      continue;
    }

    // kAggregate: over-the-air aggregation of group j (Alg. 1 lines 24-26).
    // Fixed-order barrier: collect the group's in-flight training jobs
    // before reading their local models; other groups keep training.
    const std::size_t j = ev.actor;
    driver.finish_training(groups_[j]);
    const auto tau = static_cast<double>(server.staleness(j));
    const std::size_t fading_round = server.round() + 1;
    auto w_new =
        driver.aircomp_aggregate(groups_[j], server.global_model(), fading_round, energy);

    if (opts_.staleness_damping > 0.0) {
      // Extension: shrink a stale group's contribution FedAsync-style,
      // w_t = w_{t-1} + (w_t^{air} - w_{t-1}) / (1 + tau)^a.
      const double damp = 1.0 / std::pow(1.0 + tau, opts_.staleness_damping);
      const auto w_prev = server.global_model();
      for (std::size_t d = 0; d < w_new.size(); ++d)
        w_new[d] = static_cast<float>(w_prev[d] + damp * (w_new[d] - w_prev[d]));
    }

    server.complete_round(j, std::move(w_new));
    driver.maybe_record(metrics, server.round(), ev.time, energy, tau, server.global_model());
    if (server.round() >= cfg.max_rounds || driver.should_stop(metrics)) break;

    // The group receives w_t and starts the next local round (Alg. 1
    // line 26 followed by lines 6-8), overlapping with every other group's
    // in-flight training and with later aggregations of other groups. The
    // batch is tagged with the group's next aggregation deadline.
    driver.begin_training(groups_[j], server.global_model(),
                          /*deadline=*/ev.time + group_compute[j] + upload_time);
    for (auto m : groups_[j]) queue.schedule(ev.time + local_times[m], kReady, m);
  }
  metrics.set_final_model(server.model_vector());
  metrics.set_engine_stats(driver.engine_stats());
  return metrics;
}

}  // namespace airfedga::fl
