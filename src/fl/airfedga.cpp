#include <algorithm>
#include <cmath>

#include "fl/mechanisms.hpp"

namespace airfedga::fl {

data::WorkerGroups AirFedGA::make_cohorts(SchedulingLoop& loop) {
  Driver& driver = loop.driver();
  const FLConfig& cfg = loop.config();

  core::GroupingConfig gcfg = cfg_.grouping;
  // Planning uses the substrate's t = 0 latency (static for the classic
  // models; time-varying substrates plan on the initial conditions).
  gcfg.aircomp_upload_seconds = driver.substrate().aircomp_upload_seconds(driver.model_dim(), 0.0);
  gcfg.energy_cap = cfg.energy_cap;
  gcfg.convergence.sigma0_sq = cfg.aircomp.sigma0_sq;
  if (cfg_.auto_calibrate_model_bound) {
    // Assumption 4's W^2 for planning: the initial model norm with 2x
    // headroom (norms drift slowly under small-step SGD).
    const double w_sq = ml::squared_norm(driver.initial_model());
    gcfg.convergence.model_bound_sq = std::max(1e-9, 2.0 * w_sq);
  }

  if (cfg_.groups_override) {
    groups_ = *cfg_.groups_override;
  } else {
    groups_ = core::airfedga_grouping(driver.stats(), loop.local_times(), gcfg).groups;
  }
  data::validate_groups(groups_, driver.num_workers());
  return groups_;
}

double AirFedGA::upload_seconds(const SchedulingLoop& loop,
                                const std::vector<std::size_t>& /*members*/,
                                double now) const {
  // One concurrent group transmission, L_u (Eq. 34).
  return loop.driver().substrate().aircomp_upload_seconds(loop.driver().model_dim(), now);
}

std::vector<float> AirFedGA::aggregate(SchedulingLoop& loop,
                                       const std::vector<std::size_t>& members,
                                       std::span<const float> w_prev, std::size_t round) {
  // Over-the-air aggregation of one group (Alg. 1 lines 24-26) with
  // per-round power control (Alg. 2); `round` is the fading index of the
  // round this commit will get.
  return loop.driver().aircomp_aggregate(members, w_prev, round, loop.energy_joules());
}

void AirFedGA::reweight(const SchedulingLoop& /*loop*/, std::span<const float> w_prev,
                        std::vector<float>& w_next, double tau) const {
  if (cfg_.staleness_damping <= 0.0) return;
  // Extension: shrink a stale group's contribution FedAsync-style,
  // w_t = w_{t-1} + (w_t^{air} - w_{t-1}) / (1 + tau)^a.
  const double damp = 1.0 / std::pow(1.0 + tau, cfg_.staleness_damping);
  for (std::size_t d = 0; d < w_next.size(); ++d)
    w_next[d] = static_cast<float>(w_prev[d] + damp * (w_next[d] - w_prev[d]));
}

}  // namespace airfedga::fl
