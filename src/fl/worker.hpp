#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "ml/model.hpp"
#include "util/rng.hpp"

namespace airfedga::fl {

/// One edge device. It references its data shard (indices into the shared
/// training set) and holds the latest *local* model w^i_t as a flat vector.
///
/// A worker does not own a Model instance: `local_update` borrows a scratch
/// model (weights are swapped in and out as flat vectors), leased per
/// training lane by the Driver's execution engine, which keeps memory at
/// one model per lane instead of one per worker. Likewise the data shard is
/// a non-owning view into the Driver's shared `data::ShardIndex` arena (the
/// span constructor; many workers may view one shard at population scale) —
/// the vector constructor keeps an owned copy for standalone use in tests.
class Worker {
 public:
  /// Non-owning shard view; `shard` must outlive the worker (the Driver's
  /// ShardIndex arena provides that lifetime).
  Worker(std::size_t id, const data::Dataset& train, std::span<const std::size_t> shard,
         util::Rng rng);

  /// Owning variant for standalone construction (copies `shard` into the
  /// worker and views the copy).
  Worker(std::size_t id, const data::Dataset& train, std::vector<std::size_t> shard,
         util::Rng rng);

  // Copying an owning worker would leave the copy's span aimed at the
  // source's buffer; moves are safe (the owned vector's heap buffer — and
  // thus the span target — transfers intact).
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;
  Worker(Worker&&) = default;
  Worker& operator=(Worker&&) = default;

  [[nodiscard]] std::size_t id() const { return id_; }
  [[nodiscard]] std::size_t data_size() const { return shard_.size(); }

  /// Local update rule (Eq. 4 generalized to `steps` mini-batch SGD steps):
  /// starting from the received global model, runs `steps` SGD steps with
  /// step size `lr` on mini-batches of `batch_size` samples drawn from the
  /// local shard (0 = the full shard, the paper's full-gradient setting).
  /// The result is stored as the worker's local model. Returns the mean
  /// training loss over the executed steps.
  double local_update(ml::Model& scratch, std::span<const float> global_model, float lr,
                      std::size_t steps, std::size_t batch_size);

  /// w^i_t, the latest local model (empty before the first update).
  [[nodiscard]] std::span<const float> local_model() const { return local_model_; }
  [[nodiscard]] bool has_model() const { return !local_model_.empty(); }

  /// Squared L2 norm of the local model (for the W_t bound of Assumption 4).
  [[nodiscard]] double model_norm_sq() const;

  [[nodiscard]] std::span<const std::size_t> shard() const { return shard_; }

  /// Rebinds this worker to a different device identity: id, shard view
  /// and RNG stream are replaced, the local model is cleared, and the
  /// batch buffers are kept (pool recycling at population scale reuses
  /// one Worker's allocations across many logical workers).
  void rebind(std::size_t id, std::span<const std::size_t> shard, util::Rng rng);

  /// Replays `draws` batch samplings without training, advancing the RNG
  /// engine exactly as `draws` SGD steps at this batch size would. Lazy
  /// rematerialization uses this to reconstruct the precise engine state a
  /// previously-released worker had, keeping lazy runs bit-identical to
  /// eager ones. No-op when sampling is degenerate (full-shard batches
  /// consume no randomness).
  void replay_rng(std::size_t draws, std::size_t batch_size);

 private:
  std::span<const std::size_t> sample_batch(std::size_t batch_size);

  std::size_t id_;
  const data::Dataset* train_;
  std::vector<std::size_t> owned_shard_;   ///< backing storage for the vector ctor only
  std::span<const std::size_t> shard_;     ///< the active shard view
  std::vector<float> local_model_;
  util::Rng rng_;

  // Reused per-step buffers: local training allocates nothing once these
  // reach the steady batch size.
  std::vector<std::size_t> pick_;   ///< sampled positions within the shard
  std::vector<std::size_t> batch_;  ///< sampled dataset indices
  ml::Tensor xb_;                   ///< gathered batch inputs
  std::vector<int> yb_;             ///< gathered batch labels
};

}  // namespace airfedga::fl
