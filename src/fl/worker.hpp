#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "ml/model.hpp"
#include "util/rng.hpp"

namespace airfedga::fl {

/// One edge device. It owns its data shard (indices into the shared
/// training set) and the latest *local* model w^i_t as a flat vector.
///
/// A worker does not own a Model instance: `local_update` borrows a scratch
/// model (weights are swapped in and out as flat vectors), leased per
/// training lane by the Driver's execution engine, which keeps memory at
/// one model per lane instead of one per worker.
class Worker {
 public:
  Worker(std::size_t id, const data::Dataset& train, std::vector<std::size_t> shard,
         util::Rng rng);

  [[nodiscard]] std::size_t id() const { return id_; }
  [[nodiscard]] std::size_t data_size() const { return shard_.size(); }

  /// Local update rule (Eq. 4 generalized to `steps` mini-batch SGD steps):
  /// starting from the received global model, runs `steps` SGD steps with
  /// step size `lr` on mini-batches of `batch_size` samples drawn from the
  /// local shard (0 = the full shard, the paper's full-gradient setting).
  /// The result is stored as the worker's local model. Returns the mean
  /// training loss over the executed steps.
  double local_update(ml::Model& scratch, std::span<const float> global_model, float lr,
                      std::size_t steps, std::size_t batch_size);

  /// w^i_t, the latest local model (empty before the first update).
  [[nodiscard]] std::span<const float> local_model() const { return local_model_; }
  [[nodiscard]] bool has_model() const { return !local_model_.empty(); }

  /// Squared L2 norm of the local model (for the W_t bound of Assumption 4).
  [[nodiscard]] double model_norm_sq() const;

  [[nodiscard]] const std::vector<std::size_t>& shard() const { return shard_; }

 private:
  std::span<const std::size_t> sample_batch(std::size_t batch_size);

  std::size_t id_;
  const data::Dataset* train_;
  std::vector<std::size_t> shard_;
  std::vector<float> local_model_;
  util::Rng rng_;

  // Reused per-step buffers: local training allocates nothing once these
  // reach the steady batch size.
  std::vector<std::size_t> pick_;   ///< sampled positions within the shard
  std::vector<std::size_t> batch_;  ///< sampled dataset indices
  ml::Tensor xb_;                   ///< gathered batch inputs
  std::vector<int> yb_;             ///< gathered batch labels
};

}  // namespace airfedga::fl
