#include "fl/loop.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace airfedga::fl {

namespace {
const char* trigger_slug(TriggerKind t) {
  switch (t) {
    case TriggerKind::kRoundBarrier: return "round_barrier";
    case TriggerKind::kCohortTimer: return "cohort_timer";
    case TriggerKind::kGroupReady: return "group_ready";
    case TriggerKind::kReadyBuffer: return "ready_buffer";
    default: return "unknown";
  }
}
}  // namespace

// ---------------------------------------------------------------- policy

Metrics Mechanism::run(const FLConfig& cfg) {
  check(cfg);  // knob validation precedes any run-state construction
  Driver driver(cfg);
  SchedulingLoop loop(driver, *this);
  return loop.run();
}

void Mechanism::check(const FLConfig&) const {}

std::vector<std::size_t> Mechanism::select(SchedulingLoop& loop, std::size_t cohort,
                                           std::size_t /*round*/) {
  return loop.cohorts().at(cohort);
}

double Mechanism::aggregate_time(const SchedulingLoop& loop, std::size_t /*cohort*/,
                                 const std::vector<std::size_t>& members, double start) const {
  double compute = 0.0;
  for (auto m : members) compute = std::max(compute, loop.local_times()[m]);
  return start + (compute + upload_seconds(loop, members, start));
}

bool Mechanism::should_flush(SchedulingLoop&, const std::vector<std::size_t>&) { return true; }

void Mechanism::reweight(const SchedulingLoop&, std::span<const float>, std::vector<float>&,
                         double) const {}

// ------------------------------------------------------------------ loop

SchedulingLoop::SchedulingLoop(Driver& driver, Mechanism& policy)
    : driver_(driver),
      policy_(policy),
      trigger_(policy.trigger()),
      queue_(driver.config().event_queue) {
  if (driver_.config().cohort_size != 0 &&
      (trigger_ == TriggerKind::kGroupReady || trigger_ == TriggerKind::kReadyBuffer))
    throw std::invalid_argument(policy_.name() +
                                ": cohort_size sampling requires a round-barrier or "
                                "timer-triggered mechanism");
  local_times_ = driver_.cluster().local_times();
  cohorts_ = policy_.make_cohorts(*this);
  if (cohorts_.empty()) throw std::logic_error(policy_.name() + ": make_cohorts returned none");
  if (trigger_ == TriggerKind::kRoundBarrier && cohorts_.size() != 1)
    throw std::logic_error(policy_.name() + ": a round barrier needs exactly one cohort");
  cohort_of_.assign(driver_.num_workers(), 0);
  for (std::size_t j = 0; j < cohorts_.size(); ++j)
    for (auto m : cohorts_[j]) cohort_of_[m] = j;
  server_.emplace(driver_.initial_model(), cohorts_.size());
  active_.resize(cohorts_.size());
  substrate_ = &driver_.substrate();
  realism_ = substrate_->time_varying();
  idle_.assign(cohorts_.size(), 0);
  dropouts_ = &driver_.registry().counter("substrate.dropouts");

  // Both histograms hold virtual-time quantities, so their contents are a
  // pure function of the scenario (threads/backends never change them).
  pending_hist_ = &driver_.registry().histogram(
      "eventq.pending", {0, 1, 2, 4, 8, 16, 32, 64, 128, 512, 2048, 8192, 32768});
  latency_hist_ = &driver_.registry().histogram(
      std::string("latency.") + trigger_slug(trigger_), {1, 2, 4, 8, 16, 32, 64, 128, 256});
}

std::vector<std::size_t> SchedulingLoop::filter_selectable(std::vector<std::size_t> candidates,
                                                           double time) const {
  if (!realism_) return candidates;
  std::vector<std::size_t> kept;
  kept.reserve(candidates.size());
  for (auto m : candidates)
    if (substrate_->selectable(m, time)) kept.push_back(m);
  return kept;
}

void SchedulingLoop::seed_queue() {
  // Availability traces drive themselves: each worker's next transition is
  // scheduled on pop, so the queue holds at most one substrate event per
  // worker. A static substrate has no transitions and schedules nothing.
  if (realism_) {
    for (std::size_t i = 0; i < driver_.num_workers(); ++i) {
      const double t = substrate_->next_transition(i, 0.0);
      if (t >= 0.0) queue_.schedule(t, kEvSubstrate, i);
    }
  }
  switch (trigger_) {
    case TriggerKind::kRoundBarrier:
      start_sync_cycle();
      break;
    case TriggerKind::kCohortTimer:
      for (std::size_t j = 0; j < cohorts_.size(); ++j) start_timer_cycle(j, 0.0);
      break;
    case TriggerKind::kGroupReady:
      // Round 0 submits training one cohort at a time (each batch carries
      // its own aggregation deadline) but schedules the READY events in
      // global worker order — the seed schedule of Alg. 1 lines 5-8.
      // Time-varying substrate: only workers selectable at t = 0 join the
      // first cycle; a cohort with nobody online waits for an availability
      // event instead.
      for (std::size_t j = 0; j < cohorts_.size(); ++j) {
        active_[j] = filter_selectable(cohorts_[j], 0.0);
        if (realism_ && active_[j].empty()) {
          idle_[j] = 1;
          continue;
        }
        driver_.begin_training(active_[j], server_->global_model(),
                               policy_.aggregate_time(*this, j, active_[j], 0.0));
      }
      for (std::size_t i = 0; i < driver_.num_workers(); ++i) {
        if (realism_ && !substrate_->selectable(i, 0.0)) continue;
        queue_.schedule(local_times_[i], kEvReady, i);
      }
      break;
    case TriggerKind::kReadyBuffer: {
      std::vector<std::size_t> everyone;
      for (const auto& cohort : cohorts_)
        everyone.insert(everyone.end(), cohort.begin(), cohort.end());
      start_buffer_cycle(everyone, 0.0);
      break;
    }
  }
}

Metrics SchedulingLoop::run() {
  const FLConfig& cfg = driver_.config();
  seed_queue();
  while (!queue_.empty()) {
    // Cooperative cancellation (execution-only): checked once per event so
    // a timeout watchdog or shutdown can stop a run at a clean boundary.
    if (cfg.cancel != nullptr && cfg.cancel->load(std::memory_order_relaxed))
      throw RunCancelled("run cancelled at virtual t=" + std::to_string(queue_.now()));
    // Budget stop via lookahead: the event past the budget is never
    // popped, so the virtual clock stops where every mechanism's original
    // loop stopped.
    if (queue_.peek_time() > cfg.time_budget) break;
    const auto ev = queue_.pop();
    pending_hist_->record(static_cast<double>(queue_.size()));
    if (ev.kind == kEvReady) {
      on_ready(ev);
    } else if (ev.kind == kEvSubstrate) {
      on_substrate(ev);
    } else if (!on_aggregate(ev)) {
      break;
    }
  }
  metrics_.set_final_model(server_->model_vector());
  metrics_.set_engine_stats(driver_.engine_stats());
  metrics_.set_obs_snapshot(driver_.metrics_snapshot());
  return std::move(metrics_);
}

std::vector<std::size_t> SchedulingLoop::sample_cohort(std::vector<std::size_t> members,
                                                       std::size_t round,
                                                       std::size_t cohort) const {
  const std::size_t k = driver_.config().cohort_size;
  if (k == 0 || members.size() <= k) return members;
  // One self-contained stream per (round, cohort): reproducible from the
  // config alone, uncorrelated with the weight/substrate streams.
  util::Rng rng(util::splitmix64(driver_.config().seed ^
                                 (0xC04052ULL + round * 0x9E3779B1ULL + cohort * 0x85EBCA77ULL)));
  auto pos = rng.sample_without_replacement(members.size(), k);
  std::sort(pos.begin(), pos.end());  // keep members in selection order
  std::vector<std::size_t> picked;
  picked.reserve(k);
  for (auto p : pos) picked.push_back(members[p]);
  return picked;
}

void SchedulingLoop::start_sync_cycle() {
  const FLConfig& cfg = driver_.config();
  while (cycle_ < cfg.max_rounds) {
    ++cycle_;
    auto members = sample_cohort(policy_.select(*this, 0, cycle_), cycle_, 0);
    if (members.empty()) continue;  // selection skip: next round, no time passes
    if (realism_) {
      members = filter_selectable(std::move(members), queue_.now());
      if (members.empty()) {
        // Nobody online: retry this same round once availability returns.
        --cycle_;
        idle_[0] = 1;
        return;
      }
    }
    const double t_agg = policy_.aggregate_time(*this, 0, members, queue_.now());
    if (t_agg > cfg.time_budget) return;  // round would overrun: end of run
    latency_hist_->record(t_agg - queue_.now());
    active_[0] = std::move(members);
    driver_.begin_training(active_[0], server_->global_model(), t_agg);
    queue_.schedule(t_agg, kEvAggregate, 0);
    return;
  }
}

void SchedulingLoop::start_timer_cycle(std::size_t cohort, double start) {
  auto members =
      sample_cohort(policy_.select(*this, cohort, server_->round() + 1), server_->round() + 1,
                    cohort);
  if (members.empty()) return;  // cohort retires: no further events for it
  if (realism_) {
    members = filter_selectable(std::move(members), start);
    if (members.empty()) {  // cohort waits for an availability event
      idle_[cohort] = 1;
      return;
    }
  }
  const double t_agg = policy_.aggregate_time(*this, cohort, members, start);
  latency_hist_->record(t_agg - start);
  active_[cohort] = std::move(members);
  driver_.begin_training(active_[cohort], server_->global_model(), t_agg);
  queue_.schedule(t_agg, kEvAggregate, cohort);
}

void SchedulingLoop::start_ready_cycle(std::size_t cohort, double start) {
  active_[cohort] = filter_selectable(cohorts_[cohort], start);
  if (realism_ && active_[cohort].empty()) {  // wait for an availability event
    idle_[cohort] = 1;
    return;
  }
  const double t_agg = policy_.aggregate_time(*this, cohort, active_[cohort], start);
  latency_hist_->record(t_agg - start);
  driver_.begin_training(active_[cohort], server_->global_model(), t_agg);
  for (auto m : active_[cohort]) queue_.schedule(start + local_times_[m], kEvReady, m);
}

void SchedulingLoop::start_buffer_cycle(const std::vector<std::size_t>& members, double start) {
  for (auto m : members) {
    if (realism_ && !substrate_->selectable(m, start)) {
      // The worker sits out until its availability event restarts it
      // (buffer cohorts are singletons, so the idle slot is the worker's).
      idle_[cohort_of_[m]] = 1;
      continue;
    }
    const std::vector<std::size_t> solo{m};
    const double t_ready = start + local_times_[m];
    // The flush time is unknowable here (it depends on the rest of the
    // buffer), so the deadline tag is the earliest it could be: the
    // worker's own READY plus one upload.
    const double deadline = t_ready + policy_.upload_seconds(*this, solo, t_ready);
    latency_hist_->record(deadline - start);
    driver_.begin_training(solo, server_->global_model(), deadline);
    queue_.schedule(t_ready, kEvReady, m);
  }
}

void SchedulingLoop::on_ready(const sim::Event& ev) {
  if (trigger_ == TriggerKind::kGroupReady) {
    const std::size_t j = cohort_of_[ev.actor];
    // Intra-group alignment: EXECUTE goes out when the last member
    // reports READY; the concurrent transmission then takes one upload.
    // (active_[j] == cohorts_[j] on a static substrate; under churn it is
    // the subset that joined this cycle.)
    if (server_->ready(j, active_[j].size()))
      queue_.schedule(ev.time + policy_.upload_seconds(*this, active_[j], ev.time),
                      kEvAggregate, j);
    return;
  }
  // kReadyBuffer: queue the upload and let the policy decide whether the
  // buffer ships as one aggregation now.
  buffer_.push_back(ev.actor);
  if (policy_.should_flush(*this, buffer_)) {
    const double t_agg = ev.time + policy_.upload_seconds(*this, buffer_, ev.time);
    flights_.push_back(std::move(buffer_));
    buffer_.clear();
    queue_.schedule(t_agg, kEvAggregate, flights_.size() - 1);
  }
}

bool SchedulingLoop::on_aggregate(const sim::Event& ev) {
  obs::Span span("loop", "loop.aggregate");
  const FLConfig& cfg = driver_.config();
  const bool buffered = trigger_ == TriggerKind::kReadyBuffer;
  const std::vector<std::size_t> members =
      buffered ? std::move(flights_[ev.actor]) : std::move(active_[ev.actor]);

  // Fixed-order barrier: collect the members' in-flight jobs before
  // reading their local models; every other cohort keeps training.
  driver_.finish_training(members);

  // Mid-round dropout (time-varying substrate): a member that went offline
  // between starting its cycle and this aggregation event contributes
  // nothing. Depletion is not re-checked here — the energy this very
  // aggregation costs is charged inside it and gates the *next* cycle.
  const std::vector<std::size_t>* agg = &members;
  std::vector<std::size_t> kept;
  if (realism_) {
    kept.reserve(members.size());
    for (auto m : members)
      if (substrate_->available(m, ev.time)) kept.push_back(m);
    dropouts_->add(members.size() - kept.size());
    agg = &kept;
    if (kept.empty()) {
      // Everyone dropped: abandon the aggregation (no commit, no record)
      // and restart the cycle — offline members idle until their
      // availability event.
      if (trigger_ == TriggerKind::kGroupReady) server_->reset_ready(ev.actor);
      driver_.release_workers(members);
      switch (trigger_) {
        case TriggerKind::kRoundBarrier:
          start_sync_cycle();
          break;
        case TriggerKind::kCohortTimer:
          start_timer_cycle(ev.actor, ev.time);
          break;
        case TriggerKind::kGroupReady:
          start_ready_cycle(ev.actor, ev.time);
          break;
        case TriggerKind::kReadyBuffer:
          start_buffer_cycle(members, ev.time);
          break;
      }
      return true;
    }
  }

  double tau = 0.0;
  if (buffered) {
    std::size_t worst = 0;
    for (auto m : *agg) worst = std::max(worst, server_->staleness(cohort_of_[m]));
    tau = static_cast<double>(worst);
  } else if (trigger_ != TriggerKind::kRoundBarrier) {
    tau = static_cast<double>(server_->staleness(ev.actor));
  }

  // Synchronous mechanisms index fading and records by the round-barrier
  // counter (selection skips advance it without an aggregation);
  // asynchronous ones by the round this commit will get.
  const std::size_t round =
      trigger_ == TriggerKind::kRoundBarrier ? cycle_ : server_->round() + 1;

  auto w_next = policy_.aggregate(*this, *agg, server_->global_model(), round);
  policy_.reweight(*this, server_->global_model(), w_next, tau);

  if (buffered) {
    std::vector<std::size_t> groups;
    groups.reserve(agg->size());
    for (auto m : *agg) groups.push_back(cohort_of_[m]);
    server_->complete_round(groups, std::move(w_next));
  } else {
    server_->complete_round(ev.actor, std::move(w_next));
  }

  driver_.maybe_record(metrics_, round, ev.time, energy_, tau, server_->global_model());
  // The members' local models are consumed; hand their pool slots back for
  // recycling (no-op for eager worker state). Restart paths below may
  // re-lease the same workers warm.
  driver_.release_workers(members);
  if (server_->round() >= cfg.max_rounds || driver_.should_stop(metrics_)) return false;

  // The cohort(s) just received w_t; their next local cycle starts now and
  // overlaps with everyone else's in-flight training.
  switch (trigger_) {
    case TriggerKind::kRoundBarrier:
      start_sync_cycle();
      break;
    case TriggerKind::kCohortTimer:
      start_timer_cycle(ev.actor, ev.time);
      break;
    case TriggerKind::kGroupReady:
      start_ready_cycle(ev.actor, ev.time);
      break;
    case TriggerKind::kReadyBuffer:
      start_buffer_cycle(members, ev.time);
      break;
  }
  return true;
}

void SchedulingLoop::on_substrate(const sim::Event& ev) {
  // Self-perpetuating trace: schedule this worker's next toggle, so the
  // queue carries at most one substrate event per worker at a time.
  const double next = substrate_->next_transition(ev.actor, ev.time);
  if (next >= 0.0) queue_.schedule(next, kEvSubstrate, ev.actor);
  if (!substrate_->selectable(ev.actor, ev.time)) return;
  // The worker just came online; wake its cohort if it was stranded with
  // no selectable member at its last cycle start.
  const std::size_t j =
      trigger_ == TriggerKind::kRoundBarrier ? 0 : cohort_of_[ev.actor];
  if (!idle_[j]) return;
  idle_[j] = 0;
  switch (trigger_) {
    case TriggerKind::kRoundBarrier:
      start_sync_cycle();
      break;
    case TriggerKind::kCohortTimer:
      start_timer_cycle(j, ev.time);
      break;
    case TriggerKind::kGroupReady:
      start_ready_cycle(j, ev.time);
      break;
    case TriggerKind::kReadyBuffer:
      start_buffer_cycle({ev.actor}, ev.time);
      break;
  }
}

}  // namespace airfedga::fl
