#include "fl/loop.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace airfedga::fl {

namespace {
const char* trigger_slug(TriggerKind t) {
  switch (t) {
    case TriggerKind::kRoundBarrier: return "round_barrier";
    case TriggerKind::kCohortTimer: return "cohort_timer";
    case TriggerKind::kGroupReady: return "group_ready";
    case TriggerKind::kReadyBuffer: return "ready_buffer";
    default: return "unknown";
  }
}
}  // namespace

// ---------------------------------------------------------------- policy

Metrics Mechanism::run(const FLConfig& cfg) {
  check(cfg);  // knob validation precedes any run-state construction
  Driver driver(cfg);
  SchedulingLoop loop(driver, *this);
  return loop.run();
}

void Mechanism::check(const FLConfig&) const {}

std::vector<std::size_t> Mechanism::select(SchedulingLoop& loop, std::size_t cohort,
                                           std::size_t /*round*/) {
  return loop.cohorts().at(cohort);
}

double Mechanism::aggregate_time(const SchedulingLoop& loop, std::size_t /*cohort*/,
                                 const std::vector<std::size_t>& members, double start) const {
  double compute = 0.0;
  for (auto m : members) compute = std::max(compute, loop.local_times()[m]);
  return start + (compute + upload_seconds(loop, members));
}

bool Mechanism::should_flush(SchedulingLoop&, const std::vector<std::size_t>&) { return true; }

void Mechanism::reweight(const SchedulingLoop&, std::span<const float>, std::vector<float>&,
                         double) const {}

// ------------------------------------------------------------------ loop

SchedulingLoop::SchedulingLoop(Driver& driver, Mechanism& policy)
    : driver_(driver),
      policy_(policy),
      trigger_(policy.trigger()),
      queue_(driver.config().event_queue) {
  if (driver_.config().cohort_size != 0 &&
      (trigger_ == TriggerKind::kGroupReady || trigger_ == TriggerKind::kReadyBuffer))
    throw std::invalid_argument(policy_.name() +
                                ": cohort_size sampling requires a round-barrier or "
                                "timer-triggered mechanism");
  local_times_ = driver_.cluster().local_times();
  cohorts_ = policy_.make_cohorts(*this);
  if (cohorts_.empty()) throw std::logic_error(policy_.name() + ": make_cohorts returned none");
  if (trigger_ == TriggerKind::kRoundBarrier && cohorts_.size() != 1)
    throw std::logic_error(policy_.name() + ": a round barrier needs exactly one cohort");
  cohort_of_.assign(driver_.num_workers(), 0);
  for (std::size_t j = 0; j < cohorts_.size(); ++j)
    for (auto m : cohorts_[j]) cohort_of_[m] = j;
  server_.emplace(driver_.initial_model(), cohorts_.size());
  active_.resize(cohorts_.size());

  // Both histograms hold virtual-time quantities, so their contents are a
  // pure function of the scenario (threads/backends never change them).
  pending_hist_ = &driver_.registry().histogram(
      "eventq.pending", {0, 1, 2, 4, 8, 16, 32, 64, 128, 512, 2048, 8192, 32768});
  latency_hist_ = &driver_.registry().histogram(
      std::string("latency.") + trigger_slug(trigger_), {1, 2, 4, 8, 16, 32, 64, 128, 256});
}

void SchedulingLoop::seed_queue() {
  switch (trigger_) {
    case TriggerKind::kRoundBarrier:
      start_sync_cycle();
      break;
    case TriggerKind::kCohortTimer:
      for (std::size_t j = 0; j < cohorts_.size(); ++j) start_timer_cycle(j, 0.0);
      break;
    case TriggerKind::kGroupReady:
      // Round 0 submits training one cohort at a time (each batch carries
      // its own aggregation deadline) but schedules the READY events in
      // global worker order — the seed schedule of Alg. 1 lines 5-8.
      for (std::size_t j = 0; j < cohorts_.size(); ++j) {
        active_[j] = cohorts_[j];
        driver_.begin_training(cohorts_[j], server_->global_model(),
                               policy_.aggregate_time(*this, j, cohorts_[j], 0.0));
      }
      for (std::size_t i = 0; i < driver_.num_workers(); ++i)
        queue_.schedule(local_times_[i], kEvReady, i);
      break;
    case TriggerKind::kReadyBuffer: {
      std::vector<std::size_t> everyone;
      for (const auto& cohort : cohorts_)
        everyone.insert(everyone.end(), cohort.begin(), cohort.end());
      start_buffer_cycle(everyone, 0.0);
      break;
    }
  }
}

Metrics SchedulingLoop::run() {
  const FLConfig& cfg = driver_.config();
  seed_queue();
  while (!queue_.empty()) {
    // Budget stop via lookahead: the event past the budget is never
    // popped, so the virtual clock stops where every mechanism's original
    // loop stopped.
    if (queue_.peek_time() > cfg.time_budget) break;
    const auto ev = queue_.pop();
    pending_hist_->record(static_cast<double>(queue_.size()));
    if (ev.kind == kEvReady) {
      on_ready(ev);
    } else if (!on_aggregate(ev)) {
      break;
    }
  }
  metrics_.set_final_model(server_->model_vector());
  metrics_.set_engine_stats(driver_.engine_stats());
  metrics_.set_obs_snapshot(driver_.metrics_snapshot());
  return std::move(metrics_);
}

std::vector<std::size_t> SchedulingLoop::sample_cohort(std::vector<std::size_t> members,
                                                       std::size_t round,
                                                       std::size_t cohort) const {
  const std::size_t k = driver_.config().cohort_size;
  if (k == 0 || members.size() <= k) return members;
  // One self-contained stream per (round, cohort): reproducible from the
  // config alone, uncorrelated with the weight/substrate streams.
  util::Rng rng(util::splitmix64(driver_.config().seed ^
                                 (0xC04052ULL + round * 0x9E3779B1ULL + cohort * 0x85EBCA77ULL)));
  auto pos = rng.sample_without_replacement(members.size(), k);
  std::sort(pos.begin(), pos.end());  // keep members in selection order
  std::vector<std::size_t> picked;
  picked.reserve(k);
  for (auto p : pos) picked.push_back(members[p]);
  return picked;
}

void SchedulingLoop::start_sync_cycle() {
  const FLConfig& cfg = driver_.config();
  while (cycle_ < cfg.max_rounds) {
    ++cycle_;
    auto members = sample_cohort(policy_.select(*this, 0, cycle_), cycle_, 0);
    if (members.empty()) continue;  // selection skip: next round, no time passes
    const double t_agg = policy_.aggregate_time(*this, 0, members, queue_.now());
    if (t_agg > cfg.time_budget) return;  // round would overrun: end of run
    latency_hist_->record(t_agg - queue_.now());
    active_[0] = std::move(members);
    driver_.begin_training(active_[0], server_->global_model(), t_agg);
    queue_.schedule(t_agg, kEvAggregate, 0);
    return;
  }
}

void SchedulingLoop::start_timer_cycle(std::size_t cohort, double start) {
  auto members =
      sample_cohort(policy_.select(*this, cohort, server_->round() + 1), server_->round() + 1,
                    cohort);
  if (members.empty()) return;  // cohort retires: no further events for it
  const double t_agg = policy_.aggregate_time(*this, cohort, members, start);
  latency_hist_->record(t_agg - start);
  active_[cohort] = std::move(members);
  driver_.begin_training(active_[cohort], server_->global_model(), t_agg);
  queue_.schedule(t_agg, kEvAggregate, cohort);
}

void SchedulingLoop::start_ready_cycle(std::size_t cohort, double start) {
  active_[cohort] = cohorts_[cohort];
  const double t_agg = policy_.aggregate_time(*this, cohort, cohorts_[cohort], start);
  latency_hist_->record(t_agg - start);
  driver_.begin_training(cohorts_[cohort], server_->global_model(), t_agg);
  for (auto m : cohorts_[cohort]) queue_.schedule(start + local_times_[m], kEvReady, m);
}

void SchedulingLoop::start_buffer_cycle(const std::vector<std::size_t>& members, double start) {
  for (auto m : members) {
    const std::vector<std::size_t> solo{m};
    const double t_ready = start + local_times_[m];
    // The flush time is unknowable here (it depends on the rest of the
    // buffer), so the deadline tag is the earliest it could be: the
    // worker's own READY plus one upload.
    const double deadline = t_ready + policy_.upload_seconds(*this, solo);
    latency_hist_->record(deadline - start);
    driver_.begin_training(solo, server_->global_model(), deadline);
    queue_.schedule(t_ready, kEvReady, m);
  }
}

void SchedulingLoop::on_ready(const sim::Event& ev) {
  if (trigger_ == TriggerKind::kGroupReady) {
    const std::size_t j = cohort_of_[ev.actor];
    // Intra-group alignment: EXECUTE goes out when the last member
    // reports READY; the concurrent transmission then takes one upload.
    if (server_->ready(j, cohorts_[j].size()))
      queue_.schedule(ev.time + policy_.upload_seconds(*this, cohorts_[j]), kEvAggregate, j);
    return;
  }
  // kReadyBuffer: queue the upload and let the policy decide whether the
  // buffer ships as one aggregation now.
  buffer_.push_back(ev.actor);
  if (policy_.should_flush(*this, buffer_)) {
    const double t_agg = ev.time + policy_.upload_seconds(*this, buffer_);
    flights_.push_back(std::move(buffer_));
    buffer_.clear();
    queue_.schedule(t_agg, kEvAggregate, flights_.size() - 1);
  }
}

bool SchedulingLoop::on_aggregate(const sim::Event& ev) {
  obs::Span span("loop", "loop.aggregate");
  const FLConfig& cfg = driver_.config();
  const bool buffered = trigger_ == TriggerKind::kReadyBuffer;
  const std::vector<std::size_t> members =
      buffered ? std::move(flights_[ev.actor]) : std::move(active_[ev.actor]);

  // Fixed-order barrier: collect the members' in-flight jobs before
  // reading their local models; every other cohort keeps training.
  driver_.finish_training(members);

  double tau = 0.0;
  if (buffered) {
    std::size_t worst = 0;
    for (auto m : members) worst = std::max(worst, server_->staleness(cohort_of_[m]));
    tau = static_cast<double>(worst);
  } else if (trigger_ != TriggerKind::kRoundBarrier) {
    tau = static_cast<double>(server_->staleness(ev.actor));
  }

  // Synchronous mechanisms index fading and records by the round-barrier
  // counter (selection skips advance it without an aggregation);
  // asynchronous ones by the round this commit will get.
  const std::size_t round =
      trigger_ == TriggerKind::kRoundBarrier ? cycle_ : server_->round() + 1;

  auto w_next = policy_.aggregate(*this, members, server_->global_model(), round);
  policy_.reweight(*this, server_->global_model(), w_next, tau);

  if (buffered) {
    std::vector<std::size_t> groups;
    groups.reserve(members.size());
    for (auto m : members) groups.push_back(cohort_of_[m]);
    server_->complete_round(groups, std::move(w_next));
  } else {
    server_->complete_round(ev.actor, std::move(w_next));
  }

  driver_.maybe_record(metrics_, round, ev.time, energy_, tau, server_->global_model());
  // The members' local models are consumed; hand their pool slots back for
  // recycling (no-op for eager worker state). Restart paths below may
  // re-lease the same workers warm.
  driver_.release_workers(members);
  if (server_->round() >= cfg.max_rounds || driver_.should_stop(metrics_)) return false;

  // The cohort(s) just received w_t; their next local cycle starts now and
  // overlaps with everyone else's in-flight training.
  switch (trigger_) {
    case TriggerKind::kRoundBarrier:
      start_sync_cycle();
      break;
    case TriggerKind::kCohortTimer:
      start_timer_cycle(ev.actor, ev.time);
      break;
    case TriggerKind::kGroupReady:
      start_ready_cycle(ev.actor, ev.time);
      break;
    case TriggerKind::kReadyBuffer:
      start_buffer_cycle(members, ev.time);
      break;
  }
  return true;
}

}  // namespace airfedga::fl
