#pragma once

#include <optional>

#include "core/grouping.hpp"
#include "fl/driver.hpp"

namespace airfedga::fl {

/// FedAvg [11]: synchronous, full participation, OMA uplink. Round time is
/// max_i l_i plus N serialized uploads — the baseline whose round duration
/// grows linearly with N (Fig. 10).
class FedAvg : public Mechanism {
 public:
  [[nodiscard]] std::string name() const override { return "FedAvg"; }
  Metrics run(const FLConfig& cfg) override;
};

/// Air-FedAvg [18]: synchronous, full participation, AirComp uplink with
/// optimal power control (Alg. 2 applied to the full worker set).
class AirFedAvg : public Mechanism {
 public:
  [[nodiscard]] std::string name() const override { return "Air-FedAvg"; }
  Metrics run(const FLConfig& cfg) override;
};

/// Dynamic [31]: synchronous AirComp with per-round subset scheduling.
/// Each round, the scheduler admits the workers whose current channel gain
/// is above the round's `selection_quantile` (energy-aware selection:
/// strong channels need less transmit power, Eq. 6); the rest stay idle.
/// Selection ignores data distribution, which is what makes its curves
/// jitter under label skew (§VI-B1).
class DynamicAirComp : public Mechanism {
 public:
  /// `selection_quantile` is the per-round gain cutoff: workers whose
  /// channel gain clears it participate in the round.
  explicit DynamicAirComp(double selection_quantile = 0.5)
      : selection_quantile_(selection_quantile) {}
  [[nodiscard]] std::string name() const override { return "Dynamic"; }
  Metrics run(const FLConfig& cfg) override;

 private:
  double selection_quantile_;
};

/// TiFL [26]: tier-based group-asynchronous FL over OMA. Tiers are built
/// from response times only (no data-distribution awareness); uploads
/// within a tier are serialized OMA transfers.
class TiFL : public Mechanism {
 public:
  /// `num_tiers` response-time tiers (clamped to the worker count).
  explicit TiFL(std::size_t num_tiers = 5) : num_tiers_(num_tiers) {}
  [[nodiscard]] std::string name() const override { return "TiFL"; }
  Metrics run(const FLConfig& cfg) override;

  /// Tiers chosen by the last `run` call.
  [[nodiscard]] const data::WorkerGroups& tiers() const { return tiers_; }

 private:
  std::size_t num_tiers_;
  data::WorkerGroups tiers_;
};

/// FedAsync [21] (related work, §II-A): fully asynchronous FL over OMA.
/// Every worker updates the global model the moment it finishes local
/// training, with the staleness-damped mixing weight
///   w_t = (1 - alpha_tau) w_{t-1} + alpha_tau w_i,
///   alpha_tau = mixing / (1 + tau)^damping.
/// This is the xi = 0 corner of Fig. 8: no over-the-air gain (one worker
/// per upload) and maximal staleness exposure.
class FedAsync : public Mechanism {
 public:
  /// `mixing` is the base mixing weight alpha, `damping` the staleness
  /// exponent of alpha_tau = mixing / (1 + tau)^damping.
  explicit FedAsync(double mixing = 0.6, double damping = 0.5)
      : mixing_(mixing), damping_(damping) {}
  [[nodiscard]] std::string name() const override { return "FedAsync"; }
  Metrics run(const FLConfig& cfg) override;

 private:
  double mixing_;
  double damping_;
};

/// Air-FedGA (Alg. 1): the paper's contribution. Workers are grouped by
/// Alg. 3; each group aggregates over the air (Eqs. 9-10) with per-round
/// power control (Alg. 2); groups update the global model asynchronously
/// with staleness tracked by the parameter server.
class AirFedGA : public Mechanism {
 public:
  /// Tuning knobs of a run; defaults reproduce the paper's Alg. 1.
  struct Options {
    core::GroupingConfig grouping;  ///< Alg. 3 grouping parameters
    /// Bypass Alg. 3 with a fixed grouping (ablations, Fig. 8 sweeps).
    std::optional<data::WorkerGroups> groups_override;
    /// Extension (off by default): damp a group's update by
    /// 1/(1+tau)^staleness_damping, FedAsync-style.
    double staleness_damping = 0.0;
    /// Calibrate the planning bound W^2 (Assumption 4) from the actual
    /// initial model norm instead of the generic default, so the grouping
    /// objective's aggregation-error term matches the deployed model.
    bool auto_calibrate_model_bound = true;
  };

  AirFedGA() = default;  ///< paper defaults (Alg. 1 with Alg. 3 grouping)
  /// Runs with explicit options (ablations, Fig. 8 sweeps).
  explicit AirFedGA(Options opts) : opts_(std::move(opts)) {}

  [[nodiscard]] std::string name() const override { return "Air-FedGA"; }
  Metrics run(const FLConfig& cfg) override;

  /// Grouping used by the last `run` call (Fig. 7 inspects this).
  [[nodiscard]] const data::WorkerGroups& groups() const { return groups_; }

 private:
  Options opts_;
  data::WorkerGroups groups_;
};

}  // namespace airfedga::fl
