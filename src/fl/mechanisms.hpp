#pragma once

#include <optional>
#include <string>

#include "core/grouping.hpp"
#include "fl/loop.hpp"

namespace airfedga::fl {

/// Uniform knob set for every mechanism. One struct (instead of
/// per-mechanism constructor signatures) keeps mechanism construction
/// table-driven: the scenario registry fills the fields it knows and every
/// mechanism reads only the knobs it owns. Defaults reproduce the paper's
/// §VI-A settings.
struct MechanismConfig {
  // Dynamic [31]
  /// Per-round channel-gain cutoff: workers whose gain clears this
  /// quantile participate in the round.
  double selection_quantile = 0.5;

  // TiFL [26]
  std::size_t tiers = 5;  ///< response-time tiers (clamped to the worker count)

  // FedAsync [21] and Semi-Async (Kou et al.) staleness weighting
  double mixing = 0.6;   ///< base mixing weight alpha
  double damping = 0.5;  ///< staleness exponent/rate of the damping schedule

  // Semi-Async aggregation trigger
  std::size_t aggregate_count = 4;   ///< flush the buffer at K uploads
  std::size_t staleness_bound = 4;   ///< ... or once a buffered upload is this stale
  /// Damping schedule sigma(tau): "poly" = mixing / (1 + tau)^damping,
  /// "exp" = mixing * exp(-damping * tau).
  std::string damping_schedule = "poly";

  // Air-FedGA (Alg. 1)
  core::GroupingConfig grouping;  ///< Alg. 3 grouping parameters
  /// Bypass Alg. 3 with a fixed grouping (ablations, Fig. 8 sweeps).
  std::optional<data::WorkerGroups> groups_override;
  /// Extension (off by default): damp a group's update by
  /// 1/(1+tau)^staleness_damping, FedAsync-style.
  double staleness_damping = 0.0;
  /// Calibrate the planning bound W^2 (Assumption 4) from the actual
  /// initial model norm instead of the generic default, so the grouping
  /// objective's aggregation-error term matches the deployed model.
  bool auto_calibrate_model_bound = true;
};

/// FedAvg [11]: synchronous, full participation, OMA uplink. Round time is
/// max_i l_i plus N serialized uploads — the baseline whose round duration
/// grows linearly with N (Fig. 10).
class FedAvg : public Mechanism {
 public:
  explicit FedAvg(const MechanismConfig& = {}) {}
  [[nodiscard]] std::string name() const override { return "FedAvg"; }

  data::WorkerGroups make_cohorts(SchedulingLoop& loop) override;
  [[nodiscard]] TriggerKind trigger() const override { return TriggerKind::kRoundBarrier; }
  [[nodiscard]] double upload_seconds(const SchedulingLoop& loop,
                                      const std::vector<std::size_t>& members,
                                      double now) const override;
  std::vector<float> aggregate(SchedulingLoop& loop, const std::vector<std::size_t>& members,
                               std::span<const float> w_prev, std::size_t round) override;
};

/// Air-FedAvg [18]: synchronous, full participation, AirComp uplink with
/// optimal power control (Alg. 2 applied to the full worker set).
class AirFedAvg : public Mechanism {
 public:
  explicit AirFedAvg(const MechanismConfig& = {}) {}
  [[nodiscard]] std::string name() const override { return "Air-FedAvg"; }

  data::WorkerGroups make_cohorts(SchedulingLoop& loop) override;
  [[nodiscard]] TriggerKind trigger() const override { return TriggerKind::kRoundBarrier; }
  [[nodiscard]] double upload_seconds(const SchedulingLoop& loop,
                                      const std::vector<std::size_t>& members,
                                      double now) const override;
  std::vector<float> aggregate(SchedulingLoop& loop, const std::vector<std::size_t>& members,
                               std::span<const float> w_prev, std::size_t round) override;
};

/// Dynamic [31]: synchronous AirComp with per-round subset scheduling.
/// Each round, the scheduler admits the workers whose current channel gain
/// is above the round's `selection_quantile` (energy-aware selection:
/// strong channels need less transmit power, Eq. 6); the rest stay idle.
/// Selection ignores data distribution, which is what makes its curves
/// jitter under label skew (§VI-B1).
class DynamicAirComp : public Mechanism {
 public:
  explicit DynamicAirComp(const MechanismConfig& mc = {})
      : selection_quantile_(mc.selection_quantile) {}
  [[nodiscard]] std::string name() const override { return "Dynamic"; }

  void check(const FLConfig& cfg) const override;
  data::WorkerGroups make_cohorts(SchedulingLoop& loop) override;
  std::vector<std::size_t> select(SchedulingLoop& loop, std::size_t cohort,
                                  std::size_t round) override;
  [[nodiscard]] TriggerKind trigger() const override { return TriggerKind::kRoundBarrier; }
  [[nodiscard]] double upload_seconds(const SchedulingLoop& loop,
                                      const std::vector<std::size_t>& members,
                                      double now) const override;
  std::vector<float> aggregate(SchedulingLoop& loop, const std::vector<std::size_t>& members,
                               std::span<const float> w_prev, std::size_t round) override;

 private:
  double selection_quantile_;
};

/// TiFL [26]: tier-based group-asynchronous FL over OMA. Tiers are built
/// from response times only (no data-distribution awareness); uploads
/// within a tier are serialized OMA transfers.
class TiFL : public Mechanism {
 public:
  explicit TiFL(const MechanismConfig& mc = {}) : num_tiers_(mc.tiers) {}
  [[nodiscard]] std::string name() const override { return "TiFL"; }

  data::WorkerGroups make_cohorts(SchedulingLoop& loop) override;
  [[nodiscard]] TriggerKind trigger() const override { return TriggerKind::kCohortTimer; }
  [[nodiscard]] double upload_seconds(const SchedulingLoop& loop,
                                      const std::vector<std::size_t>& members,
                                      double now) const override;
  std::vector<float> aggregate(SchedulingLoop& loop, const std::vector<std::size_t>& members,
                               std::span<const float> w_prev, std::size_t round) override;

  /// Tiers chosen by the last `run` call.
  [[nodiscard]] const data::WorkerGroups& tiers() const { return tiers_; }

 private:
  std::size_t num_tiers_;
  data::WorkerGroups tiers_;
};

/// FedAsync [21] (related work, §II-A): fully asynchronous FL over OMA.
/// Every worker updates the global model the moment it finishes local
/// training, with the staleness-damped mixing weight
///   w_t = (1 - alpha_tau) w_{t-1} + alpha_tau w_i,
///   alpha_tau = mixing / (1 + tau)^damping.
/// This is the xi = 0 corner of Fig. 8: no over-the-air gain (one worker
/// per upload) and maximal staleness exposure.
class FedAsync : public Mechanism {
 public:
  explicit FedAsync(const MechanismConfig& mc = {}) : mixing_(mc.mixing), damping_(mc.damping) {}
  [[nodiscard]] std::string name() const override { return "FedAsync"; }

  void check(const FLConfig& cfg) const override;
  data::WorkerGroups make_cohorts(SchedulingLoop& loop) override;
  [[nodiscard]] TriggerKind trigger() const override { return TriggerKind::kCohortTimer; }
  [[nodiscard]] double upload_seconds(const SchedulingLoop& loop,
                                      const std::vector<std::size_t>& members,
                                      double now) const override;
  [[nodiscard]] double aggregate_time(const SchedulingLoop& loop, std::size_t cohort,
                                      const std::vector<std::size_t>& members,
                                      double start) const override;
  std::vector<float> aggregate(SchedulingLoop& loop, const std::vector<std::size_t>& members,
                               std::span<const float> w_prev, std::size_t round) override;
  void reweight(const SchedulingLoop& loop, std::span<const float> w_prev,
                std::vector<float>& w_next, double tau) const override;

 private:
  double mixing_;
  double damping_;
};

/// Air-FedGA (Alg. 1): the paper's contribution. Workers are grouped by
/// Alg. 3; each group aggregates over the air (Eqs. 9-10) with per-round
/// power control (Alg. 2); groups update the global model asynchronously
/// with staleness tracked by the parameter server.
class AirFedGA : public Mechanism {
 public:
  explicit AirFedGA(const MechanismConfig& mc = {}) : cfg_(mc) {}
  [[nodiscard]] std::string name() const override { return "Air-FedGA"; }

  data::WorkerGroups make_cohorts(SchedulingLoop& loop) override;
  [[nodiscard]] TriggerKind trigger() const override { return TriggerKind::kGroupReady; }
  [[nodiscard]] double upload_seconds(const SchedulingLoop& loop,
                                      const std::vector<std::size_t>& members,
                                      double now) const override;
  std::vector<float> aggregate(SchedulingLoop& loop, const std::vector<std::size_t>& members,
                               std::span<const float> w_prev, std::size_t round) override;
  void reweight(const SchedulingLoop& loop, std::span<const float> w_prev,
                std::vector<float>& w_next, double tau) const override;

  /// Grouping used by the last `run` call (Fig. 7 inspects this).
  [[nodiscard]] const data::WorkerGroups& groups() const { return groups_; }

 private:
  MechanismConfig cfg_;
  data::WorkerGroups groups_;
};

/// Semi-Async (Kou et al., PAPERS.md): staleness-bounded semi-asynchronous
/// AirComp FL. Finished workers report READY into a server-side buffer;
/// the buffer ships as one over-the-air aggregation once it holds
/// `aggregate_count` uploads or once any buffered upload reaches the
/// staleness bound (bounded waiting), and the committed update is damped
/// by the staleness schedule sigma(tau):
///   w_t = w_{t-1} + sigma(tau) (w_air - w_{t-1}).
/// Entirely policy hooks on the unified loop — no bespoke event handling.
class SemiAsync : public Mechanism {
 public:
  explicit SemiAsync(const MechanismConfig& mc = {})
      : mixing_(mc.mixing),
        damping_(mc.damping),
        aggregate_count_(mc.aggregate_count),
        staleness_bound_(mc.staleness_bound),
        exponential_(mc.damping_schedule == "exp"),
        schedule_(mc.damping_schedule) {}
  [[nodiscard]] std::string name() const override { return "Semi-Async"; }

  void check(const FLConfig& cfg) const override;
  data::WorkerGroups make_cohorts(SchedulingLoop& loop) override;
  [[nodiscard]] TriggerKind trigger() const override { return TriggerKind::kReadyBuffer; }
  [[nodiscard]] double upload_seconds(const SchedulingLoop& loop,
                                      const std::vector<std::size_t>& members,
                                      double now) const override;
  bool should_flush(SchedulingLoop& loop, const std::vector<std::size_t>& buffered) override;
  std::vector<float> aggregate(SchedulingLoop& loop, const std::vector<std::size_t>& members,
                               std::span<const float> w_prev, std::size_t round) override;
  void reweight(const SchedulingLoop& loop, std::span<const float> w_prev,
                std::vector<float>& w_next, double tau) const override;

 private:
  double mixing_;
  double damping_;
  std::size_t aggregate_count_;
  std::size_t staleness_bound_;
  bool exponential_;
  std::string schedule_;
};

}  // namespace airfedga::fl
