#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace airfedga::fl {

/// Parameter-server state of Alg. 1: the global model estimate w_t, the
/// global round counter t, the per-group READY counters r_j (intra-group
/// alignment, Alg. 1 lines 17-29), and the per-group record of which model
/// version each group last received (staleness bookkeeping, §III-B2).
class ParameterServer {
 public:
  ParameterServer(std::vector<float> initial_model, std::size_t num_groups);

  [[nodiscard]] std::span<const float> global_model() const { return model_; }
  [[nodiscard]] const std::vector<float>& model_vector() const { return model_; }

  /// Current completed round count t (0 before any aggregation).
  [[nodiscard]] std::size_t round() const { return round_; }

  /// Registers a READY message from a worker of `group` (Alg. 1 line 19).
  /// Returns true when the group is now complete (r_j == |V_j|), i.e. the
  /// server would send EXECUTE; the counter is reset in `complete_round`.
  bool ready(std::size_t group, std::size_t group_size);

  [[nodiscard]] std::size_t ready_count(std::size_t group) const { return ready_.at(group); }

  /// Clears `group`'s READY counter without committing a round: the
  /// scheduling loop abandons an aggregation whose members all dropped out
  /// mid-round (time-varying substrate) and restarts the cycle.
  void reset_ready(std::size_t group);

  /// The global round at which `group` last received the model (0 = w_0).
  [[nodiscard]] std::size_t base_version(std::size_t group) const { return base_.at(group); }

  /// Staleness tau of an aggregation performed *now* by `group`:
  /// tau_t = (t - 1) - base_version, with t = round() + 1 the index this
  /// aggregation will get. Matches the paper's Fig. 2 walkthrough.
  [[nodiscard]] std::size_t staleness(std::size_t group) const;

  /// Installs the aggregated model, increments t, resets r_j, and records
  /// that `group` now holds version t (Alg. 1 lines 21-26).
  void complete_round(std::size_t group, std::vector<float> new_model);

  /// Buffered commit (semi-async mechanisms): one aggregation folds the
  /// uploads of several groups into a single global round t. Every listed
  /// group's READY counter resets and its base version becomes t; the
  /// round counter still advances by exactly one.
  void complete_round(const std::vector<std::size_t>& groups, std::vector<float> new_model);

 private:
  std::vector<float> model_;
  std::vector<std::size_t> ready_;
  std::vector<std::size_t> base_;
  std::size_t round_ = 0;
};

}  // namespace airfedga::fl
