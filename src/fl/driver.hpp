#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "channel/aircomp.hpp"
#include "channel/fading.hpp"
#include "channel/latency.hpp"
#include "core/power_control.hpp"
#include "sim/substrate.hpp"
#include "data/data_stats.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "fl/metrics.hpp"
#include "fl/worker.hpp"
#include "ml/model.hpp"
#include "obs/metrics.hpp"
#include "sim/cluster.hpp"
#include "sim/event_queue.hpp"
#include "util/thread_pool.hpp"

/// \namespace airfedga
/// Root namespace of the Air-FedGA reproduction library.

/// \namespace airfedga::fl
/// Federated-learning layer: the execution-engine driver, workers, the
/// parameter server, run metrics, and the paper's mechanisms (Table I).

namespace airfedga::fl {

/// Everything a federated training run needs (paper §VI-A system setup).
/// The same config drives all five mechanisms so comparisons differ only
/// in the mechanism itself.
struct FLConfig {
  // Problem
  const data::Dataset* train = nullptr;  ///< shared training set (not owned)
  const data::Dataset* test = nullptr;   ///< held-out evaluation set (not owned)
  data::Partition partition;             ///< per-worker sample indices
  ml::ModelFactory model_factory;        ///< builds the (shared) architecture

  // Local training (Eq. 4)
  float learning_rate = 0.05f;      ///< SGD step size
  std::size_t local_steps = 1;      ///< SGD steps per local round
  std::size_t batch_size = 32;      ///< 0 = full local shard (paper's setting)

  // Population scale-out
  /// Worker population size. 0 keeps the legacy one-worker-per-shard
  /// layout (population = partition.size()); a value > partition.size()
  /// maps worker i onto data shard i % partition.size(), so millions of
  /// workers share a bounded set of shard views. Must be 0 or >=
  /// partition.size().
  std::size_t population = 0;

  /// Lazy worker state: model replicas and batch buffers are materialized
  /// only while a worker is selected into a cohort, drawn from a pool
  /// sized by the lane budget; unselected workers are compact descriptors
  /// (pending slot, RNG replay counter, shard handle). Selection and
  /// results are bit-identical to the eager layout — a rematerialized
  /// worker replays its private RNG stream to the exact engine state it
  /// would have had. Required shape for populations of 10^5 and beyond.
  bool lazy_workers = false;

  /// Per-round cohort size for round-barrier and timer mechanisms: each
  /// cycle trains a deterministic random subset of this size instead of
  /// every selected member (0 = train all, the paper's setting). Group-
  /// and buffer-triggered mechanisms reject a nonzero value — their
  /// membership semantics are the mechanism, not a sampling choice.
  std::size_t cohort_size = 0;

  /// Storage backend of the simulation event queue. Pop order is
  /// identical for both; the calendar queue is the faster choice at >=
  /// 10^5 pending events (see bench/micro_eventq.cpp).
  sim::QueueBackend event_queue = sim::QueueBackend::kBinaryHeap;

  // Heterogeneity and wireless substrate (§VI-A2)
  sim::ClusterModel::Config cluster;       ///< compute heterogeneity (kappa draw)
  channel::LatencyConfig latency;          ///< OMA/AirComp upload latency model
  channel::FadingChannel::Config fading;   ///< Rayleigh block-fading parameters
  channel::AirCompChannel::Config aircomp; ///< over-the-air aggregation parameters
  sim::SubstrateOptions substrate;  ///< time-varying realism generators (default static)
  double energy_cap = 10.0;         ///< \f$\hat{E}_i\f$ per worker per round (J)

  // Run control
  double time_budget = 5000.0;      ///< virtual seconds
  std::size_t max_rounds = 1000000; ///< global aggregation cap
  std::size_t eval_every = 10;      ///< evaluate every k global rounds
  std::size_t eval_samples = 1000;  ///< test subset size used for curves
  std::size_t eval_batch = 256;     ///< evaluation mini-batch (and eval shard) size
  double stop_at_accuracy = -1.0;   ///< early stop once smoothed acc >= this
  std::uint64_t seed = 42;          ///< root seed for every RNG stream of the run

  /// Concurrent local-training lanes for the execution engine: 0 = one lane
  /// per hardware thread, 1 = serial (the seed behaviour), k = exactly k
  /// lanes. Results are bit-identical for every value — each worker trains
  /// on its own RNG stream and a leased scratch model, and all aggregation
  /// reductions run in fixed member order on the simulation thread.
  std::size_t threads = 0;

  /// Cooperative GEMM: when fewer training jobs than lanes are runnable,
  /// idle lanes donate themselves to the active workers' large GEMMs
  /// (ThreadPool::cooperate via a scope the driver installs around local
  /// training). Tile-to-output mapping is fixed, so cooperation changes
  /// wall time only — results stay bit-identical for every lane count.
  bool cooperative_gemm = true;

  /// Turns on the observability layer for this run: trace spans/instants
  /// into the per-thread ring buffers (obs::enable(), process-wide and
  /// sticky) plus wall-time metric collection. Observability is read-only
  /// — digests are bit-identical with tracing on or off.
  bool trace = false;

  /// Optional cooperative cancellation token (execution-only, never part
  /// of a scenario spec or its config_hash): when non-null and set, the
  /// scheduling loop throws fl::RunCancelled at the next event boundary,
  /// unwinding the run cleanly — the Driver joins its lanes on the way
  /// out. The scenario farm's --variant-timeout watchdog and SIGINT
  /// draining set this from another thread.
  const std::atomic<bool>* cancel = nullptr;

  /// Throws std::invalid_argument on an unusable configuration.
  void validate() const;
};

/// Thrown by the scheduling loop when FLConfig::cancel trips. Callers that
/// requested the cancellation (timeout watchdogs, shutdown paths) catch
/// this type to tell an abandoned run from a genuine failure.
class RunCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Shared runtime for one mechanism run: workers, scratch models, channel
/// instances, the evaluation subset, and the common bookkeeping all five
/// mechanisms need. Mechanisms own a Driver for the duration of `run`.
///
/// Execution engine: the driver owns a private thread pool with
/// `training_lanes()` lanes. Mechanisms hand it batches of workers to train
/// — either as a blocking barrier (`train_workers`, synchronous rounds) or
/// split into `begin_training` / `finish_training` so independent groups
/// overlap local training between aggregations (Air-FedGA, TiFL, FedAsync).
/// The simulation (event queue, parameter server, aggregation, metrics)
/// stays on the calling thread; only `Worker::local_update` and evaluation
/// shards run on lanes.
///
/// Deadline-aware lane scheduling: each training batch carries the virtual
/// time of its group's next aggregation event. Pending jobs start in
/// ascending deadline order (earliest aggregation first), so when there are
/// more runnable groups than lanes, the lanes go to the group whose barrier
/// the simulation thread will hit next — shrinking barrier stalls instead
/// of handing lanes out FIFO. Scheduling order never changes results (see
/// FLConfig::threads).
class Driver {
 public:
  /// Validates `cfg` and builds the run state: workers with forked RNG
  /// streams, per-lane scratch models, channel instances, the evaluation
  /// subset, and the training-lane pool.
  explicit Driver(const FLConfig& cfg);

  /// Collects any jobs a mechanism left in flight (early stop), then joins
  /// the lane pool so no task outlives the state it references.
  ~Driver();

  /// The configuration this run was built from.
  [[nodiscard]] const FLConfig& config() const { return *cfg_; }

  /// Number of federated workers (FLConfig::population, defaulting to the
  /// partition size).
  [[nodiscard]] std::size_t num_workers() const { return population_; }

  /// Flat parameter count of the model architecture.
  [[nodiscard]] std::size_t model_dim() const { return model_dim_; }

  /// Resolved lane count (cfg.threads with 0 mapped to the hardware).
  [[nodiscard]] std::size_t training_lanes() const { return lanes_; }

  /// Worker `i` (bounds-checked; simulation-thread access only). With
  /// lazy worker state, only materialized workers are addressable: the
  /// call throws std::logic_error for an unmaterialized id, which turns a
  /// would-be silent misuse (touching state that does not exist) into an
  /// immediate failure. Mechanisms only ever touch cohort members between
  /// training and release, which are materialized by construction.
  Worker& worker(std::size_t i);

  /// Const counterpart of worker(i), same materialization contract.
  [[nodiscard]] const Worker& worker(std::size_t i) const;

  /// True when FLConfig::lazy_workers is on for this run.
  [[nodiscard]] bool lazy_workers() const { return lazy_; }

  /// Materialized Worker instances currently allocated (lazy mode: pool
  /// slots, bounded by the pool target unless a single cohort exceeds it;
  /// eager mode: the whole population).
  [[nodiscard]] std::size_t worker_pool_size() const;

  /// Slot count the lazy pool recycles down to (max of twice the lane
  /// budget, twice the configured cohort size, and a small floor).
  [[nodiscard]] std::size_t worker_pool_target() const { return pool_target_; }

  /// True when worker `i` currently has materialized state (always true
  /// in eager mode).
  [[nodiscard]] bool worker_materialized(std::size_t i) const;

  /// Returns cohort members' pool slots to the recycle list after an
  /// aggregation consumed their local models (no-op in eager mode).
  /// Released state stays bound — re-selecting the same worker before its
  /// slot is recycled reuses it warm, with no RNG replay.
  void release_workers(const std::vector<std::size_t>& members);

  /// The evaluation scratch model (simulation-thread access only).
  ml::Model& scratch() { return scratch_; }

  /// The over-the-air aggregation channel of this run.
  channel::AirCompChannel& aircomp() { return aircomp_; }

  /// Label-distribution statistics of the partition (EMD inputs).
  [[nodiscard]] const data::DataStats& stats() const { return stats_; }

  /// Per-worker compute-heterogeneity model (local training times).
  [[nodiscard]] const sim::ClusterModel& cluster() const { return cluster_; }

  /// The run's physical substrate: per-worker channel gains, upload
  /// latency, availability, and remaining energy, queried at virtual-time
  /// points (the static generator reproduces the classic frozen models).
  [[nodiscard]] sim::Substrate& substrate() { return *substrate_; }

  /// Const counterpart of substrate() (read-only queries).
  [[nodiscard]] const sim::Substrate& substrate() const { return *substrate_; }

  /// Deadline value for untagged batches: they run after every tagged one.
  static constexpr double kNoDeadline = util::ThreadPool::kNoDeadline;

  /// Starts local training (Eq. 4) for every worker in `members` from a
  /// snapshot of `global`, one pool task per worker. Returns immediately;
  /// the models become visible only after `finish_training`. A worker may
  /// not be enqueued again before its previous job was collected.
  ///
  /// `deadline` is the virtual time of the batch's next aggregation event
  /// (sync mechanisms: the round barrier; async mechanisms: the group's
  /// upload-complete event). Pending jobs start earliest-deadline-first;
  /// kNoDeadline restores FIFO order among untagged batches.
  void begin_training(const std::vector<std::size_t>& members, std::span<const float> global,
                      double deadline = kNoDeadline);

  /// Blocks until every in-flight job for `members` completed, collecting
  /// futures in member order (fixed-order barrier). Rethrows task errors.
  /// Wall time spent blocked here is accumulated into engine_stats().
  void finish_training(const std::vector<std::size_t>& members);

  /// Barrier convenience: begin + finish (synchronous-round mechanisms).
  void train_workers(const std::vector<std::size_t>& members, std::span<const float> global,
                     double deadline = kNoDeadline);

  /// Deterministic initial global model (same seed => same start for every
  /// mechanism, so curves are comparable).
  [[nodiscard]] std::vector<float> initial_model();

  /// Test loss/accuracy of a flat parameter vector on the eval subset.
  ///
  /// With more than one lane and more than one eval batch, the batches are
  /// sharded across lanes (the simulation thread itself works through the
  /// shard list, so progress never waits on lanes busy with training) and
  /// the per-batch partial sums are reduced in fixed batch order. Shard
  /// boundaries are the serial loop's batch boundaries and never depend on
  /// the lane count, so the result is bit-identical to the serial path for
  /// every FLConfig::threads.
  ml::EvalResult evaluate(std::span<const float> model);

  /// Wall-clock engine instrumentation accumulated so far (barrier stalls,
  /// evaluation time, cooperative-GEMM activity merged from the lane
  /// pool's counters). Mechanisms copy this into their Metrics on return.
  [[nodiscard]] EngineStats engine_stats() const;

  /// This run's metric registry (counters/histograms the scheduling loop
  /// and mechanisms record into). One per Driver so snapshots attribute to
  /// a single mechanism execution.
  [[nodiscard]] obs::Registry& registry() { return registry_; }

  /// Folds the lane pool's counters into the registry and returns a
  /// point-in-time copy of every metric — what the scheduling loop attaches
  /// to its Metrics at the end of a run.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot();

  /// Per-round power control (Alg. 2) for a group about to aggregate:
  /// gathers this round's gains and member model-norm bound W_t, and
  /// returns (sigma*, eta*, C).
  core::PowerControlResult power_for_group(const std::vector<std::size_t>& members,
                                           std::size_t round);

  /// Runs Eq. (9)-(10) over the air for `members` and returns the new
  /// global model; accumulates per-round energy into `energy_joules`.
  std::vector<float> aircomp_aggregate(const std::vector<std::size_t>& members,
                                       std::span<const float> w_prev, std::size_t round,
                                       double& energy_joules);

  /// Error-free OMA aggregation (Eq. 8) over `members`. Charges each
  /// member the substrate's flat per-upload OMA energy (0 when the energy
  /// generator is off).
  std::vector<float> oma_aggregate(const std::vector<std::size_t>& members,
                                   std::span<const float> w_prev);

  /// Helper for the shared early-stop rule: true once the mean of the last
  /// 3 evaluation accuracies reaches cfg.stop_at_accuracy (if enabled).
  [[nodiscard]] bool should_stop(const Metrics& metrics) const;

  /// Evaluates and records a metric point if `round` falls on the eval
  /// cadence (every cfg.eval_every rounds, plus round 1).
  void maybe_record(Metrics& metrics, std::size_t round, double time, double energy,
                    double staleness, std::span<const float> model);

 private:
  class ScratchLease;

  std::unique_ptr<ml::Model> acquire_scratch();
  void release_scratch(std::unique_ptr<ml::Model> m);
  ml::EvalResult evaluate_sharded(std::span<const float> model, std::size_t n,
                                  std::size_t n_batches);
  Worker& lease_worker(std::size_t i);
  util::Rng worker_rng(std::size_t i) const;

  const FLConfig* cfg_;
  std::size_t population_ = 0;
  data::ShardIndex shards_;          ///< shared immutable views; workers hold spans
  std::vector<Worker> workers_;      ///< eager mode: the whole population
  ml::Model scratch_;                ///< evaluation scratch (simulation thread only)
  std::size_t model_dim_ = 0;
  data::DataStats stats_;
  sim::ClusterModel cluster_;
  std::unique_ptr<sim::Substrate> substrate_;
  channel::AirCompChannel aircomp_;
  ml::Tensor eval_xs_;
  std::vector<int> eval_ys_;

  // Lazy worker pool. Workers not currently selected exist only as
  // descriptors: a bound_[] slot reference (npos when cold), a completed-
  // update counter for RNG replay, and the shared shard views above.
  // unique_ptr slots keep leased Worker addresses stable while the pool
  // grows (async mechanisms hold leases across later cohort starts).
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  bool lazy_ = false;
  std::size_t pool_target_ = 0;
  std::vector<std::unique_ptr<Worker>> pool_slots_;
  std::vector<char> slot_leased_;        ///< [slot] worker is in an active cohort
  std::vector<std::size_t> slot_owner_;  ///< [slot] bound worker id
  std::vector<std::size_t> bound_;       ///< [worker] slot or kNoSlot
  std::vector<std::size_t> released_;    ///< FIFO of recyclable (bound, unleased) slots
  std::vector<std::size_t> cycles_;      ///< [worker] completed local updates (RNG replay)

  // Execution engine state. One pre-allocated scratch model per lane,
  // leased to training tasks; `pending_[i]` is worker i's in-flight job.
  std::size_t lanes_ = 1;
  std::mutex scratch_mutex_;
  std::vector<std::unique_ptr<ml::Model>> scratch_free_;
  std::vector<std::future<void>> pending_;
  EngineStats engine_stats_;
  obs::Registry registry_;
  obs::Counter* warm_hits_ = nullptr;     ///< cached &registry_["pool.warm_hits"]
  obs::Counter* cold_replays_ = nullptr;  ///< cached &registry_["pool.cold_replays"]
  obs::Histogram* energy_hist_ = nullptr; ///< "substrate.energy_j" (AirComp Eq. 7)
  obs::Histogram* csi_hist_ = nullptr;    ///< "substrate.csi_err" (h / h_hat factors)
  // Destroyed first (declared last): joining the pool drains outstanding
  // tasks before any state they reference goes away.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace airfedga::fl
