#include "fl/driver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace airfedga::fl {

void FLConfig::validate() const {
  if (train == nullptr || test == nullptr)
    throw std::invalid_argument("FLConfig: train/test datasets required");
  if (!model_factory) throw std::invalid_argument("FLConfig: model factory required");
  if (partition.empty()) throw std::invalid_argument("FLConfig: partition required");
  if (learning_rate <= 0.0f) throw std::invalid_argument("FLConfig: learning rate must be > 0");
  if (local_steps == 0) throw std::invalid_argument("FLConfig: local_steps must be >= 1");
  if (time_budget <= 0.0) throw std::invalid_argument("FLConfig: time budget must be > 0");
  if (eval_every == 0) throw std::invalid_argument("FLConfig: eval_every must be >= 1");
  if (energy_cap <= 0.0) throw std::invalid_argument("FLConfig: energy cap must be > 0");
}

Driver::Driver(const FLConfig& cfg)
    : cfg_(&cfg),
      scratch_(cfg.model_factory()),
      stats_(*cfg.train, cfg.partition),
      cluster_(cfg.partition.size(), cfg.cluster),
      fading_(cfg.partition.size(), cfg.fading),
      aircomp_([&] {
        auto c = cfg.aircomp;
        c.seed = util::splitmix64(cfg.seed ^ 0xA17C0);  // decorrelate from weights
        return c;
      }()),
      latency_(cfg.latency) {
  cfg.validate();
  model_dim_ = scratch_.num_parameters();

  util::Rng root(cfg.seed);
  workers_.reserve(cfg.partition.size());
  for (std::size_t i = 0; i < cfg.partition.size(); ++i)
    workers_.emplace_back(i, *cfg.train, cfg.partition[i], root.fork(1000 + i));

  // Fixed evaluation subset: the first eval_samples test points (the test
  // set is already shuffled at generation time).
  const std::size_t n_eval = std::min(cfg.eval_samples, cfg.test->size());
  if (n_eval == 0) throw std::invalid_argument("Driver: empty evaluation set");
  std::vector<std::size_t> idx(n_eval);
  for (std::size_t i = 0; i < n_eval; ++i) idx[i] = i;
  eval_xs_ = ml::gather_rows(cfg.test->xs, idx);
  eval_ys_.assign(cfg.test->ys.begin(), cfg.test->ys.begin() + static_cast<std::ptrdiff_t>(n_eval));
}

std::vector<float> Driver::initial_model() {
  util::Rng init_rng = util::Rng(cfg_->seed).fork(0x1717);
  ml::Model fresh = cfg_->model_factory();
  fresh.init(init_rng);
  return fresh.parameters();
}

ml::EvalResult Driver::evaluate(std::span<const float> model) {
  scratch_.set_parameters(model);
  return scratch_.evaluate(eval_xs_, eval_ys_, cfg_->eval_batch);
}

core::PowerControlResult Driver::power_for_group(const std::vector<std::size_t>& members,
                                                 std::size_t round) {
  if (members.empty()) throw std::invalid_argument("power_for_group: empty group");
  const auto gains = fading_.gains(round);
  core::PowerControlInput in;
  in.sigma0_sq = cfg_->aircomp.sigma0_sq;
  double w_sq = 0.0;
  double group_data = 0.0;
  for (auto m : members) {
    const Worker& w = workers_.at(m);
    if (!w.has_model())
      throw std::logic_error("power_for_group: member has no trained local model");
    w_sq = std::max(w_sq, w.model_norm_sq());
    group_data += static_cast<double>(w.data_size());
    in.gains.push_back(gains.at(m));
    in.data_sizes.push_back(static_cast<double>(w.data_size()));
    in.energy_caps.push_back(cfg_->energy_cap);
  }
  in.model_bound_sq = std::max(w_sq, 1e-12);
  in.group_data = group_data;
  return core::optimize_power(in);
}

std::vector<float> Driver::aircomp_aggregate(const std::vector<std::size_t>& members,
                                             std::span<const float> w_prev, std::size_t round,
                                             double& energy_joules) {
  const auto pc = power_for_group(members, round);
  const auto gains = fading_.gains(round);

  channel::AirCompChannel::Input in;
  in.w_prev = w_prev;
  in.sigma = pc.sigma;
  in.eta = pc.eta;
  in.total_data = static_cast<double>(stats_.total_size());
  for (auto m : members) {
    const Worker& w = workers_.at(m);
    in.local_models.push_back(w.local_model());
    in.data_sizes.push_back(static_cast<double>(w.data_size()));
    in.gains.push_back(gains.at(m));
  }
  auto out = aircomp_.aggregate(in);
  for (double e : out.energies) energy_joules += e;
  return std::move(out.w_next);
}

std::vector<float> Driver::oma_aggregate(const std::vector<std::size_t>& members,
                                         std::span<const float> w_prev) const {
  std::vector<std::span<const float>> models;
  std::vector<double> sizes;
  for (auto m : members) {
    const Worker& w = workers_.at(m);
    if (!w.has_model()) throw std::logic_error("oma_aggregate: member has no model");
    models.push_back(w.local_model());
    sizes.push_back(static_cast<double>(w.data_size()));
  }
  return channel::AirCompChannel::ideal_aggregate(w_prev, models, sizes,
                                                  static_cast<double>(stats_.total_size()));
}

void Driver::maybe_record(Metrics& metrics, std::size_t round, double time, double energy,
                          double staleness, std::span<const float> model) {
  if (round != 1 && round % cfg_->eval_every != 0) return;
  const auto ev = evaluate(model);
  metrics.record({time, round, ev.loss, ev.accuracy, energy, staleness});
}

bool Driver::should_stop(const Metrics& metrics) const {
  if (cfg_->stop_at_accuracy < 0.0) return false;
  const auto& pts = metrics.points();
  if (pts.size() < 3) return false;
  const double mean3 = (pts[pts.size() - 1].accuracy + pts[pts.size() - 2].accuracy +
                        pts[pts.size() - 3].accuracy) / 3.0;
  return mean3 >= cfg_->stop_at_accuracy;
}

}  // namespace airfedga::fl
