#include "fl/driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace airfedga::fl {

void FLConfig::validate() const {
  if (train == nullptr || test == nullptr)
    throw std::invalid_argument("FLConfig: train/test datasets required");
  if (!model_factory) throw std::invalid_argument("FLConfig: model factory required");
  if (partition.empty()) throw std::invalid_argument("FLConfig: partition required");
  if (learning_rate <= 0.0f) throw std::invalid_argument("FLConfig: learning rate must be > 0");
  if (local_steps == 0) throw std::invalid_argument("FLConfig: local_steps must be >= 1");
  if (time_budget <= 0.0) throw std::invalid_argument("FLConfig: time budget must be > 0");
  if (eval_every == 0) throw std::invalid_argument("FLConfig: eval_every must be >= 1");
  if (energy_cap <= 0.0) throw std::invalid_argument("FLConfig: energy cap must be > 0");
  if (population != 0 && population < partition.size())
    throw std::invalid_argument("FLConfig: population must be 0 or >= the shard count");
  substrate.validate();
}

namespace {
std::size_t resolve_lanes(std::size_t threads) {
  if (threads != 0) return threads;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}
}  // namespace

/// RAII scratch-model lease: acquires from the free list on construction
/// and returns the model on every exit path, so a lease can never leak a
/// lane's scratch model.
class Driver::ScratchLease {
 public:
  explicit ScratchLease(Driver& driver) : driver_(driver), model_(driver.acquire_scratch()) {}
  ~ScratchLease() { driver_.release_scratch(std::move(model_)); }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  ml::Model& model() { return *model_; }

 private:
  Driver& driver_;
  std::unique_ptr<ml::Model> model_;
};

Driver::Driver(const FLConfig& cfg)
    : cfg_(&cfg),
      population_(cfg.population == 0 ? cfg.partition.size() : cfg.population),
      shards_(cfg.partition),
      scratch_(cfg.model_factory()),
      stats_(*cfg.train, cfg.partition, population_),
      cluster_(population_, cfg.cluster),
      substrate_(sim::make_substrate(population_, cfg.fading, cfg.latency, cfg.substrate,
                                     cfg.seed)),
      aircomp_([&] {
        auto c = cfg.aircomp;
        c.seed = util::splitmix64(cfg.seed ^ 0xA17C0);  // decorrelate from weights
        return c;
      }()) {
  cfg.validate();
  if (cfg.trace) obs::enable();
  // The constructing thread runs the simulation (event loop, aggregation);
  // label its trace track. TLS-only, so it is free on untraced runs.
  obs::name_this_thread("sim");
  warm_hits_ = &registry_.counter("pool.warm_hits");
  cold_replays_ = &registry_.counter("pool.cold_replays");
  energy_hist_ = &registry_.histogram(
      "substrate.energy_j", {0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0});
  csi_hist_ = &registry_.histogram(
      "substrate.csi_err", {0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 4.0});
  model_dim_ = scratch_.num_parameters();
  lazy_ = cfg.lazy_workers;

  if (lazy_) {
    // Unselected workers are pure descriptors: a slot binding and a replay
    // counter. Worker instances materialize on lease from the pool below.
    bound_.assign(population_, kNoSlot);
    cycles_.assign(population_, 0);
  } else {
    util::Rng root(cfg.seed);
    workers_.reserve(population_);
    const std::size_t n_shards = shards_.num_shards();
    for (std::size_t i = 0; i < population_; ++i)
      workers_.emplace_back(i, *cfg.train, shards_.shard(i % n_shards), root.fork(1000 + i));
  }

  // Execution engine: lanes_ concurrent training slots. A single lane runs
  // tasks inline on the simulation thread (no pool threads), which is the
  // reference serial schedule; more lanes spread workers across a private
  // pool. At most one leased scratch model is live per lane, so memory
  // stays O(lanes), not O(workers).
  lanes_ = resolve_lanes(cfg.threads);
  // The lazy pool recycles down to this many slots: enough that warm
  // reuse covers back-to-back cohorts (RNG replay makes the recycling
  // pattern digest-neutral, so a machine-dependent lane count here is
  // safe).
  pool_target_ = std::max({2 * lanes_, 2 * cfg.cohort_size, std::size_t{16}});
  const std::size_t n_scratch = std::min(lanes_, population_);
  scratch_free_.reserve(n_scratch);
  for (std::size_t i = 0; i < n_scratch; ++i)
    scratch_free_.push_back(std::make_unique<ml::Model>(cfg.model_factory()));
  pending_.resize(population_);
  pool_ = std::make_unique<util::ThreadPool>(lanes_ > 1 ? lanes_ : 0);

  // Fixed evaluation subset: the first eval_samples test points (the test
  // set is already shuffled at generation time).
  const std::size_t n_eval = std::min(cfg.eval_samples, cfg.test->size());
  if (n_eval == 0) throw std::invalid_argument("Driver: empty evaluation set");
  std::vector<std::size_t> idx(n_eval);
  for (std::size_t i = 0; i < n_eval; ++i) idx[i] = i;
  eval_xs_ = ml::gather_rows(cfg.test->xs, idx);
  eval_ys_.assign(cfg.test->ys.begin(), cfg.test->ys.begin() + static_cast<std::ptrdiff_t>(n_eval));
}

Driver::~Driver() {
  // Collect any jobs a mechanism left in flight when it stopped early, so
  // no task outlives the state it references (the pool joins right after).
  for (auto& f : pending_) {
    if (f.valid()) {
      try {
        f.get();
      } catch (...) {  // mechanism already returned; nothing to rethrow into
      }
    }
  }
}

std::unique_ptr<ml::Model> Driver::acquire_scratch() {
  std::scoped_lock lock(scratch_mutex_);
  if (scratch_free_.empty()) {
    // Reachable when evaluation helpers overlap in-flight training (both
    // hold leases); a fresh model keeps the engine correct at the cost of
    // one allocation, and the free list grows to cover the overlap.
    return std::make_unique<ml::Model>(cfg_->model_factory());
  }
  auto m = std::move(scratch_free_.back());
  scratch_free_.pop_back();
  return m;
}

void Driver::release_scratch(std::unique_ptr<ml::Model> m) {
  std::scoped_lock lock(scratch_mutex_);
  scratch_free_.push_back(std::move(m));
}

const Worker& Driver::worker(std::size_t i) const {
  if (!lazy_) return workers_.at(i);
  if (i >= population_) throw std::out_of_range("Driver::worker: id out of range");
  const std::size_t slot = bound_[i];
  if (slot == kNoSlot)
    throw std::logic_error("Driver::worker: worker not materialized (lazy worker state)");
  return *pool_slots_[slot];
}

Worker& Driver::worker(std::size_t i) {
  return const_cast<Worker&>(std::as_const(*this).worker(i));
}

std::size_t Driver::worker_pool_size() const {
  return lazy_ ? pool_slots_.size() : workers_.size();
}

bool Driver::worker_materialized(std::size_t i) const {
  if (i >= population_) throw std::out_of_range("Driver::worker_materialized: id out of range");
  return !lazy_ || bound_[i] != kNoSlot;
}

util::Rng Driver::worker_rng(std::size_t i) const {
  // Identical to the eager construction loop: fork() is const on the
  // parent, so Rng(seed).fork(1000 + i) reproduces worker i's private
  // stream at any time without the other workers existing.
  return util::Rng(cfg_->seed).fork(1000 + i);
}

Worker& Driver::lease_worker(std::size_t i) {
  std::size_t slot = bound_.at(i);
  if (slot != kNoSlot) {
    // Warm: state survived since the last release (or the worker is still
    // leased in an ongoing cycle); no replay — the engine state is live.
    if (!slot_leased_[slot]) {
      const auto it = std::find(released_.begin(), released_.end(), slot);
      if (it == released_.end())
        throw std::logic_error("Driver::lease_worker: bound slot missing from release list");
      released_.erase(it);
      slot_leased_[slot] = 1;
    }
    warm_hits_->add();
    return *pool_slots_[slot];
  }
  if (pool_slots_.size() >= pool_target_ && !released_.empty()) {
    // Recycle the oldest released slot; its previous owner goes cold and
    // will replay its RNG stream if selected again.
    slot = released_.front();
    released_.erase(released_.begin());
    bound_[slot_owner_[slot]] = kNoSlot;
  } else {
    // Below target, or every slot is leased (a cohort larger than the
    // pool): grow. Leased Worker addresses stay stable (unique_ptr slots).
    slot = pool_slots_.size();
    pool_slots_.emplace_back();
    slot_leased_.push_back(0);
    slot_owner_.push_back(kNoSlot);
  }
  const auto shard = shards_.shard(i % shards_.num_shards());
  if (pool_slots_[slot] == nullptr) {
    pool_slots_[slot] = std::make_unique<Worker>(i, *cfg_->train, shard, worker_rng(i));
  } else {
    pool_slots_[slot]->rebind(i, shard, worker_rng(i));
  }
  // Reconstruct the exact RNG engine state of the eager layout: each of
  // the worker's completed local updates consumed local_steps batch draws.
  pool_slots_[slot]->replay_rng(cycles_[i] * cfg_->local_steps, cfg_->batch_size);
  cold_replays_->add();
  slot_owner_[slot] = i;
  slot_leased_[slot] = 1;
  bound_[i] = slot;
  return *pool_slots_[slot];
}

void Driver::release_workers(const std::vector<std::size_t>& members) {
  if (!lazy_) return;
  for (auto m : members) {
    const std::size_t slot = bound_.at(m);
    if (slot == kNoSlot)
      throw std::logic_error("Driver::release_workers: worker was never materialized");
    if (!slot_leased_[slot]) continue;  // already released (repeat member)
    if (pending_[m].valid()) continue;  // retraining already; keep the lease
    slot_leased_[slot] = 0;
    released_.push_back(slot);
  }
}

void Driver::begin_training(const std::vector<std::size_t>& members,
                            std::span<const float> global, double deadline) {
  // Snapshot the global model once: the server may install a newer version
  // while these jobs are still running (asynchronous groups), and every
  // member of the batch must train from the same w_t it was sent.
  auto snapshot = std::make_shared<const std::vector<float>>(global.begin(), global.end());
  const float lr = cfg_->learning_rate;
  const std::size_t steps = cfg_->local_steps;
  const std::size_t batch = cfg_->batch_size;
  for (auto m : members) {
    if (pending_.at(m).valid())
      throw std::logic_error("Driver::begin_training: worker already has a job in flight");
    // Lazy mode: materialize (or warm-reuse) the worker now, on the
    // simulation thread, and count the update it is about to run so a
    // future rematerialization replays the right number of batch draws.
    Worker& w = lazy_ ? lease_worker(m) : workers_.at(m);
    if (lazy_) ++cycles_[m];
    // The batch's virtual aggregation deadline is the scheduling key:
    // pending jobs start earliest-deadline-first, so lanes go to the group
    // whose barrier the simulation will reach next.
    pending_[m] = pool_->submit_prioritized(deadline, [this, &w, snapshot, lr, steps, batch] {
      // On a pool lane, the worker-thread flag already pins the ML kernels
      // underneath to their serial fallback (nesting rule: no deadlock, no
      // oversubscription). Inline 1-lane training instead keeps the global
      // pool's GEMM fan-out, like the seed engine — a wall-time choice
      // only: chunked kernels write disjoint output ranges, so either
      // schedule produces the same bits.
      //
      // Cooperative GEMM: with multiple lanes, installing the cooperation
      // scope lets this worker's large GEMMs recruit lanes that currently
      // have no training job (fewer runnable groups than lanes). Helpers
      // compute fixed disjoint output tiles, so this too is a wall-time
      // choice that cannot change bits.
      obs::Span span("worker", "worker.local_update");
      ScratchLease lease(*this);
      std::optional<util::ThreadPool::CooperationScope> coop;
      if (cfg_->cooperative_gemm && lanes_ > 1) coop.emplace(*pool_);
      w.local_update(lease.model(), *snapshot, lr, steps, batch);
    });
  }
}

void Driver::finish_training(const std::vector<std::size_t>& members) {
  obs::Span span("driver", "driver.barrier");
  const auto t0 = std::chrono::steady_clock::now();
  for (auto m : members) {
    auto& f = pending_.at(m);
    if (f.valid()) f.get();
  }
  engine_stats_.barrier_seconds += util::wall_seconds_since(t0);
  ++engine_stats_.barriers;
}

void Driver::train_workers(const std::vector<std::size_t>& members,
                           std::span<const float> global, double deadline) {
  begin_training(members, global, deadline);
  finish_training(members);
}

std::vector<float> Driver::initial_model() {
  util::Rng init_rng = util::Rng(cfg_->seed).fork(0x1717);
  ml::Model fresh = cfg_->model_factory();
  fresh.init(init_rng);
  return fresh.parameters();
}

ml::EvalResult Driver::evaluate(std::span<const float> model) {
  obs::Span span("driver", "driver.eval");
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = eval_ys_.size();
  const std::size_t batch = std::max<std::size_t>(1, cfg_->eval_batch);
  const std::size_t n_batches = (n + batch - 1) / batch;

  ml::EvalResult result;
  if (lanes_ <= 1 || n_batches <= 1) {
    scratch_.set_parameters(model);
    result = scratch_.evaluate(eval_xs_, eval_ys_, batch);
  } else {
    result = evaluate_sharded(model, n, n_batches);
  }
  engine_stats_.eval_seconds += util::wall_seconds_since(t0);
  ++engine_stats_.evals;
  return result;
}

ml::EvalResult Driver::evaluate_sharded(std::span<const float> model, std::size_t n,
                                        std::size_t n_batches) {
  const std::size_t batch = std::max<std::size_t>(1, cfg_->eval_batch);

  // Shard boundaries are the serial loop's batch boundaries — fixed by
  // eval_batch alone, never by the lane count — and each shard's forward
  // pass is bit-deterministic whatever thread or model instance runs it
  // (same parameters, kernels whose chunking cannot change results). The
  // per-shard sums land in per-shard slots and are reduced below in shard
  // order, so this path reproduces the serial evaluate bit-for-bit.
  //
  // The state lives in a shared_ptr because helper tasks are fire-and-
  // forget: the simulation thread waits only until every *claimed* shard
  // completed, never for helpers still queued behind running training
  // jobs. A helper that only gets a lane after the shard list is drained
  // finds nothing to claim and exits; it may outlive this call, touching
  // only the shared state (and the scratch lease, which ~Driver's pool
  // join covers).
  struct Shared {
    std::vector<float> params;       ///< parameter snapshot for late helpers
    std::vector<ml::EvalSums> sums;  ///< one slot per shard
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t completed = 0;       ///< shards finished (guarded by mutex)
    std::exception_ptr error;        ///< first failure (guarded by mutex)
  };
  auto shared = std::make_shared<Shared>();
  shared->params.assign(model.begin(), model.end());
  shared->sums.resize(n_batches);

  auto run_shards = [this, shared, n, batch, n_batches](ml::Model& m) {
    // Parameters load lazily on the first claimed shard, so a helper that
    // arrives after the list drained pays nothing.
    bool loaded = false;
    for (std::size_t b = shared->next.fetch_add(1); b < n_batches;
         b = shared->next.fetch_add(1)) {
      if (!loaded) {
        m.set_parameters(shared->params);
        loaded = true;
      }
      const std::size_t begin = b * batch;
      shared->sums[b] = m.evaluate_range(eval_xs_, eval_ys_, begin, std::min(n, begin + batch));
      std::scoped_lock lock(shared->mutex);
      if (++shared->completed == n_batches) shared->cv.notify_one();
    }
  };
  auto record_error = [shared, n_batches] {
    shared->next.store(n_batches);  // stop further claims
    std::scoped_lock lock(shared->mutex);
    if (!shared->error) shared->error = std::current_exception();
    shared->cv.notify_one();
  };

  // Helpers go in at kUrgent: the simulation thread is blocked on this
  // evaluation, so shards must jump ahead of queued training jobs (running
  // jobs are not preempted — but the simulation thread shares the shard
  // work below, so evaluation progresses even with every lane busy).
  for (std::size_t i = 1; i < std::min(lanes_, n_batches); ++i) {
    pool_->submit_prioritized(util::ThreadPool::kUrgent, [this, shared, run_shards,
                                                          record_error, n_batches] {
      // A helper that only got a lane after the shard list drained must
      // not lease a scratch model (possibly allocating one: training may
      // hold every lease) just to find nothing to do.
      if (shared->next.load(std::memory_order_relaxed) >= n_batches) return;
      try {
        ScratchLease lease(*this);
        run_shards(lease.model());
      } catch (...) {
        record_error();
      }
    });
  }

  try {
    run_shards(scratch_);  // the eval scratch is simulation-thread-only
  } catch (...) {
    record_error();
  }
  {
    std::unique_lock lock(shared->mutex);
    // Every shard index is claimed exactly once (atomic fetch_add), and a
    // claimed shard either completes or records an error, so this wait
    // always terminates.
    shared->cv.wait(lock, [&] { return shared->error || shared->completed == n_batches; });
    if (shared->error) std::rethrow_exception(shared->error);
  }

  double loss_sum = 0.0;
  double acc_sum = 0.0;
  for (const auto& s : shared->sums) {  // fixed shard order: the serial reduction
    loss_sum += s.loss_sum;
    acc_sum += s.acc_sum;
  }
  return {loss_sum / static_cast<double>(n), acc_sum / static_cast<double>(n)};
}

EngineStats Driver::engine_stats() const {
  EngineStats s = engine_stats_;
  const auto coop = pool_->coop_counters();
  s.coop_gemms = coop.regions;
  s.coop_helper_tiles = coop.helper_tiles;
  return s;
}

obs::MetricsSnapshot Driver::metrics_snapshot() {
  const auto coop = pool_->coop_counters();
  registry_.counter("pool.lanes").set(lanes_);
  registry_.counter("pool.tasks").set(pool_->tasks_run());
  registry_.counter("pool.busy_ns").set(pool_->busy_ns());
  registry_.counter("gemm.coop_regions").set(coop.regions);
  registry_.counter("gemm.coop_helper_tiles").set(coop.helper_tiles);
  registry_.counter("substrate.depleted").set(substrate_->depleted_count());
  return registry_.snapshot();
}

core::PowerControlResult Driver::power_for_group(const std::vector<std::size_t>& members,
                                                 std::size_t round) {
  if (members.empty()) throw std::invalid_argument("power_for_group: empty group");
  const auto& gains = substrate_->gains(round);
  core::PowerControlInput in;
  in.sigma0_sq = cfg_->aircomp.sigma0_sq;
  double w_sq = 0.0;
  double group_data = 0.0;
  for (auto m : members) {
    const Worker& w = worker(m);
    if (!w.has_model())
      throw std::logic_error("power_for_group: member has no trained local model");
    w_sq = std::max(w_sq, w.model_norm_sq());
    group_data += static_cast<double>(w.data_size());
    in.gains.push_back(gains.at(m));
    in.data_sizes.push_back(static_cast<double>(w.data_size()));
    in.energy_caps.push_back(cfg_->energy_cap);
  }
  in.model_bound_sq = std::max(w_sq, 1e-12);
  in.group_data = group_data;
  return core::optimize_power(in);
}

std::vector<float> Driver::aircomp_aggregate(const std::vector<std::size_t>& members,
                                             std::span<const float> w_prev, std::size_t round,
                                             double& energy_joules) {
  const auto pc = power_for_group(members, round);
  const auto& gains = substrate_->gains(round);
  const auto csi = substrate_->csi_scales(round);

  channel::AirCompChannel::Input in;
  in.w_prev = w_prev;
  in.sigma = pc.sigma;
  in.eta = pc.eta;
  in.total_data = static_cast<double>(stats_.total_size());
  for (auto m : members) {
    const Worker& w = worker(m);
    in.local_models.push_back(w.local_model());
    in.data_sizes.push_back(static_cast<double>(w.data_size()));
    in.gains.push_back(gains.at(m));
    if (!csi.empty()) {
      in.csi_scale.push_back(csi[m]);
      csi_hist_->record(csi[m]);
    }
  }
  auto out = aircomp_.aggregate(in);
  for (std::size_t i = 0; i < out.energies.size(); ++i) {
    const double e = out.energies[i];
    energy_joules += e;
    energy_hist_->record(e);
    substrate_->charge(members[i], e);
  }
  return std::move(out.w_next);
}

std::vector<float> Driver::oma_aggregate(const std::vector<std::size_t>& members,
                                         std::span<const float> w_prev) {
  std::vector<std::span<const float>> models;
  std::vector<double> sizes;
  for (auto m : members) {
    const Worker& w = worker(m);
    if (!w.has_model()) throw std::logic_error("oma_aggregate: member has no model");
    models.push_back(w.local_model());
    sizes.push_back(static_cast<double>(w.data_size()));
  }
  const double upload_joules = substrate_->oma_upload_joules();
  if (upload_joules > 0.0)
    for (auto m : members) substrate_->charge(m, upload_joules);
  return channel::AirCompChannel::ideal_aggregate(w_prev, models, sizes,
                                                  static_cast<double>(stats_.total_size()));
}

void Driver::maybe_record(Metrics& metrics, std::size_t round, double time, double energy,
                          double staleness, std::span<const float> model) {
  if (round != 1 && round % cfg_->eval_every != 0) return;
  const auto ev = evaluate(model);
  metrics.record({time, round, ev.loss, ev.accuracy, energy, staleness});
}

bool Driver::should_stop(const Metrics& metrics) const {
  if (cfg_->stop_at_accuracy < 0.0) return false;
  const auto& pts = metrics.points();
  if (pts.size() < 3) return false;
  const double mean3 = (pts[pts.size() - 1].accuracy + pts[pts.size() - 2].accuracy +
                        pts[pts.size() - 3].accuracy) / 3.0;
  return mean3 >= cfg_->stop_at_accuracy;
}

}  // namespace airfedga::fl
