// Tests for the time-varying substrate layer: the generator kinds
// (churn / energy / csi_error) in isolation, the static substrate's
// bit-identity acceptance check — every mechanism's pre-refactor golden
// digest reproduced across lane counts x worker-state backends x
// event-queue backends — the realism generators' per-seed determinism
// (engine-knob-invariant digests), the substrate observability counters,
// and the scenario-layer substrate section (round-trip + validation).

#include "sim/substrate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fl/loop.hpp"
#include "fl/mechanisms.hpp"
#include "ml/zoo.hpp"
#include "scenario/spec.hpp"

namespace airfedga {
namespace {

using sim::Substrate;
using sim::SubstrateOptions;

// ------------------------------------------------------------ kind parser --

TEST(SubstrateKind, ParsesStaticAndEveryTokenCombination) {
  SubstrateOptions o;
  sim::set_substrate_kind(o, "static");
  EXPECT_FALSE(o.any());
  EXPECT_EQ(sim::substrate_kind(o), "static");

  sim::set_substrate_kind(o, "churn");
  EXPECT_TRUE(o.churn);
  EXPECT_FALSE(o.energy);
  EXPECT_FALSE(o.csi_error);

  sim::set_substrate_kind(o, "energy+csi_error");
  EXPECT_FALSE(o.churn);
  EXPECT_TRUE(o.energy);
  EXPECT_TRUE(o.csi_error);

  sim::set_substrate_kind(o, "churn+energy+csi_error");
  EXPECT_TRUE(o.churn && o.energy && o.csi_error);
  // Canonical token order, whatever order the input used.
  sim::set_substrate_kind(o, "csi_error+churn");
  EXPECT_EQ(sim::substrate_kind(o), "churn+csi_error");
}

TEST(SubstrateKind, RejectsUnknownDuplicateAndEmptyTokens) {
  SubstrateOptions o;
  EXPECT_THROW(sim::set_substrate_kind(o, "chrun"), std::invalid_argument);
  EXPECT_THROW(sim::set_substrate_kind(o, "churn+churn"), std::invalid_argument);
  EXPECT_THROW(sim::set_substrate_kind(o, ""), std::invalid_argument);
  EXPECT_THROW(sim::set_substrate_kind(o, "churn+"), std::invalid_argument);
  EXPECT_THROW(sim::set_substrate_kind(o, "static+churn"), std::invalid_argument);
}

TEST(SubstrateKind, OptionsValidateChecksOnlyEnabledGenerators) {
  SubstrateOptions o;
  o.churn_period = -1.0;  // churn disabled: the bad knob is ignored
  EXPECT_NO_THROW(o.validate());
  o.churn = true;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.churn_period = 100.0;
  o.churn_on_fraction = 1.5;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.churn_on_fraction = 1.0;
  EXPECT_NO_THROW(o.validate());
  o.energy = true;
  o.energy_budget = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.energy_budget = 5.0;
  o.csi_error = true;
  o.csi_error_std = -0.1;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

// ------------------------------------------------------------- generators --

std::unique_ptr<Substrate> make(const SubstrateOptions& opts, std::size_t n = 8,
                                std::uint64_t seed = 7) {
  channel::FadingChannel::Config fading;
  fading.seed = seed + 2;
  return sim::make_substrate(n, fading, channel::LatencyConfig{}, opts, seed);
}

TEST(StaticSubstrate, IsAlwaysSelectableAndNeverTransitions) {
  auto s = make(SubstrateOptions{});
  EXPECT_FALSE(s->time_varying());
  for (double t : {0.0, 123.4, 9e6}) {
    for (std::size_t w = 0; w < s->num_workers(); ++w) {
      EXPECT_TRUE(s->available(w, t));
      EXPECT_FALSE(s->depleted(w));
      EXPECT_TRUE(s->selectable(w, t));
      EXPECT_LT(s->next_transition(w, t), 0.0);
    }
  }
  EXPECT_TRUE(s->csi_scales(3).empty());
  EXPECT_EQ(s->depleted_count(), 0u);
  EXPECT_EQ(s->oma_upload_joules(), 0.0);
  EXPECT_TRUE(std::isinf(s->remaining_joules(0)));
}

TEST(StaticSubstrate, LatencyQueriesIgnoreTime) {
  auto s = make(SubstrateOptions{});
  const channel::LatencyModel latency;
  EXPECT_EQ(s->aircomp_upload_seconds(5000, 0.0), latency.aircomp_upload_seconds(5000));
  EXPECT_EQ(s->aircomp_upload_seconds(5000, 777.0), latency.aircomp_upload_seconds(5000));
  EXPECT_EQ(s->oma_upload_seconds(5000, 3, 42.0), latency.oma_upload_seconds(5000, 3));
}

TEST(ChurnSubstrate, AvailabilityIsAPeriodicSquareWave) {
  SubstrateOptions o;
  o.churn = true;
  o.churn_period = 100.0;
  o.churn_on_fraction = 0.6;
  auto s = make(o);
  EXPECT_TRUE(s->time_varying());

  for (std::size_t w = 0; w < s->num_workers(); ++w) {
    // Exactly on_fraction of a fine sampling grid is online, and the wave
    // repeats with the configured period.
    std::size_t on = 0;
    const std::size_t samples = 1000;
    for (std::size_t i = 0; i < samples; ++i) {
      const double t = o.churn_period * static_cast<double>(i) / static_cast<double>(samples);
      on += s->available(w, t) ? 1 : 0;
      EXPECT_EQ(s->available(w, t), s->available(w, t + 3 * o.churn_period));
    }
    // Exact up to one sample straddling the fmod boundary.
    EXPECT_NEAR(static_cast<double>(on), o.churn_on_fraction * samples, 1.0);
  }
}

TEST(ChurnSubstrate, NextTransitionIsTheNextAvailabilityFlip) {
  SubstrateOptions o;
  o.churn = true;
  o.churn_period = 50.0;
  o.churn_on_fraction = 0.3;
  auto s = make(o);

  for (std::size_t w = 0; w < s->num_workers(); ++w) {
    double t = 0.0;
    for (int hop = 0; hop < 12; ++hop) {
      const double next = s->next_transition(w, t);
      ASSERT_GT(next, t);
      // State is constant up to the transition and flips right after it.
      const bool state = s->available(w, t);
      EXPECT_EQ(s->available(w, 0.5 * (t + next)), state);
      EXPECT_NE(s->available(w, next + 1e-6), state);
      t = next;
    }
  }
}

TEST(ChurnSubstrate, AlwaysOnWorkersNeverTransition) {
  SubstrateOptions o;
  o.churn = true;
  o.churn_on_fraction = 1.0;
  auto s = make(o);
  EXPECT_TRUE(s->available(3, 123.0));
  EXPECT_LT(s->next_transition(3, 123.0), 0.0);
}

TEST(EnergySubstrate, ChargingDrainsBudgetsAndCountsDepletions) {
  SubstrateOptions o;
  o.energy = true;
  o.energy_budget = 10.0;
  o.energy_oma_upload = 2.5;
  auto s = make(o, 4);
  EXPECT_TRUE(s->time_varying());
  EXPECT_EQ(s->oma_upload_joules(), 2.5);
  EXPECT_EQ(s->remaining_joules(0), 10.0);

  s->charge(0, 4.0);
  EXPECT_EQ(s->remaining_joules(0), 6.0);
  EXPECT_FALSE(s->depleted(0));
  EXPECT_TRUE(s->selectable(0, 0.0));

  s->charge(0, 6.0);
  EXPECT_TRUE(s->depleted(0));
  EXPECT_FALSE(s->selectable(0, 0.0));
  EXPECT_EQ(s->depleted_count(), 1u);

  // Further charges on a depleted worker do not double-count it.
  s->charge(0, 1.0);
  EXPECT_EQ(s->depleted_count(), 1u);
  // Zero/negative charges are ignored.
  s->charge(1, 0.0);
  EXPECT_EQ(s->remaining_joules(1), 10.0);
  EXPECT_EQ(s->depleted_count(), 1u);
}

TEST(CsiSubstrate, ScalesAreResidualFactorsAndCacheByRound) {
  SubstrateOptions o;
  o.csi_error = true;
  o.csi_error_std = 0.2;
  auto s = make(o);
  // csi_error alone is round-synchronous, not time-varying: no event-loop
  // involvement needed.
  EXPECT_FALSE(s->time_varying());

  auto truth = make(SubstrateOptions{});
  const auto& true_gains = truth->gains(4);
  const auto reported = s->gains(4);
  const auto scales = s->csi_scales(4);
  ASSERT_EQ(scales.size(), reported.size());
  bool any_error = false;
  for (std::size_t i = 0; i < reported.size(); ++i) {
    // reported = truth * factor with factor clamped >= 0.1; the residual
    // scale times the reported estimate recovers the true gain.
    EXPECT_GT(reported[i], 0.0);
    EXPECT_NEAR(reported[i] * scales[i], true_gains[i], 1e-12);
    EXPECT_LE(scales[i], 10.0 + 1e-12);  // clamp bounds the residual
    any_error = any_error || scales[i] != 1.0;
  }
  EXPECT_TRUE(any_error);

  // Same round, same substrate: the cached draw, not a fresh one.
  const auto again = s->gains(4);
  EXPECT_EQ(again, reported);
  // A different round redraws the error.
  EXPECT_NE(s->gains(5), reported);
}

TEST(CsiSubstrate, DrawsAreDeterministicPerSeedAndDecorrelatedAcrossSeeds) {
  SubstrateOptions o;
  o.csi_error = true;
  auto a = make(o, 8, 11);
  auto b = make(o, 8, 11);
  auto c = make(o, 8, 12);
  EXPECT_EQ(a->gains(2), b->gains(2));
  EXPECT_NE(a->gains(2), c->gains(2));
}

TEST(ChurnSubstrate, PhasesAreDeterministicPerSeed) {
  SubstrateOptions o;
  o.churn = true;
  o.churn_on_fraction = 0.5;
  auto a = make(o, 8, 11);
  auto b = make(o, 8, 11);
  auto c = make(o, 8, 12);
  bool differs = false;
  for (std::size_t w = 0; w < 8; ++w) {
    for (double t : {10.0, 130.0, 377.0}) {
      EXPECT_EQ(a->available(w, t), b->available(w, t));
      differs = differs || a->available(w, t) != c->available(w, t);
    }
  }
  EXPECT_TRUE(differs);
}

// --------------------------------------------- loop integration fixture --

/// The loop_test fixture verbatim: the golden digests below were captured
/// on this exact configuration.
struct Fixture {
  data::TrainTest data;
  fl::FLConfig cfg;

  explicit Fixture(std::uint64_t seed = 7, std::size_t workers = 12) {
    data.train = data::make_synthetic_flat(16, {workers * 40, 6, 1.0, 0.3, seed});
    data.test = data::make_synthetic_flat(16, {240, 6, 1.0, 0.3, seed});
    util::Rng rng(seed);
    cfg.train = &data.train;
    cfg.test = &data.test;
    cfg.partition = data::partition_label_skew(data.train, workers, rng);
    cfg.model_factory = [] { return ml::make_softmax_regression(16, 6); };
    cfg.learning_rate = 0.3f;
    cfg.batch_size = 8;
    cfg.cluster.base_seconds = 6.0;
    cfg.cluster.seed = seed + 1;
    cfg.fading.seed = seed + 2;
    cfg.time_budget = 900.0;
    cfg.eval_every = 1;
    cfg.eval_samples = 240;
    cfg.eval_batch = 64;
    cfg.max_rounds = 25;
    cfg.seed = seed;
  }
};

struct MechanismCase {
  const char* label;
  const char* digest;  ///< pre-refactor golden (x86-64)
  std::function<fl::Metrics(const fl::FLConfig&)> run;
};

const std::vector<MechanismCase>& mechanism_cases() {
  using namespace fl;
  static const std::vector<MechanismCase> cases = {
      {"fedavg", "bb171646c73cf785", [](const FLConfig& c) { return FedAvg().run(c); }},
      {"airfedavg", "38c2931267c8d221", [](const FLConfig& c) { return AirFedAvg().run(c); }},
      {"dynamic", "d3d01912a3b9ba79",
       [](const FLConfig& c) {
         return DynamicAirComp(MechanismConfig{.selection_quantile = 0.5}).run(c);
       }},
      {"tifl", "faf62aad3f041464",
       [](const FLConfig& c) { return TiFL(MechanismConfig{.tiers = 3}).run(c); }},
      {"fedasync", "ff96ef9dfa60ac7a",
       [](const FLConfig& c) {
         return FedAsync(MechanismConfig{.mixing = 0.6, .damping = 0.5}).run(c);
       }},
      {"airfedga", "260d02f29dc076f1", [](const FLConfig& c) { return AirFedGA().run(c); }},
  };
  return cases;
}

/// Every engine-knob combination a digest must be invariant to.
struct EngineKnobs {
  std::size_t threads;
  bool lazy;
  sim::QueueBackend queue;
};

std::vector<EngineKnobs> engine_grid() {
  std::vector<EngineKnobs> grid;
  for (std::size_t threads : {1UL, 2UL, 4UL})
    for (bool lazy : {false, true})
      for (auto queue : {sim::QueueBackend::kBinaryHeap, sim::QueueBackend::kCalendar})
        grid.push_back({threads, lazy, queue});
  return grid;
}

std::string run_digest(const MechanismCase& mc, const SubstrateOptions& opts,
                       const EngineKnobs& k) {
  Fixture f;
  f.cfg.substrate = opts;
  f.cfg.threads = k.threads;
  f.cfg.lazy_workers = k.lazy;
  f.cfg.event_queue = k.queue;
  return mc.run(f.cfg).digest();
}

// The refactor's acceptance check: with the default (static) substrate the
// loop must replay the pre-refactor event sequence exactly, so every
// mechanism reproduces its golden digest under every engine-knob
// combination. Goldens depend on the ISA's FP contraction, so the pinned
// half is x86-64-only (like loop_test); other ISAs still run the grid and
// check invariance against their own reference.
TEST(SubstrateDigests, StaticSubstrateReproducesPreRefactorGoldens) {
  for (const auto& mc : mechanism_cases()) {
    std::string reference;
    for (const auto& k : engine_grid()) {
      const std::string digest = run_digest(mc, SubstrateOptions{}, k);
      if (reference.empty()) reference = digest;
      EXPECT_EQ(digest, reference)
          << mc.label << " @" << k.threads << " lanes, lazy=" << k.lazy;
#if defined(__x86_64__)
      EXPECT_EQ(digest, mc.digest) << mc.label << " @" << k.threads << " lanes";
#endif
    }
  }
}

// Realism generators must be deterministic per seed: whatever the lane
// count, worker-state backend, or event-queue backend, the digest depends
// only on (scenario, seed). No pinned hex here — realism digests are new
// in this PR and ISA-dependent; the contract is invariance.
TEST(SubstrateDigests, RealismDigestsAreEngineKnobInvariant) {
  SubstrateOptions churn;
  churn.churn = true;
  churn.churn_period = 120.0;
  churn.churn_on_fraction = 0.7;

  SubstrateOptions energy;
  energy.energy = true;
  energy.energy_budget = 40.0;
  energy.energy_oma_upload = 1.0;

  SubstrateOptions csi;
  csi.csi_error = true;
  csi.csi_error_std = 0.15;

  SubstrateOptions all = churn;
  all.energy = true;
  all.energy_budget = 40.0;
  all.energy_oma_upload = 1.0;
  all.csi_error = true;
  all.csi_error_std = 0.15;

  const std::vector<std::pair<const char*, SubstrateOptions>> kinds = {
      {"churn", churn}, {"energy", energy}, {"csi_error", csi}, {"all", all}};

  for (const auto& mc : mechanism_cases()) {
    for (const auto& [kind, opts] : kinds) {
      std::string reference;
      for (const auto& k : engine_grid()) {
        const std::string digest = run_digest(mc, opts, k);
        if (reference.empty()) reference = digest;
        EXPECT_EQ(digest, reference) << mc.label << " / " << kind << " @" << k.threads
                                     << " lanes, lazy=" << k.lazy;
      }
    }
  }
}

TEST(SubstrateDigests, RealismChangesTheTraceStaticDoesNot) {
  SubstrateOptions stress;
  stress.churn = true;
  stress.churn_period = 120.0;
  stress.churn_on_fraction = 0.6;
  stress.energy = true;
  stress.energy_budget = 30.0;
  const EngineKnobs serial{1, false, sim::QueueBackend::kBinaryHeap};
  const auto& mc = mechanism_cases().front();  // fedavg
  EXPECT_NE(run_digest(mc, stress, serial), run_digest(mc, SubstrateOptions{}, serial));
}

// ------------------------------------------------------- obs instruments --

std::uint64_t counter_value(const obs::MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.counters)
    if (n == name) return v;
  ADD_FAILURE() << "counter " << name << " missing from snapshot";
  return 0;
}

const obs::MetricsSnapshot::HistogramData* find_histogram(
    const obs::MetricsSnapshot& snap, const std::string& name) {
  for (const auto& h : snap.histograms)
    if (h.name == name) return &h;
  return nullptr;
}

TEST(SubstrateObs, StressRunPopulatesDropoutDepletionAndCsiInstruments) {
  Fixture f;
  sim::set_substrate_kind(f.cfg.substrate, "churn+energy+csi_error");
  f.cfg.substrate.churn_period = 100.0;
  f.cfg.substrate.churn_on_fraction = 0.5;
  f.cfg.substrate.energy_budget = 20.0;
  f.cfg.substrate.csi_error_std = 0.2;
  const fl::Metrics m = fl::AirFedGA().run(f.cfg);

  const auto& snap = m.obs_snapshot();
  // The instruments exist whatever their value; the CSI histogram must
  // have seen one residual factor per aggregated upload.
  counter_value(snap, "substrate.dropouts");
  counter_value(snap, "substrate.depleted");
  const auto* csi = find_histogram(snap, "substrate.csi_err");
  ASSERT_NE(csi, nullptr);
  EXPECT_GT(csi->count, 0u);
  const auto* energy = find_histogram(snap, "substrate.energy_j");
  ASSERT_NE(energy, nullptr);
  EXPECT_GT(energy->count, 0u);
  // The histogram's sum is the run's AirComp transmit energy: the obs view
  // and the metric series agree on the same quantity.
  EXPECT_NEAR(energy->sum, m.total_energy(), 1e-9 * std::max(1.0, m.total_energy()));
}

TEST(SubstrateObs, EnergyDepletionGatesParticipation) {
  Fixture f;
  sim::set_substrate_kind(f.cfg.substrate, "energy");
  f.cfg.substrate.energy_budget = 0.5;  // tiny: workers deplete quickly
  const fl::Metrics m = fl::AirFedAvg().run(f.cfg);
  EXPECT_GT(counter_value(m.obs_snapshot(), "substrate.depleted"), 0u);
  // The run still terminates cleanly with whatever rounds it managed.
  EXPECT_GE(m.total_rounds(), 1u);
}

// ------------------------------------------------------- scenario layer --

scenario::ScenarioSpec base_spec() {
  scenario::ScenarioSpec s;
  s.name = "substrate_spec_test";
  s.dataset.train_samples = 200;
  s.dataset.test_samples = 50;
  s.partition.workers = 8;
  s.model.kind = "softmax";
  s.mechanisms.push_back(scenario::MechanismSpec{.kind = "fedavg"});
  return s;
}

TEST(SubstrateSpec, RoundTripsThroughJsonWithKindConditionalKnobs) {
  scenario::ScenarioSpec s = base_spec();
  s.substrate.kind = "churn+csi_error";
  s.substrate.churn_period = 123.0;
  s.substrate.churn_on_fraction = 0.4;
  s.substrate.csi_error_std = 0.25;
  const scenario::Json j = s.to_json();

  // Kind-conditional serialization: energy knobs are absent.
  const scenario::Json* su = j.find("substrate");
  ASSERT_NE(su, nullptr);
  EXPECT_NE(su->find("churn_period"), nullptr);
  EXPECT_NE(su->find("csi_error_std"), nullptr);
  EXPECT_EQ(su->find("energy_budget"), nullptr);

  const auto back = scenario::ScenarioSpec::from_json(j);
  EXPECT_EQ(back.substrate.kind, "churn+csi_error");
  EXPECT_EQ(back.substrate.churn_period, 123.0);
  EXPECT_EQ(back.substrate.churn_on_fraction, 0.4);
  EXPECT_EQ(back.substrate.csi_error_std, 0.25);
  EXPECT_EQ(scenario::config_hash(s), scenario::config_hash(back));
}

TEST(SubstrateSpec, AbsentSectionKeepsTheStaticDefault) {
  const auto fresh = scenario::ScenarioSpec::from_json(scenario::Json::parse("{}"));
  EXPECT_EQ(fresh.substrate.kind, "static");
  // And a static spec serializes a kind-only section (no dormant knobs).
  const scenario::Json j = base_spec().to_json();
  const scenario::Json* su = j.find("substrate");
  ASSERT_NE(su, nullptr);
  EXPECT_NE(su->find("kind"), nullptr);
  EXPECT_EQ(su->find("churn_period"), nullptr);
  EXPECT_EQ(su->find("energy_budget"), nullptr);
  EXPECT_EQ(su->find("csi_error_std"), nullptr);
}

TEST(SubstrateSpec, ValidateNamesTheOffendingField) {
  auto expect_error = [](scenario::ScenarioSpec s, const std::string& needle) {
    try {
      s.validate();
      FAIL() << "expected validation error mentioning " << needle;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  scenario::ScenarioSpec s = base_spec();
  s.substrate.kind = "bogus";
  expect_error(s, "substrate.kind");
  s.substrate.kind = "churn";
  s.substrate.churn_period = 0.0;
  expect_error(s, "substrate.churn_period");
  s.substrate.churn_period = 50.0;
  s.substrate.churn_on_fraction = 0.0;
  expect_error(s, "substrate.churn_on_fraction");
  s.substrate.churn_on_fraction = 0.5;
  EXPECT_NO_THROW(s.validate());
  s.substrate.kind = "energy";
  s.substrate.energy_budget = -1.0;
  expect_error(s, "substrate.energy_budget");
  s.substrate.energy_budget = 10.0;
  s.substrate.energy_oma_upload = -0.5;
  expect_error(s, "substrate.energy_oma_upload");
  s.substrate.energy_oma_upload = 0.0;
  s.substrate.kind = "csi_error";
  s.substrate.csi_error_std = -0.1;
  expect_error(s, "substrate.csi_error_std");
}

TEST(SubstrateSpec, RejectsUnknownKeysInTheSection) {
  scenario::Json j = base_spec().to_json();
  scenario::Json su = scenario::Json::object();
  su.set("kind", std::string("static"));
  su.set("churn_perid", 10.0);  // typo must fail loudly
  j.set("substrate", std::move(su));
  EXPECT_THROW(scenario::ScenarioSpec::from_json(j), std::invalid_argument);
}

TEST(SubstrateSpec, BuildLowersTheSectionIntoTheFLConfig) {
  scenario::ScenarioSpec s = base_spec();
  s.substrate.kind = "churn+energy";
  s.substrate.churn_period = 77.0;
  s.substrate.energy_budget = 33.0;
  const scenario::BuiltScenario built = scenario::build(s);
  EXPECT_TRUE(built.cfg.substrate.churn);
  EXPECT_TRUE(built.cfg.substrate.energy);
  EXPECT_FALSE(built.cfg.substrate.csi_error);
  EXPECT_EQ(built.cfg.substrate.churn_period, 77.0);
  EXPECT_EQ(built.cfg.substrate.energy_budget, 33.0);
}

}  // namespace
}  // namespace airfedga
