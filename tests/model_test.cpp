#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ml/activation.hpp"
#include "ml/dense.hpp"
#include "ml/model.hpp"
#include "ml/optimizer.hpp"
#include "ml/zoo.hpp"

namespace airfedga::ml {
namespace {

Model tiny_mlp() {
  Model m;
  m.add(std::make_unique<Dense>(4, 8));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(8, 3));
  return m;
}

TEST(Model, ParameterCount) {
  Model m = tiny_mlp();
  EXPECT_EQ(m.num_parameters(), 4u * 8 + 8 + 8 * 3 + 3);
}

TEST(Model, ParameterRoundTrip) {
  Model m = tiny_mlp();
  util::Rng rng(1);
  m.init(rng);
  auto p = m.parameters();
  ASSERT_EQ(p.size(), m.num_parameters());

  std::vector<float> changed(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) changed[i] = static_cast<float>(i) * 0.01f;
  m.set_parameters(changed);
  EXPECT_EQ(m.parameters(), changed);

  m.set_parameters(p);
  EXPECT_EQ(m.parameters(), p);
}

TEST(Model, SetParametersRejectsWrongLength) {
  Model m = tiny_mlp();
  std::vector<float> tooShort(m.num_parameters() - 1);
  std::vector<float> tooLong(m.num_parameters() + 1);
  EXPECT_THROW(m.set_parameters(tooShort), std::invalid_argument);
  EXPECT_THROW(m.set_parameters(tooLong), std::invalid_argument);
}

TEST(Model, ZeroGradClearsAccumulators) {
  Model m = tiny_mlp();
  util::Rng rng(2);
  m.init(rng);
  Tensor x = Tensor::randn({2, 4}, rng);
  std::vector<int> y = {0, 2};
  std::vector<float> g;
  m.compute_gradient(x, y, g);
  bool any = false;
  for (float v : g) any |= (v != 0.0f);
  EXPECT_TRUE(any);
  m.zero_grad();
  for (float v : m.gradients()) EXPECT_EQ(v, 0.0f);
}

TEST(Model, GradientMatchesFiniteDifferences) {
  Model m = tiny_mlp();
  util::Rng rng(3);
  m.init(rng);
  Tensor x = Tensor::randn({3, 4}, rng);
  std::vector<int> y = {0, 1, 2};

  std::vector<float> grad;
  m.compute_gradient(x, y, grad);

  auto params = m.parameters();
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < params.size(); i += std::max<std::size_t>(1, params.size() / 23)) {
    auto up = params, down = params;
    up[i] += eps;
    down[i] -= eps;
    std::vector<float> dummy;
    m.set_parameters(up);
    const double lu = m.compute_gradient(x, y, dummy);
    m.set_parameters(down);
    const double ld = m.compute_gradient(x, y, dummy);
    m.set_parameters(params);
    const double numeric = (lu - ld) / (2.0 * eps);
    EXPECT_NEAR(grad[i], numeric, 2e-3 + 0.05 * std::abs(numeric)) << "at param " << i;
  }
}

TEST(Model, TrainStepDecreasesLossOnFixedBatch) {
  Model m = tiny_mlp();
  util::Rng rng(4);
  m.init(rng);
  Tensor x = Tensor::randn({16, 4}, rng);
  std::vector<int> y(16);
  for (std::size_t i = 0; i < 16; ++i) y[i] = static_cast<int>(i % 3);
  const double first = m.train_step(x, y, 0.1f);
  double last = first;
  for (int s = 0; s < 50; ++s) last = m.train_step(x, y, 0.1f);
  EXPECT_LT(last, first * 0.7);
}

TEST(Model, TrainStepEqualsManualSgd) {
  Model a = tiny_mlp();
  Model b = tiny_mlp();
  util::Rng ra(5), rb(5);
  a.init(ra);
  b.init(rb);
  ASSERT_EQ(a.parameters(), b.parameters());

  util::Rng rx(6);
  Tensor x = Tensor::randn({4, 4}, rx);
  std::vector<int> y = {0, 1, 2, 0};
  const float lr = 0.05f;

  a.train_step(x, y, lr);

  std::vector<float> grad;
  b.compute_gradient(x, y, grad);
  auto p = b.parameters();
  for (std::size_t i = 0; i < p.size(); ++i) p[i] -= lr * grad[i];
  b.set_parameters(p);

  const auto pa = a.parameters();
  const auto pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_FLOAT_EQ(pa[i], pb[i]);
}

TEST(Model, EvaluatePerfectClassifier) {
  // A fixed linear model that maps one-hot-ish inputs to matching logits.
  Model m;
  m.add(std::make_unique<Dense>(3, 3));
  auto params = m.parameters();
  std::fill(params.begin(), params.end(), 0.0f);
  // W = 10 * I
  params[0] = params[4] = params[8] = 10.0f;
  m.set_parameters(params);

  Tensor xs({3, 3}, {1, 0, 0, 0, 1, 0, 0, 0, 1});
  std::vector<int> ys = {0, 1, 2};
  const auto r = m.evaluate(xs, ys, 2);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
  EXPECT_LT(r.loss, 1e-3);
}

TEST(Model, EvaluateBatchingMatchesSinglePass) {
  Model m = tiny_mlp();
  util::Rng rng(7);
  m.init(rng);
  Tensor xs = Tensor::randn({37, 4}, rng);
  std::vector<int> ys(37);
  for (std::size_t i = 0; i < ys.size(); ++i) ys[i] = static_cast<int>(i % 3);
  const auto big = m.evaluate(xs, ys, 64);
  const auto small = m.evaluate(xs, ys, 5);
  EXPECT_NEAR(big.loss, small.loss, 1e-5);
  EXPECT_NEAR(big.accuracy, small.accuracy, 1e-12);
}

TEST(Model, InitIsSeedDeterministic) {
  Model a = tiny_mlp();
  Model b = tiny_mlp();
  util::Rng ra(9), rb(9);
  a.init(ra);
  b.init(rb);
  EXPECT_EQ(a.parameters(), b.parameters());
}

TEST(Optimizer, PlainSgdMatchesTrainStepRule) {
  Model m = tiny_mlp();
  util::Rng rng(10);
  m.init(rng);
  Tensor x = Tensor::randn({4, 4}, rng);
  std::vector<int> y = {0, 1, 2, 1};

  std::vector<float> grad;
  m.compute_gradient(x, y, grad);
  auto before = m.parameters();

  SgdOptimizer opt({.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.0f});
  opt.step(m);
  const auto after = m.parameters();
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_NEAR(after[i], before[i] - 0.1f * grad[i], 1e-6);
}

TEST(Optimizer, MomentumAccumulates) {
  Model m = tiny_mlp();
  util::Rng rng(11);
  m.init(rng);
  Tensor x = Tensor::randn({4, 4}, rng);
  std::vector<int> y = {0, 1, 2, 1};

  // Two steps on the same batch with momentum: second step must move
  // farther than the first (velocity builds up).
  SgdOptimizer opt({.lr = 0.01f, .momentum = 0.9f, .weight_decay = 0.0f});
  std::vector<float> g;
  const auto p0 = m.parameters();
  m.compute_gradient(x, y, g);
  opt.step(m);
  const auto p1 = m.parameters();
  m.compute_gradient(x, y, g);
  opt.step(m);
  const auto p2 = m.parameters();

  double step1 = 0.0, step2 = 0.0;
  for (std::size_t i = 0; i < p0.size(); ++i) {
    step1 += std::abs(p1[i] - p0[i]);
    step2 += std::abs(p2[i] - p1[i]);
  }
  EXPECT_GT(step2, step1 * 1.2);
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  Model m;
  m.add(std::make_unique<Dense>(2, 2));
  std::vector<float> p = {1.0f, 1.0f, 1.0f, 1.0f, 0.0f, 0.0f};
  m.set_parameters(p);
  m.zero_grad();
  SgdOptimizer opt({.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.5f});
  opt.step(m);  // gradient is zero; only decay acts
  const auto after = m.parameters();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(after[i], 1.0f - 0.1f * 0.5f, 1e-6);
}

TEST(Zoo, PaperArchitectureSizes) {
  // Paper LR on MNIST: 784-512-512-10 MLP.
  Model lr = make_mlp(784, 10);
  EXPECT_EQ(lr.num_parameters(), 784u * 512 + 512 + 512u * 512 + 512 + 512u * 10 + 10);

  Model sm = make_softmax_regression(20, 5);
  EXPECT_EQ(sm.num_parameters(), 20u * 5 + 5);
}

TEST(Zoo, CnnShapesRun) {
  Model cnn = make_cnn_mnist(0.2, 12);
  util::Rng rng(12);
  cnn.init(rng);
  Tensor x = Tensor::randn({2, 1, 12, 12}, rng);
  Tensor logits = cnn.forward(x);
  EXPECT_EQ(logits.dim(0), 2u);
  EXPECT_EQ(logits.dim(1), 10u);
}

TEST(Zoo, CifarCnnShapesRun) {
  Model cnn = make_cnn_cifar(0.15, 16);
  util::Rng rng(13);
  cnn.init(rng);
  Tensor x = Tensor::randn({1, 3, 16, 16}, rng);
  Tensor logits = cnn.forward(x);
  EXPECT_EQ(logits.dim(1), 10u);
}

TEST(Zoo, VggStyleShapesRun) {
  Model vgg = make_vgg_style(16, 100, 0.2);
  util::Rng rng(14);
  vgg.init(rng);
  Tensor x = Tensor::randn({1, 3, 16, 16}, rng);
  Tensor logits = vgg.forward(x);
  EXPECT_EQ(logits.dim(1), 100u);
}

TEST(Zoo, WidthScaleShrinksParameterCount) {
  const std::size_t full = make_cnn_mnist(1.0, 28).num_parameters();
  const std::size_t small = make_cnn_mnist(0.2, 28).num_parameters();
  EXPECT_LT(small, full / 5);
}

TEST(Zoo, RejectsBadImageSizes) {
  EXPECT_THROW(make_cnn_mnist(1.0, 27), std::invalid_argument);
  EXPECT_THROW(make_vgg_style(20, 10), std::invalid_argument);
}

TEST(Zoo, CountParametersMatchesInstance) {
  ModelFactory f = [] { return make_mlp(10, 3, 16); };
  EXPECT_EQ(count_parameters(f), f().num_parameters());
}

}  // namespace
}  // namespace airfedga::ml
