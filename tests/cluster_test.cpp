#include <gtest/gtest.h>

#include <algorithm>

#include "sim/cluster.hpp"

namespace airfedga::sim {
namespace {

TEST(Cluster, KappaWithinConfiguredRange) {
  ClusterModel::Config cfg;
  cfg.kappa_min = 1.0;
  cfg.kappa_max = 10.0;
  ClusterModel cm(100, cfg);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_GE(cm.kappa(i), 1.0);
    EXPECT_LT(cm.kappa(i), 10.0);
  }
}

TEST(Cluster, LocalTimeScalesBase) {
  ClusterModel::Config cfg;
  cfg.base_seconds = 6.0;
  ClusterModel cm(10, cfg);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(cm.local_time(i), cm.kappa(i) * 6.0);
}

TEST(Cluster, LocalTimesVectorMatches) {
  ClusterModel cm(20, {});
  const auto l = cm.local_times();
  ASSERT_EQ(l.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(l[i], cm.local_time(i));
}

TEST(Cluster, SpreadIsMaxMinusMin) {
  ClusterModel cm(50, {});
  const auto l = cm.local_times();
  const auto [mn, mx] = std::minmax_element(l.begin(), l.end());
  EXPECT_NEAR(cm.spread(), *mx - *mn, 1e-12);
}

TEST(Cluster, DeterministicPerSeed) {
  ClusterModel::Config cfg;
  cfg.seed = 5;
  ClusterModel a(10, cfg), b(10, cfg);
  EXPECT_EQ(a.local_times(), b.local_times());
  cfg.seed = 6;
  ClusterModel c(10, cfg);
  EXPECT_NE(a.local_times(), c.local_times());
}

TEST(Cluster, HeterogeneityActuallySpreads) {
  // With kappa ~ U[1,10) and 100 workers the spread should cover most of
  // the range, as in the paper's Fig. 7 (8.1s to 61.6s with base ~6s).
  ClusterModel::Config cfg;
  cfg.base_seconds = 6.0;
  ClusterModel cm(100, cfg);
  EXPECT_GT(cm.spread(), 6.0 * 7.0);
}

TEST(Cluster, Validation) {
  EXPECT_THROW(ClusterModel(0, {}), std::invalid_argument);
  ClusterModel::Config bad;
  bad.base_seconds = 0.0;
  EXPECT_THROW(ClusterModel(1, bad), std::invalid_argument);
  bad = {};
  bad.kappa_min = 0.0;
  EXPECT_THROW(ClusterModel(1, bad), std::invalid_argument);
  bad = {};
  bad.kappa_max = 0.5;  // < kappa_min
  EXPECT_THROW(ClusterModel(1, bad), std::invalid_argument);
}

}  // namespace
}  // namespace airfedga::sim
