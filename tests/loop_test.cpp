// Tests for the unified scheduling loop's policy API: cohort formation,
// trigger taxonomy, selection, aggregation timing, flush decisions, and
// staleness reweighting — each hook exercised in isolation against a
// prepared SchedulingLoop — plus the refactor's acceptance check: every
// ported mechanism reproduces its pre-refactor Metrics digest across lane
// counts.

#include "fl/loop.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <set>
#include <vector>

#include "fl/mechanisms.hpp"
#include "ml/zoo.hpp"
#include "util/stats.hpp"

namespace airfedga::fl {
namespace {

/// Same 12-worker setup as the parallel-determinism suite: small enough to
/// run in milliseconds, rich enough (stochastic batches, sharded eval,
/// label skew) to exercise every engine path.
struct Fixture {
  data::TrainTest data;
  FLConfig cfg;

  explicit Fixture(std::uint64_t seed = 7, std::size_t workers = 12) {
    data.train = data::make_synthetic_flat(16, {workers * 40, 6, 1.0, 0.3, seed});
    data.test = data::make_synthetic_flat(16, {240, 6, 1.0, 0.3, seed});
    util::Rng rng(seed);
    cfg.train = &data.train;
    cfg.test = &data.test;
    cfg.partition = data::partition_label_skew(data.train, workers, rng);
    cfg.model_factory = [] { return ml::make_softmax_regression(16, 6); };
    cfg.learning_rate = 0.3f;
    cfg.batch_size = 8;
    cfg.cluster.base_seconds = 6.0;
    cfg.cluster.seed = seed + 1;
    cfg.fading.seed = seed + 2;
    cfg.time_budget = 900.0;
    cfg.eval_every = 1;
    cfg.eval_samples = 240;
    cfg.eval_batch = 64;
    cfg.max_rounds = 25;
    cfg.seed = seed;
  }
};

void expect_partition(const data::WorkerGroups& cohorts, std::size_t n) {
  std::set<std::size_t> seen;
  for (const auto& c : cohorts) {
    EXPECT_FALSE(c.empty());
    for (auto w : c) {
      EXPECT_LT(w, n);
      EXPECT_TRUE(seen.insert(w).second) << "worker " << w << " in two cohorts";
    }
  }
  EXPECT_EQ(seen.size(), n);
}

// -- selection hooks ---------------------------------------------------

TEST(LoopPolicy, CohortShapesMatchEachMechanismsTopology) {
  Fixture f;
  Driver driver(f.cfg);
  const std::size_t n = driver.num_workers();

  // Synchronous mechanisms: one cohort holding everyone.
  FedAvg fedavg;
  SchedulingLoop sync_loop(driver, fedavg);
  ASSERT_EQ(sync_loop.cohorts().size(), 1u);
  expect_partition(sync_loop.cohorts(), n);

  // TiFL: `tiers` cohorts partitioning the workers by response time.
  TiFL tifl(MechanismConfig{.tiers = 3});
  SchedulingLoop tier_loop(driver, tifl);
  EXPECT_EQ(tier_loop.cohorts().size(), 3u);
  expect_partition(tier_loop.cohorts(), n);

  // Async mechanisms: every worker is its own cohort, and cohort_of is the
  // identity (staleness is tracked per worker).
  SemiAsync semi;
  SchedulingLoop buf_loop(driver, semi);
  ASSERT_EQ(buf_loop.cohorts().size(), n);
  expect_partition(buf_loop.cohorts(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(buf_loop.cohort_of(i), i);
}

TEST(LoopPolicy, TriggerTaxonomyCoversAllMechanisms) {
  EXPECT_EQ(FedAvg().trigger(), TriggerKind::kRoundBarrier);
  EXPECT_EQ(AirFedAvg().trigger(), TriggerKind::kRoundBarrier);
  EXPECT_EQ(DynamicAirComp().trigger(), TriggerKind::kRoundBarrier);
  EXPECT_EQ(TiFL().trigger(), TriggerKind::kCohortTimer);
  EXPECT_EQ(FedAsync().trigger(), TriggerKind::kCohortTimer);
  EXPECT_EQ(AirFedGA().trigger(), TriggerKind::kGroupReady);
  EXPECT_EQ(SemiAsync().trigger(), TriggerKind::kReadyBuffer);
}

TEST(LoopPolicy, DefaultSelectReturnsTheFullCohort) {
  Fixture f;
  Driver driver(f.cfg);
  FedAvg fedavg;
  SchedulingLoop loop(driver, fedavg);
  EXPECT_EQ(fedavg.select(loop, 0, 1), loop.cohorts()[0]);
}

TEST(LoopPolicy, DynamicSelectionFollowsTheGainQuantile) {
  Fixture f;
  Driver driver(f.cfg);
  DynamicAirComp dyn(MechanismConfig{.selection_quantile = 0.5});
  SchedulingLoop loop(driver, dyn);

  for (std::size_t round : {1UL, 2UL, 7UL}) {
    const auto selected = dyn.select(loop, 0, round);
    ASSERT_FALSE(selected.empty()) << "round " << round;
    // Exactly the workers whose gain this round clears the quantile.
    const auto gains = driver.substrate().gains(round);
    const double cutoff = util::quantile(gains, 0.5);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < gains.size(); ++i)
      if (gains[i] >= cutoff) expected.push_back(i);
    EXPECT_EQ(selected, expected) << "round " << round;
    EXPECT_LT(selected.size(), driver.num_workers());  // quantile 0.5 really drops someone
  }

  // Quantile 0 admits everyone: selection degenerates to Air-FedAvg.
  DynamicAirComp all(MechanismConfig{.selection_quantile = 0.0});
  EXPECT_EQ(all.select(loop, 0, 1).size(), driver.num_workers());
}

// -- aggregation-trigger hooks -----------------------------------------

TEST(LoopPolicy, DefaultAggregateTimeIsStartPlusComputePlusUpload) {
  Fixture f;
  Driver driver(f.cfg);
  FedAvg fedavg;
  SchedulingLoop loop(driver, fedavg);
  const auto& members = loop.cohorts()[0];
  double slowest = 0.0;
  for (auto m : members) slowest = std::max(slowest, loop.local_times()[m]);
  const double upload = fedavg.upload_seconds(loop, members, 10.0);
  EXPECT_EQ(fedavg.aggregate_time(loop, 0, members, 10.0), 10.0 + (slowest + upload));
}

TEST(LoopPolicy, FedAsyncAggregateTimeKeepsTheOriginalAssociation) {
  Fixture f;
  Driver driver(f.cfg);
  FedAsync fa;
  SchedulingLoop loop(driver, fa);
  const std::vector<std::size_t> members = {3};
  const double upload = fa.upload_seconds(loop, members, 10.0);
  // (start + l_i) + upload — the seed implementation's left-to-right
  // association, preserved bit for bit.
  EXPECT_EQ(fa.aggregate_time(loop, 3, members, 10.0), (10.0 + loop.local_times()[3]) + upload);
}

TEST(LoopPolicy, SemiAsyncFlushesAtAggregateCount) {
  Fixture f;
  Driver driver(f.cfg);
  SemiAsync semi(MechanismConfig{.aggregate_count = 3, .staleness_bound = 100});
  SchedulingLoop loop(driver, semi);
  EXPECT_FALSE(semi.should_flush(loop, {0}));
  EXPECT_FALSE(semi.should_flush(loop, {0, 5}));
  EXPECT_TRUE(semi.should_flush(loop, {0, 5, 7}));

  // K above the worker count clamps to N instead of starving the buffer.
  SemiAsync greedy(MechanismConfig{.aggregate_count = 100, .staleness_bound = 100});
  std::vector<std::size_t> everyone(driver.num_workers());
  std::iota(everyone.begin(), everyone.end(), std::size_t{0});
  EXPECT_FALSE(greedy.should_flush(loop, {0, 1, 2, 3}));
  EXPECT_TRUE(greedy.should_flush(loop, everyone));
}

TEST(LoopPolicy, SemiAsyncFlushesEarlyAtTheStalenessBound) {
  Fixture f;
  Driver driver(f.cfg);
  SemiAsync semi(MechanismConfig{.aggregate_count = 100, .staleness_bound = 2});
  SchedulingLoop loop(driver, semi);
  const auto model = loop.server().model_vector();

  // Fresh server: worker 0's upload is not stale, the buffer waits.
  EXPECT_FALSE(semi.should_flush(loop, {0}));

  // Two rounds committed by other cohorts make worker 0's pending upload
  // 2 rounds stale — the bound forces the flush even at buffer size 1.
  loop.server().complete_round(std::vector<std::size_t>{1}, model);
  EXPECT_FALSE(semi.should_flush(loop, {0}));
  loop.server().complete_round(std::vector<std::size_t>{2}, model);
  EXPECT_EQ(loop.server().staleness(0), 2u);
  EXPECT_TRUE(semi.should_flush(loop, {0}));
}

// -- staleness-weighting hooks -----------------------------------------

TEST(LoopPolicy, FedAsyncReweightMatchesTheDampedMixingFormula) {
  Fixture f;
  Driver driver(f.cfg);
  FedAsync fa(MechanismConfig{.mixing = 0.6, .damping = 0.5});
  SchedulingLoop loop(driver, fa);
  const std::vector<float> w_prev = {1.0f, -2.0f, 0.5f};
  std::vector<float> w_next = {3.0f, 0.0f, -1.0f};
  const double tau = 3.0;
  fa.reweight(loop, w_prev, w_next, tau);
  const double alpha = 0.6 / std::pow(1.0 + tau, 0.5);
  for (std::size_t d = 0; d < w_prev.size(); ++d) {
    const float expected =
        static_cast<float>((1.0 - alpha) * w_prev[d] + alpha * (d == 0 ? 3.0f : d == 1 ? 0.0f : -1.0f));
    EXPECT_EQ(w_next[d], expected) << "dim " << d;
  }
}

TEST(LoopPolicy, SemiAsyncReweightAppliesTheConfiguredSchedule) {
  Fixture f;
  Driver driver(f.cfg);
  const std::vector<float> w_prev = {1.0f, -2.0f};
  const std::vector<float> cand = {3.0f, 2.0f};
  const double tau = 2.0;

  SemiAsync poly(MechanismConfig{.mixing = 0.8, .damping = 0.5, .damping_schedule = "poly"});
  SchedulingLoop loop(driver, poly);
  std::vector<float> w_poly = cand;
  poly.reweight(loop, w_prev, w_poly, tau);
  const double sigma_poly = 0.8 / std::pow(1.0 + tau, 0.5);
  for (std::size_t d = 0; d < cand.size(); ++d)
    EXPECT_EQ(w_poly[d], static_cast<float>(w_prev[d] + sigma_poly * (cand[d] - w_prev[d])));

  SemiAsync exp(MechanismConfig{.mixing = 0.8, .damping = 0.5, .damping_schedule = "exp"});
  std::vector<float> w_exp = cand;
  exp.reweight(loop, w_prev, w_exp, tau);
  const double sigma_exp = 0.8 * std::exp(-0.5 * tau);
  for (std::size_t d = 0; d < cand.size(); ++d)
    EXPECT_EQ(w_exp[d], static_cast<float>(w_prev[d] + sigma_exp * (cand[d] - w_prev[d])));

  // tau = 0: both schedules reduce to plain mixing.
  std::vector<float> w0 = cand;
  poly.reweight(loop, w_prev, w0, 0.0);
  for (std::size_t d = 0; d < cand.size(); ++d)
    EXPECT_EQ(w0[d], static_cast<float>(w_prev[d] + 0.8 * (cand[d] - w_prev[d])));
}

TEST(LoopPolicy, AirFedGAReweightIsIdentityUnlessDamped) {
  Fixture f;
  Driver driver(f.cfg);
  const std::vector<float> w_prev = {1.0f, -1.0f};
  const std::vector<float> cand = {5.0f, 3.0f};

  AirFedGA plain;
  SchedulingLoop loop(driver, plain);
  std::vector<float> w = cand;
  plain.reweight(loop, w_prev, w, /*tau=*/4.0);
  EXPECT_EQ(w, cand);  // the paper's Alg. 1 applies no staleness damping

  AirFedGA damped(MechanismConfig{.staleness_damping = 0.5});
  w = cand;
  damped.reweight(loop, w_prev, w, /*tau=*/4.0);
  const double damp = 1.0 / std::pow(5.0, 0.5);
  for (std::size_t d = 0; d < cand.size(); ++d)
    EXPECT_EQ(w[d], static_cast<float>(w_prev[d] + damp * (cand[d] - w_prev[d])));
}

TEST(LoopPolicy, MultiGroupCommitAdvancesOneRoundAndResetsEveryGroup) {
  ParameterServer server({1.0f, 2.0f}, 4);
  server.ready(0, 1);
  server.ready(2, 1);
  server.complete_round(std::vector<std::size_t>{0, 2}, {3.0f, 4.0f});
  EXPECT_EQ(server.round(), 1u);  // one buffered flush = one global round
  EXPECT_EQ(server.ready_count(0), 0u);
  EXPECT_EQ(server.ready_count(2), 0u);
  EXPECT_EQ(server.base_version(0), 1u);
  EXPECT_EQ(server.base_version(2), 1u);
  EXPECT_EQ(server.base_version(1), 0u);  // untouched cohorts keep their base
  EXPECT_EQ(server.staleness(1), 1u);
  EXPECT_EQ(server.model_vector(), (std::vector<float>{3.0f, 4.0f}));

  EXPECT_THROW(server.complete_round(std::vector<std::size_t>{}, {0.0f, 0.0f}),
               std::invalid_argument);
  EXPECT_THROW(server.complete_round(std::vector<std::size_t>{9}, {0.0f, 0.0f}),
               std::out_of_range);
}

TEST(LoopPolicy, CheckRejectsBadSemiAsyncKnobsBeforeAnyRunState) {
  Fixture f;
  EXPECT_THROW(SemiAsync(MechanismConfig{.mixing = 0.0}).run(f.cfg), std::invalid_argument);
  EXPECT_THROW(SemiAsync(MechanismConfig{.damping = -0.1}).run(f.cfg), std::invalid_argument);
  EXPECT_THROW(SemiAsync(MechanismConfig{.aggregate_count = 0}).run(f.cfg),
               std::invalid_argument);
  EXPECT_THROW(SemiAsync(MechanismConfig{.damping_schedule = "linear"}).run(f.cfg),
               std::invalid_argument);
}

// -- refactor acceptance: digest equivalence ---------------------------

// Golden Metrics::digest() values captured from the pre-refactor
// per-mechanism loops on this fixture (x86-64). The unified loop must
// reproduce every one of them at every lane count: the digest covers the
// full metric series and the final model bits, so a match means the
// refactor changed no observable behaviour. Digests depend on the FP
// contraction behaviour of the ISA (see the PR-5 cross-ISA caveat), so the
// assertion is x86-64-only; the thread-invariance half runs everywhere via
// parallel_determinism_test.
TEST(LoopDigests, EveryPortedMechanismMatchesItsPreRefactorDigest) {
#if !defined(__x86_64__)
  GTEST_SKIP() << "golden digests are x86-64-specific (FP contraction)";
#else
  struct Golden {
    const char* label;
    const char* digest;
    std::function<Metrics(const FLConfig&)> run;
  };
  const std::vector<Golden> goldens = {
      {"fedavg", "bb171646c73cf785", [](const FLConfig& c) { return FedAvg().run(c); }},
      {"airfedavg", "38c2931267c8d221", [](const FLConfig& c) { return AirFedAvg().run(c); }},
      {"dynamic", "d3d01912a3b9ba79",
       [](const FLConfig& c) {
         return DynamicAirComp(MechanismConfig{.selection_quantile = 0.5}).run(c);
       }},
      {"tifl", "faf62aad3f041464",
       [](const FLConfig& c) { return TiFL(MechanismConfig{.tiers = 3}).run(c); }},
      {"fedasync", "ff96ef9dfa60ac7a",
       [](const FLConfig& c) {
         return FedAsync(MechanismConfig{.mixing = 0.6, .damping = 0.5}).run(c);
       }},
      {"airfedga", "260d02f29dc076f1", [](const FLConfig& c) { return AirFedGA().run(c); }},
      {"airfedga_damped", "5b42d13ca1c1fbc3",
       [](const FLConfig& c) {
         return AirFedGA(MechanismConfig{.staleness_damping = 0.5}).run(c);
       }},
  };
  for (const auto& g : goldens)
    for (std::size_t threads : {1UL, 2UL, 4UL}) {
      Fixture f;
      f.cfg.threads = threads;
      const Metrics m = g.run(f.cfg);
      EXPECT_EQ(m.digest(), g.digest) << g.label << " @" << threads << " lanes";
    }
#endif
}

}  // namespace
}  // namespace airfedga::fl
