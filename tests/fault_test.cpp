// Tests for the deterministic fault-injection registry: spec parsing,
// counted vs detail points, throw/throw_once actions, environment arming,
// and the kill action's crash-simulating exit (a gtest death test).

#include "util/fault.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace airfedga::util::fault {
namespace {

/// Every test leaves the process-global registry clean; a leaked armed
/// spec would fire in an unrelated later test.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm_all(); }
  void TearDown() override { disarm_all(); }
};

TEST_F(FaultTest, NothingFiresWhenUnarmed) {
  EXPECT_FALSE(any_armed());
  hit("anything");
  hit("anything", "detail");
}

TEST_F(FaultTest, CountedPointFiresOnTheArmedOrdinal) {
  arm("after_variant:3:throw");
  EXPECT_TRUE(any_armed());
  hit("after_variant");
  hit("after_variant");
  EXPECT_THROW(hit("after_variant"), InjectedFault);
  hit("after_variant");  // past the ordinal: silent again
}

TEST_F(FaultTest, OmittedArgMeansFirstHit) {
  arm("before_variant:throw");  // "throw" parses as the action, arg absent
  EXPECT_THROW(hit("before_variant"), InjectedFault);
}

TEST_F(FaultTest, DetailPointMatchesItsStringOnly) {
  arm("mid_write:results:throw");
  hit("mid_write", "manifest");
  hit("mid_write", "stash");
  EXPECT_THROW(hit("mid_write", "results"), InjectedFault);
  // A plain `throw` (not throw_once) fires on every match.
  EXPECT_THROW(hit("mid_write", "results"), InjectedFault);
}

TEST_F(FaultTest, NumericArgAlsoMatchesNumericDetails) {
  // variant_run's details are variant indices; "variant_run:2" must select
  // variant 2, not "the second hit of some counted point".
  arm("variant_run:2:throw");
  hit("variant_run", "0");
  hit("variant_run", "1");
  EXPECT_THROW(hit("variant_run", "2"), InjectedFault);
}

TEST_F(FaultTest, ThrowOnceDisarmsAfterFiring) {
  arm("variant_run:1:throw_once");
  EXPECT_THROW(hit("variant_run", "1"), InjectedFault);
  hit("variant_run", "1");  // spent: the retry succeeds
}

TEST_F(FaultTest, DisarmAllClearsEverything) {
  arm("p:1:throw");
  disarm_all();
  EXPECT_FALSE(any_armed());
  hit("p");
}

TEST_F(FaultTest, RejectsMalformedSpecs) {
  EXPECT_THROW(arm(""), std::invalid_argument);
  EXPECT_THROW(arm(":1"), std::invalid_argument);
  EXPECT_THROW(arm("p:1:explode"), std::invalid_argument);
}

TEST_F(FaultTest, ArmsCommaSeparatedSpecsFromTheEnvironment) {
  ASSERT_EQ(::setenv("AIRFEDGA_FAULT_TEST_VAR", "a:1:throw,b:foo:throw", 1), 0);
  arm_from_env("AIRFEDGA_FAULT_TEST_VAR");
  EXPECT_THROW(hit("a"), InjectedFault);
  EXPECT_THROW(hit("b", "foo"), InjectedFault);
  ::unsetenv("AIRFEDGA_FAULT_TEST_VAR");
}

TEST_F(FaultTest, ArmFromEnvIsANoOpWhenUnset) {
  ::unsetenv("AIRFEDGA_FAULT_TEST_VAR");
  arm_from_env("AIRFEDGA_FAULT_TEST_VAR");
  EXPECT_FALSE(any_armed());
}

TEST_F(FaultTest, KillActionExitsWithTheDistinctiveCode) {
  // The kill action must terminate immediately (no unwinding, no flushes),
  // simulating a crash; gtest runs the statement in a forked child.
  EXPECT_EXIT(
      {
        arm("boom");  // default action: kill
        hit("boom");
      },
      ::testing::ExitedWithCode(kKillExitCode), "");
}

}  // namespace
}  // namespace airfedga::util::fault
