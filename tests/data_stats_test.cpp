#include <gtest/gtest.h>

#include <cmath>

#include "data/data_stats.hpp"

namespace airfedga::data {
namespace {

/// Builds a dataset with an explicit label sequence so the statistics can
/// be hand-checked.
Dataset explicit_labels(std::vector<int> labels, std::size_t num_classes) {
  Dataset ds;
  ds.num_classes = num_classes;
  ds.ys = std::move(labels);
  ds.xs = ml::Tensor({ds.ys.size(), 2});
  return ds;
}

TEST(DataStats, HandComputedProportions) {
  // Worker 0: labels {0, 0, 1}; worker 1: labels {1}.
  Dataset ds = explicit_labels({0, 0, 1, 1}, 2);
  Partition p = {{0, 1, 2}, {3}};
  DataStats st(ds, p);

  EXPECT_EQ(st.total_size(), 4u);
  EXPECT_EQ(st.worker_size(0), 3u);
  EXPECT_EQ(st.worker_size(1), 1u);
  EXPECT_DOUBLE_EQ(st.alpha(0), 0.75);
  EXPECT_DOUBLE_EQ(st.alpha(1), 0.25);
  EXPECT_DOUBLE_EQ(st.lambda(0), 0.5);
  EXPECT_DOUBLE_EQ(st.lambda(1), 0.5);
  EXPECT_EQ(st.worker_class_size(0, 0), 2u);
  EXPECT_EQ(st.worker_class_size(0, 1), 1u);
  EXPECT_DOUBLE_EQ(st.alpha_class(0, 0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(st.alpha_class(1, 1), 1.0);
}

TEST(DataStats, GroupQuantities) {
  Dataset ds = explicit_labels({0, 0, 1, 1, 1, 0}, 2);
  Partition p = {{0}, {1}, {2, 3}, {4, 5}};
  DataStats st(ds, p);

  const std::vector<std::size_t> group = {0, 2};  // workers 0 and 2
  EXPECT_EQ(st.group_size(group), 3u);
  EXPECT_DOUBLE_EQ(st.beta(group), 0.5);
  // Group holds labels {0, 1, 1} -> beta^0 = 1/3, beta^1 = 2/3.
  EXPECT_DOUBLE_EQ(st.beta_class(group, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(st.beta_class(group, 1), 2.0 / 3.0);
}

TEST(DataStats, EmdHandComputed) {
  // Global: 50/50. Group with only label 0: |0.5-1| + |0.5-0| = 1.0.
  Dataset ds = explicit_labels({0, 0, 1, 1}, 2);
  Partition p = {{0, 1}, {2, 3}};
  DataStats st(ds, p);
  EXPECT_DOUBLE_EQ(st.emd({0}), 1.0);
  EXPECT_DOUBLE_EQ(st.emd({1}), 1.0);
  EXPECT_DOUBLE_EQ(st.emd({0, 1}), 0.0);
}

TEST(DataStats, PaperOriginalEmdIs1Point8) {
  // §VI-B3: 10 classes, each worker holding a single class has
  // EMD = |1/10 - 1| + 9 * |1/10 - 0| = 1.8.
  std::vector<int> labels;
  for (int k = 0; k < 10; ++k)
    for (int i = 0; i < 10; ++i) labels.push_back(k);
  Dataset ds = explicit_labels(std::move(labels), 10);
  Partition p(10);
  for (std::size_t w = 0; w < 10; ++w)
    for (std::size_t i = 0; i < 10; ++i) p[w].push_back(w * 10 + i);
  DataStats st(ds, p);

  WorkerGroups singletons;
  for (std::size_t w = 0; w < 10; ++w) singletons.push_back({w});
  EXPECT_NEAR(st.mean_emd(singletons), 1.8, 1e-12);
  EXPECT_NEAR(st.worker_emd(0), 1.8, 1e-12);
}

TEST(DataStats, PerfectlyMixedGroupHasZeroEmd) {
  std::vector<int> labels;
  for (int k = 0; k < 10; ++k)
    for (int i = 0; i < 10; ++i) labels.push_back(k);
  Dataset ds = explicit_labels(std::move(labels), 10);
  Partition p(10);
  for (std::size_t w = 0; w < 10; ++w)
    for (std::size_t i = 0; i < 10; ++i) p[w].push_back(w * 10 + i);
  DataStats st(ds, p);

  std::vector<std::size_t> all;
  for (std::size_t w = 0; w < 10; ++w) all.push_back(w);
  EXPECT_NEAR(st.emd(all), 0.0, 1e-12);
}

TEST(DataStats, MeanEmdAverages) {
  Dataset ds = explicit_labels({0, 0, 1, 1}, 2);
  Partition p = {{0, 1}, {2, 3}};
  DataStats st(ds, p);
  WorkerGroups g = {{0}, {1}};
  EXPECT_DOUBLE_EQ(st.mean_emd(g), 1.0);
  WorkerGroups mixed = {{0, 1}};
  EXPECT_DOUBLE_EQ(st.mean_emd(mixed), 0.0);
}

TEST(DataStats, EmptyWorkerShardAllowed) {
  Dataset ds = explicit_labels({0, 1}, 2);
  Partition p = {{0, 1}, {}};
  DataStats st(ds, p);
  EXPECT_EQ(st.worker_size(1), 0u);
  EXPECT_DOUBLE_EQ(st.alpha(1), 0.0);
  EXPECT_DOUBLE_EQ(st.alpha_class(1, 0), 0.0);
}

TEST(DataStats, RejectsEmptyPartition) {
  Dataset ds = explicit_labels({0, 1}, 2);
  Partition p = {{}, {}};
  EXPECT_THROW(DataStats(ds, p), std::invalid_argument);
}

TEST(ValidateGroups, AcceptsProperGrouping) {
  WorkerGroups g = {{0, 2}, {1, 3}};
  EXPECT_NO_THROW(validate_groups(g, 4));
}

TEST(ValidateGroups, RejectsEmptyGroup) {
  WorkerGroups g = {{0, 1}, {}};
  EXPECT_THROW(validate_groups(g, 2), std::invalid_argument);
}

TEST(ValidateGroups, RejectsDuplicateWorker) {
  WorkerGroups g = {{0, 1}, {1}};
  EXPECT_THROW(validate_groups(g, 2), std::invalid_argument);
}

TEST(ValidateGroups, RejectsMissingWorker) {
  WorkerGroups g = {{0, 1}};
  EXPECT_THROW(validate_groups(g, 3), std::invalid_argument);
}

TEST(ValidateGroups, RejectsOutOfRange) {
  WorkerGroups g = {{0, 5}};
  EXPECT_THROW(validate_groups(g, 2), std::invalid_argument);
}

}  // namespace
}  // namespace airfedga::data
