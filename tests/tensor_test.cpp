#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "ml/model.hpp"
#include "ml/tensor.hpp"

namespace airfedga::ml {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(t.shape_string(), "(2,3)");
}

TEST(Tensor, RejectsBadRank) {
  EXPECT_THROW(Tensor(std::vector<std::size_t>{}), std::invalid_argument);
  EXPECT_THROW(Tensor({1, 1, 1, 1, 1}), std::invalid_argument);
}

TEST(Tensor, RejectsDataShapeMismatch) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, At2RowMajor) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at2(0, 2), 2.0f);
  EXPECT_EQ(t.at2(1, 0), 3.0f);
}

TEST(Tensor, At4NchwLayout) {
  Tensor t({1, 2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(t.at4(0, 0, 0, 0), 0.0f);
  EXPECT_EQ(t.at4(0, 0, 1, 1), 3.0f);
  EXPECT_EQ(t.at4(0, 1, 0, 0), 4.0f);
  EXPECT_EQ(t.at4(0, 1, 1, 1), 7.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_EQ(r.at2(2, 1), 5.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, RandnStatistics) {
  util::Rng rng(3);
  Tensor t = Tensor::randn({100, 100}, rng, 0.5f);
  double sum = 0.0, sq = 0.0;
  for (float v : t.data()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(t.size());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(sq / n), 0.5, 0.02);
}

TEST(Tensor, NormMatchesHandComputed) {
  Tensor t({1, 2}, {3.0f, 4.0f});
  EXPECT_DOUBLE_EQ(t.norm(), 5.0);
}

TEST(Matmul, HandComputed2x2) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at2(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 50.0f);
}

TEST(Matmul, RejectsDimensionMismatch) {
  Tensor a({2, 3});
  Tensor b({2, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Matmul, IdentityIsNoop) {
  util::Rng rng(4);
  Tensor a = Tensor::randn({5, 5}, rng);
  Tensor eye({5, 5});
  for (std::size_t i = 0; i < 5; ++i) eye.at2(i, i) = 1.0f;
  Tensor c = matmul(a, eye);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(c[i], a[i]);
}

/// matmul_nt(a, b) must equal matmul(a, b^T); matmul_tn(a, b) = a^T b.
class MatmulVariants : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulVariants, TransposedFormsAgree) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(m * 100 + k * 10 + n));
  Tensor a = Tensor::randn({static_cast<std::size_t>(m), static_cast<std::size_t>(k)}, rng);
  Tensor b = Tensor::randn({static_cast<std::size_t>(k), static_cast<std::size_t>(n)}, rng);

  Tensor bt({static_cast<std::size_t>(n), static_cast<std::size_t>(k)});
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < n; ++j) bt.at2(j, i) = b.at2(i, j);
  Tensor at({static_cast<std::size_t>(k), static_cast<std::size_t>(m)});
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < k; ++j) at.at2(j, i) = a.at2(i, j);

  const Tensor ref = matmul(a, b);
  const Tensor via_nt = matmul_nt(a, bt);
  ASSERT_EQ(via_nt.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(via_nt[i], ref[i], 1e-4);

  // matmul_tn(a^T stored as `at`, ...) left implicit: check a^T(ab) below.
  (void)at;
  const Tensor tn = matmul_tn(a, ref);  // a^T (a b), shape (k, n)
  Tensor expect({static_cast<std::size_t>(k), static_cast<std::size_t>(n)});
  for (int kk = 0; kk < k; ++kk)
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int i = 0; i < m; ++i) acc += a.at2(static_cast<std::size_t>(i),
                                               static_cast<std::size_t>(kk)) *
                                         ref.at2(static_cast<std::size_t>(i),
                                                 static_cast<std::size_t>(j));
      expect.at2(static_cast<std::size_t>(kk), static_cast<std::size_t>(j)) = acc;
    }
  for (std::size_t i = 0; i < tn.size(); ++i) EXPECT_NEAR(tn[i], expect[i], 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulVariants,
                         testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                                         std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                                         std::make_tuple(33, 17, 9)));

TEST(VectorOps, AxpyAndDot) {
  std::vector<float> x = {1, 2, 3};
  std::vector<float> y = {10, 20, 30};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[2], 36.0f);
  EXPECT_DOUBLE_EQ(dot(x, x), 14.0);
  EXPECT_DOUBLE_EQ(squared_norm(x), 14.0);
}

TEST(VectorOps, SizeChecks) {
  std::vector<float> x = {1, 2};
  std::vector<float> y = {1};
  EXPECT_THROW(axpy(1.0f, x, y), std::invalid_argument);
  EXPECT_THROW(dot(x, y), std::invalid_argument);
}

TEST(AddInplace, ElementwiseSum) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {10, 20, 30, 40});
  add_inplace(a, b);
  EXPECT_FLOAT_EQ(a.at2(1, 1), 44.0f);
}

TEST(GatherRows, Matrix) {
  Tensor t({3, 2}, {0, 1, 10, 11, 20, 21});
  std::vector<std::size_t> idx = {2, 0};
  Tensor g = gather_rows(t, idx);
  EXPECT_EQ(g.dim(0), 2u);
  EXPECT_FLOAT_EQ(g.at2(0, 0), 20.0f);
  EXPECT_FLOAT_EQ(g.at2(1, 1), 1.0f);
}

TEST(GatherRows, Nchw) {
  Tensor t({2, 1, 2, 2}, {0, 1, 2, 3, 10, 11, 12, 13});
  std::vector<std::size_t> idx = {1};
  Tensor g = gather_rows(t, idx);
  EXPECT_EQ(g.dim(0), 1u);
  EXPECT_FLOAT_EQ(g.at4(0, 0, 1, 1), 13.0f);
}

TEST(GatherRows, RejectsOutOfRange) {
  Tensor t({2, 2});
  std::vector<std::size_t> idx = {2};
  EXPECT_THROW(gather_rows(t, idx), std::out_of_range);
}

}  // namespace
}  // namespace airfedga::ml
