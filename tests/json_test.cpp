// Tests for the scenario layer's strict JSON parser/writer: malformed
// input (with line/column reporting), escapes, nesting, number edge cases,
// and dump -> parse round-trip fidelity.

#include "scenario/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace airfedga::scenario {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.25").as_number(), -3.25);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_DOUBLE_EQ(Json::parse("  17  ").as_number(), 17.0);  // surrounding whitespace
}

TEST(JsonParse, NumberEdgeCases) {
  EXPECT_DOUBLE_EQ(Json::parse("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(Json::parse("-0").as_number(), -0.0);
  EXPECT_DOUBLE_EQ(Json::parse("0.5").as_number(), 0.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("1E+3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e-2").as_number(), 0.025);
  EXPECT_DOUBLE_EQ(Json::parse("9007199254740991").as_number(), 9007199254740991.0);

  EXPECT_THROW(Json::parse("01"), JsonError);      // leading zero
  EXPECT_THROW(Json::parse("-01"), JsonError);
  EXPECT_THROW(Json::parse("1."), JsonError);      // digits required after '.'
  EXPECT_THROW(Json::parse(".5"), JsonError);      // leading digit required
  EXPECT_THROW(Json::parse("1e"), JsonError);      // exponent digits required
  EXPECT_THROW(Json::parse("+1"), JsonError);      // no leading plus
  EXPECT_THROW(Json::parse("NaN"), JsonError);
  EXPECT_THROW(Json::parse("Infinity"), JsonError);
  EXPECT_THROW(Json::parse("1e999"), JsonError);   // out of double range
}

TEST(JsonParse, StringsAndEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(Json::parse(R"("a\\b")").as_string(), "a\\b");
  EXPECT_EQ(Json::parse(R"("a\/b")").as_string(), "a/b");
  EXPECT_EQ(Json::parse(R"("\b\f\n\r\t")").as_string(), "\b\f\n\r\t");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");          // é, 2-byte UTF-8
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");      // €, 3-byte
  EXPECT_EQ(Json::parse(R"("😀")").as_string(),                 // 😀 surrogate pair
            "\xf0\x9f\x98\x80");

  EXPECT_THROW(Json::parse(R"("\x41")"), JsonError);        // invalid escape
  EXPECT_THROW(Json::parse(R"("\u12")"), JsonError);        // short hex
  EXPECT_THROW(Json::parse(R"("\u12zz")"), JsonError);      // bad hex digit
  EXPECT_THROW(Json::parse(R"("\ud83d")"), JsonError);      // lone high surrogate
  EXPECT_THROW(Json::parse(R"("\ude00")"), JsonError);      // lone low surrogate
  EXPECT_THROW(Json::parse(R"("\ud83dA")"), JsonError);  // bad pair
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("\"ctrl\nchar\""), JsonError);   // unescaped control char
}

TEST(JsonParse, NestingAndStructure) {
  const Json j = Json::parse(R"({
    "a": [1, 2, {"b": [true, null]}],
    "c": {"d": {"e": "deep"}}
  })");
  EXPECT_EQ(j.as_object().size(), 2u);
  EXPECT_DOUBLE_EQ(j.at("a").as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(j.at("a").as_array()[2].at("b").as_array()[0].as_bool());
  EXPECT_EQ(j.at("c").at("d").at("e").as_string(), "deep");

  EXPECT_TRUE(Json::parse("[]").as_array().empty());
  EXPECT_TRUE(Json::parse("{}").as_object().empty());

  // Deep nesting is bounded, not a stack overflow.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_THROW(Json::parse(deep), JsonError);
}

TEST(JsonParse, MalformedStructure) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("   "), JsonError);
  EXPECT_THROW(Json::parse("[1, 2"), JsonError);
  EXPECT_THROW(Json::parse("[1, 2,]"), JsonError);      // trailing comma
  EXPECT_THROW(Json::parse("{\"a\": 1,}"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);    // missing colon
  EXPECT_THROW(Json::parse("{a: 1}"), JsonError);       // unquoted key
  EXPECT_THROW(Json::parse("[1] tail"), JsonError);     // trailing garbage
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1, \"a\":2}"), JsonError);  // duplicate key
  EXPECT_THROW(Json::parse("// comment\n1"), JsonError);
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  try {
    Json::parse("{\n  \"a\": 1,\n  \"b\": @\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.column(), 8u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("column 8"), std::string::npos);
  }

  try {
    Json::parse("{\"a\": 1, \"a\": 2}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate object key \"a\""), std::string::npos);
  }
}

TEST(JsonDump, CompactAndPretty) {
  const Json j = Json::parse(R"({"a":[1,true,"x"],"b":null})");
  EXPECT_EQ(j.dump(), R"({"a":[1,true,"x"],"b":null})");
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find("{\n  \"a\": [\n    1,"), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), j);  // pretty print re-parses to the same value
}

TEST(JsonDump, StringEscaping) {
  Json j = Json::object();
  j.set("k", std::string("a\"b\\c\nd\te\x01"));
  const std::string out = j.dump();
  EXPECT_EQ(out, "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
  EXPECT_EQ(Json::parse(out), j);
}

TEST(JsonDump, NumberRoundTrip) {
  // Doubles survive dump -> parse exactly (shortest round-trip printing).
  for (double v : {0.1, 1.0 / 3.0, 6.02e23, 71.4e-6, -0.30000000000000004,
                   9007199254740991.0, 1e-300}) {
    const Json j(v);
    EXPECT_DOUBLE_EQ(Json::parse(j.dump()).as_number(), v) << j.dump();
  }
  // Integer-valued doubles print as integers.
  EXPECT_EQ(Json(42.0).dump(), "42");
  EXPECT_EQ(Json(-7.0).dump(), "-7");
  EXPECT_EQ(Json(0.0).dump(), "0");
}

TEST(JsonValue, ConstructionAndAccess) {
  Json obj = Json::object();
  obj.set("n", 1.5);
  obj.set("s", "text");
  obj.set("n", 2.5);  // set replaces
  EXPECT_DOUBLE_EQ(obj.at("n").as_number(), 2.5);
  EXPECT_TRUE(obj.contains("s"));
  EXPECT_FALSE(obj.contains("missing"));
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW(static_cast<void>(obj.at("missing")), std::runtime_error);

  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  EXPECT_EQ(arr.as_array().size(), 2u);

  EXPECT_THROW(static_cast<void>(arr.as_object()), std::runtime_error);  // names both types
  EXPECT_THROW(static_cast<void>(obj.as_number()), std::runtime_error);
  EXPECT_THROW(Json(std::numeric_limits<double>::quiet_NaN()), std::invalid_argument);
  EXPECT_THROW(Json(std::numeric_limits<double>::infinity()), std::invalid_argument);
}

}  // namespace
}  // namespace airfedga::scenario
