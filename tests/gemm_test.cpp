#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <tuple>
#include <vector>

#include "fl/mechanisms.hpp"
#include "ml/conv2d.hpp"
#include "ml/gemm.hpp"
#include "ml/model.hpp"
#include "ml/workspace.hpp"
#include "ml/zoo.hpp"
#include "util/thread_pool.hpp"

// Allocation-counting hook (shared with bench/micro_gemm.cpp): every
// operator new in this binary bumps the counters, so a test can assert
// that a region of the training hot path performs zero heap allocations.
#include "support/alloc_hook.hpp"

namespace {
struct AllocStats {
  std::size_t count;
  std::size_t bytes;
};

AllocStats alloc_stats() {
  const auto s = alloc_hook::stats();
  return {s.count, s.bytes};
}
}  // namespace

namespace airfedga::ml {
namespace {

std::vector<float> random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> m(rows * cols);
  for (auto& v : m) v = static_cast<float>(rng.normal());
  return m;
}

/// Relative-tolerance comparison: the blocked kernel accumulates in a
/// different (but fixed) order than the scalar reference, so values agree
/// to rounding, not bitwise.
void expect_close(const std::vector<float>& a, const std::vector<float>& b, std::size_t k,
                  const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  const double tol = 1e-5 * std::sqrt(static_cast<double>(k) + 1.0);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], tol + tol * std::abs(static_cast<double>(b[i])))
        << what << " at " << i;
}

class SgemmShapes
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(SgemmShapes, AllVariantsMatchScalarReference) {
  const auto [m, n, k] = GetParam();
  for (const Trans ta : {Trans::N, Trans::T}) {
    for (const Trans tb : {Trans::N, Trans::T}) {
      for (const float beta : {0.0f, 1.0f}) {
        const auto a = ta == Trans::N ? random_matrix(m, k, 1) : random_matrix(k, m, 1);
        const auto b = tb == Trans::N ? random_matrix(k, n, 2) : random_matrix(n, k, 2);
        const std::size_t lda = ta == Trans::N ? k : m;
        const std::size_t ldb = tb == Trans::N ? n : k;
        auto c = random_matrix(m, n, 3);  // nonzero start exercises beta
        auto c_ref = c;
        sgemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, beta, c.data(), n);
        sgemm_reference(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, beta, c_ref.data(), n);
        expect_close(c, c_ref, k,
                     "m=" + std::to_string(m) + " n=" + std::to_string(n) +
                         " k=" + std::to_string(k) + " ta=" + (ta == Trans::N ? "N" : "T") +
                         " tb=" + (tb == Trans::N ? "N" : "T") +
                         " beta=" + std::to_string(beta));
      }
    }
  }
}

// Edge shapes around every blocking boundary: single rows/columns, sizes
// straddling the MR/NR register tile, the MC/NC tile, and the KC depth
// panel, plus the paper's conv-lowering shapes.
INSTANTIATE_TEST_SUITE_P(
    Shapes, SgemmShapes,
    testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 97, 5),   // 1xN
                    std::make_tuple(97, 1, 5),                             // Nx1
                    std::make_tuple(3, 33, 7),                             // sub-tile
                    std::make_tuple(4, 32, 16),                            // exact MR/NR
                    std::make_tuple(5, 33, 17),                            // MR/NR + 1
                    std::make_tuple(64, 256, 256),                         // exact MC/NC/KC
                    std::make_tuple(65, 257, 257),                         // MC/NC/KC + 1
                    std::make_tuple(63, 255, 300),                         // MC/NC - 1, k > KC
                    std::make_tuple(13, 150, 70),                          // fig05 conv2-like
                    std::make_tuple(6, 200, 75)));                         // fig05 conv1-like

TEST(Sgemm, KZeroRespectsBeta) {
  auto c = random_matrix(3, 5, 4);
  const auto before = c;
  sgemm(Trans::N, Trans::N, 3, 5, 0, nullptr, 1, nullptr, 1, 1.0f, c.data(), 5);
  EXPECT_EQ(c, before);  // beta=1: untouched
  sgemm(Trans::N, Trans::N, 3, 5, 0, nullptr, 1, nullptr, 1, 0.0f, c.data(), 5);
  for (float v : c) EXPECT_EQ(v, 0.0f);  // beta=0: zeroed
}

TEST(Sgemm, RejectsUnsupportedBeta) {
  std::vector<float> a(4, 1.0f), b(4, 1.0f), c(4, 0.0f);
  EXPECT_THROW(sgemm(Trans::N, Trans::N, 2, 2, 2, a.data(), 2, b.data(), 2, 0.5f, c.data(), 2),
               std::invalid_argument);
}

TEST(Sgemm, BlockingGeometryIsExported) {
  const auto& blk = gemm_blocking();
  EXPECT_GT(blk.mr, 0u);
  EXPECT_GT(blk.nr, 0u);
  EXPECT_EQ(blk.mc % blk.mr, 0u);
  EXPECT_EQ(blk.nc % blk.nr, 0u);
}

// ---------------------------------------------------------------- conv ----

TEST(BatchedConv, ForwardMatchesPerSampleForward) {
  const std::size_t batch = 5, cin = 3, cout = 4, img = 7;
  Conv2D conv(cin, cout, 3, /*padding=*/1);
  util::Rng rng(9);
  conv.init(rng);
  Tensor x = Tensor::randn({batch, cin, img, img}, rng);
  const Tensor y = conv.forward(x);

  for (std::size_t s = 0; s < batch; ++s) {
    std::vector<std::size_t> idx = {s};
    Tensor xs = gather_rows(x, idx);
    const Tensor ys = conv.forward(xs);
    for (std::size_t i = 0; i < ys.size(); ++i) {
      const double ref = ys[i];
      EXPECT_NEAR(y[s * ys.size() + i], ref, 1e-5 + 1e-5 * std::abs(ref))
          << "sample " << s << " element " << i;
    }
  }
}

TEST(BatchedConv, BackwardMatchesPerSampleAccumulation) {
  const std::size_t batch = 4, cin = 2, cout = 3, img = 6;
  util::Rng rng(11);
  Conv2D batched(cin, cout, 3, 1);
  batched.init(rng);
  Conv2D per_sample(cin, cout, 3, 1);
  {  // identical weights
    auto src = batched.params();
    auto dst = per_sample.params();
    for (std::size_t b = 0; b < src.size(); ++b)
      std::copy(src[b].value.begin(), src[b].value.end(), dst[b].value.begin());
  }
  Tensor x = Tensor::randn({batch, cin, img, img}, rng);
  Tensor g = Tensor::randn({batch, cout, img, img}, rng);

  batched.forward(x);
  const Tensor dx = batched.backward(g);

  Tensor dx_ref = Tensor::zeros(x.shape());
  for (std::size_t s = 0; s < batch; ++s) {
    std::vector<std::size_t> idx = {s};
    Tensor xs = gather_rows(x, idx);
    Tensor gs = gather_rows(g, idx);
    per_sample.forward(xs);
    const Tensor dxs = per_sample.backward(gs);
    for (std::size_t i = 0; i < dxs.size(); ++i) dx_ref[s * dxs.size() + i] = dxs[i];
  }

  const std::size_t kdim = cin * 3 * 3 * img * img;  // accumulation depth scale
  for (std::size_t i = 0; i < dx.size(); ++i)
    EXPECT_NEAR(dx[i], dx_ref[i], 1e-4) << "dx element " << i;
  auto gb = batched.params();
  auto gp = per_sample.params();
  const double tol = 1e-5 * std::sqrt(static_cast<double>(kdim));
  for (std::size_t b = 0; b < gb.size(); ++b)
    for (std::size_t i = 0; i < gb[b].grad.size(); ++i)
      EXPECT_NEAR(gb[b].grad[i], gp[b].grad[i],
                  tol + tol * std::abs(static_cast<double>(gp[b].grad[i])))
          << "grad block " << b << " element " << i;
}

// Forward lowering is chunked so evaluation-sized batches don't pin
// eval-sized workspace blocks forever. Chunking must not change bits: the
// per-element k-order is untouched and chunks partition the output, so a
// big (chunked) batch must reproduce small (unchunked) batches exactly.
TEST(BatchedConv, ChunkedForwardBitIdenticalToSmallBatches) {
  // rows=8*5*5=200, np=28*28=784 -> 156800 floats/sample: a batch of 32
  // exceeds the 4M-float lowering cap, forcing chunks of 26 + 6 samples.
  const std::size_t batch = 32, cin = 8, cout = 16, img = 32;
  Conv2D conv(cin, cout, 5, /*padding=*/0);
  util::Rng rng(15);
  conv.init(rng);
  Tensor x = Tensor::randn({batch, cin, img, img}, rng);
  const Tensor y = conv.forward(x);

  const std::size_t half = batch / 2;
  std::vector<std::size_t> idx(half);
  for (std::size_t part = 0; part < 2; ++part) {
    for (std::size_t i = 0; i < half; ++i) idx[i] = part * half + i;
    Tensor xh = gather_rows(x, idx);
    const Tensor yh = conv.forward(xh);
    for (std::size_t i = 0; i < yh.size(); ++i)
      ASSERT_EQ(y[part * yh.size() + i], yh[i]) << "part " << part << " element " << i;
  }
}

// ----------------------------------------------------------- workspace ----

TEST(Workspace, ScopeRewindsAndBlocksAreRetained) {
  Workspace ws;
  {
    Workspace::Scope outer(ws);
    float* a = ws.floats(1000);
    a[0] = 1.0f;
    {
      Workspace::Scope inner(ws);
      float* b = ws.floats(1 << 20);  // forces a second block
      b[0] = 2.0f;
    }
    // Inner scope rewound: the same request reuses the retained block.
    const std::size_t blocks = ws.blocks_allocated();
    Workspace::Scope inner2(ws);
    float* c = ws.floats(1 << 20);
    c[0] = 3.0f;
    EXPECT_EQ(ws.blocks_allocated(), blocks);
    EXPECT_EQ(a[0], 1.0f);  // outer allocation untouched
  }
  EXPECT_GT(ws.floats_reserved(), 0u);
}

TEST(Workspace, SteadyStateTrainingAllocatesNoNewBlocks) {
  // Mixed batch sizes exercise rewind/reuse across differently-sized
  // im2col buffers; under the ASan CI leg this also proves the workspace
  // pointers stay in bounds across reuse.
  auto model = make_cnn_mnist(0.15, 12);
  util::Rng rng(13);
  model.init(rng);
  std::vector<int> y8(8), y4(4);
  for (int i = 0; i < 8; ++i) y8[static_cast<std::size_t>(i)] = i % 10;
  for (int i = 0; i < 4; ++i) y4[static_cast<std::size_t>(i)] = i % 10;
  Tensor x8 = Tensor::randn({8, 1, 12, 12}, rng);
  Tensor x4 = Tensor::randn({4, 1, 12, 12}, rng);
  for (int warm = 0; warm < 2; ++warm) {
    model.train_step(x8, y8, 0.01f);
    model.train_step(x4, y4, 0.01f);
  }
  const std::size_t blocks = Workspace::tls().blocks_allocated();
  for (int s = 0; s < 3; ++s) {
    model.train_step(x8, y8, 0.01f);
    model.train_step(x4, y4, 0.01f);
  }
  EXPECT_EQ(Workspace::tls().blocks_allocated(), blocks);
}

// ------------------------------------------------------- zero allocation --

TEST(ZeroAllocation, SteadyStateTrainStepDoesNotTouchTheHeap) {
  // Pin the kernels to the serial schedule: this is exactly the per-lane
  // training configuration (the nesting rule serializes parallel_for on
  // lanes), and it keeps the measurement free of pool-dispatch allocations.
  util::ThreadPool::SerialRegion serial;

  auto model = make_cnn_mnist(0.15, 12);
  util::Rng rng(17);
  model.init(rng);
  const std::size_t batch = 8;
  Tensor x = Tensor::randn({batch, 1, 12, 12}, rng);
  std::vector<int> y(batch);
  for (std::size_t i = 0; i < batch; ++i) y[i] = static_cast<int>(i % 10);

  for (int warm = 0; warm < 3; ++warm) model.train_step(x, y, 0.01f);

  const AllocStats before = alloc_stats();
  double loss = 0.0;
  for (int s = 0; s < 5; ++s) loss += model.train_step(x, y, 0.01f);
  const AllocStats after = alloc_stats();

  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_EQ(after.count - before.count, 0u)
      << "steady-state train_step allocated " << (after.bytes - before.bytes) << " bytes across "
      << (after.count - before.count) << " allocations";
}

TEST(ZeroAllocation, SteadyStateLocalUpdateDoesNotTouchTheHeap) {
  util::ThreadPool::SerialRegion serial;

  data::TrainTest data;
  data.train = data::make_synthetic_flat(16, {200, 4, 1.0, 0.3, 21});
  std::vector<std::size_t> shard(40);
  for (std::size_t i = 0; i < shard.size(); ++i) shard[i] = i;
  fl::Worker worker(0, data.train, shard, util::Rng(3));
  auto model = make_mlp(16, 4, 32);
  util::Rng rng(23);
  model.init(rng);
  const auto global = model.parameters();

  for (int warm = 0; warm < 3; ++warm) worker.local_update(model, global, 0.05f, 2, 8);

  const AllocStats before = alloc_stats();
  worker.local_update(model, global, 0.05f, 2, 8);
  const AllocStats after = alloc_stats();

  EXPECT_EQ(after.count - before.count, 0u)
      << "steady-state local_update allocated " << (after.bytes - before.bytes) << " bytes";
}

// ---------------------------------------------------------- cooperation ---

TEST(CooperativeGemm, CooperateRunsEveryTileExactlyOnce) {
  util::ThreadPool pool(3);
  constexpr std::size_t kTiles = 64;
  std::vector<std::atomic<int>> hits(kTiles);
  for (auto& h : hits) h.store(0);
  // Run from a pool task so helpers are recruited from genuinely idle
  // workers, like a training lane would.
  pool.submit([&] {
      pool.cooperate(kTiles, [&](std::size_t t) { hits[t].fetch_add(1); });
    }).get();
  for (std::size_t t = 0; t < kTiles; ++t) EXPECT_EQ(hits[t].load(), 1) << "tile " << t;
}

TEST(CooperativeGemm, CooperatePropagatesExceptions) {
  util::ThreadPool pool(2);
  auto fut = pool.submit([&] {
    pool.cooperate(16, [](std::size_t t) {
      if (t == 7) throw std::runtime_error("tile failure");
    });
  });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(CooperativeGemm, InlineWhenNoWorkers) {
  util::ThreadPool pool(0);
  std::vector<int> hits(8, 0);
  pool.cooperate(8, [&](std::size_t t) { ++hits[t]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(CooperativeGemm, CooperativeResultIsBitIdenticalToSerial) {
  const std::size_t m = 70, n = 300, k = 150;
  const auto a = random_matrix(m, k, 31);
  const auto b = random_matrix(k, n, 32);
  std::vector<float> c_serial(m * n, 0.0f), c_coop(m * n, 0.0f);
  {
    util::ThreadPool::SerialRegion serial;
    sgemm(Trans::N, Trans::N, m, n, k, a.data(), k, b.data(), n, 0.0f, c_serial.data(), n);
  }
  const std::size_t saved = gemm_coop_min_flops();
  set_gemm_coop_min_flops(0);  // force cooperation regardless of size
  util::ThreadPool pool(3);
  pool.submit([&] {
        util::ThreadPool::CooperationScope coop(pool);
        sgemm(Trans::N, Trans::N, m, n, k, a.data(), k, b.data(), n, 0.0f, c_coop.data(), n);
      })
      .get();
  set_gemm_coop_min_flops(saved);
  for (std::size_t i = 0; i < c_serial.size(); ++i)
    ASSERT_EQ(c_serial[i], c_coop[i]) << "element " << i;
}

// The acceptance criterion's digest sweep, at test scale: a CNN federated
// run must produce bit-identical metrics across 1/2/4 training lanes with
// cooperative GEMM forced on for every kernel call.
TEST(CooperativeGemm, TrainingDigestsBitIdenticalAcrossLaneCounts) {
  const std::size_t saved = gemm_coop_min_flops();
  set_gemm_coop_min_flops(0);

  data::TrainTest data;
  data.train = data::make_synthetic_image(1, 8, 8, {240, 4, 1.0, 0.3, 41});
  data.test = data::make_synthetic_image(1, 8, 8, {80, 4, 1.0, 0.3, 42});
  fl::FLConfig cfg;
  util::Rng rng(43);
  cfg.train = &data.train;
  cfg.test = &data.test;
  cfg.partition = data::partition_label_skew(data.train, 6, rng);
  cfg.model_factory = [] { return make_cnn_mnist(0.2, 8); };
  cfg.learning_rate = 0.05f;
  cfg.batch_size = 8;
  cfg.cluster.seed = 44;
  cfg.fading.seed = 45;
  cfg.time_budget = 400.0;
  cfg.eval_every = 1;
  cfg.eval_samples = 80;
  cfg.eval_batch = 20;
  cfg.max_rounds = 4;
  cfg.seed = 43;
  cfg.cooperative_gemm = true;

  std::string reference;
  for (const std::size_t threads : {1UL, 2UL, 4UL}) {
    cfg.threads = threads;
    fl::AirFedGA mech;
    const fl::Metrics metrics = mech.run(cfg);
    ASSERT_FALSE(metrics.empty());
    if (reference.empty()) {
      reference = metrics.digest();
    } else {
      EXPECT_EQ(metrics.digest(), reference) << "@" << threads << " lanes";
    }
  }
  set_gemm_coop_min_flops(saved);
}

}  // namespace
}  // namespace airfedga::ml
