#include <gtest/gtest.h>

#include <cmath>

#include "core/convergence.hpp"
#include "core/power_control.hpp"
#include "util/rng.hpp"

namespace airfedga::core {
namespace {

PowerControlInput paper_like_input(std::uint64_t seed, std::size_t members = 10) {
  util::Rng rng(seed);
  PowerControlInput in;
  in.model_bound_sq = 600.0;
  in.sigma0_sq = 1.0;
  in.gains.resize(members);
  in.data_sizes.resize(members);
  in.energy_caps.resize(members);
  double total = 0.0;
  for (std::size_t i = 0; i < members; ++i) {
    in.gains[i] = rng.rayleigh(0.8) + 0.1;
    in.data_sizes[i] = 100.0;
    in.energy_caps[i] = 10.0;
    total += in.data_sizes[i];
  }
  in.group_data = total;
  return in;
}

TEST(PowerControl, Converges) {
  const auto res = optimize_power(paper_like_input(1));
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.sigma, 0.0);
  EXPECT_GT(res.eta, 0.0);
  EXPECT_LT(res.iterations, 50);
}

TEST(PowerControl, SigmaRespectsEnergyBound) {
  const auto in = paper_like_input(2);
  const auto res = optimize_power(in);
  EXPECT_LE(res.sigma, sigma_energy_bound(in) + 1e-12);
}

TEST(PowerControl, EnergyConstraintSatisfiedPerWorker) {
  // Eq. 46: E_i = (d_i sigma / h_i)^2 W^2 <= E_cap for every member, when
  // the local model norm is at the bound W.
  const auto in = paper_like_input(3);
  const auto res = optimize_power(in);
  for (std::size_t i = 0; i < in.gains.size(); ++i) {
    const double p = in.data_sizes[i] * res.sigma / in.gains[i];
    EXPECT_LE(p * p * in.model_bound_sq, in.energy_caps[i] * (1.0 + 1e-9));
  }
}

TEST(PowerControl, EtaSatisfiesClosedFormAtFixedPoint) {
  // Eq. 44 must hold at the converged point.
  const auto in = paper_like_input(4);
  const auto res = optimize_power(in);
  const double numer = res.sigma * res.sigma * in.model_bound_sq +
                       in.sigma0_sq / (in.group_data * in.group_data);
  const double denom = res.sigma * in.model_bound_sq;
  const double expected_eta = (numer / denom) * (numer / denom);
  EXPECT_NEAR(res.eta, expected_eta, 1e-9 * expected_eta);
}

TEST(PowerControl, ErrorMatchesEq30) {
  const auto in = paper_like_input(5);
  const auto res = optimize_power(in);
  EXPECT_NEAR(res.error,
              aggregation_error(res.sigma, res.eta, in.model_bound_sq, in.sigma0_sq,
                                in.group_data),
              1e-15);
}

/// Property test: the converged (sigma*, eta*) is a coordinate-wise
/// minimum of C_t — no feasible perturbation of sigma alone or eta alone
/// improves the objective.
class PowerControlOptimality : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PowerControlOptimality, CoordinateWiseMinimal) {
  const auto in = paper_like_input(GetParam());
  const auto res = optimize_power(in);
  const double cap = sigma_energy_bound(in);
  const double c_star = res.error;

  for (double f : {0.9, 0.99, 1.01, 1.1}) {
    // Perturb eta.
    const double c_eta =
        aggregation_error(res.sigma, res.eta * f, in.model_bound_sq, in.sigma0_sq, in.group_data);
    EXPECT_GE(c_eta, c_star - 1e-12) << "eta perturbation " << f << " improved C";
    // Perturb sigma within the feasible region.
    const double s = res.sigma * f;
    if (s <= cap) {
      const double c_sigma =
          aggregation_error(s, res.eta, in.model_bound_sq, in.sigma0_sq, in.group_data);
      EXPECT_GE(c_sigma, c_star - 1e-12) << "sigma perturbation " << f << " improved C";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerControlOptimality,
                         testing::Values(10u, 11u, 12u, 13u, 14u, 15u, 16u, 17u));

TEST(PowerControl, NoiselessChannelGivesUnbiasedScaling) {
  // With sigma0 = 0, the optimum is sigma = sqrt(eta) exactly (C = 0).
  auto in = paper_like_input(6);
  in.sigma0_sq = 0.0;
  const auto res = optimize_power(in);
  EXPECT_NEAR(res.sigma / std::sqrt(res.eta), 1.0, 1e-9);
  EXPECT_NEAR(res.error, 0.0, 1e-12);
}

TEST(PowerControl, TightEnergyBudgetRaisesError) {
  auto rich = paper_like_input(7);
  auto poor = paper_like_input(7);
  for (auto& e : poor.energy_caps) e = 0.01;
  const auto r_rich = optimize_power(rich);
  const auto r_poor = optimize_power(poor);
  EXPECT_LT(r_poor.sigma, r_rich.sigma);
  EXPECT_GT(r_poor.error, r_rich.error);
}

TEST(PowerControl, LargerGroupDataLowersNoiseError) {
  // Identical channels and energy caps; only D_jt differs. The 1/D_j^2
  // noise term (Eq. 30) must make the larger group strictly better.
  auto make = [](std::size_t members) {
    PowerControlInput in;
    in.model_bound_sq = 600.0;
    in.sigma0_sq = 1.0;
    in.gains.assign(members, 1.0);
    in.data_sizes.assign(members, 100.0);
    in.energy_caps.assign(members, 10.0);
    in.group_data = 100.0 * static_cast<double>(members);
    return in;
  };
  const auto r_small = optimize_power(make(2));
  const auto r_large = optimize_power(make(30));
  EXPECT_LT(r_large.error, r_small.error);
}

TEST(PowerControl, WeakestChannelDrivesSigmaBound) {
  auto in = paper_like_input(9);
  const double before = sigma_energy_bound(in);
  in.gains[0] = 1e-3;  // one worker in a deep fade
  const double after = sigma_energy_bound(in);
  EXPECT_LT(after, before);
  const auto res = optimize_power(in);
  EXPECT_LE(res.sigma, after + 1e-15);
}

TEST(PowerControl, InputValidation) {
  PowerControlInput in = paper_like_input(10);
  in.gains.pop_back();
  EXPECT_THROW(optimize_power(in), std::invalid_argument);

  in = paper_like_input(10);
  in.group_data = 0.0;
  EXPECT_THROW(optimize_power(in), std::invalid_argument);

  in = paper_like_input(10);
  in.gains[0] = 0.0;
  EXPECT_THROW(optimize_power(in), std::invalid_argument);

  in = paper_like_input(10);
  in.energy_caps[0] = -1.0;
  EXPECT_THROW(optimize_power(in), std::invalid_argument);

  PowerControlInput empty;
  empty.gains.clear();
  EXPECT_THROW(optimize_power(empty), std::invalid_argument);
}

}  // namespace
}  // namespace airfedga::core
