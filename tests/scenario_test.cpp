// Tests for ScenarioSpec: JSON round-trip fidelity, strict from_json
// (unknown keys, wrong types, path-carrying messages), validate()
// rejection messages, the preset registry, and preset <-> bench config
// equivalence for the refactored figure benches.

#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include "data/partition.hpp"
#include "ml/zoo.hpp"
#include "scenario/presets.hpp"

namespace airfedga::scenario {
namespace {

ScenarioSpec minimal_spec() {
  ScenarioSpec s;
  s.name = "test";
  s.dataset = {"mnist_like", 200, 50, 1};
  s.model = {.kind = "mlp", .input_dim = 784, .num_classes = 10, .hidden = 8};
  s.partition.workers = 4;
  s.mechanisms = {MechanismSpec{}};
  return s;
}

std::string validate_error(const ScenarioSpec& s) {
  try {
    s.validate();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(ScenarioSpec, RoundTripIsLossless) {
  ScenarioSpec s = minimal_spec();
  s.description = "desc";
  s.learning_rate = 0.123456789;
  s.batch_size = 0;
  s.cluster.kappa_max = 7.5;
  s.fading.pathloss_exponent = 2.0;
  s.stop_at_accuracy = 0.875;
  s.threads = 3;
  s.mechanisms.push_back([] {
    MechanismSpec m;
    m.kind = "tifl";
    m.tiers = 6;
    return m;
  }());
  s.mechanisms.push_back([] {
    MechanismSpec m;
    m.kind = "fedasync";
    m.mixing = 0.4;
    m.damping = 0.9;
    return m;
  }());

  const Json j = s.to_json();
  const ScenarioSpec back = ScenarioSpec::from_json(j);
  // Serialized forms are byte-identical => every field survived.
  EXPECT_EQ(back.to_json().dump(), j.dump());
  // And a parse of the dump round-trips too (dump -> parse -> dump).
  EXPECT_EQ(ScenarioSpec::from_json(Json::parse(j.dump(2))).to_json().dump(), j.dump());
  // Spot-check a few fields materialized correctly.
  EXPECT_EQ(back.mechanisms.size(), 3u);
  EXPECT_EQ(back.mechanisms[1].tiers, 6u);
  EXPECT_DOUBLE_EQ(back.mechanisms[2].damping, 0.9);
  EXPECT_EQ(back.threads, 3u);
  EXPECT_DOUBLE_EQ(back.learning_rate, 0.123456789);
}

TEST(ScenarioSpec, ConfigHashTracksContent) {
  const ScenarioSpec a = minimal_spec();
  ScenarioSpec b = minimal_spec();
  EXPECT_EQ(config_hash(a), config_hash(b));
  b.seed = 43;
  EXPECT_NE(config_hash(a), config_hash(b));
}

TEST(ScenarioSpec, FromJsonRejectsUnknownKeysWithPath) {
  Json j = minimal_spec().to_json();
  j.set("bogus", 1);
  try {
    ScenarioSpec::from_json(j);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus: unknown key"), std::string::npos);
  }

  Json j2 = minimal_spec().to_json();
  j2.find("run")->set("tyop", 1);
  try {
    ScenarioSpec::from_json(j2);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("run.tyop: unknown key"), std::string::npos);
  }

  Json j3 = minimal_spec().to_json();
  j3.find("mechanisms")->as_array()[0].set("xii", 0.5);
  try {
    ScenarioSpec::from_json(j3);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("mechanisms[0].xii: unknown key"), std::string::npos);
  }
}

TEST(ScenarioSpec, FromJsonRejectsWrongTypes) {
  Json j = minimal_spec().to_json();
  j.find("run")->set("seed", "not-a-number");
  EXPECT_THROW(ScenarioSpec::from_json(j), std::invalid_argument);

  Json j2 = minimal_spec().to_json();
  j2.find("run")->set("eval_every", -3);
  try {
    ScenarioSpec::from_json(j2);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("run.eval_every"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("non-negative integer"), std::string::npos);
  }

  Json j3 = minimal_spec().to_json();
  j3.set("mechanisms", "airfedga");
  EXPECT_THROW(ScenarioSpec::from_json(j3), std::invalid_argument);
}

TEST(ScenarioSpec, ValidateRejectsWithActionableMessages) {
  {
    ScenarioSpec s = minimal_spec();
    s.dataset.kind = "mnist";  // close but wrong
    const std::string msg = validate_error(s);
    EXPECT_NE(msg.find("dataset.kind"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mnist_like"), std::string::npos) << msg;  // names the valid kinds
  }
  {
    ScenarioSpec s = minimal_spec();
    s.mechanisms.clear();
    const std::string msg = validate_error(s);
    EXPECT_NE(msg.find("at least one mechanism"), std::string::npos) << msg;
  }
  {
    ScenarioSpec s = minimal_spec();
    s.mechanisms[0].kind = "airfedga";
    s.mechanisms[0].xi = 1.5;
    const std::string msg = validate_error(s);
    EXPECT_NE(msg.find("mechanisms[0].xi"), std::string::npos) << msg;
  }
  {
    ScenarioSpec s = minimal_spec();
    s.partition.kind = "dirichlet";
    s.partition.alpha = 0.0;
    const std::string msg = validate_error(s);
    EXPECT_NE(msg.find("partition.alpha"), std::string::npos) << msg;
  }
  {
    ScenarioSpec s = minimal_spec();
    s.partition.workers = 1000;  // more workers than samples
    const std::string msg = validate_error(s);
    EXPECT_NE(msg.find("partition.workers"), std::string::npos) << msg;
  }
  {
    ScenarioSpec s = minimal_spec();
    s.model.input_dim = 100;  // mismatched with mnist_like's 784
    const std::string msg = validate_error(s);
    EXPECT_NE(msg.find("model.input_dim"), std::string::npos) << msg;
    EXPECT_NE(msg.find("784"), std::string::npos) << msg;
  }
  {
    ScenarioSpec s = minimal_spec();
    s.model.kind = "cnn_mnist";  // conv model on a flat dataset
    const std::string msg = validate_error(s);
    EXPECT_NE(msg.find("image-shaped"), std::string::npos) << msg;
  }
  {
    ScenarioSpec s = minimal_spec();
    s.learning_rate = 0.0;
    EXPECT_NE(validate_error(s).find("train.learning_rate"), std::string::npos);
  }
  {
    ScenarioSpec s = minimal_spec();
    s.stop_at_accuracy = 80.0;  // percent instead of fraction
    EXPECT_NE(validate_error(s).find("fraction"), std::string::npos);
  }
}

TEST(Presets, AllRegisteredPresetsAreValidAndRoundTrip) {
  const auto names = preset_names();
  ASSERT_GE(names.size(), 10u);
  for (const auto& name : names) {
    const ScenarioSpec& s = preset(name);
    EXPECT_EQ(s.name, name);
    EXPECT_NO_THROW(s.validate()) << name;
    const Json j = s.to_json();
    EXPECT_EQ(ScenarioSpec::from_json(Json::parse(j.dump())).to_json().dump(), j.dump()) << name;
    EXPECT_FALSE(s.description.empty()) << name;
  }
  EXPECT_TRUE(has_preset("fig04_cnn_mnist"));
  EXPECT_FALSE(has_preset("fig99"));
  EXPECT_THROW(preset("fig99"), std::invalid_argument);
}

// The registry must reproduce exactly what the hand-built bench harness
// (bench::Experiment with the §VI-A defaults) used to construct, so the
// refactored fig benches keep their seed-for-seed behaviour. This
// replicates the old fig10 engine-workload construction and compares.
TEST(Presets, Fig10PresetMatchesLegacyBenchConfig) {
  const ScenarioSpec& spec = preset("fig10_scalability");
  BuiltScenario built = build(spec);

  // Legacy construction (what bench/fig10_scalability.cpp::run_workload
  // did before the registry): Experiment(make_mnist_like(3000, 800, 8),
  // 40 workers, mlp-64, seed 42) + the workload overrides.
  auto tt = data::make_mnist_like(3000, 800, 8);
  util::Rng rng(42);
  const auto partition = data::partition_label_skew(tt.train, 40, rng);

  ASSERT_EQ(built.cfg.partition.size(), partition.size());
  EXPECT_EQ(built.cfg.partition, partition);  // same shards in the same order
  EXPECT_EQ(built.cfg.train->size(), tt.train.size());
  EXPECT_EQ(built.cfg.test->size(), tt.test.size());
  EXPECT_EQ(built.cfg.train->ys, tt.train.ys);

  EXPECT_FLOAT_EQ(built.cfg.learning_rate, 1.0f);
  EXPECT_EQ(built.cfg.batch_size, 0u);
  EXPECT_DOUBLE_EQ(built.cfg.time_budget, 8000.0);
  EXPECT_EQ(built.cfg.eval_every, 5u);
  EXPECT_EQ(built.cfg.eval_samples, 500u);
  EXPECT_EQ(built.cfg.max_rounds, 60u);
  EXPECT_DOUBLE_EQ(built.cfg.cluster.base_seconds, 6.0);
  EXPECT_EQ(built.cfg.cluster.seed, 43u);  // seed + 1, the Experiment rule
  EXPECT_EQ(built.cfg.fading.seed, 44u);   // seed + 2
  EXPECT_EQ(built.cfg.seed, 42u);

  ASSERT_EQ(built.mechanism_names.size(), 3u);
  EXPECT_EQ(built.mechanism_names[0], "FedAvg");
  EXPECT_EQ(built.mechanism_names[1], "TiFL");
  EXPECT_EQ(built.mechanism_names[2], "Air-FedGA");

  // The model factory builds the MLP-64 (784-64-64-10 = 55k parameters).
  EXPECT_EQ(ml::count_parameters(built.cfg.model_factory),
            ml::count_parameters([] { return ml::make_mlp(784, 10, 64); }));
}

TEST(Presets, Fig04PresetMatchesLegacyBenchConfig) {
  const ScenarioSpec& spec = preset("fig04_cnn_mnist");
  BuiltScenario built = build(spec);

  auto tt = data::make_mnist_image_like(6000, 1000, 2);
  util::Rng rng(42);
  const auto partition = data::partition_label_skew(tt.train, 100, rng);
  EXPECT_EQ(built.cfg.partition, partition);
  EXPECT_EQ(built.cfg.train->ys, tt.train.ys);

  EXPECT_FLOAT_EQ(built.cfg.learning_rate, 0.03f);
  EXPECT_EQ(built.cfg.batch_size, 16u);
  EXPECT_EQ(built.cfg.local_steps, 3u);
  EXPECT_EQ(built.cfg.eval_samples, 500u);
  EXPECT_EQ(ml::count_parameters(built.cfg.model_factory),
            ml::count_parameters([] { return ml::make_cnn_mnist(0.15, 28); }));
  ASSERT_EQ(built.mechanism_names.size(), 3u);
  EXPECT_EQ(built.mechanism_names[0], "Dynamic");
  EXPECT_EQ(built.mechanism_names[2], "Air-FedGA");
}

TEST(MechanismSpec, MakeConstructsTheRightMechanisms) {
  for (const char* kind : {"fedavg", "airfedavg", "dynamic", "tifl", "fedasync", "airfedga"}) {
    MechanismSpec m;
    m.kind = kind;
    auto mech = m.make();
    ASSERT_NE(mech, nullptr) << kind;
    EXPECT_EQ(mech->name(), m.display_name()) << kind;
  }
  MechanismSpec bad;
  bad.kind = "fancy_new_thing";
  EXPECT_THROW(bad.make(), std::invalid_argument);
  EXPECT_THROW(bad.display_name(), std::invalid_argument);
}

TEST(Build, RejectsInvalidSpecBeforeMaterializing) {
  ScenarioSpec s = minimal_spec();
  s.mechanisms[0].kind = "nope";
  EXPECT_THROW(build(s), std::invalid_argument);
}

}  // namespace
}  // namespace airfedga::scenario
