#include <gtest/gtest.h>

#include "channel/latency.hpp"

namespace airfedga::channel {
namespace {

TEST(Latency, AircompMatchesEq33) {
  LatencyConfig cfg;
  cfg.sub_channels = 1024;
  cfg.symbol_seconds = 71.4e-6;
  LatencyModel lm(cfg);
  // q = 2048 -> 2 OFDM symbols.
  EXPECT_DOUBLE_EQ(lm.aircomp_upload_seconds(2048), 2 * 71.4e-6);
  // Partial symbol rounds up.
  EXPECT_DOUBLE_EQ(lm.aircomp_upload_seconds(1025), 2 * 71.4e-6);
  EXPECT_DOUBLE_EQ(lm.aircomp_upload_seconds(1), 71.4e-6);
}

TEST(Latency, AircompIndependentOfGroupSize) {
  // The defining property of over-the-air aggregation: L_u has no
  // dependence on how many workers transmit. (The API encodes this by not
  // taking a worker count at all; this test documents it.)
  LatencyModel lm{LatencyConfig{}};
  EXPECT_GT(lm.aircomp_upload_seconds(100000), 0.0);
}

TEST(Latency, OmaScalesLinearlyInUploaders) {
  LatencyConfig cfg;
  cfg.oma_rate_bps = 1e6;
  cfg.bits_per_param = 32.0;
  LatencyModel lm(cfg);
  const double one = lm.oma_upload_seconds(1000, 1);
  EXPECT_DOUBLE_EQ(one, 1000.0 * 32.0 / 1e6);
  EXPECT_DOUBLE_EQ(lm.oma_upload_seconds(1000, 10), 10.0 * one);
  EXPECT_DOUBLE_EQ(lm.oma_upload_seconds(1000, 0), 0.0);
}

TEST(Latency, AircompBeatsOmaAtScale) {
  // The motivation of the paper: for a realistic model size and 100
  // workers, OMA upload is orders of magnitude slower than AirComp.
  LatencyModel lm{LatencyConfig{}};
  const std::size_t q = 100000;
  EXPECT_GT(lm.oma_upload_seconds(q, 100), 100.0 * lm.aircomp_upload_seconds(q));
}

TEST(Latency, ZeroParametersCostNothing) {
  // Degenerate payload: an empty model occupies zero symbols and zero OMA
  // airtime — the ceil in Eq. 33 must not round 0 up to a full symbol.
  LatencyModel lm{LatencyConfig{}};
  EXPECT_DOUBLE_EQ(lm.aircomp_upload_seconds(0), 0.0);
  EXPECT_DOUBLE_EQ(lm.oma_upload_seconds(0, 5), 0.0);
}

TEST(Latency, AircompRoundingAtSubChannelBoundaries) {
  LatencyConfig cfg;
  cfg.sub_channels = 100;
  cfg.symbol_seconds = 1.0;
  LatencyModel lm(cfg);
  EXPECT_DOUBLE_EQ(lm.aircomp_upload_seconds(99), 1.0);
  EXPECT_DOUBLE_EQ(lm.aircomp_upload_seconds(100), 1.0);  // exact fit: no extra symbol
  EXPECT_DOUBLE_EQ(lm.aircomp_upload_seconds(101), 2.0);
  EXPECT_DOUBLE_EQ(lm.aircomp_upload_seconds(200), 2.0);
}

TEST(Latency, SingleSubChannelSerializesEveryParameter) {
  // Degenerate bandwidth: one sub-channel means one parameter per symbol.
  LatencyConfig cfg;
  cfg.sub_channels = 1;
  cfg.symbol_seconds = 2.0;
  LatencyModel lm(cfg);
  EXPECT_DOUBLE_EQ(lm.aircomp_upload_seconds(7), 14.0);
}

TEST(Latency, SingleWorkerOmaEqualsPerWorkerCost) {
  // A single-member cluster pays exactly one serialized upload — the
  // degenerate case the group-ready trigger hits when cohorts shrink to
  // singletons under churn.
  LatencyConfig cfg;
  cfg.oma_rate_bps = 2e6;
  cfg.bits_per_param = 16.0;
  LatencyModel lm(cfg);
  EXPECT_DOUBLE_EQ(lm.oma_upload_seconds(500, 1), 500.0 * 16.0 / 2e6);
}

TEST(Latency, Validation) {
  LatencyConfig bad;
  bad.sub_channels = 0;
  EXPECT_THROW(LatencyModel{bad}, std::invalid_argument);
  bad = {};
  bad.symbol_seconds = 0.0;
  EXPECT_THROW(LatencyModel{bad}, std::invalid_argument);
  bad = {};
  bad.oma_rate_bps = -1.0;
  EXPECT_THROW(LatencyModel{bad}, std::invalid_argument);
  bad = {};
  bad.bits_per_param = 0.0;
  EXPECT_THROW(LatencyModel{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace airfedga::channel
