#include <gtest/gtest.h>

#include <numeric>

#include "fl/driver.hpp"
#include "ml/zoo.hpp"

namespace airfedga::fl {
namespace {

struct Env {
  data::Dataset train;
  data::Dataset test;
  FLConfig cfg;

  explicit Env(std::uint64_t seed = 60) {
    train = data::make_synthetic_flat(16, {400, 4, 1.0, 0.3, seed});
    test = data::make_synthetic_flat(16, {200, 4, 1.0, 0.3, seed});
    util::Rng rng(seed);
    cfg.train = &train;
    cfg.test = &test;
    cfg.partition = data::partition_iid(train, 8, rng);
    cfg.model_factory = [] { return ml::make_softmax_regression(16, 4); };
    cfg.seed = seed;
    cfg.eval_samples = 200;
  }
};

TEST(Driver, ConstructionBuildsWorkersAndStats) {
  Env env;
  Driver d(env.cfg);
  EXPECT_EQ(d.num_workers(), 8u);
  EXPECT_EQ(d.model_dim(), 16u * 4 + 4);
  EXPECT_EQ(d.stats().total_size(), 400u);
}

TEST(Driver, InitialModelDeterministicPerSeed) {
  Env a(61), b(61), c(62);
  Driver da(a.cfg), db(b.cfg), dc(c.cfg);
  EXPECT_EQ(da.initial_model(), db.initial_model());
  EXPECT_NE(da.initial_model(), dc.initial_model());
}

TEST(Driver, EvaluateMatchesDirectModelEvaluation) {
  Env env;
  Driver d(env.cfg);
  const auto w = d.initial_model();
  const auto r1 = d.evaluate(w);

  ml::Model m = env.cfg.model_factory();
  m.set_parameters(w);
  std::vector<std::size_t> idx(env.cfg.eval_samples);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  ml::Tensor xs = ml::gather_rows(env.test.xs, idx);
  std::span<const int> ys(env.test.ys.data(), env.cfg.eval_samples);
  const auto r2 = m.evaluate(xs, ys, env.cfg.eval_batch);
  EXPECT_NEAR(r1.loss, r2.loss, 1e-9);
  EXPECT_NEAR(r1.accuracy, r2.accuracy, 1e-12);
}

TEST(Driver, PowerForGroupRequiresTrainedMembers) {
  Env env;
  Driver d(env.cfg);
  EXPECT_THROW(d.power_for_group({0, 1}, 1), std::logic_error);

  const auto w = d.initial_model();
  d.worker(0).local_update(d.scratch(), w, 0.1f, 1, 0);
  d.worker(1).local_update(d.scratch(), w, 0.1f, 1, 0);
  const auto pc = d.power_for_group({0, 1}, 1);
  EXPECT_GT(pc.sigma, 0.0);
  EXPECT_GT(pc.eta, 0.0);
}

TEST(Driver, AircompAggregateAccumulatesEnergyWithinCaps) {
  Env env;
  Driver d(env.cfg);
  const auto w = d.initial_model();
  std::vector<std::size_t> members = {0, 1, 2};
  for (auto m : members) d.worker(m).local_update(d.scratch(), w, 0.1f, 1, 0);

  double energy = 0.0;
  const auto w_next = d.aircomp_aggregate(members, w, 1, energy);
  EXPECT_EQ(w_next.size(), w.size());
  EXPECT_GT(energy, 0.0);
  EXPECT_LE(energy, static_cast<double>(members.size()) * env.cfg.energy_cap * (1 + 1e-9));
}

TEST(Driver, OmaAggregateIsExactWeightedAverage) {
  Env env;
  Driver d(env.cfg);
  const auto w = d.initial_model();
  std::vector<std::size_t> everyone(d.num_workers());
  std::iota(everyone.begin(), everyone.end(), std::size_t{0});
  for (auto m : everyone) d.worker(m).local_update(d.scratch(), w, 0.1f, 1, 0);

  const auto agg = d.oma_aggregate(everyone, w);
  // Full participation: result = sum_i alpha_i w_i exactly.
  std::vector<double> expect(w.size(), 0.0);
  for (auto m : everyone) {
    const double alpha = d.stats().alpha(m);
    const auto wm = d.worker(m).local_model();
    for (std::size_t i = 0; i < wm.size(); ++i) expect[i] += alpha * wm[i];
  }
  for (std::size_t i = 0; i < agg.size(); ++i) EXPECT_NEAR(agg[i], expect[i], 1e-5);
}

TEST(Driver, MaybeRecordFollowsCadence) {
  Env env;
  env.cfg.eval_every = 3;
  Driver d(env.cfg);
  const auto w = d.initial_model();
  Metrics m;
  for (std::size_t round = 1; round <= 7; ++round)
    d.maybe_record(m, round, static_cast<double>(round), 0.0, 0.0, w);
  // Rounds 1, 3, 6 recorded.
  ASSERT_EQ(m.points().size(), 3u);
  EXPECT_EQ(m.points()[0].round, 1u);
  EXPECT_EQ(m.points()[1].round, 3u);
  EXPECT_EQ(m.points()[2].round, 6u);
}

TEST(Driver, ShouldStopNeedsThreeEvals) {
  Env env;
  env.cfg.stop_at_accuracy = 0.5;
  Driver d(env.cfg);
  Metrics m;
  m.record({1.0, 1, 0.1, 0.9, 0, 0});
  EXPECT_FALSE(d.should_stop(m));
  m.record({2.0, 2, 0.1, 0.9, 0, 0});
  EXPECT_FALSE(d.should_stop(m));
  m.record({3.0, 3, 0.1, 0.9, 0, 0});
  EXPECT_TRUE(d.should_stop(m));
}

TEST(Driver, ShouldStopDisabledByDefault) {
  Env env;
  Driver d(env.cfg);
  Metrics m;
  for (int i = 1; i <= 5; ++i)
    m.record({static_cast<double>(i), static_cast<std::size_t>(i), 0.0, 1.0, 0, 0});
  EXPECT_FALSE(d.should_stop(m));
}

TEST(Driver, MnistImagePresetWorksEndToEnd) {
  auto tt = data::make_mnist_image_like(300, 100, 3);
  EXPECT_EQ(tt.train.xs.rank(), 4u);
  EXPECT_EQ(tt.train.xs.dim(1), 1u);
  EXPECT_EQ(tt.train.xs.dim(2), 28u);

  util::Rng rng(3);
  FLConfig cfg;
  cfg.train = &tt.train;
  cfg.test = &tt.test;
  cfg.partition = data::partition_iid(tt.train, 4, rng);
  cfg.model_factory = [] { return ml::make_cnn_mnist(0.1, 28); };
  cfg.batch_size = 8;
  cfg.eval_samples = 50;
  Driver d(cfg);
  const auto w = d.initial_model();
  const auto r = d.evaluate(w);
  EXPECT_GT(r.loss, 0.0);
}

}  // namespace
}  // namespace airfedga::fl
