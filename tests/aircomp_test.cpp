#include <gtest/gtest.h>

#include <cmath>

#include "channel/aircomp.hpp"
#include "ml/tensor.hpp"
#include "util/rng.hpp"

namespace airfedga::channel {
namespace {

std::vector<float> randvec(std::size_t n, std::uint64_t seed, float scale = 1.0f) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, scale));
  return v;
}

TEST(TransmitEnergy, MatchesEq7) {
  std::vector<float> w = {3.0f, 4.0f};  // ||w||^2 = 25
  // p = d*sigma/h = 10*0.2/0.5 = 4; E = 16 * 25 = 400.
  EXPECT_DOUBLE_EQ(transmit_energy(10.0, 0.2, 0.5, w), 400.0);
  EXPECT_THROW(transmit_energy(1.0, 1.0, 0.0, w), std::invalid_argument);
}

TEST(IdealAggregate, MatchesEq8HandComputed) {
  std::vector<float> w_prev = {1.0f, 1.0f};
  std::vector<float> w1 = {2.0f, 0.0f};
  std::vector<float> w2 = {0.0f, 4.0f};
  // d1 = 1, d2 = 3, D = 8 -> alpha1 = 1/8, alpha2 = 3/8, keep = 1/2.
  auto out = AirCompChannel::ideal_aggregate(w_prev, {w1, w2}, {1.0, 3.0}, 8.0);
  EXPECT_FLOAT_EQ(out[0], 0.5f * 1.0f + 0.125f * 2.0f);
  EXPECT_FLOAT_EQ(out[1], 0.5f * 1.0f + 0.375f * 4.0f);
}

TEST(IdealAggregate, FullParticipationIsWeightedAverage) {
  std::vector<float> w_prev = {100.0f};
  std::vector<float> w1 = {2.0f};
  std::vector<float> w2 = {6.0f};
  auto out = AirCompChannel::ideal_aggregate(w_prev, {w1, w2}, {1.0, 1.0}, 2.0);
  // beta = 1: the stale w_prev contributes nothing.
  EXPECT_FLOAT_EQ(out[0], 4.0f);
}

TEST(AirComp, NoiselessUnbiasedSigmaEtaRecoversIdeal) {
  // With sigma/sqrt(eta) = 1 and sigma0 = 0, Eq. 10 equals Eq. 8 exactly.
  AirCompChannel ch({.sigma0_sq = 0.0, .seed = 1});
  const std::size_t q = 64;
  auto w_prev = randvec(q, 1);
  auto w1 = randvec(q, 2);
  auto w2 = randvec(q, 3);

  AirCompChannel::Input in;
  in.w_prev = w_prev;
  in.local_models = {w1, w2};
  in.data_sizes = {10.0, 30.0};
  in.gains = {1.0, 0.7};
  in.sigma = 0.25;
  in.eta = 0.0625;  // sqrt(eta) = 0.25 = sigma
  in.total_data = 100.0;
  const auto out = ch.aggregate(in);

  const auto ideal = AirCompChannel::ideal_aggregate(w_prev, {w1, w2}, in.data_sizes, 100.0);
  ASSERT_EQ(out.w_next.size(), ideal.size());
  for (std::size_t i = 0; i < q; ++i) EXPECT_NEAR(out.w_next[i], ideal[i], 1e-5);
  EXPECT_DOUBLE_EQ(out.noise_energy, 0.0);
  EXPECT_NEAR(out.beta, 0.4, 1e-12);
}

TEST(AirComp, EnergiesFollowEq7) {
  AirCompChannel ch({.sigma0_sq = 0.0, .seed = 2});
  std::vector<float> w_prev = {0.0f, 0.0f};
  std::vector<float> w1 = {3.0f, 4.0f};
  AirCompChannel::Input in;
  in.w_prev = w_prev;
  in.local_models = {w1};
  in.data_sizes = {10.0};
  in.gains = {0.5};
  in.sigma = 0.2;
  in.eta = 0.04;
  in.total_data = 10.0;
  const auto out = ch.aggregate(in);
  ASSERT_EQ(out.energies.size(), 1u);
  EXPECT_DOUBLE_EQ(out.energies[0], 400.0);
}

TEST(AirComp, NoiseEnergyConcentratesAroundSigma0Sq) {
  // E||z||^2 = sigma0^2 regardless of dimension (per-component variance is
  // sigma0^2/q). Check the mean over repetitions.
  AirCompChannel ch({.sigma0_sq = 4.0, .seed = 3});
  const std::size_t q = 512;
  auto w_prev = randvec(q, 4);
  auto w1 = randvec(q, 5);
  AirCompChannel::Input in;
  in.w_prev = w_prev;
  in.local_models = {w1};
  in.data_sizes = {1.0};
  in.gains = {1.0};
  in.sigma = 1.0;
  in.eta = 1.0;
  in.total_data = 1.0;

  double acc = 0.0;
  const int reps = 64;
  for (int r = 0; r < reps; ++r) acc += ch.aggregate(in).noise_energy;
  EXPECT_NEAR(acc / reps, 4.0, 0.4);
}

TEST(AirComp, BiasedSigmaShrinksAggregate) {
  // sigma/sqrt(eta) = 0.5 halves the group contribution relative to ideal.
  AirCompChannel ch({.sigma0_sq = 0.0, .seed = 6});
  std::vector<float> w_prev = {0.0f};
  std::vector<float> w1 = {8.0f};
  AirCompChannel::Input in;
  in.w_prev = w_prev;
  in.local_models = {w1};
  in.data_sizes = {1.0};
  in.gains = {1.0};
  in.sigma = 0.5;
  in.eta = 1.0;
  in.total_data = 1.0;
  const auto out = ch.aggregate(in);
  EXPECT_FLOAT_EQ(out.w_next[0], 4.0f);
}

TEST(AirComp, HigherEtaSuppressesNoise) {
  const std::size_t q = 256;
  auto w_prev = randvec(q, 7);
  std::vector<float> w1(q, 0.0f);

  auto mse_for_eta = [&](double eta, std::uint64_t seed) {
    AirCompChannel ch({.sigma0_sq = 1.0, .seed = seed});
    AirCompChannel::Input in;
    in.w_prev = w_prev;
    in.local_models = {w1};
    in.data_sizes = {1.0};
    in.gains = {1.0};
    in.sigma = std::sqrt(eta);  // keep the aggregation unbiased
    in.eta = eta;
    in.total_data = 1.0;
    double acc = 0.0;
    for (int r = 0; r < 32; ++r) {
      const auto out = ch.aggregate(in);
      // Ideal result is all-zero (w1 = 0, beta = 1).
      for (std::size_t i = 0; i < q; ++i)
        acc += static_cast<double>(out.w_next[i]) * out.w_next[i];
    }
    return acc;
  };
  EXPECT_LT(mse_for_eta(10.0, 8), mse_for_eta(0.1, 9) / 10.0);
}

TEST(AirComp, InputValidation) {
  AirCompChannel ch({});
  std::vector<float> w = {1.0f};
  AirCompChannel::Input in;
  in.w_prev = w;
  in.local_models = {};
  in.data_sizes = {};
  in.gains = {};
  in.sigma = 1.0;
  in.eta = 1.0;
  in.total_data = 1.0;
  EXPECT_THROW(ch.aggregate(in), std::invalid_argument);  // empty group

  in.local_models = {w};
  in.data_sizes = {1.0};
  in.gains = {1.0, 2.0};  // mismatched
  EXPECT_THROW(ch.aggregate(in), std::invalid_argument);

  in.gains = {1.0};
  in.sigma = 0.0;
  EXPECT_THROW(ch.aggregate(in), std::invalid_argument);

  in.sigma = 1.0;
  std::vector<float> w2 = {1.0f, 2.0f};
  in.local_models = {w2};  // dimension mismatch vs w_prev
  EXPECT_THROW(ch.aggregate(in), std::invalid_argument);
}

TEST(AirComp, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    AirCompChannel ch({.sigma0_sq = 1.0, .seed = seed});
    auto w_prev = randvec(32, 10);
    auto w1 = randvec(32, 11);
    AirCompChannel::Input in;
    in.w_prev = w_prev;
    in.local_models = {w1};
    in.data_sizes = {2.0};
    in.gains = {1.0};
    in.sigma = 0.5;
    in.eta = 0.25;
    in.total_data = 2.0;
    return ch.aggregate(in).w_next;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace airfedga::channel
