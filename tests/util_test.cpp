#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <future>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace airfedga::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(42);
  Rng c1 = parent.fork(7);
  Rng c2 = parent.fork(7);
  Rng c3 = parent.fork(8);
  EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
  EXPECT_NE(c1.uniform(), c3.uniform());
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(6);
  RunningStat st;
  for (int i = 0; i < 20000; ++i) st.push(rng.normal(1.0, 2.0));
  EXPECT_NEAR(st.mean(), 1.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, RayleighMeanMatchesTheory) {
  Rng rng(7);
  RunningStat st;
  const double scale = 0.8;
  for (int i = 0; i < 20000; ++i) st.push(rng.rayleigh(scale));
  // E[Rayleigh(s)] = s * sqrt(pi/2)
  EXPECT_NEAR(st.mean(), scale * std::sqrt(M_PI / 2.0), 0.02);
  EXPECT_GT(st.min(), 0.0);
}

TEST(Rng, RandintInclusiveBounds) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.randint(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(9);
  auto p = rng.permutation(100);
  std::vector<char> seen(100, 0);
  for (auto v : p) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
  }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(10);
  auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(11);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(RunningStat, KnownSequence) {
  RunningStat st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.push(x);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_EQ(st.count(), 8u);
}

TEST(Quantile, EndpointsAndMedian) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Quantile, RejectsBadInput) {
  std::vector<double> xs = {1.0};
  EXPECT_THROW(quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.1), std::invalid_argument);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(Boxplot, FiveNumberSummary) {
  std::vector<double> xs(101);
  std::iota(xs.begin(), xs.end(), 0.0);
  const auto b = boxplot(xs);
  EXPECT_DOUBLE_EQ(b.min, 0.0);
  EXPECT_DOUBLE_EQ(b.q1, 25.0);
  EXPECT_DOUBLE_EQ(b.median, 50.0);
  EXPECT_DOUBLE_EQ(b.q3, 75.0);
  EXPECT_DOUBLE_EQ(b.max, 100.0);
}

TEST(MovingAverage, WindowBehaviour) {
  std::vector<double> xs = {1, 1, 1, 4, 4, 4};
  const auto m = moving_average(xs, 3);
  ASSERT_EQ(m.size(), xs.size());
  EXPECT_DOUBLE_EQ(m[0], 1.0);
  EXPECT_DOUBLE_EQ(m[2], 1.0);
  EXPECT_DOUBLE_EQ(m[3], 2.0);
  EXPECT_DOUBLE_EQ(m[5], 4.0);
}

TEST(MovingAverage, RejectsZeroWindow) {
  std::vector<double> xs = {1.0};
  EXPECT_THROW(moving_average(xs, 0), std::invalid_argument);
}

TEST(Table, AlignmentAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::fmt(1.23456, 2)});
  t.add_row({"b", Table::fmt_int(42)});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);

  const std::string path = testing::TempDir() + "/airfedga_table_test.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "name,value");
}

TEST(Table, RejectsRaggedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscapesCommasQuotesAndAppends) {
  // Sweep-suffixed scenario names can carry commas *and* quotes (string
  // sweep values are dumped as JSON), so cells must be RFC-4180 escaped:
  // wrapped in quotes with embedded quotes doubled.
  Table t({"name"});
  t.add_row({"s@partition.kind=\"a,b\""});
  const std::string path = testing::TempDir() + "/airfedga_table_esc_test.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);  // header
  std::getline(f, line);
  EXPECT_EQ(line, "\"s@partition.kind=\"\"a,b\"\"\"");

  // Append mode: rows accumulate, header written once.
  t.write_csv(path, /*append=*/true);
  std::ifstream again(path);
  std::size_t lines = 0;
  std::size_t headers = 0;
  while (std::getline(again, line)) {
    ++lines;
    if (line == "name") ++headers;
  }
  EXPECT_EQ(lines, 3u);  // header + 2 rows
  EXPECT_EQ(headers, 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(
      hits.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      /*grain=*/16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SerialFallbackForSmallN) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(5, [&](std::size_t b, std::size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count, 5);
}

TEST(ThreadPool, ZeroWorkItemsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleWorkerPool) {
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(5000);
  pool.parallel_for(
      hits.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      /*grain=*/8);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroWorkerPoolRunsSerially) {
  ThreadPool pool(0);
  std::size_t covered = 0;
  pool.parallel_for(
      100, [&](std::size_t b, std::size_t e) { covered += e - b; }, /*grain=*/1);
  EXPECT_EQ(covered, 100u);
}

TEST(ThreadPool, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, SubmitOnZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  auto f = pool.submit([&] { ran_on = std::this_thread::get_id(); });
  // Inline execution: the task already ran on the calling thread.
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  f.get();
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SubmittedTasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  auto f = pool.submit([] { return ThreadPool::on_worker_thread(); });
  EXPECT_TRUE(f.get());
}

TEST(ThreadPool, NestedParallelForFallsBackToSerial) {
  // A task on a pool thread that fans out again would deadlock a saturated
  // pool; the nesting rule runs the inner loop serially instead.
  ThreadPool pool(2);
  auto f = pool.submit([&] {
    const auto me = std::this_thread::get_id();
    bool same_thread = true;
    pool.parallel_for(
        10000,
        [&](std::size_t, std::size_t) { same_thread &= std::this_thread::get_id() == me; },
        /*grain=*/1);
    return same_thread;
  });
  EXPECT_TRUE(f.get());
}

TEST(ThreadPool, SerialRegionSuppressesFanOut) {
  ThreadPool pool(3);
  const auto me = std::this_thread::get_id();
  bool same_thread = true;
  {
    ThreadPool::SerialRegion serial;
    EXPECT_TRUE(ThreadPool::on_worker_thread());
    pool.parallel_for(
        10000,
        [&](std::size_t, std::size_t) { same_thread &= std::this_thread::get_id() == me; },
        /*grain=*/1);
  }
  EXPECT_TRUE(same_thread);
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ThreadPool, PrioritizedTasksRunInDeadlineOrder) {
  ThreadPool pool(1);
  // Block the single worker so every submission below piles up in the
  // ready queue before anything is popped. Waiting for `started` ensures
  // the worker has dequeued the blocker (and not a later submission)
  // before anything else is enqueued.
  std::promise<void> started;
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  auto blocker = pool.submit([&started, open] {
    started.set_value();
    open.wait();
  });
  started.get_future().wait();

  // Executed by the single worker thread only, after the gate opens; reads
  // happen after the futures synchronize, so no lock is needed.
  std::vector<int> order;
  auto rec = [&order](int tag) {
    return [&order, tag] { order.push_back(tag); };
  };
  std::vector<std::future<void>> fs;
  fs.push_back(pool.submit(rec(99)));                    // no deadline: runs last
  fs.push_back(pool.submit_prioritized(30.0, rec(30)));
  fs.push_back(pool.submit_prioritized(10.0, rec(10)));
  fs.push_back(pool.submit_prioritized(20.0, rec(20)));
  fs.push_back(pool.submit_prioritized(10.0, rec(11)));  // deadline tie: FIFO after 10
  gate.set_value();
  blocker.get();
  for (auto& f : fs) f.get();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 30, 99}));
}

TEST(ThreadPool, UrgentTasksJumpTheQueue) {
  ThreadPool pool(1);
  std::promise<void> started;
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  auto blocker = pool.submit([&started, open] {
    started.set_value();
    open.wait();
  });
  started.get_future().wait();  // the worker holds the blocker, not a later task

  std::vector<int> order;
  auto deadline = pool.submit_prioritized(1.0, [&order] { order.push_back(1); });
  auto plain = pool.submit([&order] { order.push_back(2); });
  auto urgent =
      pool.submit_prioritized(ThreadPool::kUrgent, [&order] { order.push_back(0); });
  gate.set_value();
  blocker.get();
  deadline.get();
  plain.get();
  urgent.get();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ThreadPool, RejectsNaNSchedulingKey) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.submit_prioritized(std::numeric_limits<double>::quiet_NaN(), [] {}),
      std::invalid_argument);
  // Same contract on a 0-worker (inline) pool: a bad key must not hide
  // behind the serial configuration.
  ThreadPool inline_pool(0);
  EXPECT_THROW(
      inline_pool.submit_prioritized(std::numeric_limits<double>::quiet_NaN(), [] {}),
      std::invalid_argument);
}

TEST(ThreadPool, PrioritizedSubmitOnZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  auto f = pool.submit_prioritized(5.0, [] { return 17; });
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f.get(), 17);
}

TEST(SplitMix, MixesDistinctInputs) {
  EXPECT_NE(splitmix64(1), splitmix64(2));
  EXPECT_NE(splitmix64(0), 0u);
}

TEST(LaneBudgetShare, SplitsBudgetAcrossJobs) {
  // Explicit budget: each job gets an equal share, floor division.
  EXPECT_EQ(lane_budget_share(0, 1, 8), 8u);
  EXPECT_EQ(lane_budget_share(0, 2, 8), 4u);
  EXPECT_EQ(lane_budget_share(0, 3, 8), 2u);
  // A job never asks for more than it requested.
  EXPECT_EQ(lane_budget_share(2, 2, 8), 2u);
  EXPECT_EQ(lane_budget_share(6, 2, 8), 4u);
  // Every job always gets at least one lane, even when oversubscribed.
  EXPECT_EQ(lane_budget_share(0, 16, 4), 1u);
  EXPECT_EQ(lane_budget_share(1, 1, 4), 1u);
  // jobs = 0 is treated as one job (degenerate caller input).
  EXPECT_EQ(lane_budget_share(0, 0, 8), 8u);
  // budget = 0 resolves to the hardware concurrency; the result is at
  // least one lane whatever the machine.
  EXPECT_GE(lane_budget_share(0, 1, 0), 1u);
  EXPECT_EQ(lane_budget_share(1, 4, 0), 1u);
}

TEST(LaneBudgetShare, ClampingAndDegenerateBudgets) {
  // Request exactly the share: no clamping either way.
  EXPECT_EQ(lane_budget_share(8, 1, 8), 8u);
  EXPECT_EQ(lane_budget_share(4, 2, 8), 4u);
  // Request above the share clamps to the share; far above too.
  EXPECT_EQ(lane_budget_share(5, 3, 8), 2u);
  EXPECT_EQ(lane_budget_share(1000000, 1, 8), 8u);
  // Exact division down to one lane per job, and past it.
  EXPECT_EQ(lane_budget_share(0, 8, 8), 1u);
  EXPECT_EQ(lane_budget_share(0, 9, 8), 1u);
  // A single-lane budget serializes every request.
  EXPECT_EQ(lane_budget_share(0, 1, 1), 1u);
  EXPECT_EQ(lane_budget_share(3, 2, 1), 1u);
  // jobs = 0 degenerates to one job even with clamping in play.
  EXPECT_EQ(lane_budget_share(3, 0, 8), 3u);
}

}  // namespace
}  // namespace airfedga::util
