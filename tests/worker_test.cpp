#include <gtest/gtest.h>

#include <cmath>

#include "fl/worker.hpp"
#include "ml/tensor.hpp"
#include "ml/zoo.hpp"

namespace airfedga::fl {
namespace {

data::Dataset tiny_dataset(std::uint64_t seed) {
  return data::make_synthetic_flat(16, {200, 4, 1.0, 0.3, seed});
}

TEST(Worker, ConstructionValidatesShard) {
  const auto ds = tiny_dataset(1);
  EXPECT_THROW(Worker(0, ds, std::vector<std::size_t>{}, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(Worker(0, ds, {ds.size()}, util::Rng(1)), std::invalid_argument);
  Worker w(3, ds, {0, 1, 2}, util::Rng(1));
  EXPECT_EQ(w.id(), 3u);
  EXPECT_EQ(w.data_size(), 3u);
  EXPECT_FALSE(w.has_model());
}

TEST(Worker, LocalUpdateImplementsEq4) {
  // One full-batch step: w_i = w - lr * grad f_i(w), verified against a
  // manual gradient computation on the same shard.
  const auto ds = tiny_dataset(2);
  std::vector<std::size_t> shard = {0, 1, 2, 3, 4, 5, 6, 7};
  Worker w(0, ds, shard, util::Rng(7));

  ml::Model scratch = ml::make_softmax_regression(16, 4);
  util::Rng init(3);
  scratch.init(init);
  const auto w0 = scratch.parameters();

  const float lr = 0.1f;
  w.local_update(scratch, w0, lr, /*steps=*/1, /*batch_size=*/0);

  // Manual: gradient of the shard at w0.
  ml::Model manual = ml::make_softmax_regression(16, 4);
  manual.set_parameters(w0);
  ml::Tensor xb = ml::gather_rows(ds.xs, shard);
  std::vector<int> yb;
  for (auto i : shard) yb.push_back(ds.ys[i]);
  std::vector<float> grad;
  manual.compute_gradient(xb, yb, grad);

  const auto updated = w.local_model();
  ASSERT_EQ(updated.size(), w0.size());
  for (std::size_t i = 0; i < w0.size(); ++i)
    EXPECT_NEAR(updated[i], w0[i] - lr * grad[i], 1e-6);
}

TEST(Worker, LocalModelPersistsBetweenUpdates) {
  const auto ds = tiny_dataset(3);
  Worker w(0, ds, {0, 1, 2, 3}, util::Rng(5));
  ml::Model scratch = ml::make_softmax_regression(16, 4);
  util::Rng init(4);
  scratch.init(init);
  const auto w0 = scratch.parameters();

  w.local_update(scratch, w0, 0.05f, 1, 0);
  const std::vector<float> first(w.local_model().begin(), w.local_model().end());
  EXPECT_TRUE(w.has_model());

  w.local_update(scratch, w0, 0.05f, 1, 0);
  const std::vector<float> second(w.local_model().begin(), w.local_model().end());
  // Same global model, same full-batch shard: deterministic equal result.
  EXPECT_EQ(first, second);
}

TEST(Worker, MiniBatchSamplingIsSeedDependentButValid) {
  const auto ds = tiny_dataset(4);
  std::vector<std::size_t> shard;
  for (std::size_t i = 0; i < 50; ++i) shard.push_back(i);

  ml::Model scratch = ml::make_softmax_regression(16, 4);
  util::Rng init(6);
  scratch.init(init);
  const auto w0 = scratch.parameters();

  Worker a(0, ds, shard, util::Rng(100));
  Worker b(1, ds, shard, util::Rng(200));
  a.local_update(scratch, w0, 0.1f, 1, 8);
  b.local_update(scratch, w0, 0.1f, 1, 8);
  // Different batch draws -> different local models (with overwhelming
  // probability for seeded streams this far apart).
  const std::vector<float> wa(a.local_model().begin(), a.local_model().end());
  const std::vector<float> wb(b.local_model().begin(), b.local_model().end());
  EXPECT_NE(wa, wb);
}

TEST(Worker, MultiStepMovesFartherThanSingleStep) {
  const auto ds = tiny_dataset(5);
  std::vector<std::size_t> shard;
  for (std::size_t i = 0; i < 32; ++i) shard.push_back(i);

  ml::Model scratch = ml::make_softmax_regression(16, 4);
  util::Rng init(8);
  scratch.init(init);
  const auto w0 = scratch.parameters();

  Worker one(0, ds, shard, util::Rng(9));
  Worker five(1, ds, shard, util::Rng(9));
  one.local_update(scratch, w0, 0.05f, 1, 0);
  five.local_update(scratch, w0, 0.05f, 5, 0);

  double d1 = 0.0, d5 = 0.0;
  for (std::size_t i = 0; i < w0.size(); ++i) {
    d1 += std::pow(one.local_model()[i] - w0[i], 2);
    d5 += std::pow(five.local_model()[i] - w0[i], 2);
  }
  EXPECT_GT(d5, d1);
}

TEST(Worker, ModelNormSqMatchesVector) {
  const auto ds = tiny_dataset(6);
  Worker w(0, ds, {0, 1}, util::Rng(10));
  ml::Model scratch = ml::make_softmax_regression(16, 4);
  util::Rng init(11);
  scratch.init(init);
  w.local_update(scratch, scratch.parameters(), 0.01f, 1, 0);
  EXPECT_NEAR(w.model_norm_sq(), ml::squared_norm(w.local_model()), 1e-9);
}

TEST(Worker, RejectsZeroSteps) {
  const auto ds = tiny_dataset(7);
  Worker w(0, ds, {0}, util::Rng(12));
  ml::Model scratch = ml::make_softmax_regression(16, 4);
  std::vector<float> w0(scratch.num_parameters(), 0.0f);
  EXPECT_THROW(w.local_update(scratch, w0, 0.1f, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace airfedga::fl
