// Tests for the crash-safe scenario farm: byte-parity with the legacy
// writer, resume semantics, kill-and-resume byte identity (via injected
// crashes in gtest death-test children), retry/quarantine fault isolation,
// watchdog timeouts, interrupt/stop handling, stash corruption recovery,
// and --shard / merge round-trips.

#include "scenario/runner.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "scenario/manifest.hpp"
#include "util/fault.hpp"

namespace airfedga::scenario {
namespace {

namespace fs = std::filesystem;

ScenarioSpec tiny_spec() {
  ScenarioSpec s;
  s.name = "tiny";
  s.dataset = {"mnist_like", 120, 40, 1};
  s.model = {.kind = "softmax", .input_dim = 784, .num_classes = 10};
  s.partition.workers = 6;
  s.learning_rate = 0.5;
  s.batch_size = 0;
  s.time_budget = 200.0;
  s.max_rounds = 6;
  s.eval_every = 2;
  s.eval_samples = 40;
  s.threads = 1;
  s.mechanisms = {MechanismSpec{}};  // airfedga
  return s;
}

/// Three deterministic variants (a seed sweep) — the standard farm batch
/// for these tests.
std::vector<ScenarioSpec> tiny_variants() {
  return expand_sweeps(tiny_spec(), {{"run.seed", {Json(1), Json(2), Json(3)}}});
}

struct TempDir {
  static std::size_t next_id() {
    static std::size_t id = 0;
    return id++;
  }
  fs::path path;
  TempDir() : path(fs::temp_directory_path() /
                   ("airfedga_farm_test_" + std::to_string(::getpid()) + "_" +
                    std::to_string(next_id()))) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Asserts every output file of two result directories is byte-identical
/// (results.jsonl, summary.csv, and the full points/ set).
void expect_outputs_identical(const fs::path& a, const fs::path& b) {
  EXPECT_EQ(read_file(a / "results.jsonl"), read_file(b / "results.jsonl"));
  EXPECT_EQ(read_file(a / "summary.csv"), read_file(b / "summary.csv"));
  std::vector<std::string> names_a;
  for (const auto& e : fs::directory_iterator(a / "points"))
    names_a.push_back(e.path().filename().string());
  std::vector<std::string> names_b;
  for (const auto& e : fs::directory_iterator(b / "points"))
    names_b.push_back(e.path().filename().string());
  std::sort(names_a.begin(), names_a.end());
  std::sort(names_b.begin(), names_b.end());
  ASSERT_EQ(names_a, names_b);
  for (const auto& name : names_a)
    EXPECT_EQ(read_file(a / "points" / name), read_file(b / "points" / name)) << name;
}

/// Byte-stable output needs --no-timing (wall clocks vary run to run).
WriteOptions no_timing() {
  WriteOptions wo;
  wo.timing = false;
  return wo;
}

/// Every test must leave the process-global fault registry and stop flag
/// clean for later tests.
class FarmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::fault::disarm_all();
    farm_clear_stop();
  }
  void TearDown() override {
    util::fault::disarm_all();
    farm_clear_stop();
  }
};

TEST_F(FarmTest, MatchesTheLegacyWriterByteForByte) {
  const auto variants = tiny_variants();
  TempDir legacy, farmed;
  const BatchRunResult batch = run_scenarios(variants);
  write_results(legacy.path.string(), batch.results, git_version(), no_timing());

  const FarmResult fr = run_farm(variants, farmed.path.string(), {}, {}, no_timing());
  EXPECT_EQ(fr.completed, 3u);
  EXPECT_EQ(fr.failed, 0u);
  EXPECT_FALSE(fr.interrupted);
  ASSERT_EQ(fr.records.size(), 3u);
  expect_outputs_identical(legacy.path, farmed.path);
}

TEST_F(FarmTest, ResumeOfACompleteRunSkipsEverythingAndRewritesIdentically) {
  const auto variants = tiny_variants();
  TempDir dir;
  run_farm(variants, dir.path.string(), {}, {}, no_timing());
  const std::string results = read_file(dir.path / "results.jsonl");
  const std::string summary = read_file(dir.path / "summary.csv");

  FarmOptions fo;
  fo.resume = true;
  const FarmResult fr = run_farm(variants, dir.path.string(), {}, fo, no_timing());
  EXPECT_EQ(fr.resumed_skips, 3u);
  EXPECT_EQ(fr.completed, 0u);
  EXPECT_EQ(read_file(dir.path / "results.jsonl"), results);
  EXPECT_EQ(read_file(dir.path / "summary.csv"), summary);
}

/// The acceptance loop: crash (injected kill) partway through the batch,
/// resume, and require byte-identical outputs vs an uninterrupted run.
void kill_resume_roundtrip(std::size_t jobs) {
  const auto variants = tiny_variants();
  TempDir ref, crashed;
  FarmOptions fo;
  fo.jobs = jobs;
  run_farm(variants, ref.path.string(), {}, fo, no_timing());

  const std::string crash_dir = crashed.path.string();
  EXPECT_EXIT(
      {
        util::fault::arm("after_variant:2");  // kill after the 2nd durable done
        FarmOptions child = fo;
        run_farm(variants, crash_dir, {}, child, no_timing());
      },
      ::testing::ExitedWithCode(util::fault::kKillExitCode), "");

  // The crash happened after (at least) two durable completions; the
  // manifest must show them and the resume must only re-run what was lost.
  // Serial runs lose exactly one variant; concurrent runs may have
  // journalled a third done between the second's journal and its fault hit.
  Manifest recovered = Manifest::open(crash_dir);
  std::size_t done = 0;
  for (const auto& r : recovered.records())
    if (r.state == "done") ++done;
  EXPECT_GE(done, 2u);
  if (jobs == 1) {
    EXPECT_EQ(done, 2u);
  }

  FarmOptions resume = fo;
  resume.resume = true;
  const FarmResult fr = run_farm(variants, crash_dir, {}, resume, no_timing());
  EXPECT_GE(fr.resumed_skips, 2u);
  EXPECT_EQ(fr.resumed_skips + fr.completed, 3u);
  if (jobs == 1) {
    EXPECT_EQ(fr.completed, 1u);
  }
  expect_outputs_identical(ref.path, crashed.path);
}

TEST_F(FarmTest, KillAndResumeIsByteIdenticalSerial) { kill_resume_roundtrip(1); }
TEST_F(FarmTest, KillAndResumeIsByteIdenticalJobs4) { kill_resume_roundtrip(4); }

TEST_F(FarmTest, KillDuringStashWriteLosesOnlyThatVariant) {
  const auto variants = tiny_variants();
  TempDir ref, crashed;
  run_farm(variants, ref.path.string(), {}, {}, no_timing());

  const std::string crash_dir = crashed.path.string();
  EXPECT_EXIT(
      {
        util::fault::arm("mid_write:stash");  // die inside the first stash write
        run_farm(variants, crash_dir, {}, {}, no_timing());
      },
      ::testing::ExitedWithCode(util::fault::kKillExitCode), "");

  FarmOptions resume;
  resume.resume = true;
  const FarmResult fr = run_farm(variants, crash_dir, {}, resume, no_timing());
  EXPECT_EQ(fr.resumed_skips, 0u);  // the torn tmp stash never became durable
  EXPECT_EQ(fr.completed, 3u);
  expect_outputs_identical(ref.path, crashed.path);
}

TEST_F(FarmTest, KillDuringResultAssemblyIsRepairedByResume) {
  const auto variants = tiny_variants();
  TempDir ref, crashed;
  run_farm(variants, ref.path.string(), {}, {}, no_timing());

  const std::string crash_dir = crashed.path.string();
  EXPECT_EXIT(
      {
        util::fault::arm("mid_write:results");  // die while writing results.jsonl
        run_farm(variants, crash_dir, {}, {}, no_timing());
      },
      ::testing::ExitedWithCode(util::fault::kKillExitCode), "");

  // Every variant completed durably before assembly; the resume re-runs
  // nothing and just re-assembles the (torn) output files.
  FarmOptions resume;
  resume.resume = true;
  const FarmResult fr = run_farm(variants, crash_dir, {}, resume, no_timing());
  EXPECT_EQ(fr.resumed_skips, 3u);
  EXPECT_EQ(fr.completed, 0u);
  expect_outputs_identical(ref.path, crashed.path);
}

TEST_F(FarmTest, ThrowingVariantIsRetriedThenQuarantinedWithoutFailingOthers) {
  const auto variants = tiny_variants();
  TempDir dir;
  util::fault::arm("variant_run:1:throw");  // variant index 1 always throws
  FarmOptions fo;
  fo.retries = 1;
  fo.backoff_base = 0.01;  // keep the test fast
  const FarmResult fr = run_farm(variants, dir.path.string(), {}, fo, no_timing());

  EXPECT_EQ(fr.completed, 2u);
  EXPECT_EQ(fr.failed, 1u);
  EXPECT_EQ(fr.retries, 1u);
  EXPECT_FALSE(fr.interrupted);
  ASSERT_EQ(fr.statuses.size(), 3u);
  EXPECT_EQ(fr.statuses[1].state, VariantStatus::State::kFailed);
  EXPECT_EQ(fr.statuses[1].attempts, 2u);
  EXPECT_NE(fr.statuses[1].error.find("injected fault"), std::string::npos);
  EXPECT_EQ(fr.statuses[0].state, VariantStatus::State::kDone);
  EXPECT_EQ(fr.statuses[2].state, VariantStatus::State::kDone);
  // The quarantined variant is journalled failed (with the error) and
  // simply absent from the assembled outputs.
  Manifest m = Manifest::open(dir.path.string());
  EXPECT_EQ(m.state_of(1, fr.statuses[1].hash), "failed");
  EXPECT_EQ(fr.records.size(), 2u);

  // A later resume (fault cleared — it was transient environment trouble)
  // re-runs only the quarantined variant and completes the set.
  util::fault::disarm_all();
  FarmOptions resume;
  resume.resume = true;
  const FarmResult fixed = run_farm(variants, dir.path.string(), {}, resume, no_timing());
  EXPECT_EQ(fixed.resumed_skips, 2u);
  EXPECT_EQ(fixed.completed, 1u);
  EXPECT_EQ(fixed.records.size(), 3u);
}

TEST_F(FarmTest, TransientFailureSucceedsOnRetry) {
  const auto variants = tiny_variants();
  TempDir ref, dir;
  run_farm(variants, ref.path.string(), {}, {}, no_timing());

  util::fault::arm("variant_run:1:throw_once");
  FarmOptions fo;
  fo.retries = 2;
  fo.backoff_base = 0.01;
  const FarmResult fr = run_farm(variants, dir.path.string(), {}, fo, no_timing());
  EXPECT_EQ(fr.completed, 3u);
  EXPECT_EQ(fr.failed, 0u);
  EXPECT_EQ(fr.retries, 1u);
  EXPECT_EQ(fr.statuses[1].attempts, 2u);
  expect_outputs_identical(ref.path, dir.path);
}

TEST_F(FarmTest, HungVariantIsCancelledByTheWatchdogAndQuarantined) {
  // A time budget far past anything the tiny model needs, with a watchdog
  // far below its wall time: every attempt must be cancelled, quarantined,
  // and must not block the other variants.
  auto variants = tiny_variants();
  Json slow = variants[1].to_json();
  json_set_path(slow, "run.time_budget", Json(1e9));
  json_set_path(slow, "run.max_rounds", Json(100000000));
  variants[1] = ScenarioSpec::from_json(slow);

  TempDir dir;
  FarmOptions fo;
  fo.variant_timeout = 0.05;
  fo.backoff_base = 0.01;
  const FarmResult fr = run_farm(variants, dir.path.string(), {}, fo, no_timing());
  EXPECT_EQ(fr.failed, 1u);
  EXPECT_EQ(fr.completed, 2u);
  EXPECT_EQ(fr.statuses[1].state, VariantStatus::State::kFailed);
  EXPECT_NE(fr.statuses[1].error.find("timeout"), std::string::npos);
  EXPECT_EQ(fr.statuses[0].state, VariantStatus::State::kDone);
  EXPECT_EQ(fr.statuses[2].state, VariantStatus::State::kDone);
}

TEST_F(FarmTest, StopRequestInterruptsAndResumeFinishesIdentically) {
  const auto variants = tiny_variants();
  TempDir ref, dir;
  run_farm(variants, ref.path.string(), {}, {}, no_timing());

  FarmOptions fo;
  fo.on_status = [](const VariantStatus&) { farm_request_stop(); };  // "Ctrl-C" after 1st
  const FarmResult fr = run_farm(variants, dir.path.string(), {}, fo, no_timing());
  EXPECT_TRUE(fr.interrupted);
  EXPECT_GE(fr.completed, 1u);
  EXPECT_LT(fr.completed, 3u);
  EXPECT_FALSE(fs::exists(dir.path / "results.jsonl"));  // no misleading partial outputs

  farm_clear_stop();
  FarmOptions resume;
  resume.resume = true;
  const FarmResult fin = run_farm(variants, dir.path.string(), {}, resume, no_timing());
  EXPECT_FALSE(fin.interrupted);
  EXPECT_EQ(fin.resumed_skips + fin.completed, 3u);
  expect_outputs_identical(ref.path, dir.path);
}

TEST_F(FarmTest, CorruptStashForcesExactlyThatVariantToReRun) {
  const auto variants = tiny_variants();
  TempDir ref, dir;
  run_farm(variants, ref.path.string(), {}, {}, no_timing());
  run_farm(variants, dir.path.string(), {}, {}, no_timing());

  // Truncate variant 1's stash mid-file: the manifest still says done, but
  // the resume must detect the damage and re-run exactly that variant.
  const fs::path stash = dir.path / "farm" / "variant_000001.json";
  const std::string bytes = read_file(stash);
  {
    std::ofstream out(stash, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  FarmOptions resume;
  resume.resume = true;
  const FarmResult fr = run_farm(variants, dir.path.string(), {}, resume, no_timing());
  EXPECT_EQ(fr.resumed_skips, 2u);
  EXPECT_EQ(fr.completed, 1u);
  EXPECT_EQ(fr.statuses[1].state, VariantStatus::State::kDone);
  expect_outputs_identical(ref.path, dir.path);
}

TEST_F(FarmTest, ChangedOverridesInvalidateDoneRecords) {
  const auto variants = tiny_variants();
  TempDir dir;
  run_farm(variants, dir.path.string(), {}, {}, no_timing());

  // Same study, new time-budget override: the config hashes change, so a
  // resume must trust nothing and re-run every variant.
  RunOverrides ov;
  ov.time_budget = 150.0;
  FarmOptions resume;
  resume.resume = true;
  const FarmResult fr = run_farm(variants, dir.path.string(), ov, resume, no_timing());
  EXPECT_EQ(fr.resumed_skips, 0u);
  EXPECT_EQ(fr.completed, 3u);
}

TEST_F(FarmTest, ShardedRunsMergeIntoTheUnshardedBytes) {
  const auto variants = tiny_variants();
  TempDir ref, s1, s2, merged;
  run_farm(variants, ref.path.string(), {}, {}, no_timing());

  FarmOptions shard1;
  shard1.shard_index = 1;
  shard1.shard_count = 2;
  const FarmResult r1 = run_farm(variants, s1.path.string(), {}, shard1, no_timing());
  EXPECT_EQ(r1.completed, 2u);  // variants 0 and 2
  FarmOptions shard2;
  shard2.shard_index = 2;
  shard2.shard_count = 2;
  const FarmResult r2 = run_farm(variants, s2.path.string(), {}, shard2, no_timing());
  EXPECT_EQ(r2.completed, 1u);  // variant 1

  const FarmResult m = merge_results(merged.path.string(),
                                     {s1.path.string(), s2.path.string()}, no_timing());
  EXPECT_EQ(m.completed, 3u);
  ASSERT_EQ(m.statuses.size(), 3u);
  for (const auto& st : m.statuses) EXPECT_EQ(st.state, VariantStatus::State::kDone);
  expect_outputs_identical(ref.path, merged.path);
}

TEST_F(FarmTest, MergeReportsMissingVariantsAndRejectsConflicts) {
  const auto variants = tiny_variants();
  TempDir s1, merged;
  FarmOptions shard1;
  shard1.shard_index = 1;
  shard1.shard_count = 2;
  run_farm(variants, s1.path.string(), {}, shard1, no_timing());

  // Only shard 1 present: variant 1 is missing and must be visible as such.
  const FarmResult m =
      merge_results(merged.path.string(), {s1.path.string()}, no_timing());
  EXPECT_EQ(m.completed, 2u);
  ASSERT_EQ(m.statuses.size(), 3u);
  EXPECT_EQ(m.statuses[1].state, VariantStatus::State::kNotRun);

  // A shard of a *different* study claiming the same variant indexes must
  // be refused, not silently mixed in. (Same shard 1/2 as s1, other seeds:
  // variants 0 and 2 collide with different config hashes.)
  TempDir other;
  auto other_variants = expand_sweeps(tiny_spec(), {{"run.seed", {Json(7), Json(8), Json(9)}}});
  run_farm(other_variants, other.path.string(), {}, shard1, no_timing());
  TempDir conflict;
  EXPECT_THROW(
      merge_results(conflict.path.string(), {s1.path.string(), other.path.string()}, no_timing()),
      std::runtime_error);
}

TEST_F(FarmTest, AppendModeIsRejected) {
  WriteOptions wo;
  wo.append = true;
  TempDir dir;
  EXPECT_THROW(run_farm(tiny_variants(), dir.path.string(), {}, {}, wo), std::invalid_argument);
  EXPECT_THROW(merge_results(dir.path.string(), {}, wo), std::invalid_argument);
}

TEST_F(FarmTest, FarmCountersAccumulateInTheGlobalRegistry) {
  const auto variants = tiny_variants();
  TempDir dir;
  util::fault::arm("variant_run:0:throw_once");
  FarmOptions fo;
  fo.retries = 1;
  fo.backoff_base = 0.01;
  run_farm(variants, dir.path.string(), {}, fo, no_timing());
  const obs::MetricsSnapshot snap = obs::global_registry().snapshot();
  std::uint64_t retries = 0;
  for (const auto& [name, value] : snap.counters)
    if (name == "farm.retries") retries = value;
  EXPECT_GE(retries, 1u);
}

}  // namespace
}  // namespace airfedga::scenario
