#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "fl/mechanisms.hpp"
#include "ml/zoo.hpp"

namespace airfedga::fl {
namespace {

/// Small but real FL problem: 20 workers, 10-class 16-dim synthetic data,
/// label-skew partition, softmax-regression model (170 parameters).
struct Fixture {
  data::TrainTest data;
  FLConfig cfg;

  explicit Fixture(std::uint64_t seed = 42, std::size_t workers = 20) {
    data.train = data::make_synthetic_flat(16, {workers * 50, 10, 1.0, 0.3, seed});
    data.test = data::make_synthetic_flat(16, {400, 10, 1.0, 0.3, seed});
    util::Rng rng(seed);
    cfg.train = &data.train;
    cfg.test = &data.test;
    cfg.partition = data::partition_label_skew(data.train, workers, rng);
    cfg.model_factory = [] { return ml::make_softmax_regression(16, 10); };
    cfg.learning_rate = 0.3f;
    cfg.batch_size = 0;  // full local shard, the paper's Eq. 4
    cfg.cluster.base_seconds = 6.0;
    cfg.cluster.seed = seed + 1;
    cfg.fading.seed = seed + 2;
    cfg.time_budget = 2500.0;
    cfg.eval_every = 5;
    cfg.eval_samples = 400;
    cfg.seed = seed;
  }
};

TEST(FLConfigValidation, CatchesMissingPieces) {
  FLConfig cfg;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  Fixture f;
  EXPECT_NO_THROW(f.cfg.validate());
  f.cfg.learning_rate = 0.0f;
  EXPECT_THROW(f.cfg.validate(), std::invalid_argument);
}

TEST(AllMechanisms, ProduceMonotoneTimeSeries) {
  Fixture f;
  FedAvg fedavg;
  AirFedAvg airfedavg;
  DynamicAirComp dynamic;
  TiFL tifl;
  AirFedGA airfedga;
  for (Mechanism* m :
       std::initializer_list<Mechanism*>{&fedavg, &airfedavg, &dynamic, &tifl, &airfedga}) {
    const Metrics res = m->run(f.cfg);
    ASSERT_FALSE(res.empty()) << m->name();
    EXPECT_GT(res.total_rounds(), 0u) << m->name();
    double prev = -1.0;
    for (const auto& p : res.points()) {
      EXPECT_GE(p.time, prev) << m->name();
      prev = p.time;
      EXPECT_GE(p.loss, 0.0);
      EXPECT_GE(p.accuracy, 0.0);
      EXPECT_LE(p.accuracy, 1.0);
    }
    EXPECT_LE(res.total_time(), f.cfg.time_budget + 1e-9) << m->name();
  }
}

TEST(AllMechanisms, DeterministicForSameSeed) {
  Fixture a(7), b(7);
  AirFedGA ga1, ga2;
  const Metrics r1 = ga1.run(a.cfg);
  const Metrics r2 = ga2.run(b.cfg);
  ASSERT_EQ(r1.points().size(), r2.points().size());
  for (std::size_t i = 0; i < r1.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.points()[i].time, r2.points()[i].time);
    EXPECT_DOUBLE_EQ(r1.points()[i].loss, r2.points()[i].loss);
    EXPECT_DOUBLE_EQ(r1.points()[i].accuracy, r2.points()[i].accuracy);
  }
}

TEST(AllMechanisms, SeedsChangeTrajectories) {
  Fixture a(7), b(8);
  AirFedAvg m1, m2;
  const Metrics r1 = m1.run(a.cfg);
  const Metrics r2 = m2.run(b.cfg);
  EXPECT_NE(r1.final_loss(), r2.final_loss());
}

TEST(FedAvg, LearnsTheProblem) {
  Fixture f;
  f.cfg.time_budget = 8000.0;
  FedAvg m;
  const Metrics res = m.run(f.cfg);
  EXPECT_LT(res.final_loss(), res.points().front().loss);
  EXPECT_GT(res.final_accuracy(), 0.6);
}

TEST(FedAvg, RoundTimeMatchesOmaModel) {
  Fixture f;
  FedAvg m;
  const Metrics res = m.run(f.cfg);
  // Round duration = max_i l_i + N * q*32/rate, identical every round.
  sim::ClusterModel cluster(f.cfg.partition.size(), f.cfg.cluster);
  const auto lt = cluster.local_times();
  const double lmax = *std::max_element(lt.begin(), lt.end());
  const double q = 16 * 10 + 10;
  const double upload = static_cast<double>(f.cfg.partition.size()) * q * 32.0 / 1e6;
  EXPECT_NEAR(res.average_round_time(), lmax + upload, 1e-6);
}

TEST(AirFedAvg, FasterRoundsThanFedAvg) {
  Fixture f;
  FedAvg oma;
  AirFedAvg air;
  const Metrics r_oma = oma.run(f.cfg);
  const Metrics r_air = air.run(f.cfg);
  EXPECT_LT(r_air.average_round_time(), r_oma.average_round_time());
  // AirComp accumulates transmit energy; OMA harness records none.
  EXPECT_GT(r_air.total_energy(), 0.0);
  EXPECT_DOUBLE_EQ(r_oma.total_energy(), 0.0);
}

TEST(AirFedAvg, NearlyMatchesFedAvgAccuracyPerRound) {
  // With optimal power control, over-the-air aggregation error is small:
  // after the same number of rounds the two synchronous mechanisms should
  // be close in loss (channel noise costs a little).
  Fixture f;
  f.cfg.max_rounds = 25;
  f.cfg.time_budget = 1e9;
  f.cfg.eval_every = 25;
  FedAvg oma;
  AirFedAvg air;
  const Metrics r_oma = oma.run(f.cfg);
  const Metrics r_air = air.run(f.cfg);
  EXPECT_NEAR(r_air.final_loss(), r_oma.final_loss(), 0.25 * r_oma.final_loss() + 0.05);
}

TEST(Dynamic, SelectsSubsetsAndJitters) {
  Fixture f;
  DynamicAirComp m(MechanismConfig{.selection_quantile = 0.5});
  const Metrics res = m.run(f.cfg);
  ASSERT_GT(res.points().size(), 3u);
  EXPECT_GT(res.total_energy(), 0.0);
}

TEST(Dynamic, RejectsBadQuantile) {
  Fixture f;
  DynamicAirComp m(MechanismConfig{.selection_quantile = 1.5});
  EXPECT_THROW(m.run(f.cfg), std::invalid_argument);
}

TEST(TiFL, TiersExposedAndAsyncRoundsShorterThanSync) {
  Fixture f;
  TiFL tifl(MechanismConfig{.tiers = 5});
  const Metrics r_tifl = tifl.run(f.cfg);
  EXPECT_EQ(tifl.tiers().size(), 5u);
  data::validate_groups(tifl.tiers(), f.cfg.partition.size());

  FedAvg fedavg;
  const Metrics r_sync = fedavg.run(f.cfg);
  EXPECT_LT(r_tifl.average_round_time(), r_sync.average_round_time());
}

TEST(TiFL, RecordsPositiveStaleness) {
  Fixture f;
  TiFL tifl(MechanismConfig{.tiers = 5});
  const Metrics res = tifl.run(f.cfg);
  EXPECT_GT(res.max_staleness(), 0.0);
}

TEST(AirFedGA, GroupsAreValidAndTimeSimilar) {
  Fixture f;
  AirFedGA m;
  const Metrics res = m.run(f.cfg);
  ASSERT_FALSE(res.empty());
  data::validate_groups(m.groups(), f.cfg.partition.size());

  sim::ClusterModel cluster(f.cfg.partition.size(), f.cfg.cluster);
  const auto lt = cluster.local_times();
  const auto [mn, mx] = std::minmax_element(lt.begin(), lt.end());
  const double allowed = 0.3 * (*mx - *mn);  // default xi
  for (const auto& g : m.groups()) {
    double gmax = 0.0, gmin = 1e300;
    for (auto w : g) {
      gmax = std::max(gmax, lt[w]);
      gmin = std::min(gmin, lt[w]);
    }
    EXPECT_LE(gmax - gmin, allowed + 1e-9);
  }
}

TEST(AirFedGA, ShorterRoundsThanSyncAirComp) {
  Fixture f;
  AirFedGA ga;
  AirFedAvg sync;
  const Metrics r_ga = ga.run(f.cfg);
  const Metrics r_sync = sync.run(f.cfg);
  // A group's round waits only for its own slowest member.
  EXPECT_LT(r_ga.average_round_time(), r_sync.average_round_time());
}

TEST(AirFedGA, ReachesTargetFasterThanSyncBaselines) {
  // The paper's headline claim (§VI-B1) at small scale: time to a stable
  // accuracy is shorter for Air-FedGA than for Air-FedAvg. Needs enough
  // workers per class (40 workers, 10 classes) for groups to mix labels.
  Fixture f(42, 40);
  f.cfg.time_budget = 4000.0;
  AirFedGA ga;
  AirFedAvg sync;
  const Metrics r_ga = ga.run(f.cfg);
  const Metrics r_sync = sync.run(f.cfg);
  const double target = 0.55;
  const double t_ga = r_ga.time_to_accuracy(target);
  const double t_sync = r_sync.time_to_accuracy(target);
  ASSERT_GT(t_ga, 0.0) << "Air-FedGA never reached the target";
  ASSERT_GT(t_sync, 0.0) << "Air-FedAvg never reached the target";
  EXPECT_LT(t_ga, t_sync);
}

TEST(AirFedGA, GroupOverrideIsHonored) {
  Fixture f(11, 8);
  data::WorkerGroups groups = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  MechanismConfig opts;
  opts.groups_override = groups;
  AirFedGA m(opts);
  const Metrics res = m.run(f.cfg);
  ASSERT_FALSE(res.empty());
  EXPECT_EQ(m.groups(), groups);
}

TEST(AirFedGA, GroupOverrideRejectsInvalid) {
  Fixture f(11, 8);
  MechanismConfig opts;
  opts.groups_override = data::WorkerGroups{{0, 1}};  // misses workers 2..7
  AirFedGA m(opts);
  EXPECT_THROW(m.run(f.cfg), std::invalid_argument);
}

TEST(AirFedGA, StalenessDampingRuns) {
  Fixture f;
  MechanismConfig opts;
  opts.staleness_damping = 0.5;
  AirFedGA damped(opts);
  const Metrics res = damped.run(f.cfg);
  ASSERT_FALSE(res.empty());
  EXPECT_GT(res.final_accuracy(), 0.2);
}

TEST(AirFedGA, StarvedGroupDoesNotBlockOthers) {
  // One worker is so slow its singleton group cannot finish within the
  // budget; the rest of the system must keep aggregating.
  Fixture f(13, 6);
  data::WorkerGroups groups = {{0}, {1}, {2}, {3}, {4}, {5}};
  MechanismConfig opts;
  opts.groups_override = groups;
  AirFedGA m(opts);
  f.cfg.cluster.kappa_max = 10.0;
  f.cfg.time_budget = 400.0;  // slowest workers (l ~ 60s) get few rounds
  const Metrics res = m.run(f.cfg);
  EXPECT_GT(res.total_rounds(), 5u);
}

TEST(AirFedGA, EarlyStopHonorsTarget) {
  Fixture f;
  f.cfg.stop_at_accuracy = 0.4;
  f.cfg.time_budget = 1e6;
  f.cfg.max_rounds = 100000;
  AirFedGA m;
  const Metrics res = m.run(f.cfg);
  ASSERT_FALSE(res.empty());
  // Stopped well before the (absurd) budget once the target was hit.
  EXPECT_LT(res.total_time(), 1e5);
  EXPECT_GE(res.final_accuracy(), 0.35);
}

TEST(AirFedGA, RecordsStalenessAndEnergy) {
  Fixture f;
  AirFedGA m;
  const Metrics res = m.run(f.cfg);
  EXPECT_GT(res.total_energy(), 0.0);
  // With multiple asynchronous groups some aggregation must be stale.
  EXPECT_GT(res.max_staleness(), 0.0);
}

TEST(FedAsync, LearnsAndRecordsStaleness) {
  Fixture f;
  FedAsync m(MechanismConfig{.mixing = 0.6, .damping = 0.5});
  const Metrics res = m.run(f.cfg);
  ASSERT_FALSE(res.empty());
  EXPECT_GT(res.total_rounds(), 50u);  // per-worker updates come fast
  EXPECT_GT(res.max_staleness(), 5.0);  // and stale (N-1 peers update between)
  EXPECT_LT(res.final_loss(), res.points().front().loss);
}

TEST(FedAsync, RoundsAreWorkerGrained) {
  // Average "round" duration is one worker's turnaround divided by N
  // (every completion is a global update), far below any group mechanism.
  Fixture f;
  FedAsync async_m;
  AirFedGA ga;
  const Metrics r_async = async_m.run(f.cfg);
  const Metrics r_ga = ga.run(f.cfg);
  EXPECT_LT(r_async.average_round_time(), r_ga.average_round_time());
}

TEST(FedAsync, DampingStabilizesUnderSkew) {
  // With label-skewed singleton updates, undamped mixing thrashes the
  // global model; damping by (1+tau)^a must not be worse at the end.
  Fixture f;
  FedAsync undamped(MechanismConfig{.mixing = 0.9, .damping = 0.0});
  FedAsync damped(MechanismConfig{.mixing = 0.9, .damping = 1.0});
  const Metrics r_un = undamped.run(f.cfg);
  const Metrics r_da = damped.run(f.cfg);
  auto tail_mean = [](const Metrics& m) {
    const auto& p = m.points();
    const std::size_t k = std::min<std::size_t>(5, p.size());
    double acc = 0.0;
    for (std::size_t i = p.size() - k; i < p.size(); ++i) acc += p[i].accuracy;
    return acc / static_cast<double>(k);
  };
  EXPECT_GE(tail_mean(r_da) + 0.05, tail_mean(r_un));
}

TEST(FedAsync, RejectsBadParameters) {
  Fixture f;
  FedAsync bad_mixing(MechanismConfig{.mixing = 0.0, .damping = 0.5});
  EXPECT_THROW(bad_mixing.run(f.cfg), std::invalid_argument);
  FedAsync bad_damping(MechanismConfig{.mixing = 0.5, .damping = -1.0});
  EXPECT_THROW(bad_damping.run(f.cfg), std::invalid_argument);
}

/// Seed-sweep property tests: the Alg. 1 invariants must hold for every
/// random instance, not just the fixture's default seed.
class AirFedGaProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(AirFedGaProperty, ProtocolInvariantsAcrossSeeds) {
  Fixture f(GetParam(), 24);
  f.cfg.time_budget = 1200.0;
  f.cfg.eval_every = 1;
  AirFedGA ga;
  const Metrics res = ga.run(f.cfg);
  ASSERT_FALSE(res.empty());

  // (1) Valid grouping under constraint (36d).
  data::validate_groups(ga.groups(), 24);
  sim::ClusterModel cluster(24, f.cfg.cluster);
  const auto lt = cluster.local_times();
  const auto [mn, mx] = std::minmax_element(lt.begin(), lt.end());
  for (const auto& g : ga.groups()) {
    double gmax = 0.0, gmin = 1e300;
    for (auto w : g) {
      gmax = std::max(gmax, lt[w]);
      gmin = std::min(gmin, lt[w]);
    }
    EXPECT_LE(gmax - gmin, 0.3 * (*mx - *mn) + 1e-9);
  }

  // (2) Monotone virtual time and rounds; staleness below total rounds.
  double prev_time = -1.0;
  std::size_t prev_round = 0;
  for (const auto& p : res.points()) {
    EXPECT_GE(p.time, prev_time);
    EXPECT_GT(p.round, prev_round);
    EXPECT_LT(p.staleness, static_cast<double>(p.round));
    prev_time = p.time;
    prev_round = p.round;
  }

  // (3) Energy increments bounded by group size * cap per round.
  std::size_t max_group = 0;
  for (const auto& g : ga.groups()) max_group = std::max(max_group, g.size());
  double prev_energy = 0.0;
  for (const auto& p : res.points()) {
    EXPECT_LE(p.energy - prev_energy,
              static_cast<double>(max_group) * f.cfg.energy_cap + 1e-9);
    prev_energy = p.energy;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AirFedGaProperty,
                         testing::Values(101u, 202u, 303u, 404u, 505u, 606u));

TEST(AirFedGA, RunsUnderPathLossChannel) {
  // Path-loss heterogeneity (distant workers have weak average channels)
  // feeds straight into the power control's energy bound; the pipeline
  // must stay stable and keep learning.
  Fixture f;
  f.cfg.fading.pathloss_exponent = 3.0;
  f.cfg.time_budget = 2000.0;
  AirFedGA ga;
  const Metrics res = ga.run(f.cfg);
  ASSERT_FALSE(res.empty());
  EXPECT_LT(res.final_loss(), res.points().front().loss);
  EXPECT_GT(res.total_energy(), 0.0);
}

TEST(AllMechanisms, ReturnTrainedFinalModel) {
  // Alg. 1 line 32: the run returns w_T. The vector must have the model
  // dimension and evaluate to the recorded final metrics.
  Fixture f;
  f.cfg.time_budget = 800.0;
  f.cfg.eval_every = 1;  // record every round so w_T matches the last point
  AirFedGA ga;
  const Metrics res = ga.run(f.cfg);
  ASSERT_EQ(res.final_model().size(), f.cfg.model_factory().num_parameters());

  ml::Model m = f.cfg.model_factory();
  m.set_parameters(res.final_model());
  std::vector<std::size_t> idx(f.cfg.eval_samples);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  ml::Tensor xs = ml::gather_rows(f.data.test.xs, idx);
  std::span<const int> ys(f.data.test.ys.data(), f.cfg.eval_samples);
  const auto ev = m.evaluate(xs, ys);
  EXPECT_NEAR(ev.accuracy, res.final_accuracy(), 1e-9);

  FedAvg fedavg;
  EXPECT_EQ(fedavg.run(f.cfg).final_model().size(), res.final_model().size());
  FedAsync fedasync;
  EXPECT_EQ(fedasync.run(f.cfg).final_model().size(), res.final_model().size());
}

TEST(MaxRounds, CapsAllMechanisms) {
  Fixture f;
  f.cfg.max_rounds = 7;
  f.cfg.eval_every = 1;
  f.cfg.time_budget = 1e9;
  AirFedGA ga;
  TiFL tifl(MechanismConfig{.tiers = 4});
  AirFedAvg sync;
  EXPECT_EQ(ga.run(f.cfg).total_rounds(), 7u);
  EXPECT_EQ(tifl.run(f.cfg).total_rounds(), 7u);
  EXPECT_EQ(sync.run(f.cfg).total_rounds(), 7u);
}

}  // namespace
}  // namespace airfedga::fl
