// Tests for the farm's durable run manifest: append/reload round-trips,
// final-state queries, and — the crash-safety core — torn-tail recovery at
// every possible byte boundary of the last record, with real corruption
// (a damaged interior record) rejected instead of silently repaired.

#include "scenario/manifest.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace airfedga::scenario {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  static std::size_t next_id() {
    static std::size_t id = 0;
    return id++;
  }
  fs::path path;
  TempDir() : path(fs::temp_directory_path() /
                   ("airfedga_manifest_test_" + std::to_string(::getpid()) + "_" +
                    std::to_string(next_id()))) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

ManifestRecord rec(std::size_t variant, const std::string& state, std::size_t attempt = 1,
                   const std::string& error = "") {
  return {variant, "hash" + std::to_string(variant), "variant-" + std::to_string(variant),
          state, attempt, error};
}

TEST(Manifest, AppendThenReopenRoundTrips) {
  TempDir dir;
  {
    Manifest m = Manifest::open(dir.path.string());
    m.append(rec(0, "running"));
    m.append(rec(0, "done"));
    m.append(rec(1, "running"));
    m.append(rec(1, "failed", 2, "injected"));
  }
  Manifest m = Manifest::open(dir.path.string());
  EXPECT_EQ(m.truncated_bytes(), 0u);
  ASSERT_EQ(m.records().size(), 4u);
  EXPECT_EQ(m.records()[1].state, "done");
  EXPECT_EQ(m.records()[3].attempt, 2u);
  EXPECT_EQ(m.records()[3].error, "injected");
}

TEST(Manifest, StateOfReportsTheLastMatchingRecord) {
  TempDir dir;
  Manifest m = Manifest::open(dir.path.string());
  m.append(rec(0, "running"));
  EXPECT_EQ(m.state_of(0, "hash0"), "running");  // crashed mid-variant reads as running
  m.append(rec(0, "done"));
  EXPECT_EQ(m.state_of(0, "hash0"), "done");
  EXPECT_EQ(m.state_of(0, "otherhash"), "");  // an edited study never matches
  EXPECT_EQ(m.state_of(7, "hash7"), "");      // never journalled
}

TEST(Manifest, FailedThenDoneReadsDone) {
  TempDir dir;
  Manifest m = Manifest::open(dir.path.string());
  m.append(rec(2, "failed", 3, "timeout"));
  m.append(rec(2, "running", 1));
  m.append(rec(2, "done", 1));
  EXPECT_EQ(m.state_of(2, "hash2"), "done");
}

// The one write a crash can interrupt is the trailing one. Cutting the
// file at *every* byte inside the last record must recover to exactly the
// earlier records, with the torn bytes reported and physically truncated.
TEST(Manifest, RecoversTornTailAtEveryByteBoundary) {
  TempDir ref_dir;
  {
    Manifest m = Manifest::open(ref_dir.path.string());
    m.append(rec(0, "running"));
    m.append(rec(0, "done"));
    m.append(rec(1, "running"));
  }
  const std::string full = read_file(Manifest::path_in(ref_dir.path.string()));
  ASSERT_FALSE(full.empty());
  // Offset where the last record starts = after the second newline.
  const std::size_t second_nl = full.find('\n', full.find('\n') + 1);
  ASSERT_NE(second_nl, std::string::npos);
  const std::size_t last_begin = second_nl + 1;
  ASSERT_LT(last_begin, full.size());

  for (std::size_t cut = last_begin; cut < full.size(); ++cut) {
    TempDir dir;
    fs::create_directories(dir.path);
    {
      std::ofstream out(Manifest::path_in(dir.path.string()), std::ios::binary);
      out.write(full.data(), static_cast<std::streamsize>(cut));
    }
    Manifest m = Manifest::open(dir.path.string());
    EXPECT_EQ(m.records().size(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(m.truncated_bytes(), cut - last_begin) << "cut at byte " << cut;
    EXPECT_EQ(m.state_of(0, "hash0"), "done");
    EXPECT_EQ(m.state_of(1, "hash1"), "");  // the torn running record is gone
    // The file itself must end at the recovered boundary, so a *second*
    // reopen sees a clean manifest.
    EXPECT_EQ(fs::file_size(Manifest::path_in(dir.path.string())), last_begin);
  }
}

TEST(Manifest, AppendAfterRecoveryProducesACleanFile) {
  TempDir dir;
  {
    Manifest m = Manifest::open(dir.path.string());
    m.append(rec(0, "done"));
  }
  // Simulate a torn append: half a record at the tail.
  {
    std::ofstream out(Manifest::path_in(dir.path.string()), std::ios::binary | std::ios::app);
    out << "{\"m\":1,\"variant\":1,\"ha";
  }
  Manifest m = Manifest::open(dir.path.string());
  EXPECT_GT(m.truncated_bytes(), 0u);
  m.append(rec(1, "running"));
  m.append(rec(1, "done"));
  Manifest again = Manifest::open(dir.path.string());
  EXPECT_EQ(again.truncated_bytes(), 0u);
  ASSERT_EQ(again.records().size(), 3u);
  EXPECT_EQ(again.state_of(1, "hash1"), "done");
}

TEST(Manifest, RefusesCorruptInteriorRecords) {
  TempDir dir;
  fs::create_directories(dir.path);
  {
    std::ofstream out(Manifest::path_in(dir.path.string()), std::ios::binary);
    out << rec(0, "done").to_json().dump() << "\n"
        << "this is not json\n"
        << rec(1, "done").to_json().dump() << "\n";
  }
  // Garbage *between* intact records cannot be crash damage (appends are
  // sequential); guessing would silently drop completed work.
  EXPECT_THROW(Manifest::open(dir.path.string()), std::runtime_error);
}

TEST(ManifestRecord, JsonRoundTripAndValidation) {
  const ManifestRecord r = rec(5, "failed", 2, "boom");
  const ManifestRecord back = ManifestRecord::from_json(r.to_json());
  EXPECT_EQ(back.variant, 5u);
  EXPECT_EQ(back.config_hash, "hash5");
  EXPECT_EQ(back.state, "failed");
  EXPECT_EQ(back.attempt, 2u);
  EXPECT_EQ(back.error, "boom");

  Json bad = r.to_json();
  bad.set("state", "paused");
  EXPECT_THROW(ManifestRecord::from_json(bad), std::runtime_error);
  Json wrong_version = r.to_json();
  wrong_version.set("m", 99);
  EXPECT_THROW(ManifestRecord::from_json(wrong_version), std::runtime_error);
}

}  // namespace
}  // namespace airfedga::scenario
