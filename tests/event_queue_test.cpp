#include <gtest/gtest.h>

#include "sim/event_queue.hpp"

namespace airfedga::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.schedule(3.0, 0, 1);
  q.schedule(1.0, 0, 2);
  q.schedule(2.0, 0, 3);
  EXPECT_EQ(q.pop().actor, 2u);
  EXPECT_EQ(q.pop().actor, 3u);
  EXPECT_EQ(q.pop().actor, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  q.schedule(1.0, 0, 10);
  q.schedule(1.0, 0, 20);
  q.schedule(1.0, 0, 30);
  EXPECT_EQ(q.pop().actor, 10u);
  EXPECT_EQ(q.pop().actor, 20u);
  EXPECT_EQ(q.pop().actor, 30u);
}

TEST(EventQueue, ClockAdvancesMonotonically) {
  EventQueue q;
  q.schedule(5.0, 0, 0);
  q.schedule(2.0, 0, 0);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  q.pop();
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  q.pop();
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, RejectsSchedulingIntoPast) {
  EventQueue q;
  q.schedule(2.0, 0, 0);
  q.pop();
  EXPECT_THROW(q.schedule(1.0, 0, 0), std::invalid_argument);
  EXPECT_NO_THROW(q.schedule(2.0, 0, 0));  // "now" is allowed
}

TEST(EventQueue, RejectsNonFiniteTime) {
  EventQueue q;
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::infinity(), 0, 0),
               std::invalid_argument);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::quiet_NaN(), 0, 0),
               std::invalid_argument);
}

TEST(EventQueue, PeekDoesNotAdvance) {
  EventQueue q;
  q.schedule(4.0, 7, 9);
  EXPECT_DOUBLE_EQ(q.peek_time(), 4.0);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PeekReturnsEarliestEventIntact) {
  EventQueue q;
  q.schedule(4.0, 7, 9);
  q.schedule(2.0, 3, 5);
  const Event& e = q.peek();
  EXPECT_DOUBLE_EQ(e.time, 2.0);
  EXPECT_EQ(e.kind, 3);
  EXPECT_EQ(e.actor, 5u);
  EXPECT_EQ(q.size(), 2u);       // nothing was popped
  EXPECT_DOUBLE_EQ(q.now(), 0.0);  // the clock did not advance
  EXPECT_EQ(q.pop().actor, 5u);  // pop agrees with peek
}

TEST(EventQueue, EmptyPopThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(static_cast<void>(q.peek_time()), std::logic_error);
  EXPECT_THROW(static_cast<void>(q.peek()), std::logic_error);
}

TEST(EventQueue, KindAndActorRoundTrip) {
  EventQueue q;
  q.schedule(1.0, 42, 99);
  const auto e = q.pop();
  EXPECT_EQ(e.kind, 42);
  EXPECT_EQ(e.actor, 99u);
  EXPECT_DOUBLE_EQ(e.time, 1.0);
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  EventQueue q;
  q.schedule(1.0, 0, 1);
  const auto e1 = q.pop();
  q.schedule(e1.time + 1.0, 0, 2);
  q.schedule(e1.time + 0.5, 0, 3);
  EXPECT_EQ(q.pop().actor, 3u);
  EXPECT_EQ(q.pop().actor, 2u);
}

}  // namespace
}  // namespace airfedga::sim
