// Tests for the observability layer: counter/histogram semantics, the
// registry, Chrome trace JSON well-formedness, the span report, the
// digest-invariance contract (tracing is read-only — Metrics::digest() is
// bit-identical with tracing off or on, at every lane count), and the
// zero-steady-state-allocation contract while tracing is enabled.
//
// Ordering note: obs::enable() pins the process-wide trace epoch and
// set_enabled() toggles collection globally, so every test that turns
// tracing on restores set_enabled(false) before returning.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/json.hpp"
#include "scenario/runner.hpp"
#include "support/alloc_hook.hpp"

namespace airfedga {
namespace {

/// Same deliberately tiny scenario the runner tests use: seconds of wall
/// time end to end, enough rounds to exercise the full engine.
scenario::ScenarioSpec tiny_spec() {
  scenario::ScenarioSpec s;
  s.name = "tiny";
  s.dataset = {"mnist_like", 120, 40, 1};
  s.model = {.kind = "softmax", .input_dim = 784, .num_classes = 10};
  s.partition.workers = 6;
  s.learning_rate = 0.5;
  s.batch_size = 0;
  s.time_budget = 200.0;
  s.max_rounds = 6;
  s.eval_every = 2;
  s.eval_samples = 40;
  s.threads = 1;
  s.mechanisms = {scenario::MechanismSpec{}};  // airfedga
  return s;
}

/// RAII guard: restores tracing to "off" however the test exits.
struct TracingOff {
  ~TracingOff() { obs::set_enabled(false); }
};

TEST(ObsCounter, AddSetReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.set(7);
  EXPECT_EQ(c.value(), 7u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsHistogram, BucketPlacementAndOverflow) {
  obs::Histogram h({1.0, 4.0, 16.0});
  h.record(0.0);   // <= 1
  h.record(1.0);   // <= 1 (boundary is inclusive)
  h.record(2.0);   // <= 4
  h.record(16.0);  // <= 16
  h.record(17.0);  // overflow
  const std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 36.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  for (std::uint64_t c : h.counts()) EXPECT_EQ(c, 0u);
}

TEST(ObsRegistry, InstrumentsAreAddressStableAndSnapshotSorted) {
  obs::Registry r;
  obs::Counter& a = r.counter("zebra");
  obs::Counter& b = r.counter("zebra");
  EXPECT_EQ(&a, &b);  // hot paths cache the reference once
  r.counter("apple").add(3);
  a.add(1);

  obs::Histogram& h1 = r.histogram("depth", {1.0, 2.0});
  obs::Histogram& h2 = r.histogram("depth", {99.0});  // bounds ignored after first
  EXPECT_EQ(&h1, &h2);
  ASSERT_EQ(h2.bounds().size(), 2u);
  h1.record(1.5);

  const obs::MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "apple");  // name-sorted
  EXPECT_EQ(snap.counters[0].second, 3u);
  EXPECT_EQ(snap.counters[1].first, "zebra");
  EXPECT_EQ(snap.counters[1].second, 1u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "depth");
  EXPECT_EQ(snap.histograms[0].count, 1u);
  ASSERT_EQ(snap.histograms[0].counts.size(), 3u);
  EXPECT_EQ(snap.histograms[0].counts[1], 1u);
  EXPECT_FALSE(snap.empty());
  EXPECT_TRUE(obs::MetricsSnapshot{}.empty());
}

TEST(ObsTrace, DisabledHooksRecordNothing) {
  obs::set_enabled(false);
  obs::reset_for_testing();
  {
    obs::Span s("test", "test.disabled");
    obs::instant("test", "test.disabled_instant");
  }
  std::ostringstream os;
  obs::write_chrome_json(os);
  const scenario::Json j = scenario::Json::parse(os.str());
  for (const auto& e : j.at("traceEvents").as_array())
    EXPECT_EQ(e.at("ph").as_string(), "M");  // only thread metadata, no events
}

TEST(ObsTrace, ChromeJsonShapeAndThreadNames) {
  TracingOff guard;
  obs::reset_for_testing();
  obs::name_this_thread("obs-test");
  obs::enable();
  {
    obs::Span outer("test", "test.outer");
    obs::Span inner("test", "test.inner");
    obs::instant("test", "test.tick", "depth", 3);
  }
  obs::Span skipped("test", "test.skipped", /*cond=*/false);  // stays disarmed
  obs::set_enabled(false);

  std::ostringstream os;
  obs::write_chrome_json(os);
  const scenario::Json j = scenario::Json::parse(os.str());
  const auto& events = j.at("traceEvents").as_array();

  std::size_t spans = 0, instants = 0;
  bool named = false, arg_seen = false;
  for (const auto& e : events) {
    const std::string& ph = e.at("ph").as_string();
    ASSERT_TRUE(ph == "M" || ph == "X" || ph == "i") << ph;
    if (ph == "M") {
      EXPECT_EQ(e.at("name").as_string(), "thread_name");
      named = named || e.at("args").at("name").as_string() == "obs-test";
    } else if (ph == "X") {
      ++spans;
      EXPECT_TRUE(e.contains("dur"));
      EXPECT_GE(e.at("dur").as_number(), 0.0);
      const std::string& name = e.at("name").as_string();
      EXPECT_TRUE(name == "test.outer" || name == "test.inner") << name;
      EXPECT_NE(name, "test.skipped");
    } else {
      ++instants;
      EXPECT_EQ(e.at("name").as_string(), "test.tick");
      EXPECT_EQ(e.at("args").at("depth").as_number(), 3.0);
      arg_seen = true;
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(instants, 1u);
  EXPECT_TRUE(named);
  EXPECT_TRUE(arg_seen);
}

TEST(ObsTrace, ReportSelfTimeNeverExceedsTotal) {
  TracingOff guard;
  obs::reset_for_testing();
  obs::enable();
  for (int i = 0; i < 3; ++i) {
    obs::Span outer("test", "test.parent");
    obs::Span inner("test", "test.child");
    volatile int sink = 0;
    for (int k = 0; k < 1000; ++k) sink = sink + k;
  }
  obs::set_enabled(false);

  const std::vector<obs::SpanStat> stats = obs::aggregate_spans();
  bool parent_seen = false;
  for (const auto& s : stats) {
    EXPECT_LE(s.self_ns, s.total_ns) << s.name;
    if (s.name == "test.parent") {
      parent_seen = true;
      EXPECT_EQ(s.count, 3u);
    }
  }
  EXPECT_TRUE(parent_seen);

  std::ostringstream os;
  obs::print_report(os);
  EXPECT_NE(os.str().find("test.parent"), std::string::npos);
}

TEST(ObsTrace, DigestBitIdenticalTracingOffOrOn) {
  TracingOff guard;
  const std::vector<std::size_t> lane_counts = {1, 2, 4};

  // Untraced digests first: enable() is sticky for the process, so the
  // baseline must run before tracing ever turns on in this binary's
  // scenario runs.
  obs::set_enabled(false);
  std::vector<std::string> untraced;
  for (std::size_t t : lane_counts) {
    scenario::ScenarioSpec s = tiny_spec();
    s.threads = t;
    const scenario::ScenarioResult r = scenario::run_scenario(s);
    ASSERT_EQ(r.runs.size(), 1u);
    untraced.push_back(r.runs[0].metrics.digest());
  }
  ASSERT_EQ(untraced[0], untraced[1]);  // engine determinism baseline
  ASSERT_EQ(untraced[1], untraced[2]);

  obs::enable();
  for (std::size_t i = 0; i < lane_counts.size(); ++i) {
    scenario::ScenarioSpec s = tiny_spec();
    s.threads = lane_counts[i];
    const scenario::ScenarioResult r = scenario::run_scenario(s);
    ASSERT_EQ(r.runs.size(), 1u);
    EXPECT_EQ(r.runs[0].metrics.digest(), untraced[i])
        << "tracing changed the digest at threads=" << lane_counts[i];
    // Tracing also populates the metrics snapshot the runner serializes.
    EXPECT_FALSE(r.runs[0].metrics.obs_snapshot().empty());
  }
  obs::set_enabled(false);
}

TEST(ObsTrace, SpecTraceKnobLowersToFLConfig) {
  scenario::ScenarioSpec s = tiny_spec();
  s.trace = true;
  const scenario::Json j = s.to_json();
  EXPECT_TRUE(j.at("run").at("trace").as_bool());
  const scenario::ScenarioSpec back = scenario::ScenarioSpec::from_json(j);
  EXPECT_TRUE(back.trace);
  scenario::BuiltScenario built = scenario::build(back);
  EXPECT_TRUE(built.cfg.trace);
}

TEST(ObsTrace, SteadyStateRecordingDoesNotAllocate) {
  TracingOff guard;
  obs::reset_for_testing();
  obs::enable();

  // Warm-up touches this thread's ring (allocated once at first event) so
  // the measured window below is pure steady state.
  { obs::Span warm("test", "test.warm"); }
  obs::instant("test", "test.warm_instant");

  const std::size_t before = alloc_hook::stats().count;
  for (int i = 0; i < 10000; ++i) {
    obs::Span s("test", "test.steady");
    obs::instant("test", "test.steady_instant", "i", i);
  }
  const std::size_t after = alloc_hook::stats().count;
  EXPECT_EQ(after, before) << "span/instant recording allocated on the hot path";

  // Counter and histogram updates are allocation-free too once resolved.
  obs::Registry r;
  obs::Counter& c = r.counter("steady");
  obs::Histogram& h = r.histogram("steady_hist", {1.0, 10.0, 100.0});
  const std::size_t before2 = alloc_hook::stats().count;
  for (int i = 0; i < 10000; ++i) {
    c.add();
    h.record(static_cast<double>(i % 128));
  }
  EXPECT_EQ(alloc_hook::stats().count, before2) << "metric updates allocated";
  obs::set_enabled(false);
}

}  // namespace
}  // namespace airfedga
