#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/convergence.hpp"
#include "util/rng.hpp"

namespace airfedga::core {
namespace {

TEST(ConvergenceConfig, DefaultValidates) { EXPECT_NO_THROW(ConvergenceConfig{}.validate()); }

TEST(ConvergenceConfig, RejectsGammaOutsideWindow) {
  ConvergenceConfig cfg;
  cfg.gamma = 0.4;  // <= 1/(2L) = 0.5
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.gamma = 1.0;  // >= 1/L
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.gamma = 0.75;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConvergenceConfig, RejectsMuAboveL) {
  ConvergenceConfig cfg;
  cfg.mu = 2.0;
  cfg.smooth_l = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(AggregationError, UnbiasedNoiselessIsZero) {
  EXPECT_DOUBLE_EQ(aggregation_error(0.5, 0.25, 100.0, 0.0, 10.0), 0.0);
}

TEST(AggregationError, HandComputed) {
  // sigma/sqrt(eta) = 2 -> bias term = 1 * W^2; noise = 4 / (25 * 1).
  EXPECT_DOUBLE_EQ(aggregation_error(2.0, 1.0, 7.0, 4.0, 5.0), 7.0 + 4.0 / 25.0);
}

TEST(ParticipationFrequencies, ProportionalToInverseTime) {
  std::vector<double> lj = {1.0, 2.0, 4.0};
  const auto psi = participation_frequencies(lj);
  // 1/L: 1, 0.5, 0.25 -> normalized by 1.75.
  EXPECT_NEAR(psi[0], 1.0 / 1.75, 1e-12);
  EXPECT_NEAR(psi[1], 0.5 / 1.75, 1e-12);
  EXPECT_NEAR(psi[2], 0.25 / 1.75, 1e-12);
  EXPECT_NEAR(psi[0] + psi[1] + psi[2], 1.0, 1e-12);
}

TEST(AverageRoundTime, Eq35HandComputed) {
  std::vector<double> lj = {2.0, 2.0};
  // 1 / (1/2 + 1/2) = 1.
  EXPECT_DOUBLE_EQ(average_round_time(lj), 1.0);
  std::vector<double> single = {3.0};
  EXPECT_DOUBLE_EQ(average_round_time(single), 3.0);
}

TEST(EstimatedMaxStaleness, Eq39HandComputed) {
  std::vector<double> lj = {1.0, 2.0};
  // Lmax * sum(1/L) = 2 * 1.5 = 3.
  EXPECT_DOUBLE_EQ(estimated_max_staleness(lj), 3.0);
  // Single group: Lmax * 1/Lmax = 1.
  std::vector<double> single = {7.0};
  EXPECT_DOUBLE_EQ(estimated_max_staleness(single), 1.0);
}

TEST(EstimatedMaxStaleness, GrowsWithGroupImbalance) {
  std::vector<double> balanced = {2.0, 2.0, 2.0};
  std::vector<double> imbalanced = {1.0, 2.0, 10.0};
  EXPECT_GT(estimated_max_staleness(imbalanced), estimated_max_staleness(balanced));
}

TEST(Lemma1, RhoAndDeltaFormulas) {
  EXPECT_DOUBLE_EQ(lemma1_rho(0.3, 0.4, 0.0), 0.7);
  EXPECT_DOUBLE_EQ(lemma1_rho(0.3, 0.4, 1.0), std::sqrt(0.7));
  EXPECT_DOUBLE_EQ(lemma1_delta(0.3, 0.4, 0.6), 2.0);
  EXPECT_THROW(lemma1_rho(0.6, 0.4, 0.0), std::invalid_argument);
}

/// Property test of Lemma 1: simulate the recursion
/// Q(t) = x Q(t-1) + y Q(l_t) + z with random admissible (x, y, z) and
/// random staleness pattern bounded by tau_max, and check the bound
/// Q(t) <= rho^t Q(0) + delta at every step.
class Lemma1Property : public testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1Property, BoundHoldsAlongRandomTrajectories) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const double x = rng.uniform(0.0, 0.7);
    const double y = rng.uniform(0.0, 0.99 - x);
    const double z = rng.uniform(0.0, 1.0);
    const int tau_max = static_cast<int>(rng.randint(0, 5));
    const double q0 = rng.uniform(0.5, 10.0);

    const double rho = lemma1_rho(x, y, tau_max);
    const double delta = lemma1_delta(x, y, z);

    std::vector<double> q = {q0};
    for (int t = 1; t <= 60; ++t) {
      // l_t = t - tau_t - 1 with tau_t <= tau_max; worst case maximizes
      // Q(l_t), i.e. the earliest admissible index.
      const int tau_t = static_cast<int>(rng.randint(0, std::min<std::int64_t>(tau_max, t - 1)));
      const int lt = t - tau_t - 1;
      const double qt = x * q[static_cast<std::size_t>(t - 1)] +
                        y * q[static_cast<std::size_t>(lt)] + z;
      q.push_back(qt);
      EXPECT_LE(qt, std::pow(rho, t) * q0 + delta + 1e-9)
          << "x=" << x << " y=" << y << " z=" << z << " tau_max=" << tau_max << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Property, testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(ContractionBase, MatchesFormula) {
  ConvergenceConfig cfg;
  std::vector<GroupPlan> groups = {{1.0, 0.5, 0.0}, {1.0, 0.5, 0.0}};
  // psi = {0.5, 0.5}, sum psi*beta = 0.5.
  const double coeff = 2.0 * cfg.mu * cfg.gamma - cfg.mu / cfg.smooth_l;
  EXPECT_NEAR(contraction_base(cfg, groups), 1.0 - coeff * 0.5, 1e-12);
}

TEST(ConvergenceRho, StalenessSlowsContractionPerRound) {
  ConvergenceConfig cfg;
  std::vector<GroupPlan> groups = {{1.0, 1.0, 0.0}};
  const double rho0 = convergence_rho(cfg, groups, 0.0);
  const double rho3 = convergence_rho(cfg, groups, 3.0);
  EXPECT_LT(rho0, rho3);  // Corollary 2
  EXPECT_GT(rho0, 0.0);
  EXPECT_LT(rho3, 1.0);
}

TEST(ResidualDelta, GrowsWithEmd) {
  // Corollary 1: larger Lambda_j -> larger delta.
  ConvergenceConfig cfg;
  std::vector<GroupPlan> iid = {{1.0, 0.5, 0.0}, {1.0, 0.5, 0.0}};
  std::vector<GroupPlan> skew = {{1.0, 0.5, 1.8}, {1.0, 0.5, 1.8}};
  EXPECT_LT(residual_delta(cfg, iid, 0.0), residual_delta(cfg, skew, 0.0));
  EXPECT_DOUBLE_EQ(residual_delta(cfg, iid, 0.0), 0.0);  // IID + error-free
}

TEST(ResidualDelta, GrowsWithAggregationError) {
  ConvergenceConfig cfg;
  std::vector<GroupPlan> groups = {{1.0, 1.0, 0.2}};
  EXPECT_LT(residual_delta(cfg, groups, 0.0), residual_delta(cfg, groups, 1.0));
}

TEST(RoundsToConverge, InfeasibleWhenDeltaExceedsEpsilon) {
  ConvergenceConfig cfg;
  cfg.epsilon = 1e-6;
  std::vector<GroupPlan> skew = {{1.0, 1.0, 1.8}};
  EXPECT_TRUE(std::isinf(rounds_to_converge(cfg, skew, 1.0, 0.0)));
}

TEST(RoundsToConverge, MoreStalenessNeedsMoreRounds) {
  ConvergenceConfig cfg;
  std::vector<GroupPlan> groups = {{1.0, 1.0, 0.0}};
  const double t0 = rounds_to_converge(cfg, groups, 0.0, 0.0);
  const double t5 = rounds_to_converge(cfg, groups, 5.0, 0.0);
  EXPECT_GT(t5, t0 * 4.0);
  EXPECT_TRUE(std::isfinite(t0));
}

TEST(TrainingTimeObjective, PrefersOneGroupForEqualSpeedWorkers) {
  // Corollary 2: for workers of identical speed, splitting buys nothing —
  // round time stays the same per group, but each round only contracts a
  // beta fraction and staleness inflates T. M=1 must win the objective.
  ConvergenceConfig cfg;
  std::vector<GroupPlan> one = {{10.0, 1.0, 0.0}};
  std::vector<GroupPlan> two = {{10.0, 0.5, 0.0}, {10.0, 0.5, 0.0}};
  const double obj1 = training_time_objective(cfg, one, 0.0);
  const double obj2 = training_time_objective(cfg, two, 0.0);
  EXPECT_TRUE(std::isfinite(obj1));
  EXPECT_TRUE(std::isfinite(obj2));
  EXPECT_LT(obj1, obj2);
}

TEST(TrainingTimeObjective, SheddingAStragglerCanPay) {
  // The flip side (the reason Air-FedGA exists): when one straggler is an
  // order of magnitude slower and holds little of the data, fencing it off
  // into its own group beats dragging every round to its pace.
  ConvergenceConfig cfg;
  std::vector<GroupPlan> together = {{100.0, 1.0, 0.0}};
  std::vector<GroupPlan> fenced = {{10.0, 0.95, 0.0}, {100.0, 0.05, 0.0}};
  const double obj_together = training_time_objective(cfg, together, 0.0);
  const double obj_fenced = training_time_objective(cfg, fenced, 0.0);
  EXPECT_TRUE(std::isfinite(obj_together));
  EXPECT_TRUE(std::isfinite(obj_fenced));
  EXPECT_LT(obj_fenced, obj_together);
}

TEST(TrainingTimeObjective, InfiniteWhenInfeasible) {
  ConvergenceConfig cfg;
  cfg.epsilon = 1e-9;
  std::vector<GroupPlan> groups = {{1.0, 1.0, 1.8}};
  EXPECT_TRUE(std::isinf(training_time_objective(cfg, groups, 0.0)));
}

TEST(Validation, EmptyGroupsRejected) {
  ConvergenceConfig cfg;
  std::vector<GroupPlan> none;
  EXPECT_THROW(contraction_base(cfg, none), std::invalid_argument);
  EXPECT_THROW(residual_delta(cfg, none, 0.0), std::invalid_argument);
  EXPECT_THROW(average_round_time(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(participation_frequencies(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(average_round_time(std::vector<double>{0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace airfedga::core
