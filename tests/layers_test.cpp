#include <gtest/gtest.h>

#include <cmath>

#include "ml/activation.hpp"
#include "ml/conv2d.hpp"
#include "ml/dense.hpp"
#include "ml/loss.hpp"
#include "ml/pool.hpp"
#include "ml/tensor.hpp"

namespace airfedga::ml {
namespace {

/// Scalar test functional s = <layer(x), c> for numerical gradient checks.
double scalar_probe(Layer& layer, const Tensor& x, const Tensor& c) {
  Tensor y = layer.forward(x);
  return dot(y.data(), c.data());
}

void zero_params(Layer& layer) {
  for (auto& p : layer.params()) std::fill(p.grad.begin(), p.grad.end(), 0.0f);
}

/// Checks d<layer(x), c>/dx and the parameter gradients against central
/// finite differences.
void check_gradients(Layer& layer, Tensor x, const Tensor& c, float eps = 1e-2f,
                     double tol = 2e-2) {
  zero_params(layer);
  layer.forward(x);
  Tensor dx = layer.backward(c);

  // Input gradient.
  for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(1, x.size() / 17)) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double up = scalar_probe(layer, x, c);
    x[i] = orig - eps;
    const double down = scalar_probe(layer, x, c);
    x[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(dx[i], numeric, tol + tol * std::abs(numeric))
        << "input grad mismatch at " << i;
  }

  // Parameter gradients. Re-run forward/backward to refresh caches after
  // the probes above, then compare each sampled coordinate.
  zero_params(layer);
  layer.forward(x);
  layer.backward(c);
  auto params = layer.params();
  for (std::size_t b = 0; b < params.size(); ++b) {
    auto& p = params[b];
    for (std::size_t i = 0; i < p.value.size();
         i += std::max<std::size_t>(1, p.value.size() / 13)) {
      const float orig = p.value[i];
      p.value[i] = orig + eps;
      const double up = scalar_probe(layer, x, c);
      p.value[i] = orig - eps;
      const double down = scalar_probe(layer, x, c);
      p.value[i] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(p.grad[i], numeric, tol + tol * std::abs(numeric))
          << "param grad mismatch, block " << b << " index " << i;
    }
  }
}

TEST(Dense, ForwardHandComputed) {
  Dense d(2, 2);
  auto params = d.params();
  // W = [[1, 2], [3, 4]], b = [0.5, -0.5]
  params[0].value[0] = 1;
  params[0].value[1] = 2;
  params[0].value[2] = 3;
  params[0].value[3] = 4;
  params[1].value[0] = 0.5f;
  params[1].value[1] = -0.5f;
  Tensor x({1, 2}, {10, 20});
  Tensor y = d.forward(x);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 10 * 1 + 20 * 2 + 0.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 10 * 3 + 20 * 4 - 0.5f);
}

TEST(Dense, RejectsBadInput) {
  Dense d(3, 2);
  Tensor x({1, 4});
  EXPECT_THROW(d.forward(x), std::invalid_argument);
  EXPECT_THROW(Dense(0, 1), std::invalid_argument);
}

TEST(Dense, HeInitStatistics) {
  Dense d(1000, 50);
  util::Rng rng(1);
  d.init(rng);
  auto params = d.params();
  double sq = 0.0;
  for (float v : params[0].value) sq += static_cast<double>(v) * v;
  const double stddev = std::sqrt(sq / static_cast<double>(params[0].value.size()));
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 1000.0), 0.005);
  for (float v : params[1].value) EXPECT_EQ(v, 0.0f);
}

class DenseGradient : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DenseGradient, MatchesFiniteDifferences) {
  const auto [batch, in, out] = GetParam();
  Dense d(static_cast<std::size_t>(in), static_cast<std::size_t>(out));
  util::Rng rng(77);
  d.init(rng);
  Tensor x = Tensor::randn({static_cast<std::size_t>(batch), static_cast<std::size_t>(in)}, rng);
  Tensor c = Tensor::randn({static_cast<std::size_t>(batch), static_cast<std::size_t>(out)}, rng);
  check_gradients(d, std::move(x), c);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DenseGradient,
                         testing::Values(std::make_tuple(1, 3, 2), std::make_tuple(4, 5, 7),
                                         std::make_tuple(2, 16, 8), std::make_tuple(8, 2, 2)));

TEST(ReLU, ForwardClampsNegatives) {
  ReLU r;
  Tensor x({1, 4}, {-1, 0, 2, -3});
  Tensor y = r.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0);
  EXPECT_FLOAT_EQ(y[1], 0);
  EXPECT_FLOAT_EQ(y[2], 2);
  EXPECT_FLOAT_EQ(y[3], 0);
}

TEST(ReLU, BackwardMasks) {
  ReLU r;
  Tensor x({1, 4}, {-1, 0.5f, 2, -3});
  r.forward(x);
  Tensor g({1, 4}, {10, 10, 10, 10});
  Tensor dx = r.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0);
  EXPECT_FLOAT_EQ(dx[1], 10);
  EXPECT_FLOAT_EQ(dx[2], 10);
  EXPECT_FLOAT_EQ(dx[3], 0);
}

TEST(Flatten, RoundTrip) {
  Flatten f;
  Tensor x({2, 3, 4, 4});
  Tensor y = f.forward(x);
  EXPECT_EQ(y.rank(), 2u);
  EXPECT_EQ(y.dim(1), 48u);
  Tensor back = f.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(Conv2D, IdentityKernelPreservesInput) {
  // 1x1 kernel with weight 1 and no padding is the identity map.
  Conv2D conv(1, 1, 1, 0);
  conv.params()[0].value[0] = 1.0f;
  util::Rng rng(5);
  Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
  Tensor y = conv.forward(x);
  ASSERT_EQ(y.shape(), x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2D, HandComputedSum) {
  // 3x3 all-ones kernel, pad 1: output at center = sum of 3x3 neighborhood.
  Conv2D conv(1, 1, 3, 1);
  auto conv_params = conv.params();
  for (auto& v : conv_params[0].value) v = 1.0f;
  Tensor x({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor y = conv.forward(x);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 45.0f);   // full sum
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1 + 2 + 4 + 5);  // corner
}

TEST(Conv2D, OutputShapeWithPadding) {
  Conv2D conv(3, 8, 5, 2);
  Tensor x({2, 3, 12, 12});
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 8u);
  EXPECT_EQ(y.dim(2), 12u);
  EXPECT_EQ(y.dim(3), 12u);
}

class ConvGradient : public testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(ConvGradient, MatchesFiniteDifferences) {
  const auto [batch, cin, cout, k, pad] = GetParam();
  Conv2D conv(static_cast<std::size_t>(cin), static_cast<std::size_t>(cout),
              static_cast<std::size_t>(k), static_cast<std::size_t>(pad));
  util::Rng rng(88);
  conv.init(rng);
  const std::size_t hw = 6;
  Tensor x = Tensor::randn({static_cast<std::size_t>(batch), static_cast<std::size_t>(cin), hw, hw},
                           rng);
  const std::size_t oh = hw + 2 * static_cast<std::size_t>(pad) - static_cast<std::size_t>(k) + 1;
  Tensor c = Tensor::randn(
      {static_cast<std::size_t>(batch), static_cast<std::size_t>(cout), oh, oh}, rng);
  check_gradients(conv, std::move(x), c);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvGradient,
                         testing::Values(std::make_tuple(1, 1, 1, 3, 1),
                                         std::make_tuple(2, 2, 3, 3, 1),
                                         std::make_tuple(1, 3, 2, 5, 2),
                                         std::make_tuple(2, 1, 4, 3, 0)));

TEST(MaxPool, ForwardPicksMaxima) {
  MaxPool2D pool(2);
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  Tensor y = pool.forward(x);
  EXPECT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  MaxPool2D pool(2);
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  pool.forward(x);
  Tensor g({1, 1, 1, 1}, {7.0f});
  Tensor dx = pool.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0);
  EXPECT_FLOAT_EQ(dx[1], 7);
  EXPECT_FLOAT_EQ(dx[2], 0);
  EXPECT_FLOAT_EQ(dx[3], 0);
}

TEST(MaxPool, RejectsIndivisibleDims) {
  MaxPool2D pool(2);
  Tensor x({1, 1, 3, 4});
  EXPECT_THROW(pool.forward(x), std::invalid_argument);
}

TEST(MaxPool, MultiChannelIndependence) {
  MaxPool2D pool(2);
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 40, 30, 20, 10});
  Tensor y = pool.forward(x);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 1, 0, 0), 40.0f);
}

TEST(SoftmaxCE, UniformLogitsGiveLogK) {
  SoftmaxCrossEntropy ce;
  Tensor logits({2, 4});
  std::vector<int> y = {0, 3};
  const double loss = ce.forward(logits, y);
  EXPECT_NEAR(loss, std::log(4.0), 1e-6);
}

TEST(SoftmaxCE, ConfidentCorrectHasLowLoss) {
  SoftmaxCrossEntropy ce;
  Tensor logits({1, 3}, {10.0f, 0.0f, 0.0f});
  std::vector<int> y = {0};
  EXPECT_LT(ce.forward(logits, y), 1e-3);
}

TEST(SoftmaxCE, GradientRowsSumToZero) {
  SoftmaxCrossEntropy ce;
  util::Rng rng(6);
  Tensor logits = Tensor::randn({4, 5}, rng);
  std::vector<int> y = {0, 1, 2, 3};
  ce.forward(logits, y);
  Tensor g = ce.backward();
  for (std::size_t r = 0; r < 4; ++r) {
    float row = 0.0f;
    for (std::size_t c = 0; c < 5; ++c) row += g.at2(r, c);
    EXPECT_NEAR(row, 0.0f, 1e-6);
  }
}

TEST(SoftmaxCE, GradientMatchesFiniteDifferences) {
  SoftmaxCrossEntropy ce;
  util::Rng rng(7);
  Tensor logits = Tensor::randn({3, 4}, rng);
  std::vector<int> y = {1, 0, 3};
  ce.forward(logits, y);
  Tensor g = ce.backward();
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor up = logits, down = logits;
    up[i] += eps;
    down[i] -= eps;
    SoftmaxCrossEntropy probe;
    const double numeric = (probe.forward(up, y) - probe.forward(down, y)) / (2.0 * eps);
    EXPECT_NEAR(g[i], numeric, 1e-4);
  }
}

TEST(SoftmaxCE, NumericalStabilityWithLargeLogits) {
  SoftmaxCrossEntropy ce;
  Tensor logits({1, 2}, {1000.0f, -1000.0f});
  std::vector<int> y = {0};
  const double loss = ce.forward(logits, y);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-6);
}

TEST(SoftmaxCE, RejectsBadLabels) {
  SoftmaxCrossEntropy ce;
  Tensor logits({1, 2});
  std::vector<int> y = {5};
  EXPECT_THROW(ce.forward(logits, y), std::invalid_argument);
  EXPECT_THROW(SoftmaxCrossEntropy().backward(), std::logic_error);
}

TEST(Accuracy, CountsArgmaxHits) {
  Tensor logits({3, 2}, {1, 0, 0, 1, 1, 0});
  std::vector<int> y = {0, 1, 1};
  EXPECT_NEAR(accuracy(logits, y), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace airfedga::ml
