#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/convergence.hpp"
#include "fl/mechanisms.hpp"
#include "ml/zoo.hpp"

namespace airfedga::fl {
namespace {

/// End-to-end fixture shared by the cross-mechanism integration tests:
/// the paper's setup scaled down to 20 workers / 170-parameter model.
struct Scenario {
  data::Dataset train;
  data::Dataset test;
  FLConfig cfg;

  explicit Scenario(std::uint64_t seed = 100) {
    train = data::make_synthetic_flat(16, {1000, 10, 1.0, 0.3, seed});
    test = data::make_synthetic_flat(16, {500, 10, 1.0, 0.3, seed});
    util::Rng rng(seed);
    cfg.train = &train;
    cfg.test = &test;
    cfg.partition = data::partition_label_skew(train, 20, rng);
    cfg.model_factory = [] { return ml::make_softmax_regression(16, 10); };
    cfg.learning_rate = 0.3f;
    cfg.batch_size = 0;
    cfg.cluster.base_seconds = 6.0;
    cfg.cluster.seed = seed + 1;
    cfg.fading.seed = seed + 2;
    cfg.time_budget = 6000.0;
    cfg.eval_every = 5;
    cfg.eval_samples = 500;
    cfg.seed = seed;
  }
};

TEST(Integration, AllFiveMechanismsLearnUnderLabelSkew) {
  Scenario s;
  FedAvg fedavg;
  AirFedAvg airfedavg;
  DynamicAirComp dynamic;
  TiFL tifl;
  AirFedGA airfedga;
  for (Mechanism* m :
       std::initializer_list<Mechanism*>{&fedavg, &airfedavg, &dynamic, &tifl, &airfedga}) {
    const Metrics res = m->run(s.cfg);
    ASSERT_FALSE(res.empty()) << m->name();
    EXPECT_GT(res.final_accuracy(), 0.5) << m->name() << " failed to learn";
    EXPECT_LT(res.final_loss(), res.points().front().loss) << m->name();
  }
}

TEST(Integration, RoundTimeOrderingMatchesFig10Left) {
  // Fig. 10 (left) at a fixed N: FedAvg has the longest single round
  // (OMA serialization); Air-FedAvg trims the upload but still waits for
  // the global straggler; TiFL and Air-FedGA wait only for a group. The
  // TiFL-vs-Air-FedGA gap at this toy model size is dominated by group
  // count rather than the upload term, so only the sync/async ordering is
  // asserted here; the upload-term effect is covered by the Fig. 10 bench
  // at realistic model sizes.
  Scenario s;
  FedAvg fedavg;
  AirFedAvg airfedavg;
  TiFL tifl;
  AirFedGA airfedga;
  const double t_fedavg = fedavg.run(s.cfg).average_round_time();
  const double t_air = airfedavg.run(s.cfg).average_round_time();
  const double t_tifl = tifl.run(s.cfg).average_round_time();
  const double t_ga = airfedga.run(s.cfg).average_round_time();

  EXPECT_GT(t_fedavg, t_air);
  EXPECT_GT(t_air, t_ga);
  EXPECT_GT(t_fedavg, t_tifl);
  EXPECT_GT(t_air, t_tifl);
}

TEST(Integration, StalenessStaysBelowObservedGroupCount) {
  // tau_t counts the rounds a group missed; with M groups operating at
  // comparable rates, staleness stays around M-1 and must never approach
  // the total round count.
  Scenario s;
  AirFedGA ga;
  const Metrics res = ga.run(s.cfg);
  ASSERT_GT(res.total_rounds(), 10u);
  EXPECT_LT(res.max_staleness(), static_cast<double>(res.total_rounds()) / 2.0);
}

TEST(Integration, GroupingImprovesOverTimeOnlyTiers) {
  // Air-FedGA with its own grouping vs. Air-FedGA forced onto raw TiFL
  // tiers (this isolates the grouping contribution from the AirComp one).
  // The EMD-aware grouping must (a) achieve lower inter-group EMD and
  // (b) not lose end accuracy beyond run-to-run jitter under label skew.
  Scenario s;
  AirFedGA ours;
  const Metrics r_ours = ours.run(s.cfg);

  sim::ClusterModel cluster(s.cfg.partition.size(), s.cfg.cluster);
  const auto tiers = core::tifl_grouping(cluster.local_times(), ours.groups().size());
  MechanismConfig opts;
  opts.groups_override = tiers;
  AirFedGA tier_forced(opts);
  const Metrics r_tiers = tier_forced.run(s.cfg);

  data::DataStats stats(s.train, s.cfg.partition);
  EXPECT_LE(stats.mean_emd(ours.groups()), stats.mean_emd(tiers) + 1e-9);

  auto tail_mean = [](const Metrics& m) {
    const auto& p = m.points();
    double acc = 0.0;
    const std::size_t k = std::min<std::size_t>(5, p.size());
    for (std::size_t i = p.size() - k; i < p.size(); ++i) acc += p[i].accuracy;
    return acc / static_cast<double>(k);
  };
  EXPECT_GE(tail_mean(r_ours), tail_mean(r_tiers) - 0.05);
}

TEST(Integration, Theorem1QuantitiesAreConsistentWithRun) {
  // Plug the *observed* grouping into the Theorem-1 machinery and check
  // the planning numbers are sane and consistent with the simulated run:
  // estimated average round time matches the measurement within 2x.
  Scenario s;
  AirFedGA ga;
  const Metrics res = ga.run(s.cfg);

  sim::ClusterModel cluster(s.cfg.partition.size(), s.cfg.cluster);
  const auto lt = cluster.local_times();
  std::vector<double> group_times;
  for (const auto& g : ga.groups()) {
    double lmax = 0.0;
    for (auto w : g) lmax = std::max(lmax, lt[w]);
    group_times.push_back(lmax + 71.4e-6);  // + L_u (one OFDM symbol here)
  }
  const double planned = core::average_round_time(group_times);
  const double measured = res.average_round_time();
  EXPECT_GT(measured, 0.4 * planned);
  EXPECT_LT(measured, 2.5 * planned);

  const double tau_hat = core::estimated_max_staleness(group_times);
  EXPECT_GE(tau_hat + 1.5, res.max_staleness());  // Eq. 39 is an estimate
}

TEST(Integration, NoiseFreeAirCompMatchesOmaAggregationPath) {
  // With sigma0^2 = 0 the AirComp update (Eq. 10) coincides with the ideal
  // Eq. 8 up to float rounding, so Air-FedAvg and FedAvg trajectories on
  // the same seed should agree round-for-round in loss (upload times
  // differ, so compare per-round loss, not per-time).
  Scenario s;
  s.cfg.aircomp.sigma0_sq = 0.0;
  s.cfg.max_rounds = 15;
  s.cfg.time_budget = 1e9;
  s.cfg.eval_every = 1;
  FedAvg oma;
  AirFedAvg air;
  const Metrics r_oma = oma.run(s.cfg);
  const Metrics r_air = air.run(s.cfg);
  ASSERT_EQ(r_oma.points().size(), r_air.points().size());
  for (std::size_t i = 0; i < r_oma.points().size(); ++i)
    EXPECT_NEAR(r_oma.points()[i].loss, r_air.points()[i].loss,
                0.02 + 0.02 * r_oma.points()[i].loss)
        << "round " << i;
}

TEST(Integration, EnergyAccountingIsCumulativeAndBounded) {
  Scenario s;
  AirFedGA ga;
  const Metrics res = ga.run(s.cfg);
  double prev = 0.0;
  for (const auto& p : res.points()) {
    EXPECT_GE(p.energy, prev);
    prev = p.energy;
  }
  // Per-round per-worker energy is capped by cfg.energy_cap (Eq. 36c);
  // total energy <= rounds * workers * cap is a loose sanity bound.
  EXPECT_LE(res.total_energy(),
            static_cast<double>(res.total_rounds()) *
                static_cast<double>(s.cfg.partition.size()) * s.cfg.energy_cap + 1e-6);
}

TEST(Integration, PerRoundEnergyRespectsCap) {
  // Stronger than the bound above: between consecutive recorded rounds,
  // the energy increment cannot exceed (#workers in a group) * cap.
  Scenario s;
  s.cfg.eval_every = 1;
  AirFedGA ga;
  const Metrics res = ga.run(s.cfg);
  double prev = 0.0;
  std::size_t max_group = 0;
  for (const auto& g : ga.groups()) max_group = std::max(max_group, g.size());
  for (const auto& p : res.points()) {
    EXPECT_LE(p.energy - prev, static_cast<double>(max_group) * s.cfg.energy_cap + 1e-9);
    prev = p.energy;
  }
}

TEST(Integration, DirichletPartitionAlsoWorks) {
  // Extension path: the whole pipeline runs under Dirichlet(0.3) skew.
  Scenario s;
  util::Rng rng(55);
  s.cfg.partition = data::partition_dirichlet(s.train, 20, 0.3, rng);
  // Dirichlet can produce empty shards; drop empty workers.
  data::Partition filtered;
  for (auto& shard : s.cfg.partition)
    if (!shard.empty()) filtered.push_back(shard);
  s.cfg.partition = filtered;
  AirFedGA ga;
  const Metrics res = ga.run(s.cfg);
  ASSERT_FALSE(res.empty());
  EXPECT_GT(res.final_accuracy(), 0.4);
}

}  // namespace
}  // namespace airfedga::fl
