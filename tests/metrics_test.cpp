#include <gtest/gtest.h>

#include <fstream>

#include "fl/metrics.hpp"

namespace airfedga::fl {
namespace {

Metrics ramp_metrics() {
  Metrics m;
  // Accuracy ramps 0.1 -> 0.9 over 9 rounds, 10s apart, 5 J per round.
  for (std::size_t i = 1; i <= 9; ++i)
    m.record({static_cast<double>(i) * 10.0, i, 1.0 / static_cast<double>(i),
              static_cast<double>(i) * 0.1, static_cast<double>(i) * 5.0, 0.0});
  return m;
}

TEST(Metrics, RecordsAndSummarizes) {
  const Metrics m = ramp_metrics();
  EXPECT_EQ(m.points().size(), 9u);
  EXPECT_DOUBLE_EQ(m.final_accuracy(), 0.9);
  EXPECT_DOUBLE_EQ(m.final_loss(), 1.0 / 9.0);
  EXPECT_DOUBLE_EQ(m.total_time(), 90.0);
  EXPECT_DOUBLE_EQ(m.total_energy(), 45.0);
  EXPECT_EQ(m.total_rounds(), 9u);
  EXPECT_DOUBLE_EQ(m.average_round_time(), 10.0);
}

TEST(Metrics, TimeToAccuracyUnsmoothed) {
  const Metrics m = ramp_metrics();
  // window=1: raw accuracy 0.5 first reached at round 5 (t=50).
  EXPECT_DOUBLE_EQ(m.time_to_accuracy(0.5, 1), 50.0);
  EXPECT_DOUBLE_EQ(m.time_to_accuracy(0.05, 1), 10.0);
}

TEST(Metrics, TimeToAccuracySmoothedLags) {
  const Metrics m = ramp_metrics();
  // window=3 moving average at index i is mean of last 3 raw values, so
  // the 0.5 crossing happens one point later (avg at t=60 is 0.5).
  EXPECT_DOUBLE_EQ(m.time_to_accuracy(0.5, 3), 60.0);
}

TEST(Metrics, TimeToAccuracyNeverReached) {
  const Metrics m = ramp_metrics();
  EXPECT_LT(m.time_to_accuracy(0.95, 1), 0.0);
}

TEST(Metrics, EnergyToAccuracy) {
  const Metrics m = ramp_metrics();
  EXPECT_DOUBLE_EQ(m.energy_to_accuracy(0.5, 1), 25.0);
  EXPECT_LT(m.energy_to_accuracy(0.99, 1), 0.0);
}

TEST(Metrics, WindowLargerThanSeries) {
  const Metrics m = ramp_metrics();
  // A window wider than the series degrades to prefix means: smooth[i] =
  // mean(acc[0..i]) = 0.05 * (i + 2), which first reaches 0.5 at i = 8
  // (the last point) — no out-of-range access, no premature "-1".
  EXPECT_DOUBLE_EQ(m.time_to_accuracy(0.5, 100), 90.0);
  EXPECT_DOUBLE_EQ(m.energy_to_accuracy(0.5, 100), 45.0);
  // The prefix mean never reaches the raw final accuracy, so a target the
  // unsmoothed series would hit stays unreached under the huge window.
  EXPECT_LT(m.time_to_accuracy(0.9, 100), 0.0);
}

TEST(Metrics, TargetHitOnFirstPoint) {
  const Metrics m = ramp_metrics();
  // smooth[0] is the mean of a single value for every window, so a target
  // at or below the first accuracy resolves to the first point.
  EXPECT_DOUBLE_EQ(m.time_to_accuracy(0.1, 1), 10.0);
  EXPECT_DOUBLE_EQ(m.time_to_accuracy(0.1, 3), 10.0);
  EXPECT_DOUBLE_EQ(m.energy_to_accuracy(0.1, 3), 5.0);
  EXPECT_DOUBLE_EQ(m.time_to_accuracy(0.0, 3), 10.0);  // trivially met
}

TEST(Metrics, EmptySeriesNeverReachesTargets) {
  const Metrics m;
  EXPECT_LT(m.time_to_accuracy(0.0, 1), 0.0);
  EXPECT_LT(m.time_to_accuracy(0.5, 3), 0.0);
  EXPECT_LT(m.energy_to_accuracy(0.0, 1), 0.0);
  EXPECT_LT(m.energy_to_accuracy(0.5, 3), 0.0);
}

TEST(Metrics, MaxStaleness) {
  Metrics m;
  m.record({1.0, 1, 1.0, 0.1, 0.0, 0.0});
  m.record({2.0, 2, 1.0, 0.1, 0.0, 4.0});
  m.record({3.0, 3, 1.0, 0.1, 0.0, 2.0});
  EXPECT_DOUBLE_EQ(m.max_staleness(), 4.0);
}

TEST(Metrics, RejectsTimeTravel) {
  Metrics m;
  m.record({5.0, 1, 1.0, 0.0, 0.0, 0.0});
  EXPECT_THROW(m.record({4.0, 2, 1.0, 0.0, 0.0, 0.0}), std::invalid_argument);
  EXPECT_NO_THROW(m.record({5.0, 2, 1.0, 0.0, 0.0, 0.0}));  // equal is fine
}

TEST(Metrics, EmptyDefaults) {
  Metrics m;
  EXPECT_TRUE(m.empty());
  EXPECT_DOUBLE_EQ(m.final_accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(m.average_round_time(), 0.0);
  EXPECT_LT(m.time_to_accuracy(0.1), 0.0);
}

TEST(Metrics, CsvRoundTripHeaderAndRows) {
  const Metrics m = ramp_metrics();
  const std::string path = testing::TempDir() + "/airfedga_metrics_test.csv";
  m.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "time,round,loss,accuracy,energy,staleness");
  std::size_t rows = 0;
  while (std::getline(f, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, 9u);
}

}  // namespace
}  // namespace airfedga::fl
