// Cross-module validation of the paper's analytical quantities against the
// simulator: the aggregation-error proxy C_t (Eq. 30) against measured
// over-the-air MSE, the EMD gradient-divergence bound (Eq. 24) against
// actual gradients, and checkpoint round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "channel/aircomp.hpp"
#include "core/convergence.hpp"
#include "core/power_control.hpp"
#include "data/data_stats.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "ml/zoo.hpp"

namespace airfedga {
namespace {

TEST(TheoryValidation, MeasuredAggregationMseTracksEq30) {
  // Build a group with known models, run power control, aggregate many
  // times, and compare the empirical E||eps||^2 with C_t. C_t charges the
  // worst-case model norm W^2, so it is an upper bound of the measured
  // error but must be of the same order when all norms equal W.
  const std::size_t q = 2048, m = 8;
  const double d_i = 100.0;
  util::Rng rng(1);
  std::vector<std::vector<float>> models(m);
  const double w_norm_sq = 300.0;
  for (auto& w : models) {
    w.resize(q);
    for (auto& v : w) v = static_cast<float>(rng.normal(0.0, std::sqrt(w_norm_sq / q)));
  }
  std::vector<double> gains(m);
  for (auto& h : gains) h = rng.rayleigh(0.8) + 0.2;

  core::PowerControlInput pin;
  pin.model_bound_sq = w_norm_sq;
  pin.sigma0_sq = 1.0;
  pin.group_data = d_i * static_cast<double>(m);
  pin.gains = gains;
  pin.data_sizes.assign(m, d_i);
  pin.energy_caps.assign(m, 10.0);
  const auto pc = core::optimize_power(pin);

  // Ideal group average (error-free Eq. 8 with beta = 1, w_prev = 0).
  std::vector<float> w_prev(q, 0.0f);
  std::vector<std::span<const float>> views(models.begin(), models.end());
  std::vector<double> sizes(m, d_i);
  const auto ideal =
      channel::AirCompChannel::ideal_aggregate(w_prev, views, sizes, pin.group_data);

  channel::AirCompChannel ch({.sigma0_sq = 1.0, .seed = 2});
  channel::AirCompChannel::Input ain;
  ain.w_prev = w_prev;
  ain.local_models = views;
  ain.data_sizes = sizes;
  ain.gains = gains;
  ain.sigma = pc.sigma;
  ain.eta = pc.eta;
  ain.total_data = pin.group_data;

  double mse = 0.0;
  const int reps = 40;
  for (int r = 0; r < reps; ++r) {
    const auto out = ch.aggregate(ain);
    for (std::size_t i = 0; i < q; ++i) {
      const double diff = static_cast<double>(out.w_next[i]) - ideal[i];
      mse += diff * diff;
    }
  }
  mse /= reps;

  const double predicted =
      core::aggregation_error(pc.sigma, pc.eta, w_norm_sq, 1.0, pin.group_data);
  EXPECT_GT(mse, 0.1 * predicted);
  EXPECT_LT(mse, 3.0 * predicted);
}

TEST(TheoryValidation, GradientDivergenceBoundedByEmdTimesG) {
  // Eq. 24: ||grad F(w) - grad F_j(w)||^2 <= Lambda_j^2 G^2 where G bounds
  // the per-class expected gradient norm (Assumption 3). Estimate G from
  // per-class gradients and verify the inequality at random parameter
  // points for label-skewed groups.
  auto ds = data::make_synthetic_flat(16, {1200, 6, 1.0, 0.3, 3});
  util::Rng rng(3);
  auto partition = data::partition_label_skew(ds, 12, rng);
  data::DataStats stats(ds, partition);

  ml::Model model = ml::make_softmax_regression(16, 6);
  util::Rng init(4);
  model.init(init);

  auto gradient_on = [&](const std::vector<std::size_t>& sample_idx) {
    ml::Tensor xb = ml::gather_rows(ds.xs, sample_idx);
    std::vector<int> yb;
    yb.reserve(sample_idx.size());
    for (auto i : sample_idx) yb.push_back(ds.ys[i]);
    std::vector<float> g;
    model.compute_gradient(xb, yb, g);
    return g;
  };

  // Per-class gradients -> G estimate; global gradient from all samples.
  std::vector<std::size_t> all(ds.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const auto g_global = gradient_on(all);
  double g_bound_sq = 0.0;
  for (std::size_t c = 0; c < ds.num_classes; ++c) {
    const auto idx = ds.indices_of_class(static_cast<int>(c));
    g_bound_sq = std::max(g_bound_sq, ml::squared_norm(gradient_on(idx)));
  }

  // Candidate groups of varying skew.
  std::vector<std::vector<std::size_t>> groups = {
      {0, 1},          // single class
      {0, 2, 4},       // three classes
      {0, 2, 4, 6, 8, 10},  // near-uniform
  };
  for (const auto& g : groups) {
    std::vector<std::size_t> member_samples;
    for (auto w : g)
      member_samples.insert(member_samples.end(), partition[w].begin(), partition[w].end());
    const auto g_group = gradient_on(member_samples);
    double diff_sq = 0.0;
    for (std::size_t i = 0; i < g_global.size(); ++i) {
      const double d = static_cast<double>(g_global[i]) - g_group[i];
      diff_sq += d * d;
    }
    // Eq. 24 bounds *population* gradients; a finite-sample slack absorbs
    // the sampling noise of the group's empirical gradient (visible as a
    // small nonzero divergence even at EMD = 0).
    const double lambda = stats.emd(g);
    EXPECT_LE(diff_sq, lambda * lambda * g_bound_sq + 0.01) << "group EMD " << lambda;
  }
}

TEST(TheoryValidation, SmallerEmdGivesSmallerGradientDivergence) {
  auto ds = data::make_synthetic_flat(16, {1200, 6, 1.0, 0.3, 5});
  util::Rng rng(5);
  auto partition = data::partition_label_skew(ds, 12, rng);
  data::DataStats stats(ds, partition);
  ml::Model model = ml::make_softmax_regression(16, 6);
  util::Rng init(6);
  model.init(init);

  auto divergence = [&](const std::vector<std::size_t>& group) {
    std::vector<std::size_t> all(ds.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    ml::Tensor xa = ml::gather_rows(ds.xs, all);
    std::vector<int> ya = ds.ys;
    std::vector<float> g_all;
    model.compute_gradient(xa, ya, g_all);

    std::vector<std::size_t> samples;
    for (auto w : group)
      samples.insert(samples.end(), partition[w].begin(), partition[w].end());
    ml::Tensor xg = ml::gather_rows(ds.xs, samples);
    std::vector<int> yg;
    for (auto i : samples) yg.push_back(ds.ys[i]);
    std::vector<float> g_grp;
    model.compute_gradient(xg, yg, g_grp);

    double acc = 0.0;
    for (std::size_t i = 0; i < g_all.size(); ++i) {
      const double d = static_cast<double>(g_all[i]) - g_grp[i];
      acc += d * d;
    }
    return acc;
  };

  const std::vector<std::size_t> skewed = {0, 1};               // one class
  const std::vector<std::size_t> mixed = {0, 2, 4, 6, 8, 10};   // six classes
  EXPECT_GT(stats.emd(skewed), stats.emd(mixed));
  EXPECT_GT(divergence(skewed), divergence(mixed));
}

TEST(Checkpoint, RoundTripPreservesParameters) {
  ml::Model m = ml::make_mlp(16, 4, 8);
  util::Rng rng(7);
  m.init(rng);
  const auto params = m.parameters();
  const std::string path = testing::TempDir() + "/airfedga_ckpt.bin";
  ml::save_parameters(path, params);
  const auto loaded = ml::load_parameters(path);
  EXPECT_EQ(loaded, params);

  ml::Model fresh = ml::make_mlp(16, 4, 8);
  fresh.set_parameters(loaded);
  EXPECT_EQ(fresh.parameters(), params);
}

TEST(Checkpoint, RejectsForeignAndTruncatedFiles) {
  const std::string path = testing::TempDir() + "/airfedga_ckpt_bad.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a checkpoint";
  }
  EXPECT_THROW(ml::load_parameters(path), std::runtime_error);

  // Truncated: valid header claiming more floats than present.
  ml::save_parameters(path, std::vector<float>(64, 1.0f));
  {
    std::ofstream f(path, std::ios::binary | std::ios::in);
    f.seekp(4);  // after the magic
    const std::uint64_t count = 1000;
    f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  }
  EXPECT_THROW(ml::load_parameters(path), std::runtime_error);
  EXPECT_THROW(ml::load_parameters(testing::TempDir() + "/nonexistent_ckpt.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace airfedga
