#include <gtest/gtest.h>

#include "data/partition.hpp"

namespace airfedga::data {
namespace {

Dataset make_ds(std::size_t n, std::size_t classes, std::uint64_t seed) {
  return make_synthetic_flat(8, {n, classes, 1.0, 0.3, seed});
}

class PartitionInvariants
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(PartitionInvariants, AllThreePartitionersCoverEachIndexExactlyOnce) {
  const auto [n, workers, seed] = GetParam();
  Dataset ds = make_ds(n, 10, seed);
  util::Rng rng(seed);
  validate_partition(partition_iid(ds, workers, rng), ds);
  validate_partition(partition_label_skew(ds, workers, rng), ds);
  validate_partition(partition_dirichlet(ds, workers, 0.5, rng), ds);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PartitionInvariants,
                         testing::Values(std::make_tuple(1000, 100, 1),
                                         std::make_tuple(1000, 7, 2),
                                         std::make_tuple(503, 10, 3),
                                         std::make_tuple(100, 100, 4),
                                         std::make_tuple(64, 3, 5)));

TEST(PartitionIid, NearEqualShards) {
  Dataset ds = make_ds(1000, 10, 6);
  util::Rng rng(6);
  const auto p = partition_iid(ds, 30, rng);
  for (const auto& shard : p) {
    EXPECT_GE(shard.size(), 33u);
    EXPECT_LE(shard.size(), 34u);
  }
}

TEST(PartitionIid, ShardsAreLabelDiverse) {
  Dataset ds = make_ds(1000, 10, 7);
  util::Rng rng(7);
  const auto p = partition_iid(ds, 10, rng);
  // With 100 samples per shard and 10 balanced classes, every shard should
  // see at least 5 distinct labels with overwhelming probability.
  for (const auto& shard : p) {
    std::vector<char> seen(10, 0);
    for (auto idx : shard) seen[static_cast<std::size_t>(ds.ys[idx])] = 1;
    int distinct = 0;
    for (char s : seen) distinct += s;
    EXPECT_GE(distinct, 5);
  }
}

TEST(PartitionLabelSkew, PaperSetting100Workers) {
  // §VI-A: labels 0..9, workers 0..99; label k goes to workers 10k..10k+9,
  // and every worker holds data of exactly one class.
  Dataset ds = make_ds(2000, 10, 8);
  util::Rng rng(8);
  const auto p = partition_label_skew(ds, 100, rng);
  for (std::size_t w = 0; w < 100; ++w) {
    ASSERT_FALSE(p[w].empty()) << "worker " << w;
    const int expected_label = static_cast<int>(w / 10);
    for (auto idx : p[w]) EXPECT_EQ(ds.ys[idx], expected_label);
  }
}

TEST(PartitionLabelSkew, FewerWorkersThanClasses) {
  Dataset ds = make_ds(500, 10, 9);
  util::Rng rng(9);
  const auto p = partition_label_skew(ds, 5, rng);
  validate_partition(p, ds);
  // Each worker should hold exactly 2 of the 10 classes (10 classes over
  // 5 single-worker blocks, wrapped).
  for (const auto& shard : p) {
    std::vector<char> seen(10, 0);
    for (auto idx : shard) seen[static_cast<std::size_t>(ds.ys[idx])] = 1;
    int distinct = 0;
    for (char s : seen) distinct += s;
    EXPECT_EQ(distinct, 2);
  }
}

TEST(PartitionLabelSkew, NoEmptyShardsForAwkwardWorkerCounts) {
  // Regression: worker counts that are not a multiple of the class count
  // must still give every worker a nonempty shard (24 workers, 10 classes
  // used to leave workers 20..23 empty).
  for (std::size_t workers : {7UL, 13UL, 24UL, 37UL, 99UL}) {
    Dataset ds = make_ds(workers * 30, 10, workers);
    util::Rng rng(workers);
    const auto p = partition_label_skew(ds, workers, rng);
    validate_partition(p, ds);
    for (std::size_t w = 0; w < workers; ++w)
      EXPECT_FALSE(p[w].empty()) << "worker " << w << " of " << workers;
  }
}

TEST(PartitionLabelSkew, EachWorkerSingleClassWhenWorkersExceedClasses) {
  Dataset ds = make_ds(690, 10, 20);
  util::Rng rng(20);
  const auto p = partition_label_skew(ds, 23, rng);
  validate_partition(p, ds);
  for (const auto& shard : p) {
    ASSERT_FALSE(shard.empty());
    const int label = ds.ys[shard.front()];
    for (auto idx : shard) EXPECT_EQ(ds.ys[idx], label);
  }
}

TEST(PartitionDirichlet, AlphaControlsSkew) {
  Dataset ds = make_ds(5000, 10, 10);
  util::Rng rng1(10), rng2(10);
  const auto skewed = partition_dirichlet(ds, 20, 0.05, rng1);
  const auto smooth = partition_dirichlet(ds, 20, 100.0, rng2);

  auto mean_distinct = [&](const Partition& p) {
    double acc = 0.0;
    std::size_t nonempty = 0;
    for (const auto& shard : p) {
      if (shard.empty()) continue;
      std::vector<char> seen(10, 0);
      for (auto idx : shard) seen[static_cast<std::size_t>(ds.ys[idx])] = 1;
      int distinct = 0;
      for (char s : seen) distinct += s;
      acc += distinct;
      ++nonempty;
    }
    return acc / static_cast<double>(nonempty);
  };
  EXPECT_LT(mean_distinct(skewed), mean_distinct(smooth) - 2.0);
}

TEST(PartitionDirichlet, RejectsBadAlpha) {
  Dataset ds = make_ds(100, 4, 11);
  util::Rng rng(11);
  EXPECT_THROW(partition_dirichlet(ds, 4, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(partition_dirichlet(ds, 4, -1.0, rng), std::invalid_argument);
}

TEST(Partitioners, RejectZeroWorkers) {
  Dataset ds = make_ds(100, 4, 12);
  util::Rng rng(12);
  EXPECT_THROW(partition_iid(ds, 0, rng), std::invalid_argument);
  EXPECT_THROW(partition_label_skew(ds, 0, rng), std::invalid_argument);
  EXPECT_THROW(partition_dirichlet(ds, 0, 1.0, rng), std::invalid_argument);
}

TEST(ValidatePartition, DetectsDuplicates) {
  Dataset ds = make_ds(10, 2, 13);
  Partition p(2);
  for (std::size_t i = 0; i < 10; ++i) p[0].push_back(i);
  p[1].push_back(3);  // duplicate
  EXPECT_THROW(validate_partition(p, ds), std::invalid_argument);
}

TEST(ValidatePartition, DetectsMissing) {
  Dataset ds = make_ds(10, 2, 14);
  Partition p(1);
  for (std::size_t i = 0; i < 9; ++i) p[0].push_back(i);
  EXPECT_THROW(validate_partition(p, ds), std::invalid_argument);
}

TEST(ValidatePartition, DetectsOutOfRange) {
  Dataset ds = make_ds(10, 2, 15);
  Partition p(1);
  for (std::size_t i = 0; i < 10; ++i) p[0].push_back(i);
  p[0][0] = 99;
  EXPECT_THROW(validate_partition(p, ds), std::invalid_argument);
}

}  // namespace
}  // namespace airfedga::data
