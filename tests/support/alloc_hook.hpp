#pragma once

// Replacement global allocation operators that count every heap allocation
// in the including binary. Include this header in EXACTLY ONE translation
// unit of a test or bench executable (never in library code — replacing
// operator new is a per-binary decision). Used by tests/gemm_test.cpp to
// enforce the zero-allocation steady-state training contract and by
// bench/micro_gemm.cpp to report heap traffic per training step.
//
// The operators route through malloc/free so they stay compatible with the
// sanitizer interceptors in the ASan CI leg; the nothrow and aligned
// overloads are replaced too, so no allocation path bypasses the counter
// (or mismatches malloc with a sanitizer-tracked default operator new).

#include <atomic>
#include <cstdlib>
#include <new>

namespace alloc_hook {

inline std::atomic<std::size_t> count{0};
inline std::atomic<std::size_t> bytes{0};

struct Stats {
  std::size_t count;
  std::size_t bytes;
};

inline Stats stats() { return {count.load(), bytes.load()}; }

}  // namespace alloc_hook

// The replacement operators pair malloc with free correctly at runtime;
// the compiler cannot see that every new in the binary routes through this
// malloc, so its static new/free mismatch heuristic misfires here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  alloc_hook::count.fetch_add(1, std::memory_order_relaxed);
  alloc_hook::bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return ::operator new(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

void* operator new(std::size_t size, std::align_val_t align) {
  alloc_hook::count.fetch_add(1, std::memory_order_relaxed);
  alloc_hook::bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = nullptr;
  const std::size_t a = static_cast<std::size_t>(align);
  if (posix_memalign(&p, a < sizeof(void*) ? sizeof(void*) : a, size ? size : 1) != 0)
    throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
