// Property test for the EventQueue backends: the calendar queue must be
// observably identical to the binary heap — same (time, seq, kind, actor)
// pop sequence, same peek results, same size/now trajectory — under
// randomized seeded schedule/pop/peek interleavings, including timestamp
// ties (seq must break them) and reschedules below the calendar cursor.
// On a divergence the failing op script is shrunk to a minimal
// counterexample (delta debugging) and printed for reproduction.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace airfedga::sim {
namespace {

enum OpType { kPush, kPop, kPeek };

/// One scripted queue operation. Push times are relative to the queue's
/// own clock (time = now + dt, dt >= 0), so any subsequence of a script
/// is still causally valid — which is what makes shrinking sound.
struct Op {
  OpType type;
  double dt = 0.0;
  int kind = 0;
  std::size_t actor = 0;
};

/// What one op observed; traces compare field-for-field across backends.
struct Rec {
  OpType type;
  bool empty = false;  ///< pop/peek hit an empty queue (skipped)
  double time = 0.0;
  std::uint64_t seq = 0;
  int kind = 0;
  std::size_t actor = 0;
  std::size_t size = 0;
  double now = 0.0;
  bool operator==(const Rec&) const = default;
};

std::vector<Rec> run_script(QueueBackend be, const std::vector<Op>& ops) {
  EventQueue q(be);
  std::vector<Rec> out;
  out.reserve(ops.size());
  for (const auto& op : ops) {
    Rec r{op.type};
    switch (op.type) {
      case kPush: {
        const double t = q.now() + op.dt;
        r.seq = q.schedule(t, op.kind, op.actor);
        r.time = t;
        r.kind = op.kind;
        r.actor = op.actor;
        break;
      }
      case kPop:
        if (q.empty()) {
          r.empty = true;
        } else {
          const Event e = q.pop();
          r.time = e.time;
          r.seq = e.seq;
          r.kind = e.kind;
          r.actor = e.actor;
        }
        break;
      case kPeek:
        if (q.empty()) {
          r.empty = true;
        } else {
          const Event& e = q.peek();
          r.time = e.time;
          r.seq = e.seq;
          r.kind = e.kind;
          r.actor = e.actor;
        }
        break;
    }
    r.size = q.size();
    r.now = q.now();
    out.push_back(r);
  }
  return out;
}

/// True when the two backends disagree anywhere on the script.
bool diverges(const std::vector<Op>& ops) {
  return run_script(QueueBackend::kBinaryHeap, ops) != run_script(QueueBackend::kCalendar, ops);
}

/// Knobs for the random script generator; each test stresses a different
/// region of the calendar's state machine.
struct GenParams {
  std::size_t length = 2000;
  double p_push = 0.55;       ///< vs pop; peeks are drawn separately
  double p_peek = 0.15;       ///< peek instead of push/pop (cursor walks ahead)
  double span = 50.0;         ///< dt ~ U[0, span)
  double cell = 0.5;          ///< dt quantization grid (0 = none); drives ties
  double p_jump = 0.0;        ///< dt *= 1000 (sparse tail: year-scan fallback)
  double p_zero = 0.1;        ///< dt = 0 exactly (schedule at now)
};

std::vector<Op> generate(std::uint64_t seed, const GenParams& g) {
  util::Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(g.length);
  for (std::size_t i = 0; i < g.length; ++i) {
    if (rng.coin(g.p_peek)) {
      ops.push_back({kPeek});
      continue;
    }
    if (!rng.coin(g.p_push)) {
      ops.push_back({kPop});
      continue;
    }
    double dt = rng.uniform(0.0, g.span);
    if (g.cell > 0.0) dt = std::floor(dt / g.cell) * g.cell;
    if (g.p_zero > 0.0 && rng.coin(g.p_zero)) dt = 0.0;
    if (g.p_jump > 0.0 && rng.coin(g.p_jump)) dt *= 1000.0;
    ops.push_back({kPush, dt, static_cast<int>(rng.randint(0, 3)),
                   static_cast<std::size_t>(rng.randint(0, 99))});
  }
  // Drain tail: the full pop-out is where cursor/resize bugs surface.
  for (std::size_t i = 0; i < g.length / 2; ++i) ops.push_back({kPop});
  return ops;
}

/// Delta-debugging shrink: greedily removes chunks (halving the chunk
/// size) while the script still diverges. Any subsequence is valid
/// because push times are now-relative and empty pops/peeks are skipped.
std::vector<Op> shrink(std::vector<Op> ops) {
  for (std::size_t chunk = ops.size() / 2; chunk >= 1; chunk /= 2) {
    for (std::size_t start = 0; start + chunk <= ops.size();) {
      std::vector<Op> candidate = ops;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(start),
                      candidate.begin() + static_cast<std::ptrdiff_t>(start + chunk));
      if (diverges(candidate)) {
        ops = std::move(candidate);
      } else {
        start += chunk;
      }
    }
  }
  return ops;
}

std::string describe(const std::vector<Op>& ops) {
  std::string s;
  for (const auto& op : ops) {
    char buf[96];
    if (op.type == kPush) {
      std::snprintf(buf, sizeof buf, "push(now+%.17g, %d, %zu); ", op.dt, op.kind, op.actor);
    } else {
      std::snprintf(buf, sizeof buf, "%s; ", op.type == kPop ? "pop" : "peek");
    }
    s += buf;
  }
  return s;
}

/// Runs `rounds` seeded scripts under `g`; on the first divergence,
/// shrinks it and fails with the minimal reproducer.
void check_many(std::uint64_t seed0, std::size_t rounds, const GenParams& g) {
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::uint64_t seed = seed0 + r;
    std::vector<Op> ops = generate(seed, g);
    if (!diverges(ops)) continue;
    ops = shrink(std::move(ops));
    FAIL() << "backends diverge (seed " << seed << "), minimal script (" << ops.size()
           << " ops): " << describe(ops);
  }
}

TEST(EventQueueProperty, RandomInterleavingsMatchHeapBackend) {
  check_many(1, 20, GenParams{});
}

TEST(EventQueueProperty, TieHeavyWorkloadsMatch) {
  GenParams g;
  g.cell = 10.0;  // span 50 over a 10-wide grid: ~5 distinct values, constant ties
  g.p_zero = 0.3;
  check_many(100, 10, g);
}

TEST(EventQueueProperty, SparseJumpsExerciseFallbackAndResize) {
  GenParams g;
  g.p_jump = 0.05;  // rare 1000x jumps leave year-sized gaps behind the cursor
  g.p_push = 0.65;  // grow past resize thresholds, then the drain tail shrinks
  check_many(200, 10, g);
}

TEST(EventQueueProperty, PeekHeavyCursorWalksMatch) {
  GenParams g;
  g.p_peek = 0.45;  // peeks advance the calendar cursor; later pushes at now
  g.p_zero = 0.25;  // must rewind it without perturbing the pop order
  check_many(300, 10, g);
}

// Directed semantics checks on the calendar backend itself (the shared
// suite in event_queue_test.cpp runs on the default heap).
TEST(EventQueueCalendar, BasicSemanticsAndResizeCycle) {
  EventQueue q(QueueBackend::kCalendar);
  EXPECT_EQ(q.backend(), QueueBackend::kCalendar);
  // Push far past the grow threshold, with ties, then drain through the
  // shrink threshold back to the 8-bucket floor.
  for (std::size_t i = 0; i < 200; ++i) q.schedule(static_cast<double>(i % 17), 0, i);
  double prev_time = -1.0;
  std::uint64_t prev_seq = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    const Event e = q.pop();
    if (e.time == prev_time) {
      EXPECT_GT(e.seq, prev_seq) << "tie at t=" << e.time << " broke out of insertion order";
    } else {
      EXPECT_GT(e.time, prev_time);
    }
    prev_time = e.time;
    prev_seq = e.seq;
  }
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.schedule(prev_time - 1.0, 0, 0), std::invalid_argument);
  EXPECT_NO_THROW(q.schedule(prev_time, 0, 0));  // "now" is allowed
  EXPECT_DOUBLE_EQ(q.peek_time(), prev_time);
}

}  // namespace
}  // namespace airfedga::sim
