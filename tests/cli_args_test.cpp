// Tests for the CLI parsing layer (src/scenario/cli.*): locale-independent
// numeric parsing via std::from_chars, run/run-dir flag parsing including
// --jobs/--append/--no-timing and both --sweep spellings, checked-in study
// documents with a "sweeps" object, and scenario-directory listing.

#include "scenario/cli.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <clocale>
#include <filesystem>
#include <fstream>

namespace airfedga::scenario::cli {
namespace {

namespace fs = std::filesystem;

TEST(ParsePositiveDouble, AcceptsPlainAndScientificForms) {
  EXPECT_DOUBLE_EQ(parse_positive_double("1.5", "x"), 1.5);
  EXPECT_DOUBLE_EQ(parse_positive_double("2e3", "x"), 2000.0);
  EXPECT_DOUBLE_EQ(parse_positive_double("0.001", "x"), 0.001);
}

TEST(ParsePositiveDouble, RejectsGarbageSignsAndNonFinite) {
  // Trailing garbage is the historical failure mode of strtod-based
  // parsing: "1500x" silently became 1500. Every token must parse fully.
  EXPECT_THROW(parse_positive_double("1.5x", "x"), std::invalid_argument);
  EXPECT_THROW(parse_positive_double("1,5", "x"), std::invalid_argument);
  EXPECT_THROW(parse_positive_double("", "x"), std::invalid_argument);
  EXPECT_THROW(parse_positive_double(" 1", "x"), std::invalid_argument);
  EXPECT_THROW(parse_positive_double("0x10", "x"), std::invalid_argument);
  EXPECT_THROW(parse_positive_double("-1", "x"), std::invalid_argument);
  EXPECT_THROW(parse_positive_double("0", "x"), std::invalid_argument);
  EXPECT_THROW(parse_positive_double("inf", "x"), std::invalid_argument);
  EXPECT_THROW(parse_positive_double("nan", "x"), std::invalid_argument);
}

TEST(ParsePositiveDouble, IgnoresTheCLocale) {
  // Under a comma-decimal locale, strtod("1.5") stops at the '.' (and
  // would accept "1,5"); from_chars must not care. Skip silently when no
  // such locale is installed in the environment.
  const char* old = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
  if (old == nullptr) GTEST_SKIP() << "de_DE.UTF-8 locale not installed";
  EXPECT_DOUBLE_EQ(parse_positive_double("1.5", "x"), 1.5);
  EXPECT_THROW(parse_positive_double("1,5", "x"), std::invalid_argument);
  std::setlocale(LC_NUMERIC, "C");
}

TEST(ParseCount, RejectsSignsAndGarbage) {
  EXPECT_EQ(parse_count("42", "x"), 42u);
  EXPECT_THROW(parse_count("", "x"), std::invalid_argument);
  EXPECT_THROW(parse_count("-1", "x"), std::invalid_argument);
  EXPECT_THROW(parse_count("12x", "x"), std::invalid_argument);
  EXPECT_THROW(parse_count("1234567890123456789", "x"), std::invalid_argument);  // 19 digits
}

TEST(ParseSweepAxis, SplitsPathAndJsonValues) {
  const SweepAxis axis = parse_sweep_axis("mechanisms.0.xi=0,0.1,iid", "--sweep");
  EXPECT_EQ(axis.path, "mechanisms.0.xi");
  ASSERT_EQ(axis.values.size(), 3u);
  EXPECT_DOUBLE_EQ(axis.values[0].as_number(), 0.0);
  EXPECT_DOUBLE_EQ(axis.values[1].as_number(), 0.1);
  EXPECT_EQ(axis.values[2].as_string(), "iid");  // non-JSON tokens stay strings

  EXPECT_THROW(parse_sweep_axis("nopath", "--sweep"), std::invalid_argument);
  EXPECT_THROW(parse_sweep_axis("=1,2", "--sweep"), std::invalid_argument);
  EXPECT_THROW(parse_sweep_axis("p=1,,2", "--sweep"), std::invalid_argument);
}

TEST(ParseRunArgs, ParsesEveryFlagAndBothSweepSpellings) {
  const RunArgs ra = parse_run_args({"fig08_xi_sweep", "--seed=7", "--threads=1,2,4",
                                     "--time-budget=150", "--jobs=4", "--append", "--no-timing",
                                     "--out=results", "--sweep", "mechanisms.0.xi=0,0.3",
                                     "--sweep=run.seed=1,2"});
  ASSERT_EQ(ra.sources.size(), 1u);
  EXPECT_EQ(ra.sources[0], "fig08_xi_sweep");
  EXPECT_EQ(ra.overrides.seed, 7u);
  EXPECT_DOUBLE_EQ(*ra.overrides.time_budget, 150.0);
  EXPECT_EQ(ra.threads, (std::vector<std::size_t>{1, 2, 4}));
  EXPECT_EQ(ra.jobs, 4u);
  EXPECT_TRUE(ra.append);
  EXPECT_FALSE(ra.timing);
  EXPECT_EQ(ra.out_dir, "results");
  ASSERT_EQ(ra.sweeps.size(), 2u);
  EXPECT_EQ(ra.sweeps[0].path, "mechanisms.0.xi");
  EXPECT_EQ(ra.sweeps[1].path, "run.seed");
}

TEST(ParseRunArgs, DefaultsAndErrors) {
  const RunArgs ra = parse_run_args({"scenario.json"});
  EXPECT_EQ(ra.jobs, 1u);
  EXPECT_FALSE(ra.append);
  EXPECT_TRUE(ra.timing);
  EXPECT_EQ(ra.out_dir, "scenario_results");
  EXPECT_TRUE(ra.threads.empty());

  EXPECT_THROW(parse_run_args({"--jobs=0"}), std::invalid_argument);
  EXPECT_THROW(parse_run_args({"--jobs=two"}), std::invalid_argument);
  EXPECT_THROW(parse_run_args({"--threads=0"}), std::invalid_argument);
  EXPECT_THROW(parse_run_args({"--time-budget=1500x"}), std::invalid_argument);
  EXPECT_THROW(parse_run_args({"--sweep"}), std::invalid_argument);
  EXPECT_THROW(parse_run_args({"--frobnicate"}), std::invalid_argument);
  EXPECT_THROW(parse_run_args({"--out="}), std::invalid_argument);
}

TEST(ParseStudy, PlainSpecHasNoAxes) {
  Json j = Json::parse(R"({"name": "plain", "partition": {"workers": 4}})");
  const Study s = parse_study(j);
  EXPECT_EQ(s.spec.name, "plain");
  EXPECT_EQ(s.spec.partition.workers, 4u);
  EXPECT_TRUE(s.sweeps.empty());
}

TEST(ParseStudy, SweepsObjectBecomesAxesInFileOrder) {
  Json j = Json::parse(R"({
    "name": "study",
    "sweeps": { "run.seed": [1, 2], "mechanisms.0.xi": [0.1] },
    "mechanisms": [{ "kind": "airfedga" }]
  })");
  const Study s = parse_study(j);
  EXPECT_EQ(s.spec.name, "study");
  ASSERT_EQ(s.sweeps.size(), 2u);
  EXPECT_EQ(s.sweeps[0].path, "run.seed");
  ASSERT_EQ(s.sweeps[0].values.size(), 2u);
  EXPECT_EQ(s.sweeps[1].path, "mechanisms.0.xi");

  // The grid expands over the spec exactly like CLI --sweep axes would.
  const auto variants = expand_sweeps(s.spec, s.sweeps);
  ASSERT_EQ(variants.size(), 2u);
  EXPECT_EQ(variants[0].seed, 1u);
  EXPECT_EQ(variants[1].seed, 2u);
}

TEST(ParseStudy, RejectsMalformedSweeps) {
  EXPECT_THROW(parse_study(Json::parse(R"({"sweeps": [1, 2]})")), std::invalid_argument);
  EXPECT_THROW(parse_study(Json::parse(R"({"sweeps": {"run.seed": []}})")),
               std::invalid_argument);
  EXPECT_THROW(parse_study(Json::parse(R"({"sweeps": {"run.seed": 1}})")),
               std::invalid_argument);
  // Unknown spec keys are still rejected once "sweeps" is stripped.
  EXPECT_THROW(parse_study(Json::parse(R"({"sweeps": {}, "nope": 1})")), std::exception);
}

TEST(ListScenarioFiles, SortedJsonOnlyAndLoudWhenEmpty) {
  const fs::path dir = fs::temp_directory_path() /
                       ("airfedga_cli_args_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir / "nested");
  std::ofstream(dir / "b_study.json") << "{}";
  std::ofstream(dir / "a_study.json") << "{}";
  std::ofstream(dir / "notes.txt") << "not a scenario";
  std::ofstream(dir / "nested" / "c_study.json") << "{}";  // not listed: direct children only

  const auto files = list_scenario_files(dir.string());
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(fs::path(files[0]).filename(), "a_study.json");
  EXPECT_EQ(fs::path(files[1]).filename(), "b_study.json");

  EXPECT_THROW(list_scenario_files((dir / "missing").string()), std::invalid_argument);
  EXPECT_THROW(list_scenario_files((dir / "notes.txt").string()), std::invalid_argument);

  // Handing a directory to `run` (instead of run-dir) must say so, not
  // fall through to a bare JSON parse error on the empty read.
  try {
    load_study(dir.string());
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("run-dir"), std::string::npos);
  }
  fs::remove_all(dir);
  EXPECT_THROW(list_scenario_files(dir.string()), std::invalid_argument);
}

}  // namespace
}  // namespace airfedga::scenario::cli
