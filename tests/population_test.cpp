// Population scale-out correctness: lazy pooled worker state + shared
// shard views + calendar event queue must be *observably identical* to
// the eager layout — Metrics::digest() bit-equal across worker_state,
// event-queue backend, and lane counts — while keeping memory bounded by
// the pool, not the population.
//
// NOTE: the RSS ceiling test must run FIRST in this binary. VmHWM is a
// process-wide high-water mark, and the eager 1e5 comparison runs later
// in this file deliberately materialize the full population.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "fl/driver.hpp"
#include "fl/loop.hpp"
#include "ml/zoo.hpp"
#include "scenario/spec.hpp"

namespace airfedga {
namespace {

/// Peak resident set size in MiB from /proc/self/status (VmHWM); -1 where
/// unavailable (non-Linux).
double peak_rss_mib() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line))
    if (line.rfind("VmHWM:", 0) == 0) return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
#endif
  return -1.0;
}

/// Reduced-budget population scenario: `workers` over `shards` label-skew
/// shards (batch < shard size, so every local step consumes the worker's
/// private RNG — the stream lazy rematerialization must replay).
scenario::ScenarioSpec pop_spec(std::size_t workers, std::size_t shards,
                                const std::string& worker_state, const std::string& event_queue,
                                std::size_t threads, std::size_t cohort_size,
                                const std::string& mechanism = "fedavg") {
  scenario::ScenarioSpec spec;
  spec.name = "population_test";
  spec.dataset.train_samples = 2000;
  spec.dataset.test_samples = 400;
  spec.dataset.seed = 7;
  spec.model.kind = "softmax";
  spec.partition.workers = workers;
  spec.partition.shards = shards;
  spec.batch_size = 8;  // shards leave >= 20 samples each; 8 < 20 forces sampling
  spec.local_steps = 2;
  spec.cohort_size = cohort_size;
  spec.worker_state = worker_state;
  spec.event_queue = event_queue;
  spec.threads = threads;
  spec.time_budget = 1e9;
  spec.max_rounds = 8;
  spec.eval_every = 4;
  spec.eval_samples = 200;
  spec.mechanisms.resize(1);
  spec.mechanisms[0].kind = mechanism;
  return spec;
}

std::string run_digest(const scenario::ScenarioSpec& spec) {
  spec.validate();
  auto built = scenario::build(spec);
  return built.mechanisms.at(0)->run(built.cfg).digest();
}

// ---- must stay first: VmHWM ceiling at N = 1e5 on the lazy layout ------

TEST(Population, LazyRunAt100kStaysUnderRssCeiling) {
  if (peak_rss_mib() < 0) GTEST_SKIP() << "VmHWM requires /proc/self/status (Linux)";
  const std::string digest =
      run_digest(pop_spec(100000, 100, "lazy", "calendar", 2, 32));
  EXPECT_FALSE(digest.empty());
  const double peak = peak_rss_mib();
  // Lazy state keeps live replicas at O(pool) regardless of N; 1e5 eager
  // workers would hold ~100k private RNG engines (~2.5 KiB each) alone.
  EXPECT_LT(peak, 200.0) << "peak RSS " << peak << " MiB at N=1e5 (lazy pool should bound this)";
}

// ---- digest identity: eager vs lazy, backends, lane counts -------------

TEST(Population, EagerAndLazyDigestsMatchAt100k) {
  for (const char* mech : {"fedavg", "airfedavg"}) {
    const std::string eager = run_digest(pop_spec(100000, 100, "eager", "heap", 2, 32, mech));
    const std::string lazy = run_digest(pop_spec(100000, 100, "lazy", "calendar", 2, 32, mech));
    EXPECT_EQ(eager, lazy) << mech << ": lazy worker state changed the observable run";
  }
}

TEST(Population, LazyDigestsInvariantAcrossThreadsAndBackends) {
  const std::string reference = run_digest(pop_spec(100000, 100, "lazy", "heap", 1, 32));
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    EXPECT_EQ(reference, run_digest(pop_spec(100000, 100, "lazy", "heap", threads, 32)))
        << "threads=" << threads;
  }
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    EXPECT_EQ(reference, run_digest(pop_spec(100000, 100, "lazy", "calendar", threads, 32)))
        << "calendar, threads=" << threads;
  }
}

TEST(Population, LazyRecyclingReplaysRngStreams) {
  // Small population, small cohort, many rounds: far more distinct workers
  // get leased than the pool target (16), so slots are recycled and
  // re-leased cold — the digest only matches eager state if the replayed
  // RNG streams reproduce the exact engine state.
  scenario::ScenarioSpec spec = pop_spec(64, 8, "eager", "heap", 1, 4);
  spec.max_rounds = 40;
  const std::string eager = run_digest(spec);
  spec.worker_state = "lazy";
  EXPECT_EQ(eager, run_digest(spec));
}

TEST(Population, SemiAsyncWarmReleaseMatchesEager) {
  // Semi-async restarts a worker's training before its buffered model
  // aggregates, so release must skip pending jobs and re-lease warm; any
  // mistake there shows up as a digest mismatch.
  scenario::ScenarioSpec spec = pop_spec(40, 10, "eager", "heap", 2, 0, "semiasync");
  spec.max_rounds = 12;
  const std::string eager = run_digest(spec);
  spec.worker_state = "lazy";
  spec.event_queue = "calendar";
  EXPECT_EQ(eager, run_digest(spec));
}

// ---- direct Driver pool semantics --------------------------------------

struct PoolEnv {
  data::Dataset train;
  data::Dataset test;
  fl::FLConfig cfg;

  explicit PoolEnv(std::size_t population, std::uint64_t seed = 60) {
    train = data::make_synthetic_flat(16, {400, 4, 1.0, 0.3, seed});
    test = data::make_synthetic_flat(16, {200, 4, 1.0, 0.3, seed});
    util::Rng rng(seed);
    cfg.train = &train;
    cfg.test = &test;
    cfg.partition = data::partition_iid(train, 10, rng);
    cfg.population = population;
    cfg.lazy_workers = true;
    cfg.threads = 1;
    cfg.model_factory = [] { return ml::make_softmax_regression(16, 4); };
    cfg.seed = seed;
    cfg.eval_samples = 200;
  }
};

std::vector<std::size_t> iota_members(std::size_t first, std::size_t count) {
  std::vector<std::size_t> m(count);
  std::iota(m.begin(), m.end(), first);
  return m;
}

TEST(WorkerPool, GrowsPastTargetWhenCohortExceedsIt) {
  PoolEnv env(100);
  fl::Driver d(env.cfg);
  ASSERT_TRUE(d.lazy_workers());
  EXPECT_EQ(d.worker_pool_size(), 0u);
  ASSERT_LT(d.worker_pool_target(), 40u);  // the cohort below must outgrow it

  const auto w0 = d.initial_model();
  const auto big = iota_members(0, 40);
  d.begin_training(big, w0);
  d.finish_training(big);
  // A cohort larger than the pool target never fails: the pool grows.
  EXPECT_EQ(d.worker_pool_size(), 40u);
  for (auto m : big) EXPECT_TRUE(d.worker_materialized(m));

  d.release_workers(big);
  // Released slots stay bound (warm) until recycled by a later lease.
  EXPECT_EQ(d.worker_pool_size(), 40u);
  EXPECT_TRUE(d.worker_materialized(7));

  // The next cohort recycles released slots FIFO instead of growing.
  const auto next = iota_members(40, 16);
  d.begin_training(next, w0);
  d.finish_training(next);
  EXPECT_EQ(d.worker_pool_size(), 40u);
  EXPECT_FALSE(d.worker_materialized(0));  // its slot was recycled first
  EXPECT_TRUE(d.worker_materialized(45));
  d.release_workers(next);
}

TEST(WorkerPool, WorkerAccessorEnforcesMaterialization) {
  PoolEnv env(50);
  fl::Driver d(env.cfg);
  EXPECT_FALSE(d.worker_materialized(5));
  EXPECT_THROW(d.worker(5), std::logic_error);      // cold descriptor, no state
  EXPECT_THROW(d.worker(50), std::out_of_range);    // past the population
  EXPECT_THROW(static_cast<void>(d.worker_materialized(50)), std::out_of_range);

  const auto w0 = d.initial_model();
  d.train_workers({5}, w0);
  EXPECT_TRUE(d.worker_materialized(5));
  EXPECT_EQ(d.worker(5).id(), 5u);
  EXPECT_TRUE(d.worker(5).has_model());
}

TEST(WorkerPool, ReleaseEdgeCases) {
  PoolEnv env(50);
  fl::Driver d(env.cfg);
  const auto w0 = d.initial_model();

  d.release_workers({});  // zero-worker group: no-op
  EXPECT_THROW(d.release_workers({3}), std::logic_error);  // never materialized

  d.train_workers({3}, w0);
  d.release_workers({3});
  EXPECT_NO_THROW(d.release_workers({3}));  // double release: already unleased
  EXPECT_TRUE(d.worker_materialized(3));    // still bound until recycled

  // A worker with an in-flight job is skipped (semi-async restarts train a
  // worker again before its buffered model is consumed).
  d.begin_training({4}, w0);
  EXPECT_NO_THROW(d.release_workers({4}));
  d.finish_training({4});
  EXPECT_TRUE(d.worker_materialized(4));
  d.release_workers({4});
}

TEST(WorkerPool, EagerModeIsUnpooled) {
  PoolEnv env(0);  // population 0 = partition size
  env.cfg.lazy_workers = false;
  env.cfg.population = 0;
  fl::Driver d(env.cfg);
  EXPECT_FALSE(d.lazy_workers());
  EXPECT_EQ(d.num_workers(), 10u);
  EXPECT_EQ(d.worker_pool_size(), 10u);
  EXPECT_TRUE(d.worker_materialized(9));
  EXPECT_NO_THROW(d.worker(9));
  d.release_workers({0, 1});  // no-op in eager mode
  EXPECT_TRUE(d.worker_materialized(0));
}

// ---- config surface -----------------------------------------------------

TEST(PopulationConfig, ValidateRejectsBadShapes) {
  // population below the shard count is meaningless.
  PoolEnv env(5);
  EXPECT_THROW(fl::Driver{env.cfg}, std::invalid_argument);

  scenario::ScenarioSpec spec = pop_spec(100, 200, "lazy", "heap", 1, 0);
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // shards > workers

  spec = pop_spec(100000, 100, "lazy", "heap", 1, 0);
  spec.partition.shards = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // 1e5 one-sample shards don't exist
  spec.partition.shards = 100;
  EXPECT_NO_THROW(spec.validate());  // ... but 1e5 workers over 100 shards do

  spec = pop_spec(100, 10, "eager", "heap", 1, 0);
  spec.worker_state = "bogus";
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.worker_state = "eager";
  spec.event_queue = "bogus";
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.event_queue = "calendar";
  EXPECT_NO_THROW(spec.validate());

  // Cohort sampling contradicts group/buffer membership semantics.
  for (const char* mech : {"airfedga", "semiasync"}) {
    scenario::ScenarioSpec bad = pop_spec(100, 10, "eager", "heap", 1, 8, mech);
    EXPECT_THROW(bad.validate(), std::invalid_argument) << mech;
  }
}

TEST(PopulationConfig, LoopRejectsCohortSamplingForBufferTriggers) {
  // Defense in depth below the spec layer: the loop itself rejects the
  // combination when a raw FLConfig carries it.
  PoolEnv env(50);
  env.cfg.cohort_size = 4;
  env.cfg.max_rounds = 2;
  scenario::MechanismSpec mech;
  mech.kind = "semiasync";
  EXPECT_THROW(mech.make()->run(env.cfg), std::invalid_argument);
  mech.kind = "fedavg";
  EXPECT_NO_THROW(mech.make()->run(env.cfg));
}

TEST(PopulationConfig, SpecRoundTripsNewKnobs) {
  scenario::ScenarioSpec spec = pop_spec(12345, 67, "lazy", "calendar", 3, 9);
  const scenario::ScenarioSpec back = scenario::ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(back.partition.workers, 12345u);
  EXPECT_EQ(back.partition.shards, 67u);
  EXPECT_EQ(back.worker_state, "lazy");
  EXPECT_EQ(back.event_queue, "calendar");
  EXPECT_EQ(back.cohort_size, 9u);
  EXPECT_EQ(spec.to_json().dump(), back.to_json().dump());
}

}  // namespace
}  // namespace airfedga
