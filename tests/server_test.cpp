#include <gtest/gtest.h>

#include "fl/server.hpp"

namespace airfedga::fl {
namespace {

TEST(Server, ReadyCountsUntilGroupComplete) {
  ParameterServer ps({1.0f, 2.0f}, 2);
  EXPECT_FALSE(ps.ready(0, 3));
  EXPECT_FALSE(ps.ready(0, 3));
  EXPECT_TRUE(ps.ready(0, 3));
  EXPECT_EQ(ps.ready_count(0), 3u);
  EXPECT_EQ(ps.ready_count(1), 0u);
}

TEST(Server, ReadyOverflowIsProtocolViolation) {
  ParameterServer ps({1.0f}, 1);
  EXPECT_TRUE(ps.ready(0, 1));
  // A second READY without an intervening EXECUTE/aggregation means a
  // worker double-reported: Alg. 1 lines 17-23 cannot produce this.
  EXPECT_THROW(ps.ready(0, 1), std::logic_error);
}

TEST(Server, CompleteRoundInstallsModelAndResetsCounter) {
  ParameterServer ps({0.0f, 0.0f}, 2);
  ps.ready(0, 1);
  ps.complete_round(0, {5.0f, 6.0f});
  EXPECT_EQ(ps.round(), 1u);
  EXPECT_EQ(ps.ready_count(0), 0u);
  EXPECT_FLOAT_EQ(ps.global_model()[0], 5.0f);
  EXPECT_FLOAT_EQ(ps.global_model()[1], 6.0f);
}

TEST(Server, StalenessMatchesPaperExample) {
  // Fig. 2 walkthrough: three groups; group 0 aggregates at rounds 1..3,
  // then group 2 aggregates at round 4 having last received w_0 -> tau = 3.
  ParameterServer ps({0.0f}, 3);

  // Round 1: group 0, trained from w_0 (base 0) -> tau_1 = 0.
  EXPECT_EQ(ps.staleness(0), 0u);
  ps.complete_round(0, {1.0f});

  // Rounds 2,3: group 0 again (it re-received the model each time).
  EXPECT_EQ(ps.staleness(0), 0u);
  ps.complete_round(0, {2.0f});
  EXPECT_EQ(ps.staleness(0), 0u);
  ps.complete_round(0, {3.0f});

  // Round 4: group 2 still holds w_0 -> tau_4 = 4 - 1 = 3.
  EXPECT_EQ(ps.staleness(2), 3u);
  ps.complete_round(2, {4.0f});
  // Having received w_4, an immediate re-aggregation would be fresh.
  EXPECT_EQ(ps.staleness(2), 0u);
}

TEST(Server, ModelSizeMustNotChange) {
  ParameterServer ps({1.0f, 2.0f}, 1);
  EXPECT_THROW(ps.complete_round(0, {1.0f}), std::invalid_argument);
}

TEST(Server, Validation) {
  EXPECT_THROW(ParameterServer({}, 1), std::invalid_argument);
  EXPECT_THROW(ParameterServer({1.0f}, 0), std::invalid_argument);
  ParameterServer ps({1.0f}, 1);
  EXPECT_THROW(ps.ready(5, 1), std::out_of_range);
  EXPECT_THROW(ps.ready(0, 0), std::invalid_argument);
  EXPECT_THROW(ps.complete_round(9, {1.0f}), std::out_of_range);
}

}  // namespace
}  // namespace airfedga::fl
